.PHONY: all build test bench check fmt clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Everything a change must pass before review: build, tests, and (when
# ocamlformat is installed) formatting.
check:
	dune build
	dune runtest
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping dune build @fmt"; \
	fi

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
