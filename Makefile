.PHONY: all build test bench bench-smoke soak soak-smoke check lint fmt clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# A fast slice of the harness as a CI gate: the open protocol (E1), both
# pathname-resolution experiments (E13 baseline, E19 fast path), the
# bulk-transfer sweep (E20), the open-lease sweep (E21), the striping
# sweep (E22), the fault-soak smoke (E23), the small-world flood
# (e24smoke), and the event-core micro suite must run to completion.
# Their PASS/FAIL cells are human-read; this asserts the experiments
# themselves stay runnable. E20 onward also leave BENCH_<experiment>.json
# behind for machine comparison (micro records the heap speedup and
# words/event; the full-scale flood dashboard is `-- e24`).
bench-smoke:
	@dune exec bench/main.exe -- e1 e13 e19 e20 e21 e22 e23 e24smoke micro > /dev/null
	@echo "bench-smoke: OK (e1 e13 e19 e20 e21 e22 e23 e24smoke micro ran clean)"

# Deterministic fault soak (DESIGN.md section 12, EXPERIMENTS.md E23).
# soak-smoke is the CI gate: a handful of seeds, bounded ops, seconds not
# minutes; the subcommand exits non-zero on any invariant violation and
# prints a shrunken one-line repro for every failing seed. The full sweep
# is `make soak` (50 seeds x 2000 ops).
soak-smoke:
	@dune exec bench/main.exe -- soak --seeds 8 --ops 500
	@echo "soak-smoke: OK (8 seeds, zero invariant violations)"

soak:
	dune exec bench/main.exe -- soak --seeds 50 --ops 2000

# Warning-as-error gate: a cold build must produce no compiler output at
# all. dune only prints warnings when it (re)compiles, so the gate cleans
# first; any surviving warning fails the target.
lint:
	@dune clean
	@out=$$(dune build 2>&1); \
	if [ -n "$$out" ]; then \
		printf '%s\n' "$$out"; \
		echo "lint: FAIL (build is not warning-clean)"; \
		exit 1; \
	else \
		echo "lint: OK (cold build is warning-clean)"; \
	fi

# Everything a change must pass before review: warning-clean build, tests,
# and (when ocamlformat is installed) formatting.
check: lint
	dune runtest
	$(MAKE) bench-smoke
	$(MAKE) soak-smoke
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping dune build @fmt"; \
	fi

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
