(* Plain-text table rendering for the experiment harness. *)

let rule widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  Printf.printf "\n%s\n" title;
  let line row =
    let cells = List.map2 (fun w c -> " " ^ pad w c ^ " ") widths row in
    Printf.printf "|%s|\n" (String.concat "|" cells)
  in
  Printf.printf "%s\n" (rule widths);
  line header;
  Printf.printf "%s\n" (rule widths);
  List.iter line rows;
  Printf.printf "%s\n" (rule widths)

let f1 v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v

let i = string_of_int

let check b = if b then "PASS" else "FAIL"

let section name what =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" name;
  Printf.printf "  %s\n" what;
  Printf.printf "==============================================================\n"
