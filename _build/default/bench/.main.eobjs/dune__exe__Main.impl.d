bench/main.ml: Analyze Array Bechamel Benchmark Catalog Experiments Hashtbl List Locus Locus_core Measure Printf Proto Staged Storage String Sys Test Time Toolkit Vv
