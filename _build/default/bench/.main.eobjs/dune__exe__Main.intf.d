bench/main.mli:
