bench/experiments.ml: Catalog Char Float Fun Hashtbl List Locus Locus_core Net Option Printf Proto Recovery Report Sim Storage String Txn Unix Vv
