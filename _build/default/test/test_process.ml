(* Remote process tests (section 3): fork/exec/run across sites, shared
   file descriptors with offset tokens, signals, exit status, and error
   reflection when a machine fails. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Process = Locus_core.Process
module K = Locus_core.Ktypes
module Stats = Sim.Stats

let check = Alcotest.check

let make_world ?(machine_type = fun _ -> "vax") () =
  let base = World.default_config ~n_sites:4 () in
  World.create ~config:{ base with World.machine_type } ()

let with_program w path body =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 path);
  Kernel.write_file k0 p0 path body;
  ignore (World.settle w)

(* ---- fork ---- *)

let test_local_fork () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let pid, site = Process.fork k0 p0 in
  check Alcotest.int "child at local site" 0 site;
  let child = Process.get_proc k0 pid in
  check Alcotest.string "uid inherited" p0.K.p_uid child.K.p_uid;
  check Alcotest.bool "parent knows child" true (List.mem_assoc pid p0.K.p_children)

let test_remote_fork () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 2);
  let pid, site = Process.fork k0 p0 in
  check Alcotest.int "child at advised site" 2 site;
  let k2 = World.kernel w 2 in
  let child = Process.get_proc k2 pid in
  check Alcotest.string "environment initialized" "root" child.K.p_uid;
  check Alcotest.bool "parent recorded" true (child.K.p_parent = Some (p0.K.pid, 0))

let test_remote_fork_ships_image () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  p0.K.p_image_pages <- 64;
  let snap = Stats.snapshot (World.stats w) in
  Kernel.set_advice p0 (Some 1);
  ignore (Process.fork k0 p0);
  let bytes = Stats.delta_of (World.stats w) snap "net.bytes" in
  check Alcotest.bool "fork shipped the 64-page image" true (bytes > 64 * 1024)

(* ---- exec / run ---- *)

let test_exec_local_reads_load_module () =
  let w = make_world () in
  with_program w "/prog" (String.make 2500 'p');
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Process.exec_local k0 p0 "/prog";
  check Alcotest.int "image sized from load module" 3 p0.K.p_image_pages

let test_run_remote () =
  let w = make_world () in
  with_program w "/prog" "binary bits";
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 3);
  let pid, site = Process.run k0 p0 "/prog" in
  check Alcotest.int "runs at advised site" 3 site;
  let child = Process.get_proc (World.kernel w 3) pid in
  check Alcotest.bool "child running" true (child.K.p_status = K.Running);
  check Alcotest.bool "parent recorded child" true (List.mem_assoc pid p0.K.p_children)

(* Run avoids copying the parent image: cheaper on the wire than fork of a
   big parent (section 3.1). *)
let test_run_avoids_image_copy () =
  let w = make_world () in
  with_program w "/prog" "tiny";
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  p0.K.p_image_pages <- 128;
  Kernel.set_advice p0 (Some 1);
  let snap = Stats.snapshot (World.stats w) in
  ignore (Process.run k0 p0 "/prog");
  let run_bytes = Stats.delta_of (World.stats w) snap "net.bytes" in
  let snap2 = Stats.snapshot (World.stats w) in
  ignore (Process.fork k0 p0);
  let fork_bytes = Stats.delta_of (World.stats w) snap2 "net.bytes" in
  check Alcotest.bool "run much cheaper than fork" true (run_bytes * 4 < fork_bytes)

(* Heterogeneous cpus: run at a pdp11 site picks the pdp11 load module
   through the hidden directory, transparently (sections 2.4.1, 3.1). *)
let test_run_heterogeneous_load_module () =
  let w = make_world ~machine_type:(fun s -> if s = 3 then "pdp11" else "vax") () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/bin");
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/bin/who");
  ignore (Kernel.creat k0 p0 "/bin/who/@vax");
  Kernel.write_file k0 p0 "/bin/who/@vax" (String.make 1100 'v');
  ignore (Kernel.creat k0 p0 "/bin/who/@pdp11");
  Kernel.write_file k0 p0 "/bin/who/@pdp11" "p";
  ignore (World.settle w);
  Kernel.set_advice p0 (Some 3);
  let pid, site = Process.run k0 p0 "/bin/who" in
  check Alcotest.int "at pdp11 site" 3 site;
  let child = Process.get_proc (World.kernel w 3) pid in
  check Alcotest.int "pdp11 module loaded" 1 child.K.p_image_pages;
  check Alcotest.(list string) "context follows machine" [ "pdp11" ]
    child.K.p_context

let test_run_environment_parameterization () =
  let w = make_world () in
  with_program w "/prog" "bits";
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 2);
  let pid, site =
    Process.run ~uid:"builder" ~ncopies:4 ~context:[ "cross" ] k0 p0 "/prog"
  in
  let child = Process.get_proc (World.kernel w site) pid in
  check Alcotest.string "uid set up" "builder" child.K.p_uid;
  check Alcotest.int "ncopies set up" 4 child.K.p_ncopies;
  check Alcotest.(list string) "context override" [ "cross" ] child.K.p_context

(* ---- shared descriptors and the offset token ---- *)

let test_shared_fd_offset_token () =
  let w = make_world () in
  with_program w "/data" "0123456789abcdef";
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let fd = Kernel.open_path k0 p0 "/data" Proto.Mode_read in
  check Alcotest.string "parent reads 4" "0123" (Kernel.read_fd k0 p0 fd ~len:4);
  Kernel.set_advice p0 (Some 2);
  let pid, _ = Process.fork k0 p0 in
  let k2 = World.kernel w 2 in
  let child = Process.get_proc k2 pid in
  (* The child's read continues where the parent stopped: the token moves
     the offset across machines. *)
  check Alcotest.string "child continues at offset 4" "4567"
    (Kernel.read_fd k2 child fd ~len:4);
  check Alcotest.string "parent continues at offset 8" "89ab"
    (Kernel.read_fd k0 p0 fd ~len:4);
  check Alcotest.bool "tokens flipped" true
    (Stats.get (World.stats w) "token.flip" >= 2)

let test_shared_fd_write_interleave () =
  let w = make_world () in
  with_program w "/log" "";
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let fd = Kernel.open_path k0 p0 "/log" Proto.Mode_modify in
  Kernel.write_fd k0 p0 fd "one ";
  Kernel.set_advice p0 (Some 1);
  let pid, _ = Process.fork k0 p0 in
  let k1 = World.kernel w 1 in
  let child = Process.get_proc k1 pid in
  Kernel.write_fd k1 child fd "two ";
  Kernel.write_fd k0 p0 fd "three";
  Kernel.commit_fd k0 p0 fd;
  Kernel.close_fd k0 p0 fd;
  Kernel.close_fd k1 child fd;
  ignore (World.settle w);
  check Alcotest.string "interleaved writes in order" "one two three"
    (Kernel.read_file k0 p0 "/log")

(* ---- signals ---- *)

let test_cross_site_signal () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 2);
  let pid, site = Process.fork k0 p0 in
  Process.signal k0 ~site ~pid 15;
  let child = Process.get_proc (World.kernel w 2) pid in
  check Alcotest.(list int) "signal delivered" [ 15 ] child.K.p_signals;
  match Process.signal k0 ~site:2 ~pid:999999 9 with
  | () -> Alcotest.fail "expected ESRCH"
  | exception K.Error (Proto.Esrch, _) -> ()

let test_exit_and_wait () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 3);
  let pid, _site = Process.fork k0 p0 in
  let k3 = World.kernel w 3 in
  let child = Process.get_proc k3 pid in
  Process.exit_proc k3 child 42;
  ignore (World.settle w);
  (match Process.wait k0 p0 with
  | Some (wpid, status) ->
    check Alcotest.int "pid" pid wpid;
    check Alcotest.int "status" 42 status
  | None -> Alcotest.fail "expected zombie");
  check Alcotest.bool "sigchld" true (List.mem Process.sigchld p0.K.p_signals)

(* ---- error reflection on machine failure (section 3.3) ---- *)

let test_child_site_failure_reflected () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 2);
  let pid, _ = Process.fork k0 p0 in
  World.crash_site w 2;
  ignore (World.detect_failures w ~initiator:0);
  check Alcotest.bool "error signal" true (List.mem Process.sigerr p0.K.p_signals);
  (match Process.read_error_info (World.kernel w 0) p0 with
  | Some info ->
    check Alcotest.bool "error info mentions child" true (String.length info > 0)
  | None -> Alcotest.fail "expected error info");
  check Alcotest.bool "child removed" false (List.mem_assoc pid p0.K.p_children)

let test_parent_site_failure_reflected () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some 2);
  let pid, _ = Process.fork k0 p0 in
  World.crash_site w 0;
  ignore (World.detect_failures w ~initiator:2);
  let child = Process.get_proc (World.kernel w 2) pid in
  check Alcotest.bool "child notified" true (List.mem Process.sigerr child.K.p_signals);
  check Alcotest.bool "parent link severed" true (child.K.p_parent = None)

let () =
  Alcotest.run "process"
    [
      ( "fork",
        [
          Alcotest.test_case "local" `Quick test_local_fork;
          Alcotest.test_case "remote" `Quick test_remote_fork;
          Alcotest.test_case "image shipped" `Quick test_remote_fork_ships_image;
        ] );
      ( "exec-run",
        [
          Alcotest.test_case "exec reads load module" `Quick
            test_exec_local_reads_load_module;
          Alcotest.test_case "run remote" `Quick test_run_remote;
          Alcotest.test_case "run avoids image copy" `Quick test_run_avoids_image_copy;
          Alcotest.test_case "heterogeneous load module" `Quick
            test_run_heterogeneous_load_module;
          Alcotest.test_case "run env parameterization" `Quick
            test_run_environment_parameterization;
        ] );
      ( "shared-fds",
        [
          Alcotest.test_case "offset token" `Quick test_shared_fd_offset_token;
          Alcotest.test_case "write interleave" `Quick test_shared_fd_write_interleave;
        ] );
      ( "signals-exit",
        [
          Alcotest.test_case "cross-site signal" `Quick test_cross_site_signal;
          Alcotest.test_case "exit and wait" `Quick test_exit_and_wait;
        ] );
      ( "failure-reflection",
        [
          Alcotest.test_case "child site fails" `Quick test_child_site_failure_reflected;
          Alcotest.test_case "parent site fails" `Quick test_parent_site_failure_reflected;
        ] );
    ]
