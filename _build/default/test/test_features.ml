(* Tests for protection checks, attribute changes, execution advice lists,
   pluggable merge managers, inode reclamation, page invalidation, and
   crash/restart durability. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Process = Locus_core.Process
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Pack = Storage.Pack
module Inode = Storage.Inode
module Reconcile = Recovery.Reconcile

let check = Alcotest.check

let make_world ?(n = 4) () = World.create ~config:(World.default_config ~n_sites:n ()) ()

(* ---- protection ---- *)

let user_proc w site uid =
  let p = Process.create_process (World.kernel w site) ~uid in
  p

let test_permission_denied_for_other () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/secret");
  Kernel.write_file k0 p0 "/secret" "root only";
  Kernel.chmod k0 p0 "/secret" 0o600;
  ignore (World.settle w);
  let alice = user_proc w 1 "alice" in
  let k1 = World.kernel w 1 in
  (match Kernel.read_file k1 alice "/secret" with
  | _ -> Alcotest.fail "other user should be denied"
  | exception K.Error (Proto.Eaccess, _) -> ());
  (* Owner (and root) still allowed. *)
  check Alcotest.string "owner reads" "root only" (Kernel.read_file k0 p0 "/secret")

let test_owner_write_bit () =
  let w = make_world () in
  let k0 = World.kernel w 0 in
  let alice = user_proc w 0 "alice" in
  ignore (Kernel.creat k0 alice "/mine");
  Kernel.write_file k0 alice "/mine" "v1";
  Kernel.chmod k0 alice "/mine" 0o444;
  ignore (World.settle w);
  (match Kernel.write_file k0 alice "/mine" "v2" with
  | () -> Alcotest.fail "read-only file should refuse writes"
  | exception K.Error (Proto.Eaccess, _) -> ());
  Kernel.chmod k0 alice "/mine" 0o644;
  Kernel.write_file k0 alice "/mine" "v2";
  check Alcotest.string "writable again" "v2" (Kernel.read_file k0 alice "/mine")

let test_chmod_propagates () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/p");
  Kernel.write_file k0 p0 "/p" "x";
  ignore (World.settle w);
  Kernel.chmod k0 p0 "/p" 0o640;
  ignore (World.settle w);
  (* The metadata change reached every copy. *)
  List.iter
    (fun s ->
      let k = World.kernel w s in
      let pack = Hashtbl.find k.K.packs 0 in
      let gf = Kernel.resolve k (World.proc w s) "/p" in
      match Pack.find_inode pack gf.Catalog.Gfile.ino with
      | Some inode -> check Alcotest.int
                        (Printf.sprintf "perms at %d" s) 0o640 inode.Inode.perms
      | None -> Alcotest.fail "copy missing")
    [ 0; 1; 2; 3 ]

let test_chown_only_owner () =
  let w = make_world () in
  let k0 = World.kernel w 0 in
  let alice = user_proc w 0 "alice" and bob = user_proc w 0 "bob" in
  ignore (Kernel.creat k0 alice "/a_file");
  ignore (World.settle w);
  (match Kernel.chown k0 bob "/a_file" "bob" with
  | () -> Alcotest.fail "non-owner chown should fail"
  | exception K.Error (Proto.Eaccess, _) -> ());
  Kernel.chown k0 alice "/a_file" "bob";
  let info = Kernel.stat k0 alice "/a_file" in
  check Alcotest.string "new owner" "bob" info.Proto.i_owner

(* ---- advice lists ---- *)

let test_advice_list_fallback () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice_list p0 [ 3; 2 ];
  let _, site = Process.fork k0 p0 in
  check Alcotest.int "first advice wins" 3 site;
  (* Crash site 3: the next fork falls through to site 2. *)
  World.crash_site w 3;
  ignore (World.detect_failures w ~initiator:0);
  let _, site2 = Process.fork k0 p0 in
  check Alcotest.int "fallback to second advice" 2 site2;
  (* No advice reachable: execute locally. *)
  World.crash_site w 2;
  ignore (World.detect_failures w ~initiator:0);
  let _, site3 = Process.fork k0 p0 in
  check Alcotest.int "local default" 0 site3

(* ---- merge managers ---- *)

let test_database_merge_manager () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat ~ftype:Inode.Database k0 p0 "/db");
  Kernel.write_file k0 p0 "/db" "k1=a\n";
  ignore (World.settle w);
  (* A line-set-union manager for database files. *)
  Reconcile.register_merge_manager Inode.Database (fun contents ->
      contents
      |> List.concat_map (String.split_on_char '\n')
      |> List.filter (fun l -> l <> "")
      |> List.sort_uniq String.compare
      |> fun lines -> String.concat "\n" lines ^ "\n");
  Fun.protect ~finally:(fun () -> Reconcile.unregister_merge_manager Inode.Database)
  @@ fun () ->
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  Kernel.write_file k0 p0 "/db" "k1=a\nk2=left\n";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  Kernel.write_file k2 p2 "/db" "k1=a\nk3=right\n";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  let managed =
    List.fold_left (fun a (_, r) -> a + r.Reconcile.manager_merges) 0 recon
  in
  let conflicts =
    List.fold_left (fun a (_, r) -> a + r.Reconcile.conflicts_marked) 0 recon
  in
  check Alcotest.int "manager resolved it" 1 managed;
  check Alcotest.int "no conflict marked" 0 conflicts;
  check Alcotest.string "merged union" "k1=a\nk2=left\nk3=right\n"
    (Kernel.read_file k0 p0 "/db")

let test_database_without_manager_conflicts () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat ~ftype:Inode.Database k0 p0 "/db");
  Kernel.write_file k0 p0 "/db" "base";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  Kernel.write_file k0 p0 "/db" "left";
  Kernel.write_file (World.kernel w 2) (World.proc w 2) "/db" "right";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.int "conflict marked without manager" 1
    (List.fold_left (fun a (_, r) -> a + r.Reconcile.conflicts_marked) 0 recon)

(* ---- inode reclamation after delete (2.3.7) ---- *)

let test_delete_reclaims_inode () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/dead");
  Kernel.write_file k0 p0 "/dead" "short life";
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/dead" in
  Kernel.unlink k0 p0 "/dead";
  ignore (World.settle w);
  (* Once every storage site has seen the delete, the descriptor is
     released everywhere. *)
  List.iter
    (fun s ->
      let k = World.kernel w s in
      let pack = Hashtbl.find k.K.packs 0 in
      check Alcotest.bool
        (Printf.sprintf "inode gone at %d" s)
        false
        (Pack.stores pack gf.Catalog.Gfile.ino))
    [ 0; 1; 2; 3 ]

(* ---- page invalidation during concurrent read/write (3.2) ---- *)

let test_page_invalidation () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  ignore (Kernel.creat k0 p0 "/hot");
  Kernel.write_file k0 p0 "/hot" "aaaa";
  ignore (World.settle w);
  (* Reader at site 2 opens and caches page 0. *)
  let k2 = World.kernel w 2 in
  let o_r = Us.open_gf k2 (Kernel.resolve k2 (World.proc w 2) "/hot") Proto.Mode_read in
  ignore (Us.read_page k2 o_r 0);
  (* Writer at site 1 modifies: the SS invalidates site 2's buffer. *)
  let k1 = World.kernel w 1 in
  let o_w = Us.open_gf k1 (Kernel.resolve k1 (World.proc w 1) "/hot") Proto.Mode_modify in
  Us.write k1 o_w ~off:0 "bbbb";
  ignore (World.settle w);
  let data, _ = Us.read_page k2 o_r 0 in
  check Alcotest.string "stale buffer invalidated" "bbbb" (String.sub data 0 4);
  Us.commit k1 o_w;
  Us.close k1 o_w;
  Us.close k2 o_r;
  ignore (World.settle w)

(* ---- crash durability ---- *)

let test_crash_loses_uncommitted_keeps_committed () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  ignore (Kernel.creat k0 p0 "/durable");
  Kernel.write_file k0 p0 "/durable" "committed state";
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/durable" in
  let o = Us.open_gf k0 gf Proto.Mode_modify in
  Us.write k0 o ~off:0 "UNCOMMITTED....";
  (* Crash before commit; restart; the committed version survives and the
     orphaned shadow pages are scavenged. *)
  World.crash_site w 0;
  World.restart_site w 0;
  ignore (World.heal_and_merge w);
  let p0' = World.proc w 0 in
  check Alcotest.string "committed state survives" "committed state"
    (Kernel.read_file (World.kernel w 0) p0' "/durable")

let test_restart_rejoins_and_catches_up () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/news");
  Kernel.write_file k0 p0 "/news" "v1";
  ignore (World.settle w);
  World.crash_site w 3;
  ignore (World.detect_failures w ~initiator:0);
  Kernel.write_file k0 p0 "/news" "v2 while 3 down";
  ignore (World.settle w);
  World.restart_site w 3;
  ignore (World.heal_and_merge w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "restarted site caught up" "v2 while 3 down"
    (Kernel.read_file k3 p3 "/news")

(* ---- protocol synchronization and wait ordering (5.7) ---- *)

let test_wait_ordering_total () =
  let open Recovery.Sync in
  (* Earlier stage: always waitable. *)
  check Alcotest.bool "earlier stage" true
    (may_wait_for ~my_stage:Merging ~my_site:0 ~their_stage:Partition_polling
       ~their_site:5);
  (* Later stage: never waitable. *)
  check Alcotest.bool "later stage" false
    (may_wait_for ~my_stage:Partition_polling ~my_site:0 ~their_stage:Merging
       ~their_site:5);
  (* Same stage: lower site number only. *)
  check Alcotest.bool "same stage, lower site" true
    (may_wait_for ~my_stage:Merging ~my_site:4 ~their_stage:Merging ~their_site:2);
  check Alcotest.bool "same stage, higher site" false
    (may_wait_for ~my_stage:Merging ~my_site:2 ~their_stage:Merging ~their_site:4);
  (* No circular waits: for any pair, at most one direction is legal. *)
  let stages = [ Idle; Partition_polling; Partition_announce; Merging ] in
  List.iter
    (fun sa ->
      List.iter
        (fun sb ->
          List.iter
            (fun (a, b) ->
              let ab = may_wait_for ~my_stage:sa ~my_site:a ~their_stage:sb ~their_site:b in
              let ba = may_wait_for ~my_stage:sb ~my_site:b ~their_stage:sa ~their_site:a in
              if ab && ba then Alcotest.fail "circular wait possible")
            [ (0, 1); (1, 0); (2, 5) ])
        stages)
    stages

let test_check_peer_outcomes () =
  let w = make_world () in
  let k0 = World.kernel w 0 and k1 = World.kernel w 1 in
  (* Peer in a later stage than ours: waiting for it would be illegal
     (it is ahead; it will not act for us). *)
  k0.K.recon_stage <- 1;
  k1.K.recon_stage <- 3;
  check Alcotest.bool "proceed past later-stage peer" true
    (Recovery.Sync.check_peer k0 1 = `Proceed);
  (* Peer in an earlier stage: legal wait. *)
  k0.K.recon_stage <- 3;
  k1.K.recon_stage <- 1;
  check Alcotest.bool "wait for earlier stage" true
    (Recovery.Sync.check_peer k0 1 = `Wait);
  k0.K.recon_stage <- 0;
  k1.K.recon_stage <- 0;
  (* Peer dead: restart. *)
  World.crash_site w 1;
  check Alcotest.bool "restart on dead peer" true
    (Recovery.Sync.check_peer k0 1 = `Restart)

(* ---- protocol synchronization probe (5.7) ---- *)

let test_status_check_stage () =
  let w = make_world () in
  let k0 = World.kernel w 0 in
  let k1 = World.kernel w 1 in
  k1.K.recon_stage <- 2;
  match
    Locus_core.Ktypes.rpc k0 1 (Proto.Status_check { asker = 0 })
  with
  | Proto.R_status { stage; site } ->
    check Alcotest.int "stage" 2 stage;
    check Alcotest.int "site" 1 site;
    k1.K.recon_stage <- 0
  | _ -> Alcotest.fail "expected status"

let () =
  Alcotest.run "features"
    [
      ( "protection",
        [
          Alcotest.test_case "deny other user" `Quick test_permission_denied_for_other;
          Alcotest.test_case "owner write bit" `Quick test_owner_write_bit;
          Alcotest.test_case "chmod propagates" `Quick test_chmod_propagates;
          Alcotest.test_case "chown owner-only" `Quick test_chown_only_owner;
        ] );
      ( "advice",
        [ Alcotest.test_case "advice list fallback" `Quick test_advice_list_fallback ] );
      ( "merge-managers",
        [
          Alcotest.test_case "database manager merges" `Quick test_database_merge_manager;
          Alcotest.test_case "no manager -> conflict" `Quick
            test_database_without_manager_conflicts;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "delete reclaims inode" `Quick test_delete_reclaims_inode;
          Alcotest.test_case "page invalidation" `Quick test_page_invalidation;
        ] );
      ( "durability",
        [
          Alcotest.test_case "crash keeps committed" `Quick
            test_crash_loses_uncommitted_keeps_committed;
          Alcotest.test_case "restart catches up" `Quick test_restart_rejoins_and_catches_up;
        ] );
      ( "sync-probe",
        [
          Alcotest.test_case "status check" `Quick test_status_check_stage;
          Alcotest.test_case "wait ordering total" `Quick test_wait_ordering_total;
          Alcotest.test_case "check_peer outcomes" `Quick test_check_peer_outcomes;
        ] );
    ]
