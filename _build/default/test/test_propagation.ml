(* Unit tests of background update propagation (section 2.3.6). *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Propagation = Locus_core.Propagation
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Pack = Storage.Pack
module Inode = Storage.Inode
module Vvec = Vv.Version_vector

let check = Alcotest.check

let make_world ?(n = 4) () = World.create ~config:(World.default_config ~n_sites:n ()) ()

let test_one_commit_behind () =
  let base = Vvec.of_list [ (0, 2); (1, 1) ] in
  let next = Vvec.bump base 1 in
  check Alcotest.bool "direct successor" true
    (Propagation.one_commit_behind ~local:base ~target:next ~origin:1);
  check Alcotest.bool "wrong origin" false
    (Propagation.one_commit_behind ~local:base ~target:next ~origin:0);
  check Alcotest.bool "two commits behind" false
    (Propagation.one_commit_behind ~local:base ~target:(Vvec.bump next 1) ~origin:1)

let test_incremental_pull_transfers_only_modified () =
  (* A small change to a large file: the pull moves one page, not all. *)
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/large");
  Kernel.write_file k0 p0 "/large" (String.make (8 * Storage.Page.size) 'L');
  ignore (World.settle w);
  (* Patch one page in place. *)
  let gf = Kernel.resolve k0 p0 "/large" in
  let o = Us.open_gf k0 gf Proto.Mode_modify in
  Us.write k0 o ~off:(3 * Storage.Page.size) (String.make 10 'Z');
  Us.commit k0 o;
  Us.close k0 o;
  let snap = Sim.Stats.snapshot (World.stats w) in
  ignore (World.settle w);
  let read_msgs = Sim.Stats.delta_of (World.stats w) snap "net.msg.read" in
  (* The secondary copy pulled just the modified page: 2 messages, not 16. *)
  check Alcotest.int "single page pulled" 2 read_msgs;
  let k1 = World.kernel w 1 and p1 = World.proc w 1 in
  let body = Kernel.read_file k1 p1 "/large" in
  check Alcotest.string "patched bytes present" (String.make 10 'Z')
    (String.sub body (3 * Storage.Page.size) 10)

let test_pull_refuses_concurrent_overwrite () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/c");
  Kernel.write_file k0 p0 "/c" "base";
  ignore (World.settle w);
  (* Forge a concurrent local version at site 1, then ask it to pull. *)
  let k1 = World.kernel w 1 in
  let gf = Kernel.resolve k0 p0 "/c" in
  let pack1 = Hashtbl.find k1.K.packs 0 in
  let inode1 = Pack.get_inode pack1 gf.Catalog.Gfile.ino in
  inode1.Inode.vv <- Vvec.bump inode1.Inode.vv 1;
  Kernel.write_file k0 p0 "/c" "newer at 0";
  ignore (World.settle w);
  (* Site 1's copy still carries its concurrent version: not clobbered. *)
  let inode1' = Pack.get_inode pack1 gf.Catalog.Gfile.ino in
  check Alcotest.bool "concurrent copy preserved" true
    (Vvec.get inode1'.Inode.vv 1 > 0)

let test_enqueue_skips_uninterested_sites () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  ignore (Kernel.creat k0 p0 "/solo");
  Kernel.write_file k0 p0 "/solo" "one copy";
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/solo" in
  (* A non-designated notification at a site without a copy is ignored. *)
  let k2 = World.kernel w 2 in
  Propagation.enqueue k2 gf ~vv:(Vvec.of_list [ (0, 9) ]) ~modified:[] ~designate:false;
  check Alcotest.int "not queued" 0 (Queue.length k2.K.prop_queue);
  (* A designated one is honoured. *)
  Propagation.enqueue k2 gf ~vv:(Vvec.of_list [ (0, 9) ]) ~modified:[] ~designate:true;
  check Alcotest.int "queued when designated" 1 (Queue.length k2.K.prop_queue);
  Queue.clear k2.K.prop_queue;
  k2.K.prop_pending <- Catalog.Gfile.Set.empty

let test_retries_give_up_cleanly () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/r");
  Kernel.write_file k0 p0 "/r" "v1";
  ignore (World.settle w);
  (* Cut site 1 off, then commit at 0: site 1's pull can never reach a
     source. The queue must drain (bounded retries), not spin forever. *)
  ignore (World.partition w [ [ 0; 2; 3 ]; [ 1 ] ]);
  Kernel.write_file k0 p0 "/r" "v2";
  ignore (World.settle w);
  let k1 = World.kernel w 1 in
  check Alcotest.int "queue drained" 0 (Queue.length k1.K.prop_queue);
  (* Reconciliation at merge repairs the stale copy. *)
  ignore (World.heal_and_merge w);
  let p1 = World.proc w 1 in
  check Alcotest.string "caught up after merge" "v2" (Kernel.read_file k1 p1 "/r")

let () =
  Alcotest.run "propagation"
    [
      ( "pull",
        [
          Alcotest.test_case "one_commit_behind" `Quick test_one_commit_behind;
          Alcotest.test_case "incremental pull" `Quick
            test_incremental_pull_transfers_only_modified;
          Alcotest.test_case "concurrent not overwritten" `Quick
            test_pull_refuses_concurrent_overwrite;
          Alcotest.test_case "designate semantics" `Quick
            test_enqueue_skips_uninterested_sites;
          Alcotest.test_case "bounded retries" `Quick test_retries_give_up_cleanly;
        ] );
    ]
