test/test_dirmerge.mli:
