test/test_world.ml: Alcotest Hashtbl List Locus Locus_core Printf Queue Sim
