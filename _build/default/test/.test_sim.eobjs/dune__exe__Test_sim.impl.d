test/test_sim.ml: Alcotest Fun List Option Sim
