test/test_propagation.ml: Alcotest Catalog Hashtbl Locus Locus_core Proto Queue Sim Storage String Vv
