test/test_dirmerge.ml: Alcotest Catalog Hashtbl List Locus Locus_core Recovery Storage String
