test/test_txn.ml: Alcotest List Locus Locus_core Proto Txn
