test/test_vv.mli:
