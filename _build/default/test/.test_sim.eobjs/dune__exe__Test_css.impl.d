test/test_css.ml: Alcotest Catalog List Locus Locus_core Net Proto Vv
