test/test_edge.ml: Alcotest Catalog Char Hashtbl List Locus Locus_core Printf Proto Storage String
