test/test_tokens.mli:
