test/test_features.ml: Alcotest Catalog Fun Hashtbl List Locus Locus_core Printf Proto Recovery Storage String
