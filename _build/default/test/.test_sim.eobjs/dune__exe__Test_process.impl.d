test/test_process.ml: Alcotest List Locus Locus_core Proto Sim String
