test/test_tokens.ml: Alcotest Buffer Locus Locus_core Proto Sim String
