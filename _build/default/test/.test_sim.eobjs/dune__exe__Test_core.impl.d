test/test_core.ml: Alcotest Catalog List Locus Locus_core Net Proto Sim Storage String
