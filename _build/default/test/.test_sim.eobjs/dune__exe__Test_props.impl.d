test/test_props.ml: Alcotest Catalog Hashtbl List Locus Locus_core Net Printf Proto QCheck QCheck_alcotest Recovery Storage String Vv
