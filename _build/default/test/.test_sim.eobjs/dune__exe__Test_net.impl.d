test/test_net.ml: Alcotest List Net Printf Sim String
