test/test_stress.ml: Alcotest Catalog Format Fun Hashtbl List Locus Locus_core Net Printf Proto Recovery Sim Storage String Vv
