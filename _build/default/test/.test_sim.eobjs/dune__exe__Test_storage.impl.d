test/test_storage.ml: Alcotest Array Char List Storage String Vv
