test/test_multifg.ml: Alcotest Catalog Locus Locus_core Net Proto
