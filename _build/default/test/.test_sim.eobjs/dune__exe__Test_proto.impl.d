test/test_proto.ml: Alcotest Catalog List Proto Storage String Vv
