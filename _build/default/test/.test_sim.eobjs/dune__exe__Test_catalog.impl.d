test/test_catalog.ml: Alcotest Catalog List Option Printf
