test/test_vv.ml: Alcotest List QCheck QCheck_alcotest Vv
