test/test_multifg.mli:
