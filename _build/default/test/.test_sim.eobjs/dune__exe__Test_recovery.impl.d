test/test_recovery.ml: Alcotest Catalog Hashtbl List Locus Locus_core Net Printf Proto Recovery Sim Storage String
