test/test_scenarios.ml: Alcotest Catalog List Locus Locus_core Net Printf Proto Recovery Storage String
