test/test_integration.ml: Alcotest Catalog Hashtbl List Locus Locus_core Printf Proto Recovery Storage String Vv
