(* Long multi-step scenarios that combine the subsystems: three-way
   partitions, cascaded failures, repeated split/merge cycles, reads that
   survive reconfiguration, and CSS failover with in-flight state. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Topology = Net.Topology
module Reconcile = Recovery.Reconcile

let check = Alcotest.check

let make_world ?(n = 6) () = World.create ~config:(World.default_config ~n_sites:n ()) ()

let total f recon = List.fold_left (fun acc (_, r) -> acc + f r) 0 recon

(* Three partitions each update the same file: the merge detects a 3-way
   conflict; interactive resolution picks one version for everyone. *)
let test_three_way_conflict () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 6;
  ignore (Kernel.creat k0 p0 "/w");
  Kernel.write_file k0 p0 "/w" "base";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ]);
  Kernel.write_file k0 p0 "/w" "version A";
  Kernel.write_file (World.kernel w 2) (World.proc w 2) "/w" "version B";
  Kernel.write_file (World.kernel w 4) (World.proc w 4) "/w" "version C";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.int "one conflicted file" 1
    (total (fun r -> r.Reconcile.conflicts_marked) recon);
  let gf = Kernel.resolve k0 p0 "/w" in
  check Alcotest.bool "resolved" true
    (Reconcile.resolve_manual (World.kernel w 0) gf ~winner:4);
  ignore (World.settle w);
  List.iter
    (fun s ->
      check Alcotest.string
        (Printf.sprintf "site %d sees the winner" s)
        "version C"
        (Kernel.read_file (World.kernel w s) (World.proc w s) "/w"))
    (World.sites w)

(* Three partitions, disjoint directory updates: everything merges with no
   conflicts at all. *)
let test_three_way_directory_union () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 6;
  ignore (Kernel.mkdir k0 p0 "/s");
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ]);
  List.iter
    (fun leader ->
      let k = World.kernel w leader and p = World.proc w leader in
      ignore (Kernel.creat k p (Printf.sprintf "/s/from%d" leader));
      Kernel.write_file k p (Printf.sprintf "/s/from%d" leader)
        (string_of_int leader))
    [ 0; 2; 4 ];
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.int "no conflicts" 0 (total (fun r -> r.Reconcile.conflicts_marked) recon);
  let names =
    Kernel.readdir k0 p0 "/s"
    |> List.map (fun (e : Catalog.Dir.entry) -> e.Catalog.Dir.name)
    |> List.filter (fun n -> n <> "." && n <> "..")
  in
  check Alcotest.(list string) "all three creations present"
    [ "from0"; "from2"; "from4" ] names

(* An open read survives a merge: the process continues on its version
   (section 5.2's principles). *)
let test_open_read_survives_merge () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 6;
  ignore (Kernel.creat k0 p0 "/doc");
  Kernel.write_file k0 p0 "/doc" (String.make 2048 'v');
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]);
  (* Reader on the left holds the file open through the whole episode. *)
  let o = Us.open_gf k0 (Kernel.resolve k0 p0 "/doc") Proto.Mode_read in
  let before, _ = Us.read_page k0 o 0 in
  ignore (World.heal_and_merge w);
  let after, _ = Us.read_page k0 o 1 in
  check Alcotest.int "read continues" Storage.Page.size (String.length after);
  check Alcotest.string "same version" (String.sub before 0 10)
    (String.make 10 'v');
  Us.close k0 o

(* Cascaded failures: sites die one at a time; after each, the survivors
   re-agree and the file stays available until the last copy dies. *)
let test_cascading_failures () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 3;
  ignore (Kernel.creat k0 p0 "/c");
  Kernel.write_file k0 p0 "/c" "survives";
  ignore (World.settle w);
  (* Copies live at 0,1,2. Kill 0 then 1: still available; kill 2: gone. *)
  World.crash_site w 0;
  ignore (World.detect_failures w ~initiator:3);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "after first crash" "survives" (Kernel.read_file k3 p3 "/c");
  World.crash_site w 1;
  ignore (World.detect_failures w ~initiator:3);
  check Alcotest.string "after second crash" "survives" (Kernel.read_file k3 p3 "/c");
  World.crash_site w 2;
  ignore (World.detect_failures w ~initiator:3);
  (match Kernel.read_file k3 p3 "/c" with
  | _ -> Alcotest.fail "no copies left: read should fail"
  | exception K.Error _ -> ());
  (* All three return: the file is whole again. *)
  List.iter (fun s -> World.restart_site w s) [ 0; 1; 2 ];
  ignore (World.heal_and_merge w);
  check Alcotest.string "after full recovery" "survives" (Kernel.read_file k3 p3 "/c")

(* Repeated split/heal cycles with alternating writers never lose the
   latest committed version and never leave false conflicts. *)
let test_alternating_writer_cycles () =
  let w = make_world ~n:4 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/ping");
  Kernel.write_file k0 p0 "/ping" "v0";
  ignore (World.settle w);
  for round = 1 to 5 do
    ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
    (* Only ONE side writes each round: no conflict must ever appear. *)
    let writer = if round mod 2 = 0 then 0 else 2 in
    Kernel.write_file (World.kernel w writer) (World.proc w writer) "/ping"
      (Printf.sprintf "v%d" round);
    ignore (World.settle w);
    let _, recon = World.heal_and_merge w in
    check Alcotest.int
      (Printf.sprintf "round %d conflict-free" round)
      0
      (total (fun r -> r.Reconcile.conflicts_marked) recon)
  done;
  List.iter
    (fun s ->
      check Alcotest.string
        (Printf.sprintf "site %d final" s)
        "v5"
        (Kernel.read_file (World.kernel w s) (World.proc w s) "/ping"))
    (World.sites w)

(* The CSS crashes while a remote writer holds the modification lock; the
   new CSS rebuilds the lock table, still refusing a second writer. *)
let test_css_failover_preserves_lock () =
  let w = make_world ~n:4 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 3;
  ignore (Kernel.creat k0 p0 "/locked");
  Kernel.write_file k0 p0 "/locked" "x";
  ignore (World.settle w);
  (* Writer at site 2 (CSS is site 0). *)
  let k2 = World.kernel w 2 in
  let gf2 = Kernel.resolve k2 (World.proc w 2) "/locked" in
  let o = Us.open_gf k2 gf2 Proto.Mode_modify in
  Us.write k2 o ~off:0 "y";
  (* CSS dies. The survivors re-elect; the rebuilt lock table must still
     show site 2 as the writer. *)
  World.crash_site w 0;
  ignore (World.detect_failures w ~initiator:1);
  let new_css = (K.fg_info k2 0).K.css_site in
  check Alcotest.int "site 1 is the new CSS" 1 new_css;
  let k3 = World.kernel w 3 in
  (match Us.open_gf k3 (Kernel.resolve k3 (World.proc w 3) "/locked") Proto.Mode_modify with
  | _ -> Alcotest.fail "lock should survive CSS failover"
  | exception K.Error (Proto.Ebusy, _) -> ());
  (* The original writer can still finish its work. *)
  Us.commit k2 o;
  Us.close k2 o;
  ignore (World.settle w);
  check Alcotest.string "writer's commit landed" "y"
    (Kernel.read_file k3 (World.proc w 3) "/locked")

let () =
  Alcotest.run "scenarios"
    [
      ( "multi-way",
        [
          Alcotest.test_case "three-way conflict" `Quick test_three_way_conflict;
          Alcotest.test_case "three-way directory union" `Quick
            test_three_way_directory_union;
        ] );
      ( "continuity",
        [
          Alcotest.test_case "open read survives merge" `Quick
            test_open_read_survives_merge;
          Alcotest.test_case "cascading failures" `Quick test_cascading_failures;
          Alcotest.test_case "alternating writers" `Quick test_alternating_writer_cycles;
          Alcotest.test_case "css failover preserves lock" `Quick
            test_css_failover_preserves_lock;
        ] );
    ]
