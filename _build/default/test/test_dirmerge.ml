(* Exhaustive unit coverage of the directory reconciliation rules of
   section 4.4, driven directly through Recovery.Reconcile.merge_two_dirs
   on a live world (the rules interrogate inodes for the modified-since-
   delete decisions). *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Dir = Catalog.Dir
module Reconcile = Recovery.Reconcile

let check = Alcotest.check

(* A world with one real file whose mtime we control, for rules 2b/2d. *)
let make_env () =
  let w = World.create ~config:(World.default_config ~n_sites:2 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/real");
  Kernel.write_file k0 p0 "/real" "data";
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/real" in
  (w, k0, gf.Catalog.Gfile.ino)

let merge w a b =
  let k0 = World.kernel w 0 in
  let report = Reconcile.empty_report () in
  let merged = Reconcile.merge_two_dirs k0 0 a b report in
  (merged, report)

let dir entries =
  let d = Dir.empty () in
  List.iter
    (fun (name, ino, stamp, dead) ->
      Dir.insert d ~name ~ino ~stamp ~origin:0;
      if dead then ignore (Dir.remove d ~name ~stamp:(stamp +. 0.1) ~origin:0))
    entries;
  d

(* Rule 2a: entry in one directory only -> propagate. *)
let test_rule_2a_propagate_entry () =
  let w, _, ino = make_env () in
  let a = dir [ ("only_a", ino, 1.0, false) ] in
  let b = dir [] in
  let m, _ = merge w a b in
  check Alcotest.(option int) "propagated" (Some ino) (Dir.lookup m "only_a");
  (* Symmetric. *)
  let m2, _ = merge w b a in
  check Alcotest.(option int) "propagated (sym)" (Some ino) (Dir.lookup m2 "only_a")

(* Rule 2b: tombstone in one, absent in the other -> propagate the delete
   (the file was NOT modified since). *)
let test_rule_2b_propagate_delete () =
  let w, k0, ino = make_env () in
  let file_mtime =
    (Storage.Pack.get_inode (Hashtbl.find k0.K.packs 0) ino).Storage.Inode.mtime
  in
  let a = dir [ ("gone", ino, file_mtime +. 10.0, true) ] in
  let b = dir [] in
  let m, _ = merge w a b in
  check Alcotest.(option int) "still deleted" None (Dir.lookup m "gone");
  match Dir.find_entry m "gone" with
  | Some e -> check Alcotest.bool "tombstone kept" true (e.Dir.status = Dir.Tombstone)
  | None -> Alcotest.fail "tombstone lost"

(* Rule 2b exception: data modified since the delete -> undo the delete. *)
let test_rule_2b_undo_delete_if_modified () =
  let w, k0, ino = make_env () in
  (* Tombstone older than the file's last modification. *)
  let file_mtime =
    (Storage.Pack.get_inode (Hashtbl.find k0.K.packs 0) ino).Storage.Inode.mtime
  in
  let a = dir [ ("precious", ino, file_mtime -. 5.0, true) ] in
  let b = dir [] in
  let m, report = merge w a b in
  check Alcotest.(option int) "delete undone" (Some ino) (Dir.lookup m "precious");
  check Alcotest.bool "counted" true (report.Reconcile.deletes_undone >= 1)

(* Rule 2c: entry in both, neither deleted -> no action needed. *)
let test_rule_2c_both_live () =
  let w, _, ino = make_env () in
  let a = dir [ ("same", ino, 1.0, false) ] in
  let b = dir [ ("same", ino, 2.0, false) ] in
  let m, report = merge w a b in
  check Alcotest.(option int) "kept" (Some ino) (Dir.lookup m "same");
  check Alcotest.int "no conflicts" 0 report.Reconcile.name_conflicts

(* Rule 2d: live in one, tombstone in the other. Newest wins unless the
   inode was modified since the delete. *)
let test_rule_2d_delete_newer_propagates () =
  let w, k0, ino = make_env () in
  let file_mtime =
    (Storage.Pack.get_inode (Hashtbl.find k0.K.packs 0) ino).Storage.Inode.mtime
  in
  let a = dir [ ("f", ino, 1.0, false) ] in
  let b = dir [ ("f", ino, file_mtime +. 100.0, true) ] in
  let m, _ = merge w a b in
  check Alcotest.(option int) "delete wins" None (Dir.lookup m "f")

let test_rule_2d_modification_saves () =
  let w, k0, ino = make_env () in
  let file_mtime =
    (Storage.Pack.get_inode (Hashtbl.find k0.K.packs 0) ino).Storage.Inode.mtime
  in
  (* Tombstone precedes the modification; live entry even older. *)
  let a = dir [ ("f", ino, 0.5, false) ] in
  let b =
    let d = Dir.empty () in
    Dir.insert d ~name:"f" ~ino ~stamp:0.5 ~origin:1;
    ignore (Dir.remove d ~name:"f" ~stamp:(file_mtime -. 1.0) ~origin:1);
    d
  in
  let m, report = merge w a b in
  check Alcotest.(option int) "file saved" (Some ino) (Dir.lookup m "f");
  check Alcotest.bool "undo counted" true (report.Reconcile.deletes_undone >= 1)

(* Rule 1: same name bound to different inodes, both live -> both names
   slightly altered, owners notified. *)
let test_rule_1_name_conflict () =
  let w, _, ino = make_env () in
  let a = dir [ ("clash", ino, 1.0, false) ] in
  let b = dir [ ("clash", ino + 1, 1.0, false) ] in
  let m, report = merge w a b in
  check Alcotest.(option int) "original name gone" None (Dir.lookup m "clash");
  check Alcotest.int "one name conflict" 1 report.Reconcile.name_conflicts;
  let live = Dir.live_entries m in
  check Alcotest.int "both versions kept" 2 (List.length live);
  List.iter
    (fun (e : Dir.entry) ->
      if not (String.length e.Dir.name > 5 && String.sub e.Dir.name 0 5 = "clash")
      then Alcotest.failf "altered name %s should derive from 'clash'" e.Dir.name)
    live

(* Both tombstoned -> newest tombstone kept, still deleted. *)
let test_both_tombstones () =
  let w, _, ino = make_env () in
  let a = dir [ ("dead", ino, 1.0, true) ] in
  let b = dir [ ("dead", ino, 5.0, true) ] in
  let m, _ = merge w a b in
  check Alcotest.(option int) "still dead" None (Dir.lookup m "dead");
  match Dir.find_entry m "dead" with
  | Some e -> check (Alcotest.float 0.01) "newest stamp" 5.1 e.Dir.stamp
  | None -> Alcotest.fail "tombstone lost"

(* Hard links: two names for one inode in different partitions both
   survive (the link handling of 4.4). *)
let test_links_survive () =
  let w, _, ino = make_env () in
  let a = dir [ ("name1", ino, 1.0, false) ] in
  let b = dir [ ("name2", ino, 1.0, false) ] in
  let m, _ = merge w a b in
  check Alcotest.(option int) "name1" (Some ino) (Dir.lookup m "name1");
  check Alcotest.(option int) "name2" (Some ino) (Dir.lookup m "name2");
  check Alcotest.(list string) "both names bind the inode" [ "name1"; "name2" ]
    (Dir.names_of_ino m ino)

(* Merge is commutative on non-conflicting directories. *)
let test_merge_commutative () =
  let w, _, ino = make_env () in
  let a = dir [ ("x", ino, 1.0, false); ("y", ino + 5, 2.0, true) ] in
  let b = dir [ ("z", ino + 9, 3.0, false) ] in
  let m1, _ = merge w a b in
  let m2, _ = merge w b a in
  check Alcotest.bool "commutative" true (Dir.equal m1 m2)

(* Idempotence: merging a directory with itself is the identity. *)
let test_merge_idempotent () =
  let w, _, ino = make_env () in
  let a = dir [ ("x", ino, 1.0, false); ("y", ino + 5, 2.0, true) ] in
  let m, _ = merge w a a in
  check Alcotest.bool "idempotent" true (Dir.equal m a)

let () =
  Alcotest.run "dirmerge"
    [
      ( "rules",
        [
          Alcotest.test_case "2a propagate entry" `Quick test_rule_2a_propagate_entry;
          Alcotest.test_case "2b propagate delete" `Quick test_rule_2b_propagate_delete;
          Alcotest.test_case "2b undo if modified" `Quick test_rule_2b_undo_delete_if_modified;
          Alcotest.test_case "2c both live" `Quick test_rule_2c_both_live;
          Alcotest.test_case "2d delete newer" `Quick test_rule_2d_delete_newer_propagates;
          Alcotest.test_case "2d modification saves" `Quick test_rule_2d_modification_saves;
          Alcotest.test_case "1 name conflict" `Quick test_rule_1_name_conflict;
          Alcotest.test_case "tombstone vs tombstone" `Quick test_both_tombstones;
          Alcotest.test_case "links survive" `Quick test_links_survive;
        ] );
      ( "laws",
        [
          Alcotest.test_case "commutative" `Quick test_merge_commutative;
          Alcotest.test_case "idempotent" `Quick test_merge_idempotent;
        ] );
    ]
