(* Tests of the World builder and the Workload generator. *)

module World = Locus.World
module Workload = Locus.Workload
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes

let check = Alcotest.check

let test_world_shape () =
  let w = World.create ~config:(World.default_config ~n_sites:7 ()) () in
  check Alcotest.int "seven kernels" 7 (List.length (World.kernels w));
  check Alcotest.(list int) "sites" [ 0; 1; 2; 3; 4; 5; 6 ] (World.sites w);
  (* One pack per site for the root filegroup. *)
  List.iter
    (fun s ->
      check Alcotest.bool
        (Printf.sprintf "pack at %d" s)
        true
        (Hashtbl.mem (World.kernel w s).K.packs 0))
    (World.sites w);
  (* Every kernel starts with the full site table. *)
  List.iter
    (fun k -> check Alcotest.(list int) "table" (World.sites w) k.K.site_table)
    (World.kernels w)

let test_world_deterministic () =
  let run () =
    let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
    let spec = Workload.default_spec in
    Workload.setup w spec;
    let r = Workload.run w spec ~ops:60 in
    (r, Sim.Stats.get (World.stats w) "net.msg", World.now w)
  in
  let r1, m1, t1 = run () in
  let r2, m2, t2 = run () in
  check Alcotest.int "same reads" r1.Workload.reads r2.Workload.reads;
  check Alcotest.int "same edits" r1.Workload.edits r2.Workload.edits;
  check Alcotest.int "same messages" m1 m2;
  check (Alcotest.float 1e-9) "same simulated time" t1 t2

let test_world_proc_is_cached () =
  let w = World.create ~config:(World.default_config ~n_sites:2 ()) () in
  let p1 = World.proc w 1 and p1' = World.proc w 1 in
  check Alcotest.int "same init process" p1.K.pid p1'.K.pid

let test_settle_reaches_quiescence () =
  let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/x");
  Kernel.write_file k0 p0 "/x" "y";
  ignore (World.settle w);
  check Alcotest.int "no pending events" 0 (Sim.Engine.pending (World.engine w));
  List.iter
    (fun k -> check Alcotest.int "empty prop queue" 0 (Queue.length k.K.prop_queue))
    (World.kernels w)

let test_workload_under_partition () =
  (* The generator must survive a partition: refused operations are
     counted, not raised. *)
  let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
  let spec = { Workload.default_spec with Workload.ncopies = 1 } in
  Workload.setup w spec;
  ignore (World.partition w [ [ 0 ]; [ 1; 2; 3 ] ]);
  let r = Workload.run w spec ~ops:80 in
  check Alcotest.bool "some operations refused" true (r.Workload.errors > 0);
  check Alcotest.bool "some operations served" true (r.Workload.reads > 0);
  ignore (World.heal_and_merge w)

let test_workload_mix_respected () =
  let w = World.create ~config:(World.default_config ~n_sites:3 ()) () in
  let spec =
    { Workload.default_spec with
      Workload.mix = { Workload.read = 100; edit = 0; exec = 0; mail = 0; namespace = 0 }
    }
  in
  Workload.setup w spec;
  let r = Workload.run w spec ~ops:50 in
  check Alcotest.int "only reads" 50 r.Workload.reads;
  check Alcotest.int "no edits" 0 r.Workload.edits;
  check Alcotest.int "no execs" 0 r.Workload.execs

let () =
  Alcotest.run "world"
    [
      ( "world",
        [
          Alcotest.test_case "shape" `Quick test_world_shape;
          Alcotest.test_case "deterministic" `Quick test_world_deterministic;
          Alcotest.test_case "proc cached" `Quick test_world_proc_is_cached;
          Alcotest.test_case "settle quiesces" `Quick test_settle_reaches_quiescence;
        ] );
      ( "workload",
        [
          Alcotest.test_case "under partition" `Quick test_workload_under_partition;
          Alcotest.test_case "mix respected" `Quick test_workload_mix_respected;
        ] );
    ]
