(* Stress / soak scenarios: long randomized (but seeded, deterministic)
   workloads with repeated partition-merge cycles, crashes and restarts.
   At the end, global invariants must hold:

   - every file's copies agree (same version vector, same bytes) unless
     the file is explicitly marked in conflict at its CSS;
   - the namespace is consistent: every live directory entry points at a
     stored, undeleted file, at every site;
   - no shadow pages are leaked on any disk;
   - all site tables agree after the final merge. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Pack = Storage.Pack
module Inode = Storage.Inode
module Vvec = Vv.Version_vector
module Rng = Sim.Rng

let check = Alcotest.check

let n_sites = 6

let files = List.init 8 (fun i -> Printf.sprintf "/work/f%d" i)

let setup () =
  let w = World.create ~config:(World.default_config ~n_sites ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 3;
  ignore (Kernel.mkdir k0 p0 "/work");
  ignore (Kernel.mkdir k0 p0 "/mail");
  List.iter
    (fun f ->
      ignore (Kernel.creat k0 p0 f);
      Kernel.write_file k0 p0 f "initial")
    files;
  ignore (World.settle w);
  w

let random_op w rng =
  let site = Rng.int rng n_sites in
  let k = World.kernel w site and p = World.proc w site in
  if not k.K.alive then ()
  else
    let f = List.nth files (Rng.int rng (List.length files)) in
    match Rng.int rng 6 with
    | 0 | 1 | 2 -> ( try ignore (Kernel.read_file k p f) with K.Error _ -> ())
    | 3 | 4 -> (
      try Kernel.write_file k p f (Printf.sprintf "s%d-%d" site (Rng.int rng 1000))
      with K.Error _ -> ())
    | _ -> (
      try
        let name = Printf.sprintf "/work/extra%d_%d" site (Rng.int rng 20) in
        match Kernel.stat k p name with
        | _ -> Kernel.unlink k p name
        | exception K.Error _ -> ignore (Kernel.creat k p name)
      with K.Error _ -> ())

let random_groups rng =
  let cut = 1 + Rng.int rng (n_sites - 1) in
  let sites = List.init n_sites Fun.id in
  let left = List.filter (fun s -> s < cut) sites in
  let right = List.filter (fun s -> s >= cut) sites in
  [ left; right ]

(* ---- invariants ---- *)

let each_pack w f =
  List.iter
    (fun s ->
      let k = World.kernel w s in
      Hashtbl.iter (fun _ pack -> f s pack) k.K.packs)
    (World.sites w)

let assert_site_tables_agree w =
  let tables = List.map (fun k -> k.K.site_table) (World.kernels w) in
  match tables with
  | [] -> ()
  | first :: rest ->
    List.iteri
      (fun i t ->
        check
          Alcotest.(list int)
          (Printf.sprintf "site table %d" (i + 1))
          first t)
      rest

let assert_copies_converged w =
  (* Per (fg, ino): all stored copies equal, unless marked in conflict. *)
  let copies : (int * int, (Vvec.t * string) list ref) Hashtbl.t = Hashtbl.create 64 in
  each_pack w (fun _site pack ->
      List.iter
        (fun (inode : Inode.t) ->
          let key = (Pack.fg pack, inode.Inode.ino) in
          let cell =
            match Hashtbl.find_opt copies key with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.add copies key c;
              c
          in
          cell := (inode.Inode.vv, Pack.read_string pack inode) :: !cell)
        (Pack.inodes pack));
  Hashtbl.iter
    (fun (fg, ino) cell ->
      let conflicted =
        List.exists
          (fun k ->
            match Locus_core.Css.find_file k fg ino with
            | Some f -> f.K.css_conflict
            | None -> false)
          (World.kernels w)
      in
      if not conflicted then begin
        match !cell with
        | [] -> ()
        | (vv0, body0) :: rest ->
          List.iter
            (fun (vv, body) ->
              if not (Vvec.equal vv vv0 && String.equal body body0) then
                Alcotest.failf "file <%d,%d> diverged without conflict mark" fg ino)
            rest
      end)
    copies

let assert_namespace_consistent w =
  List.iter
    (fun s ->
      let k = World.kernel w s and p = World.proc w s in
      List.iter
        (fun (e : Catalog.Dir.entry) ->
          let name = e.Catalog.Dir.name in
          if name <> "." && name <> ".." then begin
            match Kernel.stat k p ("/work/" ^ name) with
            | info ->
              if info.Proto.i_deleted then
                Alcotest.failf "entry %s points at a deleted file" name
            | exception K.Error (Proto.Econflict, _) -> ()
            | exception K.Error (e, m) ->
              Alcotest.failf "entry %s unreadable at site %d: %s %s" name s
                (Proto.errno_to_string e) m
          end)
        (try Kernel.readdir k p "/work" with K.Error _ -> []))
    (World.sites w)

let assert_no_leaked_pages w =
  each_pack w (fun site pack ->
      let freed = Pack.scavenge pack in
      if freed > 0 then
        Alcotest.failf "site %d leaked %d pages in fg %d" site freed (Pack.fg pack))

let assert_fsck_clean w =
  each_pack w (fun site pack ->
      match Pack.fsck pack with
      | [] -> ()
      | errs ->
        Alcotest.failf "fsck at site %d fg %d: %s" site (Pack.fg pack)
          (String.concat "; "
             (List.map (Format.asprintf "%a" Pack.pp_fsck_error) errs)))

let resolve_all_conflicts w =
  List.iter
    (fun k ->
      Hashtbl.iter
        (fun fg (st : K.css_fg) ->
          Hashtbl.iter
            (fun ino (f : K.css_file) ->
              if f.K.css_conflict then begin
                let gf = Catalog.Gfile.make ~fg ~ino in
                let winner =
                  match Net.Site.Map.min_binding_opt f.K.site_vv with
                  | Some (s, _) -> s
                  | None -> 0
                in
                ignore (Recovery.Reconcile.resolve_manual k gf ~winner)
              end)
            st.K.css_files)
        k.K.css_state)
    (World.kernels w)

(* ---- scenarios ---- *)

let soak ~seed ~cycles ~ops_per_phase ~with_crashes () =
  let w = setup () in
  let rng = Rng.create seed in
  for _cycle = 1 to cycles do
    (* Healthy phase. *)
    for _ = 1 to ops_per_phase do
      random_op w rng
    done;
    ignore (World.settle w);
    (* Partitioned phase. *)
    ignore (World.partition w (random_groups rng));
    for _ = 1 to ops_per_phase do
      random_op w rng
    done;
    ignore (World.settle w);
    (* Optional crash of one random site. *)
    if with_crashes && Rng.bool rng then begin
      let victim = Rng.int rng n_sites in
      World.crash_site w victim;
      World.restart_site w victim
    end;
    ignore (World.heal_and_merge w)
  done;
  ignore (World.heal_and_merge w);
  ignore (World.settle w);
  (* Resolve whatever real conflicts the divergent writes produced, then
     re-check full convergence. *)
  resolve_all_conflicts w;
  ignore (World.settle w);
  assert_site_tables_agree w;
  assert_namespace_consistent w;
  assert_copies_converged w;
  assert_no_leaked_pages w;
  assert_fsck_clean w

let test_soak_partitions () = soak ~seed:11L ~cycles:6 ~ops_per_phase:25 ~with_crashes:false ()

let test_soak_with_crashes () = soak ~seed:23L ~cycles:6 ~ops_per_phase:20 ~with_crashes:true ()

let test_soak_long () = soak ~seed:37L ~cycles:12 ~ops_per_phase:30 ~with_crashes:true ()

let () =
  Alcotest.run "stress"
    [
      ( "soak",
        [
          Alcotest.test_case "partition cycles" `Quick test_soak_partitions;
          Alcotest.test_case "partition + crash cycles" `Quick test_soak_with_crashes;
          Alcotest.test_case "long mixed soak" `Slow test_soak_long;
        ] );
    ]
