(* Nested transaction tests [MEUL 83]: atomicity, isolation via the CSS
   modification lock, subtransaction commit/abort, and partition abort. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes

let check = Alcotest.check

let make_world () = World.create ~config:(World.default_config ~n_sites:4 ()) ()

let setup w paths =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  List.iter
    (fun (path, body) ->
      ignore (Kernel.creat k0 p0 path);
      Kernel.write_file k0 p0 path body)
    paths;
  ignore (World.settle w)

let test_commit_publishes_all () =
  let w = make_world () in
  setup w [ ("/acct_a", "100"); ("/acct_b", "0") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let t = Txn.begin_top k0 p0 in
  let a = int_of_string (Txn.read t "/acct_a") in
  Txn.write t "/acct_a" (string_of_int (a - 30));
  Txn.write t "/acct_b" "30";
  (* Nothing is visible before commit. *)
  check Alcotest.string "a unchanged pre-commit" "100"
    (Kernel.read_file k0 p0 "/acct_a");
  Txn.commit t;
  ignore (World.settle w);
  check Alcotest.string "a debited" "70" (Kernel.read_file k0 p0 "/acct_a");
  check Alcotest.string "b credited" "30" (Kernel.read_file k0 p0 "/acct_b");
  (* Visible remotely too. *)
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "remote sees commit" "70" (Kernel.read_file k2 p2 "/acct_a")

let test_abort_undoes_everything () =
  let w = make_world () in
  setup w [ ("/f1", "original") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let t = Txn.begin_top k0 p0 in
  Txn.write t "/f1" "doomed";
  Txn.create t "/f2";
  Txn.write t "/f2" "also doomed";
  Txn.abort t;
  ignore (World.settle w);
  check Alcotest.string "f1 untouched" "original" (Kernel.read_file k0 p0 "/f1");
  (match Kernel.read_file k0 p0 "/f2" with
  | _ -> Alcotest.fail "created file should be removed on abort"
  | exception K.Error (Proto.Enoent, _) -> ());
  check Alcotest.bool "aborted" true (Txn.status t = Txn.Aborted)

let test_reads_see_own_writes () =
  let w = make_world () in
  setup w [ ("/x", "disk value") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let t = Txn.begin_top k0 p0 in
  check Alcotest.string "reads through to disk" "disk value" (Txn.read t "/x");
  Txn.write t "/x" "buffered";
  check Alcotest.string "own write visible" "buffered" (Txn.read t "/x");
  Txn.abort t

let test_isolation_via_lock () =
  let w = make_world () in
  setup w [ ("/shared", "s") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let t1 = Txn.begin_top k0 p0 in
  Txn.write t1 "/shared" "from t1";
  (* A second transaction at another site cannot lock the same file. *)
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  let t2 = Txn.begin_top k2 p2 in
  (match Txn.write t2 "/shared" "from t2" with
  | () -> Alcotest.fail "lock should be refused"
  | exception Txn.Txn_error _ -> ());
  Txn.abort t2;
  Txn.commit t1;
  ignore (World.settle w);
  check Alcotest.string "t1 won" "from t1" (Kernel.read_file k0 p0 "/shared")

let test_subtransaction_commit_merges () =
  let w = make_world () in
  setup w [ ("/doc", "v0") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let top = Txn.begin_top k0 p0 in
  Txn.write top "/doc" "v1";
  let sub = Txn.begin_sub top in
  check Alcotest.int "depth" 1 (Txn.depth sub);
  check Alcotest.string "sub sees parent write" "v1" (Txn.read sub "/doc");
  Txn.write sub "/doc" "v2";
  Txn.commit sub;
  check Alcotest.string "parent sees sub's commit" "v2" (Txn.read top "/doc");
  Txn.commit top;
  ignore (World.settle w);
  check Alcotest.string "published" "v2" (Kernel.read_file k0 p0 "/doc")

let test_subtransaction_abort_independent () =
  let w = make_world () in
  setup w [ ("/doc", "v0") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let top = Txn.begin_top k0 p0 in
  Txn.write top "/doc" "v1";
  let sub = Txn.begin_sub top in
  Txn.write sub "/doc" "sub version";
  Txn.abort sub;
  check Alcotest.string "parent write survives sub abort" "v1" (Txn.read top "/doc");
  Txn.commit top;
  ignore (World.settle w);
  check Alcotest.string "published v1" "v1" (Kernel.read_file k0 p0 "/doc")

let test_commit_with_active_sub_refused () =
  let w = make_world () in
  setup w [ ("/doc", "v0") ];
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let top = Txn.begin_top k0 p0 in
  let _sub = Txn.begin_sub top in
  (match Txn.commit top with
  | () -> Alcotest.fail "commit with active subtransaction"
  | exception Txn.Txn_error _ -> ());
  Txn.abort top

let test_partition_aborts_distributed_txn () =
  (* Section 5.6: "Distributed Transaction -> abort all related
     subtransactions in partition". *)
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  (* A file stored only at site 3 to make the transaction distributed. *)
  Kernel.set_ncopies p0 1;
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  ignore (Kernel.creat k3 p3 "/remote_leg");
  Kernel.write_file k3 p3 "/remote_leg" "r";
  ignore (Kernel.creat k0 p0 "/local_leg");
  Kernel.write_file k0 p0 "/local_leg" "l";
  ignore (World.settle w);
  let t = Txn.begin_top k0 p0 in
  Txn.write t "/local_leg" "txn l";
  Txn.write t "/remote_leg" "txn r";
  check Alcotest.bool "touches site 3" true (List.mem 3 (Txn.touched_sites t));
  check Alcotest.int "one active txn" 1 (Txn.active_count k0);
  World.crash_site w 3;
  ignore (World.detect_failures w ~initiator:0);
  check Alcotest.bool "transaction aborted by cleanup" true
    (Txn.status t = Txn.Aborted);
  check Alcotest.int "no active txns" 0 (Txn.active_count k0);
  ignore (World.settle w);
  check Alcotest.string "local leg rolled back" "l"
    (Kernel.read_file k0 p0 "/local_leg")

let () =
  Alcotest.run "txn"
    [
      ( "atomicity",
        [
          Alcotest.test_case "commit publishes all" `Quick test_commit_publishes_all;
          Alcotest.test_case "abort undoes all" `Quick test_abort_undoes_everything;
          Alcotest.test_case "reads see own writes" `Quick test_reads_see_own_writes;
        ] );
      ( "isolation",
        [ Alcotest.test_case "lock refuses second writer" `Quick test_isolation_via_lock ] );
      ( "nesting",
        [
          Alcotest.test_case "sub commit merges" `Quick test_subtransaction_commit_merges;
          Alcotest.test_case "sub abort independent" `Quick
            test_subtransaction_abort_independent;
          Alcotest.test_case "active sub blocks commit" `Quick
            test_commit_with_active_sub_refused;
        ] );
      ( "partition",
        [
          Alcotest.test_case "partition aborts distributed txn" `Quick
            test_partition_aborts_distributed_txn;
        ] );
    ]
