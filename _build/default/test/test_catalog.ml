(* Unit tests for the catalog: gfiles, directories with tombstones,
   mailboxes and their merge, the mount table. *)

module Gfile = Catalog.Gfile
module Dir = Catalog.Dir
module Mbox = Catalog.Mailbox
module Mount = Catalog.Mount

let check = Alcotest.check

(* ---- gfile ---- *)

let test_gfile_compare () =
  let a = Gfile.make ~fg:0 ~ino:1 in
  let b = Gfile.make ~fg:0 ~ino:2 in
  let c = Gfile.make ~fg:1 ~ino:1 in
  check Alcotest.bool "a < b" true (Gfile.compare a b < 0);
  check Alcotest.bool "b < c" true (Gfile.compare b c < 0);
  check Alcotest.bool "equal" true (Gfile.equal a (Gfile.make ~fg:0 ~ino:1));
  check Alcotest.string "pp" "<0,1>" (Gfile.to_string a)

(* ---- directories ---- *)

let test_dir_insert_lookup () =
  let d = Dir.empty () in
  Dir.insert d ~name:"file.txt" ~ino:7 ~stamp:1.0 ~origin:0;
  check Alcotest.(option int) "lookup" (Some 7) (Dir.lookup d "file.txt");
  check Alcotest.(option int) "missing" None (Dir.lookup d "nope");
  check Alcotest.int "cardinal" 1 (Dir.cardinal d)

let test_dir_remove_leaves_tombstone () =
  let d = Dir.empty () in
  Dir.insert d ~name:"x" ~ino:3 ~stamp:1.0 ~origin:0;
  check Alcotest.bool "removed" true (Dir.remove d ~name:"x" ~stamp:2.0 ~origin:1);
  check Alcotest.(option int) "gone" None (Dir.lookup d "x");
  (match Dir.find_entry d "x" with
  | Some e ->
    check Alcotest.bool "tombstone" true (e.Dir.status = Dir.Tombstone);
    check (Alcotest.float 1e-9) "stamp" 2.0 e.Dir.stamp;
    check Alcotest.int "origin" 1 e.Dir.origin
  | None -> Alcotest.fail "tombstone should remain");
  check Alcotest.bool "second remove false" false
    (Dir.remove d ~name:"x" ~stamp:3.0 ~origin:0)

let test_dir_resurrect () =
  let d = Dir.empty () in
  Dir.insert d ~name:"x" ~ino:3 ~stamp:1.0 ~origin:0;
  ignore (Dir.remove d ~name:"x" ~stamp:2.0 ~origin:0);
  Dir.insert d ~name:"x" ~ino:9 ~stamp:3.0 ~origin:0;
  check Alcotest.(option int) "resurrected with new ino" (Some 9) (Dir.lookup d "x")

let test_dir_invalid_names () =
  let d = Dir.empty () in
  List.iter
    (fun name ->
      match Dir.insert d ~name ~ino:1 ~stamp:0.0 ~origin:0 with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail (Printf.sprintf "name %S should be rejected" name))
    [ ""; "a/b"; "a\tb"; "a\nb" ]

let test_dir_codec_roundtrip () =
  let d = Dir.empty () in
  Dir.insert d ~name:"alpha" ~ino:2 ~stamp:1.5 ~origin:0;
  Dir.insert d ~name:"beta" ~ino:3 ~stamp:2.5 ~origin:1;
  ignore (Dir.remove d ~name:"beta" ~stamp:3.5 ~origin:1);
  let d' = Dir.decode (Dir.encode d) in
  check Alcotest.bool "roundtrip equal" true (Dir.equal d d');
  check Alcotest.(option int) "live entry survives" (Some 2) (Dir.lookup d' "alpha");
  match Dir.find_entry d' "beta" with
  | Some e -> check Alcotest.bool "tombstone survives" true (e.Dir.status = Dir.Tombstone)
  | None -> Alcotest.fail "tombstone lost in codec"

let test_dir_hard_links () =
  let d = Dir.empty () in
  Dir.insert d ~name:"one" ~ino:5 ~stamp:1.0 ~origin:0;
  Dir.insert d ~name:"two" ~ino:5 ~stamp:1.0 ~origin:0;
  check Alcotest.(list string) "names of ino" [ "one"; "two" ] (Dir.names_of_ino d 5)

(* ---- mailboxes ---- *)

let test_mbox_insert_delete () =
  let m = Mbox.empty () in
  Mbox.insert m ~id:"0.1" ~stamp:1.0 ~from:"alice" ~body:"hi";
  Mbox.insert m ~id:"0.2" ~stamp:2.0 ~from:"bob" ~body:"yo";
  check Alcotest.int "two live" 2 (Mbox.cardinal m);
  check Alcotest.bool "delete" true (Mbox.delete m ~id:"0.1" ~stamp:3.0);
  check Alcotest.int "one live" 1 (Mbox.cardinal m);
  check Alcotest.bool "mem" false (Mbox.mem m "0.1");
  check Alcotest.bool "double delete" false (Mbox.delete m ~id:"0.1" ~stamp:4.0)

let test_mbox_codec_roundtrip () =
  let m = Mbox.empty () in
  Mbox.insert m ~id:"1.1" ~stamp:1.0 ~from:"a" ~body:"first";
  Mbox.insert m ~id:"2.9" ~stamp:2.0 ~from:"b" ~body:"second";
  ignore (Mbox.delete m ~id:"1.1" ~stamp:3.0);
  let m' = Mbox.decode (Mbox.encode m) in
  check Alcotest.bool "roundtrip" true (Mbox.equal m m')

let test_mbox_merge_union_and_deletes () =
  (* Section 4.5: divergent mailboxes always merge cleanly — inserts and
     deletes only, ids never collide. *)
  let base = Mbox.empty () in
  Mbox.insert base ~id:"0.1" ~stamp:1.0 ~from:"x" ~body:"shared";
  let a = Mbox.decode (Mbox.encode base) in
  let b = Mbox.decode (Mbox.encode base) in
  Mbox.insert a ~id:"1.1" ~stamp:2.0 ~from:"left" ~body:"in A";
  ignore (Mbox.delete a ~id:"0.1" ~stamp:2.5);
  Mbox.insert b ~id:"2.1" ~stamp:2.0 ~from:"right" ~body:"in B";
  let m = Mbox.merge a b in
  check Alcotest.bool "A's insert present" true (Mbox.mem m "1.1");
  check Alcotest.bool "B's insert present" true (Mbox.mem m "2.1");
  check Alcotest.bool "delete wins" false (Mbox.mem m "0.1");
  (* Merge laws. *)
  check Alcotest.bool "commutative" true (Mbox.equal (Mbox.merge a b) (Mbox.merge b a));
  check Alcotest.bool "idempotent" true (Mbox.equal (Mbox.merge a a) a)

(* ---- mount table ---- *)

let test_mount_basics () =
  let m = Mount.create ~root_fg:0 in
  check Alcotest.bool "root" true
    (Gfile.equal (Mount.root m) (Gfile.make ~fg:0 ~ino:1));
  let point = Gfile.make ~fg:0 ~ino:42 in
  Mount.add m ~mount_point:point ~child_fg:1;
  check Alcotest.(option int) "mounted_at" (Some 1) (Mount.mounted_at m point);
  check Alcotest.(option int) "not a mount point" None
    (Mount.mounted_at m (Gfile.make ~fg:0 ~ino:43));
  (match Mount.mount_point_of m 1 with
  | Some p -> check Alcotest.bool "reverse lookup" true (Gfile.equal p point)
  | None -> Alcotest.fail "reverse lookup failed");
  check Alcotest.(option Alcotest.reject) "root has no mount point" None
    (Mount.mount_point_of m 0 |> Option.map (fun _ -> ()));
  check Alcotest.(list int) "filegroups" [ 0; 1 ] (Mount.filegroups m)

let test_mount_rejects_duplicates () =
  let m = Mount.create ~root_fg:0 in
  let point = Gfile.make ~fg:0 ~ino:5 in
  Mount.add m ~mount_point:point ~child_fg:1;
  (match Mount.add m ~mount_point:point ~child_fg:2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate mount point accepted");
  match Mount.add m ~mount_point:(Gfile.make ~fg:0 ~ino:6) ~child_fg:1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double mount of same fg accepted"

let () =
  Alcotest.run "catalog"
    [
      ("gfile", [ Alcotest.test_case "compare/pp" `Quick test_gfile_compare ]);
      ( "dir",
        [
          Alcotest.test_case "insert/lookup" `Quick test_dir_insert_lookup;
          Alcotest.test_case "tombstones" `Quick test_dir_remove_leaves_tombstone;
          Alcotest.test_case "resurrect" `Quick test_dir_resurrect;
          Alcotest.test_case "invalid names" `Quick test_dir_invalid_names;
          Alcotest.test_case "codec roundtrip" `Quick test_dir_codec_roundtrip;
          Alcotest.test_case "hard links" `Quick test_dir_hard_links;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "insert/delete" `Quick test_mbox_insert_delete;
          Alcotest.test_case "codec roundtrip" `Quick test_mbox_codec_roundtrip;
          Alcotest.test_case "merge" `Quick test_mbox_merge_union_and_deletes;
        ] );
      ( "mount",
        [
          Alcotest.test_case "basics" `Quick test_mount_basics;
          Alcotest.test_case "duplicates rejected" `Quick test_mount_rejects_duplicates;
        ] );
    ]
