(* Dedicated token-protocol tests (section 3.2): manager bookkeeping,
   recall, failure reclaim, and single-valid-copy invariants. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Tokens = Locus_core.Tokens
module Process = Locus_core.Process
module Us = Locus_core.Us
module K = Locus_core.Ktypes

let check = Alcotest.check

let setup () =
  let w = World.create ~config:(World.default_config ~n_sites:3 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/t");
  Kernel.write_file k0 p0 "/t" "0123456789";
  ignore (World.settle w);
  (w, k0, p0)

let test_origin_holds_initially () =
  let _w, k0, p0 = setup () in
  let fdnum = Kernel.open_path k0 p0 "/t" Proto.Mode_read in
  let fd = Kernel.fd_of k0 p0 fdnum in
  check Alcotest.bool "valid at origin" true fd.K.f_valid;
  check Alcotest.int "holder is origin" 0 fd.K.f_holder;
  check Alcotest.int "manager is origin" 0 (Tokens.manager_of fd.K.f_key)

let test_token_moves_offset () =
  let w, k0, p0 = setup () in
  let fdnum = Kernel.open_path k0 p0 "/t" Proto.Mode_read in
  ignore (Kernel.read_fd k0 p0 fdnum ~len:3);
  Kernel.set_advice p0 (Some 2);
  let pid, _ = Process.fork k0 p0 in
  let k2 = World.kernel w 2 in
  let child = Process.get_proc k2 pid in
  let fd0 = Kernel.fd_of k0 p0 fdnum in
  let fd2 = Kernel.fd_of k2 child fdnum in
  check Alcotest.bool "remote copy not yet valid" false fd2.K.f_valid;
  ignore (Kernel.read_fd k2 child fdnum ~len:3);
  (* Exactly one valid copy at any time. *)
  check Alcotest.bool "remote now valid" true fd2.K.f_valid;
  check Alcotest.bool "origin invalidated" false fd0.K.f_valid;
  check Alcotest.int "offset travelled" 6 fd2.K.f_offset

let test_failure_reclaims_token () =
  let w, k0, p0 = setup () in
  let fdnum = Kernel.open_path k0 p0 "/t" Proto.Mode_read in
  ignore (Kernel.read_fd k0 p0 fdnum ~len:4);
  Kernel.set_advice p0 (Some 2);
  let pid, _ = Process.fork k0 p0 in
  let k2 = World.kernel w 2 in
  let child = Process.get_proc k2 pid in
  ignore (Kernel.read_fd k2 child fdnum ~len:2);
  (* The holder's site dies; the manager reclaims the token with its last
     known offset. *)
  World.crash_site w 2;
  ignore (World.detect_failures w ~initiator:0);
  let fd0 = Kernel.fd_of k0 p0 fdnum in
  check Alcotest.bool "token reclaimed by manager" true fd0.K.f_valid;
  (* The parent keeps working (offset reverts to the manager's record). *)
  let data = Kernel.read_fd k0 p0 fdnum ~len:2 in
  check Alcotest.int "read proceeds" 2 (String.length data)

let test_acquire_is_idempotent () =
  let w, k0, p0 = setup () in
  let fdnum = Kernel.open_path k0 p0 "/t" Proto.Mode_read in
  let fd = Kernel.fd_of k0 p0 fdnum in
  let snap = Sim.Stats.snapshot (World.stats w) in
  Tokens.acquire k0 fd;
  Tokens.acquire k0 fd;
  Tokens.acquire k0 fd;
  check Alcotest.int "no messages when already held" 0
    (Sim.Stats.delta_of (World.stats w) snap "net.msg")

let test_three_way_rotation () =
  let w, k0, p0 = setup () in
  let fdnum = Kernel.open_path k0 p0 "/t" Proto.Mode_read in
  Kernel.set_advice p0 (Some 1);
  let pid1, _ = Process.fork k0 p0 in
  Kernel.set_advice p0 (Some 2);
  let pid2, _ = Process.fork k0 p0 in
  let k1 = World.kernel w 1 and k2 = World.kernel w 2 in
  let c1 = Process.get_proc k1 pid1 and c2 = Process.get_proc k2 pid2 in
  (* Round-robin single-byte reads across three sites reconstruct the file
     in order: the token serializes the shared offset. *)
  let buf = Buffer.create 10 in
  for i = 0 to 8 do
    let s =
      match i mod 3 with
      | 0 -> Kernel.read_fd k0 p0 fdnum ~len:1
      | 1 -> Kernel.read_fd k1 c1 fdnum ~len:1
      | _ -> Kernel.read_fd k2 c2 fdnum ~len:1
    in
    Buffer.add_string buf s
  done;
  check Alcotest.string "global order preserved" "012345678" (Buffer.contents buf)

let () =
  Alcotest.run "tokens"
    [
      ( "protocol",
        [
          Alcotest.test_case "origin holds" `Quick test_origin_holds_initially;
          Alcotest.test_case "offset moves" `Quick test_token_moves_offset;
          Alcotest.test_case "failure reclaim" `Quick test_failure_reclaims_token;
          Alcotest.test_case "idempotent acquire" `Quick test_acquire_is_idempotent;
          Alcotest.test_case "three-way rotation" `Quick test_three_way_rotation;
        ] );
    ]
