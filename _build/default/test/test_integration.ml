(* End-to-end cluster scenarios: transparent access, replication and
   propagation, partitioned operation, merge and reconciliation. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Vvec = Vv.Version_vector

let check = Alcotest.check
let string_ = Alcotest.string
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let make_world ?(n = 5) () =
  let config = World.default_config ~n_sites:n () in
  World.create ~config ()

(* Write at one site, read everywhere: network transparency. *)
let test_transparent_rw () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/hello.txt");
  Kernel.write_file k0 p0 "/hello.txt" "hello from site 0";
  ignore (World.settle w);
  List.iter
    (fun site ->
      let k = World.kernel w site and p = World.proc w site in
      check string_
        (Printf.sprintf "read from site %d" site)
        "hello from site 0"
        (Kernel.read_file k p "/hello.txt"))
    [ 0; 1; 2; 3; 4 ]

(* A remote update is seen by subsequent readers at every site. *)
let test_remote_update () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  ignore (Kernel.creat k0 p0 "/data");
  Kernel.write_file k0 p0 "/data" "v1";
  ignore (World.settle w);
  Kernel.write_file k3 p3 "/data" "v2 from site 3";
  ignore (World.settle w);
  check string_ "site 1 sees v2" "v2 from site 3"
    (Kernel.read_file (World.kernel w 1) (World.proc w 1) "/data");
  check string_ "site 0 sees v2" "v2 from site 3"
    (Kernel.read_file k0 p0 "/data")

(* Propagation brings every pack a copy; after settle all copies carry the
   same version vector. *)
let test_replication_converges () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Locus_core.Kernel.set_ncopies p0 5;
  ignore (Kernel.creat k0 p0 "/repl");
  Kernel.write_file k0 p0 "/repl" (String.make 3000 'x');
  ignore (World.settle w);
  let vvs =
    List.filter_map
      (fun site ->
        let k = World.kernel w site in
        match Hashtbl.find_opt k.K.packs 0 with
        | Some pack -> (
          let gf =
            Locus_core.Pathname.resolve_from k
              ~cwd:(Catalog.Mount.root k.K.mount) ~context:[] "/repl"
          in
          match Storage.Pack.find_inode pack gf.Catalog.Gfile.ino with
          | Some inode -> Some inode.Storage.Inode.vv
          | None -> None)
        | None -> None)
      [ 0; 1; 2; 3; 4 ]
  in
  check int_ "all five packs hold a copy" 5 (List.length vvs);
  let first = List.hd vvs in
  List.iter (fun vv -> check bool_ "vv equal" true (Vvec.equal first vv)) vvs

(* Divergent updates to a regular file in two partitions are detected as a
   conflict on merge; the owner is notified and access fails. *)
let test_partition_conflict () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Locus_core.Kernel.set_ncopies p0 5;
  ignore (Kernel.creat k0 p0 "/mail");
  ignore (Kernel.creat k0 p0 "/shared.dat");
  Kernel.write_file k0 p0 "/shared.dat" "base";
  ignore (World.settle w);
  (* Partition {0,1} vs {2,3,4}; update on both sides. *)
  let reports = World.partition w [ [ 0; 1 ]; [ 2; 3; 4 ] ] in
  Alcotest.(check int) "two partition reports" 2 (List.length reports);
  Kernel.write_file k0 p0 "/shared.dat" "left version";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  Kernel.write_file k2 p2 "/shared.dat" "right version";
  ignore (World.settle w);
  let _merge, recon = World.heal_and_merge w in
  let total_conflicts =
    List.fold_left
      (fun acc (_, r) -> acc + r.Recovery.Reconcile.conflicts_marked)
      0 recon
  in
  check int_ "one conflict detected" 1 total_conflicts;
  (match Kernel.read_file k0 p0 "/shared.dat" with
  | _ -> Alcotest.fail "conflicted file should refuse normal access"
  | exception K.Error (Proto.Econflict, _) -> ());
  (* Interactive resolution: keep site 2's version. *)
  let gf =
    Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/shared.dat"
  in
  let css = World.kernel w 0 in
  check bool_ "manual resolve succeeds" true
    (Recovery.Reconcile.resolve_manual css gf ~winner:2);
  ignore (World.settle w);
  check string_ "winner version visible" "right version"
    (Kernel.read_file k0 p0 "/shared.dat")

(* Directory updates in different partitions merge automatically: both new
   files are visible afterwards. *)
let test_directory_merge () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Locus_core.Kernel.set_ncopies p0 5;
  ignore (Kernel.mkdir k0 p0 "/proj");
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3; 4 ] ]);
  ignore (Kernel.creat k0 p0 "/proj/left.txt");
  Kernel.write_file k0 p0 "/proj/left.txt" "L";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  ignore (Kernel.creat k2 p2 "/proj/right.txt");
  Kernel.write_file k2 p2 "/proj/right.txt" "R";
  ignore (World.settle w);
  let _merge, recon = World.heal_and_merge w in
  let dir_merges =
    List.fold_left
      (fun acc (_, r) -> acc + r.Recovery.Reconcile.dir_merges)
      0 recon
  in
  check bool_ "at least one directory merge" true (dir_merges >= 1);
  let p4 = World.proc w 4 and k4 = World.kernel w 4 in
  check string_ "left file visible at site 4" "L"
    (Kernel.read_file k4 p4 "/proj/left.txt");
  check string_ "right file visible at site 4" "R"
    (Kernel.read_file k4 p4 "/proj/right.txt")

let () =
  Alcotest.run "integration"
    [
      ( "cluster",
        [
          Alcotest.test_case "transparent read/write" `Quick test_transparent_rw;
          Alcotest.test_case "remote update visibility" `Quick test_remote_update;
          Alcotest.test_case "replication converges" `Quick test_replication_converges;
          Alcotest.test_case "partition conflict detection" `Quick test_partition_conflict;
          Alcotest.test_case "directory merge" `Quick test_directory_merge;
        ] );
    ]
