(* Unit + property tests for version vectors (Parker et al.). *)

module Vvec = Vv.Version_vector

let check = Alcotest.check

let order : Vvec.order Alcotest.testable =
  Alcotest.testable Vvec.pp_order ( = )

let test_zero () =
  check order "zero vs zero" Vvec.Equal (Vvec.compare_vv Vvec.zero Vvec.zero);
  check Alcotest.int "component of zero" 0 (Vvec.get Vvec.zero 3)

let test_bump () =
  let v = Vvec.bump (Vvec.bump Vvec.zero 1) 1 in
  check Alcotest.int "bumped twice" 2 (Vvec.get v 1);
  check order "bump dominates" Vvec.Dominates (Vvec.compare_vv v Vvec.zero);
  check order "zero dominated" Vvec.Dominated (Vvec.compare_vv Vvec.zero v)

let test_concurrent () =
  let a = Vvec.bump Vvec.zero 1 in
  let b = Vvec.bump Vvec.zero 2 in
  check order "concurrent" Vvec.Concurrent (Vvec.compare_vv a b);
  check Alcotest.bool "conflict" true (Vvec.conflict a b)

let test_merge_resolves () =
  let a = Vvec.bump Vvec.zero 1 in
  let b = Vvec.bump Vvec.zero 2 in
  let m = Vvec.merge a b in
  check Alcotest.bool "merge >= a" true (Vvec.dominates_or_equal m a);
  check Alcotest.bool "merge >= b" true (Vvec.dominates_or_equal m b)

let test_of_list_roundtrip () =
  let v = Vvec.of_list [ (3, 2); (1, 5); (7, 0) ] in
  check Alcotest.(list (pair int int)) "zeroes dropped, sorted"
    [ (1, 5); (3, 2) ] (Vvec.to_list v)

let test_paper_example () =
  (* Section 4.2: f modified at S1 only -> no conflict; modified at both ->
     conflict. *)
  let base = Vvec.bump Vvec.zero 1 in
  let f1 = Vvec.bump base 1 in
  check Alcotest.bool "f1 propagates cleanly" true (Vvec.dominates_or_equal f1 base);
  let f2 = Vvec.bump base 2 in
  check Alcotest.bool "independent updates conflict" true (Vvec.conflict f1 f2)

(* ---- properties ---- *)

let sites = QCheck.Gen.oneofl [ 0; 1; 2; 3; 4 ]

let gen_vv =
  QCheck.Gen.(
    list_size (int_bound 12) sites
    >|= fun bumps -> List.fold_left Vvec.bump Vvec.zero bumps)

let arb_vv = QCheck.make ~print:Vvec.to_string gen_vv

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300
    (QCheck.pair arb_vv arb_vv)
    (fun (a, b) -> Vvec.equal (Vvec.merge a b) (Vvec.merge b a))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge idempotent" ~count:300 arb_vv (fun v ->
      Vvec.equal (Vvec.merge v v) v)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:300
    (QCheck.triple arb_vv arb_vv arb_vv)
    (fun (a, b, c) ->
      Vvec.equal (Vvec.merge a (Vvec.merge b c)) (Vvec.merge (Vvec.merge a b) c))

let prop_merge_dominates_both =
  QCheck.Test.make ~name:"merge dominates both" ~count:300
    (QCheck.pair arb_vv arb_vv)
    (fun (a, b) ->
      let m = Vvec.merge a b in
      Vvec.dominates_or_equal m a && Vvec.dominates_or_equal m b)

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair arb_vv arb_vv)
    (fun (a, b) ->
      match (Vvec.compare_vv a b, Vvec.compare_vv b a) with
      | Vvec.Equal, Vvec.Equal
      | Vvec.Dominates, Vvec.Dominated
      | Vvec.Dominated, Vvec.Dominates
      | Vvec.Concurrent, Vvec.Concurrent ->
        true
      | _ -> false)

let prop_bump_strictly_dominates =
  QCheck.Test.make ~name:"bump strictly dominates" ~count:300
    (QCheck.pair arb_vv (QCheck.make sites))
    (fun (v, s) -> Vvec.compare_vv (Vvec.bump v s) v = Vvec.Dominates)

let prop_conflict_iff_incomparable =
  QCheck.Test.make ~name:"conflict iff neither dominates" ~count:300
    (QCheck.pair arb_vv arb_vv)
    (fun (a, b) ->
      Vvec.conflict a b
      = ((not (Vvec.dominates_or_equal a b)) && not (Vvec.dominates_or_equal b a)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_merge_commutative;
      prop_merge_idempotent;
      prop_merge_associative;
      prop_merge_dominates_both;
      prop_compare_antisymmetric;
      prop_bump_strictly_dominates;
      prop_conflict_iff_incomparable;
    ]

let () =
  Alcotest.run "vv"
    [
      ( "unit",
        [
          Alcotest.test_case "zero" `Quick test_zero;
          Alcotest.test_case "bump" `Quick test_bump;
          Alcotest.test_case "concurrent" `Quick test_concurrent;
          Alcotest.test_case "merge resolves" `Quick test_merge_resolves;
          Alcotest.test_case "of_list" `Quick test_of_list_roundtrip;
          Alcotest.test_case "paper example" `Quick test_paper_example;
        ] );
      ("properties", props);
    ]
