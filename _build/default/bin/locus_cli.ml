(* locus-cli: drive a simulated LOCUS network from the command line.

   locus-cli demo       -- a guided tour: transparency, replication, remote exec
   locus-cli partition  -- partitioned operation and merge, with reports
   locus-cli trace      -- run a small workload and dump the protocol trace
   locus-cli stats      -- run a mixed workload and dump the counters *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Process = Locus_core.Process
module K = Locus_core.Ktypes
module Stats = Sim.Stats

let make_world n seed =
  let base = World.default_config ~n_sites:n () in
  World.create ~config:{ base with World.seed = Int64.of_int seed } ()

let mixed_workload w =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 3;
  ignore (Kernel.mkdir k0 p0 "/home");
  ignore (Kernel.creat k0 p0 "/home/a.txt");
  Kernel.write_file k0 p0 "/home/a.txt" "alpha";
  let k1 = World.kernel w (1 mod List.length (World.sites w)) in
  let p1 = World.proc w (Kernel.site k1) in
  ignore (Kernel.creat k1 p1 "/home/b.txt");
  Kernel.write_file k1 p1 "/home/b.txt" "beta";
  Kernel.append_file k0 p0 "/home/b.txt" " + appended";
  ignore (World.settle w)

let demo n seed =
  let w = make_world n seed in
  Printf.printf "LOCUS demo: %d sites\n\n" n;
  mixed_workload w;
  let last = List.length (World.sites w) - 1 in
  let k = World.kernel w last and p = World.proc w last in
  Printf.printf "site %d lists /home:\n" last;
  List.iter
    (fun (e : Catalog.Dir.entry) -> Printf.printf "  %s (ino %d)\n" e.Catalog.Dir.name e.Catalog.Dir.ino)
    (Kernel.readdir k p "/home");
  Printf.printf "site %d reads b.txt: %S\n" last (Kernel.read_file k p "/home/b.txt");
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_advice p0 (Some last);
  ignore (Kernel.creat k0 p0 "/prog");
  Kernel.write_file k0 p0 "/prog" "load module";
  ignore (World.settle w);
  let pid, site = Process.run k0 p0 "/prog" in
  Printf.printf "ran /prog remotely: pid %d at site %d\n" pid site;
  Printf.printf "\n%d messages, %.2f simulated ms\n"
    (Stats.get (World.stats w) "net.msg")
    (World.now w);
  0

let partition_demo n seed =
  let w = make_world n seed in
  mixed_workload w;
  let half = n / 2 in
  let left = List.init half Fun.id and right = List.init (n - half) (fun i -> half + i) in
  Printf.printf "partitioning %d sites into [%s] | [%s]\n" n
    (String.concat "," (List.map string_of_int left))
    (String.concat "," (List.map string_of_int right));
  let reports = World.partition w [ left; right ] in
  List.iter
    (fun (r : Recovery.Partition.report) ->
      Printf.printf "  partition protocol: %d members, %d polls\n"
        (List.length r.Recovery.Partition.members)
        r.Recovery.Partition.polls)
    reports;
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.write_file k0 p0 "/home/a.txt" "alpha v2 (left)";
  let kr = World.kernel w half and pr = World.proc w half in
  (try Kernel.write_file kr pr "/home/a.txt" "alpha v2 (right)"
   with K.Error (e, _) ->
     Printf.printf "  right-side update refused: %s\n" (Proto.errno_to_string e));
  ignore (World.settle w);
  Printf.printf "healing and merging...\n";
  let merge, recon = World.heal_and_merge w in
  Printf.printf "  merge: %d members\n" (List.length merge.Recovery.Merge.members);
  List.iter
    (fun (fg, r) ->
      Format.printf "  reconcile fg %d: %a@." fg Recovery.Reconcile.pp_report r)
    recon;
  (match Kernel.read_file kr pr "/home/a.txt" with
  | body -> Printf.printf "a.txt after merge: %S\n" body
  | exception K.Error (Proto.Econflict, _) ->
    Printf.printf "a.txt is in conflict; resolve with the reconciliation tool\n");
  0

let trace_demo n seed =
  let w = make_world n seed in
  mixed_workload w;
  Printf.printf "protocol trace (%d sites):\n" n;
  List.iter
    (fun (e : Sim.Trace.event) -> Format.printf "%a@." Sim.Trace.pp_event e)
    (Sim.Trace.events (Sim.Engine.trace (World.engine w)));
  0

let stats_demo n seed =
  let w = make_world n seed in
  mixed_workload w;
  Printf.printf "counters after a mixed workload (%d sites):\n" n;
  List.iter
    (fun (name, v) -> Printf.printf "  %-28s %d\n" name v)
    (Stats.counters (World.stats w));
  0

open Cmdliner

let n_arg =
  Arg.(value & opt int 5 & info [ "n"; "sites" ] ~docv:"N" ~doc:"Number of sites.")

let seed_arg =
  Arg.(value & opt int 68357 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ n_arg $ seed_arg)

let () =
  let doc = "drive a simulated LOCUS distributed operating system" in
  let info = Cmd.info "locus-cli" ~version:"1.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            cmd "demo" "guided tour of transparency and remote execution" demo;
            cmd "partition" "partitioned operation, merge and reconciliation"
              partition_demo;
            cmd "trace" "dump the kernel protocol trace of a workload" trace_demo;
            cmd "stats" "dump the statistics counters of a workload" stats_demo;
          ]))
