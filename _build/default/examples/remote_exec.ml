(* Transparent remote processes (section 3) on heterogeneous cpus.

   A hidden directory holds one load module per machine type under a
   single globally unique command name; [run] executes the command at any
   site and the right module is selected transparently. Parent and child
   share an open file descriptor whose file position migrates between the
   machines under the token mechanism.

   Run with: dune exec examples/remote_exec.exe *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Process = Locus_core.Process
module K = Locus_core.Ktypes

let () =
  Printf.printf "== Remote processes on a heterogeneous LOCUS net ==\n\n";
  let base = World.default_config ~n_sites:4 () in
  let config =
    { base with World.machine_type = (fun s -> if s < 2 then "vax" else "pdp11") }
  in
  let w = World.create ~config () in
  Printf.printf "sites 0,1 are VAX 750s; sites 2,3 are PDP-11/45s\n\n";

  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;

  (* /bin/who is a hidden directory with one load module per cpu type. *)
  ignore (Kernel.mkdir k0 p0 "/bin");
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/bin/who");
  ignore (Kernel.creat k0 p0 "/bin/who/@vax");
  Kernel.write_file k0 p0 "/bin/who/@vax" (String.make 2048 'V');
  ignore (Kernel.creat k0 p0 "/bin/who/@pdp11");
  Kernel.write_file k0 p0 "/bin/who/@pdp11" (String.make 1024 'P');
  ignore (World.settle w);
  Printf.printf "/bin/who is a hidden directory: vax module 2 pages, pdp11 module 1 page\n";

  (* Run the same command name at a VAX and at a PDP-11. *)
  List.iter
    (fun dest ->
      Kernel.set_advice p0 (Some dest);
      let pid, site = Process.run k0 p0 "/bin/who" in
      let child = Process.get_proc (World.kernel w site) pid in
      Printf.printf "run /bin/who at site %d (%s): pid %d, image %d page(s)\n"
        site
        (World.kernel w site).K.machine_type
        pid child.K.p_image_pages;
      Process.exit_proc (World.kernel w site) child 0)
    [ 1; 3 ];
  ignore (World.settle w);

  (* Shared file descriptors: parent reads, forks to another machine, the
     child continues exactly where the parent stopped. *)
  Printf.printf "\nshared descriptor across machines:\n";
  ignore (Kernel.creat k0 p0 "/data");
  Kernel.write_file k0 p0 "/data" "abcdefghijklmnopqrstuvwxyz";
  ignore (World.settle w);
  let fd = Kernel.open_path k0 p0 "/data" Proto.Mode_read in
  Printf.printf "  parent (site 0) reads 10: %S\n" (Kernel.read_fd k0 p0 fd ~len:10);
  Kernel.set_advice p0 (Some 2);
  let pid, _ = Process.fork k0 p0 in
  let k2 = World.kernel w 2 in
  let child = Process.get_proc k2 pid in
  Printf.printf "  forked child to site 2 (pid %d)\n" pid;
  Printf.printf "  child  (site 2) reads 10: %S  <- token moved the offset\n"
    (Kernel.read_fd k2 child fd ~len:10);
  Printf.printf "  parent (site 0) reads  6: %S  <- and back\n"
    (Kernel.read_fd k0 p0 fd ~len:6);
  Printf.printf "  token flips so far: %d\n"
    (Sim.Stats.get (World.stats w) "token.flip");

  (* Cross-machine signals and exit status. *)
  Printf.printf "\nsignals and exit:\n";
  Process.signal k0 ~site:2 ~pid 15;
  Printf.printf "  parent signalled child with 15: child pending=%s\n"
    (String.concat "," (List.map string_of_int child.K.p_signals));
  Process.exit_proc k2 child 7;
  ignore (World.settle w);
  (match Process.wait k0 p0 with
  | Some (wpid, status) ->
    Printf.printf "  wait() -> pid %d exited with status %d\n" wpid status
  | None -> Printf.printf "  wait() -> nothing?\n");

  (* Error reflection: a child's machine fails. *)
  Printf.printf "\nmachine failure reflection:\n";
  Kernel.set_advice p0 (Some 3);
  let pid2, _ = Process.fork k0 p0 in
  Printf.printf "  forked pid %d to site 3; crashing site 3...\n" pid2;
  World.crash_site w 3;
  ignore (World.detect_failures w ~initiator:0);
  (match Process.read_error_info k0 p0 with
  | Some info -> Printf.printf "  parent's error info: %s\n" info
  | None -> Printf.printf "  no error info?\n");
  Printf.printf "done.\n"
