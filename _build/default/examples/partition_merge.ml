(* Partitioned operation and dynamic merge (sections 4 and 5).

   The network splits in two; both halves keep working — including updates
   to replicated files. On merge, the reconciliation machinery propagates
   clean updates, merges directories by the rules of section 4.4, and
   reports a genuine update/update conflict on a regular file to its owner
   by electronic mail.

   Run with: dune exec examples/partition_merge.exe *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Reconcile = Recovery.Reconcile

let () =
  Printf.printf "== Partitioned operation and merge ==\n\n";
  let w = World.create ~config:(World.default_config ~n_sites:6 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 6;
  ignore (Kernel.mkdir k0 p0 "/mail");
  ignore (Kernel.creat ~ftype:Storage.Inode.Mailbox k0 p0 "/mail/root");
  ignore (Kernel.mkdir k0 p0 "/src");
  ignore (Kernel.creat k0 p0 "/src/design.doc");
  Kernel.write_file k0 p0 "/src/design.doc" "v1 of the design";
  ignore (World.settle w);
  Printf.printf "setup: /src/design.doc replicated at all 6 sites\n\n";

  (* Partition: {0,1,2} | {3,4,5}. Each side runs the partition protocol. *)
  let reports = World.partition w [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
  List.iter
    (fun (r : Recovery.Partition.report) ->
      Printf.printf "partition protocol: members=[%s] in %d polls, %d rounds\n"
        (String.concat "," (List.map string_of_int r.Recovery.Partition.members))
        r.Recovery.Partition.polls r.Recovery.Partition.rounds)
    reports;

  (* Both sides work independently. *)
  Printf.printf "\nleft side: creates /src/left.ml, edits design.doc\n";
  ignore (Kernel.creat k0 p0 "/src/left.ml");
  Kernel.write_file k0 p0 "/src/left.ml" "let left = true";
  Kernel.write_file k0 p0 "/src/design.doc" "v2-left: redesigned the left way";

  let k4 = World.kernel w 4 and p4 = World.proc w 4 in
  Printf.printf "right side: creates /src/right.ml, edits design.doc too\n";
  ignore (Kernel.creat k4 p4 "/src/right.ml");
  Kernel.write_file k4 p4 "/src/right.ml" "let right = true";
  Kernel.write_file k4 p4 "/src/design.doc" "v2-right: redesigned the right way";
  ignore (World.settle w);

  (* Heal and merge. *)
  Printf.printf "\nhealing the network; running the merge protocol...\n";
  let merge, recon = World.heal_and_merge w in
  Printf.printf "merge: members=[%s], %d polled, waited %.0f ms\n"
    (String.concat "," (List.map string_of_int merge.Recovery.Merge.members))
    merge.Recovery.Merge.polled merge.Recovery.Merge.wait_charged;
  List.iter
    (fun (fg, r) ->
      Format.printf "reconciliation (filegroup %d): %a@." fg Reconcile.pp_report r)
    recon;

  (* Both new files are visible everywhere: the directory merged. *)
  Printf.printf "\nafter merge, site 5 sees:\n";
  let k5 = World.kernel w 5 and p5 = World.proc w 5 in
  List.iter
    (fun (e : Catalog.Dir.entry) ->
      Printf.printf "  /src/%s\n" e.Catalog.Dir.name)
    (Kernel.readdir k5 p5 "/src");
  Printf.printf "  left.ml:  %S\n" (Kernel.read_file k5 p5 "/src/left.ml");
  Printf.printf "  right.ml: %S\n" (Kernel.read_file k5 p5 "/src/right.ml");

  (* design.doc was updated on both sides: a real conflict. *)
  (match Kernel.read_file k5 p5 "/src/design.doc" with
  | body -> Printf.printf "  design.doc unexpectedly readable: %S\n" body
  | exception K.Error (Proto.Econflict, _) ->
    Printf.printf "  design.doc: IN CONFLICT (normal access refused)\n"
  | exception K.Error (e, _) ->
    Printf.printf "  design.doc: error %s\n" (Proto.errno_to_string e));

  (* The owner was told by mail. *)
  Printf.printf "\nroot's mailbox:\n";
  List.iter
    (fun (m : Catalog.Mailbox.msg) ->
      Printf.printf "  from %s: %s\n" m.Catalog.Mailbox.from m.Catalog.Mailbox.body)
    (Kernel.mailbox_read k0 p0 "/mail/root");

  (* Interactive resolution: keep the right-hand version. *)
  let gf =
    Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/src/design.doc"
  in
  Printf.printf "\nresolving: keep the copy stored at site 4\n";
  ignore (Reconcile.resolve_manual (World.kernel w 0) gf ~winner:4);
  ignore (World.settle w);
  Printf.printf "design.doc now reads: %S\n" (Kernel.read_file k5 p5 "/src/design.doc");
  Printf.printf "done.\n"
