(* Replication tour: availability and performance from replicated storage.

   Walks through the motivation of section 2.2: replicated files stay
   readable when sites fail, reads get served from a nearby copy, and the
   system keeps all copies consistent through commit notifications and
   background pull propagation.

   Run with: dune exec examples/replication_tour.exe *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Pack = Storage.Pack
module Vvec = Vv.Version_vector

let show_copies w path =
  let k0 = World.kernel w 0 in
  let gf =
    Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] path
  in
  Printf.printf "  copies of %s:\n" path;
  List.iter
    (fun site ->
      let k = World.kernel w site in
      match Hashtbl.find_opt k.K.packs 0 with
      | Some pack -> (
        match Pack.find_inode pack gf.Catalog.Gfile.ino with
        | Some inode ->
          Printf.printf "    site %d: vv=%s%s\n" site
            (Vvec.to_string inode.Storage.Inode.vv)
            (if inode.Storage.Inode.deleted then " (deleted)" else "")
        | None -> Printf.printf "    site %d: no copy\n" site)
      | None -> Printf.printf "    site %d: no pack\n" site)
    (World.sites w)

let () =
  Printf.printf "== Replication: availability through copies ==\n\n";
  let w = World.create ~config:(World.default_config ~n_sites:5 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in

  (* One copy vs three copies. *)
  Kernel.set_ncopies p0 1;
  ignore (Kernel.creat k0 p0 "/fragile");
  Kernel.write_file k0 p0 "/fragile" "only one copy of me";
  Kernel.set_ncopies p0 3;
  ignore (Kernel.creat k0 p0 "/robust");
  Kernel.write_file k0 p0 "/robust" "three copies of me";
  ignore (World.settle w);
  show_copies w "/fragile";
  show_copies w "/robust";

  (* Crash the site holding the single copy. *)
  Printf.printf "\ncrashing site 0 (stores both files)...\n";
  World.crash_site w 0;
  ignore (World.detect_failures w ~initiator:1);

  let k4 = World.kernel w 4 and p4 = World.proc w 4 in
  (match Kernel.read_file k4 p4 "/fragile" with
  | body -> Printf.printf "  /fragile unexpectedly readable: %s\n" body
  | exception K.Error (e, _) ->
    Printf.printf "  /fragile unavailable as expected (%s)\n"
      (Proto.errno_to_string e));
  (match Kernel.read_file k4 p4 "/robust" with
  | body -> Printf.printf "  /robust still available: %S\n" body
  | exception K.Error (e, _) ->
    Printf.printf "  /robust LOST (%s) -- should not happen!\n"
      (Proto.errno_to_string e));

  (* Updates during the outage are permitted: availability goes UP with
     replication (section 4.1). *)
  Kernel.write_file k4 p4 "/robust" "updated while site 0 was down";
  ignore (World.settle w);
  Printf.printf "  /robust updated during the outage.\n";

  (* Site 0 returns; the merge protocol brings it back, and update
     propagation refreshes its stale copy. *)
  Printf.printf "\nrestarting site 0 and merging...\n";
  World.restart_site w 0;
  ignore (World.heal_and_merge w);
  show_copies w "/robust";
  Printf.printf "  site 0 now reads: %S\n" (Kernel.read_file k0 p0 "/robust");
  Printf.printf "done.\n"
