(* Quickstart: a five-site LOCUS network in a few dozen lines.

   Builds a cluster, creates a replicated file at one site, and reads it
   from every other site — demonstrating the network-transparent filesystem
   of section 2: the same pathname works everywhere, with no location
   information in any name.

   Run with: dune exec examples/quickstart.exe *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Stats = Sim.Stats

let () =
  Printf.printf "== LOCUS quickstart: 5 sites on one simulated Ethernet ==\n\n";
  let w = World.create ~config:(World.default_config ~n_sites:5 ()) () in

  (* Every site has a kernel and an init process. *)
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in

  (* Ask for three copies of everything this process creates (the
     per-process replication-factor call of section 2.3.7). *)
  Kernel.set_ncopies p0 3;

  ignore (Kernel.mkdir k0 p0 "/project");
  ignore (Kernel.creat k0 p0 "/project/notes.txt");
  Kernel.write_file k0 p0 "/project/notes.txt"
    "LOCUS makes the network of machines appear as a single computer.";
  Printf.printf "site 0 wrote /project/notes.txt (3 copies requested)\n";

  (* Let background update propagation run. *)
  ignore (World.settle w);

  (* Transparent access: the same name works at every site; the kernel
     finds a storage site through the CSS, invisibly. *)
  List.iter
    (fun site ->
      let k = World.kernel w site and p = World.proc w site in
      let body = Kernel.read_file k p "/project/notes.txt" in
      Printf.printf "site %d reads: %s\n" site body)
    [ 1; 2; 3; 4 ];

  (* Updates from any site are equally transparent. *)
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  Kernel.append_file k3 p3 "/project/notes.txt" "\n  -- appended from site 3";
  ignore (World.settle w);
  Printf.printf "\nafter an append at site 3, site 0 reads:\n%s\n"
    (Kernel.read_file k0 p0 "/project/notes.txt");

  (* A peek under the hood. *)
  let stats = World.stats w in
  Printf.printf "\nunder the hood: %d kernel messages, %d bytes, %.2f ms simulated\n"
    (Stats.get stats "net.msg") (Stats.get stats "net.bytes") (World.now w);
  Printf.printf "done.\n"
