(* Nested transactions [MEUL 83] on the LOCUS commit machinery.

   A money transfer across two replicated files is atomic: subtransactions
   commit into their parent or abort independently; nothing reaches the
   filesystem until the top-level commit; and a partition that takes away
   a site the transaction depends on aborts it cleanly (the "Distributed
   Transaction" row of the section 5.6 failure table).

   Run with: dune exec examples/txn_tour.exe *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes

let balances w =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Printf.printf "  checking: %s   savings: %s\n"
    (Kernel.read_file k0 p0 "/bank/checking")
    (Kernel.read_file k0 p0 "/bank/savings")

let () =
  Printf.printf "== Nested transactions ==\n\n";
  let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  (* /bank is replicated at every site: a file's storage sites must store
     the parent directory (rule (a) of section 2.3.7). *)
  Kernel.set_ncopies p0 4;
  ignore (Kernel.mkdir k0 p0 "/bank");
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/bank/checking");
  Kernel.write_file k0 p0 "/bank/checking" "100";
  ignore (Kernel.creat k0 p0 "/bank/savings");
  Kernel.write_file k0 p0 "/bank/savings" "0";
  ignore (World.settle w);
  Printf.printf "initial balances:\n";
  balances w;

  (* A committed transfer. *)
  Printf.printf "\ntransfer 30 inside a transaction:\n";
  let t = Txn.begin_top k0 p0 in
  let c = int_of_string (Txn.read t "/bank/checking") in
  let s = int_of_string (Txn.read t "/bank/savings") in
  Txn.write t "/bank/checking" (string_of_int (c - 30));
  Txn.write t "/bank/savings" (string_of_int (s + 30));
  Printf.printf "  (before commit, the filesystem still shows the old state)\n";
  balances w;
  Txn.commit t;
  ignore (World.settle w);
  Printf.printf "  after commit:\n";
  balances w;

  (* A subtransaction that aborts without hurting its parent. *)
  Printf.printf "\nsubtransaction abort is independent:\n";
  let top = Txn.begin_top k0 p0 in
  Txn.write top "/bank/checking" "60";
  let sub = Txn.begin_sub top in
  Txn.write sub "/bank/checking" "0";
  Printf.printf "  sub sees its own write: checking=%s\n" (Txn.read sub "/bank/checking");
  Txn.abort sub;
  Printf.printf "  after sub abort, parent still sees: checking=%s\n"
    (Txn.read top "/bank/checking");
  Txn.commit top;
  ignore (World.settle w);
  balances w;

  (* Isolation: a concurrent transaction at another site cannot take the
     same locks. *)
  Printf.printf "\nisolation via the CSS modification lock:\n";
  let t1 = Txn.begin_top k0 p0 in
  Txn.write t1 "/bank/checking" "59";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  let t2 = Txn.begin_top k2 p2 in
  (match Txn.write t2 "/bank/checking" "999" with
  | () -> Printf.printf "  !! second writer was not blocked\n"
  | exception Txn.Txn_error msg -> Printf.printf "  second writer blocked: %s\n" msg);
  Txn.abort t2;
  Txn.abort t1;

  (* Partition abort. *)
  Printf.printf "\npartition aborts a distributed transaction:\n";
  Kernel.set_ncopies p0 1;
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  ignore (Kernel.creat k3 p3 "/bank/branch3");
  Kernel.write_file k3 p3 "/bank/branch3" "42";
  ignore (World.settle w);
  let t3 = Txn.begin_top k0 p0 in
  Txn.write t3 "/bank/checking" "0";
  Txn.write t3 "/bank/branch3" "0";
  Printf.printf "  transaction touches sites: %s\n"
    (String.concat "," (List.map string_of_int (Txn.touched_sites t3)));
  World.crash_site w 3;
  ignore (World.detect_failures w ~initiator:0);
  Printf.printf "  site 3 failed; transaction status: %s\n"
    (match Txn.status t3 with
    | Txn.Aborted -> "aborted (as the failure table prescribes)"
    | Txn.Active -> "active?!"
    | Txn.Committed -> "committed?!");
  ignore (World.settle w);
  balances w;
  Printf.printf "done.\n"
