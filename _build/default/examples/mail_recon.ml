(* Mailbox reconciliation (section 4.5).

   Mail keeps flowing during a partition: messages are delivered to copies
   of the same mailbox on both sides, and messages are deleted on both
   sides. Because the only operations are insert and delete, with ids that
   embed the originating site, the merge is fully automatic — no conflict
   is ever reported for a mailbox.

   Run with: dune exec examples/mail_recon.exe *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Mbox = Catalog.Mailbox

let show w site path =
  let k = World.kernel w site and p = World.proc w site in
  let msgs = Kernel.mailbox_read k p path in
  Printf.printf "  %s at site %d (%d live):\n" path site (List.length msgs);
  List.iter
    (fun (m : Mbox.msg) ->
      Printf.printf "    [%s] from %-7s %s\n" m.Mbox.id m.Mbox.from m.Mbox.body)
    msgs

let () =
  Printf.printf "== Mailbox reconciliation across a partition ==\n\n";
  let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.mkdir k0 p0 "/mail");
  ignore (Kernel.creat ~ftype:Storage.Inode.Mailbox k0 p0 "/mail/alice");
  Kernel.mailbox_deliver k0 ~path:"/mail/alice" ~from:"bob"
    ~body:"pre-partition: lunch tomorrow?";
  ignore (World.settle w);
  Printf.printf "before the partition:\n";
  show w 0 "/mail/alice";

  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  Printf.printf "\nnetwork partitioned {0,1} | {2,3}; mail keeps flowing:\n";

  (* Left side: new mail, and alice reads & deletes the old one. *)
  Kernel.mailbox_deliver k0 ~path:"/mail/alice" ~from:"carol"
    ~body:"left-side: review my patch";
  let body = Kernel.read_file k0 p0 "/mail/alice" in
  let box = Mbox.decode body in
  (match Mbox.live box with
  | first :: _ ->
    ignore (Mbox.delete box ~id:first.Mbox.id ~stamp:(World.now w));
    Kernel.write_file k0 p0 "/mail/alice" (Mbox.encode box);
    Printf.printf "  left: carol's mail delivered; alice deleted bob's old mail\n"
  | [] -> ());

  (* Right side: more new mail. *)
  let k2 = World.kernel w 2 in
  Kernel.mailbox_deliver k2 ~path:"/mail/alice" ~from:"dave"
    ~body:"right-side: build is green";
  Kernel.mailbox_deliver k2 ~path:"/mail/alice" ~from:"erin"
    ~body:"right-side: standup at 10";
  Printf.printf "  right: dave's and erin's mail delivered\n";
  ignore (World.settle w);

  Printf.printf "\ndivergent copies:\n";
  show w 0 "/mail/alice";
  show w 2 "/mail/alice";

  Printf.printf "\nmerging...\n";
  let _, recon = World.heal_and_merge w in
  let merges =
    List.fold_left (fun a (_, r) -> a + r.Recovery.Reconcile.mail_merges) 0 recon
  in
  let conflicts =
    List.fold_left (fun a (_, r) -> a + r.Recovery.Reconcile.conflicts_marked) 0 recon
  in
  Printf.printf "mailbox merges: %d, conflicts: %d (always 0 for mailboxes)\n\n"
    merges conflicts;
  Printf.printf "after the merge, every site sees the union minus deletions:\n";
  show w 1 "/mail/alice";
  show w 3 "/mail/alice";
  Printf.printf "done.\n"
