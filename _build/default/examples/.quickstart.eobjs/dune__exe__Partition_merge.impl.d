examples/partition_merge.ml: Catalog Format List Locus Locus_core Printf Proto Recovery Storage String
