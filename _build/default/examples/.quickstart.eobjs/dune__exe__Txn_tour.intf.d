examples/txn_tour.mli:
