examples/replication_tour.ml: Catalog Hashtbl List Locus Locus_core Printf Proto Storage Vv
