examples/remote_exec.mli:
