examples/txn_tour.ml: List Locus Locus_core Printf String Txn
