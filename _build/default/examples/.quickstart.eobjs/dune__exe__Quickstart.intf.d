examples/quickstart.mli:
