examples/replication_tour.mli:
