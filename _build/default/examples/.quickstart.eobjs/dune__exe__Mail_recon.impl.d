examples/mail_recon.ml: Catalog List Locus Locus_core Printf Recovery Storage
