examples/mail_recon.mli:
