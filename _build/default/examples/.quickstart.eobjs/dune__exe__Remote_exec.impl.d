examples/remote_exec.ml: List Locus Locus_core Printf Proto Sim String
