examples/quickstart.ml: List Locus Locus_core Printf Sim
