(** Background update propagation (§2.3.6).

    Propagation is done by *pulling*: a kernel process at each storage site
    services a queue of propagation requests. A pull internally opens the
    file at a site holding the latest version, issues standard page reads
    (just the modified pages when this copy is exactly one commit behind),
    and commits locally through the shadow-page mechanism — so a pull
    interrupted by partition leaves a coherent, complete (if stale) copy.
    Concurrent versions are never overwritten; they are left for
    reconciliation (§4). *)

val enqueue :
  Ktypes.t ->
  Catalog.Gfile.t ->
  vv:Vv.Version_vector.t ->
  modified:int list ->
  designate:bool ->
  unit
(** React to a commit notification: queue a pull if this site stores the
    file (or is a designated initial storage site) and its copy is not
    current. The kernel process runs after a small delay. *)

val attempt : Ktypes.t -> Catalog.Gfile.t -> Vv.Version_vector.t -> int list -> bool
(** One pull attempt (exposed for tests); true when no retry is needed. *)

val service_queue : Ktypes.t -> unit
(** Run one queued request; reschedules itself while work remains. *)

val drain : Ktypes.t -> unit
(** Synchronously service the whole queue (recovery uses this to complete
    the update propagation it schedules at merge). *)

val one_commit_behind :
  local:Vv.Version_vector.t ->
  target:Vv.Version_vector.t ->
  origin:Net.Site.t ->
  bool
