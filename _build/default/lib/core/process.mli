(** Remote processes (§3).

    Programs execute at any site with no rebinding: fork and exec are
    controlled by the execution-site advice list in the process
    environment; [run] is the optimized fork+exec that skips copying the
    parent image. Signals and exit status cross machine boundaries;
    failures of the parent's or child's machine are reflected as error
    signals with details deposited in the process structure (§3.3). *)

val sigchld : int

val sigerr : int
(** The error signal reflecting a remote failure (§3.3). *)

val find_proc : Ktypes.t -> int -> Ktypes.proc option

val get_proc : Ktypes.t -> int -> Ktypes.proc
(** Raises [ESRCH]. *)

val create_process : Ktypes.t -> uid:string -> Ktypes.proc
(** A fresh (init-like) process at this site, context = the site's machine
    type, cwd = the global root. *)

val choose_site : Ktypes.t -> Ktypes.proc -> Net.Site.t
(** Consult the advice list: first reachable entry, else local. *)

val fork : Ktypes.t -> Ktypes.proc -> int * Net.Site.t
(** Fork at the advised site; a remote fork ships the parent's image pages
    and the shared descriptors' identities. Returns (pid, site). *)

val fork_local : Ktypes.t -> Ktypes.proc -> Ktypes.proc

val exec : Ktypes.t -> Ktypes.proc -> string -> Net.Site.t
(** Install a load module; under remote advice the process is effectively
    moved and the module is read at the destination (whose machine type
    selects the hidden-directory entry). Returns the executing site. *)

val exec_local : Ktypes.t -> Ktypes.proc -> string -> unit

val run :
  ?uid:string ->
  ?cwd:Catalog.Gfile.t ->
  ?ncopies:int ->
  ?context:string list ->
  Ktypes.t ->
  Ktypes.proc ->
  string ->
  int * Net.Site.t
(** The optimized fork+exec of §3.1: no parent-image copy; transparent as
    to where it executes; the optional arguments are the paper's
    "parameterization that permits the caller to set up the environment
    of the new process". *)

val signal : Ktypes.t -> site:Net.Site.t -> pid:int -> int -> unit
(** Deliver a signal across machines. Raises [ESRCH]. *)

val deliver_signal : Ktypes.t -> int -> int -> Proto.resp

val exit_proc : Ktypes.t -> Ktypes.proc -> int -> unit
(** Terminate: release descriptors, notify the parent (across the net if
    need be) with the exit status. *)

val wait : Ktypes.t -> Ktypes.proc -> (int * int) option
(** Reap one exited child: (pid, status). *)

val read_error_info : Ktypes.t -> Ktypes.proc -> string option
(** The new system call of §3.3: extra information about a reflected
    failure, cleared on read. *)

val handle_fork :
  Ktypes.t ->
  child_pid:int ->
  env:Proto.process_env ->
  image_pages:int ->
  parent:int * Net.Site.t ->
  Proto.resp

val handle_exec :
  Ktypes.t ->
  pid:int ->
  path:string ->
  env:Proto.process_env ->
  image_pages:int ->
  parent:int * Net.Site.t ->
  Proto.resp

val handle_run :
  ?context_override:string list ->
  Ktypes.t ->
  child_pid:int ->
  path:string ->
  env:Proto.process_env ->
  parent:int * Net.Site.t ->
  Proto.resp

val handle_exit_notify :
  Ktypes.t -> pid:int -> status:int -> child_site:Net.Site.t -> Proto.resp

val env_of : Ktypes.t -> Ktypes.proc -> Proto.process_env

val handle_site_failure : Ktypes.t -> Net.Site.t -> unit
(** Reflect a machine failure into the local halves of cross-machine
    parent/child pairs (the "Interacting Processes" rows of §5.6). *)
