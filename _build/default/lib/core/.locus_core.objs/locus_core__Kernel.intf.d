lib/core/kernel.mli: Catalog Ktypes Net Proto Sim Storage
