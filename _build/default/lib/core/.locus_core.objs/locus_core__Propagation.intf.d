lib/core/propagation.mli: Catalog Ktypes Net Vv
