lib/core/propagation.ml: Css Engine Format Fun Gfile Ktypes List Option Proto Queue Site Storage Vvec
