lib/core/process.ml: Catalog Hashtbl Ktypes List Option Pathname Printf Proto Site Storage String Tokens Us
