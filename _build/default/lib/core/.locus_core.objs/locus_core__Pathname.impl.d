lib/core/pathname.ml: Catalog Gfile Ktypes List Proto Storage String Us
