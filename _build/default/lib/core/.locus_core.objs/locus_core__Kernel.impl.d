lib/core/kernel.ml: Catalog Css Dirops Dispatch Format Gfile Hashtbl Ktypes List Net Pathname Printf Process Proto Queue Sim Site Ss Storage String Tokens Us
