lib/core/us.ml: Buffer Engine Format Gfile Hashtbl Ktypes List Net Option Proto Sim Site Ss Storage String Vvec
