lib/core/tokens.ml: Format Hashtbl Ktypes Proto Sim Site
