lib/core/dirops.mli: Catalog Ktypes Net Storage
