lib/core/pathname.mli: Catalog Ktypes Storage
