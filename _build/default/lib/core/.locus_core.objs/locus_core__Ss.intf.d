lib/core/ss.mli: Catalog Ktypes Net Proto Storage Vv
