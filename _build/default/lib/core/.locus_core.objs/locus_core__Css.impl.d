lib/core/css.ml: Format Gfile Hashtbl Ktypes List Option Proto Site Storage Vvec
