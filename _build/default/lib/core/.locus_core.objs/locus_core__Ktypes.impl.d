lib/core/ktypes.ml: Catalog Format Hashtbl List Net Printexc Printf Proto Queue Sim Storage Vv
