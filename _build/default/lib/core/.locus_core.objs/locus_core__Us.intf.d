lib/core/us.mli: Catalog Ktypes Proto Vv
