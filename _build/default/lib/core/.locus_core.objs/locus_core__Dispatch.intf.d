lib/core/dispatch.mli: Ktypes Net Proto
