lib/core/css.mli: Catalog Ktypes Net Proto Vv
