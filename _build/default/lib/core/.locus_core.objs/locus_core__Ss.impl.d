lib/core/ss.ml: Css Format Gfile Hashtbl Ktypes List Proto Sim Site Storage String Vvec
