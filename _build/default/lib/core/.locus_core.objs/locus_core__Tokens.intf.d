lib/core/tokens.mli: Catalog Ktypes Net Proto
