lib/core/process.mli: Catalog Ktypes Net Proto
