lib/core/dispatch.ml: Css Gfile Ktypes Net Process Propagation Proto Ss Storage Tokens
