lib/core/ktypes.mli: Catalog Format Hashtbl Net Proto Queue Sim Storage Vv
