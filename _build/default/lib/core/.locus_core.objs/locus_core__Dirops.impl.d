lib/core/dirops.ml: Catalog Format Gfile Ktypes List Pathname Proto Site Ss Storage Us
