(** Message dispatch: the kernel half that runs on behalf of a foreign
    site's system call (the "serving site" column of Figure 1). Maps each
    {!Proto.req} to the CSS / SS / process / token handler; the
    reconfiguration messages go to the hook installed by the recovery
    layer. *)

val handle : Ktypes.t -> src:Net.Site.t -> Proto.req -> Proto.resp
