(** The token mechanism (§3.2).

    Unix semantics make parent and child share one open-file descriptor,
    so the current file position behaves like shared memory across
    machines. LOCUS keeps a descriptor copy at each participating site
    with exactly one valid at any time; a token marks which. The
    descriptor's origin site manages the token: a site needing the offset
    asks the manager, which recalls the state from the current holder
    (invalidating its copy) and grants the token to the requester. *)

val manager_of : Ktypes.fd_key -> Net.Site.t

val find_fd : Ktypes.t -> Ktypes.fd_key -> Ktypes.shared_fd option

val get_fd : Ktypes.t -> Ktypes.fd_key -> Ktypes.shared_fd
(** Raises [EINVAL]. *)

val create_fd :
  Ktypes.t ->
  gf:Catalog.Gfile.t ->
  mode:Proto.open_mode ->
  ofile:Ktypes.ofile ->
  Ktypes.shared_fd
(** New descriptor at its origin site; this site holds the token. *)

val install_remote_fd :
  Ktypes.t -> key:Ktypes.fd_key -> gf:Catalog.Gfile.t -> mode:Proto.open_mode ->
  Ktypes.shared_fd
(** Install (or re-reference) a copy at a site that inherited the
    descriptor via fork; the token stays where it was. *)

val acquire : Ktypes.t -> Ktypes.shared_fd -> unit
(** Make this site's copy the valid one before using the file position.
    Raises [EDEADTOKEN] when the holder is unreachable. *)

val handle_token_req : Ktypes.t -> Ktypes.fd_key -> for_site:Net.Site.t -> Proto.resp
(** Manager side: recall from the holder, grant to the requester. *)

val handle_token_state_req : Ktypes.t -> Ktypes.fd_key -> Proto.resp
(** Holder side: yield the token, returning the guarded offset. *)

val handle_site_failure : Ktypes.t -> Net.Site.t -> unit
(** Reclaim tokens held by a departed site (manager's last known offset
    becomes current). *)
