(* Pathname searching (section 2.3.4) and hidden directories (2.4.1).

   Resolution walks the tree one component at a time. Each directory is
   opened with an *internal unsynchronized read*: no global locking, and if
   the directory is stored locally with no propagations pending, it is
   searched without informing the CSS at all. Filegroup boundaries are
   crossed through the replicated mount table.

   Hidden directories implement context-sensitive names: when pathname
   search hits one, the process's per-process context list selects which
   entry to descend into, unless the caller escapes with an explicit
   '@entry' component. *)

open Ktypes
module Inode = Storage.Inode
module Pack = Storage.Pack
module Dir = Catalog.Dir
module Mount = Catalog.Mount

let split_path path = String.split_on_char '/' path |> List.filter (fun c -> c <> "")

(* Internal unsynchronized open through the CSS. *)
let load_dir_remote k gf =
  let o = Us.open_gf k gf Proto.Mode_internal in
  let body = Us.read_all k o in
  let ftype = o.o_info.Proto.i_ftype in
  Us.close k o;
  (ftype, body)

(* Load a directory's contents and type. Local fast path per section 2.3.4;
   otherwise internal open through the CSS. The [bool] tells the caller
   whether the fast path was used (its copy may be momentarily stale, so a
   lookup miss warrants a synchronized retry). *)
let load_dir_checked k gf =
  let fast =
    match local_pack k gf.Gfile.fg with
    | Some pack when not (Gfile.Set.mem gf k.prop_pending) -> (
      match Pack.find_inode pack gf.Gfile.ino with
      | Some inode when not inode.Inode.deleted ->
        charge_disk_read k;
        Some (inode.Inode.ftype, Pack.read_string pack inode)
      | Some _ | None -> None)
    | Some _ | None -> None
  in
  match fast with
  | Some (ftype, body) -> (ftype, body, true)
  | None ->
    let ftype, body = load_dir_remote k gf in
    (ftype, body, false)

let load_dir k gf =
  let ftype, body, _ = load_dir_checked k gf in
  (ftype, body)

let dir_of_body body = try Dir.decode body with Failure _ -> Dir.empty ()

(* Descend one link: apply mount crossing after a successful lookup. *)
let enter k ~fg ino =
  let gf = Gfile.make ~fg ~ino in
  match Mount.mounted_at k.mount gf with
  | Some child_fg -> Gfile.make ~fg:child_fg ~ino:Mount.root_ino
  | None -> gf

let dotdot k gf dir =
  match Dir.lookup dir ".." with
  | Some ino -> Gfile.make ~fg:gf.Gfile.fg ~ino
  | None -> ignore k; gf

(* Select the entry of a hidden directory using the per-process context
   list; the first context name bound in the directory wins. *)
let select_context k ~context gf dir =
  let rec first = function
    | [] ->
      err Proto.Enoent "no context entry in hidden directory %a (context: %s)"
        Gfile.pp gf
        (String.concat "," context)
    | ctx :: rest -> (
      match Dir.lookup dir ctx with
      | Some ino -> enter k ~fg:gf.Gfile.fg ino
      | None -> first rest)
  in
  first context

(* Resolve [path] to a gfile. [context] is the hidden-directory context of
   the calling process; [follow_hidden] controls whether a *final* hidden
   directory is transparently expanded (commands want the load module;
   administrative tools escape to see the directory itself). *)
let resolve_from k ~cwd ~context ?(follow_hidden = true) path =
  let start =
    if String.length path > 0 && path.[0] = '/' then Mount.root k.mount else cwd
  in
  let rec walk gf comps =
    match comps with
    | [] ->
      if follow_hidden then begin
        (* A final hidden directory expands under the process context; the
           check interrogates only the descriptor, not the data. *)
        match Us.stat_gf k gf with
        | { Proto.i_ftype = Inode.Hidden_directory; _ } ->
          let _, body = load_dir k gf in
          select_context k ~context gf (dir_of_body body)
        | { Proto.i_ftype =
              ( Inode.Regular | Inode.Directory | Inode.Mailbox | Inode.Database
              | Inode.Fifo );
            _
          } ->
          gf
        | exception Error _ -> gf
      end
      else gf
    | comp :: rest -> (
      let ftype, body, fast = load_dir_checked k gf in
      let dir = dir_of_body body in
      (* A miss against a fast-path (possibly stale) local copy is retried
         once against a synchronized copy before reporting ENOENT. *)
      let lookup_refreshing name =
        match Dir.lookup dir name with
        | Some ino -> Some ino
        | None when fast ->
          let _, body = load_dir_remote k gf in
          Dir.lookup (dir_of_body body) name
        | None -> None
      in
      match ftype with
      | Inode.Directory -> (
        match comp with
        | "." -> walk gf rest
        | ".." when gf.Gfile.ino = Mount.root_ino -> (
          (* ".." out of a filegroup root crosses the mount boundary: it
             names the *parent of the mount point* in the covering
             filegroup, so resolution restarts at the mount point with the
             ".." still pending. *)
          match Mount.mount_point_of k.mount gf.Gfile.fg with
          | Some point -> walk point comps
          | None -> walk gf rest (* ".." of the global root is itself *))
        | ".." -> walk (dotdot k gf dir) rest
        | _ -> (
          match lookup_refreshing comp with
          | Some ino -> walk (enter k ~fg:gf.Gfile.fg ino) rest
          | None -> err Proto.Enoent "%s: no such entry in %a" comp Gfile.pp gf))
      | Inode.Hidden_directory ->
        (* The escape mechanism: an explicit '@name' component picks an
           entry and makes the hidden directory visible; otherwise the
           context chooses and the component is *not* consumed. *)
        if String.length comp > 0 && comp.[0] = '@' then begin
          let name = String.sub comp 1 (String.length comp - 1) in
          match Dir.lookup dir name with
          | Some ino -> walk (enter k ~fg:gf.Gfile.fg ino) rest
          | None -> err Proto.Enoent "@%s: no such hidden entry" name
        end
        else walk (select_context k ~context gf dir) comps
      | Inode.Regular | Inode.Mailbox | Inode.Database | Inode.Fifo ->
        err Proto.Enotdir "%a is not a directory" Gfile.pp gf)
  in
  walk start (split_path path)

(* Resolve all but the last component; returns the parent directory's gfile
   and the final name. Used by create/unlink/mkdir. A leading '@' on the
   final component is the hidden-directory escape: "/bin/who/@vax" names
   the entry "vax" inside the hidden directory /bin/who. *)
let resolve_parent k ~cwd ~context path =
  match List.rev (split_path path) with
  | [] -> err Proto.Einval "empty pathname"
  | last :: rev_prefix ->
    let prefix = List.rev rev_prefix in
    let dir_path =
      (if String.length path > 0 && path.[0] = '/' then "/" else "")
      ^ String.concat "/" prefix
    in
    let dir_gf = resolve_from k ~cwd ~context ~follow_hidden:false dir_path in
    let last =
      if String.length last > 1 && last.[0] = '@' then
        String.sub last 1 (String.length last - 1)
      else last
    in
    (dir_gf, last)

(* Read a directory's live entries (for readdir / ls). *)
let read_directory k gf =
  let ftype, body = load_dir k gf in
  match ftype with
  | Inode.Directory | Inode.Hidden_directory -> dir_of_body body
  | Inode.Regular | Inode.Mailbox | Inode.Database | Inode.Fifo ->
    err Proto.Enotdir "%a is not a directory" Gfile.pp gf
