(** Directory updates, file creation and deletion (§2.3.4, §2.3.7).

    Every name-space change — enter an entry, remove an entry, rename — is
    one atomic directory modification through the standard open-for-
    modification/commit machinery, so directory interrogation never sees
    an inconsistent picture. Creation picks initial storage sites with the
    paper's algorithm: storage sites of the parent directory, the local
    site first, inaccessible sites last. *)

val update_dir : Ktypes.t -> Catalog.Gfile.t -> (Catalog.Dir.t -> 'a) -> 'a
(** Atomically rewrite a directory under the CSS modification lock,
    retrying a few times on [EBUSY]. *)

val enter_entry : Ktypes.t -> Catalog.Gfile.t -> name:string -> ino:int -> unit
(** Raises [EEXIST]. *)

val remove_entry : Ktypes.t -> Catalog.Gfile.t -> name:string -> int
(** Tombstones the entry; returns the inode number. Raises [ENOENT]. *)

val initial_storage_sites :
  Ktypes.t -> parent_sites:Net.Site.t list -> ncopies:int -> Net.Site.t list
(** The site-selection algorithm of §2.3.7 (exposed for tests). *)

val parent_storage_sites : Ktypes.t -> Catalog.Gfile.t -> Net.Site.t list

val create_in :
  Ktypes.t ->
  Catalog.Gfile.t ->
  name:string ->
  ftype:Storage.Inode.ftype ->
  owner:string ->
  perms:int ->
  ncopies:int ->
  Catalog.Gfile.t
(** Create a file under a directory: allocate the inode at the chosen SS
    (a placeholder travels instead of an inode number), enter the name,
    and designate the replicas. *)

val init_directory : Ktypes.t -> Catalog.Gfile.t -> parent_ino:int -> unit
(** Write a fresh directory's "." and ".." entries. *)

val link_count : Ktypes.t -> Catalog.Gfile.t -> delta:int -> unit

val unlink_gf : Ktypes.t -> Catalog.Gfile.t -> name:string -> Catalog.Gfile.t
(** Remove a name; delete the file body once the last link is gone. *)

val link_gf :
  Ktypes.t -> target:Catalog.Gfile.t -> dir_gf:Catalog.Gfile.t -> name:string -> unit
(** Hard link; raises [EINVAL] across filegroup boundaries. *)

val rename_gf :
  Ktypes.t ->
  old_dir:Catalog.Gfile.t ->
  old_name:string ->
  new_dir:Catalog.Gfile.t ->
  new_name:string ->
  Catalog.Gfile.t
