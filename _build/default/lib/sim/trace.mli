(** Bounded event trace.

    Kernels append human-readable protocol events; tests and the experiment
    harness read them back to verify message sequences (e.g. the open
    protocol of Figure 2). *)

type t

type event = { time : float; tag : string; detail : string }

val create : ?capacity:int -> unit -> t
(** Ring buffer keeping the most recent [capacity] events (default 4096). *)

val record : t -> time:float -> tag:string -> string -> unit

val events : t -> event list
(** Oldest first. *)

val find_all : t -> tag:string -> event list

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
