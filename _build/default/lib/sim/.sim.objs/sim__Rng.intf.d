lib/sim/rng.mli:
