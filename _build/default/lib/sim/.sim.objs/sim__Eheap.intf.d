lib/sim/eheap.mli:
