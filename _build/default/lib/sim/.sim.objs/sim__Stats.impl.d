lib/sim/stats.ml: Float Hashtbl List Stdlib String
