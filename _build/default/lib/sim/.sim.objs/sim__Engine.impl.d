lib/sim/engine.ml: Eheap Rng Stats Trace
