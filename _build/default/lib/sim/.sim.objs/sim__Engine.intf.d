lib/sim/engine.mli: Rng Stats Trace
