lib/sim/eheap.ml: Array
