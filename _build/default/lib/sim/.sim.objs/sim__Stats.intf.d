lib/sim/stats.mli:
