type event = { time : float; tag : string; detail : string }

type t = {
  capacity : int;
  mutable items : event list; (* newest first *)
  mutable count : int;
}

let create ?(capacity = 4096) () = { capacity; items = []; count = 0 }

let record t ~time ~tag detail =
  t.items <- { time; tag; detail } :: t.items;
  t.count <- t.count + 1;
  if t.count > 2 * t.capacity then begin
    (* Amortized truncation: keep the newest [capacity] events. *)
    t.items <- List.filteri (fun i _ -> i < t.capacity) t.items;
    t.count <- t.capacity
  end

let events t =
  let l = if t.count > t.capacity then List.filteri (fun i _ -> i < t.capacity) t.items else t.items in
  List.rev l

let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (events t)

let clear t =
  t.items <- [];
  t.count <- 0

let pp_event ppf e = Format.fprintf ppf "[%8.4f] %-14s %s" e.time e.tag e.detail
