(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through a seeded [Rng.t]
    so that entire cluster runs are reproducible bit-for-bit. *)

type t

val create : int64 -> t
(** [create seed] returns a generator whose stream is fully determined by
    [seed]. *)

val copy : t -> t
(** Independent copy with identical future stream. *)

val split : t -> t
(** Derive a new generator whose stream is independent of the parent's
    subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)
