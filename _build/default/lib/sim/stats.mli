(** Named counters, accumulators and histograms for experiment accounting.

    Experiments snapshot counters around an operation to report, e.g., the
    number of network messages an open required. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment the named counter by one. *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter. *)

val get : t -> string -> int
(** Value of the named counter (0 if never touched). *)

val observe : t -> string -> float -> unit
(** Record one sample of the named series. *)

val mean : t -> string -> float
(** Mean of a series; 0 if empty. *)

val samples : t -> string -> float list
(** All recorded samples, oldest first. *)

val count_samples : t -> string -> int

val max_sample : t -> string -> float

val reset : t -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

type snapshot

val snapshot : t -> snapshot

val delta : t -> snapshot -> (string * int) list
(** Counter deltas since [snapshot], restricted to counters that changed. *)

val delta_of : t -> snapshot -> string -> int
(** Delta of a single counter since [snapshot]. *)
