(** Binary min-heap of timestamped events.

    Ties on the timestamp are broken by insertion order, which keeps the
    simulator deterministic when many events fire at the same instant. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
