type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; series = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let series t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.series name r;
    r

let observe t name v =
  let r = series t name in
  r := v :: !r

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let count_samples t name = List.length (samples t name)

let mean t name =
  match samples t name with
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let max_sample t name = List.fold_left Float.max 0.0 (samples t name)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type snapshot = (string * int) list

let snapshot t = counters t

let delta t snap =
  let old name =
    match List.assoc_opt name snap with Some v -> v | None -> 0
  in
  counters t
  |> List.filter_map (fun (name, v) ->
         let d = v - old name in
         if d = 0 then None else Some (name, d))

let delta_of t snap name =
  let old = match List.assoc_opt name snap with Some v -> v | None -> 0 in
  get t name - old
