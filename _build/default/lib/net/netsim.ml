module Engine = Sim.Engine
module Stats = Sim.Stats

exception Unreachable of Site.t * Site.t

type ('req, 'resp) t = {
  engine : Engine.t;
  topo : Topology.t;
  latency : Latency.t;
  mutable handlers : (src:Site.t -> 'req -> 'resp) Site.Map.t;
  circuits : (Site.t * Site.t, unit) Hashtbl.t; (* key is ordered pair (min,max) *)
  mutable drop_prob : float;
  mutable forced_failures : (Site.t * Site.t) list;
  mutable failure_observers : (Site.t -> Site.t -> unit) list;
}

let create engine topo latency =
  {
    engine;
    topo;
    latency;
    handlers = Site.Map.empty;
    circuits = Hashtbl.create 64;
    drop_prob = 0.0;
    forced_failures = [];
    failure_observers = [];
  }

let engine t = t.engine

let topology t = t.topo

let latency t = t.latency

let set_handler t site f = t.handlers <- Site.Map.add site f t.handlers

let set_drop_probability t p = t.drop_prob <- p

let fail_next_message t ~src ~dst = t.forced_failures <- (src, dst) :: t.forced_failures

let on_circuit_failure t f = t.failure_observers <- f :: t.failure_observers

let circuit_key a b = if a < b then (a, b) else (b, a)

let circuits_open t = Hashtbl.length t.circuits

let open_circuit t a b =
  let key = circuit_key a b in
  if not (Hashtbl.mem t.circuits key) then begin
    Hashtbl.add t.circuits key ();
    Stats.incr (Engine.stats t.engine) "net.circuit.open"
  end

let close_circuit t ~observer ~peer =
  let key = circuit_key observer peer in
  if Hashtbl.mem t.circuits key then begin
    Hashtbl.remove t.circuits key;
    Stats.incr (Engine.stats t.engine) "net.circuit.close"
  end;
  List.iter (fun f -> f observer peer) t.failure_observers

let handler_of t site =
  match Site.Map.find_opt site t.handlers with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Netsim: no handler registered for site %d" site)

(* Decide whether a single message from [src] to [dst] gets through, consuming
   any forced-failure directive. *)
let message_delivered t ~src ~dst =
  let forced =
    match t.forced_failures with
    | [] -> false
    | l ->
      let hit, rest = List.partition (fun (a, b) -> a = src && b = dst) l in
      (match hit with
      | [] -> false
      | _ :: dropped_rest ->
        t.forced_failures <- dropped_rest @ rest;
        true)
  in
  if forced then false
  else if not (Topology.reachable t.topo src dst) then false
  else if t.drop_prob > 0.0 && Sim.Rng.float (Engine.rng t.engine) 1.0 < t.drop_prob then false
  else true

let account t ?tag ~bytes () =
  let stats = Engine.stats t.engine in
  Stats.incr stats "net.msg";
  Stats.add stats "net.bytes" bytes;
  match tag with
  | Some tag -> Stats.incr stats ("net.msg." ^ tag)
  | None -> ()

let call t ?tag ~src ~dst ~req_bytes ~resp_bytes req =
  if Site.equal src dst then begin
    Engine.charge t.engine t.latency.Latency.local_call;
    (handler_of t dst) ~src req
  end
  else begin
    open_circuit t src dst;
    if not (message_delivered t ~src ~dst) then begin
      close_circuit t ~observer:src ~peer:dst;
      raise (Unreachable (src, dst))
    end;
    account t ?tag ~bytes:req_bytes ();
    Engine.charge t.engine (Latency.msg_cost t.latency ~bytes:req_bytes);
    let resp = (handler_of t dst) ~src req in
    if not (message_delivered t ~src:dst ~dst:src) then begin
      close_circuit t ~observer:src ~peer:dst;
      raise (Unreachable (src, dst))
    end;
    let rbytes = resp_bytes resp in
    account t ?tag ~bytes:rbytes ();
    Engine.charge t.engine (Latency.msg_cost t.latency ~bytes:rbytes);
    resp
  end

let send t ?tag ~src ~dst ~bytes req =
  if Site.equal src dst then begin
    let f = handler_of t dst in
    Engine.schedule t.engine ~delay:t.latency.Latency.local_call (fun () ->
        ignore (f ~src req))
  end
  else begin
    open_circuit t src dst;
    account t ?tag ~bytes ();
    let delay = Latency.msg_cost t.latency ~bytes in
    Engine.schedule t.engine ~delay (fun () ->
        if message_delivered t ~src ~dst then ignore ((handler_of t dst) ~src req)
        else close_circuit t ~observer:src ~peer:dst)
  end

let messages_sent t = Stats.get (Engine.stats t.engine) "net.msg"

let bytes_sent t = Stats.get (Engine.stats t.engine) "net.bytes"
