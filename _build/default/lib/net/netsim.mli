(** Kernel-to-kernel message layer.

    LOCUS uses specialized, minimal protocols: a remote service request is a
    single message and a single response, with no acknowledgements or flow
    control underneath (§2.3.3). We model that directly: {!call} is a
    synchronous request/response exchange that charges simulated time for
    both messages and runs the destination site's handler in between;
    {!send} is a one-way datagram (used for commit notifications and the
    reconfiguration polls).

    Virtual circuits (§5.1) connect pairs of sites, deliver in order, and
    are closed by any delivery failure; closure is reported to registered
    observers, which is how kernels detect that reconfiguration is needed. *)

type ('req, 'resp) t

exception Unreachable of Site.t * Site.t
(** Raised by {!call} when the destination cannot be reached (site down,
    link down, or injected message loss). The circuit is closed first. *)

val create : Sim.Engine.t -> Topology.t -> Latency.t -> ('req, 'resp) t

val engine : ('req, 'resp) t -> Sim.Engine.t

val topology : ('req, 'resp) t -> Topology.t

val latency : ('req, 'resp) t -> Latency.t

val set_handler : ('req, 'resp) t -> Site.t -> (src:Site.t -> 'req -> 'resp) -> unit
(** Install the kernel dispatch function for a site. *)

val call :
  ('req, 'resp) t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  req_bytes:int ->
  resp_bytes:('resp -> int) ->
  'req ->
  'resp
(** Synchronous exchange. When [src = dst] this is a local procedure call:
    it charges only {!Latency.local_call} and counts no messages. Otherwise
    it counts two messages (request and response) and charges their wire
    cost. Raises {!Unreachable} on failure. *)

val send :
  ('req, 'resp) t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  bytes:int ->
  'req ->
  unit
(** One-way datagram, delivered asynchronously via the engine queue (the
    handler's response is discarded). Delivery is checked at delivery time;
    a failed delivery closes the circuit silently. *)

val set_drop_probability : ('req, 'resp) t -> float -> unit
(** Inject random message loss (checked per message). *)

val fail_next_message : ('req, 'resp) t -> src:Site.t -> dst:Site.t -> unit
(** Force exactly the next message from [src] to [dst] to be lost. *)

val on_circuit_failure : ('req, 'resp) t -> (Site.t -> Site.t -> unit) -> unit
(** [f observer peer] is called when a circuit fails; [observer] is the site
    that noticed. *)

val circuits_open : ('req, 'resp) t -> int

val messages_sent : ('req, 'resp) t -> int

val bytes_sent : ('req, 'resp) t -> int
