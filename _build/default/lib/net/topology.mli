(** Physical network topology and fault injection.

    The topology records which sites are up and which pairwise links are up.
    Message delivery requires a *direct* working link between two up sites:
    the paper's high-level protocols assume transitive connectivity, and it
    is the job of the reconfiguration protocols (§5) to re-establish that
    assumption when the physical topology violates it. Tests inject exactly
    such violations here. *)

type t

val create : n:int -> t
(** [create ~n] makes a topology of sites [0 .. n-1], all up, fully linked. *)

val n_sites : t -> int

val sites : t -> Site.t list

val site_up : t -> Site.t -> bool

val set_site_up : t -> Site.t -> bool -> unit
(** Crash or restart a site. Links are unaffected. *)

val link_up : t -> Site.t -> Site.t -> bool

val set_link : t -> Site.t -> Site.t -> bool -> unit
(** Break or repair the (symmetric) link between two sites. *)

val reachable : t -> Site.t -> Site.t -> bool
(** Both sites up and the direct link between them up. A site always reaches
    itself when up. *)

val connected_component : t -> Site.t -> Site.t list
(** Transitive closure of {!reachable} from a site, sorted. Used by tests to
    characterize physical partitions. *)

val partition : t -> Site.t list list -> unit
(** [partition t groups] breaks exactly the links between different groups
    and repairs all links inside each group. Sites not mentioned keep their
    links to mentioned sites severed. *)

val heal : t -> unit
(** Repair all links and bring all sites up. *)

val fully_connected : t -> Site.t list -> bool
(** Every pair in the list is mutually reachable. *)

val version : t -> int
(** Monotonic counter bumped on every topology change; lets caches detect
    configuration changes. *)
