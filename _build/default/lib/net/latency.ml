type t = {
  msg_base : float;
  per_byte : float;
  local_call : float;
  disk_read : float;
  disk_write : float;
  cpu_page : float;
}

(* With a 1024-byte page: local page = disk_read + cpu_page = 0.50 ms of
   charged cost; remote page adds one request (~0.21 ms) and one page-sized
   response (~0.31 ms), so remote/local is approximately 2, matching the
   paper's footnote in section 2.2.1. *)
let default =
  {
    msg_base = 0.20;
    per_byte = 0.0001;
    local_call = 0.02;
    disk_read = 0.30;
    disk_write = 0.35;
    cpu_page = 0.20;
  }

let msg_cost t ~bytes = t.msg_base +. (t.per_byte *. float_of_int bytes)
