type t = {
  n : int;
  up : bool array;
  link : bool array array;
  mutable version : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  { n; up = Array.make n true; link = Array.make_matrix n n true; version = 0 }

let n_sites t = t.n

let sites t = List.init t.n Fun.id

let check t s =
  if s < 0 || s >= t.n then invalid_arg "Topology: site out of range"

let bump t = t.version <- t.version + 1

let site_up t s =
  check t s;
  t.up.(s)

let set_site_up t s b =
  check t s;
  t.up.(s) <- b;
  bump t

let link_up t a b =
  check t a;
  check t b;
  a = b || t.link.(a).(b)

let set_link t a b v =
  check t a;
  check t b;
  if a <> b then begin
    t.link.(a).(b) <- v;
    t.link.(b).(a) <- v;
    bump t
  end

let reachable t a b =
  check t a;
  check t b;
  t.up.(a) && t.up.(b) && link_up t a b

let connected_component t s =
  check t s;
  if not t.up.(s) then []
  else begin
    let seen = Array.make t.n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        for w = 0 to t.n - 1 do
          if (not seen.(w)) && reachable t v w then visit w
        done
      end
    in
    visit s;
    List.filter (fun v -> seen.(v)) (sites t)
  end

let partition t groups =
  let group_of = Array.make t.n (-1) in
  List.iteri
    (fun gi members ->
      List.iter
        (fun s ->
          check t s;
          group_of.(s) <- gi)
        members)
    groups;
  for a = 0 to t.n - 1 do
    for b = a + 1 to t.n - 1 do
      let linked = group_of.(a) >= 0 && group_of.(a) = group_of.(b) in
      t.link.(a).(b) <- linked;
      t.link.(b).(a) <- linked
    done
  done;
  bump t

let heal t =
  for a = 0 to t.n - 1 do
    t.up.(a) <- true;
    for b = 0 to t.n - 1 do
      t.link.(a).(b) <- true
    done
  done;
  bump t

let fully_connected t members =
  List.for_all
    (fun a -> List.for_all (fun b -> reachable t a b) members)
    members

let version t = t.version
