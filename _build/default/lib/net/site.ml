type t = int

let compare = Int.compare

let equal = Int.equal

let pp ppf s = Format.fprintf ppf "s%d" s

let to_string s = Format.asprintf "%a" pp s

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list = Set.of_list
