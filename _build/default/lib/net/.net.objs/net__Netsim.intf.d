lib/net/netsim.mli: Latency Sim Site Topology
