lib/net/site.mli: Format Map Set
