lib/net/latency.ml:
