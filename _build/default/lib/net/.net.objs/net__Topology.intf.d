lib/net/topology.mli: Site
