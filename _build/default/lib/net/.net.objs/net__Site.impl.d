lib/net/site.ml: Format Int Map Set
