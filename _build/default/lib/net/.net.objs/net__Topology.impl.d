lib/net/topology.ml: Array Fun List
