lib/net/latency.mli:
