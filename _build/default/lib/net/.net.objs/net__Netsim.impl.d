lib/net/netsim.ml: Hashtbl Latency List Printf Sim Site Topology
