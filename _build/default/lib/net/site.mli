(** Site identifiers.

    A site is one machine of the LOCUS network (one VAX in the paper's
    testbed). Sites are small integers, densely numbered from 0. *)

type t = int

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
