(** Simulated cost model, in milliseconds.

    Calibrated so that the paper's measured shape holds: a remote page access
    costs about twice the CPU of a local one, and a fully remote open costs
    several times a local open (§2.2.1 footnote, [GOLD 83]). *)

type t = {
  msg_base : float;      (** fixed per-message cost: protocol processing *)
  per_byte : float;      (** wire + copy cost per payload byte *)
  local_call : float;    (** kernel procedure-call cost when roles are collocated *)
  disk_read : float;     (** read one page from the simulated disk *)
  disk_write : float;    (** write one page to the simulated disk *)
  cpu_page : float;      (** CPU cost of delivering one page to a process *)
}

val default : t
(** 10 Mb/s-Ethernet-like parameters. *)

val msg_cost : t -> bytes:int -> float
