lib/locus/workload.ml: Format List Locus_core Printf Proto Sim Storage String World
