lib/locus/world.mli: Locus_core Net Proto Recovery Sim
