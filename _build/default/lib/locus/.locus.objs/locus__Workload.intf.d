lib/locus/workload.mli: Format World
