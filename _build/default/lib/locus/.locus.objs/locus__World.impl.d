lib/locus/world.ml: Catalog Fun Hashtbl List Locus_core Net Printf Proto Recovery Sim Storage String Vv
