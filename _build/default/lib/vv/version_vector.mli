(** Version vectors, after Parker et al. [PARK 83], "Detection of Mutual
    Inconsistency in Distributed Systems".

    Each replicated file copy carries one vector; component [s] counts the
    updates originated (committed) at site [s]. Comparing two vectors tells
    whether one copy subsumes the other or whether the copies were updated
    concurrently in different partitions — the paper's sole conflict
    detection mechanism (§2.2.2, §4.2). *)

type t

type site = int

val zero : t
(** The vector of a freshly created, never-committed file. *)

val of_list : (site * int) list -> t

val to_list : t -> (site * int) list
(** Non-zero components, sorted by site. *)

val get : t -> site -> int

val bump : t -> site -> t
(** [bump v s] records one more update committed at site [s]. *)

val merge : t -> t -> t
(** Pointwise maximum: the vector of a copy that has seen both histories. *)

type order =
  | Equal       (** identical histories *)
  | Dominates   (** left has seen everything right has, and more *)
  | Dominated   (** right strictly subsumes left *)
  | Concurrent  (** conflicting updates in different partitions *)

val compare_vv : t -> t -> order

val dominates_or_equal : t -> t -> bool

val conflict : t -> t -> bool
(** [conflict a b] iff [compare_vv a b = Concurrent]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_order : Format.formatter -> order -> unit

val to_string : t -> string
