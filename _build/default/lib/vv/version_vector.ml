module Imap = Map.Make (Int)

type site = int

type t = int Imap.t
(* Invariant: no zero components are stored, so structural equality of the
   maps coincides with vector equality. *)

let zero = Imap.empty

let of_list l =
  List.fold_left
    (fun acc (s, n) -> if n = 0 then acc else Imap.add s n acc)
    Imap.empty l

let to_list t = Imap.bindings t

let get t s = match Imap.find_opt s t with Some n -> n | None -> 0

let bump t s = Imap.add s (get t s + 1) t

let merge a b = Imap.union (fun _ x y -> Some (max x y)) a b

type order = Equal | Dominates | Dominated | Concurrent

let compare_vv a b =
  (* One pass over the union of components, tracking whether each side has a
     strictly larger component somewhere. *)
  let a_gt = ref false and b_gt = ref false in
  let check s =
    let x = get a s and y = get b s in
    if x > y then a_gt := true;
    if y > x then b_gt := true
  in
  Imap.iter (fun s _ -> check s) a;
  Imap.iter (fun s _ -> check s) b;
  match (!a_gt, !b_gt) with
  | false, false -> Equal
  | true, false -> Dominates
  | false, true -> Dominated
  | true, true -> Concurrent

let dominates_or_equal a b =
  match compare_vv a b with Equal | Dominates -> true | Dominated | Concurrent -> false

let conflict a b = compare_vv a b = Concurrent

let equal a b = compare_vv a b = Equal

let pp ppf t =
  let comps = to_list t in
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf (s, n) -> Format.fprintf ppf "%d:%d" s n))
    comps

let pp_order ppf = function
  | Equal -> Format.pp_print_string ppf "equal"
  | Dominates -> Format.pp_print_string ppf "dominates"
  | Dominated -> Format.pp_print_string ppf "dominated"
  | Concurrent -> Format.pp_print_string ppf "concurrent"

let to_string t = Format.asprintf "%a" pp t
