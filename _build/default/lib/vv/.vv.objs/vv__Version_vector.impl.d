lib/vv/version_vector.ml: Format Int List Map
