(** The merge protocol (§5.5) and post-merge rebuild (§5.6).

    The initiating site polls every site of the network (including those
    believed down — the goal is the largest possible partition), declares
    the new partition after a suitable wait, and broadcasts its
    composition. The waiting strategy is the paper's two-level timeout:
    long while a site believed up by some member has not answered, short
    once all such sites have replied — so a small partition of a large
    network merges quickly. After the announcement, a new CSS is selected
    for every filegroup, and each rebuilds its version bookkeeping (from
    pack inventories) and its lock table (from members' open-file lists). *)

type timeout_policy =
  | Fixed_timeout of float  (** ms: always wait this long for missing sites *)
  | Adaptive_timeout of { long : float; short : float }

val default_policy : timeout_policy

type report = {
  members : Net.Site.t list;
  polled : int;
  responded : int;
  busy : int;
  skipped : int;        (** sites not polled: no gateway vouched for them *)
  wait_charged : float; (** simulated ms spent in timeouts *)
  css_map : (int * Net.Site.t) list;
}

exception Yield of Net.Site.t
(** Raised when a lower-numbered site is already coordinating a merge
    (the arbitration of the paper's pseudocode). *)

val merging : (Net.Site.t, unit) Hashtbl.t
(** Sites currently acting as merge initiator (exposed for tests). *)

val run_initiator :
  ?policy:timeout_policy ->
  ?gateways:Net.Site.t list ->
  Locus_core.Ktypes.t ->
  all_sites:Net.Site.t list ->
  report
(** [gateways] enables the large-network optimization of the §5.5
    footnote: gateways are polled first and only sites some gateway (or
    this partition) believes up are polled individually; unvouched sites
    are skipped without a timeout. *)

val handle_poll : Locus_core.Ktypes.t -> src:Net.Site.t -> Proto.resp

val handle_announce :
  Locus_core.Ktypes.t ->
  members:Net.Site.t list ->
  css_map:(int * Net.Site.t) list ->
  Proto.resp

val rebuild_css : Locus_core.Ktypes.t -> int -> members:Net.Site.t list -> unit
(** New CSS for a filegroup: reconstruct version bookkeeping and the lock
    table from the members (§5.6). *)
