(** The partition protocol (§5.4).

    When communication breaks, the site tables of a partition become
    unsynchronized. The protocol re-establishes logical partitioning by
    *iterative intersection*: the active site polls the sites in its
    partition set; each successful poll returns the polled site's own
    partition set (verified against its virtual-circuit state), which is
    intersected in; polling continues until the joined set equals the
    partition set. The result is a maximal fully-connected sub-network —
    a single communication failure never splits the net into three parts.

    After agreement, each member installs the membership, re-elects the
    CSS for every filegroup it supports, and runs the cleanup procedure
    (§5.6) for departed sites. *)

type report = {
  members : Net.Site.t list;
  polls : int;    (** poll exchanges performed *)
  rounds : int;   (** intersection iterations *)
  failures : int; (** polls that found a site unreachable *)
}

val run_active : Locus_core.Ktypes.t -> report
(** Run the protocol as the active site and announce the consensus. *)

val handle_poll : Locus_core.Ktypes.t -> src:Net.Site.t -> Proto.resp

val handle_announce : Locus_core.Ktypes.t -> members:Net.Site.t list -> Proto.resp

val apply_membership : Locus_core.Ktypes.t -> Net.Site.t list -> Net.Site.t list
(** Install an agreed membership: re-elect CSSs, then run cleanup for each
    departed site. Returns the departed sites. *)

val reelect_css : Locus_core.Ktypes.t -> Net.Site.t list -> unit
(** Select a new synchronization site per filegroup: the lowest member
    holding a physical container; the new CSS rebuilds its tables. *)

val check_active_and_takeover :
  Locus_core.Ktypes.t -> active:Net.Site.t -> report option
(** §5.7: a passive site checks the active site; if it has failed, this
    site restarts the protocol itself (returns its report). *)
