(** Reconciliation after merge (§4).

    The version-vector comparison of [PARK 83] classifies each file's
    copies within the new partition: equal (nothing to do), dominated
    (schedule update propagation), or concurrent (conflicting updates
    during partition). Concurrent directories are merged by the rules of
    §4.4 (including renaming on name conflicts and undoing deletes of
    since-modified files), mailboxes by §4.5, files with a registered
    type manager by that manager (§4.3), and everything else is marked in
    conflict — normal access fails — with the owner notified by
    electronic mail (§4.6) and an interactive resolution tool. *)

type report = {
  mutable files_checked : int;
  mutable propagations : int;
  mutable dir_merges : int;
  mutable mail_merges : int;
  mutable manager_merges : int;
  mutable conflicts_marked : int;
  mutable name_conflicts : int;
  mutable deletes_undone : int;
  mutable saved_from_delete : int;
  mutable mails_sent : int;
}

val empty_report : unit -> report

val pp_report : Format.formatter -> report -> unit

val register_merge_manager : Storage.Inode.ftype -> (string list -> string) -> unit
(** Install a higher-level recovery/merge manager for a file type (§4.3):
    it receives the divergent contents and returns the merged contents. *)

val unregister_merge_manager : Storage.Inode.ftype -> unit

val reconcile_fg : Locus_core.Ktypes.t -> int -> report
(** Reconcile every file of a filegroup. The caller must be its CSS. *)

val reconcile_file : Locus_core.Ktypes.t -> Catalog.Gfile.t -> report -> unit
(** Reconcile one file — the entry point for *demand recovery*: a
    directory needed right now is merged out of order (§4.4). *)

val resolve_manual : Locus_core.Ktypes.t -> Catalog.Gfile.t -> winner:Net.Site.t -> bool
(** Interactive resolution of a marked conflict: keep the copy stored at
    [winner]; every other site pulls the resolved version. *)

val merge_two_dirs :
  Locus_core.Ktypes.t -> int -> Catalog.Dir.t -> Catalog.Dir.t -> report -> Catalog.Dir.t
(** The directory-merge rules of §4.4 (exposed for tests). *)

val modified_since : Locus_core.Ktypes.t -> int -> int -> since:float -> bool
(** Rule 2b/2d inode interrogation: was the file's data modified after the
    given deletion time? *)
