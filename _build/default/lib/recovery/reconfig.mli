(** Reconfiguration orchestration (§5.3).

    Wires the protocol handlers into each kernel and drives the
    partition → merge → recovery sequence. Normal processing continues
    underneath; file reconciliation supports demand recovery. *)

val install : Locus_core.Ktypes.t -> unit
(** Install the reconfiguration-protocol handlers on a kernel (once, at
    boot). *)

type full_report = {
  partition_reports : Partition.report list;
  merge_report : Merge.report option;
  reconcile_reports : (int * Reconcile.report) list;
}

val run_partitions :
  Locus_core.Ktypes.t list -> initiators:Net.Site.t list -> Partition.report list
(** One partition protocol per suspected sub-network. *)

val run_merge_and_recover :
  ?policy:Merge.timeout_policy ->
  ?gateways:Net.Site.t list ->
  Locus_core.Ktypes.t list ->
  initiator:Net.Site.t ->
  Merge.report * (int * Reconcile.report) list
(** Merge, then the recovery procedure: every new CSS reconciles its
    filegroups and the scheduled update propagations are drained. *)

val reconfigure :
  ?policy:Merge.timeout_policy ->
  Locus_core.Ktypes.t list ->
  initiators:Net.Site.t list ->
  merge_initiator:Net.Site.t ->
  full_report
