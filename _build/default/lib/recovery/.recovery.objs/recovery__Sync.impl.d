lib/recovery/sync.ml: Locus_core Net Proto
