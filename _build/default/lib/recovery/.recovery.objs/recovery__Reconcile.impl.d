lib/recovery/reconcile.ml: Buffer Catalog Format Gfile Hashtbl Int List Locus_core Net Option Printf Proto Storage String Vvec
