lib/recovery/reconcile.mli: Catalog Format Locus_core Net Storage
