lib/recovery/reconfig.mli: Locus_core Merge Net Partition Reconcile
