lib/recovery/merge.mli: Hashtbl Locus_core Net Proto
