lib/recovery/partition.ml: List Locus_core Merge Net Printf Proto String Txn
