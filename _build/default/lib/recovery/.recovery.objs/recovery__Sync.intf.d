lib/recovery/sync.mli: Locus_core Net
