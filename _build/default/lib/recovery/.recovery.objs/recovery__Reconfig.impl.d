lib/recovery/reconfig.ml: Hashtbl List Locus_core Merge Net Partition Proto Reconcile Sim
