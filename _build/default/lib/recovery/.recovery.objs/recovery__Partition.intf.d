lib/recovery/partition.mli: Locus_core Net Proto
