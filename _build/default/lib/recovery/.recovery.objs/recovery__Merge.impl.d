lib/recovery/merge.ml: Engine Gfile Hashtbl Int List Locus_core Net Option Printf Proto String
