(** Protocol synchronization (§5.7).

    Reconfiguration is synchronized without ACKs: whenever a site takes a
    passive role it periodically checks on the active site, restarting the
    protocol itself if the active site has failed. To prevent circular
    waits and deadlocks, all protocol stages are totally ordered: a site
    may wait only for sites executing a stage that *precedes* its own;
    between sites in the same stage, the lower site number wins. The
    lowest-ordered site has nobody to legally wait for, so if it is not
    active its check fails and the protocol restarts at a reasonable
    point. *)

type stage =
  | Idle                (** 0: not reconfiguring *)
  | Partition_polling   (** 1: active in the partition protocol *)
  | Partition_announce  (** 2: announcing partition membership *)
  | Merging             (** 3: active in the merge protocol *)

val stage_of_int : int -> stage

val stage_to_int : stage -> int

val may_wait_for :
  my_stage:stage -> my_site:Net.Site.t -> their_stage:stage -> their_site:Net.Site.t -> bool
(** The §5.7 ordering rule: wait only for a site in an earlier stage, or —
    within the same stage — for a lower-numbered site. *)

val check_peer :
  Locus_core.Ktypes.t -> Net.Site.t -> [ `Proceed | `Wait | `Restart ]
(** Probe a peer this site is waiting on: [`Wait] if the wait is legal and
    the peer is alive, [`Proceed] if the wait would be illegal (the peer
    must act first or not at all), [`Restart] if the peer is unreachable —
    the waiting site should restart the protocol. *)
