lib/storage/cache.mli: Page
