lib/storage/inode.ml: Array Format Page Vv
