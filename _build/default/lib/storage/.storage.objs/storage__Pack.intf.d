lib/storage/pack.mli: Disk Format Inode Page
