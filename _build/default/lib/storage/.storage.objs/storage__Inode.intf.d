lib/storage/inode.mli: Format Vv
