lib/storage/pack.ml: Array Buffer Disk Format Hashtbl Inode Int List Page
