lib/storage/cache.ml: Hashtbl List Page
