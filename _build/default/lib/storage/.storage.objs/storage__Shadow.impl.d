lib/storage/shadow.ml: Array Disk Hashtbl Inode Int List Pack Page String
