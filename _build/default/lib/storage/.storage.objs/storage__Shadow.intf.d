lib/storage/shadow.mli: Inode Pack Page Vv
