type 'k t = {
  capacity : int;
  table : ('k, Page.t) Hashtbl.t;
  mutable order : 'k list; (* most recent first; may contain stale keys *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { capacity; table = Hashtbl.create capacity; order = []; hits = 0; misses = 0 }

let touch t key = t.order <- key :: List.filter (fun k -> k <> key) t.order

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some page ->
    t.hits <- t.hits + 1;
    touch t key;
    Some (Page.copy page)
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_to_capacity t =
  while Hashtbl.length t.table > t.capacity do
    match List.rev t.order with
    | [] -> Hashtbl.reset t.table
    | victim :: _ ->
      Hashtbl.remove t.table victim;
      t.order <- List.filter (fun k -> k <> victim) t.order
  done

let insert t key page =
  Hashtbl.replace t.table key (Page.copy page);
  touch t key;
  evict_to_capacity t

let invalidate t key =
  Hashtbl.remove t.table key;
  t.order <- List.filter (fun k -> k <> key) t.order

let invalidate_if t pred =
  let victims = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.table [] in
  List.iter (fun k -> Hashtbl.remove t.table k) victims;
  t.order <- List.filter (fun k -> not (pred k)) t.order

let clear t =
  Hashtbl.reset t.table;
  t.order <- []

let length t = Hashtbl.length t.table

let hits t = t.hits

let misses t = t.misses
