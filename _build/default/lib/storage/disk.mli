(** Simulated disk: a flat array of pages with a free list.

    Page address 0 is reserved (never allocated) so that 0 can encode "no
    page" in on-disk page tables. *)

type t

type addr = int

exception Disk_full

val create : ?pages:int -> unit -> t
(** Default capacity 65536 pages (64 MiB). *)

val alloc : t -> addr
(** Allocate a zeroed page. Raises {!Disk_full}. *)

val free : t -> addr -> unit
(** Release a page. Double frees raise [Invalid_argument]. *)

val read : t -> addr -> Page.t
(** Returns a copy of the page contents. *)

val write : t -> addr -> Page.t -> unit

val is_allocated : t -> addr -> bool

val used : t -> int

val capacity : t -> int

val reads : t -> int
(** Cumulative page reads, for I/O accounting. *)

val writes : t -> int
