(** Fixed-size data pages, the unit of file I/O and of network transfer. *)

val size : int
(** Page size in bytes (1024, as on the paper's VAX systems). *)

type t = Bytes.t

val blank : unit -> t

val copy : t -> t

val of_string : string -> t
(** Pad with NULs or truncate to exactly {!size} bytes. *)

val to_string : t -> string
(** Full page contents including padding. *)

val blit_string : string -> t -> int -> unit
(** [blit_string s page off] overwrites bytes [off .. off+len-1]. Raises
    [Invalid_argument] if it does not fit. *)

val sub : t -> int -> int -> string

val get_u32 : t -> int -> int

val set_u32 : t -> int -> int -> unit
(** Big-endian 32-bit codec used for indirect page tables. *)

val equal : t -> t -> bool
