(** LRU buffer cache.

    Used at a storage site for disk pages and at a using site for pages
    fetched across the network (§2.3.3: "all such requests are serviced via
    kernel buffers"). Keys are caller-chosen; entries are whole pages. *)

type 'k t

val create : capacity:int -> 'k t

val find : 'k t -> 'k -> Page.t option
(** Hit moves the entry to most-recently-used and returns a copy. *)

val insert : 'k t -> 'k -> Page.t -> unit
(** Insert (or refresh) a copy of the page, evicting the least recently
    used entry if over capacity. *)

val invalidate : 'k t -> 'k -> unit

val invalidate_if : 'k t -> ('k -> bool) -> unit
(** Drop all entries whose key satisfies the predicate (e.g. every page of
    a file that just changed version). *)

val clear : 'k t -> unit

val length : 'k t -> int

val hits : 'k t -> int

val misses : 'k t -> int
