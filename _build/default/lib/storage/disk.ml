type addr = int

exception Disk_full

type t = {
  pages : Page.t option array;
  mutable free_head : int list;
  mutable next_fresh : int;
  mutable used : int;
  mutable reads : int;
  mutable writes : int;
}

let create ?(pages = 65536) () =
  {
    pages = Array.make pages None;
    free_head = [];
    next_fresh = 1; (* address 0 reserved *)
    used = 0;
    reads = 0;
    writes = 0;
  }

let capacity t = Array.length t.pages - 1

let alloc t =
  let addr =
    match t.free_head with
    | a :: rest ->
      t.free_head <- rest;
      a
    | [] ->
      if t.next_fresh >= Array.length t.pages then raise Disk_full
      else begin
        let a = t.next_fresh in
        t.next_fresh <- t.next_fresh + 1;
        a
      end
  in
  t.pages.(addr) <- Some (Page.blank ());
  t.used <- t.used + 1;
  addr

let check t addr =
  if addr <= 0 || addr >= Array.length t.pages then
    invalid_arg "Disk: address out of range"

let free t addr =
  check t addr;
  match t.pages.(addr) with
  | None -> invalid_arg "Disk.free: page not allocated"
  | Some _ ->
    t.pages.(addr) <- None;
    t.free_head <- addr :: t.free_head;
    t.used <- t.used - 1

let read t addr =
  check t addr;
  match t.pages.(addr) with
  | None -> invalid_arg "Disk.read: page not allocated"
  | Some p ->
    t.reads <- t.reads + 1;
    Page.copy p

let write t addr page =
  check t addr;
  match t.pages.(addr) with
  | None -> invalid_arg "Disk.write: page not allocated"
  | Some _ ->
    t.writes <- t.writes + 1;
    t.pages.(addr) <- Some (Page.copy page)

let is_allocated t addr =
  addr > 0 && addr < Array.length t.pages && t.pages.(addr) <> None

let used t = t.used

let reads t = t.reads

let writes t = t.writes
