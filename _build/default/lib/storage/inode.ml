type ftype = Regular | Directory | Hidden_directory | Mailbox | Database | Fifo

let n_direct = 8

let indirect_capacity = Page.size / 4

let max_pages = n_direct + indirect_capacity

type t = {
  ino : int;
  mutable ftype : ftype;
  mutable size : int;
  mutable nlink : int;
  mutable owner : string;
  mutable perms : int;
  mutable mtime : float;
  mutable vv : Vv.Version_vector.t;
  mutable deleted : bool;
  mutable delete_time : float;
  direct : int array;
  mutable indirect : int;
}

let create ~ino ~ftype ~owner =
  {
    ino;
    ftype;
    size = 0;
    nlink = 1;
    owner;
    perms = 0o644;
    mtime = 0.0;
    vv = Vv.Version_vector.zero;
    deleted = false;
    delete_time = 0.0;
    direct = Array.make n_direct 0;
    indirect = 0;
  }

let clone t = { t with direct = Array.copy t.direct }

let npages t = (t.size + Page.size - 1) / Page.size

let is_directory t =
  match t.ftype with
  | Directory | Hidden_directory -> true
  | Regular | Mailbox | Database | Fifo -> false

let ftype_to_string = function
  | Regular -> "regular"
  | Directory -> "directory"
  | Hidden_directory -> "hidden-directory"
  | Mailbox -> "mailbox"
  | Database -> "database"
  | Fifo -> "fifo"

let pp_ftype ppf ft = Format.pp_print_string ppf (ftype_to_string ft)

let pp ppf t =
  Format.fprintf ppf "inode %d (%a, %d bytes, nlink %d, vv %a%s)" t.ino pp_ftype
    t.ftype t.size t.nlink Vv.Version_vector.pp t.vv
    (if t.deleted then ", deleted" else "")
