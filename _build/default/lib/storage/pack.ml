type t = {
  fg : int;
  pack_id : int;
  disk : Disk.t;
  inodes : (int, Inode.t) Hashtbl.t;
  ino_lo : int;
  ino_hi : int;
  mutable next_ino : int;
}

let create ~fg ~pack_id ~ino_lo ~ino_hi ?disk_pages () =
  if ino_lo > ino_hi then invalid_arg "Pack.create: empty inode range";
  {
    fg;
    pack_id;
    disk = Disk.create ?pages:disk_pages ();
    inodes = Hashtbl.create 256;
    ino_lo;
    ino_hi;
    next_ino = ino_lo;
  }

let fg t = t.fg

let pack_id t = t.pack_id

let disk t = t.disk

let ino_range t = (t.ino_lo, t.ino_hi)

let alloc_ino t =
  let rec find i =
    if i > t.ino_hi then failwith "Pack.alloc_ino: inode space exhausted"
    else if Hashtbl.mem t.inodes i then find (i + 1)
    else i
  in
  let ino = find t.next_ino in
  t.next_ino <- ino + 1;
  ino

let find_inode t ino = Hashtbl.find_opt t.inodes ino

let get_inode t ino =
  match find_inode t ino with Some i -> i | None -> raise Not_found

let stores t ino = Hashtbl.mem t.inodes ino

let install_inode t (inode : Inode.t) = Hashtbl.replace t.inodes inode.Inode.ino inode

let load_table t (inode : Inode.t) =
  let table = Array.make Inode.max_pages 0 in
  Array.blit inode.Inode.direct 0 table 0 Inode.n_direct;
  if inode.Inode.indirect <> 0 then begin
    let page = Disk.read t.disk inode.Inode.indirect in
    for i = 0 to Inode.indirect_capacity - 1 do
      table.(Inode.n_direct + i) <- Page.get_u32 page (4 * i)
    done
  end;
  table

let page_addr t inode lpage =
  if lpage < 0 || lpage >= Inode.max_pages then
    invalid_arg "Pack.page_addr: logical page out of range";
  if lpage < Inode.n_direct then begin
    let a = inode.Inode.direct.(lpage) in
    if a = 0 then None else Some a
  end
  else if inode.Inode.indirect = 0 then None
  else begin
    let page = Disk.read t.disk inode.Inode.indirect in
    let a = Page.get_u32 page (4 * (lpage - Inode.n_direct)) in
    if a = 0 then None else Some a
  end

let read_page t inode lpage =
  match page_addr t inode lpage with
  | Some addr -> Disk.read t.disk addr
  | None -> Page.blank ()

let write_indirect t table_tail =
  if Array.length table_tail <> Inode.indirect_capacity then
    invalid_arg "Pack.write_indirect: wrong table length";
  let addr = Disk.alloc t.disk in
  let page = Page.blank () in
  Array.iteri (fun i a -> Page.set_u32 page (4 * i) a) table_tail;
  Disk.write t.disk addr page;
  addr

let read_string t inode =
  let buf = Buffer.create inode.Inode.size in
  let npages = Inode.npages inode in
  for lpage = 0 to npages - 1 do
    let page = read_page t inode lpage in
    let remaining = inode.Inode.size - (lpage * Page.size) in
    let len = min Page.size remaining in
    Buffer.add_string buf (Page.sub page 0 len)
  done;
  Buffer.contents buf

let free_file_pages t inode =
  let table = load_table t inode in
  Array.iter (fun a -> if a <> 0 then Disk.free t.disk a) table;
  if inode.Inode.indirect <> 0 then begin
    Disk.free t.disk inode.Inode.indirect;
    inode.Inode.indirect <- 0
  end;
  Array.fill inode.Inode.direct 0 Inode.n_direct 0

let remove_inode t ino =
  match find_inode t ino with
  | None -> ()
  | Some inode ->
    free_file_pages t inode;
    Hashtbl.remove t.inodes ino

let inodes t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t.inodes []
  |> List.sort (fun (a : Inode.t) b -> Int.compare a.Inode.ino b.Inode.ino)

type fsck_error =
  | Double_allocated of int * int * int
  | Bad_address of int * int
  | Size_beyond_table of int
  | Orphan_pages of int

let pp_fsck_error ppf = function
  | Double_allocated (addr, a, b) ->
    Format.fprintf ppf "page %d claimed by inodes %d and %d" addr a b
  | Bad_address (ino, addr) ->
    Format.fprintf ppf "inode %d references unallocated page %d" ino addr
  | Size_beyond_table ino -> Format.fprintf ppf "inode %d size beyond page table" ino
  | Orphan_pages n -> Format.fprintf ppf "%d orphan pages" n

let fsck t =
  let errors = ref [] in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let claim ino addr =
    if addr <> 0 then begin
      if not (Disk.is_allocated t.disk addr) then
        errors := Bad_address (ino, addr) :: !errors;
      match Hashtbl.find_opt owner addr with
      | Some other -> errors := Double_allocated (addr, other, ino) :: !errors
      | None -> Hashtbl.add owner addr ino
    end
  in
  List.iter
    (fun (inode : Inode.t) ->
      let ino = inode.Inode.ino in
      if inode.Inode.indirect <> 0 then claim ino inode.Inode.indirect;
      let table = load_table t inode in
      Array.iter (claim ino) table;
      if Inode.npages inode > Inode.max_pages then
        errors := Size_beyond_table ino :: !errors)
    (inodes t);
  let orphans = ref 0 in
  for addr = 1 to Disk.capacity t.disk do
    if Disk.is_allocated t.disk addr && not (Hashtbl.mem owner addr) then incr orphans
  done;
  if !orphans > 0 then errors := Orphan_pages !orphans :: !errors;
  List.rev !errors

let scavenge t =
  let reachable = Hashtbl.create 1024 in
  List.iter
    (fun inode ->
      if inode.Inode.indirect <> 0 then Hashtbl.replace reachable inode.Inode.indirect ();
      let table = load_table t inode in
      Array.iter (fun a -> if a <> 0 then Hashtbl.replace reachable a ()) table)
    (inodes t);
  let freed = ref 0 in
  for addr = 1 to Disk.capacity t.disk do
    if Disk.is_allocated t.disk addr && not (Hashtbl.mem reachable addr) then begin
      Disk.free t.disk addr;
      incr freed
    end
  done;
  !freed
