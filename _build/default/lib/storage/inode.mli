(** File descriptors (inodes).

    A file's globally unique low-level name is the pair <logical filegroup
    number, inode number> (§2.2.2); this module holds the per-copy descriptor
    stored in a pack: metadata, the version vector, and the page table
    (direct slots plus one indirect page). The inode is treated as part of
    the file from the recovery point of view (§4.4). *)

type ftype =
  | Regular
  | Directory
  | Hidden_directory  (** context-sensitive name expansion, §2.4.1 *)
  | Mailbox           (** automatically reconciled, §4.5 *)
  | Database          (** reconciliation deferred to a transaction manager *)
  | Fifo              (** named pipe, §2.4.2 *)

val n_direct : int
(** Number of direct page-table slots (8). *)

val indirect_capacity : int
(** Entries in the single indirect page. *)

val max_pages : int
(** Largest supported file, in pages. *)

type t = {
  ino : int;
  mutable ftype : ftype;
  mutable size : int;          (** bytes *)
  mutable nlink : int;
  mutable owner : string;
  mutable perms : int;
  mutable mtime : float;       (** simulated time of last committed change *)
  mutable vv : Vv.Version_vector.t;
  mutable deleted : bool;      (** delete committed; awaiting propagation *)
  mutable delete_time : float;
  direct : int array;          (** disk addresses; 0 = no page *)
  mutable indirect : int;      (** disk address of indirect page; 0 = none *)
}

val create : ino:int -> ftype:ftype -> owner:string -> t

val clone : t -> t
(** Deep copy, used as the incore inode of a shadow-page session. *)

val npages : t -> int
(** Number of logical pages implied by [size]. *)

val is_directory : t -> bool

val pp_ftype : Format.formatter -> ftype -> unit

val ftype_to_string : ftype -> string

val pp : Format.formatter -> t -> unit
