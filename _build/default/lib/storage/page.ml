let size = 1024

type t = Bytes.t

let blank () = Bytes.make size '\000'

let copy = Bytes.copy

let of_string s =
  let p = blank () in
  let n = min (String.length s) size in
  Bytes.blit_string s 0 p 0 n;
  p

let to_string p = Bytes.to_string p

let blit_string s page off = Bytes.blit_string s 0 page off (String.length s)

let sub page off len = Bytes.sub_string page off len

let get_u32 p off =
  let b i = Char.code (Bytes.get p (off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let set_u32 p off v =
  let set i x = Bytes.set p (off + i) (Char.chr (x land 0xff)) in
  set 0 (v lsr 24);
  set 1 (v lsr 16);
  set 2 (v lsr 8);
  set 3 v

let equal = Bytes.equal
