(** Physical containers for logical filegroups (§2.2.2).

    A pack stores a *subset* of the files of one logical filegroup, plus its
    own disk. The inode number space of the filegroup is partitioned across
    packs so that each pack can allocate inode numbers while other packs are
    inaccessible (§2.3.7). *)

type t

val create :
  fg:int -> pack_id:int -> ino_lo:int -> ino_hi:int -> ?disk_pages:int -> unit -> t

val fg : t -> int

val pack_id : t -> int

val disk : t -> Disk.t

val ino_range : t -> int * int

val alloc_ino : t -> int
(** Next inode number from this pack's partition of the space. *)

val stores : t -> int -> bool
(** Does this pack hold a copy (inode present and not discarded)? *)

val find_inode : t -> int -> Inode.t option

val get_inode : t -> int -> Inode.t
(** Raises [Not_found]. *)

val install_inode : t -> Inode.t -> unit
(** Add or replace the descriptor (used by create and by propagation). *)

val remove_inode : t -> int -> unit
(** Drop the descriptor and free all its pages (final stage of delete). *)

val inodes : t -> Inode.t list

val load_table : t -> Inode.t -> int array
(** Full logical-to-physical page table (direct slots then the decoded
    indirect page); entries are disk addresses, 0 meaning absent. *)

val page_addr : t -> Inode.t -> int -> int option
(** Physical address of logical page [i], if allocated. *)

val read_page : t -> Inode.t -> int -> Page.t
(** Read logical page [i]; absent pages read as zeroes. *)

val write_indirect : t -> int array -> int
(** Allocate and write a fresh indirect page holding the given addresses
    (length {!Inode.indirect_capacity}); returns its disk address. *)

val read_string : t -> Inode.t -> string
(** Whole-file contents ([size] bytes), assembled from pages. *)

val free_file_pages : t -> Inode.t -> unit
(** Free every data page and the indirect page of this descriptor. *)

val scavenge : t -> int
(** Free any allocated page not reachable from the inode table (orphans left
    by a crash between shadow-page writes and commit). Returns the number
    of pages reclaimed. *)

type fsck_error =
  | Double_allocated of int * int * int
      (** page address claimed by two inodes (addr, ino1, ino2) *)
  | Bad_address of int * int (** inode references an unallocated page (ino, addr) *)
  | Size_beyond_table of int (** inode's size implies pages past the table (ino) *)
  | Orphan_pages of int      (** pages allocated but unreachable (count) *)

val pp_fsck_error : Format.formatter -> fsck_error -> unit

val fsck : t -> fsck_error list
(** Verify the container's structural invariants: every allocated page is
    referenced by exactly one inode (or reported as an orphan), every
    referenced address is allocated, and no inode's size exceeds its page
    table. An empty list means the container is consistent. *)
