(** Nested transactions [MEUL 83], integrated with the LOCUS commit
    machinery (section 2.3.6 of the paper).

    A top-level transaction binds updates to a set of files together:
    nothing reaches the filesystem until the top-level commit, which drives
    each file through the standard shadow-page commit while the CSS
    single-writer lock (acquired at first write) provides isolation.
    Subtransactions commit into their parent (their write sets and locks
    are inherited) or abort independently without disturbing it.

    Partition behaviour follows the failure-action table of section 5.6:
    when a site holding part of a transaction's state leaves the partition,
    every related (sub)transaction in the partition is aborted. *)

type t

type status = Active | Committed | Aborted

exception Txn_error of string

val begin_top : Locus_core.Kernel.t -> Locus_core.Ktypes.proc -> t
(** Start a top-level transaction executed by [proc]. *)

val begin_sub : t -> t
(** Start a subtransaction. Raises [Txn_error] if the parent is not
    active. *)

val status : t -> status

val id : t -> int

val depth : t -> int
(** 0 for a top-level transaction. *)

val read : t -> string -> string
(** Read a file's contents as seen by this transaction: its own buffered
    writes shadow its ancestors', which shadow the filesystem. *)

val write : t -> string -> string -> unit
(** Buffer a whole-file overwrite. Takes the file's modification lock (via
    the normal open-for-modification protocol) on first touch; the lock is
    held until the top-level commit or abort. *)

val create : t -> string -> unit
(** Create a new (empty) file under the transaction: the name appears
    immediately, but is removed again if the transaction aborts. *)

val commit : t -> unit
(** Commit. For a subtransaction, merge the write set and locks into the
    parent. For a top-level transaction, write every buffered file through
    the shadow-page commit and release all locks. *)

val abort : t -> unit
(** Undo everything back to the transaction's start, recursively aborting
    its active subtransactions. *)

val touched_sites : t -> Net.Site.t list
(** Sites whose storage this transaction family depends on. *)

val handle_site_failure : Locus_core.Kernel.t -> Net.Site.t -> int
(** Abort every active transaction at this kernel that depends on the
    failed site (the "Distributed Transaction" row of the section 5.6
    table). Returns the number of transactions aborted. *)

val active_count : Locus_core.Kernel.t -> int
