type status = Live | Tombstone

type entry = { name : string; ino : int; status : status; stamp : float; origin : int }

type t = (string, entry) Hashtbl.t

let empty () : t = Hashtbl.create 16

let lookup t name =
  match Hashtbl.find_opt t name with
  | Some { status = Live; ino; _ } -> Some ino
  | Some { status = Tombstone; _ } | None -> None

let find_entry t name = Hashtbl.find_opt t name

let valid_name name =
  String.length name > 0
  && String.for_all (fun c -> c <> '/' && c <> '\t' && c <> '\n') name

let insert t ~name ~ino ~stamp ~origin =
  if not (valid_name name) then invalid_arg "Dir.insert: invalid name";
  Hashtbl.replace t name { name; ino; status = Live; stamp; origin }

let remove t ~name ~stamp ~origin =
  match Hashtbl.find_opt t name with
  | Some ({ status = Live; _ } as e) ->
    Hashtbl.replace t name { e with status = Tombstone; stamp; origin };
    true
  | Some { status = Tombstone; _ } | None -> false

let sorted_entries t pred =
  Hashtbl.fold (fun _ e acc -> if pred e then e :: acc else acc) t []
  |> List.sort (fun a b -> String.compare a.name b.name)

let live_entries t = sorted_entries t (fun e -> e.status = Live)

let all_entries t = sorted_entries t (fun _ -> true)

let cardinal t = List.length (live_entries t)

let names_of_ino t ino =
  live_entries t |> List.filter_map (fun e -> if e.ino = ino then Some e.name else None)

let encode t =
  let buf = Buffer.create 256 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%d\t%c\t%h\t%d\n" e.name e.ino
           (match e.status with Live -> 'L' | Tombstone -> 'T')
           e.stamp e.origin))
    (all_entries t);
  Buffer.contents buf

let decode s =
  let t = empty () in
  let lines = String.split_on_char '\n' s in
  List.iter
    (fun line ->
      if String.length line > 0 then begin
        match String.split_on_char '\t' line with
        | [ name; ino; status; stamp; origin ] ->
          let status =
            match status with
            | "L" -> Live
            | "T" -> Tombstone
            | _ -> failwith "Dir.decode: bad status"
          in
          Hashtbl.replace t name
            {
              name;
              ino = int_of_string ino;
              status;
              stamp = float_of_string stamp;
              origin = int_of_string origin;
            }
        | _ -> failwith "Dir.decode: malformed entry"
      end)
    lines;
  t

let copy t = Hashtbl.copy t

let equal a b =
  let norm t = all_entries t in
  norm a = norm b
