type t = {
  root_fg : int;
  mutable mounts : (Gfile.t * int) list; (* mount point -> child fg *)
}

let root_ino = 1

let create ~root_fg = { root_fg; mounts = [] }

let root t = Gfile.make ~fg:t.root_fg ~ino:root_ino

let root_fg t = t.root_fg

let add t ~mount_point ~child_fg =
  if child_fg = t.root_fg || List.exists (fun (_, fg) -> fg = child_fg) t.mounts then
    invalid_arg "Mount.add: filegroup already mounted";
  if List.exists (fun (p, _) -> Gfile.equal p mount_point) t.mounts then
    invalid_arg "Mount.add: mount point already in use";
  t.mounts <- (mount_point, child_fg) :: t.mounts

let mounted_at t point =
  List.find_opt (fun (p, _) -> Gfile.equal p point) t.mounts |> Option.map snd

let mount_point_of t fg =
  List.find_opt (fun (_, child) -> child = fg) t.mounts |> Option.map fst

let filegroups t = t.root_fg :: List.map snd t.mounts |> List.sort_uniq Int.compare

let copy t = { t with mounts = t.mounts }

let equal a b =
  let norm t =
    List.sort (fun (p1, _) (p2, _) -> Gfile.compare p1 p2) t.mounts
  in
  a.root_fg = b.root_fg && norm a = norm b
