(** Mailbox files and their automatic reconciliation (§4.5).

    A mailbox is a single file holding multiple messages (the default LOCUS
    storage format). The only partitioned-mode operations are insert and
    delete; message identifiers embed the originating site so name conflicts
    cannot arise, and deletion information is kept as tombstones — which is
    why two divergent mailbox copies always merge cleanly. *)

type msg = {
  id : string;       (** unique: "<site>.<seq>" assigned at insertion *)
  deleted : bool;
  stamp : float;
  from : string;
  body : string;     (** must not contain newline/tab; callers escape *)
}

type t

val empty : unit -> t

val insert : t -> id:string -> stamp:float -> from:string -> body:string -> unit

val delete : t -> id:string -> stamp:float -> bool
(** Tombstone a message. False if unknown or already deleted. *)

val live : t -> msg list
(** Undeleted messages, oldest stamp first. *)

val all : t -> msg list

val cardinal : t -> int

val mem : t -> string -> bool
(** A live message with this id exists. *)

val encode : t -> string

val decode : string -> t

val merge : t -> t -> t
(** Reconcile two divergent copies: union of messages; a deletion in either
    copy wins. Commutative, associative, idempotent. *)

val equal : t -> t -> bool
