(** Directory contents.

    A directory is "a set of records, each one containing the character
    string comprising one element in the path name" plus the inode number it
    points at (§4.4). The two operations are insert and remove; removed
    entries leave *tombstones* carrying the time and site of the removal,
    which is exactly the deletion information the reconciliation rules of
    §4.4 require. Directory contents are serialized into the directory
    file's data pages with a line-oriented codec. *)

type status = Live | Tombstone

type entry = {
  name : string;
  ino : int;           (** inode number within the directory's filegroup *)
  status : status;
  stamp : float;       (** simulated time of the last change to this entry *)
  origin : int;        (** site that performed the change *)
}

type t

val empty : unit -> t

val lookup : t -> string -> int option
(** Inode number bound to a live entry. *)

val find_entry : t -> string -> entry option
(** Entry, live or tombstone. *)

val insert : t -> name:string -> ino:int -> stamp:float -> origin:int -> unit
(** Add or resurrect a binding. Raises [Invalid_argument] on names
    containing the codec separators or "/" (or empty names). *)

val remove : t -> name:string -> stamp:float -> origin:int -> bool
(** Replace a live entry by a tombstone. Returns false if no live entry. *)

val live_entries : t -> entry list
(** Sorted by name. *)

val all_entries : t -> entry list
(** Live entries and tombstones, sorted by name. *)

val cardinal : t -> int
(** Number of live entries. *)

val names_of_ino : t -> int -> string list
(** All live names binding an inode (hard links). *)

val encode : t -> string

val decode : string -> t
(** Inverse of {!encode}. Raises [Failure] on malformed input. *)

val copy : t -> t

val equal : t -> t -> bool
(** Same live bindings and same tombstones. *)
