type msg = { id : string; deleted : bool; stamp : float; from : string; body : string }

type t = (string, msg) Hashtbl.t

let empty () : t = Hashtbl.create 16

let clean s = String.for_all (fun c -> c <> '\t' && c <> '\n') s

let insert t ~id ~stamp ~from ~body =
  if not (clean id && clean from && clean body) then
    invalid_arg "Mailbox.insert: fields must not contain tab/newline";
  Hashtbl.replace t id { id; deleted = false; stamp; from; body }

let delete t ~id ~stamp =
  match Hashtbl.find_opt t id with
  | Some ({ deleted = false; _ } as m) ->
    Hashtbl.replace t id { m with deleted = true; stamp };
    true
  | Some { deleted = true; _ } | None -> false

let sorted pred t =
  Hashtbl.fold (fun _ m acc -> if pred m then m :: acc else acc) t []
  |> List.sort (fun a b ->
         match Float.compare a.stamp b.stamp with
         | 0 -> String.compare a.id b.id
         | c -> c)

let live t = sorted (fun m -> not m.deleted) t

let all t = sorted (fun _ -> true) t

let cardinal t = List.length (live t)

let mem t id =
  match Hashtbl.find_opt t id with Some { deleted; _ } -> not deleted | None -> false

let encode t =
  let buf = Buffer.create 256 in
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%c\t%h\t%s\t%s\n" m.id
           (if m.deleted then 'D' else 'L')
           m.stamp m.from m.body))
    (all t);
  Buffer.contents buf

let decode s =
  let t = empty () in
  List.iter
    (fun line ->
      if String.length line > 0 then begin
        match String.split_on_char '\t' line with
        | [ id; flag; stamp; from; body ] ->
          let deleted =
            match flag with
            | "D" -> true
            | "L" -> false
            | _ -> failwith "Mailbox.decode: bad flag"
          in
          Hashtbl.replace t id { id; deleted; stamp = float_of_string stamp; from; body }
        | _ -> failwith "Mailbox.decode: malformed message"
      end)
    (String.split_on_char '\n' s);
  t

let merge a b =
  let out = empty () in
  let add _ (m : msg) =
    match Hashtbl.find_opt out m.id with
    | None -> Hashtbl.replace out m.id m
    | Some existing ->
      (* A deletion in either copy wins; otherwise keep either (same body). *)
      if m.deleted && not existing.deleted then Hashtbl.replace out m.id m
  in
  Hashtbl.iter add a;
  Hashtbl.iter add b;
  out

let equal a b = all a = all b
