lib/catalog/dir.mli:
