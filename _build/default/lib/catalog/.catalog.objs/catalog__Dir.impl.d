lib/catalog/dir.ml: Buffer Hashtbl List Printf String
