lib/catalog/mailbox.ml: Buffer Float Hashtbl List Printf String
