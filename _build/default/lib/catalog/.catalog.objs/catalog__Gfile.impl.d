lib/catalog/gfile.ml: Format Int Map Set
