lib/catalog/mount.mli: Gfile
