lib/catalog/mount.ml: Gfile Int List Option
