lib/catalog/gfile.mli: Format Map Set
