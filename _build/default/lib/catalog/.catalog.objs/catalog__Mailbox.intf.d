lib/catalog/mailbox.mli:
