(** Globally unique low-level file names.

    "A file's globally unique low-level name is: <logical filegroup number,
    file descriptor (inode) number> and it is this name which most of the
    operating system uses" (§2.2.2). *)

type t = { fg : int; ino : int }

val make : fg:int -> ino:int -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
