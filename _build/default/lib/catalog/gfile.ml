type t = { fg : int; ino : int }

let make ~fg ~ino = { fg; ino }

let compare a b =
  match Int.compare a.fg b.fg with 0 -> Int.compare a.ino b.ino | c -> c

let equal a b = compare a b = 0

let pp ppf t = Format.fprintf ppf "<%d,%d>" t.fg t.ino

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
