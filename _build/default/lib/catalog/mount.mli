(** The logical mount table (§2.1).

    Filegroups are glued into the single naming tree by mounting: a mount
    entry attaches a filegroup's root as a subtree at a directory of an
    already-mounted filegroup. The table is operating-system state
    replicated at every site, and the reconfiguration protocols require the
    mount hierarchy to be identical everywhere (§5.1). *)

type t

val root_ino : int
(** Inode number of every filegroup's root directory (1). *)

val create : root_fg:int -> t

val root : t -> Gfile.t
(** The global root directory <root_fg, 1>. *)

val root_fg : t -> int

val add : t -> mount_point:Gfile.t -> child_fg:int -> unit
(** Mount [child_fg] at directory [mount_point]. Raises [Invalid_argument]
    if that filegroup is already mounted or the point is in use. *)

val mounted_at : t -> Gfile.t -> int option
(** If the directory is a mount point, the filegroup mounted on it. *)

val mount_point_of : t -> int -> Gfile.t option
(** Reverse lookup for ".." traversal out of a filegroup root. [None] for
    the root filegroup. *)

val filegroups : t -> int list
(** All mounted filegroups including the root, sorted. *)

val copy : t -> t

val equal : t -> t -> bool
