(* Benchmark harness entry point.

   dune exec bench/main.exe            -- run every experiment (E1..E12)
   dune exec bench/main.exe -- e5 e6   -- run selected experiments
   dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks of the
                                          hot paths (host CPU time)
   dune exec bench/main.exe -- soak [--seeds K] [--seed N] [--ops M]
                                    [--drop i,j,...]
                                       -- deterministic fault soak; failing
                                          seeds shrink to a minimal repro
                                          command and exit non-zero *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Page = Storage.Page
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Vvec = Vv.Version_vector

(* ---- Bechamel micro-benchmarks ---- *)

let micro_tests () =
  let open Bechamel in
  (* Persistent worlds reused across iterations (the benchmarks measure
     steady-state kernel paths, not world construction). *)
  let w = World.create ~config:(World.default_config ~n_sites:5 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/bench");
  Kernel.write_file k0 p0 "/bench" (String.make 4096 'b');
  Experiments.settle_ok w;
  let gf0 = Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/bench" in
  let k3 = World.kernel w 3 in

  let local_open =
    Test.make ~name:"open+close local"
      (Staged.stage (fun () ->
           let o = Us.open_gf k0 gf0 Proto.Mode_read in
           Us.close k0 o))
  in
  let remote_open =
    Test.make ~name:"open+close remote"
      (Staged.stage (fun () ->
           let o = Us.open_gf k3 gf0 Proto.Mode_read in
           Us.close k3 o))
  in
  let o_local = Us.open_gf k0 gf0 Proto.Mode_read in
  let o_remote = Us.open_gf k3 gf0 Proto.Mode_read in
  let read_local =
    Test.make ~name:"page read local"
      (Staged.stage (fun () -> ignore (Us.read_page k0 o_local 0)))
  in
  let read_remote =
    Test.make ~name:"page read remote (cached)"
      (Staged.stage (fun () -> ignore (Us.read_page k3 o_remote 0)))
  in
  let pack = Pack.create ~fg:9 ~pack_id:0 ~ino_lo:2 ~ino_hi:10_000 () in
  let inode = Inode.create ~ino:2 ~ftype:Inode.Regular ~owner:"b" in
  Pack.install_inode pack inode;
  let body = String.make 2048 's' in
  let shadow_commit =
    Test.make ~name:"shadow commit 2 pages"
      (Staged.stage (fun () ->
           let s = Shadow.begin_modify pack 2 in
           Shadow.set_contents s body;
           Shadow.commit s ~vv:Vvec.zero ~mtime:0.0))
  in
  let a = Vvec.of_list [ (0, 3); (1, 2); (4, 9) ] in
  let b = Vvec.of_list [ (0, 3); (2, 7) ] in
  let vv_compare =
    Test.make ~name:"version-vector compare"
      (Staged.stage (fun () -> ignore (Vvec.compare_vv a b)))
  in
  let dir = Catalog.Dir.empty () in
  for i = 0 to 99 do
    Catalog.Dir.insert dir ~name:(Printf.sprintf "entry%d" i) ~ino:(i + 2)
      ~stamp:0.0 ~origin:0
  done;
  let dir_codec =
    Test.make ~name:"directory encode+decode (100 entries)"
      (Staged.stage (fun () ->
           ignore (Catalog.Dir.decode (Catalog.Dir.encode dir))))
  in
  [
    local_open; remote_open; read_local; read_remote; shadow_commit; vv_compare;
    dir_codec;
  ]

(* ---- event-core micro suite (BENCH_micro.json) ---- *)

(* Steady-state scheduler churn: preload the heap to a fixed depth, then
   pop-one/push-one for [iters] events, the hold pattern a running
   simulation keeps the queue in. Time increments come from a precomputed
   float array so the measured loop allocates nothing beyond what the
   heap under test allocates (plus the one boxed float the non-flambda
   call boundary charges both heaps equally). Reports host events/sec
   and minor words per event. *)
let n_incs = 4096

let make_incs () =
  let rng = Sim.Rng.create 0x10adL in
  Array.init n_incs (fun _ -> Sim.Rng.float rng 10.0)

let churn_old ~preload ~iters =
  let h = Oldheap.create () in
  let incs = make_incs () in
  for i = 0 to preload - 1 do
    Oldheap.push h ~time:incs.(i land (n_incs - 1)) ()
  done;
  Gc.minor ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    let time =
      match Oldheap.pop h with Some (time, ()) -> time | None -> assert false
    in
    Oldheap.push h ~time:(time +. incs.(i land (n_incs - 1))) ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  (float_of_int iters /. dt, words /. float_of_int iters)

let churn_new ~preload ~iters =
  let h = Sim.Eheap.create () in
  let incs = make_incs () in
  let scratch = [| 0.0 |] in
  for i = 0 to preload - 1 do
    Sim.Eheap.push h ~time:incs.(i land (n_incs - 1)) ()
  done;
  Gc.minor ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    Sim.Eheap.pop_into h ~time:scratch;
    Sim.Eheap.push h ~time:(scratch.(0) +. incs.(i land (n_incs - 1))) ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  (float_of_int iters /. dt, words /. float_of_int iters)

(* Whole-engine churn: a self-rescheduling thunk, i.e. schedule + step +
   dispatch per event. There is no old engine to race it against; the
   metric pins the end-to-end cost of one simulated event. *)
let churn_engine ~iters =
  let e = Sim.Engine.create ~seed:7L () in
  let n = ref 0 in
  let rec tick () =
    if !n < iters then begin
      incr n;
      Sim.Engine.schedule e ~delay:1.0 tick
    end
  in
  Sim.Engine.schedule e ~delay:1.0 tick;
  Gc.minor ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  ignore (Sim.Engine.run_until_idle ~limit:(iters + 8) e);
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  (float_of_int iters /. dt, words /. float_of_int iters)

let run_heap_micro () =
  let metric = Report.metric ~experiment:"micro" in
  Printf.printf "\n== event-core micro suite ==\n%!";
  let iters = 400_000 in
  Printf.printf "  %-34s %12s %12s\n" "scheduler churn (pop+push)"
    "events/sec" "words/event";
  let speedups =
    List.map
      (fun preload ->
        (* one throwaway round to warm the code paths, then measure *)
        ignore (churn_old ~preload ~iters:(iters / 8));
        ignore (churn_new ~preload ~iters:(iters / 8));
        let old_eps, old_wpe = churn_old ~preload ~iters in
        let new_eps, new_wpe = churn_new ~preload ~iters in
        metric (Printf.sprintf "heap.old.events_per_sec.d%d" preload) old_eps;
        metric (Printf.sprintf "heap.old.words_per_event.d%d" preload) old_wpe;
        metric (Printf.sprintf "heap.new.events_per_sec.d%d" preload) new_eps;
        metric (Printf.sprintf "heap.new.words_per_event.d%d" preload) new_wpe;
        Printf.printf "  old heap, depth %-6d %25.0f %12.1f\n%!" preload old_eps
          old_wpe;
        Printf.printf "  new heap, depth %-6d %25.0f %12.1f\n%!" preload new_eps
          new_wpe;
        new_eps /. old_eps)
      [ 1_024; 65_536 ]
  in
  let speedup = List.fold_left max 0.0 speedups in
  metric "heap.speedup" speedup;
  Printf.printf "  heap speedup (best depth): %.1fx (need >= 3x): %s\n" speedup
    (Report.check (speedup >= 3.0));
  let eng_eps, eng_wpe = churn_engine ~iters:200_000 in
  metric "engine.events_per_sec" eng_eps;
  metric "engine.words_per_event" eng_wpe;
  Printf.printf "  engine step+dispatch: %.0f events/sec, %.1f words/event\n%!"
    eng_eps eng_wpe

let run_micro () =
  run_heap_micro ();
  let open Bechamel in
  Printf.printf "\n== Bechamel micro-benchmarks (host CPU) ==\n%!";
  let tests = micro_tests () in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-40s %10.0f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
        stats)
    tests

(* ---- fault soak ---- *)

(* `soak --seed N --ops M [--drop i,j]` replays one scenario (this is the
   shape of the shrunken repro commands the harness prints); `soak --seeds
   K --ops M` sweeps seeds 1..K, shrinking any failure. Exit 1 on any
   invariant violation. *)
let run_soak args =
  let seeds = ref 0 and seed = ref 1 and ops = ref 2000 and drop = ref [] in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: v :: rest -> seeds := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--ops" :: v :: rest -> ops := int_of_string v; parse rest
    | "--drop" :: v :: rest ->
      drop := List.map int_of_string (String.split_on_char ',' v);
      parse rest
    | a :: _ -> failwith (Printf.sprintf "soak: unknown argument %S" a)
  in
  parse args;
  let scenarios =
    if !seeds > 0 then
      List.init !seeds (fun i ->
          { Soak.Shrink.sc_seed = i + 1; sc_ops = !ops; sc_drop = [] })
    else [ { Soak.Shrink.sc_seed = !seed; sc_ops = !ops; sc_drop = !drop } ]
  in
  let fails sc =
    Soak.Driver.failed
      (Soak.Driver.run ~drop:sc.Soak.Shrink.sc_drop ~seed:sc.Soak.Shrink.sc_seed
         ~ops:sc.Soak.Shrink.sc_ops ())
  in
  let failures = ref 0 in
  List.iter
    (fun sc ->
      let oc =
        Soak.Driver.run ~drop:sc.Soak.Shrink.sc_drop ~seed:sc.Soak.Shrink.sc_seed
          ~ops:sc.Soak.Shrink.sc_ops ()
      in
      let faults =
        List.fold_left (fun a (_, c) -> a + c) 0 oc.Soak.Driver.oc_injected
      in
      if Soak.Driver.failed oc then begin
        incr failures;
        let labels =
          String.concat ", "
            (List.map
               (fun (l, c) -> if c = 1 then l else Printf.sprintf "%s x%d" l c)
               oc.Soak.Driver.oc_injected)
        in
        Printf.printf "seed %d: FAIL (%d ops, %d faults: %s)\n%!"
          sc.Soak.Shrink.sc_seed oc.Soak.Driver.oc_report.Locus.Workload.ops
          faults labels;
        List.iter
          (fun v -> Printf.printf "  %s\n" (Format.asprintf "%a" Soak.Invariant.pp_violation v))
          oc.Soak.Driver.oc_violations;
        let small, runs = Soak.Shrink.shrink ~fails sc in
        Printf.printf "  shrunk in %d replays; minimal repro:\n  %s\n%!" runs
          (Soak.Shrink.repro_command small)
      end
      else
        Printf.printf "seed %d: ok (%d ops, %d faults, %d events)\n%!"
          sc.Soak.Shrink.sc_seed oc.Soak.Driver.oc_report.Locus.Workload.ops
          faults oc.Soak.Driver.oc_events)
    scenarios;
  if !failures > 0 then begin
    Printf.printf "soak: %d/%d scenarios FAILED\n" !failures
      (List.length scenarios);
    exit 1
  end
  else Printf.printf "soak: all %d scenarios passed\n" (List.length scenarios)

(* ---- entry point ---- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Printf.printf
    "LOCUS reproduction benchmark harness (see EXPERIMENTS.md for the index)\n";
  (match args with
  | [] ->
    List.iter (fun e -> e ()) Experiments.all;
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | "soak" :: rest -> run_soak rest
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) Experiments.by_name with
        | Some e -> e ()
        | None ->
          if name = "micro" then run_micro ()
          else
            Printf.eprintf "unknown experiment %S (e1..e%d, micro)\n" name
              (List.length Experiments.all))
      names);
  (* Experiments that recorded metrics get a BENCH_<n>.json for CI. *)
  Report.write_metrics ()
