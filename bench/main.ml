(* Benchmark harness entry point.

   dune exec bench/main.exe            -- run every experiment (E1..E12)
   dune exec bench/main.exe -- e5 e6   -- run selected experiments
   dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks of the
                                          hot paths (host CPU time) *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Page = Storage.Page
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Vvec = Vv.Version_vector

(* ---- Bechamel micro-benchmarks ---- *)

let micro_tests () =
  let open Bechamel in
  (* Persistent worlds reused across iterations (the benchmarks measure
     steady-state kernel paths, not world construction). *)
  let w = World.create ~config:(World.default_config ~n_sites:5 ()) () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/bench");
  Kernel.write_file k0 p0 "/bench" (String.make 4096 'b');
  ignore (World.settle w);
  let gf0 = Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/bench" in
  let k3 = World.kernel w 3 in

  let local_open =
    Test.make ~name:"open+close local"
      (Staged.stage (fun () ->
           let o = Us.open_gf k0 gf0 Proto.Mode_read in
           Us.close k0 o))
  in
  let remote_open =
    Test.make ~name:"open+close remote"
      (Staged.stage (fun () ->
           let o = Us.open_gf k3 gf0 Proto.Mode_read in
           Us.close k3 o))
  in
  let o_local = Us.open_gf k0 gf0 Proto.Mode_read in
  let o_remote = Us.open_gf k3 gf0 Proto.Mode_read in
  let read_local =
    Test.make ~name:"page read local"
      (Staged.stage (fun () -> ignore (Us.read_page k0 o_local 0)))
  in
  let read_remote =
    Test.make ~name:"page read remote (cached)"
      (Staged.stage (fun () -> ignore (Us.read_page k3 o_remote 0)))
  in
  let pack = Pack.create ~fg:9 ~pack_id:0 ~ino_lo:2 ~ino_hi:10_000 () in
  let inode = Inode.create ~ino:2 ~ftype:Inode.Regular ~owner:"b" in
  Pack.install_inode pack inode;
  let body = String.make 2048 's' in
  let shadow_commit =
    Test.make ~name:"shadow commit 2 pages"
      (Staged.stage (fun () ->
           let s = Shadow.begin_modify pack 2 in
           Shadow.set_contents s body;
           Shadow.commit s ~vv:Vvec.zero ~mtime:0.0))
  in
  let a = Vvec.of_list [ (0, 3); (1, 2); (4, 9) ] in
  let b = Vvec.of_list [ (0, 3); (2, 7) ] in
  let vv_compare =
    Test.make ~name:"version-vector compare"
      (Staged.stage (fun () -> ignore (Vvec.compare_vv a b)))
  in
  let dir = Catalog.Dir.empty () in
  for i = 0 to 99 do
    Catalog.Dir.insert dir ~name:(Printf.sprintf "entry%d" i) ~ino:(i + 2)
      ~stamp:0.0 ~origin:0
  done;
  let dir_codec =
    Test.make ~name:"directory encode+decode (100 entries)"
      (Staged.stage (fun () ->
           ignore (Catalog.Dir.decode (Catalog.Dir.encode dir))))
  in
  [
    local_open; remote_open; read_local; read_remote; shadow_commit; vv_compare;
    dir_codec;
  ]

let run_micro () =
  let open Bechamel in
  Printf.printf "\n== Bechamel micro-benchmarks (host CPU) ==\n%!";
  let tests = micro_tests () in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-40s %10.0f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
        stats)
    tests

(* ---- entry point ---- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Printf.printf
    "LOCUS reproduction benchmark harness (see EXPERIMENTS.md for the index)\n";
  (match args with
  | [] ->
    List.iter (fun e -> e ()) Experiments.all;
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) Experiments.by_name with
        | Some e -> e ()
        | None ->
          if name = "micro" then run_micro ()
          else
            Printf.eprintf "unknown experiment %S (e1..e%d, micro)\n" name
              (List.length Experiments.all))
      names);
  (* Experiments that recorded metrics get a BENCH_<n>.json for CI. *)
  Report.write_metrics ()
