(* The experiment harness: one function per table/figure/claim of the paper
   (see DESIGN.md section 4 and EXPERIMENTS.md for the index). Each prints
   a paper-style table; absolute numbers come from the simulated cost
   model, the *shape* is what reproduces the paper. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module Process = Locus_core.Process
module Pathname = Locus_core.Pathname
module K = Locus_core.Ktypes
module Stats = Sim.Stats
module Engine = Sim.Engine
module Page = Storage.Page
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Disk = Storage.Disk
module Vvec = Vv.Version_vector
module Topology = Net.Topology
module Partition = Recovery.Partition
module Merge = Recovery.Merge
module Reconcile = Recovery.Reconcile
module Dir = Catalog.Dir
module Mbox = Catalog.Mailbox
module Flood = Locus.Flood
module Trace = Sim.Trace

let make_world ?(n = 5) ?packs ?(machine_type = fun _ -> "vax") ?kconfig () =
  let base = World.default_config ~n_sites:n () in
  let filegroups =
    match packs with
    | None -> base.World.filegroups
    | Some sites -> [ { World.fg = 0; pack_sites = sites; mount_path = None } ]
  in
  let kernel_config = Option.value kconfig ~default:base.World.kernel_config in
  World.create ~config:{ base with World.filegroups; machine_type; kernel_config } ()

let gf_of k path =
  Pathname.resolve_from k ~cwd:(Catalog.Mount.root k.K.mount) ~context:[] path

let msgs w snap = Stats.delta_of (World.stats w) snap "net.msg"

(* Bench runs must distinguish a drained engine from a livelocked one:
   exhausting the event budget is a harness failure, not quiesce. *)
let settle_ok w =
  match World.settle w with
  | _, `Idle -> ()
  | _, `Limit -> failwith "World.settle exhausted its event budget (livelock?)"

let drain w =
  match Engine.run_until_idle (World.engine w) with
  | _, `Idle -> ()
  | _, `Limit ->
    failwith "Engine.run_until_idle exhausted its event budget (livelock?)"

(* The baseline-protocol experiments (E3, E11, E16) pin the open-lease
   layer off: they reproduce the paper's classic open/close exchanges,
   which the lease layer (E21) deliberately short-circuits. *)
let no_lease = { K.default_config with K.open_lease = false }

let mk_file w ~at ~ncopies ~path ~body =
  let k = World.kernel w at and p = World.proc w at in
  let saved = Kernel.get_ncopies p in
  Kernel.set_ncopies p ncopies;
  ignore (Kernel.creat k p path);
  if String.length body > 0 then Kernel.write_file k p path body;
  Kernel.set_ncopies p saved;
  settle_ok w

(* ---------------------------------------------------------------- E1 *)
(* Figure 2 / section 2.3.3: the open protocol across the eight
   US/CSS/SS collocation modes, counting kernel messages. *)
let e1 () =
  Report.section "E1  Open protocol message counts (Figure 2)"
    "messages needed to open a file, by collocation of US / CSS / SS";
  let run ~label ~file_at ~open_at ~paper =
    (* packs at 0 and 1; CSS for the filegroup is site 0. *)
    let w = make_world ~n:5 ~packs:[ 0; 1 ] () in
    mk_file w ~at:file_at ~ncopies:1 ~path:"/f" ~body:"x";
    let k = World.kernel w open_at in
    let gf = gf_of k "/f" in
    let t0 = World.now w in
    let snap = Stats.snapshot (World.stats w) in
    let o = Us.open_gf k gf Proto.Mode_read in
    let m = msgs w snap in
    let dt = World.now w -. t0 in
    Us.close k o;
    settle_ok w;
    [ label; Report.i m; Report.i paper; Report.f2 dt; Report.check (m = paper) ]
  in
  let rows =
    [
      (* file stored at 0 => CSS(0) = SS(0). *)
      run ~label:"US = CSS = SS (all local)" ~file_at:0 ~open_at:0 ~paper:0;
      (* file stored at 1, opened at 1: US = SS, CSS remote. *)
      run ~label:"US = SS, CSS remote" ~file_at:1 ~open_at:1 ~paper:2;
      (* file stored at 1, opened at 0 (the CSS): US = CSS, SS remote. *)
      run ~label:"US = CSS, SS remote" ~file_at:1 ~open_at:0 ~paper:2;
      (* file stored at 0 (the CSS), opened at 3: CSS = SS, US remote. *)
      run ~label:"CSS = SS, US remote" ~file_at:0 ~open_at:3 ~paper:2;
      (* file stored at 1, opened at 3: all three distinct. *)
      run ~label:"US, CSS, SS all distinct" ~file_at:1 ~open_at:3 ~paper:4;
    ]
  in
  Report.table ~title:"open(2) cost by role collocation"
    ~header:[ "mode"; "messages"; "paper"; "sim ms"; "ok" ]
    rows

(* ---------------------------------------------------------------- E2 *)
(* Section 2.2.1 footnote: "the cpu overhead of accessing a remote page
   is twice local access". Sequential whole-file reads, local vs remote,
   with the readahead ablation. *)
let e2 () =
  Report.section "E2  Local vs remote page access cost"
    "paper: remote page ~= 2x local page; readahead ablation included";
  let pages = 32 in
  let body = String.make (pages * Page.size) 'd' in
  let read_seq ~readahead ~cache ~open_at =
    let base = World.default_config ~n_sites:3 () in
    let config =
      {
        base with
        World.filegroups = [ { World.fg = 0; pack_sites = [ 0 ]; mount_path = None } ];
        kernel_config =
          { K.default_config with K.readahead; use_cache = cache };
      }
    in
    let w = World.create ~config () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/seq" ~body;
    let k = World.kernel w open_at in
    let o = Us.open_gf k (gf_of k "/seq") Proto.Mode_read in
    let snap = Stats.snapshot (World.stats w) in
    (* Measure only the caller's synchronous stall per read; the engine
       drains between reads, modelling readahead I/O overlapped with the
       application's processing of the previous page. *)
    let stall = ref 0.0 in
    for lpage = 0 to pages - 1 do
      let t0 = World.now w in
      ignore (Us.read_page k o lpage);
      stall := !stall +. (World.now w -. t0);
      drain w
    done;
    let per_page = !stall /. float_of_int pages in
    let m = msgs w snap in
    Us.close k o;
    (per_page, m)
  in
  let local, _ = read_seq ~readahead:true ~cache:true ~open_at:0 in
  let remote, m_remote = read_seq ~readahead:true ~cache:true ~open_at:2 in
  let remote_nora, m_nora = read_seq ~readahead:false ~cache:true ~open_at:2 in
  let remote_nocache, m_nc = read_seq ~readahead:false ~cache:false ~open_at:2 in
  let row label v m =
    [ label; Report.f2 v; Report.f2 (v /. local); Report.i m ]
  in
  Report.table
    ~title:(Printf.sprintf "sequential read of %d pages (ms per page)" pages)
    ~header:[ "configuration"; "ms/page"; "vs local"; "messages" ]
    [
      row "local (US = SS)" local 0;
      row "remote, readahead on" remote m_remote;
      row "remote, readahead off" remote_nora m_nora;
      row "remote, no cache at US" remote_nocache m_nc;
    ];
  Printf.printf
    "paper's claim: remote/local ~ 2.0; measured %.2f (raw remote access);\n\
    \ readahead hides the round trip on sequential reads (%.2fx local)\n"
    (remote_nora /. local) (remote /. local)

(* ---------------------------------------------------------------- E3 *)
(* Section 2.2.1: "the cost of a remote open is significantly more than
   the case when the entire open can be done locally". *)
let e3 () =
  Report.section "E3  Open/close latency, local vs remote"
    "simulated ms per open+close pair, by role placement";
  let run ~label ~file_at ~open_at =
    let w = make_world ~n:5 ~packs:[ 0; 1 ] ~kconfig:no_lease () in
    mk_file w ~at:file_at ~ncopies:1 ~path:"/f" ~body:"x";
    let k = World.kernel w open_at in
    let gf = gf_of k "/f" in
    let iters = 50 in
    let t0 = World.now w in
    for _ = 1 to iters do
      let o = Us.open_gf k gf Proto.Mode_read in
      Us.close k o
    done;
    (label, (World.now w -. t0) /. float_of_int iters)
  in
  let local = run ~label:"all local" ~file_at:0 ~open_at:0 in
  let rows =
    [
      local;
      run ~label:"US = SS, CSS remote" ~file_at:1 ~open_at:1;
      run ~label:"CSS = SS, US remote" ~file_at:0 ~open_at:3;
      run ~label:"all distinct" ~file_at:1 ~open_at:3;
    ]
  in
  Report.table ~title:"open+close latency"
    ~header:[ "placement"; "ms/open"; "vs local" ]
    (List.map (fun (l, v) -> [ l; Report.f2 v; Report.f1 (v /. snd local) ]) rows)

(* ---------------------------------------------------------------- E4 *)
(* The failure-action table of section 5.6, exercised one row at a time. *)
let e4 () =
  Report.section "E4  Cleanup procedure (the failure-action table of 5.6)"
    "inject each failure; verify the prescribed action happens";
  let rows = ref [] in
  let add name action ok = rows := [ name; action; Report.check ok ] :: !rows in

  (* Row: local resource (file open for update) in use remotely. *)
  let () =
    let w = make_world ~n:3 ~packs:[ 0 ] () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/f" ~body:"stable";
    let k1 = World.kernel w 1 in
    let o = Us.open_gf k1 (gf_of k1 "/f") Proto.Mode_modify in
    Us.write k1 o ~off:0 "doomed";
    (* Push the bytes out of the write-behind buffer: the row verifies the
       SS aborts an *active* shadow session when the using site dies. *)
    Us.flush_writes k1 o;
    World.crash_site w 1;
    ignore (World.detect_failures w ~initiator:0);
    let aborted = Stats.get (World.stats w) "cleanup.ss.aborted" >= 1 in
    let intact =
      Kernel.read_file (World.kernel w 0) (World.proc w 0) "/f" = "stable"
    in
    add "local file, remote update" "discard pages, close and abort" (aborted && intact)
  in
  (* Row: local resource open remotely for read -> close. *)
  let () =
    let w = make_world ~n:3 ~packs:[ 0 ] () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/f" ~body:"x";
    let k1 = World.kernel w 1 in
    let _o = Us.open_gf k1 (gf_of k1 "/f") Proto.Mode_read in
    World.crash_site w 1;
    ignore (World.detect_failures w ~initiator:0);
    let k0 = World.kernel w 0 in
    add "local file, remote read" "close file" (Hashtbl.length k0.K.ss_opens = 0)
  in
  (* Row: remote resource open for update locally -> discard, error fd. *)
  let () =
    let w = make_world ~n:3 ~packs:[ 1 ] () in
    mk_file w ~at:1 ~ncopies:1 ~path:"/f" ~body:"x";
    let k0 = World.kernel w 0 in
    let o = Us.open_gf k0 (gf_of k0 "/f") Proto.Mode_modify in
    Us.write k0 o ~off:0 "lost";
    World.crash_site w 1;
    ignore (World.detect_failures w ~initiator:0);
    add "remote file, local update" "discard pages, error in descriptor" o.K.o_closed
  in
  (* Row: remote resource open for read -> reopen at another site. *)
  let () =
    let w = make_world ~n:4 ~packs:[ 1; 2 ] () in
    mk_file w ~at:1 ~ncopies:2 ~path:"/f" ~body:"replicated!";
    let k0 = World.kernel w 0 in
    let o = Us.open_gf k0 (gf_of k0 "/f") Proto.Mode_read in
    let old_ss = o.K.o_ss in
    World.crash_site w old_ss;
    ignore (World.detect_failures w ~initiator:0);
    let ok = (not o.K.o_closed) && not (Net.Site.equal o.K.o_ss old_ss) in
    add "remote file, local read" "internal close, reopen at other site" ok
  in
  (* Row: remote fork/exec, remote site fails -> error to caller. *)
  let () =
    let w = make_world ~n:3 () in
    let k0 = World.kernel w 0 and p0 = World.proc w 0 in
    Kernel.set_advice p0 (Some 2);
    ignore (Process.fork k0 p0);
    World.crash_site w 2;
    ignore (World.detect_failures w ~initiator:0);
    add "fork/exec, remote site fails" "return error to caller"
      (List.mem Process.sigerr p0.K.p_signals && Process.read_error_info k0 p0 <> None)
  in
  (* Row: fork/exec, calling site fails -> notify process. *)
  let () =
    let w = make_world ~n:3 () in
    let k0 = World.kernel w 0 and p0 = World.proc w 0 in
    Kernel.set_advice p0 (Some 2);
    let pid, _ = Process.fork k0 p0 in
    World.crash_site w 0;
    ignore (World.detect_failures w ~initiator:2);
    let child = Process.get_proc (World.kernel w 2) pid in
    add "fork/exec, calling site fails" "notify process"
      (List.mem Process.sigerr child.K.p_signals)
  in
  (* Row: distributed transaction -> abort subtransactions in partition. *)
  let () =
    let w = make_world ~n:3 () in
    let k0 = World.kernel w 0 and p0 = World.proc w 0 in
    Kernel.set_ncopies p0 1;
    let k2 = World.kernel w 2 and p2 = World.proc w 2 in
    ignore (Kernel.creat k2 p2 "/leg");
    Kernel.write_file k2 p2 "/leg" "l";
    settle_ok w;
    let t = Txn.begin_top k0 p0 in
    Txn.write t "/leg" "txn";
    World.crash_site w 2;
    ignore (World.detect_failures w ~initiator:0);
    add "distributed transaction" "abort all related subtransactions"
      (Txn.status t = Txn.Aborted)
  in
  Report.table ~title:"failure actions"
    ~header:[ "failure"; "prescribed action (paper)"; "verified" ]
    (List.rev !rows)

(* ---------------------------------------------------------------- E5 *)
(* Section 5.4: partition protocol cost and correctness vs network size. *)
let e5 () =
  Report.section "E5  Partition protocol (iterative intersection)"
    "polls/rounds/messages to re-establish consensus vs network size";
  let rows =
    List.map
      (fun n ->
        let w = make_world ~n ~packs:[ 0; 1 ] () in
        (* Cut the net in half. *)
        let left = List.init (n / 2) Fun.id in
        let right = List.init (n - (n / 2)) (fun i -> (n / 2) + i) in
        Topology.partition (World.topology w) [ left; right ];
        let snap = Stats.snapshot (World.stats w) in
        let t0 = World.now w in
        let r = Partition.run_active (World.kernel w 0) in
        let dt = World.now w -. t0 in
        let consensus =
          List.for_all
            (fun m -> (World.kernel w m).K.site_table = r.Partition.members)
            r.Partition.members
        in
        [
          Report.i n;
          Report.i (List.length r.Partition.members);
          Report.i r.Partition.polls;
          Report.i r.Partition.rounds;
          Report.i (msgs w snap);
          Report.f2 dt;
          Report.check (consensus && List.length r.Partition.members = n / 2);
        ])
      [ 4; 8; 16; 32 ]
  in
  Report.table ~title:"half-split of an n-site network, initiator = site 0"
    ~header:[ "n"; "members"; "polls"; "rounds"; "messages"; "sim ms"; "consensus" ]
    rows;
  (* Random sub-splits: maximality check. *)
  let rng = Sim.Rng.create 77L in
  let trials = 20 in
  let ok = ref 0 in
  for _ = 1 to trials do
    let w = make_world ~n:8 ~packs:[ 0 ] () in
    let topo = World.topology w in
    for _ = 1 to 6 do
      let a = Sim.Rng.int rng 8 and b = Sim.Rng.int rng 8 in
      if a <> b then Topology.set_link topo a b false
    done;
    let r = Partition.run_active (World.kernel w 0) in
    if Topology.fully_connected topo r.Partition.members then incr ok
  done;
  Printf.printf
    "random link failures (8 sites, 6 cuts, %d trials): %d/%d fully-connected partitions\n"
    trials !ok trials

(* ---------------------------------------------------------------- E6 *)
(* Section 5.5: the two-level merge timeout vs a fixed timeout. *)
let e6 () =
  Report.section "E6  Merge protocol timeout strategy"
    "merge delay: fixed long timeout vs the paper's two-level timeout";
  let n = 24 in
  let run ~alive ~policy ~surprise =
    let w = make_world ~n ~packs:[ 0; 1 ] () in
    let alive_sites = List.init alive Fun.id in
    let dead = List.filteri (fun i _ -> i >= alive) (World.sites w) in
    ignore (World.partition w [ alive_sites; dead ]);
    List.iter (fun s -> World.crash_site w s) dead;
    if surprise then begin
      (* One member crashes without the others noticing: it is still
         believed up, forcing the long timeout. *)
      World.crash_site w (alive - 1)
    end;
    Topology.heal (World.topology w);
    List.iter
      (fun s -> if not surprise || s <> alive - 1 then Topology.set_site_up (World.topology w) s true)
      alive_sites;
    List.iter (fun s -> Topology.set_site_up (World.topology w) s false) dead;
    if surprise then Topology.set_site_up (World.topology w) (alive - 1) false;
    let r = Merge.run_initiator ~policy (World.kernel w 0) ~all_sites:(World.sites w) in
    r.Merge.wait_charged
  in
  let fixed = Merge.Fixed_timeout 150.0 in
  let adaptive = Merge.Adaptive_timeout { long = 150.0; short = 15.0 } in
  let rows =
    List.concat_map
      (fun alive ->
        let f = run ~alive ~policy:fixed ~surprise:false in
        let a = run ~alive ~policy:adaptive ~surprise:false in
        [
          [
            Printf.sprintf "%d of %d sites up (known)" alive n;
            Report.f1 f;
            Report.f1 a;
            Report.f1 (f /. Float.max a 0.001);
          ];
        ])
      [ 4; 12; 24 ]
  in
  let f_s = run ~alive:12 ~policy:fixed ~surprise:true in
  let a_s = run ~alive:12 ~policy:adaptive ~surprise:true in
  Report.table ~title:"timeout wait charged during merge (ms)"
    ~header:[ "scenario"; "fixed"; "adaptive"; "speedup" ]
    (rows
    @ [
        [
          "12 of 24, one surprise crash";
          Report.f1 f_s;
          Report.f1 a_s;
          Report.f1 (f_s /. Float.max a_s 0.001);
        ];
      ]);
  Printf.printf
    "shape check: adaptive ~= fixed only when a believed-up site is missing\n";
  (* Gateway ablation (the 5.5 footnote): merging a small partition of a
     large gatewayed network without polling every dead remote site. *)
  let gateway_run ~gateways =
    let w = make_world ~n ~packs:[ 0; 1 ] () in
    let local = [ 0; 1; 2; 3; 4; 5 ] in
    let remote = List.filter (fun s -> s >= 6) (World.sites w) in
    ignore (World.partition w [ local; remote ]);
    List.iter (fun s -> if s > 6 then World.crash_site w s) remote;
    ignore (World.detect_failures w ~initiator:6);
    Topology.heal (World.topology w);
    List.iter
      (fun s -> if s > 6 then Topology.set_site_up (World.topology w) s false)
      remote;
    let snap = Stats.snapshot (World.stats w) in
    let r = Merge.run_initiator ~gateways (World.kernel w 0) ~all_sites:(World.sites w) in
    (r.Merge.polled, r.Merge.skipped, msgs w snap)
  in
  let p_flat, s_flat, m_flat = gateway_run ~gateways:[] in
  let p_gw, s_gw, m_gw = gateway_run ~gateways:[ 6 ] in
  Report.table
    ~title:
      (Printf.sprintf
         "gateway ablation: %d-site net, remote subnet (behind gateway 6) mostly down"
         n)
    ~header:[ "strategy"; "polled"; "skipped"; "messages" ]
    [
      [ "poll everyone"; Report.i p_flat; Report.i s_flat; Report.i m_flat ];
      [ "poll gateways first"; Report.i p_gw; Report.i s_gw; Report.i m_gw ];
    ]

(* ---------------------------------------------------------------- E7 *)
(* Section 4.4: directory reconciliation throughput and rule coverage. *)
let e7 () =
  Report.section "E7  Directory reconciliation"
    "divergent directories merged per the rules of 4.4";
  let rows =
    List.map
      (fun entries ->
        let w = make_world ~n:4 () in
        let k0 = World.kernel w 0 and p0 = World.proc w 0 in
        Kernel.set_ncopies p0 4;
        ignore (Kernel.mkdir k0 p0 "/d");
        settle_ok w;
        ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
        let k2 = World.kernel w 2 and p2 = World.proc w 2 in
        for i = 1 to entries do
          ignore (Kernel.creat k0 p0 (Printf.sprintf "/d/left%d" i));
          ignore (Kernel.creat k2 p2 (Printf.sprintf "/d/right%d" i))
        done;
        settle_ok w;
        let host_t0 = Unix.gettimeofday () in
        let t0 = World.now w in
        let _, recon = World.heal_and_merge w in
        let host_dt = Unix.gettimeofday () -. host_t0 in
        let dt = World.now w -. t0 in
        let listing = Kernel.readdir k0 p0 "/d" in
        let merged_ok = List.length listing = (2 * entries) + 2 in
        let dirm =
          List.fold_left (fun a (_, r) -> a + r.Reconcile.dir_merges) 0 recon
        in
        [
          Report.i (2 * entries);
          Report.i dirm;
          Report.f1 dt;
          Report.f1 (host_dt *. 1000.0);
          Report.check merged_ok;
        ])
      [ 5; 20; 50 ]
  in
  Report.table ~title:"divergent inserts merged (per side = half of column 1)"
    ~header:[ "entries"; "dir merges"; "sim ms"; "host ms"; "all present" ]
    rows

(* ---------------------------------------------------------------- E8 *)
(* Section 3.2: the token mechanism's worst case — the file position
   token flipping between machines on every access. *)
let e8 () =
  Report.section "E8  Shared-descriptor token traffic"
    "worst case: 1-byte reads alternating between two machines";
  let bytes = 4096 in
  let body = String.make bytes 'z' in
  let scenario ~chunk ~alternate =
    let w = make_world ~n:3 () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/shared" ~body;
    let k0 = World.kernel w 0 and p0 = World.proc w 0 in
    let fd = Kernel.open_path k0 p0 "/shared" Proto.Mode_read in
    Kernel.set_advice p0 (Some 2);
    let pid, _ = Process.fork k0 p0 in
    let k2 = World.kernel w 2 in
    let child = Process.get_proc k2 pid in
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    let reads = bytes / chunk in
    for i = 0 to reads - 1 do
      if alternate && i mod 2 = 1 then ignore (Kernel.read_fd k2 child fd ~len:chunk)
      else ignore (Kernel.read_fd k0 p0 fd ~len:chunk)
    done;
    let flips = Stats.delta_of (World.stats w) snap "token.flip" in
    let m = msgs w snap in
    let dt = World.now w -. t0 in
    [
      (if alternate then Printf.sprintf "alternating, %d-byte reads" chunk
       else Printf.sprintf "single site, %d-byte reads" chunk);
      Report.i reads;
      Report.i flips;
      Report.f2 (float_of_int m /. float_of_int reads);
      Report.f2 (dt /. float_of_int reads);
    ]
  in
  Report.table ~title:(Printf.sprintf "reading a %d-byte shared file" bytes)
    ~header:[ "pattern"; "reads"; "token flips"; "msgs/read"; "ms/read" ]
    [
      scenario ~chunk:1 ~alternate:true;
      scenario ~chunk:64 ~alternate:true;
      scenario ~chunk:1024 ~alternate:true;
      scenario ~chunk:1 ~alternate:false;
      scenario ~chunk:1024 ~alternate:false;
    ];
  Printf.printf
    "paper: worst-case flipping is possible but rare; bulk reads amortize it\n"

(* ---------------------------------------------------------------- E9 *)
(* Section 2.2.1: replication degree vs read cost and availability. *)
let e9 () =
  Report.section "E9  Replication degree trade-off"
    "read locality and availability vs number of copies (5 sites)";
  let n = 5 in
  let rows =
    List.map
      (fun rf ->
        let w = make_world ~n () in
        mk_file w ~at:0 ~ncopies:rf ~path:"/f" ~body:(String.make 2048 'r');
        (* Read cost: whole-file read from every site. *)
        let snap = Stats.snapshot (World.stats w) in
        List.iter
          (fun s ->
            let k = World.kernel w s and p = World.proc w s in
            ignore (Kernel.read_file k p "/f"))
          (World.sites w);
        let read_msgs = float_of_int (msgs w snap) /. float_of_int n in
        (* Update fan-out: one write, then settle. *)
        let snap2 = Stats.snapshot (World.stats w) in
        Kernel.write_file (World.kernel w 0) (World.proc w 0) "/f"
          (String.make 2048 'w');
        settle_ok w;
        let write_msgs = msgs w snap2 in
        (* Availability: crash the first two sites (which hold the first
           copies, site 0 being the creator); can the others still read? *)
        World.crash_site w 0;
        World.crash_site w 1;
        ignore (World.detect_failures w ~initiator:2);
        let readable =
          List.filter
            (fun s ->
              match
                Kernel.read_file (World.kernel w s) (World.proc w s) "/f"
              with
              | _ -> true
              | exception K.Error _ -> false)
            [ 2; 3; 4 ]
        in
        [
          Report.i rf;
          Report.f1 read_msgs;
          Report.i write_msgs;
          Printf.sprintf "%d/3" (List.length readable);
        ])
      [ 1; 2; 3; 5 ]
  in
  Report.table
    ~title:"replication factor sweep (crash of sites 0,1 for availability)"
    ~header:
      [ "copies"; "read msgs/site"; "write+propagate msgs"; "readable after crash" ]
    rows;
  Printf.printf
    "shape: more copies => cheaper/closer reads and higher availability,\n\
    \       at the price of update fan-out (the trade-off of section 2.2.1)\n"

(* --------------------------------------------------------------- E10 *)
(* Section 2.3.6: shadow-page commit cost and atomicity. *)
let e10 () =
  Report.section "E10  Shadow-page commit"
    "disk traffic per commit pattern; atomicity under crash";
  let fresh () =
    let pack = Pack.create ~fg:0 ~pack_id:0 ~ino_lo:2 ~ino_hi:100 () in
    let inode = Inode.create ~ino:2 ~ftype:Inode.Regular ~owner:"b" in
    Pack.install_inode pack inode;
    let s = Shadow.begin_modify pack 2 in
    Shadow.set_contents s (String.make (8 * Page.size) 'o');
    Shadow.commit s ~vv:(Vvec.bump Vvec.zero 0) ~mtime:1.0;
    pack
  in
  let measure label f =
    let pack = fresh () in
    let d = Pack.disk pack in
    let r0 = Disk.reads d and w0 = Disk.writes d in
    let ok = f pack in
    [
      label;
      Report.i (Disk.reads d - r0);
      Report.i (Disk.writes d - w0);
      Report.check ok;
    ]
  in
  let contents pack = Pack.read_string pack (Pack.get_inode pack 2) in
  let rows =
    [
      measure "whole-page overwrite (1 page)" (fun pack ->
          let s = Shadow.begin_modify pack 2 in
          Shadow.write_page s ~lpage:0 (Page.of_string (String.make Page.size 'N'));
          Shadow.commit s ~vv:(Vvec.of_list [ (0, 2) ]) ~mtime:2.0;
          String.sub (contents pack) 0 1 = "N");
      measure "partial-page patch (reads old page)" (fun pack ->
          let s = Shadow.begin_modify pack 2 in
          Shadow.patch_page s ~lpage:0 ~off:10 "xx";
          Shadow.commit s ~vv:(Vvec.of_list [ (0, 2) ]) ~mtime:2.0;
          String.sub (contents pack) 10 2 = "xx");
      measure "whole-file overwrite (8 pages)" (fun pack ->
          let s = Shadow.begin_modify pack 2 in
          Shadow.set_contents s (String.make (8 * Page.size) 'W');
          Shadow.commit s ~vv:(Vvec.of_list [ (0, 2) ]) ~mtime:2.0;
          String.sub (contents pack) 0 1 = "W");
      measure "same page written 10x (shadow reused)" (fun pack ->
          let s = Shadow.begin_modify pack 2 in
          for i = 1 to 10 do
            Shadow.write_page s ~lpage:0
              (Page.of_string (String.make Page.size (Char.chr (64 + i))))
          done;
          Shadow.commit s ~vv:(Vvec.of_list [ (0, 2) ]) ~mtime:2.0;
          String.sub (contents pack) 0 1 = "J");
      measure "abort after 4 page writes" (fun pack ->
          let before = contents pack in
          let s = Shadow.begin_modify pack 2 in
          for p = 0 to 3 do
            Shadow.write_page s ~lpage:p (Page.of_string "doomed")
          done;
          Shadow.abort s;
          String.equal (contents pack) before);
      measure "crash before inode switch" (fun pack ->
          let before = contents pack in
          let s = Shadow.begin_modify pack 2 in
          for p = 0 to 3 do
            Shadow.write_page s ~lpage:p (Page.of_string "doomed")
          done;
          Shadow.crash_before_switch s;
          let intact = String.equal (contents pack) before in
          let freed = Pack.scavenge pack in
          intact && freed > 0);
    ]
  in
  Report.table ~title:"commit patterns on an 8-page file"
    ~header:[ "pattern"; "disk reads"; "disk writes"; "correct" ]
    rows

(* --------------------------------------------------------------- E11 *)
(* Figure 1 / section 2.3.2-2.3.3: the remote-service flow has exactly
   one request and one response per exchange — no acks underneath. *)
let e11 () =
  Report.section "E11  Remote system call flow (Figure 1)"
    "message count per remote operation: one request + one response each";
  let w = make_world ~n:3 ~packs:[ 0 ] ~kconfig:no_lease () in
  mk_file w ~at:0 ~ncopies:1 ~path:"/f" ~body:(String.make 2100 'p');
  let k2 = World.kernel w 2 in
  let gf = gf_of k2 "/f" in
  let step label f expected =
    let snap = Stats.snapshot (World.stats w) in
    let r = f () in
    let m = msgs w snap in
    ([ label; Report.i m; Report.i expected; Report.check (m = expected) ], r)
  in
  let row1, o =
    step "open (US remote, CSS=SS)" (fun () -> Us.open_gf k2 gf Proto.Mode_read) 2
  in
  let row2, _ = step "read page 0" (fun () -> Us.read_page k2 o 0) 2 in
  (* Sequential readahead makes page 1 free later; count the synchronous
     exchange only. *)
  let row3, _ =
    step "close (US->SS, SS->CSS local)" (fun () -> Us.close k2 o) 2
  in
  settle_ok w;
  Report.table ~title:"message count per step of a remote file access"
    ~header:[ "step"; "messages"; "expected"; "ok" ]
    [ row1; row2; row3 ];
  Printf.printf
    "note: close is two messages here because the SS is also the CSS\n\
     (the SS->CSS close leg is a procedure call); with distinct sites it is 4.\n";
  (* Now the fully distinct close. *)
  let w2 = make_world ~n:5 ~packs:[ 0; 1 ] ~kconfig:no_lease () in
  mk_file w2 ~at:1 ~ncopies:1 ~path:"/g" ~body:"q";
  let k3 = World.kernel w2 3 in
  let o2 = Us.open_gf k3 (gf_of k3 "/g") Proto.Mode_read in
  let snap = Stats.snapshot (World.stats w2) in
  Us.close k3 o2;
  Printf.printf "fully distinct close protocol: %d messages (paper: 4 -- \n\
                 US->SS, SS->CSS, CSS->SS, SS->US)\n"
    (msgs w2 snap)

(* --------------------------------------------------------------- E12 *)
(* Section 4.5: mailbox reconciliation — always automatic. *)
let e12 () =
  Report.section "E12  Mailbox reconciliation"
    "divergent mailboxes merge with no conflicts, honouring deletions";
  let rows =
    List.map
      (fun per_side ->
        let w = make_world ~n:4 () in
        let k0 = World.kernel w 0 and p0 = World.proc w 0 in
        Kernel.set_ncopies p0 4;
        ignore (Kernel.mkdir k0 p0 "/mail");
        ignore (Kernel.creat ~ftype:Inode.Mailbox k0 p0 "/mail/u");
        Kernel.mailbox_deliver k0 ~path:"/mail/u" ~from:"pre" ~body:"shared";
        settle_ok w;
        ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
        for i = 1 to per_side do
          Kernel.mailbox_deliver k0 ~path:"/mail/u" ~from:"left"
            ~body:(Printf.sprintf "L%d" i);
          Kernel.mailbox_deliver (World.kernel w 2) ~path:"/mail/u" ~from:"right"
            ~body:(Printf.sprintf "R%d" i)
        done;
        (* The left side also deletes the shared pre-partition message. *)
        let box = Mbox.decode (Kernel.read_file k0 p0 "/mail/u") in
        (match Mbox.live box with
        | m :: _ when m.Mbox.from = "pre" ->
          ignore (Mbox.delete box ~id:m.Mbox.id ~stamp:(World.now w));
          Kernel.write_file k0 p0 "/mail/u" (Mbox.encode box)
        | _ -> ());
        settle_ok w;
        let _, recon = World.heal_and_merge w in
        let conflicts =
          List.fold_left (fun a (_, r) -> a + r.Reconcile.conflicts_marked) 0 recon
        in
        let merges =
          List.fold_left (fun a (_, r) -> a + r.Reconcile.mail_merges) 0 recon
        in
        let live = Kernel.mailbox_read k0 p0 "/mail/u" in
        let expected = 2 * per_side in
        [
          Report.i per_side;
          Report.i merges;
          Report.i conflicts;
          Printf.sprintf "%d/%d" (List.length live) expected;
          Report.check (List.length live = expected && conflicts = 0);
        ])
      [ 2; 10; 40 ]
  in
  Report.table ~title:"messages per side inserted during partition (+1 delete)"
    ~header:[ "per side"; "mail merges"; "conflicts"; "live/expected"; "ok" ]
    rows

(* --------------------------------------------------------------- E13 *)
(* Section 2.3.4: pathname searching cost by depth, local vs remote, and
   the value of the unsynchronized local fast path. *)

(* Build /d1/d2/.../dN/leaf at site 0, numbered from the root downward.
   Shared with E19, which measures the same trees under the fast paths. *)
let deep_tree_prepare w depth =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  let rec mk prefix i =
    if i > depth then begin
      ignore (Kernel.creat k0 p0 (prefix ^ "/leaf"));
      Kernel.write_file k0 p0 (prefix ^ "/leaf") "x"
    end
    else begin
      let dir = prefix ^ "/d" ^ string_of_int i in
      ignore (Kernel.mkdir k0 p0 dir);
      mk dir (i + 1)
    end
  in
  mk "" 1;
  settle_ok w

let deep_tree_path depth =
  let rec fix acc i =
    if i > depth then acc ^ "/leaf" else fix (acc ^ "/d" ^ string_of_int i) (i + 1)
  in
  fix "" 1

let e13 () =
  Report.section "E13  Pathname searching"
    "per-component internal opens; the local fast path avoids the CSS";
  let prepare = deep_tree_prepare in
  let path_of = deep_tree_path in
  let resolve_cost w site path =
    let k = World.kernel w site in
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    ignore (gf_of k path);
    (World.now w -. t0, msgs w snap)
  in
  let rows =
    List.map
      (fun depth ->
        (* Packs at site 0 only: site 2 resolves fully remotely. The §2.3.4
           fast paths (name cache, server-side lookup) are pinned off —
           this experiment is the per-component baseline E19 measures
           those against. *)
        let slow =
          { K.default_config with K.name_cache_entries = 0; remote_lookup = false }
        in
        let w = make_world ~n:3 ~packs:[ 0 ] ~kconfig:slow () in
        prepare w depth;
        let path = path_of depth in
        let t_local, m_local = resolve_cost w 0 path in
        let t_remote, m_remote = resolve_cost w 2 path in
        [
          Report.i depth;
          Report.f2 t_local;
          Report.i m_local;
          Report.f2 t_remote;
          Report.i m_remote;
        ])
      [ 1; 3; 6 ]
  in
  Report.table
    ~title:"resolve /d1/.../dN/leaf (local = fast path, no CSS contact)"
    ~header:[ "depth"; "local ms"; "local msgs"; "remote ms"; "remote msgs" ]
    rows;
  Printf.printf
    "local resolution costs zero messages at any depth: the unsynchronized\n\
     local directory search of section 2.3.4; remote pays per component.\n"

(* --------------------------------------------------------------- E14 *)
(* Section 2.3.6: propagation convergence — how long until every copy of
   an updated file is current, vs replication factor. *)
let e14 () =
  Report.section "E14  Update propagation convergence"
    "time and messages until all copies are current after one commit";
  let n = 8 in
  let rows =
    List.map
      (fun rf ->
        let w = make_world ~n () in
        mk_file w ~at:0 ~ncopies:rf ~path:"/hot" ~body:(String.make 2048 'a');
        let snap = Stats.snapshot (World.stats w) in
        let t0 = World.now w in
        Kernel.write_file (World.kernel w 0) (World.proc w 0) "/hot"
          (String.make 2048 'b');
        let t_commit = World.now w -. t0 in
        settle_ok w;
        let t_converged = World.now w -. t0 in
        let m = msgs w snap in
        (* Verify convergence: every copy carries the same version vector. *)
        let k0 = World.kernel w 0 in
        let gf = gf_of k0 "/hot" in
        let vvs =
          List.filter_map
            (fun s ->
              match Hashtbl.find_opt (World.kernel w s).K.packs 0 with
              | Some pack ->
                Pack.find_inode pack gf.Catalog.Gfile.ino
                |> Option.map (fun (i : Inode.t) -> i.Inode.vv)
              | None -> None)
            (World.sites w)
        in
        (match vvs with
        | first :: rest ->
          assert (List.length vvs = rf);
          List.iter (fun vv -> assert (Vvec.equal vv first)) rest
        | [] -> assert false);
        [
          Report.i rf;
          Report.f2 t_commit;
          Report.f2 t_converged;
          Report.i m;
        ])
      [ 1; 2; 4; 8 ]
  in
  Report.table
    ~title:"one 2-page commit at site 0; background pulls to the other copies"
    ~header:[ "copies"; "commit ms (caller)"; "all-copies ms"; "messages" ]
    rows;
  Printf.printf
    "the committing caller pays a constant cost; replication happens in\n\
     background pulls (section 2.3.6's asynchronous propagation)\n"

(* --------------------------------------------------------------- E15 *)
(* Section 6: a production-like software-development workload mix, driven
   by the Locus.Workload generator, as a whole-system shakeout. *)
let e15 () =
  Report.section "E15  Mixed workload (the section 6 experience setting)"
    "edits, builds, mail and remote execution on a 6-site net";
  let w = make_world ~n:6 () in
  let spec = { Locus.Workload.default_spec with Locus.Workload.ncopies = 3 } in
  Locus.Workload.setup w spec;
  let snap = Stats.snapshot (World.stats w) in
  let t0 = World.now w in
  let ops = 200 in
  let r = Locus.Workload.run w spec ~ops in
  let dt = World.now w -. t0 in
  let m = msgs w snap in
  Report.table ~title:(Printf.sprintf "%d operations from random sites" ops)
    ~header:[ "metric"; "value" ]
    [
      [ "reads"; Report.i r.Locus.Workload.reads ];
      [ "edits (commit+propagate)"; Report.i r.Locus.Workload.edits ];
      [ "remote execs"; Report.i r.Locus.Workload.execs ];
      [ "mail deliveries"; Report.i r.Locus.Workload.mails ];
      [ "namespace churn"; Report.i (r.Locus.Workload.creates + r.Locus.Workload.unlinks) ];
      [ "refused (partition/busy)"; Report.i r.Locus.Workload.errors ];
      [ "kernel messages"; Report.i m ];
      [ "messages / operation"; Report.f2 (float_of_int m /. float_of_int ops) ];
      [ "simulated ms"; Report.f1 dt ];
      [ "ms / operation"; Report.f2 (dt /. float_of_int ops) ];
    ];
  Printf.printf
    "with 3x replication most reads are local: transparency without\n\
     performance loss, the headline experience of section 6\n"

(* --------------------------------------------------------------- E16 *)
(* The per-system-call latency table a measurement study in the style of
   [GOLD 83] would report: each call, local vs remote, simulated ms. *)
let e16 () =
  Report.section "E16  System-call latency table ([GOLD 83]-style)"
    "simulated ms per call, all-local vs remote file";
  let measure ~open_at f =
    let w = make_world ~n:4 ~packs:[ 0 ] ~kconfig:no_lease () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/subject" ~body:(String.make 1500 's');
    let k = World.kernel w open_at and p = World.proc w open_at in
    let t0 = World.now w in
    let iters = 20 in
    for i = 1 to iters do
      f w k p i
    done;
    (World.now w -. t0) /. float_of_int iters
  in
  let both name f =
    let local = measure ~open_at:0 f in
    let remote = measure ~open_at:2 f in
    [ name; Report.f2 local; Report.f2 remote;
      Report.f1 (remote /. Float.max local 0.0001) ]
  in
  let rows =
    [
      both "stat" (fun _w k p _ -> ignore (Kernel.stat k p "/subject"));
      both "open+close (read)" (fun _w k p _ ->
          let fd = Kernel.open_path k p "/subject" Proto.Mode_read in
          Kernel.close_fd k p fd);
      both "read 1 KB" (fun _w k p _ ->
          let fd = Kernel.open_path k p "/subject" Proto.Mode_read in
          ignore (Kernel.read_fd k p fd ~len:1024);
          Kernel.close_fd k p fd);
      both "whole-file write (commit)" (fun _w k p i ->
          Kernel.write_file k p "/subject" (String.make 1500 (Char.chr (97 + (i mod 26)))));
      both "create+unlink" (fun _w k p i ->
          let path = Printf.sprintf "/tmp%d" i in
          ignore (Kernel.creat k p path);
          Kernel.unlink k p path);
      both "readdir /" (fun _w k p _ -> ignore (Kernel.readdir k p "/"));
    ]
  in
  Report.table ~title:"per-call latency (simulated ms), site 0 stores everything"
    ~header:[ "system call"; "local"; "remote"; "ratio" ]
    rows;
  Printf.printf
    "the paper's measured result: local == conventional Unix; remote\n\
     noticeably slower but close enough that nobody thinks about location\n"


(* --------------------------------------------------------------- E17 *)
(* The transport layer under message loss: idempotent requests are
   retried with simulated-time backoff and the call still succeeds;
   per-tag latency percentiles show the retry tail (section 2.3.3:
   recovery from loss is the requesting kernel's job). *)
let e17 () =
  Report.section "E17  RPC transport: retry, backoff, latency percentiles"
    "injected message loss on stat traffic; the transport recovers idempotent calls";
  let w = make_world ~n:5 ~packs:[ 0; 1 ] () in
  let nfiles = 8 in
  for i = 1 to nfiles do
    mk_file w ~at:0 ~ncopies:2 ~path:(Printf.sprintf "/data%d" i)
      ~body:(String.make (200 * i) 'd')
  done;
  let k0 = World.kernel w 0 in
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  (* Remote reads from a diskless site: open/read/close traffic feeding the
     per-tag histograms. *)
  for i = 1 to nfiles do
    ignore (Kernel.read_file k3 p3 (Printf.sprintf "/data%d" i))
  done;
  let stats = World.stats w in
  let snap = Stats.snapshot stats in
  (* Every fourth stat has its request forced lost. Stat_req is idempotent,
     so the transport resends after backoff and the caller never notices. *)
  let losses = ref 0 in
  for i = 1 to nfiles do
    let gf = gf_of k0 (Printf.sprintf "/data%d" i) in
    if i mod 4 = 0 then begin
      incr losses;
      Net.Netsim.fail_next_message (World.net w) ~src:3 ~dst:0
    end;
    ignore (K.rpc k3 0 (Proto.Stat_req { gf }))
  done;
  let d name = Stats.delta_of stats snap name in
  Report.table ~title:"transport counters over the stat run"
    ~header:[ "counter"; "value" ]
    [
      [ "stats issued"; Report.i nfiles ];
      [ "losses injected"; Report.i !losses ];
      [ "rpc.call"; Report.i (d "rpc.call") ];
      [ "rpc.retry"; Report.i (d "rpc.retry") ];
      [ "rpc.recovered"; Report.i (d "rpc.recovered") ];
      [ "rpc.fail"; Report.i (d "rpc.fail") ];
    ];
  Report.rpc_latency_table stats;
  let pct p = Stats.hist_percentile stats "rpc.latency.stat" p in
  Printf.printf "recovered every injected loss: %s\n"
    (Report.check (d "rpc.recovered" = !losses && d "rpc.fail" = 0));
  Printf.printf "stat percentiles monotone (p50 <= p95 <= p99): %s\n"
    (Report.check (pct 50.0 <= pct 95.0 && pct 95.0 <= pct 99.0));
  Printf.printf
    "retried stats pay the backoff: the loss shows in the p95/p99 tail,\n\
     not in the median\n"

(* --------------------------------------------------------------- E18 *)
(* Section 2.3.3: kernel buffers at both the US and the SS. The two-level
   buffer cache: the US tier absorbs repeat reads entirely (version-keyed,
   so it survives close/re-open of an unchanged file), the SS tier turns
   repeat remote reads of a hot file from disk reads into memory serves. *)
let e18 () =
  Report.section "E18  Two-level buffer cache (US + SS tiers)"
    "sequential read + re-read of a hot remote file, cache tiers toggled";
  let pages = 16 in
  let body = String.make (pages * Page.size) 'h' in
  let run ~label ~us ~ss ~retention =
    let base = World.default_config ~n_sites:3 () in
    let config =
      {
        base with
        World.filegroups = [ { World.fg = 0; pack_sites = [ 0 ]; mount_path = None } ];
        kernel_config =
          {
            K.default_config with
            K.use_cache = us;
            ss_cache_pages = (if ss then K.default_config.K.ss_cache_pages else 0);
            cache_retention = retention;
            (* This experiment ablates the cache tiers under the classic
               one-page protocol; its per-page readahead count assumes an
               unbatched read path (E20 sweeps the bulk window). *)
            bulk_window = 1;
          };
      }
    in
    let w = World.create ~config () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/hot" ~body;
    let k2 = World.kernel w 2 in
    let gf = gf_of k2 "/hot" in
    (* Pass 1: first sequential read; the engine drains between reads so
       readahead overlaps with the application (as in E2). *)
    let read_pass () =
      let o = Us.open_gf k2 gf Proto.Mode_read in
      let stall = ref 0.0 in
      for lpage = 0 to pages - 1 do
        let t0 = World.now w in
        ignore (Us.read_page k2 o lpage);
        stall := !stall +. (World.now w -. t0);
        drain w
      done;
      Us.close k2 o;
      settle_ok w;
      !stall /. float_of_int pages
    in
    let snap = Stats.snapshot (World.stats w) in
    let first = read_pass () in
    (* Pass 2: close/re-open, read the same (unchanged) version again. *)
    let reread = read_pass () in
    let m = msgs w snap in
    let ra = Stats.get (World.stats w) "us.readahead" in
    ((label, first, reread, m, ra), World.stats w)
  in
  let results =
    [
      run ~label:"no cache at all" ~us:false ~ss:false ~retention:true;
      run ~label:"SS tier only" ~us:false ~ss:true ~retention:true;
      run ~label:"US tier only" ~us:true ~ss:false ~retention:true;
      run ~label:"US + SS, no retention" ~us:true ~ss:true ~retention:false;
      run ~label:"US + SS, retention" ~us:true ~ss:true ~retention:true;
    ]
  in
  let rows =
    List.map
      (fun ((label, first, reread, m, ra), _) ->
        [ label; Report.f2 first; Report.f2 reread; Report.i m; Report.i ra ])
      results
  in
  Report.table
    ~title:
      (Printf.sprintf "site 2 reads a %d-page file stored only at site 0, twice"
         pages)
    ~header:[ "configuration"; "1st pass ms/pg"; "re-read ms/pg"; "messages"; "readaheads" ]
    rows;
  let nth n = let (r, _) = List.nth results n in r in
  let _, off_first, off_reread, _, _ = nth 0 in
  let _, _, ss_reread, _, _ = nth 1 in
  let _, _, ret_reread, _, ret_ra = nth 4 in
  (* Readahead fires on every sequential page of both passes except after
     the last: pass 1 readaheads pages 1..15, pass 2 re-reads hit warm
     (already cached => no refetch), so the count stays pages-1. *)
  Printf.printf "readahead fired on every sequential first-pass page: %s\n"
    (Report.check (ret_ra = pages - 1));
  Printf.printf "warm US tier absorbs the re-read (0 msgs beyond close): %s\n"
    (Report.check (ret_reread < 0.25 *. off_reread));
  Printf.printf "SS tier alone beats no-cache on the re-read (skips disk): %s\n"
    (Report.check (ss_reread < off_reread));
  Printf.printf "re-read improved vs cache-off: %.2f -> %.2f ms/page\n"
    off_first ret_reread;
  let _, stats_full = List.nth results 4 in
  Report.cache_table ~title:"cache counters, US + SS with retention" stats_full;
  (* With the US tier on, repeats never reach the SS; the SS-only run shows
     the second tier absorbing the disk traffic of re-reads on its own. *)
  let _, stats_ss = List.nth results 1 in
  Report.cache_table ~title:"cache counters, SS tier only" stats_ss

(* --------------------------------------------------------------- E19 *)
(* Section 2.3.4's unimplemented remedy, implemented: server-side
   partial-pathname lookup plus the per-site name cache. Same trees and
   sites as E13; cold is the first remote resolution, warm the second.
   Each half is ablated independently. *)
let e19 () =
  Report.section "E19  Fast pathname resolution"
    "name cache + partial-pathname lookup vs the E13 per-component walk";
  let variants =
    [
      ("cache + remote lookup", 512, true);
      ("remote lookup only", 0, true);
      ("name cache only", 512, false);
      ("neither (E13 baseline)", 0, false);
    ]
  in
  let full_stats = ref None in
  let checks = ref [] in
  let rows =
    List.concat_map
      (fun (label, entries, remote) ->
        List.map
          (fun depth ->
            let kconfig =
              { K.default_config with
                K.name_cache_entries = entries;
                remote_lookup = remote;
              }
            in
            (* Packs at site 0 only (also the CSS); site 2 resolves fully
               remotely, as in E13. *)
            let w = make_world ~n:3 ~packs:[ 0 ] ~kconfig () in
            deep_tree_prepare w depth;
            let path = deep_tree_path depth in
            let k = World.kernel w 2 in
            let resolve () =
              let snap = Stats.snapshot (World.stats w) in
              let t0 = World.now w in
              ignore (gf_of k path);
              (msgs w snap, World.now w -. t0)
            in
            let m_cold, t_cold = resolve () in
            let m_warm, t_warm = resolve () in
            if entries > 0 && remote then begin
              (* The headline claim: one round trip cold, free warm. *)
              checks := (depth, m_cold, m_warm) :: !checks;
              if depth = 6 then full_stats := Some (World.stats w)
            end;
            [ label; Report.i depth; Report.i m_cold; Report.f2 t_cold;
              Report.i m_warm; Report.f2 t_warm ])
          [ 1; 3; 6 ])
      variants
  in
  Report.table
    ~title:"site 2 resolves /d1/.../dN/leaf stored only at site 0, twice"
    ~header:[ "configuration"; "depth"; "cold msgs"; "cold ms"; "warm msgs"; "warm ms" ]
    rows;
  List.iter
    (fun (depth, m_cold, m_warm) ->
      Printf.printf
        "depth %d with both halves on: cold %d msgs (<= 10), warm %d (= 0): %s\n"
        depth m_cold m_warm
        (Report.check (m_cold <= 10 && m_warm = 0)))
    (List.sort compare !checks);
  (match !full_stats with
  | Some stats ->
    Report.name_cache_table ~title:"name-cache counters, both halves, depth 6" stats
  | None -> ());
  Printf.printf
    "one Lookup_req round trip replaces the per-component internal opens\n\
     (E13: 16/28/46 msgs at depth 1/3/6); the trail it returns fills the\n\
     name cache, so the warm walk sends nothing at all.\n"

(* ---------------------------------------------------------------- E20 *)
(* The bulk-transfer layer: windowed streaming reads, write-behind
   batching, and batched propagation pulls, swept across window sizes. A
   window of 1 is the ablation — exactly the one-page-per-RTT protocols —
   so the w=1 rows double as the before-this-layer baseline. *)
let e20 () =
  Report.section "E20  Bulk page transfer"
    "read / write / propagation cost vs bulk window (1 = ablation)";
  let pages = 32 in
  (* Distinctive per-page contents, so equality checks catch misordered or
     misplaced pages, not just wrong lengths. *)
  let body =
    String.init (pages * Page.size) (fun i ->
        Char.chr (Char.code 'a' + (i / Page.size mod 26)))
  in
  let kconfig window = { K.default_config with K.bulk_window = window } in
  let metric = Report.metric ~experiment:"e20" in
  (* (a) site 2 reads the 32 pages sequentially from the pack at site 0;
     the engine drains between reads, modelling streamed fetches landing
     while the application processes the previous page. *)
  let read_run window =
    let w = make_world ~n:3 ~packs:[ 0 ] ~kconfig:(kconfig window) () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/big" ~body;
    let k = World.kernel w 2 in
    let o = Us.open_gf k (gf_of k "/big") Proto.Mode_read in
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    let buf = Buffer.create (pages * Page.size) in
    for lpage = 0 to pages - 1 do
      let data, _ = Us.read_page k o lpage in
      Buffer.add_string buf data;
      drain w
    done;
    let m = Stats.delta_of (World.stats w) snap "net.msg.read" in
    let b = Stats.delta_of (World.stats w) snap "net.bytes" in
    let dt = World.now w -. t0 in
    Us.close k o;
    settle_ok w;
    (m, b, dt, String.equal (Buffer.contents buf) body, World.stats w)
  in
  (* (b) site 2 writes the same 32 pages through the write protocol. *)
  let write_run window =
    let w = make_world ~n:3 ~packs:[ 0 ] ~kconfig:(kconfig window) () in
    mk_file w ~at:0 ~ncopies:1 ~path:"/out" ~body:"";
    let k = World.kernel w 2 and p = World.proc w 2 in
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    Kernel.write_file k p "/out" body;
    let m = Stats.delta_of (World.stats w) snap "net.msg.write" in
    let b = Stats.delta_of (World.stats w) snap "net.bytes" in
    let dt = World.now w -. t0 in
    settle_ok w;
    let k0 = World.kernel w 0 and p0 = World.proc w 0 in
    (m, b, dt, String.equal (Kernel.read_file k0 p0 "/out") body, World.stats w)
  in
  (* (c) a big-file commit at site 0 propagates to the replica at site 1:
     the background pull fetches the modified pages in window batches. *)
  let prop_run window =
    let w = make_world ~n:3 ~packs:[ 0; 1 ] ~kconfig:(kconfig window) () in
    mk_file w ~at:0 ~ncopies:2 ~path:"/repl" ~body:"seed";
    let k0 = World.kernel w 0 and p0 = World.proc w 0 in
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    Kernel.write_file k0 p0 "/repl" body;
    settle_ok w;
    let m = Stats.delta_of (World.stats w) snap "net.msg.read" in
    let b = Stats.delta_of (World.stats w) snap "net.bytes" in
    let dt = World.now w -. t0 in
    let k1 = World.kernel w 1 and p1 = World.proc w 1 in
    (m, b, dt, String.equal (Kernel.read_file k1 p1 "/repl") body, World.stats w)
  in
  let windows = [ 1; 2; 4; 8; 16 ] in
  let results =
    List.map (fun wnd -> (wnd, read_run wnd, write_run wnd, prop_run wnd)) windows
  in
  let rows =
    List.map
      (fun (wnd, (rm, rb, rt, rok, _), (wm, wb, wt, wok, _), (pm, pb, pt, pok, _)) ->
        List.iter
          (fun (what, m, b, t) ->
            metric (Printf.sprintf "%s.msgs.w%d" what wnd) (float_of_int m);
            metric (Printf.sprintf "%s.bytes.w%d" what wnd) (float_of_int b);
            metric (Printf.sprintf "%s.ms.w%d" what wnd) t)
          [ ("read", rm, rb, rt); ("write", wm, wb, wt); ("prop", pm, pb, pt) ];
        [ Report.i wnd; Report.i rm; Report.f2 rt; Report.i wm; Report.f2 wt;
          Report.i pm; Report.f2 pt; Report.check (rok && wok && pok) ])
      results
  in
  Report.table
    ~title:
      (Printf.sprintf
         "sequential %d-page remote read / write / 2-copy propagation" pages)
    ~header:
      [ "window"; "read msgs"; "read ms"; "write msgs"; "write ms";
        "prop msgs"; "prop ms"; "contents" ]
    rows;
  let find wnd = List.find (fun (w', _, _, _) -> w' = wnd) results in
  let _, (rm1, _, _, _, _), (wm1, _, _, _, _), (pm1, _, _, _, _) = find 1 in
  let _, (rm8, _, _, rok8, rstats8), (wm8, _, _, _, wstats8), (pm8, _, _, _, pstats8) =
    find 8
  in
  Report.bulk_table ~title:"bulk counters, read world, window 8" rstats8;
  Report.bulk_table ~title:"bulk counters, write world, window 8" wstats8;
  Report.bulk_table ~title:"bulk counters, propagation world, window 8" pstats8;
  Printf.printf
    "read-class messages, window 8 vs 1: %d vs %d (%.1fx, need >= 4x): %s\n"
    rm8 rm1
    (float_of_int rm1 /. float_of_int (max 1 rm8))
    (Report.check (rok8 && rm1 >= 4 * rm8));
  Printf.printf "write-class messages, window 8 vs 1: %d vs %d (%.1fx): %s\n" wm8 wm1
    (float_of_int wm1 /. float_of_int (max 1 wm8))
    (Report.check (wm1 >= 4 * wm8));
  Printf.printf
    "propagation round trips drop by the window factor: %d vs %d msgs: %s\n"
    pm8 pm1
    (Report.check (pm1 >= 4 * pm8));
  Printf.printf
    "a window of 1 reproduces the unbatched protocols exactly; the window\n\
     sweep shows the per-page round trips collapsing into streamed batches.\n"

(* --------------------------------------------------------------- E21 *)
(* Cached opens: CSS-granted read leases with callback invalidation and
   deferred close. Sweep the E1 placements cold vs leased re-open, show a
   writer open breaking the lease before the next read can observe stale
   data, and verify both ablations reproduce E1's message counts. *)
let e21 () =
  Report.section "E21  Open leases: zero-message re-opens"
    "cold vs leased re-open cost; callback break on writer open; ablations";
  let metric = Report.metric ~experiment:"e21" in
  (* The five collocation modes of E1, with the paper's cold-open counts. *)
  let placements =
    [
      ("US = CSS = SS (all local)", "local", 0, 0, 0);
      ("US = SS, CSS remote", "us_ss", 1, 1, 2);
      ("US = CSS, SS remote", "us_css", 1, 0, 2);
      ("CSS = SS, US remote", "css_ss", 0, 3, 2);
      ("US, CSS, SS all distinct", "distinct", 1, 3, 4);
    ]
  in
  (* One cold open+close, then a re-open of the unchanged file: with the
     lease layer on the second open rides the retained grant for zero
     messages; with it off it repeats the cold exchange. *)
  let run kconfig (label, slug, file_at, open_at, paper) =
    let w = make_world ~n:5 ~packs:[ 0; 1 ] ~kconfig () in
    mk_file w ~at:file_at ~ncopies:1 ~path:"/f" ~body:"x";
    let k = World.kernel w open_at in
    let gf = gf_of k "/f" in
    let snap = Stats.snapshot (World.stats w) in
    let o = Us.open_gf k gf Proto.Mode_read in
    let cold = msgs w snap in
    Us.close k o;
    settle_ok w;
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    let o2 = Us.open_gf k gf Proto.Mode_read in
    let warm = msgs w snap in
    let warm_ms = World.now w -. t0 in
    Us.close k o2;
    settle_ok w;
    (label, slug, cold, warm, warm_ms, paper)
  in
  let leased = List.map (run K.default_config) placements in
  List.iter
    (fun (_, slug, cold, warm, warm_ms, _) ->
      metric (Printf.sprintf "cold.msgs.%s" slug) (float_of_int cold);
      metric (Printf.sprintf "warm.msgs.%s" slug) (float_of_int warm);
      metric (Printf.sprintf "warm.ms.%s" slug) warm_ms)
    leased;
  Report.table ~title:"open cost by role collocation, lease layer on"
    ~header:[ "mode"; "cold msgs"; "paper"; "warm msgs"; "warm ms"; "ok" ]
    (List.map
       (fun (label, _, cold, warm, warm_ms, paper) ->
         [ label; Report.i cold; Report.i paper; Report.i warm; Report.f2 warm_ms;
           Report.check (cold = paper && warm = 0) ])
       leased);
  (* Writer interference: a reader's retained grant is broken by callback
     when a writer opens, and the re-open after the writer's commit sees
     the new data — never the leased version. *)
  let w = make_world ~n:5 ~packs:[ 0; 1 ] () in
  mk_file w ~at:1 ~ncopies:1 ~path:"/shared" ~body:"old";
  let k3 = World.kernel w 3 and k2 = World.kernel w 2 in
  let gf = gf_of k3 "/shared" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  ignore (Us.read_all k3 o);
  Us.close k3 o;
  settle_ok w;
  let held = Locus_core.Openlease.find_entry k3.K.open_leases gf <> None in
  let t0 = World.now w in
  let ow = Us.open_gf k2 gf Proto.Mode_modify in
  (* Drain the engine in small slices until the break callback lands at
     the holder, timing its delivery. *)
  let slices = ref 0 in
  while
    Locus_core.Openlease.find_entry k3.K.open_leases gf <> None && !slices < 100
  do
    incr slices;
    ignore (Engine.run_for (World.engine w) 0.05)
  done;
  let break_ms = World.now w -. t0 in
  let broken = Locus_core.Openlease.find_entry k3.K.open_leases gf = None in
  Us.set_contents k2 ow "fresh";
  Us.commit k2 ow;
  Us.close k2 ow;
  settle_ok w;
  let snap = Stats.snapshot (World.stats w) in
  let o2 = Us.open_gf k3 gf Proto.Mode_read in
  let reopen_msgs = msgs w snap in
  let seen = Us.read_all k3 o2 in
  Us.close k3 o2;
  settle_ok w;
  metric "break.ms" break_ms;
  metric "break.reopen.msgs" (float_of_int reopen_msgs);
  Report.table ~title:"writer interference on a leased file"
    ~header:[ "step"; "value"; "ok" ]
    [
      [ "lease held across close"; "-"; Report.check held ];
      [ "broken by writer open (ms)"; Report.f2 break_ms; Report.check broken ];
      [ "re-open after commit (msgs)"; Report.i reopen_msgs;
        Report.check (reopen_msgs > 0) ];
      [ "data seen"; seen; Report.check (String.equal seen "fresh") ];
    ];
  Report.lease_table (World.stats w);
  (* Ablations: with the layer off — either switch — every open repeats
     the cold exchange, reproducing E1's counts exactly. *)
  let ablation name kconfig =
    let rows = List.map (run kconfig) placements in
    let ok =
      List.for_all (fun (_, _, cold, warm, _, paper) -> cold = paper && warm = paper) rows
    in
    List.iter
      (fun (_, slug, cold, warm, _, _) ->
        metric (Printf.sprintf "%s.cold.msgs.%s" name slug) (float_of_int cold);
        metric (Printf.sprintf "%s.warm.msgs.%s" name slug) (float_of_int warm))
      rows;
    [ name; Report.check ok ]
  in
  Report.table ~title:"ablations reproduce the unleased protocol (cold = warm = E1)"
    ~header:[ "ablation"; "ok" ]
    [
      ablation "open_lease=false" { K.default_config with K.open_lease = false };
      ablation "open_lease_entries=0" { K.default_config with K.open_lease_entries = 0 };
    ];
  Printf.printf
    "a warm re-open of an unchanged remote file costs 0 messages (cold: 4\n\
     with all roles distinct); the first writer open breaks the lease by\n\
     callback before the next read can observe stale data.\n"

(* --------------------------------------------------------------- E22 *)
(* Scale-out storage: files striped across storage sites, and opens at
   growing site counts. (a) one US reads a 64-page file whose pages are
   striped over up to 8 latest-copy holders; the per-stripe windows travel
   in parallel, so elapsed time drops with the width (width 1 is the
   ablation: the classic single-SS protocol, byte-identical). (b) the same
   striped open/read at 8..512 installed sites, with the per-kernel tables
   pre-sized from table_size_hint, shows the protocol cost stays flat as
   the installation grows. *)
let e22 () =
  Report.section "E22  Scale-out storage: striped reads, growing site counts"
    "64-page read vs stripe width (1 = ablation); open/read cost vs n_sites";
  let metric = Report.metric ~experiment:"e22" in
  let pages = 64 in
  let body =
    String.init (pages * Page.size) (fun i ->
        Char.chr (Char.code 'a' + (i / Page.size mod 26)))
  in
  let bytes = float_of_int (pages * Page.size) in
  (* (a) width sweep: packs at 8 sites, all holding the latest version;
     the reader at a packless site gets a stripe map of [width] sites.
     The sweep runs on a period-realistic 10 Mbit Ethernet (~1 ms per
     page on the wire) — the workload striping is for is transfer-bound;
     the default model's 80 Mbit wire would hide the transfer behind the
     US's fixed per-page buffer cost. Same model at every width. *)
  let enet = { Net.Latency.default with Net.Latency.per_byte = 0.001 } in
  let width_run width =
    let base = World.default_config ~n_sites:10 () in
    let config =
      {
        base with
        World.latency = enet;
        filegroups =
          [ { World.fg = 0;
              pack_sites = [ 0; 1; 2; 3; 4; 5; 6; 7 ];
              mount_path = None } ];
        kernel_config = { K.default_config with K.stripe_width = width };
      }
    in
    let w = World.create ~config () in
    mk_file w ~at:8 ~ncopies:8 ~path:"/wide" ~body;
    let k = World.kernel w 9 in
    let snap = Stats.snapshot (World.stats w) in
    let t0 = World.now w in
    let o = Us.open_gf k (gf_of k "/wide") Proto.Mode_read in
    let open_ms = World.now w -. t0 in
    let granted = List.length o.K.o_stripes in
    let buf = Buffer.create (pages * Page.size) in
    let t1 = World.now w in
    for lpage = 0 to pages - 1 do
      let data, _ = Us.read_page k o lpage in
      Buffer.add_string buf data;
      (* Let streamed fetches land while the application processes the
         page, as in E20 — the width-1 baseline is the bulk layer at its
         best, not a strawman. *)
      drain w
    done;
    let read_ms = World.now w -. t1 in
    let m = msgs w snap in
    Us.close k o;
    settle_ok w;
    let ok = String.equal (Buffer.contents buf) body in
    (width, granted, open_ms, read_ms, bytes /. read_ms, m, ok)
  in
  let widths = [ 1; 2; 4; 8 ] in
  let results = List.map width_run widths in
  List.iter
    (fun (width, _, open_ms, read_ms, tput, m, _) ->
      metric (Printf.sprintf "read64.open.ms.w%d" width) open_ms;
      metric (Printf.sprintf "read64.ms.w%d" width) read_ms;
      metric (Printf.sprintf "read64.tput.w%d" width) tput;
      metric (Printf.sprintf "read64.msgs.w%d" width) (float_of_int m))
    results;
  Report.table
    ~title:
      (Printf.sprintf "remote sequential %d-page read vs stripe width" pages)
    ~header:
      [ "width"; "map"; "open ms"; "read ms"; "KB/ms"; "msgs"; "contents" ]
    (List.map
       (fun (width, granted, open_ms, read_ms, tput, m, ok) ->
         [ Report.i width; Report.i granted; Report.f2 open_ms;
           Report.f2 read_ms; Report.f2 (tput /. 1024.); Report.i m;
           Report.check ok ])
       results);
  let tput_of width =
    let _, _, _, _, tput, _, _ =
      List.find (fun (w', _, _, _, _, _, _) -> w' = width) results
    in
    tput
  in
  let all_ok = List.for_all (fun (_, _, _, _, _, _, ok) -> ok) results in
  let speedup = tput_of 4 /. tput_of 1 in
  metric "read64.speedup.w4_over_w1" speedup;
  Printf.printf
    "aggregate read throughput, width 4 vs width 1: %.1fx (need >= 2x): %s\n"
    speedup
    (Report.check (all_ok && speedup >= 2.0));
  (* (b) site-count sweep: the same striped file and width-4 map, at
     installations of 8..512 sites (packs stay at 4 sites; the hot kernel
     tables are pre-sized via table_size_hint). The open and read cost
     must not grow with the number of installed sites: the protocols talk
     to the CSS and the stripe sites, never to the whole site table. *)
  let scale_run n =
    let kconfig =
      { K.default_config with K.stripe_width = 4; K.table_size_hint = n }
    in
    let w = make_world ~n ~packs:[ 0; 1; 2; 3 ] ~kconfig () in
    mk_file w ~at:0 ~ncopies:4 ~path:"/wide" ~body;
    let clients =
      List.sort_uniq Int.compare [ 4; n / 2; n - 2; n - 1 ]
      |> List.filter (fun s -> s >= 4)
    in
    let per_client =
      List.map
        (fun site ->
          let k = World.kernel w site in
          let snap = Stats.snapshot (World.stats w) in
          let t0 = World.now w in
          let o = Us.open_gf k (gf_of k "/wide") Proto.Mode_read in
          let open_ms = World.now w -. t0 in
          let t1 = World.now w in
          let buf = Buffer.create (pages * Page.size) in
          for lpage = 0 to pages - 1 do
            let data, _ = Us.read_page k o lpage in
            Buffer.add_string buf data;
            drain w
          done;
          let read_ms = World.now w -. t1 in
          let m = msgs w snap in
          Us.close k o;
          (open_ms, read_ms, m, String.equal (Buffer.contents buf) body))
        clients
    in
    settle_ok w;
    let nc = float_of_int (List.length per_client) in
    let mean f = List.fold_left (fun a x -> a +. f x) 0.0 per_client /. nc in
    let open_ms = mean (fun (o, _, _, _) -> o) in
    let read_ms = mean (fun (_, r, _, _) -> r) in
    let m = mean (fun (_, _, m, _) -> float_of_int m) in
    let ok = List.for_all (fun (_, _, _, ok) -> ok) per_client in
    (n, List.length per_client, open_ms, read_ms, bytes /. read_ms, m, ok)
  in
  let ns = [ 8; 32; 128; 512 ] in
  let scale = List.map scale_run ns in
  List.iter
    (fun (n, _, open_ms, read_ms, tput, m, _) ->
      metric (Printf.sprintf "scale.open.ms.n%d" n) open_ms;
      metric (Printf.sprintf "scale.read.ms.n%d" n) read_ms;
      metric (Printf.sprintf "scale.tput.n%d" n) tput;
      metric (Printf.sprintf "scale.msgs.n%d" n) m)
    scale;
  Report.table
    ~title:"width-4 striped open + 64-page read vs installed sites"
    ~header:
      [ "sites"; "clients"; "open ms"; "read ms"; "KB/ms"; "msgs/client";
        "contents" ]
    (List.map
       (fun (n, nc, open_ms, read_ms, tput, m, ok) ->
         [ Report.i n; Report.i nc; Report.f2 open_ms; Report.f2 read_ms;
           Report.f2 (tput /. 1024.); Report.f2 m; Report.check ok ])
       scale);
  let ms_of n =
    let _, _, _, read_ms, _, _, _ =
      List.find (fun (n', _, _, _, _, _, _) -> n' = n) scale
    in
    read_ms
  in
  Printf.printf
    "per-client read cost, 512 vs 8 sites: %.2f vs %.2f ms (flat): %s\n"
    (ms_of 512) (ms_of 8)
    (Report.check (ms_of 512 <= ms_of 8 *. 1.25));
  Printf.printf
    "page service spreads over the stripe sites; width 1 is the classic\n\
     single-SS protocol, and cost per open does not grow with the size of\n\
     the installation.\n"

(* ---------------------------------------------------------------- E23 *)
(* Fault-soak smoke: a handful of seeded runs of the deterministic soak
   harness (lib/soak) — randomized fault schedules over a live replicated
   tree, then global invariant checks at quiesce. The full sweep (50+
   seeds x 2000+ ops) runs via `make soak`; this keeps the bench suite
   fast while still exercising every fault class. *)
let e23 () =
  Report.section "E23  Deterministic fault soak (smoke)"
    "seeded fault schedules vs global invariants at quiesce";
  let metric = Report.metric ~experiment:"e23" in
  let seeds = List.init 6 (fun i -> i + 1) in
  let ops = 400 in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    List.map (fun seed -> Soak.Driver.run ~seed ~ops ()) seeds
  in
  let wall = Unix.gettimeofday () -. t0 in
  let injected =
    List.fold_left
      (fun acc oc ->
        List.fold_left
          (fun acc (l, c) ->
            (l, c + Option.value ~default:0 (List.assoc_opt l acc))
            :: List.remove_assoc l acc)
          acc oc.Soak.Driver.oc_injected)
      [] outcomes
    |> List.sort compare
  in
  Report.table ~title:(Printf.sprintf "%d seeds x %d ops" (List.length seeds) ops)
    ~header:[ "seed"; "ops"; "errors"; "faults"; "skipped"; "events"; "invariants" ]
    (List.map
       (fun oc ->
         [ Report.i oc.Soak.Driver.oc_seed;
           Report.i oc.Soak.Driver.oc_report.Locus.Workload.ops;
           Report.i oc.Soak.Driver.oc_report.Locus.Workload.errors;
           Report.i
             (List.fold_left (fun a (_, c) -> a + c) 0 oc.Soak.Driver.oc_injected);
           Report.i oc.Soak.Driver.oc_skipped;
           Report.i oc.Soak.Driver.oc_events;
           Report.check (not (Soak.Driver.failed oc)) ])
       outcomes);
  Report.table ~title:"faults injected by class (all seeds)"
    ~header:[ "fault"; "count" ]
    (List.map (fun (l, c) -> [ l; Report.i c ]) injected);
  let total_faults = List.fold_left (fun a (_, c) -> a + c) 0 injected in
  metric "soak.seeds" (float_of_int (List.length seeds));
  metric "soak.ops.per.seed" (float_of_int ops);
  metric "soak.faults.injected" (float_of_int total_faults);
  metric "soak.violations"
    (float_of_int
       (List.fold_left
          (fun a oc -> a + List.length oc.Soak.Driver.oc_violations)
          0 outcomes));
  metric "soak.wall.s" wall;
  Printf.printf
    "%d seeds, %d faults injected, %d invariant violations, %.1fs wall\n"
    (List.length seeds) total_faults
    (List.fold_left (fun a oc -> a + List.length oc.Soak.Driver.oc_violations) 0 outcomes)
    wall

(* ---------------------------------------------------------------- E24 *)
(* Million-user flood: the allocation-lean event core driving Zipfian
   open/read/close, edit/commit and hot-directory traffic from 100k
   simulated users over a 64-site installation (DESIGN.md section 13).
   The dashboard is latency percentiles per op class plus the
   cache/lease/name hit rates the flood sustained; a site-count sweep
   then shows the per-op cost does not grow with installation size. *)

(* Spans are for debugging single ops; at flood scale their formatting
   would dominate the host cost, so recording is off during the run. *)
let flood_run w spec =
  let trace = Engine.trace (World.engine w) in
  Trace.set_recording trace false;
  let t0 = Unix.gettimeofday () in
  let r = Flood.run w spec in
  let wall = Unix.gettimeofday () -. t0 in
  Trace.set_recording trace true;
  (r, wall)

let flood_world ~n_sites =
  let kconfig = { K.default_config with K.table_size_hint = max 64 n_sites } in
  make_world ~n:n_sites ~packs:[ 0; 1; 2; 3 ] ~kconfig ()

let flood_dashboard (r : Flood.report) =
  let row name (s : Stats.hist_summary) =
    [ name; Report.i s.Stats.n; Report.f2 s.Stats.p50; Report.f2 s.Stats.p95;
      Report.f2 s.Stats.p99; Report.f2 s.Stats.hmax ]
  in
  Report.table
    ~title:
      (Printf.sprintf "op latency, %d users x %d ops (simulated ms)" r.Flood.fr_users
         r.Flood.fr_ops)
    ~header:[ "op class"; "ops"; "p50"; "p95"; "p99"; "max" ]
    [
      row "open/read/close" r.Flood.fr_read_lat;
      row "edit/commit" r.Flood.fr_edit_lat;
      row "dir create/unlink" r.Flood.fr_dirop_lat;
    ];
  let pct v = Printf.sprintf "%.1f%%" (100.0 *. v) in
  Report.table ~title:"hit rates over the run"
    ~header:[ "open lease"; "buffer cache"; "name cache" ]
    [ [ pct r.Flood.fr_lease_hit; pct r.Flood.fr_cache_hit; pct r.Flood.fr_name_hit ] ]

let flood_metrics metric prefix (r : Flood.report) =
  let m name v = metric (prefix ^ name) v in
  m "users" (float_of_int r.Flood.fr_users);
  m "ops" (float_of_int r.Flood.fr_ops);
  m "errors" (float_of_int r.Flood.fr_errors);
  m "migrations" (float_of_int r.Flood.fr_migrations);
  m "sim.ms" r.Flood.fr_sim_ms;
  let lat cls (s : Stats.hist_summary) =
    m (Printf.sprintf "lat.%s.p50" cls) s.Stats.p50;
    m (Printf.sprintf "lat.%s.p95" cls) s.Stats.p95;
    m (Printf.sprintf "lat.%s.p99" cls) s.Stats.p99
  in
  lat "read" r.Flood.fr_read_lat;
  lat "edit" r.Flood.fr_edit_lat;
  lat "dirop" r.Flood.fr_dirop_lat;
  m "hit.lease" r.Flood.fr_lease_hit;
  m "hit.cache" r.Flood.fr_cache_hit;
  m "hit.name" r.Flood.fr_name_hit

let e24 () =
  Report.section "E24  Million-user flood (Zipfian traffic engine)"
    "100k users over 64 sites: latency percentiles + hit-rate dashboard";
  let metric = Report.metric ~experiment:"e24" in
  let spec =
    {
      Flood.default_spec with
      Flood.users = 100_000;
      files = 2_048;
      hot_dirs = 16;
      ops = 60_000;
      settle_every = 500;
    }
  in
  let w = flood_world ~n_sites:64 in
  Flood.setup w spec;
  let r, wall = flood_run w spec in
  flood_dashboard r;
  flood_metrics metric "flood." r;
  metric "flood.wall.s" wall;
  metric "flood.host.ops_per_sec" (float_of_int spec.Flood.ops /. wall);
  Printf.printf
    "%d users, %d ops in %.1fs host (%.0f ops/sec); %d errors, %d migrations\n"
    spec.Flood.users spec.Flood.ops wall
    (float_of_int spec.Flood.ops /. wall)
    r.Flood.fr_errors r.Flood.fr_migrations;
  (* site-count sweep: same per-site op pressure (users and ops scale
     with the installation, so per-site cache locality is held fixed).
     The op stream talks to the CSS and the storage sites, never to the
     whole site table, so per-op latency must stay flat. *)
  let sweep =
    List.map
      (fun n ->
        let sweep_spec =
          {
            spec with
            Flood.users = 400 * n;
            ops = 60 * n;
            settle_every = 400;
          }
        in
        let w = flood_world ~n_sites:n in
        Flood.setup w sweep_spec;
        let r, _ = flood_run w sweep_spec in
        metric (Printf.sprintf "sweep.read.p50.n%d" n) r.Flood.fr_read_lat.Stats.p50;
        metric (Printf.sprintf "sweep.read.p99.n%d" n) r.Flood.fr_read_lat.Stats.p99;
        (n, r))
      [ 8; 64; 512 ]
  in
  Report.table ~title:"read latency vs installed sites (400 users, 60 ops per site)"
    ~header:[ "sites"; "reads"; "p50"; "p99"; "lease hit"; "cache hit" ]
    (List.map
       (fun (n, (r : Flood.report)) ->
         [ Report.i n; Report.i r.Flood.fr_read_lat.Stats.n;
           Report.f2 r.Flood.fr_read_lat.Stats.p50;
           Report.f2 r.Flood.fr_read_lat.Stats.p99;
           Printf.sprintf "%.1f%%" (100.0 *. r.Flood.fr_lease_hit);
           Printf.sprintf "%.1f%%" (100.0 *. r.Flood.fr_cache_hit) ])
       sweep);
  (* p50 tracks the hit rate, and hit rates sag a little with scale for a
     real reason: the Zipf-hot files are edited somewhere in the world at
     a rate proportional to total sites, and each edit breaks leases
     everywhere. The protocol-cost claim is the miss path: p99 must not
     grow with installation size. *)
  let p_of p n =
    let s = (List.assoc n sweep).Flood.fr_read_lat in
    if p = 99 then s.Stats.p99 else s.Stats.p50
  in
  Printf.printf "read p50, 512 vs 8 sites: %.2f vs %.2f ms (hit-rate drift)\n"
    (p_of 50 512) (p_of 50 8);
  Printf.printf "read p99, 512 vs 8 sites: %.2f vs %.2f ms (flat): %s\n"
    (p_of 99 512) (p_of 99 8)
    (Report.check (p_of 99 512 <= p_of 99 8 *. 1.25))

(* Small-scale flood for `make bench-smoke`: same machinery, sized to run
   in seconds, with the bookkeeping identities checked. *)
let e24smoke () =
  Report.section "E24s  Flood smoke (small world)"
    "2k users over 5 sites; bookkeeping identities + dashboard";
  let metric = Report.metric ~experiment:"e24smoke" in
  let spec =
    {
      Flood.default_spec with
      Flood.users = 2_000;
      files = 128;
      ops = 3_000;
      settle_every = 250;
    }
  in
  let w = flood_world ~n_sites:5 in
  Flood.setup w spec;
  let r, _ = flood_run w spec in
  flood_dashboard r;
  flood_metrics metric "flood." r;
  (* no faults are injected here, so every issued op either lands in one
     of the three classes or was refused *)
  let accounted =
    r.Flood.fr_reads + r.Flood.fr_edits + r.Flood.fr_dirops + r.Flood.fr_errors
  in
  Printf.printf "ops accounted for: %d/%d: %s\n" accounted r.Flood.fr_ops
    (Report.check (accounted = r.Flood.fr_ops));
  Printf.printf "latency ordering p50 <= p99 (reads): %s\n"
    (Report.check (r.Flood.fr_read_lat.Stats.p50 <= r.Flood.fr_read_lat.Stats.p99))

let all =
  [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16; e17;
    e18; e19; e20; e21; e22; e23; e24 ]

let by_name =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21); ("e22", e22);
    ("e23", e23); ("e24", e24); ("e24smoke", e24smoke);
  ]
