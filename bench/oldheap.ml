(* The event heap as it stood before the unboxed rewrite: a binary heap
   of boxed [entry option] records. Kept verbatim as the baseline the
   micro suite measures Sim.Eheap against — events/sec and minor words
   per event, recorded as heap.old vs heap.new in BENCH_micro.json. Not
   used by the simulator itself. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 64 None; len = 0; next_seq = 0 }

let is_empty t = t.len = 0

let size t = t.len

let get t i =
  match t.arr.(i) with
  | Some e -> e
  | None -> assert false

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before (get t l) (get t !smallest) then smallest := l;
  if r < t.len && before (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let push t ~time payload =
  if t.len = Array.length t.arr then grow t;
  t.arr.(t.len) <- Some { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    t.arr.(0) <- t.arr.(t.len);
    t.arr.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some (top.time, top.payload)
  end
