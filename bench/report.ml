(* Plain-text table rendering for the experiment harness. *)

let rule widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  Printf.printf "\n%s\n" title;
  let line row =
    let cells = List.map2 (fun w c -> " " ^ pad w c ^ " ") widths row in
    Printf.printf "|%s|\n" (String.concat "|" cells)
  in
  Printf.printf "%s\n" (rule widths);
  line header;
  Printf.printf "%s\n" (rule widths);
  List.iter line rows;
  Printf.printf "%s\n" (rule widths)

let f1 v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v

let i = string_of_int

let check b = if b then "PASS" else "FAIL"

(* Per-request-tag latency percentiles from the transport layer's
   histograms ("rpc.latency.<tag>"), in simulated ms. *)
let rpc_latency_table ?(title = "per-tag RPC latency (simulated ms)") stats =
  let prefix = "rpc.latency." in
  let plen = String.length prefix in
  let rows =
    Sim.Stats.hist_names stats
    |> List.filter_map (fun name ->
           if String.length name > plen && String.sub name 0 plen = prefix then begin
             let tag = String.sub name plen (String.length name - plen) in
             let s = Sim.Stats.hist_summary stats name in
             Some [ tag; i s.Sim.Stats.n; f2 s.Sim.Stats.p50; f2 s.Sim.Stats.p95;
                    f2 s.Sim.Stats.p99; f2 s.Sim.Stats.hmax ]
           end
           else None)
  in
  if rows <> [] then
    table ~title ~header:[ "tag"; "calls"; "p50"; "p95"; "p99"; "max" ] rows

(* Buffer-cache hit/miss/eviction counters ("cache.<tier>.hit" etc.) as a
   per-tier table with hit ratios. *)
let cache_table ?(title = "buffer-cache effectiveness") stats =
  let rows =
    List.filter_map
      (fun tier ->
        let get what = Sim.Stats.get stats (Printf.sprintf "cache.%s.%s" tier what) in
        let hits = get "hit" and misses = get "miss" and evicts = get "evict" in
        let total = hits + misses in
        if total = 0 && evicts = 0 then None
        else
          Some
            [ tier; i hits; i misses; i evicts;
              (if total = 0 then "-"
               else Printf.sprintf "%.1f%%" (100.0 *. float_of_int hits /. float_of_int total));
            ])
      [ "us"; "ss" ]
  in
  if rows <> [] then
    table ~title ~header:[ "tier"; "hits"; "misses"; "evictions"; "hit ratio" ] rows

(* Name-cache counters ("name.cache.*") plus the remote partial-pathname
   walk count, as one row — the §2.3.4 lookup fast path's effectiveness. *)
let name_cache_table ?(title = "name-cache effectiveness") stats =
  let get what = Sim.Stats.get stats ("name.cache." ^ what) in
  let hits = get "hit" and misses = get "miss" in
  let total = hits + misses in
  if total > 0 || get "fill" > 0 then
    table ~title
      ~header:
        [ "hits"; "misses"; "fills"; "invalidations"; "evictions";
          "remote walks"; "hit ratio" ]
      [
        [ i hits; i misses; i (get "fill"); i (get "invalidate");
          i (get "evict"); i (Sim.Stats.get stats "name.remote_walks");
          (if total = 0 then "-"
           else Printf.sprintf "%.1f%%" (100.0 *. float_of_int hits /. float_of_int total));
        ];
      ]

(* Bulk-transfer counters: how many batched RPCs each path issued and how
   many pages the average batch carried. *)
let bulk_table ?(title = "bulk-transfer effectiveness") stats =
  let rows =
    List.filter_map
      (fun (label, batches_key, pages_key) ->
        let batches = Sim.Stats.get stats batches_key in
        let pages = Sim.Stats.get stats pages_key in
        if batches = 0 then None
        else
          Some
            [ label; i batches; i pages;
              Printf.sprintf "%.1f" (float_of_int pages /. float_of_int batches) ])
      [
        ("streaming read", "us.bulk.read", "us.bulk.read.pages");
        ("write-behind", "us.bulk.write", "us.bulk.write.pages");
        ("propagation pull", "prop.bulk", "prop.bulk.pages");
      ]
  in
  if rows <> [] then
    table ~title ~header:[ "path"; "batched RPCs"; "pages"; "pages/RPC" ] rows

(* Open-lease counters ("open.lease.*"): how often a retained grant
   short-circuited the open protocol, and why grants died. *)
let lease_table ?(title = "open-lease effectiveness") stats =
  let get what = Sim.Stats.get stats ("open.lease." ^ what) in
  let hits = get "hit" and misses = get "miss" in
  let total = hits + misses in
  if total > 0 || get "break" > 0 then
    table ~title
      ~header:
        [ "hits"; "misses"; "deferred closes"; "breaks"; "evictions"; "hit ratio" ]
      [
        [ i hits; i misses; i (get "defer"); i (get "break"); i (get "evict");
          (if total = 0 then "-"
           else
             Printf.sprintf "%.1f%%"
               (100.0 *. float_of_int hits /. float_of_int total));
        ];
      ]

(* ---- machine-readable output (BENCH_<experiment>.json) ---- *)

(* Experiments record named numeric metrics as they run; the harness entry
   point dumps one BENCH_<experiment>.json per experiment that recorded
   any, so CI can compare runs without scraping the tables. *)
let metrics : (string * (string * float) list ref) list ref = ref []

let metric ~experiment name value =
  let bucket =
    match List.assoc_opt experiment !metrics with
    | Some b -> b
    | None ->
      let b = ref [] in
      metrics := (experiment, b) :: !metrics;
      b
  in
  bucket := (name, value) :: !bucket

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let write_metrics () =
  List.iter
    (fun (experiment, bucket) ->
      if !bucket <> [] then begin
        let path = Printf.sprintf "BENCH_%s.json" experiment in
        let oc = open_out path in
        let entries = List.rev !bucket in
        let n = List.length entries in
        output_string oc "{\n";
        List.iteri
          (fun idx (name, v) ->
            Printf.fprintf oc "  %S: %s%s\n" name (json_number v)
              (if idx < n - 1 then "," else ""))
          entries;
        output_string oc "}\n";
        close_out oc;
        Printf.printf "wrote %s (%d metrics)\n" path n
      end)
    (List.rev !metrics)

let section name what =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" name;
  Printf.printf "  %s\n" what;
  Printf.printf "==============================================================\n"
