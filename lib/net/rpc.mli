(** Typed RPC transport over {!Netsim}.

    Every kernel-to-kernel exchange in the system goes through this module:
    it turns {!Netsim}'s single-attempt, failure-returning exchange into a
    policy-driven call with typed errors, bounded retries with simulated-time
    backoff, per-call trace spans, and per-tag latency/byte histograms.

    LOCUS runs its protocols directly on a problem-oriented transport
    (§2.3.3): no connection setup, no transport-level acknowledgements —
    the response to a request is its acknowledgement, and recovery from
    loss is the requesting kernel's job. The retry policy here is that
    recovery. Calls that the protocol makes idempotent (page reads, status
    queries, token requests) may be resent after a loss; calls whose
    handler mutates state non-idempotently (opens, commits, closes) are
    never blindly retried — a lost reply after such a call surfaces as
    {!Lost_reply} and the caller decides. Reconfiguration probes (§5) use
    {!probe}: one attempt, because unreachability is the information the
    caller is after, not a transient to paper over. *)

type rpc_error =
  | Unreachable of { src : Site.t; dst : Site.t; attempts : int }
      (** No request ever reached [dst]: the destination handler did not run
          on the final attempt. [attempts = 0] means the calling site itself
          was down and nothing was sent. *)
  | Lost_reply of { src : Site.t; dst : Site.t; attempts : int }
      (** The final attempt's request was delivered and processed, but the
          reply was lost. Remote state may have changed. *)
  | Timeout of { src : Site.t; dst : Site.t; attempts : int; waited : float }
      (** Retrying was abandoned because the next backoff would exceed the
          policy's [timeout]; [waited] is the simulated time already spent. *)

val pp_error : Format.formatter -> rpc_error -> unit

val error_attempts : rpc_error -> int

type policy = {
  max_attempts : int;  (** Total attempts, including the first (>= 1). *)
  backoff : float list;
      (** Delay in simulated ms before retry [i] ([backoff]'s last entry
          repeats if there are more retries than entries; empty = no delay).
          Charged to the simulation clock. *)
  idempotent : bool;
      (** Only idempotent calls are ever retried; a non-idempotent call
          fails on its first loss regardless of [max_attempts]. *)
  timeout : float;
      (** Upper bound on total simulated time spent in the call, checked
          before each backoff; 0 = no bound. *)
}

val no_retry : policy
(** Single attempt, not idempotent. For calls with non-idempotent remote
    side effects: open, commit, close, create, fork. *)

val probe : policy
(** Single attempt, idempotent. For failure-detection polls where
    unreachability is the answer, not an error to mask. *)

val default_policy : policy
(** Three attempts, backoff [0.5; 2.0; 8.0] ms, idempotent, no timeout.
    For read-only and idempotent requests. *)

val call :
  ('req, 'resp) Netsim.t ->
  ?policy:policy ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  req_bytes:int ->
  resp_bytes:('resp -> int) ->
  'req ->
  ('resp, rpc_error) result
(** Synchronous request/response under [policy] (default {!default_policy}).
    Opens a trace span (tag ["rpc"]) covering all attempts and records a
    sample in the ["rpc.latency.<tag>"] histogram on every outcome, plus
    ["rpc.bytes.<tag>"] on success. Counters: ["rpc.call"], ["rpc.retry"]
    (and ["rpc.retry.<tag>"]), ["rpc.recovered"] (succeeded after >= 1
    retry), ["rpc.fail"] (and ["rpc.fail.unreachable" / ".lost_reply" /
    ".timeout"]). Backoff delays are charged to the simulated clock. *)

val send :
  ('req, 'resp) Netsim.t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  bytes:int ->
  'req ->
  unit
(** One-way, best-effort datagram (counts ["rpc.send"]); see {!Netsim.send}.
    No retries: one-way messages in LOCUS (commit notifications, update
    propagation hints) are designed to be safely lost. *)
