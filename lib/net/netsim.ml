module Engine = Sim.Engine
module Stats = Sim.Stats

type failure = Request_lost | Reply_lost

let pp_failure ppf = function
  | Request_lost -> Format.pp_print_string ppf "request-lost"
  | Reply_lost -> Format.pp_print_string ppf "reply-lost"

(* Pre-resolved per-tag stat handles, shared by this layer and {!Rpc}:
   the message layer used to build ["net.msg." ^ tag] (and the transport
   ["rpc.latency." ^ tag] etc.) on every call — a string allocation and
   hash per message. Tags are a small static set (one per protocol message
   class), so each resolves to this record once and is then hash-free. *)
type tag_stats = {
  ts_msg : Stats.counter option; (* net.msg.<tag>; None for untagged *)
  ts_latency : Stats.histogram;  (* rpc.latency.<tag> *)
  ts_bytes : Stats.histogram;    (* rpc.bytes.<tag> *)
  ts_retry : Stats.counter;      (* rpc.retry.<tag> *)
}

(* The transport stack's fixed counters, resolved once per network. *)
type hot_stats = {
  hs_msg : Stats.counter;           (* net.msg *)
  hs_bytes : Stats.counter;         (* net.bytes *)
  hs_send_err : Stats.counter;      (* net.send.err *)
  hs_circuit_open : Stats.counter;  (* net.circuit.open *)
  hs_circuit_close : Stats.counter; (* net.circuit.close *)
  hs_rpc_call : Stats.counter;      (* rpc.call *)
  hs_rpc_send : Stats.counter;      (* rpc.send *)
  hs_rpc_retry : Stats.counter;     (* rpc.retry *)
  hs_rpc_recovered : Stats.counter; (* rpc.recovered *)
  hs_rpc_fail : Stats.counter;      (* rpc.fail *)
}

type ('req, 'resp) t = {
  engine : Engine.t;
  topo : Topology.t;
  latency : Latency.t;
  mutable handlers : (src:Site.t -> 'req -> 'resp) Site.Map.t;
  circuits : (Site.t * Site.t, unit) Hashtbl.t; (* key is ordered pair (min,max) *)
  mutable drop_prob : float;
  mutable forced_failures : (Site.t * Site.t) list;
  mutable failure_observers : (Site.t -> Site.t -> unit) list;
  mutable error_resp : 'resp -> bool;
      (* classifies handler responses that signal an error, so that {!send}
         can count the ones it silently discards *)
  hot : hot_stats;
  tags : (string, tag_stats) Hashtbl.t;
  mutable untagged : tag_stats option;
      (* lazy: created on the first untagged call, so the "untagged"
         histograms don't appear in reports that never used them *)
}

let make_tag_stats ?(count_msg = true) stats tag =
  {
    ts_msg =
      (if count_msg then Some (Stats.counter stats ("net.msg." ^ tag)) else None);
    ts_latency = Stats.histogram stats ("rpc.latency." ^ tag);
    ts_bytes = Stats.histogram stats ("rpc.bytes." ^ tag);
    ts_retry = Stats.counter stats ("rpc.retry." ^ tag);
  }

let create engine topo latency =
  let stats = Engine.stats engine in
  {
    engine;
    topo;
    latency;
    handlers = Site.Map.empty;
    circuits = Hashtbl.create 64;
    drop_prob = 0.0;
    forced_failures = [];
    failure_observers = [];
    error_resp = (fun _ -> false);
    hot =
      {
        hs_msg = Stats.counter stats "net.msg";
        hs_bytes = Stats.counter stats "net.bytes";
        hs_send_err = Stats.counter stats "net.send.err";
        hs_circuit_open = Stats.counter stats "net.circuit.open";
        hs_circuit_close = Stats.counter stats "net.circuit.close";
        hs_rpc_call = Stats.counter stats "rpc.call";
        hs_rpc_send = Stats.counter stats "rpc.send";
        hs_rpc_retry = Stats.counter stats "rpc.retry";
        hs_rpc_recovered = Stats.counter stats "rpc.recovered";
        hs_rpc_fail = Stats.counter stats "rpc.fail";
      };
    tags = Hashtbl.create 64;
    untagged = None;
  }

let engine t = t.engine

let topology t = t.topo

let latency t = t.latency

let hot_stats t = t.hot

let tag_stats t tag =
  match Hashtbl.find_opt t.tags tag with
  | Some ts -> ts
  | None ->
    let ts = make_tag_stats (Engine.stats t.engine) tag in
    Hashtbl.add t.tags tag ts;
    ts

(* The untagged sentinel never counts a per-tag message (direct untagged
   [call]/[send] never did); it carries real "untagged" transport
   histograms because that is the default tag {!Rpc.call} reports under. *)
let untagged_ts t =
  match t.untagged with
  | Some ts -> ts
  | None ->
    let ts = make_tag_stats ~count_msg:false (Engine.stats t.engine) "untagged" in
    t.untagged <- Some ts;
    ts

let set_handler t site f = t.handlers <- Site.Map.add site f t.handlers

let set_error_classifier t f = t.error_resp <- f

let set_drop_probability t p = t.drop_prob <- p

let fail_next_message t ~src ~dst = t.forced_failures <- (src, dst) :: t.forced_failures

let on_circuit_failure t f = t.failure_observers <- f :: t.failure_observers

let circuit_key a b = if Site.compare a b <= 0 then (a, b) else (b, a)

let circuits_open t = Hashtbl.length t.circuits

let open_circuit t a b =
  let key = circuit_key a b in
  if not (Hashtbl.mem t.circuits key) then begin
    Hashtbl.add t.circuits key ();
    Stats.cincr t.hot.hs_circuit_open
  end

let close_circuit t ~observer ~peer =
  let key = circuit_key observer peer in
  if Hashtbl.mem t.circuits key then begin
    Hashtbl.remove t.circuits key;
    Stats.cincr t.hot.hs_circuit_close
  end;
  List.iter (fun f -> f observer peer) t.failure_observers

let handler_of t site =
  match Site.Map.find_opt site t.handlers with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Netsim: no handler registered for site %d" site)

(* Decide whether a single message from [src] to [dst] gets through, consuming
   any forced-failure directive. *)
let message_delivered t ~src ~dst =
  let forced =
    match t.forced_failures with
    | [] -> false
    | l ->
      let hit, rest = List.partition (fun (a, b) -> a = src && b = dst) l in
      (match hit with
      | [] -> false
      | _ :: dropped_rest ->
        t.forced_failures <- dropped_rest @ rest;
        true)
  in
  if forced then false
  else if not (Topology.reachable t.topo src dst) then false
  else if t.drop_prob > 0.0 && Sim.Rng.float (Engine.rng t.engine) 1.0 < t.drop_prob then false
  else true

let account t ~ts ~bytes =
  Stats.cincr t.hot.hs_msg;
  Stats.cadd t.hot.hs_bytes bytes;
  match ts.ts_msg with Some c -> Stats.cincr c | None -> ()

let call_tagged t ~ts ~src ~dst ~req_bytes ~resp_bytes req =
  if Site.equal src dst then begin
    Engine.charge t.engine t.latency.Latency.local_call;
    Ok ((handler_of t dst) ~src req)
  end
  else begin
    open_circuit t src dst;
    if not (message_delivered t ~src ~dst) then begin
      close_circuit t ~observer:src ~peer:dst;
      Error Request_lost
    end
    else begin
      account t ~ts ~bytes:req_bytes;
      Engine.charge t.engine (Latency.msg_cost t.latency ~bytes:req_bytes);
      let resp = (handler_of t dst) ~src req in
      if not (message_delivered t ~src:dst ~dst:src) then begin
        close_circuit t ~observer:src ~peer:dst;
        Error Reply_lost
      end
      else begin
        let rbytes = resp_bytes resp in
        account t ~ts ~bytes:rbytes;
        Engine.charge t.engine (Latency.msg_cost t.latency ~bytes:rbytes);
        Ok resp
      end
    end
  end

let call t ?tag ~src ~dst ~req_bytes ~resp_bytes req =
  let ts = match tag with Some tag -> tag_stats t tag | None -> untagged_ts t in
  call_tagged t ~ts ~src ~dst ~req_bytes ~resp_bytes req

(* Run a one-way message's handler, counting discarded error responses:
   {!send} has nobody to give them to. *)
let deliver_oneway t ~src ~dst req =
  let resp = (handler_of t dst) ~src req in
  if t.error_resp resp then Stats.cincr t.hot.hs_send_err

let send_tagged t ~ts ~src ~dst ~bytes req =
  if Site.equal src dst then
    Engine.schedule t.engine ~delay:t.latency.Latency.local_call (fun () ->
        deliver_oneway t ~src ~dst req)
  else begin
    open_circuit t src dst;
    account t ~ts ~bytes;
    let delay = Latency.msg_cost t.latency ~bytes in
    Engine.schedule t.engine ~delay (fun () ->
        if message_delivered t ~src ~dst then deliver_oneway t ~src ~dst req
        else close_circuit t ~observer:src ~peer:dst)
  end

let send t ?tag ~src ~dst ~bytes req =
  let ts = match tag with Some tag -> tag_stats t tag | None -> untagged_ts t in
  send_tagged t ~ts ~src ~dst ~bytes req

let messages_sent t = Stats.cget t.hot.hs_msg

let bytes_sent t = Stats.cget t.hot.hs_bytes
