module Engine = Sim.Engine
module Stats = Sim.Stats

type failure = Request_lost | Reply_lost

let pp_failure ppf = function
  | Request_lost -> Format.pp_print_string ppf "request-lost"
  | Reply_lost -> Format.pp_print_string ppf "reply-lost"

type ('req, 'resp) t = {
  engine : Engine.t;
  topo : Topology.t;
  latency : Latency.t;
  mutable handlers : (src:Site.t -> 'req -> 'resp) Site.Map.t;
  circuits : (Site.t * Site.t, unit) Hashtbl.t; (* key is ordered pair (min,max) *)
  mutable drop_prob : float;
  mutable forced_failures : (Site.t * Site.t) list;
  mutable failure_observers : (Site.t -> Site.t -> unit) list;
  mutable error_resp : 'resp -> bool;
      (* classifies handler responses that signal an error, so that {!send}
         can count the ones it silently discards *)
}

let create engine topo latency =
  {
    engine;
    topo;
    latency;
    handlers = Site.Map.empty;
    circuits = Hashtbl.create 64;
    drop_prob = 0.0;
    forced_failures = [];
    failure_observers = [];
    error_resp = (fun _ -> false);
  }

let engine t = t.engine

let topology t = t.topo

let latency t = t.latency

let set_handler t site f = t.handlers <- Site.Map.add site f t.handlers

let set_error_classifier t f = t.error_resp <- f

let set_drop_probability t p = t.drop_prob <- p

let fail_next_message t ~src ~dst = t.forced_failures <- (src, dst) :: t.forced_failures

let on_circuit_failure t f = t.failure_observers <- f :: t.failure_observers

let circuit_key a b = if Site.compare a b <= 0 then (a, b) else (b, a)

let circuits_open t = Hashtbl.length t.circuits

let open_circuit t a b =
  let key = circuit_key a b in
  if not (Hashtbl.mem t.circuits key) then begin
    Hashtbl.add t.circuits key ();
    Stats.incr (Engine.stats t.engine) "net.circuit.open"
  end

let close_circuit t ~observer ~peer =
  let key = circuit_key observer peer in
  if Hashtbl.mem t.circuits key then begin
    Hashtbl.remove t.circuits key;
    Stats.incr (Engine.stats t.engine) "net.circuit.close"
  end;
  List.iter (fun f -> f observer peer) t.failure_observers

let handler_of t site =
  match Site.Map.find_opt site t.handlers with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Netsim: no handler registered for site %d" site)

(* Decide whether a single message from [src] to [dst] gets through, consuming
   any forced-failure directive. *)
let message_delivered t ~src ~dst =
  let forced =
    match t.forced_failures with
    | [] -> false
    | l ->
      let hit, rest = List.partition (fun (a, b) -> a = src && b = dst) l in
      (match hit with
      | [] -> false
      | _ :: dropped_rest ->
        t.forced_failures <- dropped_rest @ rest;
        true)
  in
  if forced then false
  else if not (Topology.reachable t.topo src dst) then false
  else if t.drop_prob > 0.0 && Sim.Rng.float (Engine.rng t.engine) 1.0 < t.drop_prob then false
  else true

let account t ?tag ~bytes () =
  let stats = Engine.stats t.engine in
  Stats.incr stats "net.msg";
  Stats.add stats "net.bytes" bytes;
  match tag with
  | Some tag -> Stats.incr stats ("net.msg." ^ tag)
  | None -> ()

let call t ?tag ~src ~dst ~req_bytes ~resp_bytes req =
  if Site.equal src dst then begin
    Engine.charge t.engine t.latency.Latency.local_call;
    Ok ((handler_of t dst) ~src req)
  end
  else begin
    open_circuit t src dst;
    if not (message_delivered t ~src ~dst) then begin
      close_circuit t ~observer:src ~peer:dst;
      Error Request_lost
    end
    else begin
      account t ?tag ~bytes:req_bytes ();
      Engine.charge t.engine (Latency.msg_cost t.latency ~bytes:req_bytes);
      let resp = (handler_of t dst) ~src req in
      if not (message_delivered t ~src:dst ~dst:src) then begin
        close_circuit t ~observer:src ~peer:dst;
        Error Reply_lost
      end
      else begin
        let rbytes = resp_bytes resp in
        account t ?tag ~bytes:rbytes ();
        Engine.charge t.engine (Latency.msg_cost t.latency ~bytes:rbytes);
        Ok resp
      end
    end
  end

(* Run a one-way message's handler, counting discarded error responses:
   {!send} has nobody to give them to. *)
let deliver_oneway t ~src ~dst req =
  let resp = (handler_of t dst) ~src req in
  if t.error_resp resp then Stats.incr (Engine.stats t.engine) "net.send.err"

let send t ?tag ~src ~dst ~bytes req =
  if Site.equal src dst then
    Engine.schedule t.engine ~delay:t.latency.Latency.local_call (fun () ->
        deliver_oneway t ~src ~dst req)
  else begin
    open_circuit t src dst;
    account t ?tag ~bytes ();
    let delay = Latency.msg_cost t.latency ~bytes in
    Engine.schedule t.engine ~delay (fun () ->
        if message_delivered t ~src ~dst then deliver_oneway t ~src ~dst req
        else close_circuit t ~observer:src ~peer:dst)
  end

let messages_sent t = Stats.get (Engine.stats t.engine) "net.msg"

let bytes_sent t = Stats.get (Engine.stats t.engine) "net.bytes"
