module Engine = Sim.Engine
module Stats = Sim.Stats
module Trace = Sim.Trace

type rpc_error =
  | Unreachable of { src : Site.t; dst : Site.t; attempts : int }
  | Lost_reply of { src : Site.t; dst : Site.t; attempts : int }
  | Timeout of { src : Site.t; dst : Site.t; attempts : int; waited : float }

let pp_error ppf = function
  | Unreachable { src; dst; attempts } ->
    Format.fprintf ppf "site %a unreachable from %a (%d attempt%s)" Site.pp dst Site.pp src
      attempts
      (if attempts = 1 then "" else "s")
  | Lost_reply { src; dst; attempts } ->
    Format.fprintf ppf "reply lost from %a to %a (%d attempt%s)" Site.pp dst Site.pp src attempts
      (if attempts = 1 then "" else "s")
  | Timeout { src; dst; attempts; waited } ->
    Format.fprintf ppf "call to %a from %a timed out after %.1f ms (%d attempts)" Site.pp dst
      Site.pp src waited attempts

let error_attempts = function
  | Unreachable { attempts; _ } | Lost_reply { attempts; _ } | Timeout { attempts; _ } -> attempts

type policy = {
  max_attempts : int;
  backoff : float list;
  idempotent : bool;
  timeout : float;
}

let no_retry = { max_attempts = 1; backoff = []; idempotent = false; timeout = 0.0 }

let probe = { no_retry with idempotent = true }

let default_policy = { max_attempts = 3; backoff = [ 0.5; 2.0; 8.0 ]; idempotent = true; timeout = 0.0 }

(* Delay before retry number [n+1], after [n] failed attempts: last backoff
   entry repeats if the schedule is shorter than the attempt budget. *)
let backoff_delay policy n =
  match policy.backoff with
  | [] -> 0.0
  | l -> List.nth l (min (n - 1) (List.length l - 1))

let call net ?(policy = default_policy) ?(tag = "untagged") ~src ~dst ~req_bytes ~resp_bytes req =
  let engine = Netsim.engine net in
  let stats = Engine.stats engine in
  let trace = Engine.trace engine in
  (* One hash interns every per-tag handle; the fixed counters were
     resolved when the network was built. Nothing below hashes a name. *)
  let ts = Netsim.tag_stats net tag in
  let hot = Netsim.hot_stats net in
  Stats.cincr hot.Netsim.hs_rpc_call;
  let start = Engine.now engine in
  (* Span formatting is the costliest per-call allocation; skip it (and
     the span) entirely when the trace is off — flood-scale runs are. *)
  let span =
    if Trace.recording trace then
      Some
        (Trace.span_begin trace ~time:start ~tag:"rpc"
           (Format.asprintf "%s %a->%a" tag Site.pp src Site.pp dst))
    else None
  in
  let finish outcome result =
    let now = Engine.now engine in
    (match span with
    | Some span -> Trace.span_end trace ~time:now span outcome
    | None -> ());
    Stats.hobserve ts.Netsim.ts_latency (now -. start);
    result
  in
  let fail kind err =
    Stats.cincr hot.Netsim.hs_rpc_fail;
    Stats.incr stats ("rpc.fail." ^ kind);
    finish kind (Error err)
  in
  let rec attempt n =
    match Netsim.call_tagged net ~ts ~src ~dst ~req_bytes ~resp_bytes req with
    | Ok resp ->
      Stats.hobserve ts.Netsim.ts_bytes (float_of_int (req_bytes + resp_bytes resp));
      if n > 1 then Stats.cincr hot.Netsim.hs_rpc_recovered;
      finish "ok" (Ok resp)
    | Error failure ->
      if (not policy.idempotent) || n >= policy.max_attempts then
        match failure with
        | Netsim.Request_lost -> fail "unreachable" (Unreachable { src; dst; attempts = n })
        | Netsim.Reply_lost -> fail "lost_reply" (Lost_reply { src; dst; attempts = n })
      else begin
        let delay = backoff_delay policy n in
        let waited = Engine.now engine -. start in
        if policy.timeout > 0.0 && waited +. delay > policy.timeout then
          fail "timeout" (Timeout { src; dst; attempts = n; waited })
        else begin
          Stats.cincr hot.Netsim.hs_rpc_retry;
          Stats.cincr ts.Netsim.ts_retry;
          Engine.charge engine delay;
          attempt (n + 1)
        end
      end
  in
  attempt 1

let send net ?tag ~src ~dst ~bytes req =
  Stats.cincr (Netsim.hot_stats net).Netsim.hs_rpc_send;
  match tag with
  | Some tag -> Netsim.send_tagged net ~ts:(Netsim.tag_stats net tag) ~src ~dst ~bytes req
  | None -> Netsim.send net ~src ~dst ~bytes req
