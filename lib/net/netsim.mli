(** Kernel-to-kernel message layer.

    LOCUS uses specialized, minimal protocols: a remote service request is a
    single message and a single response, with no acknowledgements or flow
    control underneath (§2.3.3). We model that directly: {!call} is a
    synchronous request/response exchange that charges simulated time for
    both messages and runs the destination site's handler in between;
    {!send} is a one-way datagram (used for commit notifications and the
    reconfiguration polls).

    Virtual circuits (§5.1) connect pairs of sites, deliver in order, and
    are closed by any delivery failure; closure is reported to registered
    observers, which is how kernels detect that reconfiguration is needed.

    This module is deliberately dumb: one attempt, no recovery. Retry and
    backoff policy, typed transport errors, and per-call accounting live one
    layer up in {!Rpc}, which is what every kernel path goes through. *)

type ('req, 'resp) t

(** Why a single exchange failed. [Request_lost]: the request never reached
    the destination (site down, link down, or injected loss) — the handler
    did not run. [Reply_lost]: the handler ran (any side effect happened)
    but the response was lost on the way back. The distinction is what lets
    the transport layer retry idempotent calls safely and refuse to retry
    non-idempotent ones. *)
type failure = Request_lost | Reply_lost

val pp_failure : Format.formatter -> failure -> unit

val create : Sim.Engine.t -> Topology.t -> Latency.t -> ('req, 'resp) t

val engine : ('req, 'resp) t -> Sim.Engine.t

val topology : ('req, 'resp) t -> Topology.t

val latency : ('req, 'resp) t -> Latency.t

val set_handler : ('req, 'resp) t -> Site.t -> (src:Site.t -> 'req -> 'resp) -> unit
(** Install the kernel dispatch function for a site. *)

val set_error_classifier : ('req, 'resp) t -> ('resp -> bool) -> unit
(** Teach the layer which responses denote errors, so {!send} can count the
    error responses it silently discards (under ["net.send.err"]). Default:
    nothing is an error. *)

val call :
  ('req, 'resp) t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  req_bytes:int ->
  resp_bytes:('resp -> int) ->
  'req ->
  ('resp, failure) result
(** Synchronous exchange, one attempt. When [src = dst] this is a local
    procedure call: it charges only {!Latency.local_call}, counts no
    messages, and cannot fail. Otherwise it counts two messages (request
    and response) and charges their wire cost. On failure the circuit is
    closed (observers run) and the typed failure is returned. *)

val send :
  ('req, 'resp) t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  bytes:int ->
  'req ->
  unit
(** One-way datagram, delivered asynchronously via the engine queue. The
    handler's response is discarded; responses the error classifier flags
    are counted under ["net.send.err"]. Delivery is checked at delivery
    time; a failed delivery closes the circuit silently. *)

val set_drop_probability : ('req, 'resp) t -> float -> unit
(** Inject random message loss (checked per message). *)

val fail_next_message : ('req, 'resp) t -> src:Site.t -> dst:Site.t -> unit
(** Force exactly the next message from [src] to [dst] to be lost. *)

val on_circuit_failure : ('req, 'resp) t -> (Site.t -> Site.t -> unit) -> unit
(** [f observer peer] is called when a circuit fails; [observer] is the site
    that noticed. *)

val circuits_open : ('req, 'resp) t -> int

val messages_sent : ('req, 'resp) t -> int

val bytes_sent : ('req, 'resp) t -> int
