(** Kernel-to-kernel message layer.

    LOCUS uses specialized, minimal protocols: a remote service request is a
    single message and a single response, with no acknowledgements or flow
    control underneath (§2.3.3). We model that directly: {!call} is a
    synchronous request/response exchange that charges simulated time for
    both messages and runs the destination site's handler in between;
    {!send} is a one-way datagram (used for commit notifications and the
    reconfiguration polls).

    Virtual circuits (§5.1) connect pairs of sites, deliver in order, and
    are closed by any delivery failure; closure is reported to registered
    observers, which is how kernels detect that reconfiguration is needed.

    This module is deliberately dumb: one attempt, no recovery. Retry and
    backoff policy, typed transport errors, and per-call accounting live one
    layer up in {!Rpc}, which is what every kernel path goes through. *)

type ('req, 'resp) t

(** Why a single exchange failed. [Request_lost]: the request never reached
    the destination (site down, link down, or injected loss) — the handler
    did not run. [Reply_lost]: the handler ran (any side effect happened)
    but the response was lost on the way back. The distinction is what lets
    the transport layer retry idempotent calls safely and refuse to retry
    non-idempotent ones. *)
type failure = Request_lost | Reply_lost

val pp_failure : Format.formatter -> failure -> unit

val create : Sim.Engine.t -> Topology.t -> Latency.t -> ('req, 'resp) t

(** {1 Pre-resolved stat handles}

    Message accounting used to build counter names (["net.msg." ^ tag],
    ["rpc.latency." ^ tag], ...) on every message — a string allocation
    and hash per event on the delivery path. Tags form a small static set
    (one per protocol message class, {!Proto.req_tag}), so the network
    interns one handle record per tag and the fixed global counters once
    per network; {!Rpc} and the hot entry points below then update cells
    directly. *)

type tag_stats = {
  ts_msg : Sim.Stats.counter option;
      (** ["net.msg.<tag>"]; [None] on the untagged sentinel, which counts
          no per-tag messages (untagged calls never did) *)
  ts_latency : Sim.Stats.histogram;  (** ["rpc.latency.<tag>"] *)
  ts_bytes : Sim.Stats.histogram;    (** ["rpc.bytes.<tag>"] *)
  ts_retry : Sim.Stats.counter;      (** ["rpc.retry.<tag>"] *)
}

val tag_stats : ('req, 'resp) t -> string -> tag_stats
(** The interned handle record for a tag, created on first use. *)

type hot_stats = {
  hs_msg : Sim.Stats.counter;
  hs_bytes : Sim.Stats.counter;
  hs_send_err : Sim.Stats.counter;
  hs_circuit_open : Sim.Stats.counter;
  hs_circuit_close : Sim.Stats.counter;
  hs_rpc_call : Sim.Stats.counter;
  hs_rpc_send : Sim.Stats.counter;
  hs_rpc_retry : Sim.Stats.counter;
  hs_rpc_recovered : Sim.Stats.counter;
  hs_rpc_fail : Sim.Stats.counter;
}

val hot_stats : ('req, 'resp) t -> hot_stats
(** The transport stack's fixed counters, resolved at {!create}. *)

val engine : ('req, 'resp) t -> Sim.Engine.t

val topology : ('req, 'resp) t -> Topology.t

val latency : ('req, 'resp) t -> Latency.t

val set_handler : ('req, 'resp) t -> Site.t -> (src:Site.t -> 'req -> 'resp) -> unit
(** Install the kernel dispatch function for a site. *)

val set_error_classifier : ('req, 'resp) t -> ('resp -> bool) -> unit
(** Teach the layer which responses denote errors, so {!send} can count the
    error responses it silently discards (under ["net.send.err"]). Default:
    nothing is an error. *)

val call :
  ('req, 'resp) t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  req_bytes:int ->
  resp_bytes:('resp -> int) ->
  'req ->
  ('resp, failure) result
(** Synchronous exchange, one attempt. When [src = dst] this is a local
    procedure call: it charges only {!Latency.local_call}, counts no
    messages, and cannot fail. Otherwise it counts two messages (request
    and response) and charges their wire cost. On failure the circuit is
    closed (observers run) and the typed failure is returned. *)

val call_tagged :
  ('req, 'resp) t ->
  ts:tag_stats ->
  src:Site.t ->
  dst:Site.t ->
  req_bytes:int ->
  resp_bytes:('resp -> int) ->
  'req ->
  ('resp, failure) result
(** {!call} with the tag already resolved to its handles — the hash-free
    entry point {!Rpc.call} uses. *)

val send_tagged :
  ('req, 'resp) t ->
  ts:tag_stats ->
  src:Site.t ->
  dst:Site.t ->
  bytes:int ->
  'req ->
  unit
(** {!send} with the tag already resolved to its handles. *)

val send :
  ('req, 'resp) t ->
  ?tag:string ->
  src:Site.t ->
  dst:Site.t ->
  bytes:int ->
  'req ->
  unit
(** One-way datagram, delivered asynchronously via the engine queue. The
    handler's response is discarded; responses the error classifier flags
    are counted under ["net.send.err"]. Delivery is checked at delivery
    time; a failed delivery closes the circuit silently. *)

val set_drop_probability : ('req, 'resp) t -> float -> unit
(** Inject random message loss (checked per message). *)

val fail_next_message : ('req, 'resp) t -> src:Site.t -> dst:Site.t -> unit
(** Force exactly the next message from [src] to [dst] to be lost. *)

val on_circuit_failure : ('req, 'resp) t -> (Site.t -> Site.t -> unit) -> unit
(** [f observer peer] is called when a circuit fails; [observer] is the site
    that noticed. *)

val circuits_open : ('req, 'resp) t -> int

val messages_sent : ('req, 'resp) t -> int

val bytes_sent : ('req, 'resp) t -> int
