(** Flood: a million-user-scale synthetic traffic engine.

    Drives N simulated users — lightweight sessions (a home site that
    drifts under churn), multiplexed over the per-site kernels — through
    Zipfian-popularity open/read/close and edit/commit loops with
    create/unlink contention in hot directories. Per-operation latency is
    recorded in {!Sim.Stats} histograms via pre-resolved handles; the
    report carries p50/p95/p99 per op class plus the cache/lease/name hit
    rates the run achieved. Deterministic under [spec.seed].

    This is the harness scale claims get measured on (experiment E24):
    the op stream is production-shaped, the per-op cost is dominated by
    the simulated protocols, and the host-side cost per op is what the
    allocation-lean event core keeps small. *)

type spec = {
  users : int;        (** simulated users (sessions) *)
  files : int;        (** working-set size *)
  hot_dirs : int;     (** directories the working set spreads over *)
  ops : int;          (** operations to issue *)
  zipf_s : float;     (** popularity skew of files and hot dirs *)
  edit_pct : int;     (** % of ops that edit + commit *)
  dirop_pct : int;    (** % of ops that create/unlink in a hot dir *)
  churn_pct : int;    (** % chance per op that the acting user migrates *)
  ncopies : int;      (** replication factor of the working set *)
  settle_every : int; (** drain background events every k ops; 0 = only at end *)
  seed : int64;
}

val default_spec : spec
(** 1k users, 256 files over 8 hot dirs, 5k ops, s = 1.1, 10% edits,
    5% dirops, 1% churn. *)

type report = {
  fr_users : int;
  fr_ops : int;
  fr_reads : int;
  fr_edits : int;
  fr_dirops : int;
  fr_errors : int;     (** operations refused (conflict, busy, partition) *)
  fr_migrations : int; (** sessions re-homed by churn *)
  fr_events : int;     (** background events drained between op batches *)
  fr_sim_ms : float;   (** simulated time the flood occupied *)
  fr_read_lat : Sim.Stats.hist_summary;
  fr_edit_lat : Sim.Stats.hist_summary;
  fr_dirop_lat : Sim.Stats.hist_summary;
  fr_lease_hit : float; (** open-lease hit ratio over the run, 0..1 *)
  fr_cache_hit : float; (** US buffer-cache hit ratio over the run *)
  fr_name_hit : float;  (** name-cache hit ratio over the run *)
}

val pp_report : Format.formatter -> report -> unit

val read_hist : string
(** Histogram names the run observes per-op latency into
    (["flood.lat.read"] etc.), for report tables. *)

val edit_hist : string

val dirop_hist : string

val file_path : spec -> int -> string
(** Path of the working-set file with popularity rank [r]
    (["/flood/d<r mod hot_dirs>/f<r>"]). *)

val setup : World.t -> spec -> unit
(** Create the working set: [hot_dirs] directories under [/flood], the
    ranked files inside them, replicated [ncopies] wide; then settle. *)

val run : World.t -> spec -> report
(** Issue [spec.ops] operations. The latency histograms accumulate in the
    world's stats under fresh [flood.*] names — call once per world for
    clean percentiles. Raises [Failure] if a settle round livelocks. *)
