(** Synthetic workload generator.

    Models the production setting of the paper's §6 — a software-
    development community doing edits, builds (remote execution), reads
    and mail — as a seeded, deterministic stream of operations issued from
    random sites. Used by the benchmark harness (experiment E15) and
    available for soak tests. *)

type mix = {
  read : int;      (** weight of whole-file reads *)
  edit : int;      (** weight of whole-file overwrites (commit + propagate) *)
  exec : int;      (** weight of remote [run] of a build tool *)
  mail : int;      (** weight of mailbox deliveries *)
  namespace : int; (** weight of create/unlink churn *)
}

val default_mix : mix
(** Read-mostly, like the paper's environment: 60/20/10/5/5. *)

type spec = {
  mix : mix;
  n_files : int;        (** working-set size under /work *)
  ncopies : int;        (** replication factor for created files *)
  seed : int64;
}

val default_spec : spec

type report = {
  ops : int;
  reads : int;
  edits : int;
  execs : int;
  mails : int;
  creates : int;
  unlinks : int;
  errors : int; (** operations refused (partition, conflict, busy) *)
}

val pp_report : Format.formatter -> report -> unit

val setup : World.t -> spec -> unit
(** Create the working set: /work files, /bin/cc, /mail/root. *)

val file_path : int -> string
(** The path of working-set file [i] ("/work/f<i>") — exposed so fault
    injectors can target the same files the op stream edits. *)

type event =
  | Wrote of { site : int; path : string; body : string; ok : bool }
      (** A whole-file overwrite attempt. [ok = false] may still have
          committed (the commit can execute at the SS and the reply be
          lost), so a model checker must treat the body as possibly
          durable. *)
  | Dirop of { site : int; path : string }
      (** Create/unlink churn touched [path]. *)

type gen
(** A reusable operation generator: the seeded op stream plus running
    counters, stepped one operation at a time so a driver (the fault-soak
    harness) can interleave operations with fault injection. *)

val make_gen : ?observe:(event -> unit) -> spec -> gen

val gen_step : World.t -> gen -> unit
(** Issue exactly one operation from a random site (a no-op beyond the
    site draw if that site is down); errors are counted, not raised. *)

val gen_report : gen -> report

val run : World.t -> spec -> ops:int -> report
(** Issue [ops] operations from random sites (skipping crashed ones);
    errors are counted, not raised. Deterministic under [spec.seed].
    Equivalent to stepping a fresh {!gen} [ops] times then settling. *)
