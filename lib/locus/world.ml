(* World: build and drive a simulated LOCUS network.

   A world is one engine, one topology, one message layer, and one kernel
   per site, with the filegroups' packs distributed per configuration and
   the replicated state (mount table, site tables, CSS assignments) seeded
   consistently — the state a real installation reaches after boot. *)

module Engine = Sim.Engine
module Site = Net.Site
module Topology = Net.Topology
module Latency = Net.Latency
module Netsim = Net.Netsim
module Gfile = Catalog.Gfile
module Mount = Catalog.Mount
module Dir = Catalog.Dir
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Vvec = Vv.Version_vector
module K = Locus_core.Ktypes
module Kernel = Locus_core.Kernel
module Css = Locus_core.Css

type fg_spec = {
  fg : int;
  pack_sites : Site.t list; (* sites holding a physical container *)
  mount_path : string option; (* None for the root filegroup *)
}

type config = {
  n_sites : int;
  seed : int64;
  latency : Latency.t;
  kernel_config : K.config;
  machine_type : int -> string;
  filegroups : fg_spec list;
  shard_mounts : (string * int list) list;
      (* path -> member fgs: mount those filegroups as one sharded subtree
         at the path, spreading its CSS load (the fgs must appear in
         [filegroups] with [mount_path = None] aside from the root) *)
}

let default_config ?(n_sites = 5) () =
  {
    n_sites;
    seed = 0x10C05L;
    latency = Latency.default;
    kernel_config = K.default_config;
    machine_type = (fun _ -> "vax");
    filegroups =
      [ { fg = 0; pack_sites = List.init n_sites Fun.id; mount_path = None } ];
    shard_mounts = [];
  }

type t = {
  config : config;
  engine : Engine.t;
  topo : Topology.t;
  net : (Proto.req, Proto.resp) Netsim.t;
  mount : Mount.t;
  kernels : Kernel.t list;
  procs : (Site.t, K.proc) Hashtbl.t; (* one init process per site *)
}

let kernel t site =
  match List.find_opt (fun k -> Site.equal (Kernel.site k) site) t.kernels with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "World.kernel: no site %d" site)

let engine t = t.engine

let topology t = t.topo

let net t = t.net

let kernels t = t.kernels

let sites t = List.map Kernel.site t.kernels

let stats t = Engine.stats t.engine

let now t = Engine.now t.engine

(* The per-site init process; user code usually acts through it. *)
let proc t site =
  match Hashtbl.find_opt t.procs site with
  | Some p -> p
  | None ->
    let p = Locus_core.Process.create_process (kernel t site) ~uid:"root" in
    Hashtbl.add t.procs site p;
    p

(* Install a file directly into a pack at world-construction time (before
   any traffic), with a neutral version so all packs agree. *)
let preinstall_file pack ~ino ~ftype ~content =
  let inode = Inode.create ~ino ~ftype ~owner:"root" in
  Pack.install_inode pack inode;
  if String.length content > 0 then begin
    let session = Shadow.begin_modify pack ino in
    Shadow.set_contents session content;
    Shadow.commit session ~vv:Vvec.zero ~mtime:0.0
  end

let root_dir_content () =
  let dir = Dir.empty () in
  Dir.insert dir ~name:"." ~ino:Mount.root_ino ~stamp:0.0 ~origin:0;
  Dir.insert dir ~name:".." ~ino:Mount.root_ino ~stamp:0.0 ~origin:0;
  Dir.encode dir

let create ?(config = default_config ()) () =
  let engine = Engine.create ~seed:config.seed () in
  let topo = Topology.create ~n:config.n_sites in
  let net = Netsim.create engine topo config.latency in
  Netsim.set_error_classifier net (function Proto.R_err _ -> true | _ -> false);
  (* Shard members are mounted collectively via [shard_mounts], so they
     carry no mount path of their own; the root is the remaining pathless
     filegroup. *)
  let shard_member fg =
    List.exists (fun (_, fgs) -> List.mem fg fgs) config.shard_mounts
  in
  let root_spec =
    match
      List.find_opt
        (fun s -> s.mount_path = None && not (shard_member s.fg))
        config.filegroups
    with
    | Some s -> s
    | None -> invalid_arg "World.create: no root filegroup (mount_path = None)"
  in
  let mount = Mount.create ~root_fg:root_spec.fg in
  let all_sites = List.init config.n_sites Fun.id in
  let css_of spec =
    match K.place_css ~fg:spec.fg spec.pack_sites with
    | Some s -> s
    | None -> invalid_arg "World.create: filegroup with no pack sites"
  in
  let kernels =
    List.map
      (fun site ->
        let fg_table =
          List.map
            (fun spec ->
              {
                K.fg = spec.fg;
                css_site = css_of spec;
                pack_sites = List.sort Site.compare spec.pack_sites;
              })
            config.filegroups
        in
        let k =
          Kernel.create ~site ~machine_type:(config.machine_type site) ~engine ~net
            ~mount ~fg_table ~config:config.kernel_config ()
        in
        Kernel.set_site_table k all_sites;
        Recovery.Reconfig.install k;
        k)
      all_sites
  in
  let world = { config; engine; topo; net; mount; kernels; procs = Hashtbl.create 8 } in
  (* Create the physical containers; partition each filegroup's inode space
     across its packs (section 2.3.7). *)
  let ino_span = 100_000 in
  List.iter
    (fun spec ->
      List.iteri
        (fun pack_idx site ->
          let lo = 2 + (pack_idx * ino_span) in
          let hi = lo + ino_span - 1 in
          let pack = Pack.create ~fg:spec.fg ~pack_id:pack_idx ~ino_lo:lo ~ino_hi:hi () in
          preinstall_file pack ~ino:Mount.root_ino ~ftype:Inode.Directory
            ~content:(root_dir_content ());
          Kernel.add_pack (kernel world site) pack)
        (List.sort Site.compare spec.pack_sites))
    config.filegroups;
  (* Seed every CSS's version bookkeeping from the pack inventories. *)
  List.iter
    (fun spec ->
      let css = css_of spec in
      Recovery.Merge.rebuild_css (kernel world css) spec.fg ~members:all_sites)
    config.filegroups;
  world

(* Mount the non-root filegroups at their configured paths; call once after
   [create], when the mount-point directories exist (it creates them). *)
let mount_filegroups t =
  let point_gf spec_sites path =
    let k = kernel t (List.hd (List.sort Site.compare spec_sites)) in
    let p = proc t (Kernel.site k) in
    match Kernel.stat k p path with
    | _ ->
      Locus_core.Pathname.resolve_from k ~cwd:(Mount.root t.mount) ~context:[]
        ~follow_hidden:false path
    | exception K.Error (Proto.Enoent, _) -> Kernel.mkdir k p path
  in
  List.iter
    (fun spec ->
      match spec.mount_path with
      | None -> ()
      | Some path ->
        let gf = point_gf spec.pack_sites path in
        Mount.add t.mount ~mount_point:gf ~child_fg:spec.fg)
    t.config.filegroups;
  List.iter
    (fun (path, fgs) ->
      let gf = point_gf (sites t) path in
      Mount.add_sharded t.mount ~mount_point:gf ~shard_fgs:fgs)
    t.config.shard_mounts

(* Drain all background activity (propagation pulls, notifications). A round
   that exhausts the event budget aborts the drain with [`Limit] — a
   livelocked schedule (events rescheduling themselves forever) must be
   reported, not spun on. *)
let settle ?(limit = 200_000) t =
  let executed = ref 0 in
  let status = ref `Idle in
  let continue_ = ref true in
  while !continue_ do
    let n, st = Engine.run_until_idle ~limit t.engine in
    executed := !executed + n;
    if st = `Limit then begin
      status := `Limit;
      continue_ := false
    end
    else begin
      List.iter
        (fun k -> if k.K.alive then Locus_core.Propagation.drain k)
        t.kernels;
      if Engine.pending t.engine = 0 then continue_ := false
    end
  done;
  (!executed, !status)

(* ---- topology control ---- *)

(* Split the network into groups; each group runs the partition protocol
   (initiated by its lowest site) to agree on membership. *)
let partition t groups =
  Topology.partition t.topo groups;
  List.filter_map
    (fun group ->
      match List.sort Site.compare group with
      | [] -> None
      | initiator :: _ ->
        let k = kernel t initiator in
        if k.K.alive then Some (Recovery.Partition.run_active k) else None)
    groups

(* Heal the physical network and run the merge protocol + recovery. *)
let heal_and_merge ?policy t =
  Topology.heal t.topo;
  List.iter (fun k -> k.K.alive <- true) t.kernels;
  let initiator =
    match List.sort Site.compare (sites t) with s :: _ -> s | [] -> 0
  in
  let report =
    Recovery.Reconfig.run_merge_and_recover ?policy t.kernels ~initiator
  in
  ignore (settle t);
  report

let crash_site t site =
  Topology.set_site_up t.topo site false;
  Kernel.crash (kernel t site);
  Hashtbl.remove t.procs site

let restart_site t site =
  Topology.set_site_up t.topo site true;
  ignore (Kernel.restart (kernel t site))

(* Run the partition protocol from [initiator] after site failures. *)
let detect_failures t ~initiator =
  Recovery.Partition.run_active (kernel t initiator)
