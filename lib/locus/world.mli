(** World: build and drive a simulated LOCUS network.

    A world is one engine, one topology, one message layer, and one kernel
    per site, with the filegroups' physical containers distributed per
    configuration and the replicated state (mount table, site tables, CSS
    assignments) seeded consistently — the state a real installation
    reaches after boot. All runs are deterministic under the configured
    seed. *)

type fg_spec = {
  fg : int;
  pack_sites : Net.Site.t list; (** sites holding a physical container *)
  mount_path : string option;   (** [None] for the root filegroup *)
}

type config = {
  n_sites : int;
  seed : int64;
  latency : Net.Latency.t;
  kernel_config : Locus_core.Ktypes.config;
  machine_type : int -> string; (** cpu type per site (§2.4.1) *)
  filegroups : fg_spec list;
  shard_mounts : (string * int list) list;
      (** path -> member filegroups, mounted as one sharded subtree: names
          directly under the path are spread across the members (and hence
          across their CSSs) by a replicated hash. The member filegroups
          are listed in [filegroups] with [mount_path = None]. *)
}

val default_config : ?n_sites:int -> unit -> config
(** One root filegroup replicated at every site; all sites are VAXen. *)

type t

val create : ?config:config -> unit -> t

val mount_filegroups : t -> unit
(** Mount the non-root filegroups at their configured paths (creating the
    mount-point directories). Call once after {!create}. *)

(** {1 Access} *)

val kernel : t -> Net.Site.t -> Locus_core.Kernel.t

val kernels : t -> Locus_core.Kernel.t list

val proc : t -> Net.Site.t -> Locus_core.Ktypes.proc
(** The per-site init process (created on first use, uid "root"). *)

val sites : t -> Net.Site.t list

val engine : t -> Sim.Engine.t

val topology : t -> Net.Topology.t

val net : t -> (Proto.req, Proto.resp) Net.Netsim.t

val stats : t -> Sim.Stats.t

val now : t -> float
(** Simulated time, ms. *)

(** {1 Driving the simulation} *)

val settle : ?limit:int -> t -> int * [ `Idle | `Limit ]
(** Drain all background activity (notifications, propagation pulls).
    Returns the number of events executed, paired with [`Idle] on a clean
    drain or [`Limit] if any round exhausted its event budget (livelock). *)

(** {1 Topology control} *)

val partition : t -> Net.Site.t list list -> Recovery.Partition.report list
(** Split the physical network into groups; each group runs the partition
    protocol (initiated by its lowest site). *)

val heal_and_merge :
  ?policy:Recovery.Merge.timeout_policy ->
  t ->
  Recovery.Merge.report * (int * Recovery.Reconcile.report) list
(** Repair the network, run the merge protocol from the lowest site, then
    the recovery procedure (reconciliation + propagation). *)

val crash_site : t -> Net.Site.t -> unit
(** Power the site off: all volatile kernel state is lost; disks survive. *)

val restart_site : t -> Net.Site.t -> unit
(** Power the site back on (scavenges orphaned pages); run
    {!heal_and_merge} to rejoin it. *)

val detect_failures : t -> initiator:Net.Site.t -> Recovery.Partition.report
(** Run the partition protocol from [initiator] after failures. *)
