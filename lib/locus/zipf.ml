(* Zipfian sampler over ranks 0..n-1 by inverse-CDF lookup.

   The CDF is precomputed once (O(n)); each sample is one RNG draw plus a
   binary search (O(log n)) and allocates nothing — the flood generator
   draws from it millions of times. Rank r carries weight 1/(r+1)^s, so
   rank 0 is the most popular item; s = 0 degenerates to uniform. *)

module Rng = Sim.Rng

type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !acc
  done;
  let total = cdf.(n - 1) in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; s; cdf }

let n t = t.n

let s t = t.s

let pmf t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)

(* Smallest rank whose CDF exceeds the draw. The draw is in [0,1); the
   last CDF entry is 1.0, so the search cannot fall off the end. *)
let sample t rng =
  let u = Rng.float rng 1.0 in
  let cdf = t.cdf in
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if cdf.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo
