(* Flood: a production-shaped traffic engine for very large user counts.

   Where Workload models the paper's §6 software-development community at
   human scale (a dozen files, a handful of ops), Flood models the load a
   production installation serves: N simulated users — lightweight
   sessions, each just a home site that drifts under churn — multiplexed
   over the per-site kernels, running Zipfian-popularity open/read/close
   and edit/commit loops against a working set spread over hot
   directories, with create/unlink contention concentrated on the hottest
   directories. Per-operation latency lands in Sim.Stats histograms
   (p50/p95/p99 in the report) through pre-resolved handles, so the
   measurement itself stays off the allocator.

   Everything is deterministic under [spec.seed]: one Rng drives user
   choice, churn, popularity draws and op selection, so a flood run is a
   pure function of (world seed, spec). *)

module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Engine = Sim.Engine
module Stats = Sim.Stats
module Rng = Sim.Rng
module Inode = Storage.Inode

type spec = {
  users : int;       (* simulated users (sessions) *)
  files : int;       (* working-set size *)
  hot_dirs : int;    (* directories the working set spreads over *)
  ops : int;         (* operations to issue *)
  zipf_s : float;    (* popularity skew of files and hot dirs *)
  edit_pct : int;    (* % of ops that edit + commit *)
  dirop_pct : int;   (* % of ops that create/unlink in a hot dir *)
  churn_pct : int;   (* % chance per op that the acting user migrates *)
  ncopies : int;     (* replication factor of the working set *)
  settle_every : int;(* drain background events every k ops *)
  seed : int64;
}

let default_spec =
  {
    users = 1_000;
    files = 256;
    hot_dirs = 8;
    ops = 5_000;
    zipf_s = 1.1;
    edit_pct = 10;
    dirop_pct = 5;
    churn_pct = 1;
    ncopies = 2;
    settle_every = 250;
    seed = 0xF100DL;
  }

type report = {
  fr_users : int;
  fr_ops : int;
  fr_reads : int;
  fr_edits : int;
  fr_dirops : int;
  fr_errors : int;
  fr_migrations : int;
  fr_events : int;   (* background events drained between op batches *)
  fr_sim_ms : float; (* simulated time the flood occupied *)
  fr_read_lat : Stats.hist_summary;
  fr_edit_lat : Stats.hist_summary;
  fr_dirop_lat : Stats.hist_summary;
  fr_lease_hit : float; (* open-lease hit ratio over the run, 0..1 *)
  fr_cache_hit : float; (* US buffer-cache hit ratio over the run *)
  fr_name_hit : float;  (* name-cache hit ratio over the run *)
}

let pp_report ppf r =
  Format.fprintf ppf
    "users=%d ops=%d reads=%d edits=%d dirops=%d errors=%d migrations=%d \
     read.p50=%.2f read.p99=%.2f lease.hit=%.2f"
    r.fr_users r.fr_ops r.fr_reads r.fr_edits r.fr_dirops r.fr_errors
    r.fr_migrations r.fr_read_lat.Stats.p50 r.fr_read_lat.Stats.p99
    r.fr_lease_hit

(* Histogram names the run observes into; exposed for report tables. *)
let read_hist = "flood.lat.read"

let edit_hist = "flood.lat.edit"

let dirop_hist = "flood.lat.dirop"

let dir_path j = Printf.sprintf "/flood/d%d" j

(* File of popularity rank [r] lives in directory [r mod hot_dirs]: the
   hottest files spread across directories, and each directory's heat
   follows its hottest members. *)
let file_path spec r = Printf.sprintf "/flood/d%d/f%d" (r mod spec.hot_dirs) r

let setup w spec =
  if spec.hot_dirs <= 0 then invalid_arg "Flood.setup: hot_dirs must be positive";
  if spec.files <= 0 then invalid_arg "Flood.setup: files must be positive";
  if spec.users <= 0 then invalid_arg "Flood.setup: users must be positive";
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let saved = Kernel.get_ncopies p0 in
  Kernel.set_ncopies p0 (min spec.ncopies (List.length (World.sites w)));
  ignore (Kernel.mkdir k0 p0 "/flood");
  for j = 0 to spec.hot_dirs - 1 do
    ignore (Kernel.mkdir k0 p0 (dir_path j))
  done;
  let body = String.make 200 'z' in
  for r = 0 to spec.files - 1 do
    let path = file_path spec r in
    ignore (Kernel.creat k0 p0 path);
    Kernel.write_file k0 p0 path body
  done;
  Kernel.set_ncopies p0 saved;
  match World.settle w with
  | _, `Idle -> ()
  | _, `Limit -> failwith "Flood.setup: settle exhausted its event budget"

let ratio hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let run w spec =
  let engine = World.engine w in
  let stats = Engine.stats engine in
  let rng = Rng.create spec.seed in
  let n_sites = List.length (World.sites w) in
  let sites = Array.of_list (World.sites w) in
  (* A session is just a home site; churn re-homes it. *)
  let user_site = Array.init spec.users (fun u -> sites.(u mod n_sites)) in
  (* Paths are precomputed so the op loop never sprintf-allocates them. *)
  let paths = Array.init spec.files (fun r -> file_path spec r) in
  let file_zipf = Zipf.create ~n:spec.files ~s:spec.zipf_s in
  let dir_zipf = Zipf.create ~n:spec.hot_dirs ~s:spec.zipf_s in
  (* Churn-target paths for the contention op: 16 names per hot dir. *)
  let churn_paths =
    Array.init spec.hot_dirs (fun j ->
        Array.init 16 (fun i -> Printf.sprintf "%s/t%d" (dir_path j) i))
  in
  let h_read = Stats.histogram stats read_hist in
  let h_edit = Stats.histogram stats edit_hist in
  let h_dirop = Stats.histogram stats dirop_hist in
  let c_ops = Stats.counter stats "flood.ops" in
  let c_err = Stats.counter stats "flood.errors" in
  let snap = Stats.snapshot stats in
  let t_start = Engine.now engine in
  let reads = ref 0 and edits = ref 0 and dirops = ref 0 in
  let errors = ref 0 and migrations = ref 0 and events = ref 0 in
  let rev = ref 0 in
  let attempt f =
    match f () with
    | () -> true
    | exception K.Error _ ->
      incr errors;
      Stats.cincr c_err;
      false
  in
  let settle () =
    match World.settle w with
    | n, `Idle -> events := !events + n
    | _, `Limit -> failwith "Flood.run: settle exhausted its event budget"
  in
  for op = 1 to spec.ops do
    Stats.cincr c_ops;
    let u = Rng.int rng spec.users in
    if spec.churn_pct > 0 && Rng.int rng 100 < spec.churn_pct then begin
      user_site.(u) <- sites.(Rng.int rng n_sites);
      incr migrations
    end;
    let site = user_site.(u) in
    let k = World.kernel w site in
    if k.K.alive then begin
      let p = World.proc w site in
      let roll = Rng.int rng 100 in
      let t0 = Engine.now engine in
      if roll < spec.edit_pct then begin
        (* edit/commit loop: whole-file overwrite of a Zipf-hot file *)
        let r = Zipf.sample file_zipf rng in
        incr rev;
        let body = Printf.sprintf "u%d rev%d" u !rev in
        if attempt (fun () -> Kernel.write_file k p paths.(r) body) then begin
          incr edits;
          Stats.hobserve h_edit (Engine.now engine -. t0)
        end
      end
      else if roll < spec.edit_pct + spec.dirop_pct then begin
        (* hot-directory contention: create/unlink churn in a Zipf-hot dir *)
        let j = Zipf.sample dir_zipf rng in
        let name = churn_paths.(j).(Rng.int rng 16) in
        if
          attempt (fun () ->
              match Kernel.stat k p name with
              | _ -> Kernel.unlink k p name
              | exception K.Error (Proto.Enoent, _) -> ignore (Kernel.creat k p name))
        then begin
          incr dirops;
          Stats.hobserve h_dirop (Engine.now engine -. t0)
        end
      end
      else begin
        (* open/read/close of a Zipf-hot file *)
        let r = Zipf.sample file_zipf rng in
        if attempt (fun () -> ignore (Kernel.read_file k p paths.(r))) then begin
          incr reads;
          Stats.hobserve h_read (Engine.now engine -. t0)
        end
      end
    end;
    if spec.settle_every > 0 && op mod spec.settle_every = 0 then settle ()
  done;
  settle ();
  let d name = Stats.delta_of stats snap name in
  {
    fr_users = spec.users;
    fr_ops = spec.ops;
    fr_reads = !reads;
    fr_edits = !edits;
    fr_dirops = !dirops;
    fr_errors = !errors;
    fr_migrations = !migrations;
    fr_events = !events;
    fr_sim_ms = Engine.now engine -. t_start;
    fr_read_lat = Stats.hist_summary stats read_hist;
    fr_edit_lat = Stats.hist_summary stats edit_hist;
    fr_dirop_lat = Stats.hist_summary stats dirop_hist;
    fr_lease_hit = ratio (d "open.lease.hit") (d "open.lease.miss");
    fr_cache_hit = ratio (d "cache.us.hit") (d "cache.us.miss");
    fr_name_hit = ratio (d "name.cache.hit") (d "name.cache.miss");
  }
