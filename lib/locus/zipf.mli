(** Zipfian popularity sampler.

    Rank [r] (0-based) is drawn with probability proportional to
    [1/(r+1)^s]: rank 0 is the hottest item, and [s = 0] degenerates to a
    uniform distribution. The CDF is precomputed at {!create}; each
    {!sample} is one RNG draw plus a binary search and allocates nothing,
    so the flood workload can draw from it per operation. Deterministic:
    the sampled stream is a pure function of the {!Sim.Rng} state. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [0..n-1] with exponent
    [s]. Raises [Invalid_argument] when [n <= 0] or [s < 0]. *)

val n : t -> int

val s : t -> float

val sample : t -> Sim.Rng.t -> int
(** Draw one rank in [0..n-1]. *)

val pmf : t -> int -> float
(** Probability of a rank; nonincreasing in the rank by construction. *)
