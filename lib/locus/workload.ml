module Kernel = Locus_core.Kernel
module Process = Locus_core.Process
module K = Locus_core.Ktypes
module Rng = Sim.Rng
module Inode = Storage.Inode

type mix = { read : int; edit : int; exec : int; mail : int; namespace : int }

let default_mix = { read = 60; edit = 20; exec = 10; mail = 5; namespace = 5 }

type spec = { mix : mix; n_files : int; ncopies : int; seed : int64 }

let default_spec = { mix = default_mix; n_files = 12; ncopies = 3; seed = 0xBEEFL }

type report = {
  ops : int;
  reads : int;
  edits : int;
  execs : int;
  mails : int;
  creates : int;
  unlinks : int;
  errors : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "ops=%d reads=%d edits=%d execs=%d mails=%d creates=%d unlinks=%d errors=%d"
    r.ops r.reads r.edits r.execs r.mails r.creates r.unlinks r.errors

let file_path i = Printf.sprintf "/work/f%d" i

let setup w spec =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let saved = Kernel.get_ncopies p0 in
  Kernel.set_ncopies p0 (List.length (World.sites w));
  ignore (Kernel.mkdir k0 p0 "/work");
  ignore (Kernel.mkdir k0 p0 "/bin");
  ignore (Kernel.mkdir k0 p0 "/mail");
  Kernel.set_ncopies p0 spec.ncopies;
  ignore (Kernel.creat ~ftype:Inode.Mailbox k0 p0 "/mail/root");
  ignore (Kernel.creat k0 p0 "/bin/cc");
  Kernel.write_file k0 p0 "/bin/cc" (String.make 3000 'c');
  for i = 0 to spec.n_files - 1 do
    ignore (Kernel.creat k0 p0 (file_path i));
    Kernel.write_file k0 p0 (file_path i) "int main(){}"
  done;
  Kernel.set_ncopies p0 saved;
  ignore (World.settle w)

(* Weighted choice over the mix. *)
let pick_op rng (m : mix) =
  let total = m.read + m.edit + m.exec + m.mail + m.namespace in
  let v = Rng.int rng (max 1 total) in
  if v < m.read then `Read
  else if v < m.read + m.edit then `Edit
  else if v < m.read + m.edit + m.exec then `Exec
  else if v < m.read + m.edit + m.exec + m.mail then `Mail
  else `Namespace

(* What an op stream did to the tree, for callers (the soak harness) that
   maintain an external model. A [Wrote] with [ok = false] may still have
   committed — e.g. the commit executed at the SS but the reply was lost —
   so model checkers must treat its body as possibly durable. *)
type event =
  | Wrote of { site : int; path : string; body : string; ok : bool }
  | Dirop of { site : int; path : string }

(* A reusable operation generator: the seeded RNG plus running counters.
   [gen_step] issues exactly one operation, so a driver can interleave ops
   with fault injection while keeping the op stream deterministic. *)
type gen = {
  g_spec : spec;
  g_rng : Rng.t;
  g_observe : event -> unit;
  mutable g_report : report;
}

let make_gen ?(observe = fun _ -> ()) spec =
  {
    g_spec = spec;
    g_rng = Rng.create spec.seed;
    g_observe = observe;
    g_report =
      { ops = 0; reads = 0; edits = 0; execs = 0; mails = 0; creates = 0;
        unlinks = 0; errors = 0 };
  }

let gen_report g = g.g_report

let gen_step w g =
  let rng = g.g_rng and spec = g.g_spec in
  let n_sites = List.length (World.sites w) in
  let r = ref g.g_report in
  r := { !r with ops = !r.ops + 1 };
  let attempt f =
    match f () with () -> true | exception K.Error _ -> begin
      r := { !r with errors = !r.errors + 1 };
      false
    end
  in
  let site = Rng.int rng n_sites in
  let k = World.kernel w site in
  (if k.K.alive then begin
     let p = World.proc w site in
     let f = file_path (Rng.int rng (max 1 spec.n_files)) in
     match pick_op rng spec.mix with
     | `Read ->
       if attempt (fun () -> ignore (Kernel.read_file k p f)) then
         r := { !r with reads = !r.reads + 1 }
     | `Edit ->
       let body =
         Printf.sprintf "int main(){/* site %d, %d */}" site (Rng.int rng 100000)
       in
       let ok = attempt (fun () -> Kernel.write_file k p f body) in
       if ok then r := { !r with edits = !r.edits + 1 };
       g.g_observe (Wrote { site; path = f; body; ok })
     | `Exec ->
       if
         attempt (fun () ->
             Kernel.set_advice p (Some (Rng.int rng n_sites));
             let pid, at = Process.run k p "/bin/cc" in
             let child = Process.get_proc (World.kernel w at) pid in
             Process.exit_proc (World.kernel w at) child 0)
       then r := { !r with execs = !r.execs + 1 }
     | `Mail ->
       if
         attempt (fun () ->
             Kernel.mailbox_deliver k ~path:"/mail/root" ~from:"dev"
               ~body:(Printf.sprintf "build %d done" (Rng.int rng 1000)))
       then r := { !r with mails = !r.mails + 1 }
     | `Namespace ->
       let name = Printf.sprintf "/work/extra%d" (Rng.int rng 16) in
       if
         attempt (fun () ->
             match Kernel.stat k p name with
             | _ -> Kernel.unlink k p name
             | exception K.Error (Proto.Enoent, _) -> ignore (Kernel.creat k p name))
       then begin
         (* Count by what actually happened. *)
         match Kernel.stat k p name with
         | _ -> r := { !r with creates = !r.creates + 1 }
         | exception K.Error _ -> r := { !r with unlinks = !r.unlinks + 1 }
       end;
       g.g_observe (Dirop { site; path = name })
   end);
  g.g_report <- !r

let run w spec ~ops =
  let g = make_gen spec in
  for _ = 1 to ops do
    gen_step w g
  done;
  ignore (World.settle w);
  g.g_report
