(** LRU buffer cache.

    Used at a storage site to front disk-page reads and at a using site for
    pages fetched across the network (§2.3.3: "all such requests are
    serviced via kernel buffers"). Keys are caller-chosen; entries are
    whole pages. All operations are O(1) except {!invalidate_if} and
    {!clear} (a hashtable keyed on the entries plus an intrusive
    doubly-linked recency list). *)

type 'k t

val create : ?on_evict:('k -> unit) -> capacity:int -> unit -> 'k t
(** [on_evict] is called with the key of every entry dropped by capacity
    pressure (not by explicit invalidation) — the hook the kernel uses to
    export eviction counts. *)

val find : 'k t -> 'k -> Page.t option
(** Hit moves the entry to most-recently-used and returns a copy. Counts
    toward {!hits}/{!misses}. *)

val mem : 'k t -> 'k -> bool
(** Presence probe: no recency update, no counter update. Used where a
    lookup is bookkeeping (readahead dedup), not a demand access. *)

val insert : 'k t -> 'k -> Page.t -> unit
(** Insert (or refresh) a copy of the page, evicting the least recently
    used entry if over capacity. *)

val invalidate : 'k t -> 'k -> unit

val invalidate_if : 'k t -> notify:bool -> ('k -> bool) -> unit
(** Drop all entries whose key satisfies the predicate (e.g. every page of
    a file that just changed version). [~notify] selects whether each drop
    fires [on_evict] (the capacity {!evictions} counter is never bumped);
    coherence invalidations pass [false] so the eviction counters keep
    measuring capacity pressure only. O(n). *)

val clear : 'k t -> notify:bool -> unit

val length : 'k t -> int

val capacity : 'k t -> int

val keys_mru : 'k t -> 'k list
(** Keys in recency order, most recently used first (test/debug aid). *)

val hits : 'k t -> int

val misses : 'k t -> int

val evictions : 'k t -> int
(** Entries dropped by capacity pressure since creation. *)
