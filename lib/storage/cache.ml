(* LRU buffer cache: the generic O(1) recency-list core of {!Lru}
   instantiated at whole pages. [Page.copy] on the way in and out keeps
   the cache's buffers isolated from the caller's. *)

include Lru.Make (Page)
