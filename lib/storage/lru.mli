(** Generic O(1) LRU recency-list structure.

    A hashtable keyed on caller-chosen keys plus an intrusive doubly-linked
    recency list. {!Cache} (the buffer caches) and the kernel's pathname
    name cache are both instances of {!Make}; they differ only in the
    cached value type. All operations are O(1) except {!Make.filter_out} /
    {!Make.invalidate_if} and {!Make.clear}. *)

module type VALUE = sig
  type t

  val copy : t -> t
  (** Isolates the cache's copy of a value from the caller's (pages are
      mutable buffers); the identity for immutable values. *)
end

module Make (V : VALUE) : sig
  type 'k t

  val create : ?on_evict:('k -> unit) -> capacity:int -> unit -> 'k t
  (** [on_evict] is called with the key of every entry dropped by capacity
      pressure (not by explicit invalidation). Raises [Invalid_argument]
      on non-positive capacity. *)

  val find : 'k t -> 'k -> V.t option
  (** Hit moves the entry to most-recently-used and returns a copy. Counts
      toward {!hits}/{!misses}. *)

  val mem : 'k t -> 'k -> bool
  (** Presence probe: no recency update, no counter update. *)

  val insert : 'k t -> 'k -> V.t -> unit
  (** Insert (or refresh) a copy of the value, evicting the least recently
      used entry if over capacity. *)

  val invalidate : 'k t -> 'k -> unit

  val filter_out : 'k t -> notify:bool -> ('k -> V.t -> bool) -> int
  (** Drop all entries satisfying the predicate; returns how many were
      dropped (for invalidation accounting). With [~notify:true] every
      dropped key fires [on_evict] (the capacity {!evictions} counter is
      not bumped); with [~notify:false] the drop is silent. Callers whose
      [on_evict] hook carries a liveness obligation (e.g. a deferred close)
      must pick the policy explicitly — a silent scrub leaks it. O(n). *)

  val invalidate_if : 'k t -> notify:bool -> ('k -> bool) -> unit
  (** {!filter_out} on the key alone, discarding the count. O(n). *)

  val clear : 'k t -> notify:bool -> unit
  (** Drop everything; [~notify:true] fires [on_evict] per entry, LRU
      first. *)

  val length : 'k t -> int

  val capacity : 'k t -> int

  val keys_mru : 'k t -> 'k list
  (** Keys in recency order, most recently used first (test/debug aid). *)

  val hits : 'k t -> int

  val misses : 'k t -> int

  val evictions : 'k t -> int
  (** Entries dropped by capacity pressure since creation. *)
end
