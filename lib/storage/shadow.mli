(** Shadow-page file modification (§2.3.6).

    All changes to a file between two commit points go to freshly allocated
    *shadow* pages; the old pages and the old disk inode stay intact. The
    atomic commit operation is exactly "moving the incore inode information
    to the disk inode": one inode-table replacement. Abort simply discards
    the incore inode and frees the shadow pages. A crash at any moment
    before the switch leaves the previous file version fully intact (the
    only damage is orphaned pages, reclaimed by {!Pack.scavenge}). *)

type t

val begin_modify : Pack.t -> int -> t
(** Start a modification session on an existing inode. Raises [Not_found]
    if the pack does not store it. *)

val incore : t -> Inode.t
(** The incore inode being built; metadata fields may be mutated freely. *)

val pack : t -> Pack.t

val read_page : t -> int -> Page.t
(** Read logical page as currently visible inside the session (shadow pages
    included). *)

val write_page : t -> lpage:int -> Page.t -> unit
(** Whole-page change: filled into a shadow page with no extra read. On the
    second and later writes to the same logical page the shadow page is
    reused in place, as in the paper. Grows [size] if the write extends the
    file. *)

val patch_page : t -> lpage:int -> off:int -> string -> unit
(** Partial-page change: the old page is read, the changed bytes entered,
    and the result written to the shadow page. *)

val set_contents : t -> string -> unit
(** Replace the whole file body (the common Unix whole-file overwrite). *)

val truncate : t -> int -> unit
(** Shrink the file to [size] bytes, releasing pages past the end (old
    pages on commit, uncommitted shadow pages immediately). Growing is a
    no-op. *)

val set_size : t -> int -> unit
(** Set the size outright: shrinking truncates, growing extends (the new
    pages read as zeroes until written — sparse-file semantics). Used by
    propagation to make a pulled copy's size match the source exactly. *)

val mark_deleted : t -> time:float -> unit
(** Record a delete in the incore inode (delete is a commit of a deleted
    inode, §2.3.7). *)

val modified_lpages : t -> int list
(** Logical pages changed so far, ascending — sent with commit
    notifications so other storage sites can propagate just the changes.
    Includes pages released by truncation: they changed too (to zeroes),
    and omitting them would leave stale tails at incremental pullers. *)

val commit : t -> vv:Vv.Version_vector.t -> mtime:float -> unit
(** Atomically publish: write the (new) indirect page, stamp the incore
    inode with [vv] and [mtime], switch the inode-table entry, then free
    the replaced pages. The session must not be used afterwards. *)

val crash_before_switch : t -> unit
(** Simulate a crash after shadow pages are on disk but before the inode
    switch: the session is lost, the old version remains, shadow pages
    leak until scavenged. *)

val abort : t -> unit
(** Undo all changes back to the previous commit point: free shadow pages,
    discard the incore inode. *)
