type slot = { old_addr : int; fresh_addr : int }

type t = {
  pack : Pack.t;
  ino : int;
  incore : Inode.t;
  table : int array; (* current logical->physical map, shadows included *)
  had_indirect : int; (* old indirect page address, 0 if none *)
  shadows : (int, slot) Hashtbl.t; (* lpage -> slot *)
  mutable truncated_old : int list; (* old addrs to free on commit *)
  dropped : (int, unit) Hashtbl.t;
  (* lpages released by truncation: they changed too (to holes/zeroes), so
     commit notifications must list them or a shrunk-then-regrown file
     would keep stale tail pages at sites pulling just the changes *)
  mutable finished : bool;
}

let begin_modify pack ino =
  let base = Pack.get_inode pack ino in
  {
    pack;
    ino;
    incore = Inode.clone base;
    table = Pack.load_table pack base;
    had_indirect = base.Inode.indirect;
    shadows = Hashtbl.create 16;
    truncated_old = [];
    dropped = Hashtbl.create 8;
    finished = false;
  }

let incore t = t.incore

let pack t = t.pack

let check_active t = if t.finished then invalid_arg "Shadow: session already finished"

let check_lpage lpage =
  if lpage < 0 || lpage >= Inode.max_pages then
    invalid_arg "Shadow: logical page out of range"

let disk t = Pack.disk t.pack

let read_page t lpage =
  check_active t;
  check_lpage lpage;
  let addr = t.table.(lpage) in
  if addr = 0 then Page.blank () else Disk.read (disk t) addr

(* Ensure lpage has a shadow page; returns its address. After the first
   modification the shadow page is reused in place (section 2.3.6). *)
let shadow_addr t lpage =
  match Hashtbl.find_opt t.shadows lpage with
  | Some slot -> slot.fresh_addr
  | None ->
    let fresh = Disk.alloc (disk t) in
    Hashtbl.add t.shadows lpage { old_addr = t.table.(lpage); fresh_addr = fresh };
    t.table.(lpage) <- fresh;
    fresh

let grow_size t lpage =
  let wanted = (lpage + 1) * Page.size in
  if t.incore.Inode.size < wanted then t.incore.Inode.size <- wanted

let write_page t ~lpage page =
  check_active t;
  check_lpage lpage;
  let addr = shadow_addr t lpage in
  Disk.write (disk t) addr page;
  grow_size t lpage

let patch_page t ~lpage ~off data =
  check_active t;
  check_lpage lpage;
  if off < 0 || off + String.length data > Page.size then
    invalid_arg "Shadow.patch_page: out of page bounds";
  let page = read_page t lpage in
  Page.blit_string data page off;
  let addr = shadow_addr t lpage in
  Disk.write (disk t) addr page;
  let wanted = (lpage * Page.size) + off + String.length data in
  if t.incore.Inode.size < wanted then t.incore.Inode.size <- wanted

let truncate_page t lpage =
  (match Hashtbl.find_opt t.shadows lpage with
  | Some slot ->
    (* Uncommitted shadow page: free it now; the old page goes on commit. *)
    Disk.free (disk t) slot.fresh_addr;
    if slot.old_addr <> 0 then t.truncated_old <- slot.old_addr :: t.truncated_old;
    Hashtbl.remove t.shadows lpage
  | None ->
    if t.table.(lpage) <> 0 then t.truncated_old <- t.table.(lpage) :: t.truncated_old);
  t.table.(lpage) <- 0;
  Hashtbl.replace t.dropped lpage ()

let set_contents t body =
  check_active t;
  let len = String.length body in
  let new_npages = (len + Page.size - 1) / Page.size in
  if new_npages > Inode.max_pages then invalid_arg "Shadow.set_contents: file too large";
  for lpage = 0 to new_npages - 1 do
    let off = lpage * Page.size in
    let chunk = String.sub body off (min Page.size (len - off)) in
    write_page t ~lpage (Page.of_string chunk)
  done;
  let old_npages = (t.incore.Inode.size + Page.size - 1) / Page.size in
  for lpage = new_npages to old_npages - 1 do
    truncate_page t lpage
  done;
  t.incore.Inode.size <- len

let truncate t size =
  check_active t;
  if size < 0 then invalid_arg "Shadow.truncate: negative size";
  if size < t.incore.Inode.size then begin
    let new_npages = (size + Page.size - 1) / Page.size in
    let old_npages = (t.incore.Inode.size + Page.size - 1) / Page.size in
    for lpage = new_npages to old_npages - 1 do
      truncate_page t lpage
    done;
    (* Zero the tail of a partial last page so that a later extension reads
       zeroes, as Unix semantics require. *)
    let tail_off = size mod Page.size in
    if tail_off > 0 then begin
      let lpage = size / Page.size in
      if t.table.(lpage) <> 0 then begin
        let page = read_page t lpage in
        Page.blit_string (String.make (Page.size - tail_off) '\000') page tail_off;
        let addr = shadow_addr t lpage in
        Disk.write (disk t) addr page
      end
    end;
    t.incore.Inode.size <- size
  end

(* Set the session's size outright: shrinking truncates (releasing tail
   pages), growing just extends — the new pages read as zeroes until
   written, Unix sparse-file semantics. *)
let set_size t size =
  check_active t;
  if size < 0 then invalid_arg "Shadow.set_size: negative size";
  if size < t.incore.Inode.size then truncate t size
  else if size > t.incore.Inode.size then begin
    if (size + Page.size - 1) / Page.size > Inode.max_pages then
      invalid_arg "Shadow.set_size: file too large";
    t.incore.Inode.size <- size
  end

let mark_deleted t ~time =
  check_active t;
  t.incore.Inode.deleted <- true;
  t.incore.Inode.delete_time <- time

let modified_lpages t =
  let acc = Hashtbl.fold (fun lpage _ acc -> lpage :: acc) t.shadows [] in
  let acc = Hashtbl.fold (fun lpage () acc -> lpage :: acc) t.dropped acc in
  List.sort_uniq Int.compare acc

let needs_indirect t =
  let rec check i = i < Inode.max_pages && (t.table.(i) <> 0 || check (i + 1)) in
  check Inode.n_direct

(* Write shadow pages' bookkeeping to disk: the new indirect page if one is
   needed. Returns the new indirect address (0 for none). *)
let prepare_indirect t =
  if needs_indirect t then begin
    let tail = Array.sub t.table Inode.n_direct Inode.indirect_capacity in
    Pack.write_indirect t.pack tail
  end
  else 0

let commit t ~vv ~mtime =
  check_active t;
  let new_indirect = prepare_indirect t in
  Array.blit t.table 0 t.incore.Inode.direct 0 Inode.n_direct;
  t.incore.Inode.indirect <- new_indirect;
  t.incore.Inode.vv <- vv;
  t.incore.Inode.mtime <- mtime;
  (* The atomic step: replace the disk inode with the incore inode. *)
  Pack.install_inode t.pack t.incore;
  (* Now reclaim the superseded pages. *)
  Hashtbl.iter
    (fun _ slot -> if slot.old_addr <> 0 then Disk.free (disk t) slot.old_addr)
    t.shadows;
  List.iter (fun addr -> Disk.free (disk t) addr) t.truncated_old;
  if t.had_indirect <> 0 then Disk.free (disk t) t.had_indirect;
  t.finished <- true

let crash_before_switch t =
  check_active t;
  ignore (prepare_indirect t);
  (* Nothing else: the new pages are unreachable from the inode table. *)
  t.finished <- true

let abort t =
  check_active t;
  Hashtbl.iter (fun _ slot -> Disk.free (disk t) slot.fresh_addr) t.shadows;
  Hashtbl.reset t.shadows;
  t.finished <- true
