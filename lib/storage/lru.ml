(* O(1) LRU: a hashtable from key to list node plus an intrusive doubly
   linked recency list (head = most recent, tail = next eviction victim).
   Every operation except [filter_out]/[invalidate_if] and [clear] is
   constant time.

   The recency-list core is generic over the cached value: the buffer
   caches ({!Cache}, holding pages) and the pathname name cache (holding
   directory links) are both instances. [V.copy] isolates the cache's copy
   of a value from the caller's — identity for immutable values. *)

module type VALUE = sig
  type t

  val copy : t -> t
end

module Make (V : VALUE) = struct
  type 'k node = {
    n_key : 'k;
    mutable n_value : V.t;
    mutable n_prev : 'k node option;
    mutable n_next : 'k node option;
  }

  type 'k t = {
    capacity : int;
    table : ('k, 'k node) Hashtbl.t;
    mutable head : 'k node option; (* most recently used *)
    mutable tail : 'k node option; (* least recently used *)
    on_evict : 'k -> unit;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?(on_evict = fun _ -> ()) ~capacity () =
    if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
    {
      capacity;
      table = Hashtbl.create capacity;
      head = None;
      tail = None;
      on_evict;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let unlink t n =
    (match n.n_prev with
    | Some p -> p.n_next <- n.n_next
    | None -> t.head <- n.n_next);
    (match n.n_next with
    | Some s -> s.n_prev <- n.n_prev
    | None -> t.tail <- n.n_prev);
    n.n_prev <- None;
    n.n_next <- None

  let push_front t n =
    n.n_prev <- None;
    n.n_next <- t.head;
    (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let touch t n =
    match t.head with
    | Some h when h == n -> ()
    | Some _ | None ->
      unlink t n;
      push_front t n

  let find t key =
    match Hashtbl.find_opt t.table key with
    | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some (V.copy n.n_value)
    | None ->
      t.misses <- t.misses + 1;
      None

  let mem t key = Hashtbl.mem t.table key

  let remove_node t n =
    unlink t n;
    Hashtbl.remove t.table n.n_key

  let insert t key value =
    match Hashtbl.find_opt t.table key with
    | Some n ->
      n.n_value <- V.copy value;
      touch t n
    | None ->
      let n = { n_key = key; n_value = V.copy value; n_prev = None; n_next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      while Hashtbl.length t.table > t.capacity do
        match t.tail with
        | Some victim ->
          remove_node t victim;
          t.evictions <- t.evictions + 1;
          t.on_evict victim.n_key
        | None -> Hashtbl.reset t.table (* unreachable: list mirrors the table *)
      done

  let invalidate t key =
    match Hashtbl.find_opt t.table key with
    | Some n -> remove_node t n
    | None -> ()

  (* Bulk removals take an explicit [~notify] policy: with [~notify:true]
     each dropped key fires [on_evict] (without bumping the capacity-pressure
     [evictions] counter); with [~notify:false] entries vanish silently.
     Callers whose eviction hook carries a liveness obligation (the open-lease
     cache sends deferred closes from it) must choose deliberately — a silent
     scrub of such a cache leaks the obligation. *)
  let filter_out t ~notify pred =
    let victims =
      Hashtbl.fold
        (fun key n acc -> if pred key n.n_value then n :: acc else acc)
        t.table []
    in
    List.iter (remove_node t) victims;
    if notify then List.iter (fun n -> t.on_evict n.n_key) victims;
    List.length victims

  let invalidate_if t ~notify pred =
    ignore (filter_out t ~notify (fun key _ -> pred key))

  let clear t ~notify =
    let victims =
      if notify then
        (* LRU-first, matching the order capacity pressure would use. *)
        let rec go acc = function
          | None -> acc
          | Some n -> go (n.n_key :: acc) n.n_next
        in
        go [] t.head
      else []
    in
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None;
    List.iter t.on_evict victims

  let length t = Hashtbl.length t.table

  let capacity t = t.capacity

  let keys_mru t =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go (n.n_key :: acc) n.n_next
    in
    go [] t.head

  let hits t = t.hits

  let misses t = t.misses

  let evictions t = t.evictions
end
