open Locus_core.Ktypes
module Site = Net.Site

type stage = Idle | Partition_polling | Partition_announce | Merging

let stage_of_int = function
  | 1 -> Partition_polling
  | 2 -> Partition_announce
  | 3 -> Merging
  | _ -> Idle

let stage_to_int = function
  | Idle -> 0
  | Partition_polling -> 1
  | Partition_announce -> 2
  | Merging -> 3

(* "A site can wait only for those sites who are executing a portion of
   the protocol that precedes its own. If the two sites are in the same
   state, the ordering is by site number." *)
let may_wait_for ~my_stage ~my_site ~their_stage ~their_site =
  let mine = stage_to_int my_stage and theirs = stage_to_int their_stage in
  theirs < mine || (theirs = mine && Site.compare their_site my_site < 0)

let check_peer k peer =
  match rpc_result k peer (Proto.Status_check { asker = k.site }) with
  | Ok (Proto.R_status { stage; site = _ }) ->
    let my_stage = stage_of_int k.recon_stage in
    let their_stage = stage_of_int stage in
    if
      may_wait_for ~my_stage ~my_site:k.site ~their_stage ~their_site:peer
    then `Wait
    else `Proceed
  | Ok _ | Stdlib.Error _ -> `Restart
