(* Reconciliation after merge (section 4).

   The version-vector comparison of [PARK 83] classifies each file's copies
   within the new partition: equal (nothing to do), dominated (schedule
   update propagation), or concurrent (conflicting updates during
   partition). For conflicts the system applies the type-specific merge —
   directories by the rules of section 4.4, mailboxes by section 4.5 —
   and reports untyped conflicts to the owner by electronic mail, leaving
   the file marked so that normal access fails until resolved (4.6). *)

open Locus_core.Ktypes
module Kernel = Locus_core.Kernel
module Css = Locus_core.Css
module Inode = Storage.Inode
module Page = Storage.Page
module Dir = Catalog.Dir
module Mbox = Catalog.Mailbox
module Site = Net.Site

type report = {
  mutable files_checked : int;
  mutable propagations : int;   (* stale copies scheduled for update propagation *)
  mutable dir_merges : int;
  mutable mail_merges : int;
  mutable manager_merges : int; (* resolved by a registered type manager (4.3) *)
  mutable conflicts_marked : int;
  mutable name_conflicts : int;
  mutable deletes_undone : int;
  mutable saved_from_delete : int;
  mutable mails_sent : int;
}

let empty_report () =
  {
    files_checked = 0;
    propagations = 0;
    dir_merges = 0;
    mail_merges = 0;
    manager_merges = 0;
    conflicts_marked = 0;
    name_conflicts = 0;
    deletes_undone = 0;
    saved_from_delete = 0;
    mails_sent = 0;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "checked=%d propagated=%d dir-merges=%d mail-merges=%d manager-merges=%d \
     conflicts=%d name-conflicts=%d deletes-undone=%d saved=%d mails=%d"
    r.files_checked r.propagations r.dir_merges r.mail_merges r.manager_merges
    r.conflicts_marked r.name_conflicts r.deletes_undone r.saved_from_delete
    r.mails_sent

(* ---- pluggable type-specific reconciliation (section 4.3) ----

   "If the system is not responsible for a given file type, it reflects
   the problem up to a higher level; to a recovery/merge manager if one
   exists for the given file type." Managers take the divergent contents
   (one per distinct version) and return the merged contents. *)

let merge_managers : (Storage.Inode.ftype, string list -> string) Hashtbl.t =
  Hashtbl.create 4

let register_merge_manager ftype f = Hashtbl.replace merge_managers ftype f

let unregister_merge_manager ftype = Hashtbl.remove merge_managers ftype

let merge_manager_for ftype = Hashtbl.find_opt merge_managers ftype

(* ---- copy access ---- *)

let fetch_info k site gf =
  match rpc_result k site (Proto.Stat_req { gf }) with
  | Ok (Proto.R_stat { info = Some info; _ }) -> Some info
  | Ok (Proto.R_stat { info = None; _ } | Proto.R_err _) -> None
  | Ok _ -> None
  | Stdlib.Error _ -> None

let fetch_content k site gf (info : Proto.inode_info) =
  let buf = Buffer.create info.Proto.i_size in
  let npages = (info.Proto.i_size + Page.size - 1) / Page.size in
  let ok = ref true in
  for lpage = 0 to npages - 1 do
    match rpc_result k site (Proto.Read_page { gf; lpage; guess = 0 }) with
    | Ok (Proto.R_page { data; _ }) -> Buffer.add_string buf data
    | Ok _ | Stdlib.Error _ -> ok := false
  done;
  if !ok then Some (Buffer.contents buf) else None

(* Push merged contents to [target] and commit with the exact merged
   version vector; then tell the other storing sites to pull. *)
let write_version k ~target gf ~content ~vv ~others =
  let push () =
    expect_ok (rpc k target (Proto.Truncate_req { gf; size = 0 }));
    let len = String.length content in
    let rec loop off lpage =
      if off < len then begin
        let n = min Page.size (len - off) in
        expect_ok
          (rpc k target
             (Proto.Write_page
                {
                  gf;
                  lpage;
                  whole = n = Page.size;
                  off = 0;
                  data = String.sub content off n;
                }));
        loop (off + n) (lpage + 1)
      end
    in
    loop 0 0;
    match
      rpc k target
        (Proto.Commit_req
           { gf; us = k.site; abort = false; delete = false; force_vv = Some vv; stripes = [] })
    with
    | Proto.R_committed _ ->
      List.iter
        (fun s ->
          if not (Site.equal s target) then
            notify k s
              (Proto.Commit_notify
                 {
                   gf;
                   vv;
                   meta_only = false;
                   modified = [];
                   origin = target;
                   fresh = true;
                   deleted = false;
                   designate = true;
                   replicas = [];
                 }))
        others;
      true
    | Proto.R_err _ | _ -> false
  in
  try push () with Error (Proto.Enet, _) -> false

(* ---- version classification ---- *)

(* Copies within the current partition, one representative site per
   distinct version. *)
let partition_copies k f =
  Site.Map.fold
    (fun site vv acc ->
      if in_partition k site then
        if List.exists (fun (_, v) -> Vvec.equal v vv) acc then acc
        else (site, vv) :: acc
      else acc)
    f.site_vv []

let maximal_versions copies =
  List.filter
    (fun (_, vv) ->
      not
        (List.exists
           (fun (_, other) ->
             (not (Vvec.equal vv other)) && Vvec.dominates_or_equal other vv)
           copies))
    copies

(* Schedule update propagation at every in-partition site whose copy is
   dominated by [vv]. *)
let schedule_propagation k gf ~vv ~origin f report =
  Site.Map.iter
    (fun site copy_vv ->
      if
        in_partition k site
        && (not (Vvec.equal copy_vv vv))
        && not (Site.equal site origin)
      then begin
        report.propagations <- report.propagations + 1;
        notify k site
          (Proto.Commit_notify
             {
               gf;
               vv;
               meta_only = false;
               modified = [];
               origin;
               fresh = true;
               deleted = false;
               designate = true;
               replicas = [];
             })
      end)
    f.site_vv

(* ---- notification by electronic mail (section 4.6) ---- *)

let notify_owner k ~owner ~subject report =
  let path = "/mail/" ^ owner in
  match Kernel.mailbox_deliver k ~path ~from:"recovery" ~body:subject with
  | () -> report.mails_sent <- report.mails_sent + 1
  | exception Error _ -> ()

(* ---- directory merge (section 4.4) ---- *)

(* Has the file been modified since [since]? Interrogates the inode at any
   in-partition site storing it (rules 2b/2d). *)
let modified_since k fg ino ~since =
  match Css.find_file k fg ino with
  | None -> false
  | Some f ->
    Site.Map.exists
      (fun site _ ->
        in_partition k site
        &&
        match fetch_info k site (Gfile.make ~fg ~ino) with
        | Some info -> (not info.Proto.i_deleted) && info.Proto.i_mtime > since
        | None -> false)
      f.site_vv

let fetch_owner k fg ino =
  match Css.find_file k fg ino with
  | None -> None
  | Some f ->
    Site.Map.fold
      (fun site _ acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if in_partition k site then
            fetch_info k site (Gfile.make ~fg ~ino)
            |> Option.map (fun i -> i.Proto.i_owner)
          else None)
      f.site_vv None

let merge_two_dirs k fg a b report =
  let out = Dir.empty () in
  let names =
    List.map (fun (e : Dir.entry) -> e.Dir.name) (Dir.all_entries a)
    @ List.map (fun (e : Dir.entry) -> e.Dir.name) (Dir.all_entries b)
    |> List.sort_uniq String.compare
  in
  let put (e : Dir.entry) =
    match e.Dir.status with
    | Dir.Live -> Dir.insert out ~name:e.Dir.name ~ino:e.Dir.ino ~stamp:e.Dir.stamp ~origin:e.Dir.origin
    | Dir.Tombstone ->
      Dir.insert out ~name:e.Dir.name ~ino:e.Dir.ino ~stamp:e.Dir.stamp ~origin:e.Dir.origin;
      ignore (Dir.remove out ~name:e.Dir.name ~stamp:e.Dir.stamp ~origin:e.Dir.origin)
  in
  List.iter
    (fun name ->
      match (Dir.find_entry a name, Dir.find_entry b name) with
      | None, None -> ()
      | Some e, None | None, Some e ->
        (* Rule 2a/2b: present in one only — propagate the entry or the
           delete, unless the data changed after the delete. *)
        (match e.Dir.status with
        | Dir.Tombstone when modified_since k fg e.Dir.ino ~since:e.Dir.stamp ->
          report.deletes_undone <- report.deletes_undone + 1;
          Dir.insert out ~name ~ino:e.Dir.ino ~stamp:e.Dir.stamp ~origin:e.Dir.origin
        | Dir.Tombstone | Dir.Live -> put e)
      | Some ea, Some eb -> (
        match (ea.Dir.status, eb.Dir.status) with
        | Dir.Live, Dir.Live when ea.Dir.ino <> eb.Dir.ino ->
          (* Rule 1: a name conflict. Both names are slightly altered to be
             distinguished and the owners are notified by mail. *)
          report.name_conflicts <- report.name_conflicts + 1;
          let alter (e : Dir.entry) =
            let altered = Printf.sprintf "%s!conflict!%d" name e.Dir.ino in
            Dir.insert out ~name:altered ~ino:e.Dir.ino ~stamp:e.Dir.stamp
              ~origin:e.Dir.origin
          in
          alter ea;
          alter eb;
          (match fetch_owner k fg ea.Dir.ino with
          | Some owner ->
            notify_owner k ~owner
              ~subject:(Printf.sprintf "name conflict on '%s' in filegroup %d" name fg)
              report
          | None -> ())
        | Dir.Live, Dir.Live ->
          put (if ea.Dir.stamp >= eb.Dir.stamp then ea else eb)
        | Dir.Tombstone, Dir.Tombstone ->
          put (if ea.Dir.stamp >= eb.Dir.stamp then ea else eb)
        | Dir.Live, Dir.Tombstone | Dir.Tombstone, Dir.Live ->
          (* Rule 2d: one delete, one live entry: interrogate the inode; if
             the data was modified since the delete, undo the delete. *)
          let live, dead =
            if ea.Dir.status = Dir.Live then (ea, eb) else (eb, ea)
          in
          if live.Dir.stamp > dead.Dir.stamp then put live
          else if modified_since k fg live.Dir.ino ~since:dead.Dir.stamp then begin
            report.deletes_undone <- report.deletes_undone + 1;
            put live
          end
          else put dead))
    names;
  out

(* ---- per-file reconciliation ---- *)

let merged_vv k versions = Vvec.bump (List.fold_left Vvec.merge Vvec.zero versions) k.site

let in_partition_sites k f =
  Site.Map.fold
    (fun site _ acc -> if in_partition k site then site :: acc else acc)
    f.site_vv []
  |> List.sort Site.compare

(* Resolve concurrent versions of one file according to its type. *)
let resolve_conflict k gf f copies report =
  let fg = gf.Gfile.fg in
  let fetched =
    List.filter_map
      (fun (site, vv) ->
        match fetch_info k site gf with
        | Some info -> Some (site, vv, info)
        | None -> None)
      copies
  in
  match fetched with
  | [] -> ()
  | (site0, _, info0) :: _ ->
    let vv = merged_vv k (List.map snd copies) in
    let others = in_partition_sites k f in
    let commit_merged ~target content =
      if write_version k ~target gf ~content ~vv ~others then begin
        f.latest_vv <- vv;
        f.site_vv <- Site.Map.add target vv f.site_vv;
        f.css_conflict <- false;
        f.css_deleted <- false
      end
    in
    (* A file deleted in one partition but modified in another wants to be
       saved (section 4.4): prefer a live copy as merge basis. *)
    let live = List.filter (fun (_, _, i) -> not i.Proto.i_deleted) fetched in
    let deleted_involved = List.length live < List.length fetched in
    match info0.Proto.i_ftype with
    | Inode.Directory | Inode.Hidden_directory ->
      let dirs =
        List.filter_map
          (fun (site, _, info) ->
            fetch_content k site gf info
            |> Option.map (fun body ->
                   try Dir.decode body with Failure _ -> Dir.empty ()))
          (if live <> [] then live else fetched)
      in
      (match dirs with
      | [] -> ()
      | first :: rest ->
        let merged =
          List.fold_left (fun acc d -> merge_two_dirs k fg acc d report) first rest
        in
        report.dir_merges <- report.dir_merges + 1;
        commit_merged ~target:site0 (Dir.encode merged);
        record k ~tag:"recon.dir" (Gfile.to_string gf))
    | Inode.Mailbox ->
      let boxes =
        List.filter_map
          (fun (site, _, info) ->
            fetch_content k site gf info
            |> Option.map (fun body ->
                   try Mbox.decode body with Failure _ -> Mbox.empty ()))
          (if live <> [] then live else fetched)
      in
      (match boxes with
      | [] -> ()
      | first :: rest ->
        let merged = List.fold_left Mbox.merge first rest in
        report.mail_merges <- report.mail_merges + 1;
        commit_merged ~target:site0 (Mbox.encode merged);
        record k ~tag:"recon.mail" (Gfile.to_string gf))
    | Inode.Regular | Inode.Database | Inode.Fifo ->
      if deleted_involved && live <> [] then begin
        (* Delete/modify conflict: save the modified copy. *)
        let site, _, info = List.hd live in
        match fetch_content k site gf info with
        | Some content ->
          report.saved_from_delete <- report.saved_from_delete + 1;
          commit_merged ~target:site content;
          record k ~tag:"recon.saved" (Gfile.to_string gf)
        | None -> ()
      end
      else begin
        match merge_manager_for info0.Proto.i_ftype with
        | Some manager -> (
          (* A higher-level manager (e.g. a database manager) reconciles
             the divergent versions itself. *)
          let contents =
            List.filter_map
              (fun (site, _, info) -> fetch_content k site gf info)
              fetched
          in
          match contents with
          | [] -> ()
          | _ :: _ ->
            let merged = manager contents in
            report.manager_merges <- report.manager_merges + 1;
            commit_merged ~target:site0 merged;
            record k ~tag:"recon.manager" (Gfile.to_string gf))
        | None ->
          (* Untyped conflict: mark the file (normal access fails) and
             tell the owner by mail; a tool or the user reconciles
             interactively. *)
          f.css_conflict <- true;
          report.conflicts_marked <- report.conflicts_marked + 1;
          (match fetch_owner k fg gf.Gfile.ino with
          | Some owner ->
            notify_owner k ~owner
              ~subject:
                (Printf.sprintf "update conflict on %s (%d versions)"
                   (Gfile.to_string gf) (List.length copies))
              report
          | None -> ());
          record k ~tag:"recon.conflict" (Gfile.to_string gf)
      end

(* Reconcile one file (also the entry point for demand recovery: a
   particular directory can be reconciled out of order, section 4.4).

   Directories and mailboxes go through the type-specific merge whenever
   their copies differ at all — not only on version conflict — because
   rule 2b can resurrect a deleted entry when the *file* it names was
   modified in the other partition, which plain propagation of a dominating
   directory version would lose. *)
let reconcile_file k gf report =
  match Css.find_file k gf.Gfile.fg gf.Gfile.ino with
  | None -> ()
  | Some f ->
    report.files_checked <- report.files_checked + 1;
    let copies = partition_copies k f in
    match copies with
    | [] | [ _ ] -> () (* absent or a single version: nothing to reconcile *)
    | _ :: _ :: _ -> (
      let mergeable_type =
        List.exists
          (fun (site, _) ->
            match fetch_info k site gf with
            | Some
                {
                  Proto.i_ftype =
                    Inode.Directory | Inode.Hidden_directory | Inode.Mailbox;
                  _;
                } ->
              true
            | Some _ | None -> false)
          copies
      in
      if mergeable_type then resolve_conflict k gf f copies report
      else
        match maximal_versions copies with
        | [] -> ()
        | [ (origin, vv) ] ->
          if not (Vvec.dominates_or_equal f.latest_vv vv) then f.latest_vv <- vv;
          schedule_propagation k gf ~vv ~origin f report
        | concurrent -> resolve_conflict k gf f concurrent report)

(* Reconcile every file of a filegroup; the caller is the filegroup's CSS. *)
let reconcile_fg k fg =
  let report = empty_report () in
  let files =
    match Hashtbl.find_opt k.css_state fg with
    | None -> []
    | Some st -> Hashtbl.fold (fun ino _ acc -> ino :: acc) st.css_files []
  in
  List.iter
    (fun ino -> reconcile_file k (Gfile.make ~fg ~ino) report)
    (List.sort Int.compare files);
  report

(* Interactive resolution of a marked conflict: keep the copy stored at
   [winner]; everyone else pulls the merged version. *)
let resolve_manual k gf ~winner =
  match Css.find_file k gf.Gfile.fg gf.Gfile.ino with
  | None -> false
  | Some f -> (
    match fetch_info k winner gf with
    | None -> false
    | Some info -> (
      match fetch_content k winner gf info with
      | None -> false
      | Some content ->
        let versions = List.map snd (partition_copies k f) in
        let vv = merged_vv k versions in
        let ok =
          write_version k ~target:winner gf ~content ~vv
            ~others:(in_partition_sites k f)
        in
        if ok then begin
          f.latest_vv <- vv;
          f.site_vv <- Site.Map.add winner vv f.site_vv;
          f.css_conflict <- false
        end;
        ok))
