(* Reconfiguration orchestration (section 5.3): wire the protocol handlers
   into each kernel and drive the partition -> merge -> recovery sequence.

   The reconfiguration procedure has three components: the partition
   protocol finds fully-connected sub-networks, the merge protocol joins
   sub-partitions into one partition, and the recovery procedure corrects
   the inconsistencies accumulated while the network was not connected.
   Normal processing continues under all of them; the file reconciliation
   supports demand recovery so a directory needed right now is merged out
   of order. *)

open Locus_core.Ktypes
module Site = Net.Site

(* Install the reconfiguration protocol handlers on a kernel. Must be
   called once per kernel at boot. *)
let install k =
  k.extra_handler <-
    (fun src req ->
      match req with
      | Proto.Part_poll _ -> Some (Partition.handle_poll k ~src)
      | Proto.Part_announce { members; active = _ } ->
        Some (Partition.handle_announce k ~members)
      | Proto.Merge_poll { initiator } -> Some (Merge.handle_poll k ~src:initiator)
      | Proto.Merge_announce { members; css_map } ->
        Some (Merge.handle_announce k ~members ~css_map)
      | Proto.Status_check _ ->
        Some (Proto.R_status { stage = k.recon_stage; site = k.site })
      | Proto.Open_req _ | Proto.Storage_req _ | Proto.Read_page _
      | Proto.Read_pages _ | Proto.Write_page _ | Proto.Write_pages _
      | Proto.Truncate_req _ | Proto.Commit_req _ | Proto.Stripe_collect _
      | Proto.Us_close _ | Proto.Ss_close _ | Proto.Commit_notify _
      | Proto.Reclaim_req _ | Proto.Page_invalidate _ | Proto.Lease_break _
      | Proto.Create_req _
      | Proto.Link_count _ | Proto.Set_attr _ | Proto.Stat_req _
      | Proto.Where_stored _ | Proto.Lookup_req _
      | Proto.Token_req _ | Proto.Token_state_req _ | Proto.Fork_req _
      | Proto.Exec_req _ | Proto.Run_req _ | Proto.Signal_req _
      | Proto.Exit_notify _ | Proto.Open_files_query _ | Proto.Pack_inventory _
      | Proto.Pipe_write _ | Proto.Pipe_read _ ->
        None)

type full_report = {
  partition_reports : Partition.report list;
  merge_report : Merge.report option;
  reconcile_reports : (int * Reconcile.report) list; (* per filegroup *)
}

(* Run the partition protocol in each sub-network after a topology change.
   [initiators] is one site per suspected sub-partition (in reality the
   site that noticed the circuit failure). *)
let run_partitions kernels ~initiators =
  List.filter_map
    (fun site ->
      match List.find_opt (fun k -> Site.equal k.site site) kernels with
      | Some k when k.alive -> Some (Partition.run_active k)
      | Some _ | None -> None)
    initiators

(* Run the merge protocol from [initiator], then the recovery procedure:
   every new CSS reconciles its filegroups, and the resulting update
   propagations are drained. *)
let run_merge_and_recover ?policy ?gateways kernels ~initiator =
  let all_sites = List.map (fun k -> k.site) kernels in
  match List.find_opt (fun k -> Site.equal k.site initiator) kernels with
  | None -> invalid_arg "Reconfig.run_merge_and_recover: unknown initiator"
  | Some ki ->
    let merge_report = Merge.run_initiator ?policy ?gateways ki ~all_sites in
    (* Recovery: each filegroup's (new) CSS reconciles it. *)
    let reconcile_reports =
      List.concat_map
        (fun k ->
          if k.alive then
            List.filter_map
              (fun fi ->
                if Site.equal fi.css_site k.site && Hashtbl.mem k.css_state fi.fg
                then Some (fi.fg, Reconcile.reconcile_fg k fi.fg)
                else None)
              k.fg_table
          else [])
        kernels
    in
    (* Drain the scheduled update propagations. *)
    ignore (Sim.Engine.run_until_idle ki.engine);
    List.iter (fun k -> if k.alive then Locus_core.Propagation.drain k) kernels;
    ignore (Sim.Engine.run_until_idle ki.engine);
    (merge_report, reconcile_reports)

(* Full reconfiguration: partition protocols (one initiator per group),
   then merge + recovery from the lowest live site. *)
let reconfigure ?policy kernels ~initiators ~merge_initiator =
  let partition_reports = run_partitions kernels ~initiators in
  let merge_report, reconcile_reports =
    run_merge_and_recover ?policy kernels ~initiator:merge_initiator
  in
  {
    partition_reports;
    merge_report = Some merge_report;
    reconcile_reports;
  }
