(* The merge protocol (section 5.5) and post-merge rebuild (section 5.6).

   The initiating site polls every site of the network for its partition
   information, declares the new partition after a suitable wait, and
   broadcasts its composition. The waiting strategy is the paper's
   two-level timeout: while some site *believed up* by a member of the new
   partition has not answered, the timeout is long; once all such sites
   have replied, it is short — so a small partition of a large network
   merges quickly. A fixed long timeout is kept as an ablation.

   After the announcement each member installs the new site table, the new
   CSS for every filegroup is selected, and each new CSS reconstructs its
   version bookkeeping (from pack inventories) and its lock table (from the
   members' open-file lists). *)

open Locus_core.Ktypes
module Css = Locus_core.Css
module Ss = Locus_core.Ss
module Site = Net.Site
module Sset = Net.Site.Set

type timeout_policy =
  | Fixed_timeout of float  (* ms: always wait this long for missing sites *)
  | Adaptive_timeout of { long : float; short : float }

let default_policy = Adaptive_timeout { long = 150.0; short = 15.0 }

type report = {
  members : Site.t list;
  polled : int;
  responded : int;
  busy : int;
  skipped : int; (* sites not polled because no gateway vouched for them *)
  wait_charged : float; (* simulated ms spent in timeouts *)
  css_map : (int * Site.t) list;
}

(* Sites currently acting as merge initiator (the "merging AND actsite =
   locsite" state of the paper's pseudocode). *)
let merging : (Site.t, unit) Hashtbl.t = Hashtbl.create 8

(* Passive side of the poll, following the paper's arbitration: a site
   already running its own merge yields only to a lower-numbered site. *)
let handle_poll k ~src =
  if Hashtbl.mem merging k.site && src > k.site then Proto.R_busy { active = k.site }
  else begin
    let fgs =
      Hashtbl.fold (fun fg _ acc -> fg :: acc) k.packs [] |> List.sort Int.compare
    in
    Proto.R_merge_info { believed_up = k.site_table; fgs }
  end

(* New CSS for [fg]: rebuild version bookkeeping and the lock table from
   the members (section 5.6). *)
let rebuild_css k fg ~members =
  Css.drop_fg k fg;
  List.iter
    (fun m ->
      (match
         if Site.equal m k.site then Ok (Ss.handle_inventory k fg)
         else rpc_result k m (Proto.Pack_inventory { fg })
       with
      | Ok (Proto.R_inventory { files }) ->
        List.iter
          (fun (ino, vv, deleted) ->
            Css.seed_copy k (Gfile.make ~fg ~ino) ~site:m ~vv ~deleted)
          files
      | Ok _ | Stdlib.Error _ -> ());
      match
        if Site.equal m k.site then Ok (Css.handle_open_files_query k fg)
        else rpc_result k m (Proto.Open_files_query { fg })
      with
      | Ok (Proto.R_open_files { files }) ->
        List.iter (fun entry -> Css.register_open k fg entry) files
      | Ok _ | Stdlib.Error _ -> ())
    members

let handle_announce k ~members ~css_map =
  set_sites k members;
  (* Directories may have changed arbitrarily in the other partition, and
     deletions there produced no notification here: start the name cache
     cold rather than audit it. Open leases likewise: files may have
     advanced in the other partition and CSS roles are about to move, so
     every retained grant is scrubbed (deferred closes go out now). *)
  Locus_core.Namecache.clear k.name_cache;
  Locus_core.Openlease.scrub k.open_leases;
  List.iter
    (fun (fg, css) ->
      match List.find_opt (fun fi -> fi.fg = fg) k.fg_table with
      | Some fi ->
        let old = fi.css_site in
        fi.css_site <- css;
        if Site.equal css k.site then rebuild_css k fg ~members
        else if Site.equal old k.site then Css.drop_fg k fg
      | None -> ())
    css_map;
  (* SS-side half of the section 5.6 rebuild: serving registrations are
     revalidated against the members' actual open files, cleaning up
     state stranded by a lost open reply (the CSS registered the US here,
     but the US never saw the grant, so no close will ever arrive). *)
  Ss.revalidate_serving k;
  record k ~tag:"merge.apply"
    (Printf.sprintf "members=[%s]" (String.concat "," (List.map Site.to_string members)));
  Proto.R_ok

exception Yield of Site.t

(* Run the merge protocol as the initiating site. [all_sites] is the whole
   network (to form the largest possible partition, the protocol must check
   all possible sites, including those thought to be down). In a large
   network with gateways the poll set is optimized: the gateways are polled
   first, and only sites some gateway (or this partition) believes up are
   polled individually — the rest are skipped without a timeout. *)
let run_initiator ?(policy = default_policy) ?(gateways = []) k ~all_sites =
  Hashtbl.replace merging k.site ();
  k.recon_stage <- 3;
  let polled = ref 0 and busy = ref 0 and skipped = ref 0 in
  let respondents = ref [] (* (site, believed_up, fgs) newest first *) in
  let missing = ref [] in
  let polled_set = Hashtbl.create 16 in
  let poll_one s =
    if (not (Site.equal s k.site)) && not (Hashtbl.mem polled_set s) then begin
      Hashtbl.add polled_set s ();
      incr polled;
      match rpc_result k s (Proto.Merge_poll { initiator = k.site }) with
      | Ok (Proto.R_merge_info { believed_up; fgs }) ->
        respondents := (s, believed_up, fgs) :: !respondents
      | Ok (Proto.R_busy { active }) ->
        incr busy;
        if active < k.site then raise (Yield active)
      | Ok _ | Stdlib.Error _ -> missing := s :: !missing
    end
  in
  (try
     match gateways with
     | [] -> List.iter poll_one (List.sort Site.compare all_sites)
     | gws ->
       (* Phase 1: the gateways. *)
       List.iter poll_one (List.sort Site.compare gws);
       (* Phase 2: sites vouched for by a gateway or by this partition. *)
       let vouched =
         List.fold_left
           (fun acc (_, bu, _) -> Sset.union acc (Sset.of_list bu))
           (Sset.of_list k.site_table) !respondents
       in
       List.iter
         (fun s ->
           if Sset.mem s vouched then poll_one s
           else if (not (Site.equal s k.site)) && not (Hashtbl.mem polled_set s)
           then incr skipped)
         (List.sort Site.compare all_sites)
   with Yield active ->
     Hashtbl.remove merging k.site;
     k.recon_stage <- 0;
     record k ~tag:"merge.yield" (Site.to_string active);
     raise (Yield active));
  (* Timeout accounting: polls are asynchronous, so the waits overlap; the
     charge is the single timeout level still applicable at the end. *)
  let believed_up =
    List.fold_left
      (fun acc (_, bu, _) -> Sset.union acc (Sset.of_list bu))
      (Sset.of_list k.site_table) !respondents
  in
  let expected_missing = List.filter (fun s -> Sset.mem s believed_up) !missing in
  let wait =
    match policy with
    | Fixed_timeout t -> if !missing <> [] then t else 0.0
    | Adaptive_timeout { long; short } ->
      if expected_missing <> [] then long else if !missing <> [] then short else 0.0
  in
  Engine.charge k.engine wait;
  let members =
    k.site :: List.map (fun (s, _, _) -> s) !respondents
    |> List.sort_uniq Site.compare
  in
  (* Select the CSS for every filegroup by the replicated placement
     function over the pack-holding members, spreading the roles. *)
  let local_fgs =
    Hashtbl.fold (fun fg _ acc -> fg :: acc) k.packs [] |> List.sort Int.compare
  in
  let holders : (int, Site.t list) Hashtbl.t = Hashtbl.create 8 in
  let add_holder fg s =
    let cur = Option.value (Hashtbl.find_opt holders fg) ~default:[] in
    Hashtbl.replace holders fg (s :: cur)
  in
  List.iter (fun fg -> add_holder fg k.site) local_fgs;
  List.iter (fun (s, _, fgs) -> List.iter (fun fg -> add_holder fg s) fgs) !respondents;
  let all_fgs = List.map (fun fi -> fi.fg) k.fg_table in
  let css_map =
    List.filter_map
      (fun fg ->
        let candidates =
          Option.value (Hashtbl.find_opt holders fg) ~default:[]
          |> List.filter (fun s -> List.mem s members)
        in
        match place_css ~fg candidates with
        | Some s -> Some (fg, s)
        | None ->
          (* No member of the new partition holds a pack: the filegroup is
             unavailable here. Electing a packless synchronization site
             would only manufacture ghost state; leave the filegroup out
             and let a later merge that includes a pack holder assign one. *)
          record k ~tag:"merge.unavailable" (Printf.sprintf "fg %d: no pack holder" fg);
          None)
      all_fgs
  in
  (* Declare the new partition and broadcast its composition. *)
  List.iter
    (fun m ->
      if not (Site.equal m k.site) then
        match rpc_result k m (Proto.Merge_announce { members; css_map }) with
        | Ok _ | Stdlib.Error _ -> ())
    members;
  ignore (handle_announce k ~members ~css_map);
  Hashtbl.remove merging k.site;
  k.recon_stage <- 0;
  {
    members;
    polled = !polled;
    responded = List.length !respondents;
    busy = !busy;
    skipped = !skipped;
    wait_charged = wait;
    css_map;
  }
