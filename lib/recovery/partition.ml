(* The partition protocol (section 5.4).

   When communication breaks, the site tables of a partition become
   unsynchronized. The protocol re-establishes logical partitioning by
   *iterative intersection*: the active site a polls the sites in its
   partition set Pa; each successful poll returns the polled site's own
   partition set, which is intersected into Pa; polling continues until
   the new partition set Pa' (sites known to have joined) equals Pa.
   The result is a maximal fully-connected sub-network: a single
   communication failure never splits the net into three parts needlessly.

   Consensus criterion: for every a, b in P, Pa = Pb. The active site
   announces the agreed membership; every member installs it and runs the
   cleanup procedure (section 5.6) for the sites that departed. *)

open Locus_core.Ktypes
module Kernel = Locus_core.Kernel
module Site = Net.Site
module Sset = Net.Site.Set
module Topology = Net.Topology

type report = {
  members : Site.t list;
  polls : int;       (* poll exchanges performed *)
  rounds : int;      (* intersection iterations *)
  failures : int;    (* polls that found a site unreachable *)
}

(* After the membership is agreed, each partition selects a new CSS for
   every filegroup it supports, by the replicated placement function over
   the members holding a physical container — so the synchronization load
   of many filegroups spreads over the partition instead of piling onto
   its lowest site. The chosen site reconstructs the lock table and
   version bookkeeping from the remaining members (section 5.6). *)
let reelect_css k members =
  List.iter
    (fun fi ->
      let candidates = List.filter (fun s -> List.mem s members) fi.pack_sites in
      let new_css =
        match place_css ~fg:fi.fg candidates with
        | Some s -> s
        | None -> ( match members with s :: _ -> s | [] -> k.site)
      in
      if not (Site.equal fi.css_site new_css) then begin
        let old = fi.css_site in
        fi.css_site <- new_css;
        if Site.equal new_css k.site then begin
          Merge.rebuild_css k fi.fg ~members;
          record k ~tag:"css.elect" (Printf.sprintf "fg %d css %s -> %s" fi.fg
                                       (Site.to_string old) (Site.to_string new_css))
        end
        else if Site.equal old k.site then Locus_core.Css.drop_fg k fi.fg
      end)
    k.fg_table

(* Install an agreed partition at one kernel and run cleanup for every site
   that left. Returns the departed sites. *)
let apply_membership k members =
  let old = k.site_table in
  let departed = List.filter (fun s -> not (List.mem s members)) old in
  set_sites k members;
  (* No lease survives a partition event: the CSS that granted it may no
     longer be reachable (or no longer the CSS), so its break callbacks
     can no longer be trusted to arrive — the analogue of the §5.6
     lock-table scrub. Deferred closes go out best-effort. *)
  Locus_core.Openlease.scrub k.open_leases;
  (* Select the new synchronization sites first: the cleanup procedure's
     attempt to reopen lost files at another copy needs a live CSS. *)
  reelect_css k k.site_table;
  List.iter
    (fun dead ->
      ignore (Txn.handle_site_failure k dead);
      Kernel.handle_site_failure k dead)
    departed;
  if departed <> [] then
    record k ~tag:"part.apply"
      (Printf.sprintf "members=[%s] departed=[%s]"
         (String.concat "," (List.map Site.to_string k.site_table))
         (String.concat "," (List.map Site.to_string departed)));
  departed

(* Passive side: answer a poll with our own partition set, verified
   against the low-level virtual-circuit state — a site this responder
   cannot reach directly does not belong in a fully-connected partition
   with it. Polling implies the initiator and we communicate, so it
   belongs in the answer. *)
let handle_poll k ~src =
  let topo = Net.Netsim.topology k.net in
  let believed =
    List.filter
      (fun s -> Site.equal s k.site || Topology.reachable topo k.site s)
      k.site_table
  in
  let pset = List.sort_uniq Site.compare (src :: believed) in
  Proto.R_pset { pset }

let handle_announce k ~members =
  ignore (apply_membership k members);
  Proto.R_ok

(* Run the protocol as the active site. *)
let run_active k =
  k.recon_stage <- 1;
  let polls = ref 0 and rounds = ref 0 and failures = ref 0 in
  let pa = ref (Sset.of_list (k.site :: k.site_table)) in
  let joined = ref (Sset.singleton k.site) in
  let continue_ = ref true in
  while !continue_ do
    let remaining = Sset.diff !pa !joined in
    if Sset.is_empty remaining then continue_ := false
    else begin
      incr rounds;
      let target = Sset.min_elt remaining in
      incr polls;
      match
        rpc_result k target (Proto.Part_poll { initiator = k.site; pset = Sset.elements !pa })
      with
      | Ok (Proto.R_pset { pset }) ->
        pa := Sset.inter !pa (Sset.of_list (target :: pset));
        (* Keep ourselves: we are definitionally in our own partition. *)
        pa := Sset.add k.site !pa;
        joined := Sset.add target (Sset.inter !joined !pa)
      | Ok _ | Stdlib.Error _ ->
        incr failures;
        pa := Sset.remove target !pa
    end
  done;
  k.recon_stage <- 2;
  let members = Sset.elements !pa in
  (* Announce the consensus to every member. *)
  List.iter
    (fun s ->
      if not (Site.equal s k.site) then
        match rpc_result k s (Proto.Part_announce { active = k.site; members }) with
        | Ok _ | Stdlib.Error _ -> ())
    members;
  ignore (apply_membership k members);
  k.recon_stage <- 0;
  { members; polls = !polls; rounds = !rounds; failures = !failures }

(* Section 5.7: a passive site checks on the active site; if the active
   site has failed, the passive site restarts the protocol itself. Returns
   the report when this site had to take over. *)
let check_active_and_takeover k ~active =
  match rpc_result k active (Proto.Status_check { asker = k.site }) with
  | Ok (Proto.R_status _) -> None
  | Ok _ | Stdlib.Error _ -> Some (run_active k)
