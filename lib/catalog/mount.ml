type t = {
  root_fg : int;
  mutable mounts : (Gfile.t * int) list; (* mount point -> child fg *)
  mutable shards : (Gfile.t * int list) list;
  (* sharded mount point -> member fgs: one logical subtree whose entries
     are spread across several filegroups (and hence several CSSs) by
     hashing the first component under the point *)
}

let root_ino = 1

let create ~root_fg = { root_fg; mounts = []; shards = [] }

let root t = Gfile.make ~fg:t.root_fg ~ino:root_ino

let root_fg t = t.root_fg

let fg_in_use t fg =
  fg = t.root_fg
  || List.exists (fun (_, g) -> g = fg) t.mounts
  || List.exists (fun (_, fgs) -> List.mem fg fgs) t.shards

let point_in_use t point =
  List.exists (fun (p, _) -> Gfile.equal p point) t.mounts
  || List.exists (fun (p, _) -> Gfile.equal p point) t.shards

let add t ~mount_point ~child_fg =
  if fg_in_use t child_fg then invalid_arg "Mount.add: filegroup already mounted";
  if point_in_use t mount_point then invalid_arg "Mount.add: mount point already in use";
  t.mounts <- (mount_point, child_fg) :: t.mounts

let add_sharded t ~mount_point ~shard_fgs =
  if shard_fgs = [] then invalid_arg "Mount.add_sharded: no shard filegroups";
  List.iter
    (fun fg -> if fg_in_use t fg then invalid_arg "Mount.add_sharded: filegroup already mounted")
    shard_fgs;
  if List.length (List.sort_uniq Int.compare shard_fgs) <> List.length shard_fgs then
    invalid_arg "Mount.add_sharded: duplicate shard filegroup";
  if point_in_use t mount_point then
    invalid_arg "Mount.add_sharded: mount point already in use";
  t.shards <- (mount_point, shard_fgs) :: t.shards

let mounted_at t point =
  List.find_opt (fun (p, _) -> Gfile.equal p point) t.mounts |> Option.map snd

let sharded_at t point =
  List.find_opt (fun (p, _) -> Gfile.equal p point) t.shards |> Option.map snd

(* Deterministic component hash: every site must route a name to the same
   shard with no negotiation, so the function is part of the replicated
   mount state just like the table itself. *)
let shard_hash comp =
  String.fold_left (fun h c -> ((h * 33) + Char.code c) land 0x3FFFFFFF) 5381 comp

let shard_for t point comp =
  match sharded_at t point with
  | None -> None
  | Some fgs -> Some (List.nth fgs (shard_hash comp mod List.length fgs))

let mount_point_of t fg =
  match List.find_opt (fun (_, child) -> child = fg) t.mounts with
  | Some (p, _) -> Some p
  | None ->
    List.find_opt (fun (_, fgs) -> List.mem fg fgs) t.shards |> Option.map fst

let filegroups t =
  (t.root_fg :: List.map snd t.mounts) @ List.concat_map snd t.shards
  |> List.sort_uniq Int.compare

let copy t = { t with mounts = t.mounts; shards = t.shards }

let equal a b =
  let norm_m t = List.sort (fun (p1, _) (p2, _) -> Gfile.compare p1 p2) t.mounts in
  let norm_s t = List.sort (fun (p1, _) (p2, _) -> Gfile.compare p1 p2) t.shards in
  a.root_fg = b.root_fg && norm_m a = norm_m b && norm_s a = norm_s b
