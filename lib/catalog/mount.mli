(** The logical mount table (§2.1).

    Filegroups are glued into the single naming tree by mounting: a mount
    entry attaches a filegroup's root as a subtree at a directory of an
    already-mounted filegroup. The table is operating-system state
    replicated at every site, and the reconfiguration protocols require the
    mount hierarchy to be identical everywhere (§5.1). *)

type t

val root_ino : int
(** Inode number of every filegroup's root directory (1). *)

val create : root_fg:int -> t

val root : t -> Gfile.t
(** The global root directory <root_fg, 1>. *)

val root_fg : t -> int

val add : t -> mount_point:Gfile.t -> child_fg:int -> unit
(** Mount [child_fg] at directory [mount_point]. Raises [Invalid_argument]
    if that filegroup is already mounted or the point is in use. *)

val add_sharded : t -> mount_point:Gfile.t -> shard_fgs:int list -> unit
(** Mount a group of filegroups as one sharded subtree at [mount_point]:
    a name directly under the point is routed to
    [shard_fgs.(hash name mod n)]'s root directory, so the subtree's
    synchronization load spreads across the shards' CSSs. Raises
    [Invalid_argument] on reuse, duplicates, or an empty list. *)

val mounted_at : t -> Gfile.t -> int option
(** If the directory is a mount point, the filegroup mounted on it. *)

val sharded_at : t -> Gfile.t -> int list option
(** If the directory is a sharded mount point, its member filegroups. *)

val shard_for : t -> Gfile.t -> string -> int option
(** Route component [comp] under a sharded mount point to its shard
    filegroup; [None] if the directory is not sharded. Deterministic:
    every site computes the same shard. *)

val mount_point_of : t -> int -> Gfile.t option
(** Reverse lookup for ".." traversal out of a filegroup root (shard
    members answer with the shared sharded point). [None] for the root
    filegroup. *)

val filegroups : t -> int list
(** All mounted filegroups including the root, sorted. *)

val copy : t -> t

val equal : t -> t -> bool
