(* Shrink a failing soak scenario to a minimal replayable repro.

   A scenario is fully named by (seed, ops, dropped-fault indices): the
   schedule and op stream are pure functions of (seed, ops), so replaying
   the triple replays the identical run. Shrinking alternates two moves
   until a fixpoint (or the run budget is spent):
   - halve the operation count while the run still fails;
   - greedily drop one injected fault at a time, keeping each drop that
     preserves the failure.

   The result prints as a one-line command for the bench harness's soak
   subcommand. *)

type scenario = { sc_seed : int; sc_ops : int; sc_drop : int list }

let repro_command sc =
  Printf.sprintf "dune exec bench/main.exe -- soak --seed %d --ops %d%s"
    sc.sc_seed sc.sc_ops
    (match sc.sc_drop with
    | [] -> ""
    | l -> " --drop " ^ String.concat "," (List.map string_of_int l))

let min_ops = 50

let shrink ?(budget = 40) ~fails sc =
  let runs = ref 0 in
  let try_ scenario =
    if !runs >= budget then false
    else begin
      incr runs;
      fails scenario
    end
  in
  let halve sc =
    let rec go sc =
      let ops = sc.sc_ops / 2 in
      if ops < min_ops then sc
      else begin
        (* Halving regenerates the schedule, so fault indices shift: a
           drop list only makes sense against the ops count it was found
           at. Reset it and let the fault pass rediscover. *)
        let cand = { sc with sc_ops = ops; sc_drop = [] } in
        if try_ cand then go cand else sc
      end
    in
    go sc
  in
  let drop_faults sc =
    let total = Schedule.fault_count (Schedule.generate ~seed:sc.sc_seed ~ops:sc.sc_ops) in
    let rec go sc i =
      if i >= total || !runs >= budget then sc
      else if List.mem i sc.sc_drop then go sc (i + 1)
      else begin
        let cand = { sc with sc_drop = List.sort compare (i :: sc.sc_drop) } in
        if try_ cand then go cand (i + 1) else go sc (i + 1)
      end
    in
    go sc 0
  in
  let rec fix sc =
    let sc' = drop_faults (halve sc) in
    if sc'.sc_ops = sc.sc_ops && sc'.sc_drop = sc.sc_drop then sc else fix sc'
  in
  let final = fix sc in
  (final, !runs)
