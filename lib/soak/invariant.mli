(** Global invariant checks over a quiesced world.

    Call {!check} only after every site is back up, the network is healed,
    the merge protocol has run and the engine has settled: the invariants
    are statements about a fully-recovered cluster.

    Checked, per §4's reconciliation guarantees and the quiesce contract:
    every committed write is readable (and identical) at every alive site,
    or its file is conflict-flagged and at least one copy survives; version
    vectors of surviving copies are pairwise equal-or-flagged (lattice); no
    orphan opens, dirty files, write-behind runs, leases, shadow sessions,
    SS serving registrations, shared descriptors or propagation backlog
    survive quiesce; CSS lock state is empty; every pack passes fsck;
    directory create/unlink churn converged identically at all sites. *)

type violation = { v_code : string; v_detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** {1 Durability model}

    Maintained by the driver from {!Locus.Workload.event}s: per path, the
    body of the last write that definitely committed plus the bodies of
    later ambiguous attempts (an error at the US does not prove the commit
    did not execute at the SS). *)

type model

val model_create : unit -> model

val model_wrote : model -> path:string -> body:string -> ok:bool -> unit

val check : Locus.World.t -> model -> violation list
