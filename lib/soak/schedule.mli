(** Random fault schedules for the deterministic soak harness.

    A schedule interleaves batches of workload operations with injected
    faults, and is a pure function of [(seed, ops)]: fault payloads are raw
    integers drawn at generation time and interpreted by the driver against
    the cluster state of the moment, so a replay of the same [(seed, ops)]
    is bit-for-bit identical and masking one fault out (shrinking) leaves
    every other segment untouched. *)

type fault =
  | Crash of int  (** selector into the currently-alive site list *)
  | Restart of int  (** selector into the currently-down site list *)
  | Partition_split of int  (** split-point selector over all sites *)
  | Heal  (** restart everything dead, heal the network, merge *)
  | Loss_burst of float  (** message drop probability for the next batch *)
  | Lease_break of int * int
      (** (site selector, file selector): a write targeted at a leased
          file, forcing CSS callback breaks *)
  | Mid_commit_kill of int * int
      (** open-for-modify + flush pages, then crash the serving SS before
          the commit: the shadow session must die with it *)
  | Prop_stall of int * int
      (** commit at a site, then crash it before propagation pulls run *)

type segment = { seg_ops : int; seg_fault : fault option }

type t = {
  sched_seed : int;
  sched_ops : int;
  segments : segment list;
}

val generate : seed:int -> ops:int -> t

val fault_label : fault -> string
(** Stable short name, used for injected/survived accounting. *)

val pp_fault : Format.formatter -> fault -> unit

val fault_count : t -> int
(** Number of segments carrying a fault. *)

val mask : t -> drop:int list -> t
(** Disable the faults whose injection index (counting faults only, in
    schedule order) appears in [drop]. *)
