(* Random fault schedules for the deterministic soak harness.

   A schedule is a list of segments: run a batch of workload operations,
   then (optionally) inject one fault. The whole schedule is a pure
   function of (seed, ops) — fault payloads are raw integers drawn at
   generation time and interpreted by the driver against the cluster state
   of the moment, so replaying the same (seed, ops) replays the identical
   run, and masking a fault out (shrinking) leaves every other segment's
   payload untouched. *)

module Rng = Sim.Rng

type fault =
  | Crash of int          (* selector into the currently-alive site list *)
  | Restart of int        (* selector into the currently-down site list *)
  | Partition_split of int (* split-point selector over all sites *)
  | Heal                  (* restart everything dead, heal, merge *)
  | Loss_burst of float   (* message drop probability for the next batch *)
  | Lease_break of int * int (* (site selector, file selector): hot write *)
  | Mid_commit_kill of int * int
      (* open-for-modify + flush pages, then crash the serving SS before
         commit: the shadow session must die with it, not leak *)
  | Prop_stall of int * int
      (* commit at a site, then crash it before propagation pulls run:
         the remaining copies stay stale until heal reconciles *)

type segment = { seg_ops : int; seg_fault : fault option }

type t = {
  sched_seed : int;
  sched_ops : int;
  segments : segment list;
}

let fault_label = function
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Partition_split _ -> "partition"
  | Heal -> "heal"
  | Loss_burst _ -> "loss"
  | Lease_break _ -> "lease_break"
  | Mid_commit_kill _ -> "mid_commit_kill"
  | Prop_stall _ -> "prop_stall"

let pp_fault ppf = function
  | Crash s -> Format.fprintf ppf "crash[%d]" s
  | Restart s -> Format.fprintf ppf "restart[%d]" s
  | Partition_split s -> Format.fprintf ppf "partition[%d]" s
  | Heal -> Format.fprintf ppf "heal"
  | Loss_burst p -> Format.fprintf ppf "loss[%.2f]" p
  | Lease_break (s, f) -> Format.fprintf ppf "lease_break[%d,%d]" s f
  | Mid_commit_kill (s, f) -> Format.fprintf ppf "mid_commit_kill[%d,%d]" s f
  | Prop_stall (s, f) -> Format.fprintf ppf "prop_stall[%d,%d]" s f

(* Weighted fault choice. Heal gets real weight so long schedules keep
   cycling through whole partition/merge epochs instead of grinding to a
   fully-crashed halt. *)
let gen_fault rng =
  let sel () = Rng.int rng 1_000_000 in
  let v = Rng.int rng 100 in
  if v < 14 then Crash (sel ())
  else if v < 24 then Restart (sel ())
  else if v < 36 then Partition_split (sel ())
  else if v < 52 then Heal
  else if v < 66 then Loss_burst (0.05 +. (0.35 *. Rng.float rng 1.0))
  else if v < 76 then Lease_break (sel (), sel ())
  else if v < 89 then Mid_commit_kill (sel (), sel ())
  else Prop_stall (sel (), sel ())

let generate ~seed ~ops =
  let rng = Rng.create (Int64.of_int ((seed * 2) + 1)) in
  let rec go left acc =
    if left <= 0 then List.rev acc
    else begin
      let batch = min left (20 + Rng.int rng 61) in
      let fault = if Rng.int rng 100 < 70 then Some (gen_fault rng) else None in
      go (left - batch) ({ seg_ops = batch; seg_fault = fault } :: acc)
    end
  in
  { sched_seed = seed; sched_ops = ops; segments = go ops [] }

let fault_count t =
  List.length (List.filter (fun s -> s.seg_fault <> None) t.segments)

(* Drop the faults whose index (counting injected faults only, in order)
   is in [drop]; used by the shrinker and by `--drop` replays. *)
let mask t ~drop =
  let idx = ref (-1) in
  let segments =
    List.map
      (fun s ->
        match s.seg_fault with
        | None -> s
        | Some _ ->
          incr idx;
          if List.mem !idx drop then { s with seg_fault = None } else s)
      t.segments
  in
  { t with segments }
