(* Global invariant checks over a quiesced world.

   Run only after the driver has reset message loss, restarted every dead
   site, healed + merged, and settled the engine — the invariants below are
   statements about a fully-recovered cluster, not about a mid-fault one.

   The checks walk state no single existing test audits together: US open
   tables and write-behind runs, SS serving registrations and shadow
   sessions, the lease tables on both sides, CSS lock state, shared
   descriptors, the propagation queues, every pack's allocation map, the
   version vectors of every surviving copy, and the model of what the
   workload committed. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Css = Locus_core.Css
module Openlease = Locus_core.Openlease
module K = Locus_core.Ktypes
module Site = Net.Site
module Gfile = Catalog.Gfile
module Dir = Catalog.Dir
module Inode = Storage.Inode
module Pack = Storage.Pack
module Vvec = Vv.Version_vector

type violation = { v_code : string; v_detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.v_code v.v_detail

(* ---- the durability model ----
   Per path: the body of the last write that definitely committed, plus
   the bodies of later attempts that failed ambiguously (an error at the
   US does not prove the commit did not execute at the SS — e.g. a lost
   commit reply). The final content of a non-conflicted file must be one
   of these. *)

type file_model = {
  mutable fm_definite : string;
  mutable fm_possible : string list;
}

type model = (string, file_model) Hashtbl.t

let model_create () : model = Hashtbl.create 32

let model_wrote (m : model) ~path ~body ~ok =
  let fm =
    match Hashtbl.find_opt m path with
    | Some fm -> fm
    | None ->
      let fm = { fm_definite = ""; fm_possible = [] } in
      Hashtbl.add m path fm;
      fm
  in
  if ok then begin
    fm.fm_definite <- body;
    fm.fm_possible <- []
  end
  else fm.fm_possible <- body :: fm.fm_possible

let model_admissible fm body =
  String.equal body fm.fm_definite
  || List.exists (String.equal body) fm.fm_possible

(* ---- helpers ---- *)

let alive_kernels w =
  List.filter (fun k -> k.K.alive) (World.kernels w)

let vf code fmt = Format.kasprintf (fun s -> { v_code = code; v_detail = s }) fmt

(* The conflict flag of (fg, ino), read at the filegroup's current CSS. *)
let conflicted w ~fg ~ino =
  match alive_kernels w with
  | [] -> false
  | k :: _ -> (
    let css = World.kernel w (K.fg_info k fg).K.css_site in
    match Css.find_file css fg ino with
    | Some cf -> cf.K.css_conflict
    | None -> false)

(* ---- per-site quiesce residue ---- *)

let check_site w k =
  let out = ref [] in
  let add v = out := v :: !out in
  let site = k.K.site in
  (* US side: every open closed, no dirty state, no write-behind runs. *)
  Hashtbl.iter
    (fun _ (o : K.ofile) ->
      if not o.K.o_closed then
        add (vf "orphan-open" "site %d: %a still open (mode %s)" site Gfile.pp
               o.K.o_gf
               (match o.K.o_mode with
                | Proto.Mode_modify -> "modify"
                | _ -> "read"));
      if o.K.o_dirty then
        add (vf "orphan-dirty" "site %d: %a dirty after quiesce" site Gfile.pp
               o.K.o_gf);
      if o.K.o_wb <> None then
        add (vf "orphan-wb" "site %d: %a has an unflushed write-behind run"
               site Gfile.pp o.K.o_gf))
    k.K.open_files;
  (* Leases: the final merge scrubs every lease table; a survivor means a
     scrub path dropped entries without sending the deferred closes. *)
  let nleases = Openlease.length k.K.open_leases in
  if nleases > 0 then
    add (vf "orphan-lease" "site %d: %d lease(s) survived the merge scrub"
           site nleases);
  (* SS side: no shadow sessions, and every serving registration must be
     backed by an actual open (or lease) at the using site it names. *)
  Hashtbl.iter
    (fun gf (s : K.ss_open) ->
      if s.K.s_shadow <> None then
        add (vf "orphan-shadow" "site %d: %a has a live shadow session" site
               Gfile.pp gf);
      Site.Map.iter
        (fun us count ->
          let uk = World.kernel w us in
          let backed =
            Hashtbl.fold
              (fun _ (o : K.ofile) acc ->
                acc || (Gfile.equal o.K.o_gf gf && not o.K.o_closed))
              uk.K.open_files false
            || Openlease.find_entry uk.K.open_leases gf <> None
          in
          if not backed then
            add (vf "orphan-ss-registration"
                   "site %d: still serving %a for US %d (count %d) with no \
                    open or lease behind it"
                   site Gfile.pp gf us count))
        s.K.s_uss)
    k.K.ss_opens;
  (* Shared descriptors: the workload closes everything it opens. *)
  Hashtbl.iter
    (fun (origin, serial) (f : K.shared_fd) ->
      if f.K.f_refs > 0 then
        add (vf "orphan-fd" "site %d: descriptor (%d,%d) on %a still has %d ref(s)"
               site origin serial Gfile.pp f.K.f_gf f.K.f_refs))
    k.K.shared_fds;
  (* Propagation fully drained. *)
  if not (Queue.is_empty k.K.prop_queue) || not (Gfile.Set.is_empty k.K.prop_pending)
  then
    add (vf "prop-not-drained" "site %d: %d queued / %d pending propagation items"
           site (Queue.length k.K.prop_queue)
           (Gfile.Set.cardinal k.K.prop_pending));
  (* CSS lock state: with nothing open, no readers, writers or leases. *)
  Hashtbl.iter
    (fun fg (cfg : K.css_fg) ->
      if Css.is_css k fg then
        Hashtbl.iter
          (fun ino (cf : K.css_file) ->
            if cf.K.writer <> None then
              add (vf "css-stale-writer" "CSS %d: (%d,%d) has a writer at quiesce"
                     site fg ino);
            if not (Site.Map.is_empty cf.K.readers) then
              add (vf "css-stale-reader"
                     "CSS %d: (%d,%d) has %d reader entrie(s) at quiesce" site fg
                     ino (Site.Map.cardinal cf.K.readers));
            if not (Site.Set.is_empty cf.K.leases) then
              add (vf "css-stale-lease"
                     "CSS %d: (%d,%d) has %d lease holder(s) at quiesce" site fg
                     ino (Site.Set.cardinal cf.K.leases)))
          cfg.K.css_files)
    k.K.css_state;
  (* Disk allocation maps: no orphan shadow pages, no double allocation. *)
  Hashtbl.iter
    (fun fg pack ->
      List.iter
        (fun e ->
          add (vf "fsck" "site %d fg %d: %a" site fg Pack.pp_fsck_error e))
        (Pack.fsck pack))
    k.K.packs;
  !out

(* ---- cross-copy version-vector lattice + convergence ---- *)

let check_copies w =
  let out = ref [] in
  let add v = out := v :: !out in
  (* (fg, ino) -> (site, pack, inode) list over every alive site's packs. *)
  let copies : (int * int, (Site.t * Pack.t * Inode.t) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun k ->
      Hashtbl.iter
        (fun fg pack ->
          List.iter
            (fun (i : Inode.t) ->
              if not i.Inode.deleted then begin
                let key = (fg, i.Inode.ino) in
                let cell =
                  match Hashtbl.find_opt copies key with
                  | Some c -> c
                  | None ->
                    let c = ref [] in
                    Hashtbl.add copies key c;
                    c
                in
                cell := (k.K.site, pack, i) :: !cell
              end)
            (Pack.inodes pack))
        k.K.packs)
    (alive_kernels w);
  Hashtbl.iter
    (fun (fg, ino) cell ->
      let rec pairs = function
        | [] -> ()
        | (s1, p1, (i1 : Inode.t)) :: rest ->
          List.iter
            (fun (s2, p2, (i2 : Inode.t)) ->
              match Vvec.compare_vv i1.Inode.vv i2.Inode.vv with
              | Vvec.Equal ->
                let b1 = Pack.read_string p1 i1 and b2 = Pack.read_string p2 i2 in
                let same =
                  if Inode.is_directory i1 && Inode.is_directory i2 then
                    (* A copy that does not even decode is its own finding;
                       report it as divergence rather than crash the checker. *)
                    match Dir.decode b1, Dir.decode b2 with
                    | d1, d2 -> Dir.equal d1 d2
                    | exception _ -> false
                  else String.equal b1 b2
                in
                if not same then
                  add (vf "split-brain"
                         "(%d,%d): equal vv %s at sites %d and %d but contents \
                          differ" fg ino (Vvec.to_string i1.Inode.vv) s1 s2)
              | Vvec.Concurrent ->
                if not (conflicted w ~fg ~ino) then
                  add (vf "undetected-conflict"
                         "(%d,%d): concurrent vv %s (site %d) vs %s (site %d) \
                          with no conflict flag at the CSS" fg ino
                         (Vvec.to_string i1.Inode.vv) s1
                         (Vvec.to_string i2.Inode.vv) s2)
              | Vvec.Dominates | Vvec.Dominated ->
                if not (conflicted w ~fg ~ino) then
                  add (vf "propagation-not-converged"
                         "(%d,%d): site %d holds %s, site %d holds %s after \
                          quiesce" fg ino s1 (Vvec.to_string i1.Inode.vv) s2
                         (Vvec.to_string i2.Inode.vv)))
            rest;
          pairs rest
      in
      pairs !cell)
    copies;
  !out

(* ---- durability + readability of committed writes ---- *)

let check_model w (m : model) =
  let out = ref [] in
  let add v = out := v :: !out in
  let ks = alive_kernels w in
  Hashtbl.iter
    (fun path fm ->
      (* Locate the file to read its conflict flag. *)
      let gf =
        match ks with
        | [] -> None
        | k :: _ -> (
          let p = World.proc w k.K.site in
          try Some (Kernel.resolve k p path) with K.Error _ -> None)
      in
      let is_conflicted =
        match gf with
        | Some g -> conflicted w ~fg:g.Gfile.fg ~ino:g.Gfile.ino
        | None -> false
      in
      if is_conflicted then begin
        (* Concurrent partition writes: content equality is undefined, but
           no version may be lost — some pack must still hold a copy. *)
        match gf with
        | None -> ()
        | Some g ->
          let preserved =
            List.exists
              (fun k ->
                match Hashtbl.find_opt k.K.packs g.Gfile.fg with
                | Some pack -> (
                  match Pack.find_inode pack g.Gfile.ino with
                  | Some i -> not i.Inode.deleted
                  | None -> false)
                | None -> false)
              ks
          in
          if not preserved then
            add (vf "conflict-data-lost" "%s: conflicted but no copy survives"
                   path)
      end
      else begin
        let reads =
          List.map
            (fun k ->
              let p = World.proc w k.K.site in
              match Kernel.read_file k p path with
              | body -> (k.K.site, Ok body)
              | exception K.Error (e, _) -> (k.K.site, Error e))
            ks
        in
        List.iter
          (fun (site, r) ->
            match r with
            | Error e ->
              add (vf "unreadable" "%s: read failed at site %d: %s" path site
                     (Proto.errno_to_string e))
            | Ok body ->
              if not (model_admissible fm body) then
                add (vf "committed-write-lost"
                       "%s at site %d: %S is neither the last committed body \
                        nor any ambiguous later write" path site
                       (if String.length body > 40 then String.sub body 0 40
                        else body)))
          reads;
        match List.filter_map (fun (_, r) -> Result.to_option r) reads with
        | b :: rest when not (List.for_all (String.equal b) rest) ->
          add (vf "read-divergence" "%s: alive sites disagree on content" path)
        | _ -> ()
      end)
    m;
  !out

(* ---- namespace convergence: create/unlink churn agrees everywhere ---- *)

let check_namespace w =
  let out = ref [] in
  let ks = alive_kernels w in
  for i = 0 to 15 do
    let path = Printf.sprintf "/work/extra%d" i in
    let states =
      List.map
        (fun k ->
          let p = World.proc w k.K.site in
          match Kernel.stat k p path with
          | _ -> (k.K.site, true)
          | exception K.Error _ -> (k.K.site, false))
        ks
    in
    match states with
    | (_, first) :: rest when not (List.for_all (fun (_, b) -> b = first) rest)
      ->
      out :=
        vf "namespace-divergence" "%s: present at %s, absent at %s" path
          (String.concat ","
             (List.filter_map
                (fun (s, b) -> if b then Some (string_of_int s) else None)
                states))
          (String.concat ","
             (List.filter_map
                (fun (s, b) -> if b then None else Some (string_of_int s))
                states))
        :: !out
    | _ -> ()
  done;
  !out

let check w (m : model) =
  (* Order is load-bearing: [check_model] / [check_namespace] issue real
     reads and stats, and a read plants a fresh retained lease (plus CSS
     reader/holder entries) by design — so the residue checks must walk
     the quiesced state *before* any check perturbs it. OCaml evaluates
     list literals right-to-left; bind explicitly. *)
  let site_v = List.concat_map (check_site w) (alive_kernels w) in
  let copies_v = check_copies w in
  let model_v = check_model w m in
  let namespace_v = check_namespace w in
  List.concat [ site_v; copies_v; model_v; namespace_v ]
