(* The fault-soak driver: replay a schedule against a live cluster.

   One run = one world, one seeded workload generator, one seeded fault
   schedule. Segments alternate a batch of workload operations with one
   injected fault; fault payloads are interpreted against the cluster
   state of the moment (deterministic, since the whole run is). After the
   last segment the driver quiesces — message loss off, every dead site
   restarted and scavenged, network healed, merge + reconciliation run,
   engine settled — and hands the world to the invariant checker.

   Two deliberate ordering rules keep the invariants meaningful:
   - loss bursts cover exactly one workload batch and are always cleared
     before a membership fault or the quiesce, so the recovery protocols
     themselves never run under injected loss (the paper's reconfiguration
     protocols assume fail-stop sites, not lossy links mid-merge);
   - every dead site is restarted (scavenging its packs) before the final
     heal: [World.heal_and_merge] revives kernels without scavenging, and
     un-reclaimed shadow pages would show up as false fsck orphans. *)

module World = Locus.World
module Workload = Locus.Workload
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Css = Locus_core.Css
module Openlease = Locus_core.Openlease
module Engine = Sim.Engine
module Netsim = Net.Netsim
module Site = Net.Site
module Page = Storage.Page

(* Re-introducible bug classes, for demonstrating what the harness
   catches (and shrinks) and what the recovery protocols absorb.

   [Bug_silent_scrub] re-creates the Lru notify-policy bug: lease tables
   wiped without firing the deferred closes, stranding SS serving
   registrations and CSS reader/lease entries. The section 5.6 rebuild
   (CSS lock-table reconstruction plus the SS-side serving revalidation)
   now repairs exactly that class at the quiesce merge, so runs with this
   bug are expected to pass — pinning the self-heal.

   [Bug_abandoned_open] re-creates the error-path leak this PR fixed with
   [Us.release]: an open succeeds, then the path abandons the handle
   without closing it. The orphan lives at the using site, where no
   recovery protocol looks, so the invariant checker must flag it. *)
type bug = Bug_silent_scrub | Bug_abandoned_open

type outcome = {
  oc_seed : int;
  oc_ops : int;
  oc_report : Workload.report;
  oc_injected : (string * int) list; (* fault label -> times injected *)
  oc_skipped : int; (* faults skipped because preconditions failed *)
  oc_violations : Invariant.violation list;
  oc_events : int; (* engine events executed over the whole run *)
}

let alive_sites w =
  List.filter (fun s -> (World.kernel w s).K.alive) (World.sites w)

let dead_sites w =
  List.filter (fun s -> not (World.kernel w s).K.alive) (World.sites w)

let lowest = function [] -> None | l -> Some (List.fold_left min (List.hd l) l)

let rotate n l =
  let len = List.length l in
  if len = 0 then l
  else begin
    let n = n mod len in
    let rec go i acc rest =
      if i = 0 then rest @ List.rev acc
      else
        match rest with
        | x :: tl -> go (i - 1) (x :: acc) tl
        | [] -> List.rev acc
    in
    go n [] l
  end

let run ?(drop = []) ?bug ~seed ~ops () =
  let sched = Schedule.mask (Schedule.generate ~seed ~ops) ~drop in
  let base = World.default_config ~n_sites:5 () in
  let config = { base with World.seed = Int64.of_int (0x50AC00 + seed) } in
  let w = World.create ~config () in
  let net = World.net w in
  let spec =
    { Workload.default_spec with Workload.seed = Int64.of_int (0xBEEF00 + seed) }
  in
  Workload.setup w spec;
  let model = Invariant.model_create () in
  let observe = function
    | Workload.Wrote { path; body; ok; _ } ->
      Invariant.model_wrote model ~path ~body ~ok
    | Workload.Dirop _ -> ()
  in
  let g = Workload.make_gen ~observe spec in
  let injected : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let skipped = ref 0 in
  let events = ref 0 in
  let fault_serial = ref 0 in
  let loss_active = ref false in
  let count_injected f =
    let l = Schedule.fault_label f in
    Hashtbl.replace injected l (1 + Option.value ~default:0 (Hashtbl.find_opt injected l))
  in
  (* A write issued by a fault goes through the same durability model as a
     workload write: an ambiguous failure may still have committed. *)
  let model_write k path body =
    let p = World.proc w (Kernel.site k) in
    let ok =
      match Kernel.write_file k p path body with
      | () -> true
      | exception K.Error _ -> false
    in
    Invariant.model_wrote model ~path ~body ~ok;
    ok
  in
  let detect_from_survivors () =
    match lowest (alive_sites w) with
    | Some initiator -> ignore (World.detect_failures w ~initiator)
    | None -> ()
  in
  let apply_fault f =
    match f with
    | Schedule.Crash sel ->
      let alive = alive_sites w in
      (* Keep at least two sites up so the cluster stays a cluster. *)
      if List.length alive < 3 then incr skipped
      else begin
        let victim = List.nth alive (sel mod List.length alive) in
        World.crash_site w victim;
        detect_from_survivors ();
        count_injected f
      end
    | Schedule.Restart sel -> (
      match dead_sites w with
      | [] -> incr skipped
      | dead ->
        (* Back up as an island; it rejoins at the next heal/merge. *)
        World.restart_site w (List.nth dead (sel mod List.length dead));
        count_injected f)
    | Schedule.Partition_split sel ->
      let sites = List.sort compare (World.sites w) in
      let n = List.length sites in
      if n < 2 then incr skipped
      else begin
        let pivot = 1 + (sel mod (n - 1)) in
        let rotated = rotate (sel / (n - 1)) sites in
        let rec take i = function
          | x :: rest when i > 0 -> x :: take (i - 1) rest
          | _ -> []
        in
        let rec dropn i = function
          | _ :: rest when i > 0 -> dropn (i - 1) rest
          | l -> l
        in
        ignore (World.partition w [ take pivot rotated; dropn pivot rotated ]);
        count_injected f
      end
    | Schedule.Heal ->
      List.iter (World.restart_site w) (dead_sites w);
      ignore (World.heal_and_merge w);
      count_injected f
    | Schedule.Loss_burst p ->
      (* Covers exactly the next workload batch; cleared before any
         recovery protocol runs. *)
      Netsim.set_drop_probability net p;
      loss_active := true;
      count_injected f
    | Schedule.Lease_break (ssel, fsel) -> (
      match alive_sites w with
      | [] -> incr skipped
      | alive ->
        let site = List.nth alive (ssel mod List.length alive) in
        let k = World.kernel w site in
        incr fault_serial;
        let body = Printf.sprintf "int main(){/* fault %d */}" !fault_serial in
        ignore (model_write k (Workload.file_path (fsel mod spec.Workload.n_files)) body);
        count_injected f)
    | Schedule.Mid_commit_kill (ssel, fsel) ->
      let alive = alive_sites w in
      if List.length alive < 3 then incr skipped
      else begin
        let site = List.nth alive (ssel mod List.length alive) in
        let k = World.kernel w site in
        let p = World.proc w site in
        let path = Workload.file_path (fsel mod spec.Workload.n_files) in
        (match Kernel.open_path k p path Proto.Mode_modify with
        | exception K.Error _ -> incr skipped
        | fd ->
          count_injected f;
          (* Push past the write-behind window so pages reach the SS's
             shadow session, then kill the SS before any commit. *)
          let payload = String.make ((k.K.config.K.bulk_window + 1) * Page.size) 'k' in
          (try Kernel.write_fd k p fd payload with K.Error _ -> ());
          let ss =
            match Kernel.fd_of k p fd with
            | f -> (
              match f.K.f_ofile with Some o -> o.K.o_ss | None -> site)
            | exception K.Error _ -> site
          in
          World.crash_site w ss;
          detect_from_survivors ();
          if not (Site.equal ss site) then
            (* The US survived: its cleanup closed the update, and the fd
               release must find nothing left to flush. *)
            try Kernel.close_fd k p fd with K.Error _ -> ())
      end
    | Schedule.Prop_stall (ssel, fsel) ->
      let alive = alive_sites w in
      if List.length alive < 3 then incr skipped
      else begin
        let site = List.nth alive (ssel mod List.length alive) in
        let k = World.kernel w site in
        let path = Workload.file_path (fsel mod spec.Workload.n_files) in
        incr fault_serial;
        let body = Printf.sprintf "int main(){/* fault %d */}" !fault_serial in
        if model_write k path body then begin
          (* Kill the site that just committed the latest version before
             the other copy holders manage to pull it. *)
          count_injected f;
          let p = World.proc w site in
          match Kernel.resolve k p path with
          | exception K.Error _ -> ()
          | gf -> (
            let css = World.kernel w (K.fg_info k gf.Catalog.Gfile.fg).K.css_site in
            match Css.find_file css gf.Catalog.Gfile.fg gf.Catalog.Gfile.ino with
            | None -> ()
            | Some cf ->
              let latest_holders =
                Site.Map.fold
                  (fun s vv acc ->
                    if Vv.Version_vector.equal vv cf.K.latest_vv then s :: acc
                    else acc)
                  cf.K.site_vv []
              in
              let still_alive = alive_sites w in
              match
                List.find_opt
                  (fun s ->
                    List.mem s still_alive && List.length still_alive > 2)
                  latest_holders
              with
              | Some victim ->
                World.crash_site w victim;
                detect_from_survivors ()
              | None -> ())
        end
        else incr skipped
      end
  in
  (* ---- main loop ---- *)
  List.iter
    (fun seg ->
      for _ = 1 to seg.Schedule.seg_ops do
        Workload.gen_step w g
      done;
      (* Let background machinery (notifications, write-behind timers,
         propagation pulls) churn between batches. *)
      events := !events + Engine.run_for (World.engine w) 5.0;
      if !loss_active then begin
        Netsim.set_drop_probability net 0.0;
        loss_active := false
      end;
      (match bug with
      | Some Bug_silent_scrub ->
        (* Wipe live lease tables without firing the deferred closes
           (what ~notify:false on the wrong path does). *)
        List.iter
          (fun k -> if k.K.alive then Openlease.clear k.K.open_leases)
          (World.kernels w)
      | Some Bug_abandoned_open -> (
        (* One error path's worth of damage per segment: open a
           working-set file and abandon the handle, as the pre-Us.release
           error paths did when an RPC raised between open and close. *)
        match alive_sites w with
        | [] -> ()
        | s :: _ -> (
          let k = World.kernel w s in
          let p = World.proc w s in
          incr fault_serial;
          let path =
            Workload.file_path (!fault_serial mod spec.Workload.n_files)
          in
          match Kernel.resolve k p path with
          | gf -> (
            try ignore (Us.open_gf k gf Proto.Mode_read) with K.Error _ -> ())
          | exception K.Error _ -> ()))
      | None -> ());
      Option.iter apply_fault seg.Schedule.seg_fault)
    sched.Schedule.segments;
  (* ---- quiesce ---- *)
  Netsim.set_drop_probability net 0.0;
  loss_active := false;
  List.iter (World.restart_site w) (dead_sites w);
  ignore (World.heal_and_merge w);
  let n, status = World.settle w in
  events := !events + n;
  let settle_violation =
    match status with
    | `Idle -> []
    | `Limit ->
      [ { Invariant.v_code = "livelock";
          v_detail = "World.settle exhausted its event budget after quiesce" } ]
  in
  let violations = settle_violation @ Invariant.check w model in
  (match Sys.getenv_opt "SOAK_TRACE" with
  | Some sub ->
    List.iter
      (fun (e : Sim.Trace.event) ->
        let s = Printf.sprintf "%.3f [%s] %s" e.Sim.Trace.time e.Sim.Trace.tag e.Sim.Trace.detail in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          nl = 0 || go 0
        in
        if contains s sub then print_endline s)
      (Sim.Trace.events (Sim.Engine.trace (World.engine w)))
  | None -> ());
  {
    oc_seed = seed;
    oc_ops = ops;
    oc_report = Workload.gen_report g;
    oc_injected =
      Hashtbl.fold (fun l c acc -> (l, c) :: acc) injected []
      |> List.sort compare;
    oc_skipped = !skipped;
    oc_violations = violations;
    oc_events = !events;
  }

let failed oc = oc.oc_violations <> []
