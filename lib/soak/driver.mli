(** The fault-soak driver.

    One run = one world (5 sites, one filegroup packed everywhere), one
    seeded workload generator, one seeded fault schedule; segments
    alternate a batch of operations with one injected fault. After the
    last segment the driver quiesces (loss off, dead sites restarted and
    scavenged, network healed, merge run, engine settled) and hands the
    world to {!Invariant.check}. Fully deterministic in [(seed, ops,
    drop)]. *)

type bug =
  | Bug_silent_scrub
      (** Wipe live lease tables without firing the deferred closes (what
          the Lru [~notify:false] policy would do on the wrong path),
          stranding SS serving registrations and CSS reader/lease
          entries. The §5.6 merge rebuild absorbs exactly this class at
          quiesce, so runs with this bug are expected to {e pass} —
          pinning the self-heal. *)
  | Bug_abandoned_open
      (** Abandon a successfully opened handle without closing it, as the
          pre-[Us.release] error paths did. The orphan lives at the using
          site, where no recovery protocol looks, so the invariant
          checker must flag it. *)

type outcome = {
  oc_seed : int;
  oc_ops : int;
  oc_report : Locus.Workload.report;
  oc_injected : (string * int) list;  (** fault label -> times injected *)
  oc_skipped : int;  (** faults skipped because preconditions failed *)
  oc_violations : Invariant.violation list;
  oc_events : int;  (** engine events executed over the whole run *)
}

val run : ?drop:int list -> ?bug:bug -> seed:int -> ops:int -> unit -> outcome

val failed : outcome -> bool
