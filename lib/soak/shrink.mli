(** Shrink a failing soak scenario to a minimal replayable repro.

    A scenario is fully named by [(seed, ops, dropped-fault indices)]:
    schedule and op stream are pure functions of [(seed, ops)], so the
    triple replays the identical run. *)

type scenario = { sc_seed : int; sc_ops : int; sc_drop : int list }

val repro_command : scenario -> string
(** One-line replay command for the bench harness's soak subcommand. *)

val shrink :
  ?budget:int -> fails:(scenario -> bool) -> scenario -> scenario * int
(** Alternate op-count halving and greedy fault-dropping until a fixpoint
    or [budget] replays (default 40). [fails] must return whether the
    scenario still reproduces the failure. Returns the minimal scenario
    found and the number of replays spent. *)
