(* Unboxed 4-ary min-heap: the scheduler's hot path.

   The original implementation kept one ['a entry option array] and paid a
   boxed [Some {time; seq; payload}] record per push plus a [(time, payload)]
   tuple per pop — four-plus minor-heap allocations per event. At the
   millions-of-events-per-second the flood workload targets that allocation
   (and the pointer chasing it forces on every comparison) dominates the
   scheduler. This layout stores the three fields in parallel arrays — a
   flat [float array] for times (unboxed storage, so comparisons never
   dereference), an [int array] for the FIFO tie-break sequence, and an
   ['a array] for payloads — and sifts a 4-ary tree, halving the depth of a
   binary heap. [push] and [pop_into] allocate nothing (amortized; growth
   doubles the arrays).

   Determinism: ordering is the strict total order (time, seq), identical
   to the old heap's, and a heap pop always returns the minimum of a total
   order regardless of arity or internal layout — so pop order, and with it
   every seeded simulation, is bit-identical to the boxed binary heap's. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable pays : 'a array; (* empty until the first push donates a filler *)
  mutable len : int;
  mutable next_seq : int;
  mutable filler : 'a option;
      (* pads free payload slots so popped events are not retained; holds
         the first payload ever pushed (one value kept alive, documented) *)
}

let initial_capacity = 64

let create () =
  {
    times = Array.make initial_capacity 0.0;
    seqs = Array.make initial_capacity 0;
    pays = [||];
    len = 0;
    next_seq = 0;
    filler = None;
  }

let is_empty t = t.len = 0

let size t = t.len

let fill_value t = match t.filler with Some v -> v | None -> assert false

let clear t =
  if t.len > 0 then Array.fill t.pays 0 t.len (fill_value t);
  t.len <- 0

(* (time, seq) strict order between two occupied slots. The float loads
   stay unboxed: [times] is a flat float array. *)
let before (times : float array) (seqs : int array) i j =
  let ti = times.(i) and tj = times.(j) in
  ti < tj || (ti = tj && seqs.(i) < seqs.(j))

let swap t i j =
  let times = t.times and seqs = t.seqs and pays = t.pays in
  let ft = times.(i) in
  times.(i) <- times.(j);
  times.(j) <- ft;
  let s = seqs.(i) in
  seqs.(i) <- seqs.(j);
  seqs.(j) <- s;
  let p = pays.(i) in
  pays.(i) <- pays.(j);
  pays.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) lsr 2 in
    if before t.times t.seqs i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t n i =
  let base = (i lsl 2) + 1 in
  if base < n then begin
    let times = t.times and seqs = t.seqs in
    (* smallest of up to four children *)
    let b = base in
    let c = base + 1 in
    let b = if c < n && before times seqs c b then c else b in
    let c = base + 2 in
    let b = if c < n && before times seqs c b then c else b in
    let c = base + 3 in
    let b = if c < n && before times seqs c b then c else b in
    if before times seqs b i then begin
      swap t i b;
      sift_down t n b
    end
  end

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0.0 in
  Array.blit t.times 0 times 0 t.len;
  t.times <- times;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.len;
  t.seqs <- seqs;
  let pays = Array.make cap (fill_value t) in
  Array.blit t.pays 0 pays 0 t.len;
  t.pays <- pays

let push t ~time payload =
  if Array.length t.pays = 0 then begin
    (* First push: the payload arrays materialize now, using this payload
       as the filler for free slots. *)
    t.pays <- Array.make (Array.length t.times) payload;
    t.filler <- Some payload
  end
  else if t.len = Array.length t.times then grow t;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.pays.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.len <- i + 1;
  sift_up t i

(* Remove the root; shared by the boxed and unboxed pop entry points.
   The caller has read whatever it needs from slot 0. *)
let remove_top t =
  let top = t.pays.(0) in
  let n = t.len - 1 in
  t.len <- n;
  if n > 0 then begin
    t.times.(0) <- t.times.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.pays.(0) <- t.pays.(n);
    sift_down t n 0
  end;
  t.pays.(n) <- fill_value t;
  top

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, remove_top t)
  end

let pop_into t ~time =
  assert (t.len > 0);
  time.(0) <- t.times.(0);
  remove_top t

let top_time t =
  assert (t.len > 0);
  t.times.(0)

let peek_time t = if t.len = 0 then None else Some t.times.(0)
