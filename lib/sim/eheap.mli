(** Unboxed 4-ary min-heap of timestamped events.

    Ties on the timestamp are broken by insertion order, which keeps the
    simulator deterministic when many events fire at the same instant.

    The layout is allocation-lean: times live in a flat [float array]
    (unboxed storage), tie-break sequence numbers in an [int array], and
    payloads in a parallel ['a array], so {!push} and {!pop_into} allocate
    nothing on the steady state. Pop order is the minimum of the strict
    total order [(time, seq)] and therefore bit-identical to the previous
    boxed binary heap — seeded runs replay unchanged.

    One payload reference (the first ever pushed) is retained for the
    heap's lifetime as the filler for free slots. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. Allocates
    the result pair; the engine's hot loop uses {!pop_into} instead. *)

val pop_into : 'a t -> time:float array -> 'a
(** Remove the earliest event, writing its timestamp into [time.(0)] (a
    one-element scratch cell, so the float never boxes) and returning the
    payload. The heap must not be empty — guard with {!is_empty}. *)

val top_time : 'a t -> float
(** Timestamp of the earliest event. The heap must not be empty. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
