(** Named counters, accumulators and histograms for experiment accounting.

    Experiments snapshot counters around an operation to report, e.g., the
    number of network messages an open required. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment the named counter by one. *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter. *)

val get : t -> string -> int
(** Value of the named counter (0 if never touched). *)

(** {1 Pre-resolved handles}

    [incr]/[add]/[hist_observe] hash their name string on every call. Hot
    paths (the event core, the network delivery path, the flood workload's
    per-operation accounting) resolve a handle once and then pay a single
    memory write per update. The string API remains the interface for
    reports and cold paths; both views update the same cells. *)

type counter

val counter : t -> string -> counter
(** The named counter's cell, creating it at zero. One string hash; every
    later {!cincr}/{!cadd} through the handle is hash-free. *)

val cincr : counter -> unit

val cadd : counter -> int -> unit

val cget : counter -> int

val observe : t -> string -> float -> unit
(** Record one sample of the named series. *)

val mean : t -> string -> float
(** Mean of a series; 0 if empty. *)

val samples : t -> string -> float list
(** All recorded samples, oldest first. *)

val count_samples : t -> string -> int

val max_sample : t -> string -> float
(** Largest recorded sample (correct for all-negative series); 0.0 when no
    samples have been recorded. *)

(** {1 Histograms}

    Named latency/size distributions with percentile accessors. The RPC
    transport layer feeds one histogram per request tag
    (["rpc.latency.<tag>"], ["rpc.bytes.<tag>"]); the benchmark harness
    reports p50/p95/p99 from them. *)

val hist_observe : t -> string -> float -> unit
(** Record one sample in the named histogram. *)

type histogram

val histogram : t -> string -> histogram
(** Pre-resolved histogram handle (see {!counter}): the named histogram,
    created empty if it does not exist. *)

val hobserve : histogram -> float -> unit
(** Record one sample through a handle, without hashing the name. *)

val hist_count : t -> string -> int
(** Samples recorded in the named histogram (0 if never touched). *)

val hist_percentile : t -> string -> float -> float
(** [hist_percentile t name p] is the nearest-rank [p]-th percentile
    ([p] in [0..100]) of the named histogram; 0 if empty. Nearest-rank
    guarantees monotonicity: [p <= q] implies
    [hist_percentile t name p <= hist_percentile t name q]. *)

val hist_mean : t -> string -> float

type hist_summary = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  hmax : float;
}

val hist_summary : t -> string -> hist_summary

val hist_names : t -> string list
(** All histogram names, sorted. *)

val reset : t -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

type snapshot

val snapshot : t -> snapshot
(** Hash-indexed copy of every counter's current value; {!delta} against
    it costs O(counters), independent of the snapshot's size. *)

val delta : t -> snapshot -> (string * int) list
(** Counter deltas since [snapshot], restricted to counters that changed. *)

val delta_of : t -> snapshot -> string -> int
(** Delta of a single counter since [snapshot]. *)
