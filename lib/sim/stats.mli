(** Named counters, accumulators and histograms for experiment accounting.

    Experiments snapshot counters around an operation to report, e.g., the
    number of network messages an open required. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment the named counter by one. *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter. *)

val get : t -> string -> int
(** Value of the named counter (0 if never touched). *)

val observe : t -> string -> float -> unit
(** Record one sample of the named series. *)

val mean : t -> string -> float
(** Mean of a series; 0 if empty. *)

val samples : t -> string -> float list
(** All recorded samples, oldest first. *)

val count_samples : t -> string -> int

val max_sample : t -> string -> float
(** Largest recorded sample (correct for all-negative series); 0.0 when no
    samples have been recorded. *)

(** {1 Histograms}

    Named latency/size distributions with percentile accessors. The RPC
    transport layer feeds one histogram per request tag
    (["rpc.latency.<tag>"], ["rpc.bytes.<tag>"]); the benchmark harness
    reports p50/p95/p99 from them. *)

val hist_observe : t -> string -> float -> unit
(** Record one sample in the named histogram. *)

val hist_count : t -> string -> int
(** Samples recorded in the named histogram (0 if never touched). *)

val hist_percentile : t -> string -> float -> float
(** [hist_percentile t name p] is the nearest-rank [p]-th percentile
    ([p] in [0..100]) of the named histogram; 0 if empty. Nearest-rank
    guarantees monotonicity: [p <= q] implies
    [hist_percentile t name p <= hist_percentile t name q]. *)

val hist_mean : t -> string -> float

type hist_summary = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  hmax : float;
}

val hist_summary : t -> string -> hist_summary

val hist_names : t -> string list
(** All histogram names, sorted. *)

val reset : t -> unit

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

type snapshot

val snapshot : t -> snapshot

val delta : t -> snapshot -> (string * int) list
(** Counter deltas since [snapshot], restricted to counters that changed. *)

val delta_of : t -> snapshot -> string -> int
(** Delta of a single counter since [snapshot]. *)
