type hist = {
  mutable h_data : float array;
  mutable h_len : int;
  mutable h_sorted : bool;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    series = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

(* A counter handle IS the underlying cell: resolving it once (one string
   hash) lets a hot path increment with a single memory write. The string
   API below stays for reports and cold paths. *)
type counter = int ref

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let cincr (c : counter) = Stdlib.incr c

let cadd (c : counter) n = c := !c + n

let cget (c : counter) = !c

let incr t name = Stdlib.incr (counter t name)

let add t name n =
  let r = counter t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let series t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.series name r;
    r

let observe t name v =
  let r = series t name in
  r := v :: !r

let samples t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let count_samples t name = List.length (samples t name)

let mean t name =
  match samples t name with
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let max_sample t name =
  (* Fold from neg_infinity so an all-negative series reports its true
     maximum; 0.0 is returned only for an empty series. *)
  match samples t name with
  | [] -> 0.0
  | l -> List.fold_left Float.max neg_infinity l

(* ---- histograms ---- *)

(* Histogram handles, like counter handles: resolve the name once, then
   every observation is an array store. *)
type histogram = hist

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = { h_data = Array.make 64 0.0; h_len = 0; h_sorted = true } in
    Hashtbl.add t.hists name h;
    h

let histogram = hist

let hobserve (h : histogram) v =
  if h.h_len = Array.length h.h_data then begin
    let bigger = Array.make (2 * h.h_len) 0.0 in
    Array.blit h.h_data 0 bigger 0 h.h_len;
    h.h_data <- bigger
  end;
  h.h_data.(h.h_len) <- v;
  h.h_len <- h.h_len + 1;
  h.h_sorted <- h.h_sorted && (h.h_len < 2 || h.h_data.(h.h_len - 2) <= v)

let hist_observe t name v = hobserve (hist t name) v

let ensure_sorted h =
  if not h.h_sorted then begin
    let live = Array.sub h.h_data 0 h.h_len in
    Array.sort Float.compare live;
    Array.blit live 0 h.h_data 0 h.h_len;
    h.h_sorted <- true
  end

let hist_count t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.h_len | None -> 0

(* Nearest-rank percentile: guarantees p <= q implies value(p) <= value(q). *)
let hist_percentile t name p =
  match Hashtbl.find_opt t.hists name with
  | None -> 0.0
  | Some h when h.h_len = 0 -> 0.0
  | Some h ->
    ensure_sorted h;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_len)) in
    let idx = max 0 (min (h.h_len - 1) (rank - 1)) in
    h.h_data.(idx)

let hist_mean t name =
  match Hashtbl.find_opt t.hists name with
  | None -> 0.0
  | Some h when h.h_len = 0 -> 0.0
  | Some h ->
    let sum = ref 0.0 in
    for i = 0 to h.h_len - 1 do
      sum := !sum +. h.h_data.(i)
    done;
    !sum /. float_of_int h.h_len

type hist_summary = {
  n : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  hmax : float;
}

let hist_summary t name =
  {
    n = hist_count t name;
    mean = hist_mean t name;
    p50 = hist_percentile t name 50.0;
    p95 = hist_percentile t name 95.0;
    p99 = hist_percentile t name 99.0;
    hmax = hist_percentile t name 100.0;
  }

let hist_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.hists []
  |> List.sort String.compare

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series;
  Hashtbl.reset t.hists

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A snapshot is a hashtable, not an assoc list: [delta] compares every
   live counter against it, and with the flood experiment's counter sets
   (hundreds of names) the old [List.assoc] per counter made reporting
   O(n^2). *)
type snapshot = (string, int) Hashtbl.t

let snapshot t =
  let snap = Hashtbl.create (max 16 (Hashtbl.length t.counters)) in
  Hashtbl.iter (fun name r -> Hashtbl.replace snap name !r) t.counters;
  snap

let old_of snap name =
  match Hashtbl.find_opt snap name with Some v -> v | None -> 0

let delta t snap =
  counters t
  |> List.filter_map (fun (name, v) ->
         let d = v - old_of snap name in
         if d = 0 then None else Some (name, d))

let delta_of t snap name = get t name - old_of snap name
