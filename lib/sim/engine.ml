(* The clock and the pop scratch cell are one-element float arrays: flat
   (unboxed) storage, so advancing the clock on every event never boxes a
   float. With the unboxed event heap this makes [step] allocation-free —
   the property the allocs/event micro-benchmark pins. *)
type t = {
  clock : float array; (* clock.(0) = current simulated time, ms *)
  scratch : float array; (* receives popped event times *)
  queue : (unit -> unit) Eheap.t;
  rng : Rng.t;
  stats : Stats.t;
  trace : Trace.t;
}

let create ?(seed = 0x10C05L) () =
  {
    clock = Array.make 1 0.0;
    scratch = Array.make 1 0.0;
    queue = Eheap.create ();
    rng = Rng.create seed;
    stats = Stats.create ();
    trace = Trace.create ();
  }

let now t = t.clock.(0)

let charge t dt =
  assert (dt >= 0.0);
  t.clock.(0) <- t.clock.(0) +. dt

let schedule_at t ~time thunk = Eheap.push t.queue ~time thunk

let schedule t ~delay thunk =
  assert (delay >= 0.0);
  schedule_at t ~time:(t.clock.(0) +. delay) thunk

(* Fork/join accounting for foreground work that proceeds in parallel
   (e.g. a using site fanning one bulk read out to several storage
   sites). Each thunk runs with the clock rewound to the fork point; the
   clock afterwards sits at the latest finish time. Events scheduled by a
   thunk carry absolute times, and [step] never moves the clock
   backwards, so the event queue is unaffected. *)
let parallel t thunks =
  let t0 = t.clock.(0) in
  let finish =
    List.fold_left
      (fun acc thunk ->
        t.clock.(0) <- t0;
        thunk ();
        Float.max acc t.clock.(0))
      t0 thunks
  in
  t.clock.(0) <- finish

let step t =
  if Eheap.is_empty t.queue then false
  else begin
    let thunk = Eheap.pop_into t.queue ~time:t.scratch in
    let time = t.scratch.(0) in
    if time > t.clock.(0) then t.clock.(0) <- time;
    thunk ();
    true
  end

let run_until_idle ?(limit = 100_000) t =
  let rec loop n =
    if n >= limit then (n, `Limit) else if step t then loop (n + 1) else (n, `Idle)
  in
  loop 0

let run_for t dt =
  let deadline = t.clock.(0) +. dt in
  let rec loop n =
    if (not (Eheap.is_empty t.queue)) && Eheap.top_time t.queue <= deadline then
      if step t then loop (n + 1) else n
    else n
  in
  let n = loop 0 in
  if t.clock.(0) < deadline then t.clock.(0) <- deadline;
  n

let pending t = Eheap.size t.queue

let rng t = t.rng

let stats t = t.stats

let trace t = t.trace

let record t ~tag detail = Trace.record t.trace ~time:t.clock.(0) ~tag detail
