type t = {
  mutable clock : float;
  queue : (unit -> unit) Eheap.t;
  rng : Rng.t;
  stats : Stats.t;
  trace : Trace.t;
}

let create ?(seed = 0x10C05L) () =
  {
    clock = 0.0;
    queue = Eheap.create ();
    rng = Rng.create seed;
    stats = Stats.create ();
    trace = Trace.create ();
  }

let now t = t.clock

let charge t dt =
  assert (dt >= 0.0);
  t.clock <- t.clock +. dt

let schedule_at t ~time thunk = Eheap.push t.queue ~time thunk

let schedule t ~delay thunk =
  assert (delay >= 0.0);
  schedule_at t ~time:(t.clock +. delay) thunk

(* Fork/join accounting for foreground work that proceeds in parallel
   (e.g. a using site fanning one bulk read out to several storage
   sites). Each thunk runs with the clock rewound to the fork point; the
   clock afterwards sits at the latest finish time. Events scheduled by a
   thunk carry absolute times, and [step] never moves the clock
   backwards, so the event queue is unaffected. *)
let parallel t thunks =
  let t0 = t.clock in
  let finish =
    List.fold_left
      (fun acc thunk ->
        t.clock <- t0;
        thunk ();
        Float.max acc t.clock)
      t0 thunks
  in
  t.clock <- finish

let step t =
  match Eheap.pop t.queue with
  | None -> false
  | Some (time, thunk) ->
    if time > t.clock then t.clock <- time;
    thunk ();
    true

let run_until_idle ?(limit = 100_000) t =
  let rec loop n =
    if n >= limit then (n, `Limit) else if step t then loop (n + 1) else (n, `Idle)
  in
  loop 0

let run_for t dt =
  let deadline = t.clock +. dt in
  let rec loop n =
    match Eheap.peek_time t.queue with
    | Some time when time <= deadline -> if step t then loop (n + 1) else n
    | Some _ | None -> n
  in
  let n = loop 0 in
  if t.clock < deadline then t.clock <- deadline;
  n

let pending t = Eheap.size t.queue

let rng t = t.rng

let stats t = t.stats

let trace t = t.trace

let record t ~tag detail = Trace.record t.trace ~time:t.clock ~tag detail
