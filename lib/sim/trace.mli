(** Bounded event trace.

    Kernels append human-readable protocol events; tests and the experiment
    harness read them back to verify message sequences (e.g. the open
    protocol of Figure 2). *)

type t

type event = { time : float; tag : string; detail : string }

val create : ?capacity:int -> unit -> t
(** Ring buffer keeping the most recent [capacity] events (default 4096).
    Recording never fails, but readers only see the newest [capacity]
    events: the buffer truncates (amortized) once 2×[capacity] events
    accumulate. *)

val record : t -> time:float -> tag:string -> string -> unit
(** A no-op while recording is off (see {!set_recording}). *)

val recording : t -> bool
(** Whether events are currently being kept (default [true]). Hot callers
    that must format an event's detail string check this first, so a
    disabled trace costs neither the record nor the formatting. *)

val set_recording : t -> bool -> unit
(** Turn event capture on or off. Flood-scale benchmark runs switch the
    trace off: at millions of events the per-event formatting would
    dominate the simulation itself. Already-recorded events are kept. *)

val count : t -> int
(** Total events recorded since creation (or the last {!clear}), including
    events the ring buffer has already truncated. Use this to assert on
    totals; {!events} / {!find_all} see at most [capacity] events. *)

val events : t -> event list
(** Oldest first. Bounded: only the newest [capacity] events are retained,
    so after more than [capacity] records this is a truncated view. *)

val find_all : t -> tag:string -> event list
(** Events with the given tag, oldest first. Scans only the retained
    window of the newest [capacity] events (see {!events}); events older
    than that have been truncated and are only reflected in {!count}. *)

val clear : t -> unit

(** {1 Spans}

    A span measures one logical operation (an RPC, a protocol round): open
    it at the start, close it at the end; closing records a single trace
    event carrying the start detail, the outcome, and the duration. *)

type span

val span_begin : t -> time:float -> tag:string -> string -> span

val span_end : t -> time:float -> span -> string -> unit
(** [span_end t ~time span outcome] records one event under the span's tag
    whose detail is ["<begin detail> <outcome> (<duration> ms)"]. *)

val pp_event : Format.formatter -> event -> unit
