(** Discrete-event simulation engine.

    One [Engine.t] drives a whole simulated cluster: it owns the simulated
    clock, the pending-event queue (used for background kernel processes such
    as update propagation), the deterministic RNG, global statistics, and the
    protocol trace.

    Foreground work (system calls, synchronous kernel-to-kernel RPC) runs as
    ordinary OCaml calls and accounts for elapsed simulated time with
    {!charge}. Background work is scheduled with {!schedule} and executed by
    {!run} / {!run_until_idle}. *)

type t

val create : ?seed:int64 -> unit -> t

val now : t -> float
(** Current simulated time, in milliseconds. *)

val charge : t -> float -> unit
(** Advance the clock by [dt] milliseconds of foreground work. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk [delay] ms from now, when the engine next runs. *)

val parallel : t -> (unit -> unit) list -> unit
(** Run each thunk as a parallel branch of foreground work: every thunk
    starts at the current clock, and afterwards the clock holds the
    latest branch finish time (fork/join). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

val run_until_idle : ?limit:int -> t -> int * [ `Idle | `Limit ]
(** Execute pending events in timestamp order until none remain (or [limit]
    events have run; default 100_000). Returns the number executed, paired
    with [`Idle] when the queue drained or [`Limit] when the event budget was
    exhausted first — a livelocked schedule (events that keep rescheduling
    themselves) is therefore detectable, not silent. The clock never moves
    backwards: events scheduled before [now] execute at [now]. *)

val run_for : t -> float -> int
(** Execute pending events with timestamps within the next [dt] ms, then
    advance the clock to [now + dt]. *)

val pending : t -> int

val rng : t -> Rng.t

val stats : t -> Stats.t

val trace : t -> Trace.t

val record : t -> tag:string -> string -> unit
(** Append to the trace at the current simulated time. *)
