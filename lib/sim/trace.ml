type event = { time : float; tag : string; detail : string }

type t = {
  capacity : int;
  mutable items : event list; (* newest first *)
  mutable live : int;         (* length of [items] *)
  mutable total : int;        (* events ever recorded, including truncated *)
  mutable recording : bool;
      (* false = drop events at the door; flood-scale runs switch the
         trace off so the per-event record/format cost disappears *)
}

let create ?(capacity = 4096) () =
  { capacity; items = []; live = 0; total = 0; recording = true }

let recording t = t.recording

let set_recording t on = t.recording <- on

let record t ~time ~tag detail =
  if t.recording then begin
    t.items <- { time; tag; detail } :: t.items;
    t.live <- t.live + 1;
    t.total <- t.total + 1;
    if t.live > 2 * t.capacity then begin
      (* Amortized truncation: keep the newest [capacity] events. *)
      t.items <- List.filteri (fun i _ -> i < t.capacity) t.items;
      t.live <- t.capacity
    end
  end

let count t = t.total

let events t =
  let l =
    if t.live > t.capacity then List.filteri (fun i _ -> i < t.capacity) t.items
    else t.items
  in
  List.rev l

let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (events t)

let clear t =
  t.items <- [];
  t.live <- 0;
  t.total <- 0

(* ---- spans ---- *)

type span = { sp_tag : string; sp_detail : string; sp_start : float }

let span_begin _t ~time ~tag detail = { sp_tag = tag; sp_detail = detail; sp_start = time }

let span_end t ~time span detail =
  record t ~time ~tag:span.sp_tag
    (Printf.sprintf "%s %s (%.3f ms)" span.sp_detail detail (time -. span.sp_start))

let pp_event ppf e = Format.fprintf ppf "[%8.4f] %-14s %s" e.time e.tag e.detail
