module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Us = Locus_core.Us
module Site = Net.Site

type status = Active | Committed | Aborted

exception Txn_error of string

type lock = {
  l_path : string;
  l_ofile : K.ofile; (* open-for-modification handle: holds the CSS lock *)
}

type t = {
  t_id : int;
  t_kernel : Kernel.t;
  t_proc : K.proc;
  t_parent : t option;
  mutable t_children : t list;
  mutable t_status : status;
  mutable t_writes : (string * string) list; (* path -> buffered contents *)
  mutable t_created : string list;
  mutable t_locks : lock list; (* owned locks (top-level owns inherited ones) *)
}

let counter = ref 0

(* Per-site registry of active top-level transactions, for partition
   cleanup. *)
let registry : (Site.t, t list ref) Hashtbl.t = Hashtbl.create 8

let registry_for site =
  match Hashtbl.find_opt registry site with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add registry site r;
    r

(* Index of top-level transactions by (local site, serving site touched by
   some lock in the transaction's subtree). Cleanup for a failed site then
   examines only the transactions that ever dealt with it, instead of
   rescanning every lock of every active transaction per dead site.
   Entries are an over-approximation (a released lock does not un-index);
   the failure handler re-verifies candidates against their live locks and
   prunes the bucket. *)
let by_touched : (Site.t * Site.t, t list ref) Hashtbl.t = Hashtbl.create 32

let rec top_of t = match t.t_parent with None -> t | Some p -> top_of p

let note_touched local t site =
  let tp = top_of t in
  let key = (local, site) in
  let r =
    match Hashtbl.find_opt by_touched key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add by_touched key r;
      r
  in
  if not (List.memq tp !r) then r := tp :: !r

let id t = t.t_id

let status t = t.t_status

let rec depth t = match t.t_parent with None -> 0 | Some p -> 1 + depth p

let check_active t =
  if t.t_status <> Active then raise (Txn_error "transaction is not active")

let begin_top k proc =
  incr counter;
  let t =
    {
      t_id = !counter;
      t_kernel = k;
      t_proc = proc;
      t_parent = None;
      t_children = [];
      t_status = Active;
      t_writes = [];
      t_created = [];
      t_locks = [];
    }
  in
  let r = registry_for (Kernel.site k) in
  r := t :: !r;
  t

let begin_sub parent =
  check_active parent;
  incr counter;
  let t =
    {
      t_id = !counter;
      t_kernel = parent.t_kernel;
      t_proc = parent.t_proc;
      t_parent = Some parent;
      t_children = [];
      t_status = Active;
      t_writes = [];
      t_created = [];
      t_locks = [];
    }
  in
  parent.t_children <- t :: parent.t_children;
  t

(* Read through the transaction stack: own writes, then ancestors', then
   the filesystem. *)
let rec read t path =
  check_active t;
  match List.assoc_opt path t.t_writes with
  | Some body -> body
  | None -> (
    match t.t_parent with
    | Some p -> read p path
    | None -> Kernel.read_file t.t_kernel t.t_proc path)

let rec holds_lock t path =
  List.exists (fun l -> String.equal l.l_path path) t.t_locks
  || (match t.t_parent with Some p -> holds_lock p path | None -> false)

let take_lock t path =
  if not (holds_lock t path) then begin
    let k = t.t_kernel in
    let gf = Kernel.resolve k t.t_proc path in
    match Us.open_gf k gf Proto.Mode_modify with
    | o ->
      t.t_locks <- { l_path = path; l_ofile = o } :: t.t_locks;
      List.iter (note_touched (Kernel.site k) t) (o.K.o_ss :: o.K.o_stripes)
    | exception K.Error (e, _) ->
      raise (Txn_error (Printf.sprintf "cannot lock %s: %s" path (Proto.errno_to_string e)))
  end

let write t path body =
  check_active t;
  take_lock t path;
  t.t_writes <- (path, body) :: List.remove_assoc path t.t_writes

let create t path =
  check_active t;
  ignore (Kernel.creat t.t_kernel t.t_proc path);
  t.t_created <- path :: t.t_created;
  take_lock t path;
  t.t_writes <- (path, "") :: List.remove_assoc path t.t_writes

let release_locks t =
  (* [Us.release] rather than abort-then-close: an abort that raises (the
     SS died) must not keep the close from running, or the lock handle
     leaks its serving registration. *)
  List.iter (fun l -> Us.release t.t_kernel l.l_ofile) t.t_locks;
  t.t_locks <- []

let rec abort t =
  if t.t_status = Active then begin
    List.iter (fun c -> abort c) t.t_children;
    (* Undo creations done under this transaction. *)
    List.iter
      (fun path -> try Kernel.unlink t.t_kernel t.t_proc path with K.Error _ -> ())
      t.t_created;
    release_locks t;
    t.t_writes <- [];
    t.t_created <- [];
    t.t_status <- Aborted;
    (match t.t_parent with
    | None ->
      let r = registry_for (Kernel.site t.t_kernel) in
      r := List.filter (fun x -> x.t_id <> t.t_id) !r
    | Some _ -> ())
  end

(* Publish a top-level transaction's writes: each file goes through the
   standard shadow-page commit; the locks we already hold are the
   open-for-modification handles. *)
let publish_top t =
  List.iter
    (fun (path, body) ->
      let lock =
        match List.find_opt (fun l -> String.equal l.l_path path) t.t_locks with
        | Some l -> l
        | None -> raise (Txn_error ("internal: no lock for " ^ path))
      in
      Us.set_contents t.t_kernel lock.l_ofile body;
      Us.commit t.t_kernel lock.l_ofile)
    (List.rev t.t_writes);
  List.iter
    (fun l -> try Us.close t.t_kernel l.l_ofile with K.Error _ -> ())
    t.t_locks;
  t.t_locks <- []

let commit t =
  check_active t;
  (* Active children must finish first; commit them into us. *)
  if List.exists (fun c -> c.t_status = Active) t.t_children then
    raise (Txn_error "subtransactions still active");
  match t.t_parent with
  | Some p ->
    check_active p;
    (* Merge write set, created list and locks into the parent. *)
    List.iter
      (fun (path, body) ->
        p.t_writes <- (path, body) :: List.remove_assoc path p.t_writes)
      (List.rev t.t_writes);
    p.t_created <- t.t_created @ p.t_created;
    p.t_locks <- t.t_locks @ p.t_locks;
    t.t_locks <- [];
    t.t_writes <- [];
    t.t_status <- Committed
  | None ->
    publish_top t;
    t.t_status <- Committed;
    let r = registry_for (Kernel.site t.t_kernel) in
    r := List.filter (fun x -> x.t_id <> t.t_id) !r

let rec touched_sites t =
  (* Closed handles still count: cleanup may have closed them just before
     asking which transactions the failure dooms. A striped lock touches
     every stripe site, not only the primary. *)
  let own =
    List.concat_map (fun l -> l.l_ofile.K.o_ss :: l.l_ofile.K.o_stripes) t.t_locks
  in
  let kids = List.concat_map touched_sites t.t_children in
  List.sort_uniq Site.compare (own @ kids)

let handle_site_failure k dead =
  match Hashtbl.find_opt by_touched (Kernel.site k, dead) with
  | None -> 0
  | Some r ->
    (* Only the indexed candidates are examined; the exact predicate still
       decides (a candidate may have released the relevant lock since). *)
    let doomed =
      List.filter (fun t -> t.t_status = Active && List.mem dead (touched_sites t)) !r
    in
    List.iter abort doomed;
    r := List.filter (fun t -> t.t_status = Active) !r;
    if !r = [] then Hashtbl.remove by_touched (Kernel.site k, dead);
    List.length doomed

let active_count k =
  let r = registry_for (Kernel.site k) in
  List.length (List.filter (fun t -> t.t_status = Active) !r)
