(** Kernel state shared by every module of the core library.

    One {!t} is the resident LOCUS kernel of one site. A site can
    simultaneously play the three logical roles of §2.3.1 — using site
    (US), storage site (SS) and current synchronization site (CSS) — so
    the kernel holds the state for all three, keyed by filegroup and
    file. *)

module Engine = Sim.Engine
module Vvec = Vv.Version_vector
module Site = Net.Site
module Gfile = Catalog.Gfile

exception Error of Proto.errno * string
(** Every kernel failure, local or reflected from a remote site (§3.3). *)

val err : Proto.errno -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

(** {1 Configuration} *)

type config = {
  readahead : bool;          (** one-page readahead on sequential reads (§2.3.3) *)
  use_cache : bool;          (** buffer remote pages at the US *)
  us_cache_pages : int;      (** US page-cache entries *)
  ss_cache_pages : int;      (** SS buffer-cache entries; 0 disables the tier *)
  cache_retention : bool;    (** keep version-keyed US pages across opens *)
  propagation_delay : float; (** ms before the propagation kernel process runs *)
  name_cache_entries : int;  (** pathname name-cache entries; 0 disables (§2.3.4) *)
  remote_lookup : bool;      (** ship partial pathnames to a storage site (§2.3.4) *)
  bulk_window : int;
      (** maximum pages per bulk transfer: streaming-read fetch window,
          write-behind batch size, and propagation pull batch. 1 disables
          the bulk layer and reproduces the one-page-per-RTT protocols. *)
  open_lease : bool;
      (** CSS grants revocable read leases on open: the US retains the
          whole open grant across close and re-opens with zero messages
          until a callback break. [false] keeps today's protocol
          byte-identical. *)
  open_lease_entries : int;
      (** retained open grants per site; 0 disables the lease layer too *)
  stripe_width : int;
      (** stripe a file's logical pages across up to this many storage
          sites holding latest copies; 1 disables striping and keeps the
          classic protocol byte-identical *)
  table_size_hint : int;
      (** initial bucket count for the hot per-kernel hashtables, so
          large runs don't pay repeated rehashing *)
}

val default_config : config

(** {1 CSS state: synchronization and version bookkeeping (§2.3.1)} *)

type css_file = {
  mutable latest_vv : Vvec.t;
  mutable site_vv : Vvec.t Site.Map.t;
      (** every site storing a copy, with the version it holds *)
  mutable readers : int Site.Map.t; (** open-for-read counts per US *)
  mutable writer : Site.t option;        (** at most one open for modification *)
  mutable writer_ss : Site.t option;     (** the single SS while a writer exists *)
  mutable css_deleted : bool;
  mutable css_conflict : bool;
      (** unresolved version conflict: normal opens fail (§4.6) *)
  mutable leases : Site.Set.t;
      (** sites granted a read lease on this file; broken by callback
          ([Lease_break]) when a writer opens, the version advances, a
          conflict or delete is recorded, or the partition changes *)
  mutable stripes : Site.t list;
      (** stripe map pinned while opens are outstanding, so every US of a
          shared file uses the same page→SS assignment; [[]] = unstriped *)
}

type css_fg = { css_files : (int, css_file) Hashtbl.t }

(** {1 US state: incore inodes for open files (§2.3.3)} *)

type wb_run = { wb_off : int; wb_buf : Buffer.t; wb_serial : int }
(** A write-behind run: adjacent write chunks coalesced at the US, sent to
    the SS as one [Write_pages] batch at the next flush point.
    [wb_serial] ties the flush timer to the run it was armed for. *)

type ofile = {
  o_gf : Gfile.t;
  o_serial : int; (** distinguishes simultaneous opens of the same file *)
  o_mode : Proto.open_mode;
  mutable o_ss : Site.t;
  mutable o_info : Proto.inode_info;
  mutable o_nocache : bool; (** a writer is active: bypass the US cache *)
  mutable o_dirty : bool;   (** uncommitted modifications sent to the SS *)
  mutable o_last_lpage : int; (** drives the sequential readahead *)
  mutable o_guess : int; (** the SS's incore-inode slot, sent with page reads *)
  mutable o_window : int;
      (** streaming fetch window, pages: doubles on sequential reads up to
          [config.bulk_window], resets to 1 on a seek *)
  mutable o_ra_frontier : int; (** first page not yet requested ahead *)
  mutable o_inflight : (int * int) list;
      (** scheduled readahead ranges (first, count), deduping overlaps *)
  mutable o_wb : wb_run option; (** pending write-behind run *)
  mutable o_stripes : Site.t list;
      (** stripe map for this open: page p is served by
          [stripes.(p mod width)]; [[]] = unstriped. When striped, [o_ss]
          is the primary (first) stripe site. *)
  mutable o_closed : bool;
  mutable o_lease : Openlease.entry option;
      (** the lease grant this open rides: its close is deferred while
          the lease lives *)
}

(** {1 SS state: served opens and shadow sessions (§2.3.5, §2.3.6)} *)

type ss_open = {
  s_gf : Gfile.t;
  s_slot : int; (** incore-inode slot; shipped to USs as their read guess *)
  mutable s_shadow : Storage.Shadow.t option;
  mutable s_uss : int Site.Map.t; (** using sites currently served, with counts *)
  mutable s_others : Site.t list; (** other storing sites, for commit notifications *)
}

(** {1 Shared file descriptors and their offset tokens (§3.2)} *)

type fd_key = int * int
(** Shared-descriptor identity: origin site, serial. The origin site
    manages the token. *)

type shared_fd = {
  f_key : fd_key;
  f_gf : Gfile.t;
  f_mode : Proto.open_mode;
  mutable f_offset : int;    (** meaningful only where the token is *)
  mutable f_holder : Site.t; (** manager's view of the current holder *)
  mutable f_valid : bool;    (** this site currently holds the token *)
  mutable f_refs : int;      (** local fd-table references *)
  mutable f_ofile : ofile option; (** this site's own open handle *)
}

(** {1 Processes (§3)} *)

type proc_status = Running | Exited of int

type proc = {
  pid : int;
  mutable p_site : Site.t;
  mutable p_parent : (int * Site.t) option;
  mutable p_uid : string;
  mutable p_cwd : Gfile.t;
  mutable p_context : string list; (** hidden-directory context (§2.4.1) *)
  mutable p_ncopies : int; (** inherited default replication factor (§2.3.7) *)
  mutable p_advice : Site.t list;
      (** execution-site advice list (§3.1): first reachable entry wins *)
  p_fds : (int, fd_key) Hashtbl.t;
  mutable p_next_fd : int;
  mutable p_status : proc_status;
  mutable p_children : (int * Site.t) list;
  mutable p_signals : int list; (** delivered signals, newest first *)
  mutable p_zombies : (int * int) list; (** exited children awaiting wait() *)
  mutable p_err_info : string option;
      (** details of a reflected remote failure, read by a new call (§3.3) *)
  mutable p_image_pages : int; (** image size, shipped by a remote fork *)
}

(** {1 Per-filegroup replicated configuration} *)

type fg_info = {
  fg : int;
  mutable css_site : Site.t;
  mutable pack_sites : Site.t list;
      (** sites with a physical container of this filegroup *)
}

(** {1 The kernel} *)

type t = {
  site : Site.t;
  machine_type : string; (** cpu type; selects hidden-directory entries *)
  engine : Engine.t;
  net : (Proto.req, Proto.resp) Net.Netsim.t;
  config : config;
  mount : Catalog.Mount.t; (** the replicated mount table (§2.1) *)
  mutable fg_table : fg_info list;
  packs : (int, Storage.Pack.t) Hashtbl.t;
  css_state : (int, css_fg) Hashtbl.t;
  open_files : (Gfile.t * int, ofile) Hashtbl.t;
  ss_opens : (Gfile.t, ss_open) Hashtbl.t;
  ss_slots : (int, Gfile.t) Hashtbl.t; (** incore-inode slot → file *)
  us_cache : (Gfile.t * int * string) Storage.Cache.t;
      (** (file, page, version) → page: stale versions miss naturally *)
  ss_cache : (Gfile.t * int * string) Storage.Cache.t;
      (** SS buffer cache fronting pack/disk page reads, same keying *)
  name_cache : Namecache.t;
      (** (directory, component) → child links, vv-validated (§2.3.4) *)
  open_leases : Openlease.t;
      (** retained open grants of lease-backed read opens: zero-message
          re-opens and deferred closes *)
  mutable prop_pending : Gfile.Set.t;
  prop_queue : (Gfile.t * Vvec.t * int list * int * float) Queue.t;
      (** file, target version, modified pages ([] = all), retries left,
          earliest-retry time (backed off after a failed pull) *)
  shared_fds : (fd_key, shared_fd) Hashtbl.t;
  procs : (int, proc) Hashtbl.t;
  pipe_bufs : (Gfile.t, string ref) Hashtbl.t;
  mutable next_serial : int;
  mutable dispatch : Site.t -> Proto.req -> Proto.resp;
      (** local fast path into this kernel's own message handler *)
  mutable extra_handler : Site.t -> Proto.req -> Proto.resp option;
      (** reconfiguration handlers, installed by the recovery layer *)
  mutable site_table : Site.t list; (** believed-up sites: this partition *)
  mutable site_set : Site.Set.t;
      (** same membership as [site_table] for O(log n) tests; update both
          through {!set_sites} only *)
  mutable alive : bool;
  mutable recon_stage : int; (** reconfiguration stage, for §5.7 ordering *)
}

(** {1 Helpers} *)

val now : t -> float
(** Simulated time, ms. *)

val stats : t -> Sim.Stats.t

val latency : t -> Net.Latency.t

val charge : t -> float -> unit

val charge_disk_read : t -> unit

val charge_disk_write : t -> unit

val charge_cpu_page : t -> unit

val record : t -> tag:string -> string -> unit
(** Append a protocol-trace event, prefixed with this site. *)

val fg_info : t -> int -> fg_info
(** Raises [EINVAL] for an unknown filegroup. *)

val local_pack : t -> int -> Storage.Pack.t option

val local_pack_exn : t -> int -> Storage.Pack.t

val in_partition : t -> Site.t -> bool

val set_sites : t -> Site.t list -> unit
(** Replace the partition membership, keeping the ordered list view and
    the set view consistent (sorts and dedups the input). *)

val place_css : fg:int -> Site.t list -> Site.t option
(** Deterministic CSS placement: every site computes the same coordinator
    for [fg] from the sorted pack-holder candidates alone. Filegroup 0
    maps to the lowest candidate (the classic layout); distinct
    filegroups spread across their holders. [None] iff no candidates. *)

val stripe_map : width:int -> ino:int -> Site.t list -> Site.t list
(** Deterministic stripe map: up to [width] distinct latest-copy holders,
    rotated by [ino]. [[]] (unstriped) when [width <= 1] or fewer than
    two candidates. *)

val stripe_owner : Site.t list -> int -> Site.t
(** The stripe site serving logical page [lpage]. Raises on an unstriped
    ([[]]) map. *)

val vv_key : Vvec.t -> string
(** The version vector as a cache-key component: a new committed version
    changes the key, so stale buffered pages miss naturally. *)

val ss_cache_enabled : t -> bool
(** Whether the SS-side buffer-cache tier is on ([ss_cache_pages > 0]). *)

val fresh_serial : t -> int

val rpc_result : t -> Site.t -> Proto.req -> (Proto.resp, Net.Rpc.rpc_error) result
(** Remote procedure call to another kernel through the {!Net.Rpc}
    transport layer, under the request's message-class policy
    ({!Proto.req_policy}); collocated roles short-circuit to a procedure
    call (§2.3.2). Returns the typed transport error; callers that can
    tolerate or interpret failure (close paths, recovery polls, token
    reclamation) match on it. If this kernel is down the error carries
    [attempts = 0]. *)

val rpc : t -> Site.t -> Proto.req -> Proto.resp
(** Like {!rpc_result}, but any transport failure raises [ENET] — for the
    protocol paths where unreachability simply fails the operation. *)

val rpc_close :
  ?attempts:int -> t -> Site.t -> Proto.req -> (Proto.resp, Net.Rpc.rpc_error) result
(** {!rpc_result} for the non-idempotent close legs ([Us_close]/[Ss_close]):
    resends on [Unreachable] only (the handler provably did not run, so a
    resend cannot double-apply), up to [attempts] sends total (default 3).
    [Lost_reply] — the close DID run — is returned as-is, never resent.
    Without this, one randomly lost close between two healthy sites leaks
    the SS serving registration forever: merge rebuilds only the CSS lock
    table, and failure cleanup covers only dead sites. *)

val send_close : t -> Site.t -> Proto.req -> Proto.resp option
(** {!rpc_close}, plus at-least-once hand-off: if every synchronous resend
    was lost ([Unreachable]), the close is parked and retried on a growing
    background timer until it reaches the destination, the destination
    leaves this site's partition (membership cleanup then owns the state),
    or the backoff budget runs out (an undetected dead site; restart
    scavenging owns the state). Retries remain [Unreachable]-only, so the
    non-idempotent handler still runs at most once. [None] means the close
    either ran with its reply lost, or is parked for retry — the caller
    may treat it as handed off either way. *)

val notify : t -> Site.t -> Proto.req -> unit
(** One-way message; losses are silent (recovery reconciles). *)

val ss_find_open : t -> Gfile.t -> ss_open option

val ss_get_open : t -> Gfile.t -> ss_open
(** Find-or-create the SS serving state (allocating its incore slot). *)

val ss_add_us : ss_open -> Site.t -> unit

val expect_ok : Proto.resp -> unit
(** Raise on [R_err]; accept [R_ok]. *)
