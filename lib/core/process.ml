(* Remote processes (section 3).

   Programs execute at any site with no rebinding: fork and exec are
   controlled by execution-site advice in the process environment; [run] is
   the optimized fork+exec that skips copying the parent image. Signals and
   exit status cross machine boundaries; failures of the parent's or
   child's machine are reflected as error signals with details deposited in
   the process structure (section 3.3). *)

open Ktypes
module Inode = Storage.Inode

let sigchld = 17

let sigerr = 99 (* error signal reflecting a remote failure, section 3.3 *)

let fresh_pid k = (k.site * 1_000_000) + fresh_serial k

let find_proc k pid = Hashtbl.find_opt k.procs pid

let get_proc k pid =
  match find_proc k pid with
  | Some p -> p
  | None -> err Proto.Esrch "no process %d at %a" pid Site.pp k.site

let create_process k ~uid =
  let p =
    {
      pid = fresh_pid k;
      p_site = k.site;
      p_parent = None;
      p_uid = uid;
      p_cwd = Catalog.Mount.root k.mount;
      p_context = [ k.machine_type ];
      p_ncopies = 1;
      p_advice = [];
      p_fds = Hashtbl.create 8;
      p_next_fd = 3;
      p_status = Running;
      p_children = [];
      p_signals = [];
      p_zombies = [];
      p_err_info = None;
      p_image_pages = 16;
    }
  in
  Hashtbl.add k.procs p.pid p;
  p

(* Where should a new process (or exec) go? The advice list is consulted
   in order; the first site in the current partition wins; with no usable
   advice, execution is local (the paper's default). *)
let choose_site k proc =
  match List.find_opt (fun s -> in_partition k s) proc.p_advice with
  | Some s -> s
  | None -> k.site

let env_of k proc =
  let fds =
    Hashtbl.fold
      (fun num key acc ->
        match Tokens.find_fd k key with
        | Some fd ->
          { Proto.d_num = num; d_key = key; d_gf = fd.f_gf; d_mode = fd.f_mode } :: acc
        | None -> acc)
      proc.p_fds []
  in
  {
    Proto.e_uid = proc.p_uid;
    e_cwd = proc.p_cwd;
    e_context = proc.p_context;
    e_ncopies = proc.p_ncopies;
    e_fds = fds;
  }

let install_env k (p : proc) (env : Proto.process_env) =
  p.p_uid <- env.Proto.e_uid;
  p.p_cwd <- env.Proto.e_cwd;
  p.p_context <- env.Proto.e_context;
  p.p_ncopies <- env.Proto.e_ncopies;
  List.iter
    (fun (d : Proto.fd_desc) ->
      let fd = Tokens.install_remote_fd k ~key:d.Proto.d_key ~gf:d.Proto.d_gf ~mode:d.Proto.d_mode in
      ignore fd;
      Hashtbl.replace p.p_fds d.Proto.d_num d.Proto.d_key;
      if d.Proto.d_num >= p.p_next_fd then p.p_next_fd <- d.Proto.d_num + 1)
    env.Proto.e_fds

(* Read a load module through the filesystem; hidden directories give each
   machine type its own image under one globally unique name (2.4.1).
   Returns the image size in pages. *)
let load_module k proc path =
  let gf =
    Pathname.resolve_from k ~cwd:proc.p_cwd ~context:proc.p_context path
  in
  let o = Us.open_gf k gf Proto.Mode_read in
  match Us.read_all k o with
  | body ->
    Us.close k o;
    max 1 ((String.length body + Storage.Page.size - 1) / Storage.Page.size)
  | exception e ->
    Us.release k o;
    raise e

(* ---- fork (section 3.1) ---- *)

let fork_local k proc =
  let child =
    {
      pid = fresh_pid k;
      p_site = k.site;
      p_parent = Some (proc.pid, proc.p_site);
      p_uid = proc.p_uid;
      p_cwd = proc.p_cwd;
      p_context = proc.p_context;
      p_ncopies = proc.p_ncopies;
      p_advice = proc.p_advice;
      p_fds = Hashtbl.copy proc.p_fds;
      p_next_fd = proc.p_next_fd;
      p_status = Running;
      p_children = [];
      p_signals = [];
      p_zombies = [];
      p_err_info = None;
      p_image_pages = proc.p_image_pages;
    }
  in
  (* The children share the parent's open descriptors. *)
  Hashtbl.iter
    (fun _ key ->
      match Tokens.find_fd k key with
      | Some fd -> fd.f_refs <- fd.f_refs + 1
      | None -> ())
    child.p_fds;
  Hashtbl.add k.procs child.pid child;
  proc.p_children <- (child.pid, k.site) :: proc.p_children;
  child

(* Destination-site half of a remote fork: allocate the process body and
   initialize its environment. *)
let handle_fork k ~child_pid ~env ~image_pages ~parent =
  let p =
    {
      pid = child_pid;
      p_site = k.site;
      p_parent = Some parent;
      p_uid = "";
      p_cwd = Catalog.Mount.root k.mount;
      p_context = [];
      p_ncopies = 1;
      p_advice = [];
      p_fds = Hashtbl.create 8;
      p_next_fd = 3;
      p_status = Running;
      p_children = [];
      p_signals = [];
      p_zombies = [];
      p_err_info = None;
      p_image_pages = image_pages;
    }
  in
  install_env k p env;
  Hashtbl.add k.procs p.pid p;
  record k ~tag:"proc.fork.in" (Printf.sprintf "pid %d from %s" child_pid
                                  (Site.to_string (snd parent)));
  Proto.R_pid { pid = child_pid }

(* Fork, at the site chosen by the advice list (or locally by default).
   Remote fork ships the parent's image pages. *)
let fork k proc =
  let dest = choose_site k proc in
  if Site.equal dest k.site then begin
    let child = fork_local k proc in
    (child.pid, k.site)
  end
  else begin
    let child_pid = fresh_pid k in
    match
      rpc k dest
        (Proto.Fork_req
           {
             child_pid;
             env = env_of k proc;
             image_pages = proc.p_image_pages;
             parent = (proc.pid, k.site);
           })
    with
    | Proto.R_pid { pid } ->
      proc.p_children <- (pid, dest) :: proc.p_children;
      record k ~tag:"proc.fork.out" (Printf.sprintf "pid %d -> %s" pid (Site.to_string dest));
      (pid, dest)
    | Proto.R_err e -> err e "remote fork failed"
    | _ -> err Proto.Eio "unexpected fork response"
  end

(* ---- exec ---- *)

(* Local exec: install the named load module into this process. The
   machine-type context follows the executing site, so the hidden-directory
   expansion picks the load module built for this cpu. *)
let exec_local k proc path =
  proc.p_context <- [ k.machine_type ];
  let pages = load_module k proc path in
  proc.p_image_pages <- pages;
  record k ~tag:"proc.exec" (Printf.sprintf "pid %d %s (%d pages)" proc.pid path pages)

(* Destination half of a remote exec: the process is effectively moved; the
   load module is read at the destination. *)
let handle_exec k ~pid ~path ~env ~image_pages:_ ~parent =
  let p =
    {
      pid;
      p_site = k.site;
      p_parent = Some parent;
      p_uid = "";
      p_cwd = Catalog.Mount.root k.mount;
      p_context = [];
      p_ncopies = 1;
      p_advice = [];
      p_fds = Hashtbl.create 8;
      p_next_fd = 3;
      p_status = Running;
      p_children = [];
      p_signals = [];
      p_zombies = [];
      p_err_info = None;
      p_image_pages = 1;
    }
  in
  install_env k p env;
  Hashtbl.add k.procs p.pid p;
  match exec_local k p path with
  | () -> Proto.R_pid { pid }
  | exception Error (e, _) ->
    Hashtbl.remove k.procs pid;
    Proto.R_err e

(* Exec under advice: a remote destination moves the process there. *)
let exec k proc path =
  let dest = choose_site k proc in
  if Site.equal dest k.site then begin
    exec_local k proc path;
    k.site
  end
  else begin
    match
      rpc k dest
        (Proto.Exec_req
           {
             pid = proc.pid;
             path;
             env = env_of k proc;
             image_pages = proc.p_image_pages;
             parent = (match proc.p_parent with Some p -> p | None -> (0, k.site));
           })
    with
    | Proto.R_pid _ ->
      Hashtbl.remove k.procs proc.pid;
      proc.p_site <- dest;
      (* Tell the parent where its child now lives. *)
      (match proc.p_parent with
      | Some (ppid, psite) when Site.equal psite k.site -> (
        match find_proc k ppid with
        | Some parent ->
          parent.p_children <-
            (proc.pid, dest) :: List.remove_assoc proc.pid parent.p_children
        | None -> ())
      | Some _ | None -> ());
      dest
    | Proto.R_err e -> err e "remote exec failed"
    | _ -> err Proto.Eio "unexpected exec response"
  end

(* ---- run: the optimized fork+exec (section 3.1) ---- *)

let handle_run ?context_override k ~child_pid ~path ~env ~parent =
  match handle_fork k ~child_pid ~env ~image_pages:1 ~parent with
  | Proto.R_pid _ -> (
    let p = get_proc k child_pid in
    match exec_local k p path with
    | () ->
      (match context_override with Some c -> p.p_context <- c | None -> ());
      Proto.R_pid { pid = child_pid }
    | exception Error (e, _) ->
      Hashtbl.remove k.procs child_pid;
      Proto.R_err e)
  | other -> other

(* Run includes parameterization that permits the caller to set up the
   environment of the new process, local or remote (section 3.1). *)
let run ?uid ?cwd ?ncopies ?context k proc path =
  let dest = choose_site k proc in
  let override env =
    {
      env with
      Proto.e_uid = Option.value uid ~default:env.Proto.e_uid;
      e_cwd = Option.value cwd ~default:env.Proto.e_cwd;
      e_ncopies = Option.value ncopies ~default:env.Proto.e_ncopies;
    }
  in
  if Site.equal dest k.site then begin
    let child = fork_local k proc in
    (match uid with Some u -> child.p_uid <- u | None -> ());
    (match cwd with Some c -> child.p_cwd <- c | None -> ());
    (match ncopies with Some n -> child.p_ncopies <- n | None -> ());
    exec_local k child path;
    (* An explicit context overrides the executing site's machine type. *)
    (match context with Some c -> child.p_context <- c | None -> ());
    (child.pid, k.site)
  end
  else begin
    let child_pid = fresh_pid k in
    match
      rpc k dest
        (Proto.Run_req
           {
             child_pid;
             path;
             env = override (env_of k proc);
             parent = (proc.pid, k.site);
             context_override = context;
           })
    with
    | Proto.R_pid { pid } ->
      proc.p_children <- (pid, dest) :: proc.p_children;
      record k ~tag:"proc.run" (Printf.sprintf "pid %d %s -> %s" pid path (Site.to_string dest));
      (pid, dest)
    | Proto.R_err e -> err e "remote run failed"
    | _ -> err Proto.Eio "unexpected run response"
  end

(* ---- signals (section 2.4.2, 3.3) ---- *)

let deliver_signal k pid signo =
  match find_proc k pid with
  | Some ({ p_status = Running; _ } as p) ->
    p.p_signals <- signo :: p.p_signals;
    Proto.R_ok
  | Some { p_status = Exited _; _ } | None -> Proto.R_err Proto.Esrch

let signal k ~site ~pid signo =
  if Site.equal site k.site then expect_ok (deliver_signal k pid signo)
  else expect_ok (rpc k site (Proto.Signal_req { pid; signo }))

(* ---- exit and wait ---- *)

let handle_exit_notify k ~pid ~status ~child_site =
  (* Find the parent that listed this child. *)
  Hashtbl.iter
    (fun _ p ->
      if List.mem_assoc pid p.p_children then begin
        p.p_children <- List.remove_assoc pid p.p_children;
        p.p_zombies <- (pid, status) :: p.p_zombies;
        p.p_signals <- sigchld :: p.p_signals
      end)
    k.procs;
  ignore child_site;
  Proto.R_ok

let exit_proc k proc status =
  proc.p_status <- Exited status;
  (* Release shared descriptors. *)
  Hashtbl.iter
    (fun _ key ->
      match Tokens.find_fd k key with
      | Some fd ->
        fd.f_refs <- fd.f_refs - 1;
        if fd.f_refs <= 0 then begin
          (match fd.f_ofile with
          | Some o -> ( try Us.close k o with Error _ -> Us.release k o)
          | None -> ());
          Hashtbl.remove k.shared_fds key
        end
      | None -> ())
    proc.p_fds;
  Hashtbl.reset proc.p_fds;
  match proc.p_parent with
  | Some (_ppid, psite) ->
    if Site.equal psite k.site then
      ignore (handle_exit_notify k ~pid:proc.pid ~status ~child_site:k.site)
    else
      notify k psite (Proto.Exit_notify { pid = proc.pid; status; child_site = k.site })
  | None -> ()

let wait k proc =
  ignore k;
  match proc.p_zombies with
  | [] -> None
  | z :: rest ->
    proc.p_zombies <- rest;
    Some z

let read_error_info k proc =
  ignore k;
  let info = proc.p_err_info in
  proc.p_err_info <- None;
  info

(* Cleanup after a partition change (the failure-action table of section
   5.6, "Interacting Processes" rows): reflect the failure to the local
   halves of cross-machine parent/child pairs. *)
let handle_site_failure k dead =
  Hashtbl.iter
    (fun _ p ->
      if p.p_status = Running then begin
        (* Children that were running on the failed site. *)
        let lost, kept =
          List.partition (fun (_, s) -> Site.equal s dead) p.p_children
        in
        if lost <> [] then begin
          p.p_children <- kept;
          p.p_signals <- sigerr :: p.p_signals;
          p.p_err_info <-
            Some
              (Printf.sprintf "child site %s failed (%d children lost)"
                 (Site.to_string dead) (List.length lost))
        end;
        (* Parent running on the failed site. *)
        match p.p_parent with
        | Some (_, psite) when Site.equal psite dead ->
          p.p_parent <- None;
          p.p_signals <- sigerr :: p.p_signals;
          p.p_err_info <- Some (Printf.sprintf "parent site %s failed" (Site.to_string dead))
        | Some _ | None -> ()
      end)
    k.procs
