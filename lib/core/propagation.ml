(* Background update propagation (section 2.3.6).

   Propagation is done by *pulling*: a kernel process at each storage site
   services a queue of propagation requests. A pull internally opens the
   file at a site holding the latest version, issues standard read messages
   for all (or just the modified) pages, and commits locally through the
   standard shadow-page mechanism — so a pull interrupted by partition
   leaves a coherent, complete (if stale) copy. *)

open Ktypes
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Page = Storage.Page
module Cache = Storage.Cache

(* A pull commits through the shadow mechanism directly (below the SS
   handlers), so it must drop the superseded buffered pages itself. *)
let invalidate_stale k gf ~vv =
  Cache.invalidate_if ~notify:false k.ss_cache
    (fun (g, _, v) -> Gfile.equal g gf && not (String.equal v (vv_key vv)))

(* Is [local] exactly the version [target] was derived from by one commit at
   [origin]? Then pulling just the modified pages is sufficient. *)
let one_commit_behind ~local ~target ~origin =
  Vvec.equal (Vvec.bump local origin) target

let local_vv k gf =
  match local_pack k gf.Gfile.fg with
  | None -> None
  | Some pack ->
    Pack.find_inode pack gf.Gfile.ino
    |> Option.map (fun (i : Inode.t) -> i.Inode.vv)

(* Tell the CSS that this site now stores [vv] (fresh=false: a completed
   propagation, not a new commit). *)
let report_to_css k gf vv ~deleted =
  let fi = fg_info k gf.Gfile.fg in
  if Site.equal fi.css_site k.site then
    Css.handle_commit_notify k gf ~origin:k.site ~vv ~deleted
  else
    notify k fi.css_site
      (Proto.Commit_notify
         { gf; vv; meta_only = false; modified = []; origin = k.site; fresh = false;
           deleted; designate = false; replicas = [] })

let apply_delete k pack gf ~vv =
  match Pack.find_inode pack gf.Gfile.ino with
  | None -> ()
  | Some inode ->
    if Vvec.conflict inode.Inode.vv vv then
      (* Deleted in one partition, modified in another: the file wants to
         be saved (section 4.4); leave it for reconciliation. *)
      record k ~tag:"prop.conflict" (Gfile.to_string gf)
    else if not (Vvec.dominates_or_equal inode.Inode.vv vv) then begin
      let session = Shadow.begin_modify pack gf.Gfile.ino in
      Shadow.set_contents session "";
      Shadow.mark_deleted session ~time:(now k);
      charge_disk_write k;
      Shadow.commit session ~vv ~mtime:(now k);
      invalidate_stale k gf ~vv;
      (* The file is gone and the inode may be reclaimed: drop both the
         links to it and any links read out of it. *)
      Namecache.invalidate_dir k.name_cache gf;
      Namecache.invalidate_child k.name_cache gf;
      record k ~tag:"prop.delete" (Gfile.to_string gf);
      report_to_css k gf vv ~deleted:true
    end

(* Group an ascending page list into (first, count) runs of consecutive
   pages, each at most [cap] long. *)
let runs_of ~cap pages =
  let rec go acc first len = function
    | p :: rest when p = first + len && len < cap -> go acc first (len + 1) rest
    | rest -> (
      let acc = (first, len) :: acc in
      match rest with [] -> List.rev acc | p :: rest -> go acc p 1 rest)
  in
  match pages with [] -> [] | p :: rest -> go [] p 1 rest

(* Pull the current version of [gf] from [source]. Uses the standard stat +
   page-read messages; charges disk costs through the normal paths. *)
let pull_from k pack gf ~source ~modified =
  match rpc k source (Proto.Stat_req { gf }) with
  | Proto.R_stat { info = Some info; _ } ->
    if info.Proto.i_deleted then begin
      apply_delete k pack gf ~vv:info.Proto.i_vv;
      true
    end
    else begin
      (* Make sure a local descriptor exists, then shadow in the data. *)
      (match Pack.find_inode pack gf.Gfile.ino with
      | Some _ -> ()
      | None ->
        let inode =
          Inode.create ~ino:gf.Gfile.ino ~ftype:info.Proto.i_ftype
            ~owner:info.Proto.i_owner
        in
        Pack.install_inode pack inode);
      let local = Pack.get_inode pack gf.Gfile.ino in
      if Vvec.dominates_or_equal local.Inode.vv info.Proto.i_vv then true
      else if Vvec.conflict local.Inode.vv info.Proto.i_vv then begin
        (* Concurrent versions: never overwrite — that would lose an
           update. Reconciliation (section 4) resolves it. *)
        record k ~tag:"prop.conflict" (Gfile.to_string gf);
        report_to_css k gf local.Inode.vv ~deleted:local.Inode.deleted;
        true
      end
      else begin
        let session = Shadow.begin_modify pack gf.Gfile.ino in
        let incore = Shadow.incore session in
        incore.Inode.ftype <- info.Proto.i_ftype;
        incore.Inode.owner <- info.Proto.i_owner;
        incore.Inode.perms <- info.Proto.i_perms;
        incore.Inode.nlink <- info.Proto.i_nlink;
        incore.Inode.deleted <- false;
        let npages = (info.Proto.i_size + Page.size - 1) / Page.size in
        let pages_to_pull =
          if
            modified <> []
            && one_commit_behind ~local:local.Inode.vv ~target:info.Proto.i_vv
                 ~origin:source
          then List.filter (fun p -> p < npages) modified
          else List.init npages Fun.id
        in
        (* Consecutive pages travel as one bulk read of at most a window;
           lone pages keep the single-page message. *)
        let cap = max 1 k.config.bulk_window in
        let fetch_run ~first ~count =
          if count = 1 then
            match rpc k source (Proto.Read_page { gf; lpage = first; guess = 0 }) with
            | Proto.R_page { data; _ } -> [ data ]
            | Proto.R_err e -> err e "propagation read failed"
            | _ -> err Proto.Eio "unexpected response to propagation read"
          else
            match
              rpc k source (Proto.Read_pages { gf; first; count; guess = 0; stride = 1 })
            with
            | Proto.R_pages { pages; _ } ->
              Sim.Stats.incr (stats k) "prop.bulk";
              Sim.Stats.add (stats k) "prop.bulk.pages" (List.length pages);
              pages
            | Proto.R_err e -> err e "propagation read failed"
            | _ -> err Proto.Eio "unexpected response to propagation read"
        in
        let ok = ref true in
        (try
           List.iter
             (fun (first, count) ->
               let pages = fetch_run ~first ~count in
               List.iteri
                 (fun i data ->
                   charge_disk_write k;
                   (* Rename the network buffer and send it to secondary
                      storage: no copy through an application space. *)
                   Shadow.write_page session ~lpage:(first + i) (Page.of_string data))
                 pages)
             (runs_of ~cap pages_to_pull);
           (* Exactly the source's size: write_page grew past a shrunk
              size, and a pure truncate at the source modified no page at
              all — either way the local copy must not keep a stale tail. *)
           Shadow.set_size session info.Proto.i_size;
           Shadow.commit session ~vv:info.Proto.i_vv ~mtime:info.Proto.i_mtime;
           invalidate_stale k gf ~vv:info.Proto.i_vv;
           (* The local copy just jumped versions: links cached from any
              other version of this directory are dead. *)
           Namecache.note_dir_vv k.name_cache ~dir:gf info.Proto.i_vv;
           record k ~tag:"prop.pull"
             (Format.asprintf "%a <- %a vv=%a (%d pages)" Gfile.pp gf Site.pp
                source Vvec.pp info.Proto.i_vv (List.length pages_to_pull))
         with Error _ ->
           Shadow.abort session;
           ok := false);
        if !ok then report_to_css k gf info.Proto.i_vv ~deleted:false;
        !ok
      end
    end
  | Proto.R_stat { info = None; _ } -> false
  | Proto.R_err _ -> false
  | _ -> false

(* One queued propagation request. Returns true when no retry is needed. *)
let attempt k gf target_vv modified =
  match local_pack k gf.Gfile.fg with
  | None -> true (* we do not store this filegroup after all *)
  | Some pack -> (
    match local_vv k gf with
    | Some vv when Vvec.dominates_or_equal vv target_vv -> true (* already current *)
    | Some _ | None -> (
      (* Find a source holding the latest version: ask the CSS. *)
      let fi = fg_info k gf.Gfile.fg in
      match rpc_result k fi.css_site (Proto.Where_stored { gf }) with
      | Ok (Proto.R_where { sites; _ }) -> (
        let sources =
          List.filter (fun s -> (not (Site.equal s k.site)) && in_partition k s) sites
        in
        match sources with
        | [] -> false
        | source :: _ -> pull_from k pack gf ~source ~modified)
      | Ok (Proto.R_err _) -> false
      | Ok _ -> false
      | Stdlib.Error _ -> false))

(* Attempt one queued item; a failure with retries left re-queues it, not
   to be retried before [backoff] ms from now. *)
let service_item k (gf, vv, modified, retries, _) ~backoff =
  k.prop_pending <- Gfile.Set.remove gf k.prop_pending;
  let done_ =
    if k.alive then begin
      try attempt k gf vv modified
      with Error (e, m) ->
        record k ~tag:"prop.fail"
          (Format.asprintf "%a %s: %s" Gfile.pp gf (Proto.errno_to_string e) m);
        false
    end
    else false
  in
  if (not done_) && retries > 0 && k.alive then begin
    k.prop_pending <- Gfile.Set.add gf k.prop_pending;
    Queue.add (gf, vv, modified, retries - 1, now k +. backoff) k.prop_queue
  end

let earliest_retry k =
  Queue.fold (fun acc (_, _, _, _, nb) -> min acc nb) infinity k.prop_queue

let rec service_queue k =
  (* Rotate past items still backing off after a failed pull — servicing
     them at the normal delay would defeat the 10x backoff. *)
  let due =
    let n = Queue.length k.prop_queue in
    let rec take i =
      if i >= n then None
      else
        match Queue.take_opt k.prop_queue with
        | None -> None
        | Some ((_, _, _, _, nb) as item) ->
          if nb <= now k then Some item
          else begin
            Queue.add item k.prop_queue;
            take (i + 1)
          end
    in
    take 0
  in
  (match due with
  | None -> ()
  | Some item -> service_item k item ~backoff:(10.0 *. k.config.propagation_delay));
  if not (Queue.is_empty k.prop_queue) then begin
    let delay = max k.config.propagation_delay (earliest_retry k -. now k) in
    Engine.schedule k.engine ~delay (fun () -> service_queue k)
  end

(* Called when a commit notification arrives at a storage site. A site
   pulls only files it already stores — packs hold a subset of the
   filegroup — unless the notification designates it as an initial storage
   site for a new file. *)
let enqueue k gf ~vv ~modified ~designate =
  let interested =
    match local_pack k gf.Gfile.fg with
    | None -> false
    | Some pack -> designate || Pack.stores pack gf.Gfile.ino
  in
  let current =
    match local_vv k gf with
    | Some local -> Vvec.dominates_or_equal local vv
    | None -> false
  in
  if interested && (not current) && not (Gfile.Set.mem gf k.prop_pending) then begin
    k.prop_pending <- Gfile.Set.add gf k.prop_pending;
    Queue.add (gf, vv, modified, 3, now k) k.prop_queue;
    Engine.schedule k.engine ~delay:k.config.propagation_delay (fun () ->
        service_queue k)
  end

(* Synchronously drain this kernel's propagation queue (used by recovery,
   which schedules update propagation as part of merge, and by the
   simulation's settle points). Retry backoff is ignored: drain's callers
   want the queue emptied now, attempting each item until it succeeds or
   runs out of retries. *)
let drain k =
  let guard = ref 0 in
  while (not (Queue.is_empty k.prop_queue)) && !guard < 1000 do
    incr guard;
    match Queue.take_opt k.prop_queue with
    | None -> ()
    | Some item -> service_item k item ~backoff:0.0
  done
