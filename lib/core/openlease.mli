(** Per-site cache of CSS-granted open leases.

    Retains the full open grant (serving SS, inode info, incore-inode
    slot) of lease-backed read/internal opens across [close], in an LRU
    on {!Storage.Lru.Make}. A re-open while the lease is valid completes
    with zero messages; the close of a lease-backed open is deferred
    until the lease dies (callback break, local commit observation,
    capacity eviction, partition scrub), when exactly one batched close
    travels via the [on_dead] callback installed by [Kernel.create].

    Counters: [open.lease.hit], [open.lease.miss], [open.lease.break],
    [open.lease.evict], [open.lease.defer] (the last is counted by the
    US close path). *)

type entry = {
  le_gf : Catalog.Gfile.t;
  le_ss : Net.Site.t;
  le_mode : Proto.open_mode;
  le_info : Proto.inode_info;
  le_slot : int;
  le_vv : Vv.Version_vector.t;
  mutable le_active : int;  (** local opens currently riding this grant *)
  mutable le_broken : bool; (** dead: no reuse; close sent at last drain *)
}

type t

val create : stats:Sim.Stats.t -> capacity:int -> unit -> t
(** Disabled (never grants rides, ignores inserts) when [capacity <= 0]. *)

val enabled : t -> bool

val set_on_dead : t -> (entry -> unit) -> unit
(** Install the deferred-close sender: called exactly once per entry when
    the lease is dead and no local open rides it. *)

val length : t -> int

val find_entry : t -> Catalog.Gfile.t -> entry option
(** Lookup without recency or counter effects. *)

val acquire : t -> Catalog.Gfile.t -> entry option
(** Warm re-open: returns the live entry with its rider count bumped, or
    [None] (counted as a miss). *)

val insert : t -> entry -> unit
(** Register a fresh grant; may evict the LRU entry (one batched close). *)

val kill : ?counter:string -> t -> Catalog.Gfile.t -> unit
(** Break the lease on a file: no further re-opens ride it; the deferred
    close goes out now (idle) or at the last riding close. [counter]
    names the [open.lease.*] statistic (default ["break"]). *)

val note_commit : t -> Catalog.Gfile.t -> Vv.Version_vector.t -> unit
(** A commit at [vv] was observed locally: kill any lease granted on a
    different version, ahead of the CSS callback. *)

val kill_if : t -> (entry -> bool) -> unit

val scrub : t -> unit
(** Partition event: kill every lease (§5.6 lock-table scrub analogue),
    sending deferred closes best-effort. *)

val clear : t -> unit
(** Crash: drop everything silently, sending nothing. *)
