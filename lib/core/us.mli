(** Using Site file access (§2.3.3, §2.3.5).

    The US carries out the user-visible half of every file operation: it
    contacts the CSS to open (Figure 2), exchanges pages with the selected
    SS, and runs the close protocol. Remote pages are cached at the US,
    keyed by file and version, with one-page readahead on sequential
    reads. *)

val open_gf :
  ?shared:bool -> Ktypes.t -> Catalog.Gfile.t -> Proto.open_mode -> Ktypes.ofile
(** Open <filegroup, inode> through the CSS, which selects the storage
    site. [shared] joins an existing open through a forked descriptor
    (exempt from the single-writer policy; the offset token serializes
    access). Raises {!Ktypes.Error}. *)

val read_page : Ktypes.t -> Ktypes.ofile -> int -> string * bool
(** [read_page k o lpage] returns the page data (possibly short at end of
    file) and an eof flag. Sequential reads keep a fetch window scheduled
    ahead of the reader (a growing multi-page window when
    [config.bulk_window > 1]; the classic one-page readahead otherwise). *)

val read_all : Ktypes.t -> Ktypes.ofile -> string
(** Whole-body read following the SS's eof indications. *)

val read_bytes : Ktypes.t -> Ktypes.ofile -> off:int -> len:int -> string
(** Byte-ranged read (fd-style). *)

val write : Ktypes.t -> Ktypes.ofile -> off:int -> string -> unit
(** Send the affected pages to the SS via the write protocol: whole-page
    changes travel without a read; partial pages as patches. With
    [config.bulk_window > 1] and a remote SS, adjacent chunks coalesce
    into a write-behind run sent as one [Write_pages] batch at the next
    flush point (window full, non-adjacent write, read-back, truncate,
    commit, close, token release, or a short timer). *)

val flush_writes : Ktypes.t -> Ktypes.ofile -> unit
(** Push any pending write-behind run to the SS now. Called wherever the
    modification must become visible outside this open — notably before a
    file-offset token leaves this site. No-op when nothing is buffered. *)

val truncate : Ktypes.t -> Ktypes.ofile -> int -> unit

val set_contents : Ktypes.t -> Ktypes.ofile -> string -> unit
(** Whole-file overwrite (truncate + page writes). *)

val commit : Ktypes.t -> Ktypes.ofile -> unit
(** Atomically commit this open's modifications at the SS (§2.3.6). *)

val abort : Ktypes.t -> Ktypes.ofile -> unit
(** Undo any changes back to the previous commit point. *)

val close : Ktypes.t -> Ktypes.ofile -> unit
(** Flush (commit) if dirty, then run the US→SS→CSS close protocol. The
    close of a lease-backed read open is deferred: the retained grant
    keeps the SS serving state registered, and the protocol runs once
    when the lease dies. *)

val lease_send_close : Ktypes.t -> Openlease.entry -> unit
(** Send the deferred [Us_close] a dead lease owes. Installed as the
    {!Openlease} [on_dead] callback by [Kernel.create]. *)

val lease_drop_rider : Ktypes.t -> Openlease.entry -> unit
(** One local open stops riding the lease; the last rider of a broken
    lease sends the deferred close. *)

val delete_file : Ktypes.t -> Ktypes.ofile -> unit
(** Mark the inode deleted and commit (§2.3.7). *)

val release : Ktypes.t -> Ktypes.ofile -> unit
(** Best-effort cleanup of an open after a failed operation: discard any
    buffered writes, abort uncommitted modifications, and run the close
    protocol, swallowing protocol errors so the original failure
    propagates. Every error path that abandons an [ofile] must release it,
    or the SS serving registration (and any shadow session) leaks. *)

val stat_gf : Ktypes.t -> Catalog.Gfile.t -> Proto.inode_info
(** Descriptor information, from the local pack when possible, else from a
    reachable site holding the latest version. *)

val local_vv_of : Ktypes.t -> Catalog.Gfile.t -> Vv.Version_vector.t option
(** The version of this site's own copy, if it stores one. *)
