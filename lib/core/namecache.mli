(** Per-site pathname name cache (the caching half of the §2.3.4 lookup
    fast path).

    Maps (directory gfile, component) → (child gfile, directory version,
    child type if known). §2.3.4's pathname searching reads directories
    unsynchronized, so a cached link is no weaker than the slow path; the
    recorded version vector is the invalidation key. Filled by local
    directory walks and by server-side partial-pathname lookup trails;
    invalidated on commit notification, local directory operations,
    propagation pulls, reclaim, and partition merge.

    Exports [name.cache.hit] / [miss] / [fill] / [invalidate] / [evict]
    counters through {!Sim.Stats}. *)

type entry = {
  nc_child : Catalog.Gfile.t;
  nc_vv : Vv.Version_vector.t;
      (** the directory's version vector when the link was read *)
  nc_ftype : Storage.Inode.ftype option;
      (** the child's type when known — lets a terminal component skip the
          hidden-directory stat *)
}

type t

val create : stats:Sim.Stats.t -> capacity:int -> unit -> t
(** [capacity <= 0] disables the cache entirely (the ablation switch). *)

val enabled : t -> bool

val find :
  t ->
  dir:Catalog.Gfile.t ->
  comp:string ->
  current_vv:Vv.Version_vector.t option ->
  entry option
(** Look up a link. [current_vv] is the directory's version as currently
    known locally (None when no trustworthy local copy exists); an entry
    recorded under a different version is dropped and counted as an
    invalidation plus a miss. *)

val insert : t -> dir:Catalog.Gfile.t -> comp:string -> entry -> unit

val note_ftype : t -> dir:Catalog.Gfile.t -> comp:string -> Storage.Inode.ftype -> unit
(** Annotate an existing link with the child's type learned later in the
    walk; a no-op when the link is not cached. *)

val note_dir_vv : t -> dir:Catalog.Gfile.t -> Vv.Version_vector.t -> unit
(** The directory committed at this version: drop every link recorded
    under a different one. *)

val invalidate_dir : t -> Catalog.Gfile.t -> unit

val invalidate_child : t -> Catalog.Gfile.t -> unit
(** Drop every link resolving to this gfile (deleted/reclaimed files). *)

val clear : t -> unit

val length : t -> int
