(* Using Site file access (section 2.3.3, 2.3.5).

   The US carries out the user-visible half of every file operation: it
   contacts the CSS to open, exchanges pages with the selected SS, and runs
   the close protocol. All page traffic goes through kernel buffers; remote
   pages are cached at the US (keyed by file and version, so a new committed
   version naturally misses) with one-page readahead on sequential reads. *)

open Ktypes
module Inode = Storage.Inode
module Pack = Storage.Pack
module Page = Storage.Page
module Cache = Storage.Cache

let local_vv_of k gf =
  match local_pack k gf.Gfile.fg with
  | None -> None
  | Some pack ->
    Pack.find_inode pack gf.Gfile.ino
    |> Option.map (fun (i : Inode.t) -> i.Inode.vv)

(* Open <filegroup, inode>: interrogate the CSS, which selects the SS
   (Figure 2). Returns the US incore inode.

   A retained open lease short-circuits the whole exchange: a read or
   internal re-open of a file whose grant is still live completes with
   zero messages — no [Open_req], no storage poll — riding the grant the
   CSS issued at the cold open. Shared opens never ride a lease (their
   offset token traffic needs the full registration). *)
let rec open_gf ?(shared = false) k gf mode =
  let fi = fg_info k gf.Gfile.fg in
  let lease_ride =
    match mode with
    | (Proto.Mode_read | Proto.Mode_internal) when not shared -> (
      match Openlease.acquire k.open_leases gf with
      | Some e when in_partition k e.Openlease.le_ss -> Some e
      | Some e ->
        (* The serving SS left the partition under us: the grant is dead
           even if no break callback made it through. *)
        e.Openlease.le_active <- e.Openlease.le_active - 1;
        Openlease.kill k.open_leases gf;
        None
      | None -> None)
    | _ -> None
  in
  match lease_ride with
  | Some e ->
    let o =
      {
        o_gf = gf;
        o_serial = fresh_serial k;
        o_mode = mode;
        o_ss = e.Openlease.le_ss;
        o_info = e.Openlease.le_info;
        (* A striped grant rides too: the peers serve their stripes
           statelessly, so the map stays valid as long as the lease does. *)
        o_stripes = e.Openlease.le_info.Proto.i_stripes;
        (* Leases only exist while no writer does. *)
        o_nocache = false;
        o_dirty = false;
        o_last_lpage = -1;
        o_guess = e.Openlease.le_slot;
        o_window = 1;
        o_ra_frontier = 0;
        o_inflight = [];
        o_wb = None;
        o_closed = false;
        o_lease = Some e;
      }
    in
    Hashtbl.add k.open_files (gf, o.o_serial) o;
    record k ~tag:"us.open.lease"
      (Format.asprintf "%a %a ss=%a" Gfile.pp gf Proto.pp_mode mode Site.pp
         e.Openlease.le_ss);
    o
  | None -> open_gf_cold ~shared k fi gf mode

and open_gf_cold ~shared k fi gf mode =
  let us_vv = local_vv_of k gf in
  match rpc k fi.css_site (Proto.Open_req { gf; mode; us_vv; shared }) with
  | Proto.R_open { ss; info; others; nocache; slot; lease; registered } ->
    let info =
      if Site.equal ss k.site then begin
        (* We serve ourselves: the real disk inode is local. *)
        match local_pack k gf.Gfile.fg with
        | Some pack -> (
          match Pack.find_inode pack gf.Gfile.ino with
          | Some inode ->
            (* The stripe map is CSS state, not disk state: keep it. *)
            { (Proto.info_of_inode inode) with Proto.i_stripes = info.Proto.i_stripes }
          | None -> info)
        | None -> info
      end
      else info
    in
    (* When the CSS chose this site as SS without a storage poll (the US-is-
       current optimization), create the serving state locally. When the
       CSS *did* poll (or registered a CSS-local serve), the registration
       already counts this open — adding again would need two closes to
       balance and leaks a serving entry forever. *)
    if Site.equal ss k.site && not registered then begin
      let s = Ss.get_open k gf in
      Ss.add_us s k.site;
      s.s_others <- others
    end;
    let lease_entry =
      if lease && Openlease.enabled k.open_leases then begin
        let e =
          {
            Openlease.le_gf = gf;
            le_ss = ss;
            le_mode = mode;
            le_info = info;
            le_slot = slot;
            le_vv = info.Proto.i_vv;
            le_active = 1;
            le_broken = false;
          }
        in
        Openlease.insert k.open_leases e;
        record k ~tag:"us.lease.grant" (Gfile.to_string gf);
        Some e
      end
      else None
    in
    let o =
      {
        o_gf = gf;
        o_serial = fresh_serial k;
        o_mode = mode;
        o_ss = ss;
        o_info = info;
        o_stripes = info.Proto.i_stripes;
        o_nocache = nocache;
        o_dirty = false;
        (* -1 so a scan starting at page 0 counts as sequential and primes
           the readahead window immediately. *)
        o_last_lpage = -1;
        o_guess = slot;
        o_window = 1;
        o_ra_frontier = 0;
        o_inflight = [];
        o_wb = None;
        o_closed = false;
        o_lease = lease_entry;
      }
    in
    Hashtbl.add k.open_files (gf, o.o_serial) o;
    record k ~tag:"us.open"
      (Format.asprintf "%a %a ss=%a" Gfile.pp gf Proto.pp_mode mode Site.pp ss);
    o
  | Proto.R_err e -> err e "open %a failed" Gfile.pp gf
  | _ -> err Proto.Eio "unexpected open response"

let cache_key o lpage = (o.o_gf, lpage, vv_key o.o_info.Proto.i_vv)

(* ---- striped access (section: scale-out storage) ----

   A striped open carries a stripe map from the CSS: logical page [p] is
   served by [o_stripes.(p mod width)]. An empty map is the classic
   single-SS protocol, untouched. *)

let striped o = o.o_stripes <> []

let page_site o lpage =
  match o.o_stripes with [] -> o.o_ss | stripes -> stripe_owner stripes lpage

(* A stripe peer stopped answering: drop back to the classic protocol
   against the primary, which holds a complete latest copy. Modify opens
   cannot degrade (pages already written to peer sessions would be lost);
   they fail like a classic open whose SS died. *)
let stripe_degrade k o =
  record k ~tag:"us.stripe.degrade" (Gfile.to_string o.o_gf);
  Sim.Stats.incr (stats k) "us.stripe.degrade";
  o.o_stripes <- []

let fetch_page k o lpage =
  let site = page_site o lpage in
  let guess = if Site.equal site o.o_ss then o.o_guess else 0 in
  let resp =
    if Site.equal site k.site then begin
      charge k (latency k).Net.Latency.local_call;
      Ss.handle_read_page ~guess k o.o_gf lpage
    end
    else rpc k site (Proto.Read_page { gf = o.o_gf; lpage; guess })
  in
  match resp with
  | Proto.R_page { data; eof } -> (data, eof)
  | Proto.R_err e -> err e "read %a page %d failed" Gfile.pp o.o_gf lpage
  | _ -> err Proto.Eio "unexpected read response"

let cacheable k o = k.config.use_cache && not o.o_nocache

(* The bulk-transfer layer batches page traffic with a remote SS; local
   access and a window of one page keep the original protocols exactly. *)
let bulk_enabled k o = k.config.bulk_window > 1 && not (Site.equal o.o_ss k.site)

(* ---- write-behind (bulk write path) ---- *)

(* How long a small run may sit at the US before a timer pushes it out:
   long enough to coalesce a burst of adjacent write() calls, short enough
   that any settle point still observes the data at the SS. *)
let wb_flush_delay = 0.05

(* Flush the pending write-behind run to the SS as [Write_pages] batches of
   at most a window of pages each. Every path that makes the modification
   externally visible — commit, close, truncate, a read on this open, a
   file-offset token moving away — must come through here first, so the
   SS shadow session always holds the data before anyone can look. *)
let flush_wb k o =
  match o.o_wb with
  | None -> ()
  | Some run ->
    o.o_wb <- None;
    let data = Buffer.contents run.wb_buf in
    let len = String.length data in
    let window_bytes = k.config.bulk_window * Page.size in
    let rec loop pos =
      if pos < len then begin
        let abs = run.wb_off + pos in
        let first = abs / Page.size in
        let poff = abs mod Page.size in
        let n = min (window_bytes - poff) (len - pos) in
        let chunk = String.sub data pos n in
        expect_ok
          (rpc k o.o_ss (Proto.Write_pages { gf = o.o_gf; first; off = poff; data = chunk }));
        Sim.Stats.incr (stats k) "us.bulk.write";
        Sim.Stats.add (stats k) "us.bulk.write.pages" ((poff + n + Page.size - 1) / Page.size);
        loop (pos + n)
      end
    in
    loop 0

let flush_writes = flush_wb

let start_wb_run k o ~off data =
  let buf = Buffer.create (max 64 (String.length data)) in
  Buffer.add_string buf data;
  let serial = fresh_serial k in
  o.o_wb <- Some { wb_off = off; wb_buf = buf; wb_serial = serial };
  (* The timer is tied to this run by serial: if the run was already pushed
     out (and possibly replaced by a later one) the timer is a no-op rather
     than flushing somebody else's half-built run early. *)
  Engine.schedule k.engine ~delay:wb_flush_delay (fun () ->
      match o.o_wb with
      | Some run when run.wb_serial = serial && k.alive && not o.o_closed -> (
        match flush_wb k o with () -> () | exception Error _ -> ())
      | Some _ | None -> ())

(* ---- windowed streaming reads (bulk read path) ---- *)

let npages_of o = (o.o_info.Proto.i_size + Page.size - 1) / Page.size

let in_flight o p = List.exists (fun (f, c) -> p >= f && p < f + c) o.o_inflight

(* Length of the run of wanted pages from [from]: stop at the first page
   already cached or already requested, at [limit] pages, or at eof. *)
let run_length k o ~from ~limit =
  let npages = npages_of o in
  let rec len i =
    if i >= limit || from + i >= npages then i
    else if Cache.mem k.us_cache (cache_key o (from + i)) || in_flight o (from + i) then i
    else len (i + 1)
  in
  len 0

(* One bulk read: [count] consecutive pages in a single round trip. A
   single-page run uses plain [Read_page], so a window of one is
   byte-identical to the unbatched protocol. *)
let fetch_pages k o ~first ~count =
  if count <= 1 then begin
    let data, eof = fetch_page k o first in
    ([ data ], eof)
  end
  else
    match
      rpc k o.o_ss
        (Proto.Read_pages { gf = o.o_gf; first; count; guess = o.o_guess; stride = 1 })
    with
    | Proto.R_pages { pages; eof } ->
      Sim.Stats.incr (stats k) "us.bulk.read";
      Sim.Stats.add (stats k) "us.bulk.read.pages" (List.length pages);
      (pages, eof)
    | Proto.R_err e -> err e "read %a pages %d+%d failed" Gfile.pp o.o_gf first count
    | _ -> err Proto.Eio "unexpected read response"

(* Keep a full window requested ahead of a sequential reader. The frontier
   is the first page no fetch has been issued for; a new batch goes out
   only when the reader has nearly caught up with it, so steady-state
   sequential reading issues one window-sized RPC per window of pages. *)
let schedule_window k o ~lpage =
  let npages = npages_of o in
  let next = lpage + 1 in
  if k.config.readahead && o.o_ra_frontier <= next && next < npages then begin
    let first = max next o.o_ra_frontier in
    let count = run_length k o ~from:first ~limit:(min o.o_window (npages - first)) in
    if count > 0 then begin
      o.o_inflight <- (first, count) :: o.o_inflight;
      o.o_ra_frontier <- first + count;
      Engine.schedule k.engine ~delay:0.01 (fun () ->
          o.o_inflight <- List.filter (fun r -> r <> (first, count)) o.o_inflight;
          if (not o.o_closed) && k.alive then begin
            (* A demand fetch may have overtaken us: re-scan and fetch only
               the still-missing tail of the scheduled range. *)
            let rec first_missing p =
              if p >= first + count then None
              else if Cache.mem k.us_cache (cache_key o p) then first_missing (p + 1)
              else Some p
            in
            match first_missing first with
            | None -> ()
            | Some p0 -> (
              match fetch_pages k o ~first:p0 ~count:(first + count - p0) with
              | pages, _ ->
                Sim.Stats.incr (stats k) "us.readahead";
                List.iteri
                  (fun i d ->
                    Cache.insert k.us_cache (cache_key o (p0 + i)) (Page.of_string d))
                  pages
              | exception Error _ -> ())
          end)
    end
  end

let read_page_bulk k o lpage ~sequential =
  if sequential then o.o_window <- min k.config.bulk_window (o.o_window * 2)
  else begin
    o.o_window <- 1;
    o.o_ra_frontier <- lpage + 1
  end;
  let size = o.o_info.Proto.i_size in
  match Cache.find k.us_cache (cache_key o lpage) with
  | Some page ->
    Sim.Stats.incr (stats k) "cache.us.hit";
    let remaining = size - (lpage * Page.size) in
    let len = max 0 (min Page.size remaining) in
    let eof = (lpage + 1) * Page.size >= size in
    if sequential && not eof then schedule_window k o ~lpage;
    (Page.sub page 0 len, eof)
  | None ->
    Sim.Stats.incr (stats k) "cache.us.miss";
    let npages = npages_of o in
    let count =
      max 1 (run_length k o ~from:lpage ~limit:(min o.o_window (max 1 (npages - lpage))))
    in
    let pages, last_eof = fetch_pages k o ~first:lpage ~count in
    List.iteri
      (fun i d -> Cache.insert k.us_cache (cache_key o (lpage + i)) (Page.of_string d))
      pages;
    let returned = List.length pages in
    if o.o_ra_frontier < lpage + returned then o.o_ra_frontier <- lpage + returned;
    let data, eof =
      match pages with
      | [] -> ("", true)
      | [ d ] -> (d, last_eof)
      | d :: _ -> (d, false)
    in
    if sequential && not eof then schedule_window k o ~lpage;
    (data, eof)

(* Striped streaming read: the miss window fans out as one strided
   [Read_pages] per stripe site, issued in parallel, each carrying up to a
   full window of that site's own pages. The aggregate in-flight window is
   therefore [width * bulk_window] pages per round trip, which is where
   striping's read throughput comes from. *)
(* Fetch the run [first, first+count) of pages into the US cache, split by
   page owner: each stripe site gets the arithmetic subsequence with its
   own residue mod [w], as one strided [Read_pages], and the fans travel
   in parallel — the elapsed cost is the slowest stripe's share, not the
   sum. *)
let fetch_striped_range k o ~first ~count =
  let w = List.length o.o_stripes in
  let groups =
    List.init w (fun j ->
        let f = first + ((j - (first mod w) + w) mod w) in
        if f >= first + count then None
        else
          let cnt = (first + count - f + w - 1) / w in
          Some (stripe_owner o.o_stripes f, f, cnt))
    |> List.filter_map Fun.id
  in
  let fetch_group (site, f, cnt) =
    let resp =
      if Site.equal site k.site then begin
        charge k (latency k).Net.Latency.local_call;
        Ss.handle_read_pages ~stride:w k o.o_gf ~first:f ~count:cnt
      end
      else
        rpc k site
          (Proto.Read_pages { gf = o.o_gf; first = f; count = cnt; guess = 0; stride = w })
    in
    match resp with
    | Proto.R_pages { pages; _ } ->
      Sim.Stats.incr (stats k) "us.stripe.read";
      Sim.Stats.add (stats k) "us.stripe.read.pages" (List.length pages);
      List.iteri
        (fun i d -> Cache.insert k.us_cache (cache_key o (f + (i * w))) (Page.of_string d))
        pages
    | Proto.R_err e -> err e "striped read %a pages %d+%d failed" Gfile.pp o.o_gf f cnt
    | _ -> err Proto.Eio "unexpected striped read response"
  in
  Engine.parallel k.engine (List.map (fun g () -> fetch_group g) groups)

(* The striped analogue of [schedule_window]: keep an aggregate window of
   [width * bulk_window] pages requested ahead of a sequential reader,
   fanned over the stripe sites. A readahead failure is silent — the next
   demand fetch surfaces the error (and the degrade path handles it). *)
let schedule_window_striped k o ~lpage =
  let npages = npages_of o in
  let next = lpage + 1 in
  if k.config.readahead && o.o_ra_frontier <= next && next < npages then begin
    let w = List.length o.o_stripes in
    let first = max next o.o_ra_frontier in
    let count =
      run_length k o ~from:first ~limit:(min (o.o_window * w) (npages - first))
    in
    if count > 0 then begin
      o.o_inflight <- (first, count) :: o.o_inflight;
      o.o_ra_frontier <- first + count;
      Engine.schedule k.engine ~delay:0.01 (fun () ->
          o.o_inflight <- List.filter (fun r -> r <> (first, count)) o.o_inflight;
          if (not o.o_closed) && k.alive && striped o then begin
            let rec first_missing p =
              if p >= first + count then None
              else if Cache.mem k.us_cache (cache_key o p) then first_missing (p + 1)
              else Some p
            in
            match first_missing first with
            | None -> ()
            | Some p0 -> (
              match fetch_striped_range k o ~first:p0 ~count:(first + count - p0) with
              | () -> Sim.Stats.incr (stats k) "us.readahead"
              | exception Error _ -> ())
          end)
    end
  end

(* Striped streaming read: misses fan out in parallel over the stripe
   sites, and a window of [width * bulk_window] pages is kept scheduled
   ahead of a sequential reader — the width multiplies both the in-flight
   window and the serving disk arms, which is where striping's read
   throughput comes from. *)
let read_page_striped k o lpage ~sequential =
  if sequential then o.o_window <- min k.config.bulk_window (o.o_window * 2)
  else begin
    o.o_window <- 1;
    o.o_ra_frontier <- lpage + 1
  end;
  let size = o.o_info.Proto.i_size in
  let return_page page =
    let remaining = size - (lpage * Page.size) in
    let len = max 0 (min Page.size remaining) in
    let eof = (lpage + 1) * Page.size >= size in
    if sequential && not eof then schedule_window_striped k o ~lpage;
    (Page.sub page 0 len, eof)
  in
  match Cache.find k.us_cache (cache_key o lpage) with
  | Some page ->
    Sim.Stats.incr (stats k) "cache.us.hit";
    return_page page
  | None ->
    Sim.Stats.incr (stats k) "cache.us.miss";
    let w = List.length o.o_stripes in
    let npages = npages_of o in
    let count =
      max 1 (run_length k o ~from:lpage ~limit:(min (o.o_window * w) (max 1 (npages - lpage))))
    in
    fetch_striped_range k o ~first:lpage ~count;
    if o.o_ra_frontier < lpage + count then o.o_ra_frontier <- lpage + count;
    (match Cache.find k.us_cache (cache_key o lpage) with
    | Some page -> return_page page
    | None -> ("", true))

(* Read one logical page through the kernel buffers, with sequential
   readahead as in standard Unix (section 2.3.3). With the bulk layer on,
   a remote cacheable open goes through the windowed streaming path
   instead; a window of one keeps the one-page protocol exactly. *)
let rec read_page k o lpage =
  if o.o_closed then err Proto.Einval "read on closed file";
  (* Read-your-writes: anything buffered for write-behind must reach the
     SS shadow session before a page can be read back. *)
  if o.o_wb <> None then flush_wb k o;
  charge_cpu_page k;
  let sequential = lpage = o.o_last_lpage + 1 in
  o.o_last_lpage <- lpage;
  (* Schedule the readahead asynchronously; it fills the cache. Cache hits
     must extend the window too, or sequential reads degrade to
     miss/hit/miss/hit once the readahead stream is one page deep. *)
  let schedule_readahead ~eof =
    if k.config.readahead && sequential && (not eof) && cacheable k o then begin
      let next = lpage + 1 in
      if not (Cache.mem k.us_cache (cache_key o next)) then
        Engine.schedule k.engine ~delay:0.01 (fun () ->
            if
              (not o.o_closed) && k.alive
              && not (Cache.mem k.us_cache (cache_key o next))
            then begin
              match fetch_page k o next with
              | data, _ ->
                Sim.Stats.incr (stats k) "us.readahead";
                Cache.insert k.us_cache (cache_key o next) (Page.of_string data)
              | exception Error _ -> ()
            end)
    end
  in
  if striped o then begin
    match
      if cacheable k o then read_page_striped k o lpage ~sequential
      else fetch_page k o lpage
    with
    | result -> result
    | exception Error _
      when o.o_mode <> Proto.Mode_modify && in_partition k o.o_ss ->
      (* A stripe peer failed but the primary is still up: retry classic. *)
      stripe_degrade k o;
      read_page k o lpage
  end
  else if Site.equal o.o_ss k.site then begin
    (* Local access: same path cost as conventional Unix. *)
    charge k (latency k).Net.Latency.local_call;
    match Ss.handle_read_page k o.o_gf lpage with
    | Proto.R_page { data; eof } -> (data, eof)
    | Proto.R_err e -> err e "local read failed"
    | _ -> err Proto.Eio "unexpected local read response"
  end
  else if bulk_enabled k o && cacheable k o then read_page_bulk k o lpage ~sequential
  else if cacheable k o then begin
    match Cache.find k.us_cache (cache_key o lpage) with
    | Some page ->
      Sim.Stats.incr (stats k) "cache.us.hit";
      let size = o.o_info.Proto.i_size in
      let remaining = size - (lpage * Page.size) in
      let len = max 0 (min Page.size remaining) in
      let eof = (lpage + 1) * Page.size >= size in
      schedule_readahead ~eof;
      (Page.sub page 0 len, eof)
    | None ->
      Sim.Stats.incr (stats k) "cache.us.miss";
      let data, eof = fetch_page k o lpage in
      Cache.insert k.us_cache (cache_key o lpage) (Page.of_string data);
      schedule_readahead ~eof;
      (data, eof)
  end
  else begin
    let data, eof = fetch_page k o lpage in
    schedule_readahead ~eof;
    (data, eof)
  end

(* Whole-body read, following the SS's eof indications. *)
let read_all k o =
  let buf = Buffer.create 1024 in
  let rec loop lpage =
    let data, eof = read_page k o lpage in
    Buffer.add_string buf data;
    if (not eof) && String.length data > 0 then loop (lpage + 1)
  in
  if o.o_info.Proto.i_size > 0 || Site.equal o.o_ss k.site then loop 0;
  Buffer.contents buf

(* One page of zeroes, shared by every sparse/short-page gap below: a gap
   never exceeds the page size, so [Buffer.add_substring] of this covers
   any gap without allocating a fresh string per hole. *)
let blank_page = String.make Page.size '\000'

(* Read up to [len] bytes starting at byte [off] (fd-style read). *)
let read_bytes k o ~off ~len =
  if len <= 0 then ""
  else begin
    let buf = Buffer.create len in
    let rec loop abs remaining =
      if remaining > 0 then begin
        let lpage = abs / Page.size in
        let poff = abs mod Page.size in
        let data, eof = read_page k o lpage in
        let avail = max 0 (String.length data - poff) in
        let take = min remaining avail in
        if take > 0 then Buffer.add_string buf (String.sub data poff take);
        if not eof then begin
          (* A short or sparse mid-file page reads as zeroes out to the page
             boundary; keep going into the next page rather than silently
             returning short data. *)
          let page_room = Page.size - poff in
          let gap = min (remaining - take) (page_room - avail) in
          if gap > 0 then Buffer.add_substring buf blank_page 0 gap;
          loop (abs + take + gap) (remaining - take - gap)
        end
      end
    in
    loop off len;
    Buffer.contents buf
  end

(* Write [data] at byte offset [off] through the write protocol: each
   affected page travels US -> SS once; whole-page changes need no read.
   With the bulk layer on, adjacent chunks coalesce into a write-behind
   run at the US and travel later as one [Write_pages] batch. *)
let write k o ~off data =
  if o.o_closed then err Proto.Einval "write on closed file";
  if o.o_mode <> Proto.Mode_modify then err Proto.Eaccess "file not open for modification";
  let len = String.length data in
  let write_behind () =
    (match o.o_wb with
    | Some run when run.wb_off + Buffer.length run.wb_buf = off ->
      Buffer.add_string run.wb_buf data
    | Some _ ->
      (* Non-adjacent write: push the old run out first, in order. *)
      flush_wb k o;
      start_wb_run k o ~off data
    | None -> start_wb_run k o ~off data);
    match o.o_wb with
    | Some run
      when (run.wb_off mod Page.size) + Buffer.length run.wb_buf
           >= k.config.bulk_window * Page.size ->
      flush_wb k o
    | _ -> ()
  in
  let send_chunk ~lpage ~poff chunk =
    let whole = poff = 0 && String.length chunk = Page.size in
    let site = page_site o lpage in
    let req =
      Proto.Write_page { gf = o.o_gf; lpage; whole; off = poff; data = chunk }
    in
    let resp =
      if Site.equal site k.site then begin
        charge k (latency k).Net.Latency.local_call;
        Ss.handle_write_page k ~src:k.site o.o_gf ~lpage ~whole ~off:poff ~data:chunk
      end
      else rpc k site req
    in
    expect_ok resp
  in
  let rec loop pos =
    if pos < len then begin
      let abs = off + pos in
      let lpage = abs / Page.size in
      let poff = abs mod Page.size in
      let n = min (Page.size - poff) (len - pos) in
      send_chunk ~lpage ~poff (String.sub data pos n);
      loop (pos + n)
    end
  in
  (* A striped write must route each page to its owner, so the contiguous
     write-behind run does not apply; pages travel singly as in the
     unbatched protocol. *)
  if len > 0 then if bulk_enabled k o && not (striped o) then write_behind () else loop 0;
  o.o_dirty <- true;
  if off + len > o.o_info.Proto.i_size then
    o.o_info <- { o.o_info with Proto.i_size = off + len }

let truncate k o size =
  if o.o_mode <> Proto.Mode_modify then err Proto.Eaccess "file not open for modification";
  (* Buffered writes precede the truncate in program order. *)
  if o.o_wb <> None then flush_wb k o;
  let truncate_at site =
    let resp =
      if Site.equal site k.site then Ss.handle_truncate k o.o_gf ~size
      else rpc k site (Proto.Truncate_req { gf = o.o_gf; size })
    in
    expect_ok resp
  in
  (* Every stripe session must agree on the size, so commit-time size
     reconciliation (the max of the session sizes) stays sound. *)
  (match o.o_stripes with
  | [] -> truncate_at o.o_ss
  | stripes -> List.iter truncate_at stripes);
  o.o_dirty <- true;
  if size < o.o_info.Proto.i_size then o.o_info <- { o.o_info with Proto.i_size = size }

let set_contents k o body =
  truncate k o 0;
  if String.length body > 0 then write k o ~off:0 body;
  o.o_dirty <- true

(* Commit or abort the modifications of this open (section 2.3.6). *)
let commit_gen k o ~abort ~delete =
  (* The write-behind run is part of what commits: flush it into the SS
     shadow session first. Aborting just drops it. *)
  if abort then o.o_wb <- None else if o.o_wb <> None then flush_wb k o;
  let resp =
    match o.o_stripes with
    | (primary :: _) as stripes when o.o_mode = Proto.Mode_modify ->
      (* Striped commit goes to the primary, which collects each peer's
         session pages, folds them into one complete shadow copy, and
         runs the classic atomic commit on it. *)
      if Site.equal primary k.site then
        Ss.handle_commit ~stripes k o.o_gf ~abort ~delete
      else
        rpc k primary
          (Proto.Commit_req
             { gf = o.o_gf; us = k.site; abort; delete; force_vv = None; stripes })
    | _ ->
      if Site.equal o.o_ss k.site then
        Ss.handle_commit k o.o_gf ~abort ~delete
      else
        rpc k o.o_ss
          (Proto.Commit_req
             { gf = o.o_gf; us = k.site; abort; delete; force_vv = None; stripes = [] })
  in
  match resp with
  | Proto.R_committed { vv } ->
    o.o_dirty <- false;
    if not (Vvec.equal vv Vvec.zero) then o.o_info <- { o.o_info with Proto.i_vv = vv };
    vv
  | Proto.R_err e -> err e "commit failed"
  | _ -> err Proto.Eio "unexpected commit response"

let commit k o = ignore (commit_gen k o ~abort:false ~delete:false)

let abort k o = ignore (commit_gen k o ~abort:true ~delete:false)

(* Send the one batched close a dead lease owes: the [Us_close] the cold
   open deferred. Installed as [Openlease.on_dead] by [Kernel.create], so
   breaks arriving through dispatch, eviction or recovery all route here. *)
let lease_send_close k (e : Openlease.entry) =
  if k.alive then begin
    record k ~tag:"us.lease.close" (Gfile.to_string e.Openlease.le_gf);
    if Site.equal e.Openlease.le_ss k.site then
      (try
         ignore
           (Ss.handle_us_close k ~src:k.site e.Openlease.le_gf ~mode:e.Openlease.le_mode)
       with Error _ -> ())
    else
      (* Hand off with background retry; a persistently unreachable SS is
         handled by reconfiguration cleanup. *)
      try
        ignore
          (send_close k e.Openlease.le_ss
             (Proto.Us_close { gf = e.Openlease.le_gf; mode = e.Openlease.le_mode }))
      with Error _ -> ()
  end

(* One local open stops riding the lease. If the lease already died while
   it was open, the last rider out sends the deferred close. *)
let lease_drop_rider k (e : Openlease.entry) =
  e.Openlease.le_active <- e.Openlease.le_active - 1;
  if e.Openlease.le_broken && e.Openlease.le_active <= 0 then lease_send_close k e

(* Close: flush (commit) any modification, then run the close protocol
   US -> SS -> CSS (section 2.3.3). A lease-backed read open defers the
   protocol instead: the SS keeps serving this US, and the [Us_close] /
   [Ss_close] pair travels once, when the lease dies. *)
let close k o =
  if not o.o_closed then begin
    if o.o_dirty then commit k o;
    o.o_closed <- true;
    Hashtbl.remove k.open_files (o.o_gf, o.o_serial);
    (match o.o_lease with
    | Some e ->
      if not e.Openlease.le_broken then Sim.Stats.incr (stats k) "open.lease.defer";
      lease_drop_rider k e
    | None ->
      let close_at site =
        let resp =
          if Site.equal site k.site then
            (try Ss.handle_us_close k ~src:k.site o.o_gf ~mode:o.o_mode
             with Error _ -> Proto.R_ok)
          else
            match send_close k site (Proto.Us_close { gf = o.o_gf; mode = o.o_mode }) with
            | Some resp -> resp
            | None -> Proto.R_ok
            (* Handed off: either the close ran with its reply lost, or it
               is parked for background retry; a close that can never reach
               the SS is handled by cleanup when the membership change is
               observed. *)
        in
        match resp with Proto.R_ok | Proto.R_err _ -> () | _ -> ()
      in
      (match o.o_stripes with
      | (_ :: _) as stripes when o.o_mode = Proto.Mode_modify ->
        (* Every stripe site registered this open at the poll; each gets
           its [Us_close], and the CSS treats the resulting [Ss_close]
           volley idempotently. *)
        List.iter close_at stripes
      | _ -> close_at o.o_ss));
    (* Without retention the buffered pages die with the open; with it they
       stay, version-keyed, so a re-open of the same version hits warm. *)
    if not k.config.cache_retention then
      Cache.invalidate_if ~notify:false k.us_cache (fun (g, _, _) -> Gfile.equal g o.o_gf);
    record k ~tag:"us.close" (Gfile.to_string o.o_gf)
  end

(* Delete the file body: mark the inode deleted and commit (section 2.3.7). *)
let delete_file k o = ignore (commit_gen k o ~abort:false ~delete:true)

(* Best-effort release of [o] after a failed operation: drop uncommitted
   modification state, abort any shadow session, run the close protocol —
   and never raise, so the original error propagates. Error paths that
   skip the release leak the open forever: nothing else ever closes it,
   so the SS keeps its serving registration (and any shadow session and
   its shadow pages) until the site dies. *)
let release k o =
  if not o.o_closed then begin
    o.o_wb <- None;
    if o.o_dirty then
      (try ignore (commit_gen k o ~abort:true ~delete:false) with Error _ -> ());
    (* Whether or not the abort reached the SS, this open must not try to
       commit on close. *)
    o.o_dirty <- false;
    try close k o with Error _ -> ()
  end

let stat_gf k gf =
  (* Prefer the local copy; otherwise ask the CSS's believed-latest site. *)
  match local_pack k gf.Gfile.fg with
  | Some pack when Pack.stores pack gf.Gfile.ino ->
    Proto.info_of_inode (Pack.get_inode pack gf.Gfile.ino)
  | Some _ | None -> (
    let fi = fg_info k gf.Gfile.fg in
    match rpc k fi.css_site (Proto.Where_stored { gf }) with
    | Proto.R_where { sites; _ } -> (
      let reachable = List.filter (fun s -> in_partition k s) sites in
      match reachable with
      | [] -> err Proto.Enet "no reachable copy of %a" Gfile.pp gf
      | _ :: _ ->
        (* The CSS's storing-site list can be momentarily stale, and any
           one site can be newly unreachable: fall through the remaining
           candidates rather than failing on the first. *)
        let rec try_sites = function
          | [] -> err Proto.Enoent "stat %a: no reachable copy answered" Gfile.pp gf
          | s :: rest -> (
            match rpc_result k s (Proto.Stat_req { gf }) with
            | Ok (Proto.R_stat { info = Some info; _ }) -> info
            | Ok (Proto.R_stat { info = None; _ })
            | Ok (Proto.R_err _)
            | Stdlib.Error _ ->
              try_sites rest
            | Ok _ -> err Proto.Eio "unexpected stat response")
        in
        try_sites reachable)
    | Proto.R_err e -> err e "stat: CSS lookup failed"
    | _ -> err Proto.Eio "unexpected where response")
