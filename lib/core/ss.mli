(** Storage Site logic (§2.3.3, §2.3.5, §2.3.6).

    The SS serves pages to using sites, receives modification pages into
    shadow pages, and performs the atomic commit — after which it notifies
    the CSS (synchronously) and every other site storing the file, which
    pull the new version in background. *)

val find_open : Ktypes.t -> Catalog.Gfile.t -> Ktypes.ss_open option

val get_open : Ktypes.t -> Catalog.Gfile.t -> Ktypes.ss_open

val add_us : Ktypes.ss_open -> Net.Site.t -> unit

val handle_storage_req :
  Ktypes.t ->
  Catalog.Gfile.t ->
  vv:Vv.Version_vector.t ->
  us:Net.Site.t ->
  others:Net.Site.t list ->
  Proto.resp
(** "Will you act as storage site?" Refused when this pack does not store
    the file at (at least) the requested version. *)

val handle_read_page : ?guess:int -> Ktypes.t -> Catalog.Gfile.t -> int -> Proto.resp
(** Serve one logical page (through the open shadow session when one
    exists, giving Unix shared-file read semantics). [guess] is the US's
    hint for locating the incore inode (§2.3.3); hits and misses are
    counted in the statistics. *)

val handle_read_pages :
  ?guess:int ->
  ?stride:int ->
  Ktypes.t ->
  Catalog.Gfile.t ->
  first:int ->
  count:int ->
  Proto.resp
(** Serve up to [count] pages, every [stride]-th from [first], in one
    response (the bulk-read half of the transfer layer). Same per-page
    disk and cache accounting as single reads; the reply is trimmed at end
    of file. A stride above 1 is a striped US asking for just this site's
    own stripe's pages. *)

val handle_write_page :
  Ktypes.t ->
  src:Net.Site.t ->
  Catalog.Gfile.t ->
  lpage:int ->
  whole:bool ->
  off:int ->
  data:string ->
  Proto.resp
(** One page of modification into the shadow session; invalidates other
    using sites' buffered copies (the page-valid tokens of §3.2). *)

val handle_write_pages :
  Ktypes.t ->
  src:Net.Site.t ->
  Catalog.Gfile.t ->
  first:int ->
  off:int ->
  data:string ->
  Proto.resp
(** One coalesced write-behind batch: a contiguous byte run from offset
    [off] within page [first], split back into per-page shadow writes.
    Idempotent (absolute positioning), so safe to retry after a suspected
    message loss. *)

val handle_truncate : Ktypes.t -> Catalog.Gfile.t -> size:int -> Proto.resp

val handle_commit :
  ?force_vv:Vv.Version_vector.t ->
  ?stripes:Net.Site.t list ->
  Ktypes.t ->
  Catalog.Gfile.t ->
  abort:bool ->
  delete:bool ->
  Proto.resp
(** The atomic commit (§2.3.6): switch the incore inode in, bump the
    version vector (or install [force_vv], recovery's merged vector), and
    send commit notifications. [abort] discards instead; [delete] marks
    the inode deleted first (§2.3.7). A non-empty [stripes] names the
    stripe sites of a striped modify session: this site (the primary)
    first collects each peer's session pages with [Stripe_collect] and
    folds them into its own shadow copy, so the classic commit then
    installs the one complete version. *)

val handle_stripe_collect : Ktypes.t -> Catalog.Gfile.t -> Proto.resp
(** Peer half of the striped commit: surrender the local session's
    modified pages and size to the committing primary and abort the
    session. Answers an empty page set (size -1) when no session exists,
    which an aborting primary treats as already clean. *)

val handle_us_close :
  Ktypes.t -> src:Net.Site.t -> Catalog.Gfile.t -> mode:Proto.open_mode -> Proto.resp
(** US→SS leg of the race-free three-message close (§2.3.3 footnote);
    forwards SS→CSS. *)

val revalidate_serving : Ktypes.t -> unit
(** Post-merge SS-side analogue of the §5.6 lock-table scrub: ask every
    using site in the partition for its live opens and reset each serving
    registration's count to what the US reports, tearing emptied ones down
    like a last close (abort shadow session, free the slot). Cleans up
    registrations stranded by a lost open reply — the CSS registered the
    US here, but the US never learned its open succeeded, so no close will
    ever arrive. Unreachable USes keep their registrations for the next
    merge to retry. *)

val handle_create :
  Ktypes.t ->
  int ->
  ftype:Storage.Inode.ftype ->
  owner:string ->
  perms:int ->
  replicate_at:Net.Site.t list ->
  Proto.resp
(** Allocate an inode number from this pack's partition of the filegroup's
    inode space (§2.3.7), install the descriptor, register it with the
    CSS, and designate the other initial storage sites. *)

val handle_link_count : Ktypes.t -> Catalog.Gfile.t -> delta:int -> Proto.resp

val handle_set_attr :
  Ktypes.t -> Catalog.Gfile.t -> perms:int option -> owner:string option -> Proto.resp
(** Metadata-only commits (the "just inode information changed" case). *)

val handle_stat : Ktypes.t -> Catalog.Gfile.t -> Proto.resp

val handle_inventory : Ktypes.t -> int -> Proto.resp
(** Every inode this pack stores, with versions — recovery's rebuild
    input. *)

val handle_reclaim : Ktypes.t -> Catalog.Gfile.t -> Proto.resp
(** Release a fully-deleted inode for reallocation. *)

val handle_pipe_write : Ktypes.t -> Catalog.Gfile.t -> string -> Proto.resp

val handle_pipe_read : Ktypes.t -> Catalog.Gfile.t -> int -> Proto.resp
