(* Kernel state shared by every module of the core library.

   One [t] is the resident LOCUS kernel of one site. A site can
   simultaneously play the three logical roles of section 2.3.1 — using
   site (US), storage site (SS) and current synchronization site (CSS) —
   so the kernel holds the state for all three, keyed by filegroup and
   file. *)

module Engine = Sim.Engine
module Vvec = Vv.Version_vector
module Site = Net.Site
module Gfile = Catalog.Gfile

exception Error of Proto.errno * string

let err errno fmt = Format.kasprintf (fun s -> raise (Error (errno, s))) fmt

let () =
  Printexc.register_printer (function
    | Error (e, s) ->
      Some (Printf.sprintf "Locus error %s: %s" (Proto.errno_to_string e) s)
    | _ -> None)

type config = {
  readahead : bool;          (* one-page readahead on sequential reads (2.3.3) *)
  use_cache : bool;          (* cache remote pages at the US *)
  us_cache_pages : int;      (* US page-cache entries *)
  ss_cache_pages : int;      (* SS buffer-cache entries; 0 disables the tier *)
  cache_retention : bool;    (* keep version-keyed US pages across opens *)
  propagation_delay : float; (* ms before the kernel propagation process runs a pull *)
  name_cache_entries : int;  (* pathname name-cache entries; 0 disables (2.3.4) *)
  remote_lookup : bool;      (* ship partial pathnames to a storage site (2.3.4) *)
  bulk_window : int;
  (* maximum pages per bulk transfer: streaming-read fetch window,
     write-behind batch size, and propagation pull batch. 1 disables the
     bulk layer entirely and reproduces the one-page-per-RTT protocols. *)
  open_lease : bool;
  (* CSS grants revocable read leases on open: the US retains the whole
     open grant across close and re-opens with zero messages until a
     callback break. false keeps today's protocol byte-identical. *)
  open_lease_entries : int;
  (* retained open grants per site; 0 disables the lease layer too *)
  stripe_width : int;
  (* stripe a file's logical pages across up to this many storage sites
     holding latest copies: page p lives at stripes.(p mod width). 1
     disables striping and keeps the classic protocol byte-identical. *)
  table_size_hint : int;
  (* initial bucket count for the hot per-kernel hashtables (open files,
     SS serving state, slots, descriptors); sized up front so large runs
     don't pay repeated rehashing *)
}

let default_config =
  {
    readahead = true;
    use_cache = true;
    us_cache_pages = 256;
    ss_cache_pages = 512;
    cache_retention = true;
    propagation_delay = 2.0;
    name_cache_entries = 512;
    remote_lookup = true;
    bulk_window = 8;
    open_lease = true;
    open_lease_entries = 64;
    stripe_width = 1;
    table_size_hint = 64;
  }

(* ---- CSS state: synchronization and version bookkeeping (2.3.1) ---- *)

type css_file = {
  mutable latest_vv : Vvec.t;
  mutable site_vv : Vvec.t Site.Map.t; (* every site storing a copy, with its version *)
  mutable readers : int Site.Map.t; (* open-for-read counts per US *)
  mutable writer : Site.t option;        (* at most one open for modification *)
  mutable writer_ss : Site.t option;     (* the single SS while a writer exists *)
  mutable css_deleted : bool;
  mutable css_conflict : bool; (* unresolved version conflict: normal opens fail (4.6) *)
  mutable leases : Site.Set.t;
  (* sites granted a read lease on this file; broken by callback
     (Lease_break) when a writer opens, the version advances, a conflict
     or delete is recorded, or the partition changes *)
  mutable stripes : Site.t list;
  (* the stripe map pinned while opens are outstanding, so every US of a
     shared file reads and writes the same page->SS assignment; [] means
     unstriped (classic single-SS service) *)
}

type css_fg = { css_files : (int, css_file) Hashtbl.t }

(* ---- US state: incore inodes for open files (2.3.3) ---- *)

(* A write-behind run: adjacent write chunks coalesce into one buffer and
   travel to the SS as a single [Write_pages] batch. *)
type wb_run = {
  wb_off : int; (* absolute byte offset of the run's start *)
  wb_buf : Buffer.t;
  wb_serial : int;
  (* ties the flush timer to the run it was armed for: a timer whose run
     has already been flushed (and possibly replaced) is a no-op *)
}

type ofile = {
  o_gf : Gfile.t;
  o_serial : int;  (* distinguishes simultaneous opens of the same file *)
  o_mode : Proto.open_mode;
  mutable o_ss : Site.t;
  mutable o_info : Proto.inode_info;
  mutable o_nocache : bool; (* concurrent writer somewhere: bypass the US cache *)
  mutable o_dirty : bool;   (* uncommitted modifications have been sent to the SS *)
  mutable o_last_lpage : int; (* last page read, drives sequential readahead *)
  mutable o_guess : int; (* the SS's incore-inode slot, sent with page reads *)
  mutable o_window : int; (* streaming fetch window, pages: grows 1->2->4->..
                             on sequential reads, resets to 1 on a seek *)
  mutable o_ra_frontier : int; (* first page NOT yet requested ahead *)
  mutable o_inflight : (int * int) list; (* scheduled readahead (first, count)
                                            ranges, to dedup overlapping fetches *)
  mutable o_wb : wb_run option; (* pending write-behind run, if any *)
  mutable o_stripes : Site.t list;
  (* stripe map for this open: page p is served by stripes.(p mod width);
     [] = unstriped, everything goes to [o_ss]. [o_ss] is always the
     primary (first) stripe site when striped. *)
  mutable o_closed : bool;
  mutable o_lease : Openlease.entry option;
  (* the lease grant this open rides: its close is deferred while the
     lease lives (the entry retains the registered SS/CSS state) *)
}

(* ---- SS state: served opens and shadow sessions (2.3.5/2.3.6) ---- *)

type ss_open = {
  s_gf : Gfile.t;
  s_slot : int; (* incore-inode slot; shipped to USs as their read guess (2.3.3) *)
  mutable s_shadow : Storage.Shadow.t option;
  mutable s_uss : int Site.Map.t; (* using sites currently served, with counts *)
  mutable s_others : Site.t list; (* other storing sites, for commit notifications *)
}

(* ---- shared file descriptors and their offset tokens (3.2) ---- *)

type fd_key = int * int (* origin site, serial *)

type shared_fd = {
  f_key : fd_key;
  f_gf : Gfile.t;
  f_mode : Proto.open_mode;
  mutable f_offset : int;     (* meaningful only where the token is *)
  mutable f_holder : Site.t;  (* manager's view of the current token holder *)
  mutable f_valid : bool;     (* this site currently holds the token *)
  mutable f_refs : int;       (* local fd-table references *)
  mutable f_ofile : ofile option; (* this site's own open handle on the file *)
}

(* ---- processes (3) ---- *)

type proc_status = Running | Exited of int

type proc = {
  pid : int;
  mutable p_site : Site.t;
  mutable p_parent : (int * Site.t) option;
  mutable p_uid : string;
  mutable p_cwd : Gfile.t;
  mutable p_context : string list; (* hidden-directory context, e.g. ["vax"] *)
  mutable p_ncopies : int;         (* inherited default replication factor (2.3.7) *)
  mutable p_advice : Site.t list;
  (* execution-site advice list (3.1): first reachable entry wins *)
  p_fds : (int, fd_key) Hashtbl.t;
  mutable p_next_fd : int;
  mutable p_status : proc_status;
  mutable p_children : (int * Site.t) list;
  mutable p_signals : int list;    (* delivered signals, newest first *)
  mutable p_zombies : (int * int) list; (* exited children awaiting wait() *)
  mutable p_err_info : string option; (* extra error info, read by a new call (3.3) *)
  mutable p_image_pages : int;     (* process image size, charged on fork/exec *)
}

(* ---- per-filegroup replicated configuration ---- *)

type fg_info = {
  fg : int;
  mutable css_site : Site.t;
  mutable pack_sites : Site.t list; (* sites with a physical container of this fg *)
}

(* ---- the kernel ---- *)

type t = {
  site : Site.t;
  machine_type : string; (* cpu type, selects hidden-directory entries (2.4.1) *)
  engine : Engine.t;
  net : (Proto.req, Proto.resp) Net.Netsim.t;
  config : config;
  mount : Catalog.Mount.t;
  mutable fg_table : fg_info list;
  packs : (int, Storage.Pack.t) Hashtbl.t;       (* fg -> local physical container *)
  css_state : (int, css_fg) Hashtbl.t;           (* fgs this site is CSS for *)
  open_files : (Gfile.t * int, ofile) Hashtbl.t; (* US incore inodes, by (file, serial) *)
  ss_opens : (Gfile.t, ss_open) Hashtbl.t;       (* SS-side serving state *)
  ss_slots : (int, Gfile.t) Hashtbl.t;           (* incore-inode slot -> file *)
  us_cache : (Gfile.t * int * string) Storage.Cache.t; (* (file, lpage, vv) -> page *)
  ss_cache : (Gfile.t * int * string) Storage.Cache.t;
  (* SS buffer cache fronting pack/disk page reads, same version-keying *)
  name_cache : Namecache.t;
  (* (directory, component) -> child links, vv-validated (section 2.3.4) *)
  open_leases : Openlease.t;
  (* retained open grants of lease-backed read opens, for zero-message
     re-opens and deferred closes *)
  mutable prop_pending : Gfile.Set.t;
  prop_queue : (Gfile.t * Vvec.t * int list * int * float) Queue.t;
  (* file, target version, modified pages ([] = whole file), retries left,
     earliest-retry time (simulated ms; backed off after a failed pull) *)
  shared_fds : (fd_key, shared_fd) Hashtbl.t;
  procs : (int, proc) Hashtbl.t;
  pipe_bufs : (Gfile.t, string ref) Hashtbl.t;   (* SS-side fifo contents *)
  mutable next_serial : int;
  mutable dispatch : Site.t -> Proto.req -> Proto.resp;
  (* local fast path into this kernel's own message handler *)
  mutable extra_handler : Site.t -> Proto.req -> Proto.resp option;
  (* reconfiguration-protocol handlers, installed by the recovery layer *)
  mutable site_table : Site.t list; (* believed-up sites: this site's partition *)
  mutable site_set : Site.Set.t;    (* same membership as [site_table], for O(log n)
                                       partition tests on hot paths; keep in sync via
                                       [set_sites] *)
  mutable alive : bool;
  mutable recon_stage : int; (* reconfiguration stage, for section 5.7 ordering *)
}

let now k = Engine.now k.engine

let stats k = Engine.stats k.engine

let latency k = Net.Netsim.latency k.net

let charge k dt = Engine.charge k.engine dt

let charge_disk_read k = charge k (latency k).Net.Latency.disk_read

let charge_disk_write k = charge k (latency k).Net.Latency.disk_write

let charge_cpu_page k = charge k (latency k).Net.Latency.cpu_page

let record k ~tag detail =
  Engine.record k.engine ~tag (Printf.sprintf "%s %s" (Site.to_string k.site) detail)

let fg_info k fg =
  match List.find_opt (fun fi -> fi.fg = fg) k.fg_table with
  | Some fi -> fi
  | None -> err Proto.Einval "unknown filegroup %d" fg

let local_pack k fg = Hashtbl.find_opt k.packs fg

let local_pack_exn k fg =
  match local_pack k fg with
  | Some p -> p
  | None -> err Proto.Eio "site %a has no pack for filegroup %d" Site.pp k.site fg

let in_partition k site = Site.Set.mem site k.site_set

(* The only sanctioned way to change the partition membership: keeps the
   list view (ordering, wire format) and the set view (membership tests)
   consistent. *)
let set_sites k sites =
  let sites = List.sort_uniq Site.compare sites in
  k.site_table <- sites;
  k.site_set <- Site.Set.of_list sites

(* Deterministic CSS placement (scale-out): every site computes the same
   coordinator for a filegroup from the sorted pack-holder list alone, so
   election needs no negotiation beyond agreeing on the candidates. The
   multiplicative hash spreads distinct filegroups across their holders;
   filegroup 0 lands on the lowest holder, preserving the classic
   single-filegroup layout. *)
let place_css ~fg candidates =
  match List.sort_uniq Site.compare candidates with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let idx = fg * 2654435761 land max_int mod n in
    Some (List.nth sorted idx)

(* Deterministic stripe map for a file: up to [width] distinct sites, all
   holding the latest version, rotated by inode number so different files
   spread load across the same holders. Striping only engages when at
   least two latest-copy holders exist; otherwise the classic single-SS
   protocol applies ([]). *)
let stripe_map ~width ~ino candidates =
  if width <= 1 then []
  else
    match List.sort_uniq Site.compare candidates with
    | [] | [ _ ] -> []
    | sorted ->
      let n = List.length sorted in
      let w = min width n in
      let arr = Array.of_list sorted in
      let rot = ino mod n in
      List.init w (fun i -> arr.((rot + i) mod n))

(* Which stripe site serves logical page [lpage] under map [stripes]. *)
let stripe_owner stripes lpage =
  match stripes with
  | [] -> invalid_arg "stripe_owner: unstriped file"
  | _ -> List.nth stripes (lpage mod List.length stripes)

(* Cache keys carry the version vector rendered to a string, so a new
   committed version naturally misses (coherence for free). *)
let vv_key vv = Vvec.to_string vv

let ss_cache_enabled k = k.config.ss_cache_pages > 0

let fresh_serial k =
  let n = k.next_serial in
  k.next_serial <- n + 1;
  n

(* Remote procedure call to another kernel, through the transport layer:
   typed errors, per-message-class retry policy, per-call tracing.
   Collocated roles short-circuit to a procedure call (section 2.3.2). *)
let rpc_result k dst req =
  if not k.alive then Stdlib.Error (Net.Rpc.Unreachable { src = k.site; dst; attempts = 0 })
  else
    Net.Rpc.call k.net ~policy:(Proto.req_policy req) ~tag:(Proto.req_tag req) ~src:k.site
      ~dst ~req_bytes:(Proto.req_bytes req) ~resp_bytes:Proto.resp_bytes req

(* Raising variant for the protocol paths where any transport failure means
   the operation fails with a network error. *)
let rpc k dst req =
  if not k.alive then err Proto.Enet "site %a is down" Site.pp k.site;
  match rpc_result k dst req with
  | Ok resp -> resp
  | Stdlib.Error e -> err Proto.Enet "%a" Net.Rpc.pp_error e

(* Close legs ([Us_close]/[Ss_close]) are non-idempotent, so the transport
   never retries them on its own — but [Unreachable] means the handler
   provably did not run (the request never arrived), so resending is safe.
   Without the resend, one randomly lost close between two healthy sites
   leaks the SS's serving registration forever: nothing downstream rebuilds
   SS-side state while both ends stay up (merge rebuilds only the CSS lock
   table, and failure cleanup covers only dead sites). [Lost_reply] means
   the close DID run — the reply loss is harmless and must not trigger a
   resend. *)
let rpc_close ?(attempts = 3) k dst req =
  let rec go n =
    match rpc_result k dst req with
    | Stdlib.Error (Net.Rpc.Unreachable _) when n < attempts ->
      Sim.Stats.incr (Engine.stats k.engine) "net.close.resend";
      go (n + 1)
    | r -> r
  in
  go 1

(* At-least-once delivery for the close legs: a loss burst can outlast
   [rpc_close]'s synchronous resend budget, and a close that is simply
   dropped leaks serving state for as long as both ends stay up. Park the
   close and retry on a growing timer until it gets through, the
   destination leaves this site's partition (membership cleanup then owns
   the state), or the backoff budget runs out (the destination is down but
   not yet detected; restart scavenging owns the state). Retries fire only
   after [Unreachable] — the handler provably did not run — so the
   non-idempotent close still executes at most once. *)
let close_park_base_delay = 4.0

let close_park_max_tries = 8

let rec park_close k dst req ~tries =
  if k.alive && in_partition k dst && tries < close_park_max_tries then
    Engine.schedule k.engine
      ~delay:(close_park_base_delay *. (2.0 ** float_of_int tries))
      (fun () ->
        if k.alive && in_partition k dst then begin
          Sim.Stats.incr (Engine.stats k.engine) "net.close.park_retry";
          match rpc_close k dst req with
          | Ok _ | Stdlib.Error (Net.Rpc.Lost_reply _ | Net.Rpc.Timeout _) -> ()
          | Stdlib.Error (Net.Rpc.Unreachable _) ->
            park_close k dst req ~tries:(tries + 1)
        end)

(* Send a close leg, parking it for background retry if every synchronous
   resend was lost. [None] means the caller can treat the close as
   handed off: it either ran ([Lost_reply]) or will be retried. *)
let send_close k dst req =
  match rpc_close k dst req with
  | Ok resp -> Some resp
  | Stdlib.Error (Net.Rpc.Unreachable _) ->
    park_close k dst req ~tries:0;
    None
  | Stdlib.Error (Net.Rpc.Lost_reply _ | Net.Rpc.Timeout _) -> None

(* One-way notification; losses are silent (the commit protocol tolerates
   them: recovery reconciles). *)
let notify k dst req =
  if k.alive then
    Net.Rpc.send k.net ~tag:(Proto.req_tag req) ~src:k.site ~dst
      ~bytes:(Proto.req_bytes req) req

(* SS serving-state bookkeeping, shared by the SS handlers and the CSS
   (which must register remote using sites when it selects itself). *)
let ss_find_open k gf = Hashtbl.find_opt k.ss_opens gf

let ss_get_open k gf =
  match ss_find_open k gf with
  | Some s -> s
  | None ->
    let slot = fresh_serial k in
    let s =
      { s_gf = gf; s_slot = slot; s_shadow = None; s_uss = Site.Map.empty; s_others = [] }
    in
    Hashtbl.add k.ss_opens gf s;
    Hashtbl.replace k.ss_slots slot gf;
    s

let ss_add_us s us =
  let n = match Site.Map.find_opt us s.s_uss with Some n -> n | None -> 0 in
  s.s_uss <- Site.Map.add us (n + 1) s.s_uss

let expect_ok = function
  | Proto.R_ok -> ()
  | Proto.R_err e -> err e "remote operation failed"
  | _ -> err Proto.Eio "unexpected response"
