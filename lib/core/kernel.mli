(** The LOCUS kernel: construction and the user-visible system-call layer.

    One [t] is the resident kernel of one site. The system calls mirror the
    paper's list — open, create, read, write, commit, close, unlink (§2.3)
    — plus the process calls of §3 and the replication-control calls of
    §2.3.7. All of them are location transparent: the same call with the
    same parameters works whether the file (or process) is local or remote.

    System calls take the calling {!Ktypes.proc} because per-process state
    (uid, working directory, hidden-directory context, replication factor,
    execution advice) shapes their behaviour. *)

type t = Ktypes.t

val create :
  site:Net.Site.t ->
  machine_type:string ->
  engine:Sim.Engine.t ->
  net:(Proto.req, Proto.resp) Net.Netsim.t ->
  mount:Catalog.Mount.t ->
  fg_table:Ktypes.fg_info list ->
  ?config:Ktypes.config ->
  unit ->
  t
(** Create a kernel and register its message handler with the network.
    [machine_type] selects hidden-directory entries (§2.4.1). *)

val site : t -> Net.Site.t

val add_pack : t -> Storage.Pack.t -> unit
(** Attach a physical container for one filegroup. *)

val set_site_table : t -> Net.Site.t list -> unit
(** Install the believed-up-site list (normally the recovery layer's job). *)

val site_table : t -> Net.Site.t list

(** {1 Pathname resolution} *)

val resolve : t -> Ktypes.proc -> string -> Catalog.Gfile.t
(** Resolve a pathname under the process's cwd and context; a final hidden
    directory is expanded. Raises {!Ktypes.Error} [ENOENT] etc. *)

val resolve_raw : t -> Ktypes.proc -> string -> Catalog.Gfile.t
(** Like {!resolve} but does not expand a final hidden directory. *)

(** {1 Protection (§2.3.3: "protection checks are made")} *)

val may_access : Ktypes.proc -> Proto.inode_info -> write:bool -> bool
(** Unix-style owner/other permission bits; uid "root" bypasses. *)

val open_checked : t -> Ktypes.proc -> Catalog.Gfile.t -> Proto.open_mode -> Ktypes.ofile
(** Open with the caller's credentials checked; raises [EACCES]. *)

(** {1 File descriptors}

    Descriptors are the shared objects of §3.1: a fork ships them to the
    child, and the current file position migrates between sites under the
    token mechanism of §3.2. *)

val open_path : t -> Ktypes.proc -> string -> Proto.open_mode -> int
(** Open a file; returns the descriptor number. *)

val read_fd : t -> Ktypes.proc -> int -> len:int -> string
(** Read at the shared offset (acquiring the offset token if needed). *)

val write_fd : t -> Ktypes.proc -> int -> string -> unit

val lseek : t -> Ktypes.proc -> int -> int -> unit

val commit_fd : t -> Ktypes.proc -> int -> unit
(** Commit the modifications made through this descriptor (§2.3.6). *)

val abort_fd : t -> Ktypes.proc -> int -> unit
(** Undo the modifications back to the previous commit point. *)

val close_fd : t -> Ktypes.proc -> int -> unit
(** Drop this process's reference; the last reference closes the file
    (which commits, as in Unix LOCUS: "closing a file commits it"). *)

val fd_of : t -> Ktypes.proc -> int -> Ktypes.shared_fd

val ensure_ofile : t -> Ktypes.shared_fd -> Ktypes.ofile

(** {1 Name-space calls} *)

val creat :
  ?ftype:Storage.Inode.ftype -> t -> Ktypes.proc -> string -> Catalog.Gfile.t
(** Create a file (default type regular) with the process's replication
    factor; initial storage sites are chosen by the §2.3.7 algorithm. *)

val mkdir : ?hidden:bool -> t -> Ktypes.proc -> string -> Catalog.Gfile.t
(** Create a directory; [hidden] makes a context-expanding hidden
    directory (§2.4.1). *)

val mkfifo : t -> Ktypes.proc -> string -> Catalog.Gfile.t

val unlink : t -> Ktypes.proc -> string -> unit
(** Remove a name; the last link deletes the file body (§2.3.7). *)

val link : t -> Ktypes.proc -> target:string -> path:string -> unit
(** Hard link (within one filegroup). *)

val rename : t -> Ktypes.proc -> from_path:string -> to_path:string -> unit

val readdir : t -> Ktypes.proc -> string -> Catalog.Dir.entry list
(** Live entries. On a hidden directory this lists the per-machine
    entries (the escape view). *)

val stat : t -> Ktypes.proc -> string -> Proto.inode_info

val chdir : t -> Ktypes.proc -> string -> unit

(** {1 Whole-file conveniences} *)

val read_file : t -> Ktypes.proc -> string -> string

val write_file : t -> Ktypes.proc -> string -> string -> unit
(** Whole-file overwrite, committed atomically via shadow pages. *)

val append_file : t -> Ktypes.proc -> string -> string -> unit

(** {1 Attribute changes (metadata-only commits)} *)

val chmod : t -> Ktypes.proc -> string -> int -> unit

val chown : t -> Ktypes.proc -> string -> string -> unit

(** {1 Replication control (§2.3.7)} *)

val set_ncopies : Ktypes.proc -> int -> unit
(** The new system call of §2.3.7: set the per-process default number of
    copies for created files. *)

val get_ncopies : Ktypes.proc -> int

val set_advice : Ktypes.proc -> Net.Site.t option -> unit
(** Execution-site advice for fork/exec/run (§3.1). *)

val set_advice_list : Ktypes.proc -> Net.Site.t list -> unit
(** The full structured advice list; earlier entries are preferred. *)

val set_context : Ktypes.proc -> string list -> unit
(** The hidden-directory context (machine types, §2.4.1). *)

(** {1 Named pipes (§2.4.2)} *)

val pipe_write : t -> Ktypes.proc -> string -> string -> unit

val pipe_read : t -> Ktypes.proc -> string -> max:int -> string

(** {1 Mailboxes} *)

val mailbox_deliver : t -> path:string -> from:string -> body:string -> unit
(** Append a message to a mailbox file (used by recovery for conflict
    notification, §4.6). *)

val mailbox_read : t -> Ktypes.proc -> string -> Catalog.Mailbox.msg list

(** {1 Failure handling} *)

val handle_site_failure : t -> Net.Site.t -> unit
(** The cleanup procedure of §5.6: run the failure-action table against
    every resource shared with the departed site. *)

val crash : t -> unit
(** Destroy all volatile state (incore inodes, shadow sessions, caches,
    processes, CSS bookkeeping). The disks survive. *)

val restart : t -> int
(** Bring the kernel back up; scavenges orphaned shadow pages and returns
    how many were reclaimed. *)

val cache_stats : t -> int * int
(** US page-cache (hits, misses). *)

val ss_cache_stats : t -> int * int
(** SS buffer-cache (hits, misses). *)
