(* Directory updates, file creation and deletion (sections 2.3.4, 2.3.7).

   Every name-space change — enter an entry, remove an entry, rename — is
   one atomic directory modification performed through the standard
   open-for-modification / commit machinery, so directory interrogation
   never sees an inconsistent picture. Creation chooses initial storage
   sites with the paper's algorithm: storage sites of the parent directory,
   local site first, inaccessible sites last. *)

open Ktypes
module Inode = Storage.Inode
module Dir = Catalog.Dir

(* Apply [f] to a directory's contents atomically: open for modification
   (the CSS serializes writers), rewrite, commit, close. Retries a few
   times when another site holds the modification lock. *)
let update_dir k dir_gf f =
  let rec attempt tries =
    match Us.open_gf k dir_gf Proto.Mode_modify with
    | o ->
      (* Anything that raises from here on — the read, the user function,
         the rewrite, the commit — must still release the open, or the SS
         keeps the serving registration and shadow session forever. *)
      (match
         let dir = Pathname.dir_of_body (Us.read_all k o) in
         let result = f dir in
         Us.set_contents k o (Dir.encode dir);
         Us.commit k o;
         result
       with
      | result ->
        Us.close k o;
        (* This site just changed the directory, and its own commit
           notification never loops back here: retire name-cache links
           read under the old version now. *)
        Namecache.note_dir_vv k.name_cache ~dir:dir_gf o.o_info.Proto.i_vv;
        result
      | exception e ->
        Us.release k o;
        raise e)
    | exception Error (Proto.Ebusy, _) when tries > 0 ->
      charge k 1.0;
      attempt (tries - 1)
  in
  attempt 5

let enter_entry k dir_gf ~name ~ino =
  update_dir k dir_gf (fun dir ->
      match Dir.lookup dir name with
      | Some _ -> err Proto.Eexist "%s already exists" name
      | None -> Dir.insert dir ~name ~ino ~stamp:(now k) ~origin:k.site)

let remove_entry k dir_gf ~name =
  update_dir k dir_gf (fun dir ->
      match Dir.lookup dir name with
      | None -> err Proto.Enoent "%s: no such entry" name
      | Some ino ->
        ignore (Dir.remove dir ~name ~stamp:(now k) ~origin:k.site);
        ino)

(* Initial storage-site selection for a new file (section 2.3.7):
   a. all storage sites must store the parent directory;
   b. the local site is used first if possible;
   c. then the parent directory's site order, inaccessible sites last. *)
let initial_storage_sites k ~parent_sites ~ncopies =
  let accessible, inaccessible =
    List.partition (fun s -> in_partition k s) parent_sites
  in
  let ordered =
    if List.mem k.site accessible then
      k.site :: List.filter (fun s -> not (Site.equal s k.site)) accessible
    else accessible
  in
  let ordered = ordered @ inaccessible in
  List.filteri (fun i _ -> i < ncopies) ordered

let parent_storage_sites k dir_gf =
  let fi = fg_info k dir_gf.Gfile.fg in
  match rpc k fi.css_site (Proto.Where_stored { gf = dir_gf }) with
  | Proto.R_where { all_sites; _ } -> all_sites
  | Proto.R_err e -> err e "cannot locate parent directory copies"
  | _ -> err Proto.Eio "unexpected where response"

(* Create a file under [dir_gf]. The create is done at one storage site and
   propagated to the others. Returns the new file's gfile. *)
let create_in k dir_gf ~name ~ftype ~owner ~perms ~ncopies =
  let parent_sites = parent_storage_sites k dir_gf in
  (* Replication factor: min(per-process default, parent's factor). *)
  let ncopies = max 1 (min ncopies (List.length parent_sites)) in
  let chosen = initial_storage_sites k ~parent_sites ~ncopies in
  match chosen with
  | [] -> err Proto.Enet "no accessible storage site for create"
  | ss :: others ->
    let fg = dir_gf.Gfile.fg in
    let req = Proto.Create_req { fg; ftype; owner; perms; replicate_at = others } in
    let ino =
      if Site.equal ss k.site then begin
        match Ss.handle_create k fg ~ftype ~owner ~perms ~replicate_at:others with
        | Proto.R_created { ino } -> ino
        | Proto.R_err e -> err e "create failed"
        | _ -> err Proto.Eio "unexpected create response"
      end
      else
        match rpc k ss req with
        | Proto.R_created { ino } -> ino
        | Proto.R_err e -> err e "create failed"
        | _ -> err Proto.Eio "unexpected create response"
    in
    let gf = Gfile.make ~fg ~ino in
    enter_entry k dir_gf ~name ~ino;
    record k ~tag:"us.create"
      (Format.asprintf "%s -> %a at %a (+%d replicas)" name Gfile.pp gf Site.pp ss
         (List.length others));
    gf

(* Initialize a fresh directory's "." and ".." entries. *)
let init_directory k gf ~parent_ino =
  let o = Us.open_gf k gf Proto.Mode_modify in
  match
    let dir = Dir.empty () in
    Dir.insert dir ~name:"." ~ino:gf.Gfile.ino ~stamp:(now k) ~origin:k.site;
    Dir.insert dir ~name:".." ~ino:parent_ino ~stamp:(now k) ~origin:k.site;
    Us.set_contents k o (Dir.encode dir);
    Us.commit k o
  with
  | () -> Us.close k o
  | exception e ->
    Us.release k o;
    raise e

(* Adjust a file's link count at its current storage site. *)
let link_count k gf ~delta =
  let o = Us.open_gf k gf Proto.Mode_modify in
  let resp =
    match
      if Site.equal o.o_ss k.site then Ss.handle_link_count k gf ~delta
      else rpc k o.o_ss (Proto.Link_count { gf; delta })
    with
    | resp -> resp
    | exception e ->
      Us.release k o;
      raise e
  in
  (match resp with
  | Proto.R_committed _ -> ()
  | Proto.R_err e ->
    Us.release k o;
    err e "link count update failed"
  | _ -> ());
  Us.close k o

(* Remove a name; delete the file body once the last link is gone. *)
let unlink_gf k dir_gf ~name =
  let ino = remove_entry k dir_gf ~name in
  let gf = Gfile.make ~fg:dir_gf.Gfile.fg ~ino in
  let info = Us.stat_gf k gf in
  if info.Proto.i_nlink > 1 then link_count k gf ~delta:(-1)
  else begin
    let o = Us.open_gf k gf Proto.Mode_modify in
    (match Us.delete_file k o with
    | () -> Us.close k o
    | exception e ->
      Us.release k o;
      raise e);
    (* The unlinking site may never receive the deletion's commit
       notification (it need not store the file): drop links to the dead
       inode here as well. *)
    Namecache.invalidate_child k.name_cache gf
  end;
  gf

(* Add a hard link: a second name for an existing inode in the same
   filegroup. *)
let link_gf k ~target ~dir_gf ~name =
  if target.Gfile.fg <> dir_gf.Gfile.fg then
    err Proto.Einval "hard links cannot cross filegroup boundaries";
  enter_entry k dir_gf ~name ~ino:target.Gfile.ino;
  link_count k target ~delta:1

(* Rename within a filegroup: remove the old entry, enter the new one.
   Both are atomic directory operations. *)
let rename_gf k ~old_dir ~old_name ~new_dir ~new_name =
  if old_dir.Gfile.fg <> new_dir.Gfile.fg then
    err Proto.Einval "rename cannot cross filegroup boundaries";
  let ino = remove_entry k old_dir ~name:old_name in
  (try enter_entry k new_dir ~name:new_name ~ino
   with e ->
     (* Put the old entry back if the target directory refused. *)
     ignore (enter_entry k old_dir ~name:old_name ~ino);
     raise e);
  Gfile.make ~fg:old_dir.Gfile.fg ~ino
