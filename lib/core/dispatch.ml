(* Message dispatch: the kernel half that runs on behalf of a foreign
   site's system call (Figure 1's "serving site" column). *)

open Ktypes
module Cache = Storage.Cache

let handle k ~src (req : Proto.req) : Proto.resp =
  if not k.alive then Proto.R_err Proto.Enet
  else begin
    match req with
    (* open protocol *)
    | Proto.Open_req { gf; mode; us_vv; shared } ->
      Css.handle_open k ~src gf mode ~shared us_vv
    | Proto.Storage_req { gf; vv; us; mode = _; others } ->
      Ss.handle_storage_req k gf ~vv ~us ~others
    (* data transfer *)
    | Proto.Read_page { gf; lpage; guess } -> Ss.handle_read_page ~guess k gf lpage
    | Proto.Read_pages { gf; first; count; guess; stride } ->
      Ss.handle_read_pages ~guess ~stride k gf ~first ~count
    | Proto.Write_page { gf; lpage; whole; off; data } ->
      Ss.handle_write_page k ~src gf ~lpage ~whole ~off ~data
    | Proto.Write_pages { gf; first; off; data } ->
      Ss.handle_write_pages k ~src gf ~first ~off ~data
    | Proto.Truncate_req { gf; size } -> Ss.handle_truncate k gf ~size
    | Proto.Commit_req { gf; us = _; abort; delete; force_vv; stripes } ->
      Ss.handle_commit ?force_vv ~stripes k gf ~abort ~delete
    | Proto.Stripe_collect { gf } -> Ss.handle_stripe_collect k gf
    (* close protocol *)
    | Proto.Us_close { gf; mode } -> Ss.handle_us_close k ~src gf ~mode
    | Proto.Ss_close { gf; ss = _; us; mode } -> Css.handle_ss_close k gf ~us ~mode
    (* commit notifications: CSS bookkeeping and/or propagation pull *)
    | Proto.Commit_notify
        { gf; vv; meta_only = _; modified; origin; fresh; deleted; designate; replicas }
      ->
      (* A new committed version exists: buffered pages of any other
         version of this file can never hit again — drop them from both
         cache tiers by (file, version) prefix. *)
      let stale (g, _, v) = Gfile.equal g gf && not (String.equal v (vv_key vv)) in
      Cache.invalidate_if ~notify:false k.us_cache stale;
      Cache.invalidate_if ~notify:false k.ss_cache stale;
      (* Name-cache coherence rides the same notification: links read from
         an older version of this directory are dead, and if the file was
         deleted no link may keep resolving to it. *)
      Namecache.note_dir_vv k.name_cache ~dir:gf vv;
      if deleted then Namecache.invalidate_child k.name_cache gf;
      (* A locally-observed commit kills any lease granted on an older
         version without waiting for the CSS break callback. *)
      Openlease.note_commit k.open_leases gf vv;
      if (fg_info k gf.Gfile.fg).css_site = k.site then
        Css.handle_commit_notify ~replicas k gf ~origin ~vv ~deleted;
      if fresh && not (Net.Site.equal origin k.site) then
        Propagation.enqueue k gf ~vv ~modified ~designate;
      Proto.R_ok
    | Proto.Reclaim_req { gf } -> Ss.handle_reclaim k gf
    | Proto.Page_invalidate { gf; lpage } ->
      Cache.invalidate_if ~notify:false k.us_cache (fun (g, p, _) -> Gfile.equal g gf && p = lpage);
      Proto.R_ok
    | Proto.Lease_break { gf } ->
      (* CSS callback: drop the retained grant; the deferred close (if one
         is owed and no open still rides the lease) goes out now. *)
      record k ~tag:"us.lease.breakcb" (Gfile.to_string gf);
      Openlease.kill k.open_leases gf;
      Proto.R_ok
    (* create / delete / metadata *)
    | Proto.Create_req { fg; ftype; owner; perms; replicate_at } ->
      Ss.handle_create k fg ~ftype ~owner ~perms ~replicate_at
    | Proto.Link_count { gf; delta } -> Ss.handle_link_count k gf ~delta
    | Proto.Set_attr { gf; perms; owner } -> Ss.handle_set_attr k gf ~perms ~owner
    | Proto.Stat_req { gf } -> Ss.handle_stat k gf
    | Proto.Where_stored { gf } -> Css.handle_where k gf
    | Proto.Lookup_req { gf; comps } -> Pathname.handle_lookup k gf comps
    (* tokens *)
    | Proto.Token_req { key = Proto.Tok_fd (a, b); for_site } ->
      Tokens.handle_token_req k (a, b) ~for_site
    | Proto.Token_state_req { key = Proto.Tok_fd (a, b) } ->
      Tokens.handle_token_state_req k (a, b)
    (* processes *)
    | Proto.Fork_req { child_pid; env; image_pages; parent } ->
      Process.handle_fork k ~child_pid ~env ~image_pages ~parent
    | Proto.Exec_req { pid; path; env; image_pages; parent } ->
      Process.handle_exec k ~pid ~path ~env ~image_pages ~parent
    | Proto.Run_req { child_pid; path; env; parent; context_override } ->
      Process.handle_run ?context_override k ~child_pid ~path ~env ~parent
    | Proto.Signal_req { pid; signo } -> Process.deliver_signal k pid signo
    | Proto.Exit_notify { pid; status; child_site } ->
      Process.handle_exit_notify k ~pid ~status ~child_site
    (* pipes *)
    | Proto.Pipe_write { gf; data } -> Ss.handle_pipe_write k gf data
    | Proto.Pipe_read { gf; max } -> Ss.handle_pipe_read k gf max
    (* recovery bookkeeping served by the core *)
    | Proto.Open_files_query { fg } -> Css.handle_open_files_query k fg
    | Proto.Pack_inventory { fg } -> Ss.handle_inventory k fg
    (* reconfiguration protocols: handled by the recovery layer's hook *)
    | Proto.Part_poll _ | Proto.Part_announce _ | Proto.Merge_poll _
    | Proto.Merge_announce _ | Proto.Status_check _ -> (
      match k.extra_handler src req with
      | Some resp -> resp
      | None -> Proto.R_err Proto.Einval)
  end
