(* Storage Site logic (sections 2.3.3, 2.3.5, 2.3.6).

   The SS serves pages to using sites, receives their modification pages
   into shadow pages, and performs the atomic commit — after which it sends
   commit notifications to the CSS and to every other site storing the
   file, which pull the new version in background. *)

open Ktypes
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Page = Storage.Page
module Cache = Storage.Cache

let find_open = ss_find_open

let get_open = ss_get_open

let add_us = ss_add_us

let drop_us s us =
  match Site.Map.find_opt us s.s_uss with
  | None -> ()
  | Some 1 -> s.s_uss <- Site.Map.remove us s.s_uss
  | Some n -> s.s_uss <- Site.Map.add us (n - 1) s.s_uss

(* CSS asks: will you act as storage site for this open? Refuse when we do
   not store the file at (at least) the requested version (section 2.3.3). *)
let handle_storage_req k gf ~vv ~us ~others =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_storage { accept = false; info = None; slot = 0 }
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | None -> Proto.R_storage { accept = false; info = None; slot = 0 }
    | Some inode ->
      if inode.Inode.deleted then Proto.R_storage { accept = false; info = None; slot = 0 }
      else if not (Vvec.dominates_or_equal inode.Inode.vv vv) then
        (* We store only an out-of-date copy: refuse. *)
        Proto.R_storage { accept = false; info = None; slot = 0 }
      else begin
        let s = get_open k gf in
        add_us s us;
        s.s_others <- others;
        charge_disk_read k;
        Proto.R_storage
          { accept = true; info = Some (Proto.info_of_inode inode); slot = s.s_slot }
      end)

(* A committed page through the SS buffer cache: keyed by the inode's
   version vector, so a page cached before a commit misses afterwards —
   the cache can never serve a stale version. A hit skips the disk. *)
let cached_pack_page k pack gf (inode : Inode.t) lpage =
  if not (ss_cache_enabled k) then begin
    charge_disk_read k;
    Pack.read_page pack inode lpage
  end
  else begin
    let key = (gf, lpage, vv_key inode.Inode.vv) in
    match Cache.find k.ss_cache key with
    | Some page ->
      Sim.Stats.incr (stats k) "cache.ss.hit";
      page
    | None ->
      Sim.Stats.incr (stats k) "cache.ss.miss";
      charge_disk_read k;
      let page = Pack.read_page pack inode lpage in
      Cache.insert k.ss_cache key page;
      page
  end

(* Serve one page (the network read protocol, section 2.3.3). The guess
   locates the incore inode without a lookup when it is still valid. An
   open shadow session bypasses the buffer cache: readers of a file being
   written must see the uncommitted session pages (Unix shared-file
   semantics). *)
let handle_read_page ?(guess = 0) k gf lpage =
  (match Hashtbl.find_opt k.ss_slots guess with
  | Some g when Gfile.equal g gf -> Sim.Stats.incr (stats k) "ss.guess.hit"
  | Some _ | None -> Sim.Stats.incr (stats k) "ss.guess.miss");
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | None -> Proto.R_err Proto.Enoent
    | Some inode ->
      let page, size =
        match find_open k gf with
        | Some { s_shadow = Some session; _ } ->
          charge_disk_read k;
          (Shadow.read_page session lpage, (Shadow.incore session).Inode.size)
        | Some { s_shadow = None; _ } | None ->
          (cached_pack_page k pack gf inode lpage, inode.Inode.size)
      in
      let remaining = size - (lpage * Page.size) in
      let len = max 0 (min Page.size remaining) in
      let eof = (lpage + 1) * Page.size >= size in
      Proto.R_page { data = Page.sub page 0 len; eof })

(* Serve up to [count] pages, every [stride]-th from [first], in one
   response — the bulk-read half of the transfer layer. Disk and cache
   accounting is identical to [count] single reads; only the message count
   changes. A stride above 1 is a striped US asking this site for just its
   own stripe's pages. The reply is trimmed at end of file, with [eof]
   telling the US this site's share of the stream is done. *)
let handle_read_pages ?(guess = 0) ?(stride = 1) k gf ~first ~count =
  (match Hashtbl.find_opt k.ss_slots guess with
  | Some g when Gfile.equal g gf -> Sim.Stats.incr (stats k) "ss.guess.hit"
  | Some _ | None -> Sim.Stats.incr (stats k) "ss.guess.miss");
  if first < 0 || count <= 0 || stride <= 0 then Proto.R_err Proto.Einval
  else
    match local_pack k gf.Gfile.fg with
    | None -> Proto.R_err Proto.Eio
    | Some pack -> (
      match Pack.find_inode pack gf.Gfile.ino with
      | None -> Proto.R_err Proto.Enoent
      | Some inode ->
        let read_page, size =
          match find_open k gf with
          | Some { s_shadow = Some session; _ } ->
            ( (fun lpage ->
                charge_disk_read k;
                Shadow.read_page session lpage),
              (Shadow.incore session).Inode.size )
          | Some { s_shadow = None; _ } | None ->
            ((fun lpage -> cached_pack_page k pack gf inode lpage), inode.Inode.size)
        in
        let npages = (size + Page.size - 1) / Page.size in
        let pages = ref [] in
        for i = count - 1 downto 0 do
          let lpage = first + (i * stride) in
          if lpage < npages then begin
            let page = read_page lpage in
            let remaining = size - (lpage * Page.size) in
            let len = max 0 (min Page.size remaining) in
            pages := Page.sub page 0 len :: !pages
          end
        done;
        Proto.R_pages { pages = !pages; eof = first + (count * stride) >= npages })

let ensure_session k pack gf =
  let s = get_open k gf in
  match s.s_shadow with
  | Some session -> session
  | None ->
    let session = Shadow.begin_modify pack gf.Gfile.ino in
    s.s_shadow <- Some session;
    session

(* Invalidate buffered copies at the other using sites we serve: the
   page-valid token mechanism (section 3.2). *)
let invalidate_others k gf ~writer lpage =
  match find_open k gf with
  | None -> ()
  | Some s ->
    Site.Map.iter
      (fun us _ ->
        if (not (Site.equal us writer)) && not (Site.equal us k.site) then
          notify k us (Proto.Page_invalidate { gf; lpage }))
      s.s_uss

let handle_write_page k ~src gf ~lpage ~whole ~off ~data =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | None -> Proto.R_err Proto.Enoent
    | Some _ ->
      let session = ensure_session k pack gf in
      charge_disk_write k;
      if whole then Shadow.write_page session ~lpage (Page.of_string data)
      else Shadow.patch_page session ~lpage ~off data;
      (* Write-through: the buffered committed copy of this page is no
         longer what a reader should start from. *)
      Cache.invalidate_if ~notify:false k.ss_cache (fun (g, p, _) -> Gfile.equal g gf && p = lpage);
      invalidate_others k gf ~writer:src lpage;
      Proto.R_ok)

(* Receive one coalesced write-behind batch: a contiguous byte run from
   offset [off] within page [first], split back into per-page shadow
   writes. Page-aligned full pages enter whole (no read); the run's ragged
   head and tail patch. Effects per page — disk charge, SS-cache
   invalidation, page-valid invalidations at other USs — match what the
   same bytes arriving as single [Write_page]s would do, so the batch is
   idempotent and safe to retry. *)
let handle_write_pages k ~src gf ~first ~off ~data =
  let len = String.length data in
  if first < 0 || off < 0 || off >= Page.size then Proto.R_err Proto.Einval
  else if len = 0 then Proto.R_ok
  else
    match local_pack k gf.Gfile.fg with
    | None -> Proto.R_err Proto.Eio
    | Some pack -> (
      match Pack.find_inode pack gf.Gfile.ino with
      | None -> Proto.R_err Proto.Enoent
      | Some _ ->
        let session = ensure_session k pack gf in
        let base = (first * Page.size) + off in
        let rec loop pos =
          if pos < len then begin
            let abs = base + pos in
            let lpage = abs / Page.size in
            let poff = abs mod Page.size in
            let n = min (Page.size - poff) (len - pos) in
            let chunk = String.sub data pos n in
            charge_disk_write k;
            if poff = 0 && n = Page.size then
              Shadow.write_page session ~lpage (Page.of_string chunk)
            else Shadow.patch_page session ~lpage ~off:poff chunk;
            Cache.invalidate_if ~notify:false k.ss_cache (fun (g, p, _) -> Gfile.equal g gf && p = lpage);
            invalidate_others k gf ~writer:src lpage;
            loop (pos + n)
          end
        in
        loop 0;
        Proto.R_ok)

let handle_truncate k gf ~size =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack ->
    let session = ensure_session k pack gf in
    Shadow.truncate session size;
    Proto.R_ok

(* Peer stripe site's half of the striped commit: surrender the session's
   modified pages and size to the committing primary, then abort the local
   session — the primary folds them in and commits the one complete copy. *)
let handle_stripe_collect k gf =
  match find_open k gf with
  | Some ({ s_shadow = Some session; _ } as s) ->
    let pages =
      List.map
        (fun lpage ->
          charge_disk_read k;
          (lpage, Page.to_string (Shadow.read_page session lpage)))
        (Shadow.modified_lpages session)
    in
    let size = (Shadow.incore session).Inode.size in
    Shadow.abort session;
    s.s_shadow <- None;
    Cache.invalidate_if ~notify:false k.ss_cache (fun (g, _, _) -> Gfile.equal g gf);
    record k ~tag:"ss.stripe.collect"
      (Format.asprintf "%a -> %d pages size=%d" Gfile.pp gf (List.length pages) size);
    Proto.R_stripe { pages; size }
  | Some { s_shadow = None; _ } | None ->
    (* This stripe saw no modifications: nothing to fold in. The size is
       -1 so the primary ignores it in the size reconciliation. *)
    Proto.R_stripe { pages = []; size = -1 }

(* Committing primary's side: pull every peer stripe's modified pages into
   the local shadow session so the copy committed here is complete, then
   reconcile the size (all sessions saw the same truncates, so the true
   final size is the maximum of the per-stripe session sizes).

   [stripes] is the complete map, this site included: page p is owned by
   stripes.(p mod width). Only pages a peer owns are folded in — the US
   routes every write to the page's owner, so anything else in a peer's
   session is a truncate artifact (a dropped page reading as zeroes), and
   folding it would clobber the primary's fresh data. The size is taken
   from the sessions as the US left them, before whole-page folds round
   the primary's session up to a page boundary. *)
let collect_stripes k gf session stripes =
  let width = List.length stripes in
  let collected =
    List.mapi
      (fun j peer ->
        if Site.equal peer k.site then (j, [], -1)
        else
          match rpc k peer (Proto.Stripe_collect { gf }) with
          | Proto.R_stripe { pages; size } -> (j, pages, size)
          | Proto.R_err e -> err e "stripe collect refused"
          | _ -> err Proto.Eio "unexpected stripe-collect response")
      stripes
  in
  let final =
    List.fold_left
      (fun acc (_, _, size) -> max acc size)
      (Shadow.incore session).Inode.size collected
  in
  let npages = (final + Page.size - 1) / Page.size in
  List.iter
    (fun (j, pages, _) ->
      List.iter
        (fun (lpage, data) ->
          if lpage mod width = j && lpage < npages then begin
            charge_disk_write k;
            Shadow.write_page session ~lpage (Page.of_string data)
          end)
        pages)
    collected;
  Shadow.set_size session final

(* The atomic commit (section 2.3.6): move the incore inode to the disk
   inode, then notify the CSS and all other storage sites so they bring
   their copies up to date by pulling. [stripes] names the peer stripe
   sites of a striped session; their pages are collected first, so the
   commit itself stays the classic single-site version bump. *)
let handle_commit ?force_vv ?(stripes = []) k gf ~abort ~delete =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack -> (
    let s = get_open k gf in
    (* An abort of a striped session must also abort the peers' sessions;
       collection discards their pages. *)
    if abort && stripes <> [] then
      List.iter
        (fun peer ->
          if not (Site.equal peer k.site) then
            match rpc_result k peer (Proto.Stripe_collect { gf }) with
            | Ok _ | Stdlib.Error _ -> ())
        stripes;
    match s.s_shadow with
    | None when abort -> Proto.R_committed { vv = Vvec.zero }
    | None when not delete && stripes = [] ->
      (* Nothing was modified: no new version is created. *)
      let vv =
        match Pack.find_inode pack gf.Gfile.ino with
        | Some inode -> inode.Inode.vv
        | None -> Vvec.zero
      in
      Proto.R_committed { vv }
    | (None | Some _) when abort ->
      (match s.s_shadow with
      | Some session -> Shadow.abort session
      | None -> ());
      s.s_shadow <- None;
      Cache.invalidate_if ~notify:false k.ss_cache (fun (g, _, _) -> Gfile.equal g gf);
      record k ~tag:"ss.abort" (Gfile.to_string gf);
      let vv =
        match Pack.find_inode pack gf.Gfile.ino with
        | Some inode -> inode.Inode.vv
        | None -> Vvec.zero
      in
      Proto.R_committed { vv }
    | _ ->
      let session =
        match s.s_shadow with
        | Some session -> session
        | None -> ensure_session k pack gf
      in
      if stripes <> [] then collect_stripes k gf session stripes;
      let modified = Shadow.modified_lpages session in
      if delete then begin
        Shadow.set_contents session "";
        Shadow.mark_deleted session ~time:(now k)
      end;
      let old_vv = (Shadow.incore session).Inode.vv in
      let vv =
        match force_vv with Some v -> v | None -> Vvec.bump old_vv k.site
      in
      charge_disk_write k;
      Shadow.commit session ~vv ~mtime:(now k);
      s.s_shadow <- None;
      (* Local lease self-heal: this site just observed the version advance
         first-hand, so its own US-side retained grant (if any, on the old
         version) is stale *now* — killing it here closes the window before
         the CSS's asynchronous [Lease_break] callback arrives. *)
      Openlease.note_commit k.open_leases gf vv;
      (* The previous version's buffered pages are dead weight now (the new
         version keys differently); drop them. *)
      Cache.invalidate_if ~notify:false k.ss_cache
        (fun (g, _, v) -> Gfile.equal g gf && not (String.equal v (vv_key vv)));
      (* Likewise name-cache links: if this was a directory, links read
         from the old version are dead; if the file was deleted, no link
         may keep resolving to it. *)
      Namecache.note_dir_vv k.name_cache ~dir:gf vv;
      if delete then Namecache.invalidate_child k.name_cache gf;
      record k ~tag:"ss.commit"
        (Format.asprintf "%a vv=%a%s" Gfile.pp gf Vvec.pp vv
           (if delete then " delete" else ""));
      (* Notify the CSS and the other storage sites (section 2.3.6). The
         CSS message is synchronous: the commit is not complete until the
         synchronization site knows the new version, which is what keeps
         the latest version the only one visible within a partition. *)
      let fi = fg_info k gf.Gfile.fg in
      let message =
        Proto.Commit_notify
          { gf; vv; meta_only = false; modified; origin = k.site; fresh = true;
            deleted = delete; designate = false; replicas = [] }
      in
      if Site.equal fi.css_site k.site then
        Css.handle_commit_notify k gf ~origin:k.site ~vv ~deleted:delete
      else (match rpc_result k fi.css_site message with Ok _ | Stdlib.Error _ -> ());
      List.iter
        (fun site -> if not (Site.equal site k.site) then notify k site message)
        s.s_others;
      Proto.R_committed { vv })

(* US close at the SS, then SS close at the CSS — the three-message close
   protocol adopted after the reopen race was found (section 2.3.3 note). *)
let handle_us_close k ~src gf ~mode =
  (match find_open k gf with
  | None -> ()
  | Some s ->
    drop_us s src;
    (match s.s_shadow with
    | Some session when Site.Map.is_empty s.s_uss ->
      (* The last user vanished without committing: abort the session so
         the previous version stays coherent. *)
      Shadow.abort session;
      s.s_shadow <- None
    | Some _ | None -> ());
    if Site.Map.is_empty s.s_uss then begin
      Hashtbl.remove k.ss_opens gf;
      Hashtbl.remove k.ss_slots s.s_slot
    end);
  let fi = fg_info k gf.Gfile.fg in
  if Site.equal fi.css_site k.site then Css.handle_ss_close k gf ~us:src ~mode
  else
    match send_close k fi.css_site (Proto.Ss_close { gf; ss = k.site; us = src; mode }) with
    | Some resp -> resp
    | None ->
      (* Handed off: the CSS either ran the close with its reply lost, or
         the leg is parked for background retry; a CSS that can never be
         reached has its lock table rebuilt by the next partition/merge
         pass. Either way this SS's side of the close is complete. *)
      Proto.R_ok

(* Revalidate this site's serving registrations against the using sites'
   actual open files, part of the post-merge rebuild (the SS-side analogue
   of the section 5.6 lock-table scrub). A registration can outlive its
   open when the reply to the open itself is lost: the CSS registered the
   US here (poll or local add), but the US never learned the open
   succeeded, so no close will ever arrive. Each US in the partition is
   asked for its live opens (retained leases are already gone: every
   member scrubs its lease table on the merge announcement, and those
   deferred closes run the normal protocol); counts are reset to what the
   US reports, and emptied registrations are torn down exactly as a last
   close would — abort the shadow session, free the incore slot. An
   unreachable US keeps its registrations; the next merge retries. *)
let revalidate_serving k =
  (* (us, fg) -> ino -> live open count at us, queried at most once. *)
  let cache : (Site.t * int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let live_opens us fg =
    match Hashtbl.find_opt cache (us, fg) with
    | Some t -> Some t
    | None ->
      let resp =
        if Site.equal us k.site then Some (Css.handle_open_files_query k fg)
        else if in_partition k us then
          match rpc_result k us (Proto.Open_files_query { fg }) with
          | Ok r -> Some r
          | Stdlib.Error _ -> None
        else None
      in
      (match resp with
      | Some (Proto.R_open_files { files }) ->
        let t = Hashtbl.create 8 in
        List.iter
          (fun (ino, _mode, _site) ->
            Hashtbl.replace t ino
              (1 + Option.value ~default:0 (Hashtbl.find_opt t ino)))
          files;
        Hashtbl.add cache (us, fg) t;
        Some t
      | Some _ | None -> None)
  in
  let stale = ref [] in
  Hashtbl.iter
    (fun gf (s : ss_open) ->
      Site.Map.iter
        (fun us n ->
          match live_opens us gf.Gfile.fg with
          | None -> ()
          | Some t ->
            let actual =
              Option.value ~default:0 (Hashtbl.find_opt t gf.Gfile.ino)
            in
            if actual < n then stale := (gf, s, us, actual) :: !stale)
        s.s_uss)
    k.ss_opens;
  List.iter
    (fun (gf, (s : ss_open), us, actual) ->
      Sim.Stats.incr (stats k) "ss.revalidate.dropped";
      record k ~tag:"ss.revalidate"
        (Format.asprintf "%a us=%a -> %d" Gfile.pp gf Site.pp us actual);
      s.s_uss <-
        (if actual = 0 then Site.Map.remove us s.s_uss
         else Site.Map.add us actual s.s_uss);
      (match s.s_shadow with
      | Some session when Site.Map.is_empty s.s_uss ->
        Shadow.abort session;
        s.s_shadow <- None
      | Some _ | None -> ());
      if Site.Map.is_empty s.s_uss then begin
        Hashtbl.remove k.ss_opens gf;
        Hashtbl.remove k.ss_slots s.s_slot
      end)
    !stale

(* Create: the placeholder arrives, we allocate the inode number from the
   pack's partition of the inode space (section 2.3.7). *)
let handle_create k req_fg ~ftype ~owner ~perms ~replicate_at =
  match local_pack k req_fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack ->
    let ino = Pack.alloc_ino pack in
    let inode = Inode.create ~ino ~ftype ~owner in
    inode.Inode.perms <- perms;
    inode.Inode.vv <- Vvec.bump Vvec.zero k.site;
    inode.Inode.mtime <- now k;
    Pack.install_inode pack inode;
    charge_disk_write k;
    let gf = Gfile.make ~fg:req_fg ~ino in
    record k ~tag:"ss.create" (Format.asprintf "%a %a" Gfile.pp gf Inode.pp_ftype ftype);
    let fi = fg_info k req_fg in
    let message ~designate ~replicas =
      Proto.Commit_notify
        {
          gf;
          vv = inode.Inode.vv;
          meta_only = false;
          modified = [];
          origin = k.site;
          fresh = true;
          deleted = false;
          designate;
          replicas;
        }
    in
    (* Register the new descriptor at the CSS synchronously so that an
       immediately following open finds it. *)
    if Site.equal fi.css_site k.site then
      Css.handle_commit_notify ~replicas:replicate_at k gf ~origin:k.site
        ~vv:inode.Inode.vv ~deleted:false
    else ignore (rpc k fi.css_site (message ~designate:false ~replicas:replicate_at));
    (* The other chosen initial storage sites pull their first copy. *)
    List.iter
      (fun site ->
        if not (Site.equal site k.site) then
          notify k site (message ~designate:true ~replicas:[]))
      replicate_at;
    Proto.R_created { ino }

(* Metadata-only commit: mutate descriptor fields, bump the version and
   notify (the "just inode information changed" case of section 2.3.6). *)
let metadata_commit k gf mutate =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | None -> Proto.R_err Proto.Enoent
    | Some inode ->
      mutate inode;
      inode.Inode.vv <- Vvec.bump inode.Inode.vv k.site;
      inode.Inode.mtime <- now k;
      charge_disk_write k;
      (* The data pages did not change, but they are keyed under the old
         version and can never hit again; free the space. *)
      Cache.invalidate_if ~notify:false k.ss_cache
        (fun (g, _, v) -> Gfile.equal g gf && not (String.equal v (vv_key inode.Inode.vv)));
      Namecache.note_dir_vv k.name_cache ~dir:gf inode.Inode.vv;
      let fi = fg_info k gf.Gfile.fg in
      let message =
        Proto.Commit_notify
          {
            gf;
            vv = inode.Inode.vv;
            meta_only = true;
            modified = [];
            origin = k.site;
            fresh = true;
            deleted = false;
            designate = false;
            replicas = [];
          }
      in
      if Site.equal fi.css_site k.site then
        Css.handle_commit_notify k gf ~origin:k.site ~vv:inode.Inode.vv ~deleted:false
      else (match rpc_result k fi.css_site message with Ok _ | Stdlib.Error _ -> ());
      (match find_open k gf with
      | Some s -> List.iter (fun site -> notify k site message) s.s_others
      | None -> ());
      Proto.R_committed { vv = inode.Inode.vv })

let handle_link_count k gf ~delta =
  metadata_commit k gf (fun inode ->
      inode.Inode.nlink <- max 0 (inode.Inode.nlink + delta))

let handle_set_attr k gf ~perms ~owner =
  metadata_commit k gf (fun inode ->
      (match perms with Some p -> inode.Inode.perms <- p land 0o7777 | None -> ());
      match owner with Some o -> inode.Inode.owner <- o | None -> ())

let handle_stat k gf =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_stat { info = None; stored_here = false }
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | None -> Proto.R_stat { info = None; stored_here = false }
    | Some inode ->
      charge_disk_read k;
      Proto.R_stat { info = Some (Proto.info_of_inode inode); stored_here = true })

let handle_inventory k fg =
  match local_pack k fg with
  | None -> Proto.R_inventory { files = [] }
  | Some pack ->
    let files =
      Pack.inodes pack
      |> List.map (fun (i : Inode.t) -> (i.Inode.ino, i.Inode.vv, i.Inode.deleted))
    in
    Proto.R_inventory { files }

let handle_reclaim k gf =
  (match local_pack k gf.Gfile.fg with
  | Some pack -> Pack.remove_inode pack gf.Gfile.ino
  | None -> ());
  Cache.invalidate_if ~notify:false k.ss_cache (fun (g, _, _) -> Gfile.equal g gf);
  (* A reclaimed inode number can be reallocated: drop every name-cache
     link into or out of it, and any retained open grant on it. *)
  Namecache.invalidate_dir k.name_cache gf;
  Namecache.invalidate_child k.name_cache gf;
  Openlease.kill k.open_leases gf;
  Proto.R_ok

(* ---- named pipes (section 2.4.2): the fifo's single SS serializes ---- *)

let pipe_buf k gf =
  match Hashtbl.find_opt k.pipe_bufs gf with
  | Some b -> b
  | None ->
    let b = ref "" in
    Hashtbl.add k.pipe_bufs gf b;
    b

let handle_pipe_write k gf data =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | Some { Inode.ftype = Inode.Fifo; _ } ->
      let b = pipe_buf k gf in
      b := !b ^ data;
      Proto.R_ok
    | Some _ -> Proto.R_err Proto.Einval
    | None -> Proto.R_err Proto.Enoent)

let handle_pipe_read k gf max =
  match local_pack k gf.Gfile.fg with
  | None -> Proto.R_err Proto.Eio
  | Some pack -> (
    match Pack.find_inode pack gf.Gfile.ino with
    | Some { Inode.ftype = Inode.Fifo; _ } ->
      let b = pipe_buf k gf in
      let n = min max (String.length !b) in
      let data = String.sub !b 0 n in
      b := String.sub !b n (String.length !b - n);
      Proto.R_data { data }
    | Some _ -> Proto.R_err Proto.Einval
    | None -> Proto.R_err Proto.Enoent)
