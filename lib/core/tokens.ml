(* The token mechanism (section 3.2).

   Unix semantics make parent and child share one open-file descriptor, so
   the current file position behaves like shared memory across machines.
   LOCUS keeps a descriptor copy at each site, with exactly one valid at any
   time; a token marks which. The descriptor's *origin site* manages the
   token: a site that needs the offset asks the manager, the manager
   retrieves the state from the current holder (invalidating its copy) and
   grants the token to the requester. *)

open Ktypes

let manager_of (key : fd_key) = fst key

let find_fd k key = Hashtbl.find_opt k.shared_fds key

let get_fd k key =
  match find_fd k key with
  | Some fd -> fd
  | None -> err Proto.Einval "unknown shared descriptor"

(* Create a descriptor at its origin site: this site holds the token. *)
let create_fd k ~gf ~mode ~ofile =
  let key = (k.site, fresh_serial k) in
  let fd =
    {
      f_key = key;
      f_gf = gf;
      f_mode = mode;
      f_offset = 0;
      f_holder = k.site;
      f_valid = true;
      f_refs = 1;
      f_ofile = Some ofile;
    }
  in
  Hashtbl.add k.shared_fds key fd;
  fd

(* Install a copy at a site that inherited the descriptor via fork: the
   token stays where it was. *)
let install_remote_fd k ~key ~gf ~mode =
  match find_fd k key with
  | Some fd ->
    fd.f_refs <- fd.f_refs + 1;
    fd
  | None ->
    let fd =
      {
        f_key = key;
        f_gf = gf;
        f_mode = mode;
        f_offset = 0;
        f_holder = manager_of key;
        f_valid = false;
        f_refs = 1;
        f_ofile = None;
      }
    in
    Hashtbl.add k.shared_fds key fd;
    fd

(* Yielding the token makes this site's writes readable by the next
   holder through the shared offset: any write-behind run must reach the
   SS before the token leaves. *)
let flush_before_yield k fd =
  match fd.f_ofile with
  | Some o when not o.o_closed -> ( try Us.flush_writes k o with Error _ -> ())
  | Some _ | None -> ()

(* Manager side: grant the token to [for_site], recalling it from the
   current holder first. *)
let handle_token_req k key ~for_site =
  match find_fd k key with
  | None -> Proto.R_err Proto.Einval
  | Some fd ->
    if Site.equal fd.f_holder for_site then
      Proto.R_token { granted = true; state = string_of_int fd.f_offset }
    else begin
      let offset =
        if Site.equal fd.f_holder k.site then begin
          flush_before_yield k fd;
          fd.f_valid <- false;
          Some fd.f_offset
        end
        else begin
          match
            rpc_result k fd.f_holder
              (Proto.Token_state_req { key = Proto.Tok_fd (fst key, snd key) })
          with
          | Ok (Proto.R_token { granted = true; state }) -> int_of_string_opt state
          | Ok (Proto.R_token _ | Proto.R_err _) -> None
          | Ok _ -> None
          | Stdlib.Error _ -> None
          (* Transport failure here becomes EDEADTOKEN below: the holder of
             the offset token is unreachable (section 3.2). *)
        end
      in
      match offset with
      | None -> Proto.R_err Proto.Edeadtoken
      | Some off ->
        fd.f_holder <- for_site;
        fd.f_offset <- off;
        Sim.Stats.incr (stats k) "token.flip";
        record k ~tag:"token.grant"
          (Format.asprintf "%a -> %a off=%d" Proto.pp_token (Proto.Tok_fd (fst key, snd key))
             Site.pp for_site off);
        Proto.R_token { granted = true; state = string_of_int off }
    end

(* Holder side: yield the token, returning the guarded state. *)
let handle_token_state_req k key =
  match find_fd k key with
  | None -> Proto.R_err Proto.Einval
  | Some fd ->
    flush_before_yield k fd;
    fd.f_valid <- false;
    Proto.R_token { granted = true; state = string_of_int fd.f_offset }

(* Using-site side: make sure this site's copy of the descriptor is the
   valid one before using the file position. *)
let acquire k fd =
  if not fd.f_valid then begin
    let manager = manager_of fd.f_key in
    let resp =
      if Site.equal manager k.site then
        handle_token_req k fd.f_key ~for_site:k.site
      else
        rpc k manager (Proto.Token_req { key = Proto.Tok_fd (fst fd.f_key, snd fd.f_key); for_site = k.site })
    in
    match resp with
    | Proto.R_token { granted = true; state } ->
      fd.f_offset <- (match int_of_string_opt state with Some v -> v | None -> 0);
      fd.f_valid <- true;
      (* The token came from elsewhere: another site touched this shared
         open since we last did. Any retained lease grant on the file must
         revalidate through the CSS rather than short-circuit the open. *)
      Openlease.kill k.open_leases fd.f_gf
    | Proto.R_token { granted = false; _ } | Proto.R_err _ ->
      err Proto.Edeadtoken "could not acquire descriptor token"
    | _ -> err Proto.Eio "unexpected token response"
  end

(* Recovery hook: a site left the partition. Reclaim tokens it held (the
   offset reverts to the manager's last known value) and drop descriptor
   entries whose only user processes lived at the dead site — e.g. a
   process that exec'd away and then died with its site. No surviving
   local process references them, so no close will ever arrive; without
   the sweep they leak in [shared_fds] forever. *)
let handle_site_failure k dead =
  let referenced = Hashtbl.create (max 16 k.config.table_size_hint) in
  Hashtbl.iter
    (fun _ p ->
      match p.p_status with
      | Running -> Hashtbl.iter (fun _ key -> Hashtbl.replace referenced key ()) p.p_fds
      | Exited _ -> ())
    k.procs;
  let stranded =
    Hashtbl.fold
      (fun key fd acc ->
        if
          Site.equal (manager_of key) k.site
          && Site.equal fd.f_holder dead
          && not (Hashtbl.mem referenced key)
        then (key, fd) :: acc
        else acc)
      k.shared_fds []
  in
  List.iter
    (fun (key, fd) ->
      (match fd.f_ofile with
      | Some o -> ( try Us.close k o with Error _ -> Us.release k o)
      | None -> ());
      Hashtbl.remove k.shared_fds key;
      record k ~tag:"cleanup"
        (Printf.sprintf "dropped stranded fd (%d,%d)" (fst key) (snd key)))
    stranded;
  Hashtbl.iter
    (fun _ fd ->
      if Site.equal (manager_of fd.f_key) k.site && Site.equal fd.f_holder dead then begin
        fd.f_holder <- k.site;
        fd.f_valid <- true
      end)
    k.shared_fds
