(* Kernel construction and the user-visible system-call layer.

   The system calls mirror the paper's list — open, create, read, write,
   commit, close, unlink (2.3) — plus the process calls of section 3 and
   the replication-control calls of section 2.3.7. All of them are
   location transparent: the same call with the same parameters works
   whether the file (or the process) is local or remote. *)

open Ktypes
module Inode = Storage.Inode
module Dir = Catalog.Dir
module Mbox = Catalog.Mailbox
module Mount = Catalog.Mount

type t = Ktypes.t

let create ~site ~machine_type ~engine ~net ~mount ~fg_table ?(config = default_config)
    () =
  let stats = Sim.Engine.stats engine in
  let mk_cache counter ~capacity =
    Storage.Cache.create
      ~on_evict:(fun _ -> Sim.Stats.incr stats counter)
      ~capacity:(max 1 capacity) ()
  in
  (* Hot tables are pre-sized from the configured hint: a large world
     would otherwise pay repeated rehashing on every site's tables. *)
  let hint = max 8 config.table_size_hint in
  let k =
    {
      site;
      machine_type;
      engine;
      net;
      config;
      mount;
      fg_table;
      packs = Hashtbl.create (min hint 64);
      css_state = Hashtbl.create (min hint 64);
      open_files = Hashtbl.create hint;
      ss_opens = Hashtbl.create hint;
      ss_slots = Hashtbl.create hint;
      us_cache = mk_cache "cache.us.evict" ~capacity:config.us_cache_pages;
      ss_cache = mk_cache "cache.ss.evict" ~capacity:config.ss_cache_pages;
      name_cache = Namecache.create ~stats ~capacity:config.name_cache_entries ();
      open_leases =
        Openlease.create ~stats
          ~capacity:(if config.open_lease then config.open_lease_entries else 0)
          ();
      prop_pending = Gfile.Set.empty;
      prop_queue = Queue.create ();
      shared_fds = Hashtbl.create (min hint 64);
      procs = Hashtbl.create (min hint 64);
      pipe_bufs = Hashtbl.create 8;
      next_serial = 1;
      dispatch = (fun _ _ -> Proto.R_err Proto.Eio);
      extra_handler = (fun _ _ -> None);
      site_table = [ site ];
      site_set = Site.Set.singleton site;
      alive = true;
      recon_stage = 0;
    }
  in
  k.dispatch <- (fun src req -> Dispatch.handle k ~src req);
  Net.Netsim.set_handler net site (fun ~src req -> Dispatch.handle k ~src req);
  Openlease.set_on_dead k.open_leases (fun e -> Us.lease_send_close k e);
  k

let site k = k.site

let add_pack k pack = Hashtbl.replace k.packs (Storage.Pack.fg pack) pack

let set_site_table k sites = set_sites k sites

let site_table k = k.site_table

(* ---- path-level conveniences used by processes ---- *)

let resolve k (proc : proc) path =
  Pathname.resolve_from k ~cwd:proc.p_cwd ~context:proc.p_context path

let resolve_raw k (proc : proc) path =
  Pathname.resolve_from k ~cwd:proc.p_cwd ~context:proc.p_context
    ~follow_hidden:false path

(* ---- protection (2.3.3: "protection checks are made") ---- *)

let may_access (proc : proc) (info : Proto.inode_info) ~write =
  let bit = if write then 0o200 else 0o400 in
  let other_bit = if write then 0o002 else 0o004 in
  String.equal proc.p_uid "root"
  || (String.equal proc.p_uid info.Proto.i_owner && info.Proto.i_perms land bit <> 0)
  || ((not (String.equal proc.p_uid info.Proto.i_owner))
     && info.Proto.i_perms land other_bit <> 0)

(* Open with the caller's credentials checked against the descriptor. *)
let open_checked k (proc : proc) gf mode =
  let o = Us.open_gf k gf mode in
  let write = mode = Proto.Mode_modify in
  if may_access proc o.o_info ~write then o
  else begin
    Us.release k o;
    err Proto.Eaccess "%s permission denied on %a for %s"
      (if write then "write" else "read")
      Gfile.pp gf proc.p_uid
  end

(* ---- file descriptors ---- *)

let alloc_fd_num (proc : proc) =
  let n = proc.p_next_fd in
  proc.p_next_fd <- n + 1;
  n

let open_path k (proc : proc) path mode =
  let gf = resolve k proc path in
  let o = open_checked k proc gf mode in
  match Tokens.create_fd k ~gf ~mode ~ofile:o with
  | fd ->
    let num = alloc_fd_num proc in
    Hashtbl.replace proc.p_fds num fd.f_key;
    num
  | exception e ->
    Us.release k o;
    raise e

let fd_of k (proc : proc) num =
  match Hashtbl.find_opt proc.p_fds num with
  | None -> err Proto.Einval "bad file descriptor %d" num
  | Some key -> Tokens.get_fd k key

(* The site using a shared descriptor needs its own open on the file; a
   descriptor that arrived by fork opens lazily, joining the original open
   (exempt from the single-writer policy: the token serializes access). *)
let ensure_ofile k (fd : shared_fd) =
  match fd.f_ofile with
  | Some o when not o.o_closed -> o
  | Some _ | None ->
    let o = Us.open_gf ~shared:true k fd.f_gf fd.f_mode in
    fd.f_ofile <- Some o;
    o

let read_fd k (proc : proc) num ~len =
  let fd = fd_of k proc num in
  Tokens.acquire k fd;
  let o = ensure_ofile k fd in
  let data = Us.read_bytes k o ~off:fd.f_offset ~len in
  fd.f_offset <- fd.f_offset + String.length data;
  data

let write_fd k (proc : proc) num data =
  let fd = fd_of k proc num in
  Tokens.acquire k fd;
  let o = ensure_ofile k fd in
  Us.write k o ~off:fd.f_offset data;
  fd.f_offset <- fd.f_offset + String.length data

let lseek k (proc : proc) num pos =
  let fd = fd_of k proc num in
  Tokens.acquire k fd;
  fd.f_offset <- pos

let commit_fd k (proc : proc) num =
  let fd = fd_of k proc num in
  let o = ensure_ofile k fd in
  Us.commit k o

let abort_fd k (proc : proc) num =
  let fd = fd_of k proc num in
  let o = ensure_ofile k fd in
  Us.abort k o

let close_fd k (proc : proc) num =
  let fd = fd_of k proc num in
  Hashtbl.remove proc.p_fds num;
  fd.f_refs <- fd.f_refs - 1;
  if fd.f_refs <= 0 then begin
    (match fd.f_ofile with
    | Some o -> (
      (* A close can fail mid-protocol (its commit leg raises when the SS
         died); the open must still be torn down or it leaks, dirty,
         holding the CSS write lock. *)
      try Us.close k o with Error _ -> Us.release k o)
    | None -> ());
    Hashtbl.remove k.shared_fds fd.f_key
  end

(* ---- name-space calls ---- *)

let creat ?(ftype = Inode.Regular) k (proc : proc) path =
  let dir_gf, name =
    Pathname.resolve_parent k ~cwd:proc.p_cwd ~context:proc.p_context path
  in
  let gf =
    Dirops.create_in k dir_gf ~name ~ftype ~owner:proc.p_uid ~perms:0o644
      ~ncopies:proc.p_ncopies
  in
  gf

let mkdir ?(hidden = false) k (proc : proc) path =
  let dir_gf, name =
    Pathname.resolve_parent k ~cwd:proc.p_cwd ~context:proc.p_context path
  in
  let ftype = if hidden then Inode.Hidden_directory else Inode.Directory in
  let gf =
    Dirops.create_in k dir_gf ~name ~ftype ~owner:proc.p_uid ~perms:0o755
      ~ncopies:proc.p_ncopies
  in
  if not hidden then Dirops.init_directory k gf ~parent_ino:dir_gf.Gfile.ino;
  gf

let mkfifo k (proc : proc) path = creat ~ftype:Inode.Fifo k proc path

let unlink k (proc : proc) path =
  let dir_gf, name =
    Pathname.resolve_parent k ~cwd:proc.p_cwd ~context:proc.p_context path
  in
  ignore (Dirops.unlink_gf k dir_gf ~name)

let link k (proc : proc) ~target ~path =
  let target_gf = resolve k proc target in
  let dir_gf, name =
    Pathname.resolve_parent k ~cwd:proc.p_cwd ~context:proc.p_context path
  in
  Dirops.link_gf k ~target:target_gf ~dir_gf ~name

let rename k (proc : proc) ~from_path ~to_path =
  let old_dir, old_name =
    Pathname.resolve_parent k ~cwd:proc.p_cwd ~context:proc.p_context from_path
  in
  let new_dir, new_name =
    Pathname.resolve_parent k ~cwd:proc.p_cwd ~context:proc.p_context to_path
  in
  ignore (Dirops.rename_gf k ~old_dir ~old_name ~new_dir ~new_name)

let readdir k (proc : proc) path =
  let gf = resolve_raw k proc path in
  Dir.live_entries (Pathname.read_directory k gf)

let stat k (proc : proc) path =
  let gf = resolve k proc path in
  Us.stat_gf k gf

let chdir k (proc : proc) path =
  let gf = resolve_raw k proc path in
  proc.p_cwd <- gf

(* ---- whole-file conveniences ---- *)

(* A failing step mid-operation (an SS crash surfacing as a raised Error,
   say) must not abandon the open: release it so the close protocol still
   runs and the SS serving registration and shadow session are torn down. *)
let read_file k (proc : proc) path =
  let gf = resolve k proc path in
  let o = open_checked k proc gf Proto.Mode_read in
  match Us.read_all k o with
  | body ->
    Us.close k o;
    body
  | exception e ->
    Us.release k o;
    raise e

let write_file k (proc : proc) path body =
  let gf = resolve k proc path in
  let o = open_checked k proc gf Proto.Mode_modify in
  match
    Us.set_contents k o body;
    Us.commit k o
  with
  | () -> Us.close k o
  | exception e ->
    Us.release k o;
    raise e

let append_file k (proc : proc) path body =
  let gf = resolve k proc path in
  let o = open_checked k proc gf Proto.Mode_modify in
  match
    Us.write k o ~off:o.o_info.Proto.i_size body;
    Us.commit k o
  with
  | () -> Us.close k o
  | exception e ->
    Us.release k o;
    raise e

(* ---- attribute changes: metadata-only commits ---- *)

let set_attr k (proc : proc) path ~perms ~owner =
  let gf = resolve k proc path in
  let info = Us.stat_gf k gf in
  if not (String.equal proc.p_uid "root" || String.equal proc.p_uid info.Proto.i_owner)
  then err Proto.Eaccess "only the owner may change attributes";
  (* Serialize against writers via the normal open protocol. *)
  let o = Us.open_gf k gf Proto.Mode_modify in
  let resp =
    match
      if Site.equal o.o_ss k.site then Ss.handle_set_attr k gf ~perms ~owner
      else rpc k o.o_ss (Proto.Set_attr { gf; perms; owner })
    with
    | resp -> resp
    | exception e ->
      Us.release k o;
      raise e
  in
  (match resp with
  | Proto.R_committed _ -> ()
  | Proto.R_err e ->
    Us.release k o;
    err e "attribute change failed"
  | _ -> ());
  Us.close k o

let chmod k (proc : proc) path perms = set_attr k proc path ~perms:(Some perms) ~owner:None

let chown k (proc : proc) path owner = set_attr k proc path ~perms:None ~owner:(Some owner)

(* ---- replication control (section 2.3.7) ---- *)

let set_ncopies (proc : proc) n =
  if n < 1 then err Proto.Einval "replication factor must be at least 1";
  proc.p_ncopies <- n

let get_ncopies (proc : proc) = proc.p_ncopies

let set_advice (proc : proc) advice =
  proc.p_advice <- (match advice with Some s -> [ s ] | None -> [])

let set_advice_list (proc : proc) advice = proc.p_advice <- advice

let set_context (proc : proc) context = proc.p_context <- context

(* ---- named pipes (section 2.4.2) ---- *)

let pipe_storage_site k gf =
  let fi = fg_info k gf.Gfile.fg in
  match rpc k fi.css_site (Proto.Where_stored { gf }) with
  | Proto.R_where { sites; _ } -> (
    match List.filter (fun s -> in_partition k s) sites with
    | s :: _ -> s
    | [] -> err Proto.Enet "no reachable site stores the pipe")
  | Proto.R_err e -> err e "pipe lookup failed"
  | _ -> err Proto.Eio "unexpected where response"

let pipe_write k (proc : proc) path data =
  let gf = resolve k proc path in
  let ss = pipe_storage_site k gf in
  if Site.equal ss k.site then expect_ok (Ss.handle_pipe_write k gf data)
  else expect_ok (rpc k ss (Proto.Pipe_write { gf; data }))

let pipe_read k (proc : proc) path ~max =
  let gf = resolve k proc path in
  let ss = pipe_storage_site k gf in
  let resp =
    if Site.equal ss k.site then Ss.handle_pipe_read k gf max
    else rpc k ss (Proto.Pipe_read { gf; max })
  in
  match resp with
  | Proto.R_data { data } -> data
  | Proto.R_err e -> err e "pipe read failed"
  | _ -> err Proto.Eio "unexpected pipe response"

(* ---- mailbox delivery (used for conflict notification, section 4.6) ---- *)

let mailbox_deliver k ~path ~from ~body =
  let root = Mount.root k.mount in
  let gf = Pathname.resolve_from k ~cwd:root ~context:[] path in
  let o = Us.open_gf k gf Proto.Mode_modify in
  match
    let mbox =
      match Mbox.decode (Us.read_all k o) with
      | mbox -> mbox
      | exception Failure _ -> Mbox.empty ()
    in
    let id = Printf.sprintf "%d.%d" k.site (fresh_serial k) in
    Mbox.insert mbox ~id ~stamp:(now k) ~from ~body;
    Us.set_contents k o (Mbox.encode mbox);
    Us.commit k o
  with
  | () -> Us.close k o
  | exception e ->
    Us.release k o;
    raise e

let mailbox_read k (proc : proc) path =
  match Mbox.decode (read_file k proc path) with
  | mbox -> Mbox.live mbox
  | exception Failure _ -> []

(* ---- cleanup after partition change (section 5.6's table) ---- *)

(* Local resources in use remotely / remote resources in use locally. *)
let handle_site_failure k dead =
  (* Retained open grants served by the failed SS are dead: their deferred
     closes go out now (and are lost with the site — cleanup covers it). *)
  Openlease.kill_if k.open_leases (fun e -> Site.equal e.Openlease.le_ss dead);
  (* US side: open files served by the failed SS, or striped across it. *)
  Hashtbl.iter
    (fun _ (o : ofile) ->
      if
        (not o.o_closed)
        && (Site.equal o.o_ss dead || List.exists (Site.equal dead) o.o_stripes)
      then begin
        match o.o_mode with
        | Proto.Mode_modify ->
          (* Discard pages, set error in the local file descriptor. *)
          o.o_wb <- None;
          o.o_dirty <- false;
          o.o_closed <- true;
          Sim.Stats.incr (stats k) "cleanup.us.update_lost";
          record k ~tag:"cleanup" (Format.asprintf "update lost %a" Gfile.pp o.o_gf)
        | Proto.Mode_read | Proto.Mode_internal
          when (not (Site.equal o.o_ss dead)) && in_partition k o.o_ss ->
          (* Only a stripe peer died; the primary still serves a complete
             copy, so the open degrades to the classic protocol in place. *)
          o.o_stripes <- [];
          Sim.Stats.incr (stats k) "cleanup.us.stripe_degraded";
          record k ~tag:"cleanup"
            (Format.asprintf "stripe degraded %a" Gfile.pp o.o_gf)
        | Proto.Mode_read | Proto.Mode_internal -> (
          (* Internal close, attempt to reopen at another site. *)
          o.o_stripes <- [];
          match Us.open_gf k o.o_gf o.o_mode with
          | o' ->
            (* The open now rides the new grant (if any); stop riding the
               dead one. *)
            (match o.o_lease with Some e -> Us.lease_drop_rider k e | None -> ());
            o.o_ss <- o'.o_ss;
            o.o_info <- o'.o_info;
            o.o_stripes <- o'.o_stripes;
            o.o_lease <- o'.o_lease;
            Hashtbl.remove k.open_files (o'.o_gf, o'.o_serial);
            Sim.Stats.incr (stats k) "cleanup.us.reopened";
            record k ~tag:"cleanup"
              (Format.asprintf "reopened %a at %a" Gfile.pp o.o_gf Site.pp o'.o_ss)
          | exception Error _ ->
            o.o_closed <- true;
            (match o.o_lease with Some e -> Us.lease_drop_rider k e | None -> ());
            o.o_lease <- None;
            Sim.Stats.incr (stats k) "cleanup.us.read_lost")
      end)
    k.open_files;
  (* SS side: opens served to USs at the failed site. *)
  let to_drop = ref [] in
  Hashtbl.iter
    (fun gf (s : ss_open) ->
      if Site.Map.mem dead s.s_uss then begin
        s.s_uss <- Site.Map.remove dead s.s_uss;
        if Site.Map.is_empty s.s_uss then begin
          (match s.s_shadow with
          | Some session ->
            (* Discard pages, close file and abort updates. *)
            Storage.Shadow.abort session;
            s.s_shadow <- None;
            Sim.Stats.incr (stats k) "cleanup.ss.aborted";
            record k ~tag:"cleanup" (Format.asprintf "aborted update %a" Gfile.pp gf)
          | None -> ());
          to_drop := gf :: !to_drop
        end
      end)
    k.ss_opens;
  List.iter (fun gf -> Hashtbl.remove k.ss_opens gf) !to_drop;
  (* CSS side: lock table entries owned by the failed site. *)
  Css.drop_site k dead;
  (* Tokens and processes. *)
  Tokens.handle_site_failure k dead;
  Process.handle_site_failure k dead

let cache_stats k =
  (Storage.Cache.hits k.us_cache, Storage.Cache.misses k.us_cache)

let ss_cache_stats k =
  (Storage.Cache.hits k.ss_cache, Storage.Cache.misses k.ss_cache)

(* ---- crash and restart ---- *)

(* A crash destroys all volatile state: incore inodes, open shadow
   sessions (their pages become unreachable orphans on disk), caches,
   processes, tokens, and CSS bookkeeping. The packs (the disks) survive. *)
let crash k =
  k.alive <- false;
  Hashtbl.iter
    (fun _ (s : ss_open) ->
      match s.s_shadow with
      | Some session -> Storage.Shadow.crash_before_switch session
      | None -> ())
    k.ss_opens;
  Hashtbl.reset k.ss_opens;
  Hashtbl.reset k.ss_slots;
  Hashtbl.reset k.open_files;
  Hashtbl.reset k.css_state;
  Hashtbl.reset k.shared_fds;
  Hashtbl.reset k.procs;
  Hashtbl.reset k.pipe_bufs;
  (* ~notify:false: a dead kernel fires no hooks — pages just vanish, and
     Openlease.clear below likewise drops leases without deferred closes. *)
  Storage.Cache.clear k.us_cache ~notify:false;
  Storage.Cache.clear k.ss_cache ~notify:false;
  Namecache.clear k.name_cache;
  Openlease.clear k.open_leases;
  Queue.clear k.prop_queue;
  k.prop_pending <- Gfile.Set.empty;
  set_sites k [ k.site ];
  record k ~tag:"crash" "volatile state lost"

(* Restart: bring the kernel back up and salvage the disks — orphaned
   shadow pages left by the crash are reclaimed. Rejoining the network is
   the merge protocol's job. *)
let restart k =
  k.alive <- true;
  let reclaimed =
    Hashtbl.fold (fun _ pack acc -> acc + Storage.Pack.scavenge pack) k.packs 0
  in
  record k ~tag:"restart" (Printf.sprintf "%d orphan pages reclaimed" reclaimed);
  reclaimed
