(* Pathname searching (section 2.3.4) and hidden directories (2.4.1).

   Resolution walks the tree one component at a time. Each directory is
   opened with an *internal unsynchronized read*: no global locking, and if
   the directory is stored locally with no propagations pending, it is
   searched without informing the CSS at all. Filegroup boundaries are
   crossed through the replicated mount table.

   Two fast paths short-circuit the per-component internal opens that
   dominate remote resolution cost (the remedy section 2.3.4 names but the
   paper left unimplemented):

   - the per-site *name cache* ([Namecache]): (directory, component) ->
     child links validated against the directory's version vector, so a
     warm walk touches no directory data at all;
   - *partial-pathname lookup*: the remaining components are shipped to a
     storage site ([Lookup_req]), which walks as many as it stores in one
     round trip and returns the trail, which also fills the name cache.

   Hidden directories implement context-sensitive names: when pathname
   search hits one, the process's per-process context list selects which
   entry to descend into, unless the caller escapes with an explicit
   '@entry' component. *)

open Ktypes
module Inode = Storage.Inode
module Pack = Storage.Pack
module Dir = Catalog.Dir
module Mount = Catalog.Mount

let split_path path = String.split_on_char '/' path |> List.filter (fun c -> c <> "")

(* Internal unsynchronized open through the CSS. Also returns the version
   vector, which keys the name-cache entries filled from this copy. *)
let load_dir_remote k gf =
  let o = Us.open_gf k gf Proto.Mode_internal in
  match Us.read_all k o with
  | body ->
    let info = o.o_info in
    Us.close k o;
    (info.Proto.i_ftype, body, info.Proto.i_vv)
  | exception e ->
    (* The SS died (or the link failed) mid-read: the resolution fails,
       but the open must still be torn down or it leaks. *)
    Us.release k o;
    raise e

(* Load a directory's contents, type and version. Local fast path per
   section 2.3.4; otherwise internal open through the CSS. The [bool]
   tells the caller whether the fast path was used (its copy may be
   momentarily stale, so a lookup miss warrants a synchronized retry). *)
let load_dir_checked k gf =
  let fast =
    match local_pack k gf.Gfile.fg with
    | Some pack when not (Gfile.Set.mem gf k.prop_pending) -> (
      match Pack.find_inode pack gf.Gfile.ino with
      | Some inode when not inode.Inode.deleted ->
        charge_disk_read k;
        Some (inode.Inode.ftype, Pack.read_string pack inode, inode.Inode.vv)
      | Some _ | None -> None)
    | Some _ | None -> None
  in
  match fast with
  | Some (ftype, body, vv) -> (ftype, body, true, vv)
  | None ->
    let ftype, body, vv = load_dir_remote k gf in
    (ftype, body, false, vv)

let load_dir k gf =
  let ftype, body, _, _ = load_dir_checked k gf in
  (ftype, body)

let dir_of_body body = try Dir.decode body with Failure _ -> Dir.empty ()

(* Descend one link: apply mount crossing after a successful lookup. *)
let enter k ~fg ino =
  let gf = Gfile.make ~fg ~ino in
  match Mount.mounted_at k.mount gf with
  | Some child_fg -> Gfile.make ~fg:child_fg ~ino:Mount.root_ino
  | None -> gf

let dotdot k gf dir =
  match Dir.lookup dir ".." with
  | Some ino -> Gfile.make ~fg:gf.Gfile.fg ~ino
  | None -> ignore k; gf

(* Select the entry of a hidden directory using the per-process context
   list; the first context name bound in the directory wins. *)
let select_context k ~context gf dir =
  let rec first = function
    | [] ->
      err Proto.Enoent "no context entry in hidden directory %a (context: %s)"
        Gfile.pp gf
        (String.concat "," context)
    | ctx :: rest -> (
      match Dir.lookup dir ctx with
      | Some ino -> enter k ~fg:gf.Gfile.fg ino
      | None -> first rest)
  in
  first context

(* ---- the name-cache half of the fast path ---- *)

(* The directory's local version, when it can serve as the validation key:
   a pending propagation means the local copy lags the version a cache
   entry may have been filled from, so it proves nothing. *)
let trusted_local_vv k gf =
  match local_pack k gf.Gfile.fg with
  | Some pack when not (Gfile.Set.mem gf k.prop_pending) ->
    Pack.find_inode pack gf.Gfile.ino |> Option.map (fun (i : Inode.t) -> i.Inode.vv)
  | Some _ | None -> None

(* Would the local fast path serve this directory? If not, a remote
   partial-pathname lookup is worth a round trip. *)
let locally_searchable k gf =
  match local_pack k gf.Gfile.fg with
  | None -> false
  | Some pack -> (
    (not (Gfile.Set.mem gf k.prop_pending))
    &&
    match Pack.find_inode pack gf.Gfile.ino with
    | Some inode -> not inode.Inode.deleted
    | None -> false)

let cacheable_comp comp = comp <> "." && comp <> ".."

(* Record one successful directory search. Children under a mount point
   are skipped: the link's target depends on the mount table, not only on
   the directory's contents. Structural names ("." "..") never enter. *)
let cache_fill k ~dir ~vv ~comp ~child ~ftype =
  if cacheable_comp comp && Mount.mounted_at k.mount child = None then
    Namecache.insert k.name_cache ~dir ~comp
      { Namecache.nc_child = child; nc_vv = vv; nc_ftype = ftype }

(* ---- the server half: partial-pathname lookup ---- *)

(* Walk as many of [comps] from [gf] as this site's pack stores, in one
   request. The walk stops — leaving the remaining components to the
   using site, which resumes with full transparency semantics — at mount
   points (the component naming one is consumed; crossing is the US's
   job), hidden directories (likewise consumed; context expansion is
   per-process), "..", deleted inodes, directories awaiting propagation,
   and pack boundaries. One trail step is returned per consumed
   component, in order, so the US can zip them back together. *)
let handle_lookup k gf comps =
  let stop cur consumed trail =
    Proto.R_lookup { gf = cur; consumed; trail = List.rev trail }
  in
  match local_pack k gf.Gfile.fg with
  | None -> stop gf 0 []
  | Some pack ->
    let fg = gf.Gfile.fg in
    let searchable cur =
      if Mount.mounted_at k.mount cur <> None then None
      else if Mount.sharded_at k.mount cur <> None then None
      else if Gfile.Set.mem cur k.prop_pending then None
      else
        match Pack.find_inode pack cur.Gfile.ino with
        | Some inode
          when (not inode.Inode.deleted) && inode.Inode.ftype = Inode.Directory ->
          Some inode
        | Some _ | None -> None
    in
    let rec go cur consumed trail comps =
      match comps with
      | [] -> stop cur consumed trail
      | comp :: rest -> (
        match searchable cur with
        | None -> stop cur consumed trail
        | Some inode ->
          if comp = "." then begin
            let step =
              { Proto.l_dir = cur; l_vv = inode.Inode.vv; l_child = cur;
                l_ftype = Some Inode.Directory }
            in
            go cur (consumed + 1) (step :: trail) rest
          end
          else if comp = ".." then stop cur consumed trail
          else begin
            charge_disk_read k;
            let dir = dir_of_body (Pack.read_string pack inode) in
            match Dir.lookup dir comp with
            | None -> stop cur consumed trail
            | Some ino -> (
              let child = Gfile.make ~fg ~ino in
              match Pack.find_inode pack ino with
              | Some ci when ci.Inode.deleted ->
                (* A live link to a deleted inode: transiently possible
                   under unsynchronized reads. Never hand it out. *)
                stop cur consumed trail
              | child_inode ->
                let l_ftype =
                  Option.map (fun (i : Inode.t) -> i.Inode.ftype) child_inode
                in
                let step =
                  { Proto.l_dir = cur; l_vv = inode.Inode.vv; l_child = child;
                    l_ftype }
                in
                go child (consumed + 1) (step :: trail) rest)
          end)
    in
    let resp = go gf 0 [] comps in
    (match resp with
    | Proto.R_lookup { consumed; _ } ->
      record k ~tag:"ss.lookup"
        (Format.asprintf "%a %d/%d components" Gfile.pp gf consumed
           (List.length comps))
    | _ -> ());
    resp

(* ---- resolution ---- *)

(* Storage site to ship remaining components to: prefer the filegroup's
   CSS when it holds a pack (it typically stores the directories), else
   the first reachable pack site. *)
let lookup_site k fg =
  if not k.config.remote_lookup then None
  else
    match fg_info k fg with
    | fi ->
      let ok s = (not (Site.equal s k.site)) && in_partition k s in
      if ok fi.css_site && List.mem fi.css_site fi.pack_sites then Some fi.css_site
      else List.find_opt ok fi.pack_sites
    | exception Error _ -> None

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n l = match l with _ :: rest when n > 0 -> drop (n - 1) rest | _ -> l

(* One resolution walk, shared by [resolve_from] and [resolve_parent].

   [hint] is the current gfile's type when the walk already knows it (from
   a cache hit or a lookup trail) — it lets a terminal component skip the
   hidden-directory stat. [edge] is the (directory, component) link that
   produced the current gfile, so a type learned later can be recorded
   back onto the cached link ([Namecache.note_ftype]). [finish] consumes
   the terminal gfile together with both. *)
let walk_comps k ~context start comps ~finish =
  (* One zero-component server-side lookup is evidence enough that the
     chosen site does not store this part of the tree: stop trying until a
     mount crossing moves the walk into another filegroup. Bounds the
     wasted traffic to one round trip per filegroup per walk. *)
  let remote_ok = ref true in
  let rec walk gf ~hint ~edge comps =
    match comps with
    | [] -> finish gf ~hint ~edge
    | comp :: rest -> step gf ~edge comp rest
  and step gf ~edge comp rest =
    match if cacheable_comp comp then Mount.shard_for k.mount gf comp else None with
    | Some shard_fg ->
      (* A sharded mount point: the component is routed to its shard's
         root directory, so the entry (and its synchronization) lives at
         that shard's CSS rather than at one coordinator for the whole
         subtree. The walk re-runs the component there. *)
      remote_ok := true;
      walk
        (Gfile.make ~fg:shard_fg ~ino:Mount.root_ino)
        ~hint:(Some Inode.Directory) ~edge:None (comp :: rest)
    | None -> step_unsharded gf ~edge comp rest
  and step_unsharded gf ~edge comp rest =
    match
      if cacheable_comp comp then
        Namecache.find k.name_cache ~dir:gf ~comp
          ~current_vv:(trusted_local_vv k gf)
      else None
    with
    | Some e -> (
      (* A cached link: descend without touching the directory. Mount
         crossing still applies — links are filled unmounted, but the
         mount table can change under the cache. *)
      match Mount.mounted_at k.mount e.Namecache.nc_child with
      | Some child_fg ->
        remote_ok := true;
        walk
          (Gfile.make ~fg:child_fg ~ino:Mount.root_ino)
          ~hint:(Some Inode.Directory) ~edge:None rest
      | None ->
        walk e.Namecache.nc_child ~hint:e.Namecache.nc_ftype
          ~edge:(Some (gf, comp)) rest)
    | None ->
      if !remote_ok && not (locally_searchable k gf) then remote_step gf ~edge comp rest
      else local_step gf ~edge comp rest
  and remote_step gf ~edge comp rest =
    match lookup_site k gf.Gfile.fg with
    | None -> local_step gf ~edge comp rest
    | Some ss -> (
      let comps = comp :: rest in
      Sim.Stats.incr (stats k) "name.remote_walks";
      match rpc_result k ss (Proto.Lookup_req { gf; comps }) with
      | Ok (Proto.R_lookup { gf = final; consumed; trail })
        when consumed > 0
             && consumed <= List.length comps
             && List.length trail = consumed ->
        let consumed_comps = take consumed comps in
        List.iter2
          (fun c (s : Proto.lookup_step) ->
            cache_fill k ~dir:s.Proto.l_dir ~vv:s.Proto.l_vv ~comp:c
              ~child:s.Proto.l_child ~ftype:s.Proto.l_ftype)
          consumed_comps trail;
        let remaining = drop consumed comps in
        (* The server-side walk never descends through a mount point;
           crossing the one it may have stopped on is this site's job. *)
        (match Mount.mounted_at k.mount final with
        | Some child_fg ->
          walk
            (Gfile.make ~fg:child_fg ~ino:Mount.root_ino)
            ~hint:(Some Inode.Directory) ~edge:None remaining
        | None ->
          let hint, edge =
            match (List.rev trail, List.rev consumed_comps) with
            | s :: _, c :: _ -> (s.Proto.l_ftype, Some (s.Proto.l_dir, c))
            | _ -> (None, None)
          in
          walk final ~hint ~edge remaining)
      | Ok _ | Error _ ->
        remote_ok := false;
        local_step gf ~edge comp rest)
  and local_step gf ~edge comp rest =
    let ftype, body, fast, vv = load_dir_checked k gf in
    (* Whatever link led here can be annotated with the type it resolved
       to, sparing the terminal stat on the next warm walk. *)
    (match edge with
    | Some (d, c) -> Namecache.note_ftype k.name_cache ~dir:d ~comp:c ftype
    | None -> ());
    let dir = dir_of_body body in
    (* A miss against a fast-path (possibly stale) local copy is retried
       once against a synchronized copy before reporting ENOENT. *)
    let lookup_refreshing name =
      match Dir.lookup dir name with
      | Some ino -> Some (ino, vv)
      | None when fast -> (
        let _, body, vv' = load_dir_remote k gf in
        match Dir.lookup (dir_of_body body) name with
        | Some ino -> Some (ino, vv')
        | None -> None)
      | None -> None
    in
    (* Descend through a looked-up entry, filling the cache and applying
       the mount crossing. *)
    let descend ~comp ino vv rest =
      let raw = Gfile.make ~fg:gf.Gfile.fg ~ino in
      let next = enter k ~fg:gf.Gfile.fg ino in
      if Gfile.equal next raw then begin
        cache_fill k ~dir:gf ~vv ~comp ~child:raw ~ftype:None;
        walk next ~hint:None ~edge:(Some (gf, comp)) rest
      end
      else begin
        (* crossed a mount point into another filegroup *)
        remote_ok := true;
        walk next ~hint:(Some Inode.Directory) ~edge:None rest
      end
    in
    match ftype with
    | Inode.Directory -> (
      match comp with
      | "." -> walk gf ~hint:(Some Inode.Directory) ~edge:None rest
      | ".." when gf.Gfile.ino = Mount.root_ino -> (
        (* ".." out of a filegroup root crosses the mount boundary: it
           names the *parent of the mount point* in the covering
           filegroup, so resolution restarts at the mount point with the
           ".." still pending. *)
        match Mount.mount_point_of k.mount gf.Gfile.fg with
        | Some point -> walk point ~hint:None ~edge:None (comp :: rest)
        | None ->
          (* ".." of the global root is itself *)
          walk gf ~hint:(Some Inode.Directory) ~edge:None rest)
      | ".." -> walk (dotdot k gf dir) ~hint:None ~edge:None rest
      | _ -> (
        match lookup_refreshing comp with
        | Some (ino, vv) -> descend ~comp ino vv rest
        | None -> err Proto.Enoent "%s: no such entry in %a" comp Gfile.pp gf))
    | Inode.Hidden_directory ->
      (* The escape mechanism: an explicit '@name' component picks an
         entry and makes the hidden directory visible; otherwise the
         context chooses and the component is *not* consumed. *)
      if String.length comp > 0 && comp.[0] = '@' then begin
        let name = String.sub comp 1 (String.length comp - 1) in
        match Dir.lookup dir name with
        | Some ino -> descend ~comp ino vv rest
        | None -> err Proto.Enoent "@%s: no such hidden entry" name
      end
      else
        (* context selection is per-process and never cached *)
        walk (select_context k ~context gf dir) ~hint:None ~edge:None (comp :: rest)
    | Inode.Regular | Inode.Mailbox | Inode.Database | Inode.Fifo ->
      err Proto.Enotdir "%a is not a directory" Gfile.pp gf
  in
  walk start ~hint:None ~edge:None comps

(* Resolve [path] to a gfile. [context] is the hidden-directory context of
   the calling process; [follow_hidden] controls whether a *final* hidden
   directory is transparently expanded (commands want the load module;
   administrative tools escape to see the directory itself). *)
let resolve_from k ~cwd ~context ?(follow_hidden = true) path =
  let start =
    if String.length path > 0 && path.[0] = '/' then Mount.root k.mount else cwd
  in
  walk_comps k ~context start (split_path path) ~finish:(fun gf ~hint ~edge ->
      if not follow_hidden then gf
      else begin
        (* A final hidden directory expands under the process context; the
           check interrogates only the descriptor — and not even that when
           the walk already learned the type. *)
        let ftype =
          match hint with
          | Some t -> Some t
          | None -> (
            match Us.stat_gf k gf with
            | info ->
              (match edge with
              | Some (d, c) ->
                Namecache.note_ftype k.name_cache ~dir:d ~comp:c info.Proto.i_ftype
              | None -> ());
              Some info.Proto.i_ftype
            | exception Error (Proto.Enoent, _) ->
              (* Only "no such file" may fall through to "not hidden"; any
                 other failure (say, a storage site going unreachable
                 mid-stat) must surface, not masquerade as a plain file. *)
              None)
        in
        match ftype with
        | Some Inode.Hidden_directory ->
          let _, body = load_dir k gf in
          select_context k ~context gf (dir_of_body body)
        | Some _ | None -> gf
      end)

(* Resolve all but the last component — in the same single walk, not by
   re-resolving a reassembled prefix string — and return the parent
   directory's gfile with the final name. Used by create/unlink/mkdir. A
   leading '@' on the final component is the hidden-directory escape:
   "/bin/who/@vax" names the entry "vax" inside the hidden directory
   /bin/who. *)
let resolve_parent k ~cwd ~context path =
  match List.rev (split_path path) with
  | [] -> err Proto.Einval "empty pathname"
  | last :: rev_prefix ->
    let start =
      if String.length path > 0 && path.[0] = '/' then Mount.root k.mount else cwd
    in
    let dir_gf =
      walk_comps k ~context start (List.rev rev_prefix)
        ~finish:(fun gf ~hint:_ ~edge:_ -> gf)
    in
    let last =
      if String.length last > 1 && last.[0] = '@' then
        String.sub last 1 (String.length last - 1)
      else last
    in
    (* A final name directly under a sharded mount point belongs in its
       shard's root directory: create/unlink/link must edit that shard. *)
    let dir_gf =
      match Mount.shard_for k.mount dir_gf last with
      | Some shard_fg -> Gfile.make ~fg:shard_fg ~ino:Mount.root_ino
      | None -> dir_gf
    in
    (dir_gf, last)

(* Read a directory's live entries (for readdir / ls). A sharded mount
   point reads as the union of its shards' root directories: the listing
   is one logical directory even though its entries are spread. *)
let read_directory k gf =
  let ftype, body = load_dir k gf in
  match ftype with
  | Inode.Directory | Inode.Hidden_directory -> (
    let dir = dir_of_body body in
    match Mount.sharded_at k.mount gf with
    | None -> dir
    | Some fgs ->
      List.iter
        (fun fg ->
          let _, body = load_dir k (Gfile.make ~fg ~ino:Mount.root_ino) in
          List.iter
            (fun (e : Dir.entry) ->
              if e.Dir.name <> "." && e.Dir.name <> ".." then
                Dir.insert dir ~name:e.Dir.name ~ino:e.Dir.ino ~stamp:e.Dir.stamp
                  ~origin:e.Dir.origin)
            (Dir.live_entries (dir_of_body body)))
        fgs;
      dir)
  | Inode.Regular | Inode.Mailbox | Inode.Database | Inode.Fifo ->
    err Proto.Enotdir "%a is not a directory" Gfile.pp gf
