(* Per-site pathname name cache: the caching half of the section 2.3.4
   fast path.

   Maps (directory gfile, component) to the child gfile the component
   named, remembering the directory's version vector at fill time. The
   paper's pathname searching already reads directories unsynchronized —
   a momentarily stale answer is sanctioned — so serving a cached link is
   no weaker than the slow path; the version vector is the invalidation
   key that bounds the staleness to what commit notification has not yet
   delivered. Entries are filled by local directory walks and by the
   trails of server-side partial-pathname lookups ([Proto.lookup_step]),
   and live in the same O(1) recency-list structure as the buffer caches.

   Counters exported through [Sim.Stats]: name.cache.hit, name.cache.miss,
   name.cache.fill, name.cache.invalidate, name.cache.evict. *)

module Gfile = Catalog.Gfile
module Vvec = Vv.Version_vector

type entry = {
  nc_child : Gfile.t;
  nc_vv : Vvec.t; (* the directory's version when the link was read *)
  nc_ftype : Storage.Inode.ftype option; (* the child's type, when known *)
}

module Lru = Storage.Lru.Make (struct
  type t = entry

  let copy e = e (* entries are immutable *)
end)

type t = {
  cache : (Gfile.t * string) Lru.t option; (* None: disabled (capacity 0) *)
  stats : Sim.Stats.t;
}

let count t what = Sim.Stats.incr t.stats ("name.cache." ^ what)

let create ~stats ~capacity () =
  let cache =
    if capacity <= 0 then None
    else
      Some
        (Lru.create
           ~on_evict:(fun _ -> Sim.Stats.incr stats "name.cache.evict")
           ~capacity ())
  in
  { cache; stats }

let enabled t = t.cache <> None

let find t ~dir ~comp ~current_vv =
  match t.cache with
  | None -> None
  | Some c -> (
    match Lru.find c (dir, comp) with
    | None ->
      count t "miss";
      None
    | Some e -> (
      (* [current_vv] is the directory's version as locally known (None
         when this site stores no trustworthy copy). A mismatch proves
         the link was read from a superseded directory version. *)
      match current_vv with
      | Some vv when not (Vvec.equal vv e.nc_vv) ->
        Lru.invalidate c (dir, comp);
        count t "invalidate";
        count t "miss";
        None
      | Some _ | None ->
        count t "hit";
        Some e))

let insert t ~dir ~comp entry =
  match t.cache with
  | None -> ()
  | Some c ->
    count t "fill";
    Lru.insert c (dir, comp) entry

(* Annotate an existing link with the child's type, learned later in the
   walk (when the child itself is loaded or stat'ed). Not a fill: the
   link is already cached, only its terminal-stat shortcut improves. *)
let note_ftype t ~dir ~comp ftype =
  match t.cache with
  | None -> ()
  | Some c -> (
    match Lru.find c (dir, comp) with
    | None -> ()
    | Some e -> Lru.insert c (dir, comp) { e with nc_ftype = Some ftype })

let drop t pred =
  match t.cache with
  | None -> ()
  | Some c ->
    (* ~notify:false: the name cache's on_evict only counts capacity
       pressure; invalidations are accounted right here. *)
    let dropped = Lru.filter_out c ~notify:false pred in
    if dropped > 0 then Sim.Stats.add t.stats "name.cache.invalidate" dropped

(* The directory committed at [vv]: every link recorded under a different
   version is superseded. Links already recorded under [vv] stay. *)
let note_dir_vv t ~dir vv =
  drop t (fun (d, _) e -> Gfile.equal d dir && not (Vvec.equal e.nc_vv vv))

let invalidate_dir t dir = drop t (fun (d, _) _ -> Gfile.equal d dir)

(* The file is deleted (or its inode number reclaimed): no cached link may
   keep resolving to it, whichever directory named it (hard links). *)
let invalidate_child t child = drop t (fun _ e -> Gfile.equal e.nc_child child)

let clear t =
  match t.cache with
  | None -> ()
  | Some c ->
    let n = Lru.length c in
    if n > 0 then Sim.Stats.add t.stats "name.cache.invalidate" n;
    Lru.clear c ~notify:false

let length t = match t.cache with None -> 0 | Some c -> Lru.length c
