(** Current Synchronization Site logic (§2.3.1).

    All open requests for a filegroup's files flow through its CSS, which
    enforces the global synchronization policy (one open for modification,
    any number of readers), knows which sites store each file at which
    version vector, selects the storage site for each open (with the two
    collocation optimizations of §2.3.3), and decides when a deleted
    inode number can be reallocated. *)

val is_css : Ktypes.t -> int -> bool

val fg_state : Ktypes.t -> int -> Ktypes.css_fg

val find_file : Ktypes.t -> int -> int -> Ktypes.css_file option

val get_file : Ktypes.t -> int -> int -> Ktypes.css_file
(** Find-or-create, seeding from the local pack when this CSS stores the
    file itself. *)

val seed_copy :
  Ktypes.t ->
  Catalog.Gfile.t ->
  site:Net.Site.t ->
  vv:Vv.Version_vector.t ->
  deleted:bool ->
  unit
(** Record (at boot or lock-table rebuild) that [site] stores a copy. *)

val sites_with_latest : Ktypes.t -> Ktypes.css_file -> Net.Site.t list
(** Reachable sites whose copy is at the latest version: the SS
    candidates. *)

val handle_open :
  Ktypes.t ->
  src:Net.Site.t ->
  Catalog.Gfile.t ->
  Proto.open_mode ->
  shared:bool ->
  Vv.Version_vector.t option ->
  Proto.resp
(** The CSS half of the open protocol (Figure 2). *)

val handle_ss_close :
  Ktypes.t -> Catalog.Gfile.t -> us:Net.Site.t -> mode:Proto.open_mode -> Proto.resp
(** SS→CSS leg of the close protocol. *)

val break_leases : Ktypes.t -> Catalog.Gfile.t -> Ktypes.css_file -> unit
(** Revoke every outstanding read lease on a file by [Lease_break]
    callback (writer open, version advance, conflict, delete). *)

val handle_commit_notify :
  ?replicas:Net.Site.t list ->
  Ktypes.t ->
  Catalog.Gfile.t ->
  origin:Net.Site.t ->
  vv:Vv.Version_vector.t ->
  deleted:bool ->
  unit
(** Version bookkeeping on a commit notification; triggers inode
    reclamation once every storing site has seen a delete (§2.3.7).
    [replicas] registers create-time designated storage sites. *)

val handle_where : Ktypes.t -> Catalog.Gfile.t -> Proto.resp

val handle_open_files_query : Ktypes.t -> int -> Proto.resp
(** This site's open files of a filegroup, for a rebuilding CSS (§5.6). *)

val register_open : Ktypes.t -> int -> int * Proto.open_mode * Net.Site.t -> unit
(** Re-enter one reported open during lock-table rebuild. *)

val drop_site : Ktypes.t -> Net.Site.t -> unit
(** Scrub lock-table entries owned by a departed site (§5.6). *)

val drop_fg : Ktypes.t -> int -> unit
(** This site lost the CSS role for a filegroup. *)

val mark_conflict : Ktypes.t -> Catalog.Gfile.t -> unit
(** Mark a file in version conflict: normal opens fail (§4.6). *)

val clear_conflict : Ktypes.t -> Catalog.Gfile.t -> unit
