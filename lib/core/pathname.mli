(** Pathname searching (§2.3.4) and hidden directories (§2.4.1).

    Resolution walks the naming tree one component at a time with internal
    unsynchronized directory reads: a locally stored directory with no
    pending propagation is searched without contacting the CSS at all (a
    lookup miss against such a possibly-stale copy is retried once against
    a synchronized copy). Filegroup boundaries are crossed through the
    replicated mount table, in both directions.

    Two fast paths short-circuit the per-component internal opens: the
    per-site {!Namecache} of (directory, component) links validated by
    directory version vectors, and server-side partial-pathname lookup —
    the remedy §2.3.4 names — where the remaining components are shipped
    to a storage site that walks as many as it stores in one round trip
    (the trail it returns also fills the name cache). Both are
    independently switchable via {!Ktypes.config}. *)

val split_path : string -> string list

val load_dir : Ktypes.t -> Catalog.Gfile.t -> Storage.Inode.ftype * string
(** A directory's type and raw contents, via the local fast path or an
    internal open. *)

val dir_of_body : string -> Catalog.Dir.t

val resolve_from :
  Ktypes.t ->
  cwd:Catalog.Gfile.t ->
  context:string list ->
  ?follow_hidden:bool ->
  string ->
  Catalog.Gfile.t
(** Resolve [path] (absolute or cwd-relative). [context] selects hidden-
    directory entries; an explicit ["@name"] component escapes. When
    [follow_hidden] (default true), a *final* hidden directory expands
    under the context — commands resolve to their machine's load module. *)

val resolve_parent :
  Ktypes.t ->
  cwd:Catalog.Gfile.t ->
  context:string list ->
  string ->
  Catalog.Gfile.t * string
(** Resolve all but the last component; returns the parent directory and
    the final name (with the '@' escape stripped). *)

val read_directory : Ktypes.t -> Catalog.Gfile.t -> Catalog.Dir.t
(** Parse a directory's contents; raises [ENOTDIR] on other types. *)

val select_context :
  Ktypes.t -> context:string list -> Catalog.Gfile.t -> Catalog.Dir.t -> Catalog.Gfile.t
(** First context name bound in a hidden directory. *)

val handle_lookup : Ktypes.t -> Catalog.Gfile.t -> string list -> Proto.resp
(** The storage-site half of partial-pathname lookup: walk as many of the
    components from the given directory as the local pack stores, in one
    request, and return the resulting gfile, the number of components
    consumed, and one {!Proto.lookup_step} per consumed component. Stops
    at mount points, "..", hidden directories (both consumed; crossing and
    context expansion stay with the using site), deleted inodes,
    directories awaiting propagation, and pack boundaries. Never fails:
    zero components consumed is a valid answer. *)
