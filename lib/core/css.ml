(* Current Synchronization Site logic (section 2.3.1).

   All open requests for a filegroup's files flow through its CSS, which
   enforces the global synchronization policy (single open-for-modification,
   any number of readers), knows which sites store each file and what the
   most current version vector is, and selects the storage site that will
   serve each open. *)

open Ktypes
module Inode = Storage.Inode
module Pack = Storage.Pack

let fg_state k fg =
  match Hashtbl.find_opt k.css_state fg with
  | Some s -> s
  | None ->
    let s = { css_files = Hashtbl.create (max 16 k.config.table_size_hint) } in
    Hashtbl.add k.css_state fg s;
    s

let is_css k fg = Hashtbl.mem k.css_state fg || (fg_info k fg).css_site = k.site

let new_file_state () =
  {
    latest_vv = Vvec.zero;
    site_vv = Site.Map.empty;
    readers = Site.Map.empty;
    writer = None;
    writer_ss = None;
    css_deleted = false;
    css_conflict = false;
    leases = Site.Set.empty;
    stripes = [];
  }

let find_file k fg ino = Hashtbl.find_opt (fg_state k fg).css_files ino

let get_file k fg ino =
  let st = fg_state k fg in
  match Hashtbl.find_opt st.css_files ino with
  | Some f -> f
  | None ->
    let f = new_file_state () in
    (* Seed from the local pack if this CSS stores the file itself. *)
    (match local_pack k fg with
    | Some pack -> (
      match Pack.find_inode pack ino with
      | Some inode ->
        f.latest_vv <- inode.Inode.vv;
        f.site_vv <- Site.Map.add k.site inode.Inode.vv f.site_vv;
        f.css_deleted <- inode.Inode.deleted
      | None -> ())
    | None -> ());
    Hashtbl.add st.css_files ino f;
    f

(* Update the record of which version [site] stores. Notifications can be
   delivered out of order, so the per-site record only moves forward. *)
let update_site_vv f ~site ~vv =
  let keep_old =
    match Site.Map.find_opt site f.site_vv with
    | Some prev -> Vvec.dominates_or_equal prev vv && not (Vvec.equal prev vv)
    | None -> false
  in
  if not keep_old then f.site_vv <- Site.Map.add site vv f.site_vv

(* Record (at CSS creation or after a merge) that [site] stores version
   [vv] of the file. *)
let seed_copy k gf ~site ~vv ~deleted =
  let f = get_file k gf.Gfile.fg gf.Gfile.ino in
  update_site_vv f ~site ~vv;
  if Vvec.conflict vv f.latest_vv then f.css_conflict <- true
  else if not (Vvec.dominates_or_equal f.latest_vv vv) then f.latest_vv <- vv;
  if deleted then f.css_deleted <- true

let sites_with_latest k f =
  Site.Map.fold
    (fun site vv acc ->
      if Vvec.dominates_or_equal vv f.latest_vv && in_partition k site then site :: acc
      else acc)
    f.site_vv []
  |> List.sort Site.compare

(* Ask a candidate site whether it will act as SS. The version check — a
   site refuses if it does not store the latest version — happens at the
   candidate against the vv we send (section 2.3.3). *)
let poll_storage_site k ~gf ~vv ~us ~mode ~others candidate =
  match
    rpc_result k candidate (Proto.Storage_req { gf; vv; us; mode; others })
  with
  | Ok (Proto.R_storage { accept = true; info = Some info; slot }) -> Some (info, slot)
  | Ok (Proto.R_storage _ | Proto.R_err _) -> None
  | Ok _ -> None
  | Stdlib.Error _ -> None

let local_info k gf =
  match local_pack k gf.Gfile.fg with
  | None -> None
  | Some pack ->
    Pack.find_inode pack gf.Gfile.ino |> Option.map Proto.info_of_inode

(* Break every outstanding read lease on a file by callback: a writer
   opened, the version advanced, a conflict or delete was recorded. Each
   holder drops its retained grant and sends its deferred close, which is
   what eventually uncounts it as a reader; losses are silent — a stale
   entry is caught by the version-keyed page cache and self-cleans at the
   next break or eviction. *)
let break_leases k gf (f : css_file) =
  if not (Site.Set.is_empty f.leases) then begin
    let holders = Site.Set.elements f.leases in
    f.leases <- Site.Set.empty;
    record k ~tag:"css.lease.break"
      (Format.asprintf "%a -> [%s]" Gfile.pp gf
         (String.concat "," (List.map Site.to_string holders)));
    List.iter
      (fun h ->
        if Site.equal h k.site then
          (* Collocated holder: direct procedure call (section 2.3.2). *)
          ignore (k.dispatch k.site (Proto.Lease_break { gf }))
        else notify k h (Proto.Lease_break { gf }))
      holders
  end

let lease_config_on k = k.config.open_lease && k.config.open_lease_entries > 0

let count_reader f us =
  let n = match Site.Map.find_opt us f.readers with Some n -> n | None -> 0 in
  f.readers <- Site.Map.add us (n + 1) f.readers

let uncount_reader f us =
  match Site.Map.find_opt us f.readers with
  | None -> ()
  | Some 1 -> f.readers <- Site.Map.remove us f.readers
  | Some n -> f.readers <- Site.Map.add us (n - 1) f.readers

(* The CSS half of the open protocol. Returns R_open { ss; info } or an
   error. Implements both optimizations of section 2.3.3: the US's own copy
   is used when it is current, and the CSS picks itself without message
   overhead when it stores the latest version. *)
let handle_open k ~src gf mode ~shared us_vv =
  let fg = gf.Gfile.fg and ino = gf.Gfile.ino in
  if not (is_css k fg) then Proto.R_err Proto.Estale
  else begin
    let f = get_file k fg ino in
    if f.css_deleted then Proto.R_err Proto.Enoent
    else if f.css_conflict && mode <> Proto.Mode_internal then
      Proto.R_err Proto.Econflict
    else if Site.Map.is_empty f.site_vv then Proto.R_err Proto.Enoent
    else begin
      match mode with
      | _ when f.stripes <> [] && f.writer <> None ->
        (* A striped modification session is in flight: its fresh pages
           are scattered over per-stripe shadow sessions, so no other
           open (read or shared) can be served coherently by any single
           site until the writer commits. Classic (stripe_width = 1)
           runs never pin a map and never take this branch. *)
        Proto.R_err Proto.Ebusy
      | Proto.Mode_modify when f.writer <> None && not shared -> Proto.R_err Proto.Ebusy
      | Proto.Mode_read | Proto.Mode_internal | Proto.Mode_modify ->
        let candidates = sites_with_latest k f in
        if candidates = [] then Proto.R_err Proto.Enet
        else begin
          let others ss = List.filter (fun s -> not (Site.equal s ss)) candidates in
          let poll ss =
            poll_storage_site k ~gf ~vv:f.latest_vv ~us:src ~mode
              ~others:(others ss) ss
            |> Option.map (fun (info, slot) -> (ss, info, slot))
          in
          let us_is_current =
            match us_vv with
            | Some vv -> Vvec.dominates_or_equal vv f.latest_vv
            | None -> false
          in
          (* Dummy descriptor returned when the US serves itself: the US
             already holds the real disk inode and ignores this field. *)
          let own_inode vv =
            {
              Proto.i_ftype = Inode.Regular;
              i_size = 0;
              i_nlink = 1;
              i_owner = "";
              i_perms = 0o644;
              i_mtime = 0.0;
              i_vv = vv;
              i_deleted = false;
              i_stripes = [];
            }
          in
          (* Optimization 2 of section 2.3.3: the CSS stores the latest
             version itself — select it with no message overhead,
             registering the serving state a Storage_req would have. *)
          let css_self () =
            match local_info k gf with
            | Some info
              when List.mem k.site candidates
                   && Vvec.dominates_or_equal info.Proto.i_vv f.latest_vv ->
              let s = ss_get_open k gf in
              ss_add_us s src;
              s.s_others <- others k.site;
              Some (k.site, info, s.s_slot)
            | Some _ | None -> None
          in
          (* Every choice records whether serving state for this open
             already exists at the chosen SS (storage poll or CSS-local
             registration). Only the US-is-current shortcut skips the
             registration — the US creates it on receipt; without the
             distinction the US double-registers a polled self-serve open
             and one close can never balance two registrations. *)
          let reg (ss, info, slot) = (ss, info, slot, true) in
          let classic_choice () =
            (* While a writer is active only one storage site may be
               involved (section 2.3.6 footnote): every open is directed to
               writer_ss. *)
            match f.writer_ss with
            | Some ss when List.mem ss candidates -> Option.map reg (poll ss)
            | Some _ | None ->
              if us_is_current then
                (* Optimization 1: the US stores the latest version; pick it
                   with no storage poll. *)
                Some (src, own_inode (Option.get us_vv), 0, false)
              else begin
                match css_self () with
                | Some x -> Some (reg x)
                | None ->
                  let rec try_sites = function
                    | [] -> None
                    | c :: rest -> (
                      match poll c with Some x -> Some x | None -> try_sites rest)
                  in
                  Option.map reg (try_sites candidates)
              end
          in
          (* Stripe only a solitary open: a modify session fans its pages
             over per-stripe shadow sessions, and a striped read wants an
             undisturbed whole-version copy at every stripe site, so any
             concurrent sharing falls back to the classic single-SS
             protocol. stripe_width = 1 disables the machinery. *)
          let stripes_granted =
            if k.config.stripe_width <= 1 || shared then []
            else
              match mode with
              | Proto.Mode_internal -> []
              | Proto.Mode_read ->
                if f.writer = None && f.writer_ss = None && not us_is_current then
                  stripe_map ~width:k.config.stripe_width ~ino candidates
                else []
              | Proto.Mode_modify ->
                if f.writer = None && f.writer_ss = None && Site.Map.is_empty f.readers
                then stripe_map ~width:k.config.stripe_width ~ino candidates
                else []
          in
          let choice, stripes =
            match stripes_granted with
            | [] -> (classic_choice (), [])
            | primary :: peers -> (
              match mode with
              | Proto.Mode_modify -> (
                (* Poll every stripe site: each opens serving state and
                   registers the US, so a site failure mid-write can abort
                   the orphaned per-stripe sessions. (If a poll fails after
                   earlier ones succeeded, the leftover registrations are
                   harmless serving state, swept on close or failure.) *)
                let prim =
                  if Site.equal primary k.site then css_self () else poll primary
                in
                match prim with
                | Some x when List.for_all (fun p -> poll p <> None) peers ->
                  (Some (reg x), stripes_granted)
                | Some _ | None -> (classic_choice (), []))
              | Proto.Mode_read | Proto.Mode_internal -> (
                (* Only the primary is polled and registered: peers serve
                   strided reads statelessly from their packs, so a striped
                   read open costs the same messages as a classic one. *)
                let prim =
                  if Site.equal primary k.site then css_self () else poll primary
                in
                match prim with
                | Some x -> (Some (reg x), stripes_granted)
                | None -> (classic_choice (), [])))
          in
          match choice with
          | None -> Proto.R_err Proto.Enet
          | Some (ss, info, slot, registered) ->
            let lease =
              (* Grant a revocable read lease when nothing threatens the
                 version the grant names: no writer, no conflict, not a
                 shared-descriptor open (the offset token serializes
                 those; their opens must revalidate). *)
              match mode with
              | Proto.Mode_read | Proto.Mode_internal ->
                lease_config_on k && (not shared) && f.writer = None
                && not f.css_conflict
              | Proto.Mode_modify -> false
            in
            (match mode with
            | Proto.Mode_modify ->
              if f.writer = None then f.writer <- Some src;
              f.writer_ss <- Some ss;
              (* Pin the stripe map while the session lives, so the CSS
                 can refuse opens it could not serve coherently. *)
              f.stripes <- stripes;
              (* A writer exists: no outstanding lease may keep serving
                 zero-message re-opens of the now-mutable file. *)
              break_leases k gf f
            | Proto.Mode_read | Proto.Mode_internal ->
              count_reader f src;
              if lease then f.leases <- Site.Set.add src f.leases);
            record k ~tag:"css.open"
              (Format.asprintf "%a %a by %a -> ss %a%s" Gfile.pp gf Proto.pp_mode
                 mode Site.pp src Site.pp ss
                 (if stripes = [] then ""
                  else
                    Printf.sprintf " stripes [%s]"
                      (String.concat "," (List.map Site.to_string stripes))));
            Proto.R_open
              {
                ss;
                info = { info with Proto.i_stripes = stripes };
                others = others ss;
                nocache = f.writer <> None;
                slot;
                lease;
                registered;
              }
        end
    end
  end

(* SS -> CSS leg of the close protocol. *)
let handle_ss_close k gf ~us ~mode =
  let fg = gf.Gfile.fg in
  if not (is_css k fg) then Proto.R_err Proto.Estale
  else begin
    match find_file k fg gf.Gfile.ino with
    | None -> Proto.R_ok
    | Some f ->
      (match mode with
      | Proto.Mode_modify ->
        if f.writer = Some us then begin
          f.writer <- None;
          (* A striped writer's close arrives once per stripe site; the
             first Ss_close unpins, the rest are no-ops. *)
          f.stripes <- [];
          if Site.Map.is_empty f.readers then f.writer_ss <- None
        end
      | Proto.Mode_read | Proto.Mode_internal ->
        uncount_reader f us;
        if Site.Map.is_empty f.readers && f.writer = None then f.writer_ss <- None);
      Proto.R_ok
  end

(* Reclaim check: once every storing site has seen a delete, tell them all
   to release the inode number for reallocation (section 2.3.7). *)
let maybe_reclaim k gf f =
  if f.css_deleted then begin
    let all_seen =
      Site.Map.for_all (fun _ vv -> Vvec.dominates_or_equal vv f.latest_vv) f.site_vv
    in
    let all_reachable =
      Site.Map.for_all (fun site _ -> in_partition k site) f.site_vv
    in
    if all_seen && all_reachable then begin
      Site.Map.iter (fun site _ -> notify k site (Proto.Reclaim_req { gf })) f.site_vv;
      Hashtbl.remove (fg_state k gf.Gfile.fg).css_files gf.Gfile.ino;
      record k ~tag:"css.reclaim" (Gfile.to_string gf)
    end
  end

(* Commit notification bookkeeping at the CSS. *)
let handle_commit_notify ?(replicas = []) k gf ~origin ~vv ~deleted =
  if is_css k gf.Gfile.fg then begin
    let f = get_file k gf.Gfile.fg gf.Gfile.ino in
    update_site_vv f ~site:origin ~vv;
    (* Designated initial storage sites count as (stale) copy holders
       right away, so replication factors are honoured even before their
       background pulls complete. *)
    List.iter
      (fun r ->
        if not (Site.Map.mem r f.site_vv) then
          f.site_vv <- Site.Map.add r Vvec.zero f.site_vv)
      replicas;
    let advanced = not (Vvec.dominates_or_equal f.latest_vv vv) in
    if Vvec.conflict vv f.latest_vv then f.css_conflict <- true
    else if advanced then f.latest_vv <- vv;
    if deleted then f.css_deleted <- true;
    (* A new latest version, a conflict, or a delete: every lease granted
       on the superseded version is dead — break by callback before any
       holder can serve another zero-message re-open of stale state. *)
    if advanced || f.css_conflict || deleted then break_leases k gf f;
    maybe_reclaim k gf f
  end

let handle_where k gf =
  match find_file k gf.Gfile.fg gf.Gfile.ino with
  | None -> Proto.R_err Proto.Enoent
  | Some f ->
    let sites = sites_with_latest k f in
    let all_sites = List.map fst (Site.Map.bindings f.site_vv) in
    Proto.R_where { sites; all_sites; vv = f.latest_vv }

(* Lock-table contents for a rebuilding CSS (section 5.6). *)
let handle_open_files_query k fg =
  let files = ref [] in
  Hashtbl.iter
    (fun (gf, _serial) (o : ofile) ->
      if Int.equal gf.Gfile.fg fg && not o.o_closed then
        files := (gf.Gfile.ino, o.o_mode, k.site) :: !files)
    k.open_files;
  Proto.R_open_files { files = !files }

(* Clear synchronization state owned by a site that left the partition: the
   cleanup procedure's lock-table scrub (section 5.6). *)
let drop_site k dead =
  Hashtbl.iter
    (fun _fg st ->
      Hashtbl.iter
        (fun _ino f ->
          if f.writer = Some dead then begin
            f.writer <- None;
            f.writer_ss <- None;
            f.stripes <- []
          end;
          (* A stripe site left mid-session: the scattered session can
             never commit coherently, so unpin; the writer's own site
             failure handling aborts its side. *)
          if List.exists (Site.equal dead) f.stripes then f.stripes <- [];
          f.readers <- Site.Map.remove dead f.readers;
          (* A lease must never survive a partition event (the holders
             scrub their own side; no callback can reach a departed
             site). *)
          f.leases <- Site.Set.remove dead f.leases)
        st.css_files)
    k.css_state

(* Re-register an open reported by a member site during lock-table rebuild
   (section 5.6). *)
let register_open k fg (ino, mode, site) =
  let f = get_file k fg ino in
  match mode with
  | Proto.Mode_modify -> if f.writer = None then f.writer <- Some site
  | Proto.Mode_read | Proto.Mode_internal -> count_reader f site

(* Drop all CSS state for a filegroup (this site lost the CSS role). *)
let drop_fg k fg = Hashtbl.remove k.css_state fg

let mark_conflict k gf =
  let f = get_file k gf.Gfile.fg gf.Gfile.ino in
  f.css_conflict <- true;
  break_leases k gf f

let clear_conflict k gf =
  match find_file k gf.Gfile.fg gf.Gfile.ino with
  | Some f -> f.css_conflict <- false
  | None -> ()
