(* Per-site cache of CSS-granted open leases.

   On a successful read/internal open the CSS may grant a revocable read
   lease on (gf, vv), carried in [R_open]. The using site retains the
   whole open grant — serving SS, inode information, incore-inode slot —
   in this LRU across [close], so a re-open of the unchanged file
   completes with zero messages: no [Open_req], no [Storage_req]. Close
   of a lease-backed read open is *deferred*: the SS serving state stays
   registered and the Us_close/Ss_close legs are elided until the lease
   dies (callback break, commit, eviction, partition scrub), at which
   point exactly one batched close travels.

   The structure itself is protocol-agnostic: the deferred-close sender
   is a callback installed by [Kernel.create], so any kernel module can
   kill a lease without depending on the US layer.

   An entry is shared by reference with every ofile currently riding it
   ([le_active] counts them). A dead entry ([le_broken]) is out of the
   table and satisfies no further re-opens; the last riding close sends
   the deferred close legs.

   Counters exported through [Sim.Stats]: open.lease.hit,
   open.lease.miss, open.lease.break, open.lease.evict,
   open.lease.defer. *)

module Gfile = Catalog.Gfile
module Vvec = Vv.Version_vector
module Site = Net.Site

type entry = {
  le_gf : Gfile.t;
  le_ss : Site.t;            (* the storage site serving the leased open *)
  le_mode : Proto.open_mode; (* mode the SS/CSS registered (read/internal) *)
  le_info : Proto.inode_info;
  le_slot : int;             (* the SS's incore-inode slot (read guess) *)
  le_vv : Vvec.t;            (* version the lease was granted on *)
  mutable le_active : int;   (* local opens currently riding this grant *)
  mutable le_broken : bool;  (* lease dead: no reuse; close on last drain *)
}

module Lru = Storage.Lru.Make (struct
  type t = entry

  let copy e = e (* shared by reference: riders mutate the same record *)
end)

type t = {
  cache : Gfile.t Lru.t option; (* None: disabled (open_lease off or 0 entries) *)
  tbl : (Gfile.t, entry) Hashtbl.t; (* mirror, for value recovery on eviction *)
  stats : Sim.Stats.t;
  on_dead : (entry -> unit) ref;
  (* deferred-close sender, installed by [Kernel.create]; called exactly
     once per entry, when the lease is dead and no local open rides it *)
}

let count t what = Sim.Stats.incr t.stats ("open.lease." ^ what)

let create ~stats ~capacity () =
  let tbl = Hashtbl.create 32 in
  let on_dead = ref (fun (_ : entry) -> ()) in
  let cache =
    if capacity <= 0 then None
    else
      Some
        (Lru.create
           ~on_evict:(fun gf ->
             (* Capacity eviction: one batched close travels now — unless
                an open still rides the grant, in which case the last
                riding close sends it. *)
             Sim.Stats.incr stats "open.lease.evict";
             match Hashtbl.find_opt tbl gf with
             | None -> ()
             | Some e ->
               Hashtbl.remove tbl gf;
               e.le_broken <- true;
               if e.le_active <= 0 then !on_dead e)
           ~capacity ())
  in
  { cache; tbl; stats; on_dead }

let enabled t = t.cache <> None

let set_on_dead t f = t.on_dead := f

let length t = match t.cache with None -> 0 | Some c -> Lru.length c

let find_entry t gf = Hashtbl.find_opt t.tbl gf

(* Warm re-open: take a ride on a live lease. Touches recency and counts
   hit/miss. The caller is responsible for only asking on lease-eligible
   opens (read/internal, not shared), so the miss counter means "eligible
   open that had to go cold". *)
let acquire t gf =
  match t.cache with
  | None -> None
  | Some c -> (
    match Lru.find c gf with
    | None ->
      count t "miss";
      None
    | Some e ->
      count t "hit";
      e.le_active <- e.le_active + 1;
      Some e)

(* Kill the lease on [gf]: remove it so no re-open can ride it, and send
   the deferred close now (idle) or at the last riding close (active). *)
let kill ?(counter = "break") t gf =
  match Hashtbl.find_opt t.tbl gf with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.tbl gf;
    (match t.cache with Some c -> Lru.invalidate c gf | None -> ());
    count t counter;
    e.le_broken <- true;
    if e.le_active <= 0 then !(t.on_dead) e

(* Register a fresh grant (the cold open that carried it is its first
   rider). A live entry under the same key would mean a lost break
   callback: kill it first so its registered open still gets closed. *)
let insert t e =
  match t.cache with
  | None -> ()
  | Some c ->
    kill t e.le_gf;
    Hashtbl.replace t.tbl e.le_gf e;
    Lru.insert c e.le_gf e

(* A commit notification for [gf] observed locally: any lease granted on
   a different version is stale, whether or not the CSS callback has
   arrived yet. *)
let note_commit t gf vv =
  match find_entry t gf with
  | Some e when not (Vvec.equal e.le_vv vv) -> kill t gf
  | Some _ | None -> ()

let kill_if t pred =
  let doomed = Hashtbl.fold (fun gf e acc -> if pred e then gf :: acc else acc) t.tbl [] in
  List.iter (kill t) doomed

(* Partition scrub (§5.6's lock-table scrub): a lease must never survive
   a partition event. Deferred closes go out best-effort; unreachable
   storage sites clean up through their own failure handling. *)
let scrub t = kill_if t (fun _ -> true)

(* Crash: volatile state dies silently — no messages from a dead kernel.
   ~notify:false is load-bearing here: firing on_evict would try to send
   deferred closes from a site that no longer exists. Every live-site bulk
   removal must go through [scrub]/[kill_if] instead, which do send them. *)
let clear t =
  Hashtbl.iter (fun _ e -> e.le_broken <- true) t.tbl;
  Hashtbl.reset t.tbl;
  match t.cache with None -> () | Some c -> Lru.clear c ~notify:false
