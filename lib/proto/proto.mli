(** Kernel-to-kernel protocol vocabulary.

    These are the lowest-level protocols in the system: single
    request/response exchanges with no layered acknowledgements, flow
    control, or retransmission stack underneath — "this specialized
    protocol is an important contributor to LOCUS performance" (§2.3.3).
    Each constructor corresponds to one message of the paper's
    open / read / write / commit / close / create protocols, the
    remote-process machinery (§3), or the reconfiguration protocols (§5).

    {!req_bytes} and {!resp_bytes} define the wire-size model used for
    latency charging and byte accounting; {!req_tag} labels messages in
    the per-category statistics. *)

(** {1 Open modes} *)

type open_mode =
  | Mode_read      (** normal synchronized read *)
  | Mode_modify    (** open for update; one per file per partition *)
  | Mode_internal  (** unsynchronized internal read (pathname searching) *)

val pp_mode : Format.formatter -> open_mode -> unit

(** {1 Errors reflected across machine boundaries} *)

type errno =
  | Enoent
  | Enotdir
  | Eisdir
  | Eexist
  | Eaccess
  | Ebusy       (** the synchronization policy refused the open *)
  | Estale      (** stale CSS knowledge / file replaced *)
  | Econflict   (** copies in version-vector conflict; access blocked (§4.6) *)
  | Enospc
  | Eio
  | Enet        (** partition or site failure mid-operation *)
  | Esrch       (** no such process *)
  | Edeadtoken  (** token holder unreachable *)
  | Einval

val errno_to_string : errno -> string

val pp_errno : Format.formatter -> errno -> unit

(** {1 Shipped descriptor information} *)

(** Disk-inode information carried in open/stat responses: "all the disk
    inode information (eg. file size, ownership, permissions) is obtained
    from the CSS response" (§2.3.3). *)
type inode_info = {
  i_ftype : Storage.Inode.ftype;
  i_size : int;
  i_nlink : int;
  i_owner : string;
  i_perms : int;
  i_mtime : float;
  i_vv : Vv.Version_vector.t;
  i_deleted : bool;
  i_stripes : Net.Site.t list;
      (** stripe map assigned by the CSS at open time: logical page p is
          served by [stripes.(p mod width)]. [[]] = unstriped, and costs
          zero wire bytes (classic ablation stays byte-identical). *)
}

val info_of_inode : Storage.Inode.t -> inode_info

(** {1 Tokens (§3.2)} *)

type token_key =
  | Tok_fd of int * int
      (** shared file-descriptor offset token: origin site, serial *)

val pp_token : Format.formatter -> token_key -> unit

(** {1 Process environment (§3.1)} *)

(** One shared open descriptor carried to a forked child: parent and
    child share it, with the token deciding whose file position is
    valid. *)
type fd_desc = {
  d_num : int;
  d_key : int * int;
  d_gf : Catalog.Gfile.t;
  d_mode : open_mode;
}

type process_env = {
  e_uid : string;
  e_cwd : Catalog.Gfile.t;
  e_context : string list; (** hidden-directory context (§2.4.1) *)
  e_ncopies : int;         (** inherited replication factor (§2.3.7) *)
  e_fds : fd_desc list;
}

(** {1 Partial-pathname lookup (§2.3.4)} *)

(** One directory-search step performed server-side by {!Lookup_req}: the
    directory searched, its version vector at search time, and the gfile
    the component named. The using site turns each step into a name-cache
    entry keyed by the directory's version. *)
type lookup_step = {
  l_dir : Catalog.Gfile.t;
  l_vv : Vv.Version_vector.t;
  l_child : Catalog.Gfile.t;
  l_ftype : Storage.Inode.ftype option;
      (** the child's type, when its inode is stored at the serving site *)
}

(** {1 Requests} *)

type req =
  | Open_req of {
      gf : Catalog.Gfile.t;
      mode : open_mode;
      us_vv : Vv.Version_vector.t option;
      shared : bool;
    }  (** US → CSS: the open request of Figure 2; carries the US's copy
           version for the US-is-current optimization. [shared] joins an
           existing open through a forked descriptor. *)
  | Storage_req of {
      gf : Catalog.Gfile.t;
      vv : Vv.Version_vector.t;
      us : Net.Site.t;
      mode : open_mode;
      others : Net.Site.t list;
    }  (** CSS → candidate SS: will you serve this open at this version?
           [others] lets the SS send its commit notifications directly. *)
  | Read_page of { gf : Catalog.Gfile.t; lpage : int; guess : int }
      (** US → SS: one page; [guess] locates the incore inode (§2.3.3). *)
  | Read_pages of {
      gf : Catalog.Gfile.t;
      first : int;
      count : int;
      guess : int;
      stride : int;
    }  (** US → SS: up to [count] pages, every [stride]-th logical page
           from [first], in one round trip — the bulk-transfer read used
           by windowed streaming reads and batched propagation pulls.
           [stride] = 1 is the classic consecutive window; a striped US
           sends [stride] = width so each stripe SS serves only its own
           pages. *)
  | Write_page of {
      gf : Catalog.Gfile.t;
      lpage : int;
      whole : bool;
      off : int;
      data : string;
    }  (** US → SS: one logical page of modification (whole or patch). *)
  | Write_pages of { gf : Catalog.Gfile.t; first : int; off : int; data : string }
      (** US → SS: a contiguous run of modified bytes starting at byte
          [off] within page [first], possibly spanning several pages — one
          coalesced write-behind batch. Absolute positioning keeps the
          request idempotent (safe to retry). *)
  | Truncate_req of { gf : Catalog.Gfile.t; size : int }
  | Commit_req of {
      gf : Catalog.Gfile.t;
      us : Net.Site.t;
      abort : bool;
      delete : bool;
      force_vv : Vv.Version_vector.t option;
      stripes : Net.Site.t list;
    }  (** US → SS: commit/abort the open modification; [delete] marks
           the inode deleted (§2.3.7); [force_vv] installs recovery's
           merged vector; [stripes] names the peer stripe sites the
           primary must collect modified pages from first ([[]] =
           classic, zero wire bytes). *)
  | Stripe_collect of { gf : Catalog.Gfile.t }
      (** primary SS → peer stripe SS at commit: surrender your session's
          modified pages and size, then abort the session; the primary
          folds them in and commits classically under one version bump. *)
  | Us_close of { gf : Catalog.Gfile.t; mode : open_mode }
  | Ss_close of {
      gf : Catalog.Gfile.t;
      ss : Net.Site.t;
      us : Net.Site.t;
      mode : open_mode;
    }  (** the race-free three-message close (§2.3.3 footnote) *)
  | Commit_notify of {
      gf : Catalog.Gfile.t;
      vv : Vv.Version_vector.t;
      meta_only : bool;
      modified : int list;
      origin : Net.Site.t;
      fresh : bool;
      deleted : bool;
      designate : bool;
      replicas : Net.Site.t list;
    }  (** SS → CSS and other storage sites after a commit (§2.3.6).
           [modified] lets receivers pull just the changes; [designate]
           makes a site pull its first copy; [replicas] registers
           create-time designations at the CSS. *)
  | Reclaim_req of { gf : Catalog.Gfile.t }
      (** CSS → SS: all storage sites saw the delete; release the inode
          number (§2.3.7). *)
  | Page_invalidate of { gf : Catalog.Gfile.t; lpage : int }
      (** SS → other USs: buffered copy no longer valid (§3.2). *)
  | Lease_break of { gf : Catalog.Gfile.t }
      (** CSS → lease-holding US: the read lease on this file is revoked
          (writer open, new committed version, conflict/delete, or a
          partition event). The holder drops its retained open grant and
          sends any deferred close. *)
  | Create_req of {
      fg : int;
      ftype : Storage.Inode.ftype;
      owner : string;
      perms : int;
      replicate_at : Net.Site.t list;
    }  (** US → chosen SS: a placeholder travels instead of an inode
           number; the SS allocates from its partition of the inode
           space (§2.3.7). *)
  | Link_count of { gf : Catalog.Gfile.t; delta : int }
  | Set_attr of { gf : Catalog.Gfile.t; perms : int option; owner : string option }
      (** metadata-only commits (§2.3.6's "just inode information") *)
  | Stat_req of { gf : Catalog.Gfile.t }
  | Where_stored of { gf : Catalog.Gfile.t }
  | Lookup_req of { gf : Catalog.Gfile.t; comps : string list }
      (** US → SS: walk as many of the remaining pathname components from
          [gf] as this site stores, in one round trip — §2.3.4's remedy
          for per-component internal opens. The walk stops at mount
          points, hidden directories, [".."], deleted inodes, and
          pack/filegroup boundaries; the US resumes from there. *)
  | Token_req of { key : token_key; for_site : Net.Site.t }
  | Token_state_req of { key : token_key }
  | Fork_req of {
      child_pid : int;
      env : process_env;
      image_pages : int;
      parent : int * Net.Site.t;
    }  (** remote fork ships the process image (§3.1) *)
  | Exec_req of {
      pid : int;
      path : string;
      env : process_env;
      image_pages : int;
      parent : int * Net.Site.t;
    }
  | Run_req of {
      child_pid : int;
      path : string;
      env : process_env;
      parent : int * Net.Site.t;
      context_override : string list option;
    }  (** the optimized fork+exec: no image copy; the override is the
           caller's environment parameterization *)
  | Signal_req of { pid : int; signo : int }
  | Exit_notify of { pid : int; status : int; child_site : Net.Site.t }
  | Part_poll of { initiator : Net.Site.t; pset : Net.Site.t list }
      (** partition protocol poll (§5.4) *)
  | Part_announce of { active : Net.Site.t; members : Net.Site.t list }
  | Merge_poll of { initiator : Net.Site.t }
  | Merge_announce of {
      members : Net.Site.t list;
      css_map : (int * Net.Site.t) list;
    }
  | Status_check of { asker : Net.Site.t }
      (** the §5.7 synchronization probe *)
  | Open_files_query of { fg : int }
      (** lock-table rebuild input (§5.6) *)
  | Pack_inventory of { fg : int }
  | Pipe_write of { gf : Catalog.Gfile.t; data : string }
  | Pipe_read of { gf : Catalog.Gfile.t; max : int }

(** {1 Responses} *)

type resp =
  | R_ok
  | R_err of errno
  | R_open of {
      ss : Net.Site.t;
      info : inode_info;
      others : Net.Site.t list;
      nocache : bool;
      slot : int;
      lease : bool;
        (** the CSS granted a revocable read lease on [(gf, vv)]: the US
            may retain the whole grant across close and re-open with zero
            messages until a [Lease_break] arrives. Packs into the same
            flag byte as [nocache] (wire size unchanged). *)
      registered : bool;
        (** the serving state at [ss] already counts this open (storage
            poll or CSS-local registration). False only on the
            US-is-current shortcut, where the US must create its own
            serving registration. Packs into the flag byte. *)
    }
  | R_storage of { accept : bool; info : inode_info option; slot : int }
  | R_page of { data : string; eof : bool }
  | R_pages of { pages : string list; eof : bool }
      (** consecutive pages answering a [Read_pages]; fewer than asked when
          the file ends mid-window, [eof] when the batch reaches end of
          file (or started past it) *)
  | R_committed of { vv : Vv.Version_vector.t }
  | R_stripe of { pages : (int * string) list; size : int }
      (** a peer stripe SS's modified full pages [(lpage, data)] and its
          session's file size, answering a [Stripe_collect] *)
  | R_created of { ino : int }
  | R_stat of { info : inode_info option; stored_here : bool }
  | R_lookup of { gf : Catalog.Gfile.t; consumed : int; trail : lookup_step list }
      (** where the server-side walk stopped, how many components it
          consumed, and one trail step per consumed component *)
  | R_where of {
      sites : Net.Site.t list;
      all_sites : Net.Site.t list;
      vv : Vv.Version_vector.t;
    }
  | R_token of { granted : bool; state : string }
  | R_pid of { pid : int }
  | R_pset of { pset : Net.Site.t list }
  | R_merge_info of { believed_up : Net.Site.t list; fgs : int list }
  | R_busy of { active : Net.Site.t }
  | R_status of { stage : int; site : Net.Site.t }
  | R_open_files of { files : (int * open_mode * Net.Site.t) list }
  | R_inventory of { files : (int * Vv.Version_vector.t * bool) list }
  | R_data of { data : string }

(** {1 Wire-size model} *)

val req_bytes : req -> int
(** Modelled wire size of a request, bytes (header + scaled payload; a
    remote fork includes the shipped image). *)

val resp_bytes : resp -> int

val req_tag : req -> string
(** Short label for per-category message statistics. *)

val req_idempotent : req -> bool
(** Whether resending the request after a suspected loss is safe: the
    handler's effect is idempotent (reads, queries, token traffic,
    re-sendable notifications). Opens, commits, closes, creates and
    process operations are not. *)

val req_policy : req -> Net.Rpc.policy
(** Transport retry policy for the request's message class:
    {!Net.Rpc.default_policy} for idempotent requests, {!Net.Rpc.no_retry}
    for state-mutating ones, {!Net.Rpc.probe} for the §5 reconfiguration
    polls — those must not retry, since unreachability is their answer. *)
