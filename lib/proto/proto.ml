(* Kernel-to-kernel protocol vocabulary.

   These are the lowest-level protocols in the system: single
   request/response exchanges with no layered acknowledgements (section
   2.3.3 of the paper). Each constructor corresponds to one message of the
   paper's open / read / write / commit / close / create protocols, the
   remote-process machinery (section 3), or the reconfiguration protocols
   (section 5). [req_bytes] and [resp_bytes] give the wire-size model used
   for latency charging and byte accounting. *)

module Vvec = Vv.Version_vector

type open_mode =
  | Mode_read          (* normal synchronized read *)
  | Mode_modify        (* open for update *)
  | Mode_internal      (* unsynchronized internal read, pathname searching *)

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Mode_read -> "read"
    | Mode_modify -> "modify"
    | Mode_internal -> "internal")

(* Typed failures reflected across machine boundaries. *)
type errno =
  | Enoent        (* no such file or directory *)
  | Enotdir
  | Eisdir
  | Eexist
  | Eaccess
  | Ebusy         (* synchronization policy refused the open *)
  | Estale        (* version no longer latest / file replaced *)
  | Econflict     (* copies in version-vector conflict; access blocked *)
  | Enospc
  | Eio
  | Enet          (* partition or site failure mid-operation *)
  | Esrch         (* no such process *)
  | Edeadtoken    (* token holder unreachable *)
  | Einval

let errno_to_string = function
  | Enoent -> "ENOENT"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Eexist -> "EEXIST"
  | Eaccess -> "EACCES"
  | Ebusy -> "EBUSY"
  | Estale -> "ESTALE"
  | Econflict -> "ECONFLICT"
  | Enospc -> "ENOSPC"
  | Eio -> "EIO"
  | Enet -> "ENET"
  | Esrch -> "ESRCH"
  | Edeadtoken -> "EDEADTOKEN"
  | Einval -> "EINVAL"

let pp_errno ppf e = Format.pp_print_string ppf (errno_to_string e)

(* Disk-inode information shipped in open/stat responses: "all the disk
   inode information (eg. file size, ownership, permissions) is obtained
   from the CSS response" (section 2.3.3). *)
type inode_info = {
  i_ftype : Storage.Inode.ftype;
  i_size : int;
  i_nlink : int;
  i_owner : string;
  i_perms : int;
  i_mtime : float;
  i_vv : Vvec.t;
  i_deleted : bool;
  i_stripes : Net.Site.t list;
  (* stripe map assigned by the CSS at open time: logical page p is
     served by stripes.(p mod width). [] = unstriped (classic single-SS
     service) and costs zero wire bytes, keeping stripe_width = 1
     byte-identical to the classic protocol. *)
}

let info_of_inode (i : Storage.Inode.t) =
  {
    i_ftype = i.Storage.Inode.ftype;
    i_size = i.size;
    i_nlink = i.nlink;
    i_owner = i.owner;
    i_perms = i.perms;
    i_mtime = i.mtime;
    i_vv = i.vv;
    i_deleted = i.deleted;
    i_stripes = [];
  }

type token_key =
  | Tok_fd of int * int (* shared file-descriptor offset: origin site, serial *)

let pp_token ppf = function
  | Tok_fd (s, n) -> Format.fprintf ppf "fd-token(%d.%d)" s n

(* One shared open file descriptor carried to a forked child (section 3.1):
   the parent and child share the descriptor, with a token deciding which
   site's copy of the file position is valid. *)
type fd_desc = {
  d_num : int;                 (* descriptor number in the process *)
  d_key : int * int;           (* shared-descriptor identity: origin site, serial *)
  d_gf : Catalog.Gfile.t;
  d_mode : open_mode;
}

(* Environment needed to initialize a remote process (section 3.1). *)
type process_env = {
  e_uid : string;
  e_cwd : Catalog.Gfile.t;
  e_context : string list;       (* hidden-directory context, e.g. ["vax"] *)
  e_ncopies : int;               (* inherited default replication factor *)
  e_fds : fd_desc list;
}

(* One directory-search step performed server-side by a partial-pathname
   lookup (the remedy named in section 2.3.4): which directory was
   searched, at which version, and which gfile the component named. The
   using site turns each step into a name-cache entry. *)
type lookup_step = {
  l_dir : Catalog.Gfile.t;
  l_vv : Vvec.t; (* the directory's version vector at search time *)
  l_child : Catalog.Gfile.t;
  l_ftype : Storage.Inode.ftype option; (* child's type, when stored at the SS *)
}

type req =
  (* --- open protocol (Figure 2) --- *)
  | Open_req of {
      gf : Catalog.Gfile.t;
      mode : open_mode;
      us_vv : Vvec.t option;
      shared : bool;
        (* join an existing open through a shared descriptor (fork):
           exempt from the single-writer policy, serialized by the token *)
    } (* US -> CSS: open request; carries the US's copy version if it stores one *)
  | Storage_req of {
      gf : Catalog.Gfile.t;
      vv : Vvec.t;
      us : Net.Site.t;
      mode : open_mode;
      others : Net.Site.t list;
        (* the other sites storing the file, so that the SS can send its
           commit notifications directly to them (section 2.3.6) *)
    } (* CSS -> candidate SS: will you serve this open at this version? *)
  (* --- data transfer --- *)
  | Read_page of { gf : Catalog.Gfile.t; lpage : int; guess : int }
    (* US -> SS; [guess] is the hint for locating the incore inode *)
  | Read_pages of { gf : Catalog.Gfile.t; first : int; count : int; guess : int; stride : int }
    (* US -> SS: up to [count] pages starting at [first], every [stride]-th
       logical page, in one round trip — the bulk-transfer read protocol.
       [stride] = 1 is the classic consecutive window; a striped US sends
       stride = width to each stripe SS so each serves only its own pages. *)
  | Write_page of { gf : Catalog.Gfile.t; lpage : int; whole : bool; off : int; data : string }
    (* US -> SS: one logical page of modification (whole page or patch) *)
  | Write_pages of { gf : Catalog.Gfile.t; first : int; off : int; data : string }
    (* US -> SS: one contiguous run of modified bytes starting at byte
       [off] within page [first], possibly spanning several pages — a
       coalesced write-behind batch. Absolute positioning keeps the
       request idempotent. *)
  | Truncate_req of { gf : Catalog.Gfile.t; size : int }
    (* US -> SS: shrink the open modification session's file *)
  | Commit_req of {
      gf : Catalog.Gfile.t;
      us : Net.Site.t;
      abort : bool;
      delete : bool;
      force_vv : Vvec.t option;
        (* recovery only: install this exact version vector (the pointwise
           maximum of the merged copies, bumped at the merge site) instead
           of bumping the local one *)
      stripes : Net.Site.t list;
        (* striped session: the peer stripe sites the primary SS must
           collect modified pages from before committing, so every
           committed copy is complete under one version bump. [] (classic)
           costs zero wire bytes. *)
    } (* US -> SS: commit (or abort) the open modification session; [delete]
         marks the inode deleted before committing (section 2.3.7) *)
  | Stripe_collect of { gf : Catalog.Gfile.t }
    (* primary SS -> peer stripe SS at commit: hand over your session's
       modified pages and size, then abort your session; the primary
       folds them into its shadow session and commits classically *)
  (* --- close protocol (3 messages; see the race note in section 2.3.3) --- *)
  | Us_close of { gf : Catalog.Gfile.t; mode : open_mode }
  | Ss_close of { gf : Catalog.Gfile.t; ss : Net.Site.t; us : Net.Site.t; mode : open_mode }
  (* --- commit notification and propagation (section 2.3.6) --- *)
  | Commit_notify of {
      gf : Catalog.Gfile.t;
      vv : Vvec.t;
      meta_only : bool;
      modified : int list; (* modified logical pages; [] with meta_only=false means "all" *)
      origin : Net.Site.t;
      fresh : bool; (* a new commit (propagate me) vs. a completed propagation *)
      deleted : bool;
      designate : bool;
        (* create-time designation: pull a first copy even though this
           site does not store the file yet (section 2.3.7) *)
      replicas : Net.Site.t list;
        (* create -> CSS only: the designated initial storage sites, so
           the CSS records them as (stale) copy holders immediately *)
    }
  | Reclaim_req of { gf : Catalog.Gfile.t }
    (* CSS -> SS: every storage site has seen the delete; the inode number
       can be reallocated (section 2.3.7) *)
  | Page_invalidate of { gf : Catalog.Gfile.t; lpage : int }
    (* SS -> other USs it serves: your buffered copy of this page is no
       longer valid (the page-valid tokens of section 3.2) *)
  | Lease_break of { gf : Catalog.Gfile.t }
    (* CSS -> lease-holding US: the read lease granted on this file is
       revoked (a writer opened, a new version committed, a conflict or
       delete was recorded, or the partition changed). The holder drops
       its retained open grant and sends any deferred close. *)
  (* --- create / delete (section 2.3.7) --- *)
  | Create_req of {
      fg : int;
      ftype : Storage.Inode.ftype;
      owner : string;
      perms : int;
      replicate_at : Net.Site.t list; (* the other initial storage sites *)
    } (* US -> chosen SS; a placeholder travels instead of an inode number *)
  (* --- interrogation --- *)
  | Link_count of { gf : Catalog.Gfile.t; delta : int }
    (* US -> SS: adjust the link count (metadata-only commit) *)
  | Set_attr of { gf : Catalog.Gfile.t; perms : int option; owner : string option }
    (* US -> SS: chmod/chown; a metadata-only commit (section 2.3.6's
       "just inode information changed" case) *)
  | Stat_req of { gf : Catalog.Gfile.t }
  | Where_stored of { gf : Catalog.Gfile.t } (* CSS bookkeeping query *)
  | Lookup_req of { gf : Catalog.Gfile.t; comps : string list }
    (* US -> SS: walk as many of the remaining pathname components from
       [gf] as this site stores, in one round trip (section 2.3.4) *)
  (* --- tokens (section 3.2) --- *)
  | Token_req of { key : token_key; for_site : Net.Site.t }
  | Token_state_req of { key : token_key } (* fetch guarded state with the token *)
  (* --- remote processes (section 3) --- *)
  | Fork_req of { child_pid : int; env : process_env; image_pages : int; parent : int * Net.Site.t }
  | Exec_req of { pid : int; path : string; env : process_env; image_pages : int; parent : int * Net.Site.t }
  | Run_req of {
      child_pid : int;
      path : string;
      env : process_env;
      parent : int * Net.Site.t;
      context_override : string list option;
        (* caller-specified hidden-directory context, applied after exec *)
    }
  | Signal_req of { pid : int; signo : int }
  | Exit_notify of { pid : int; status : int; child_site : Net.Site.t }
  (* --- reconfiguration (section 5) --- *)
  | Part_poll of { initiator : Net.Site.t; pset : Net.Site.t list }
    (* partition protocol poll: here is my partition set; send me yours *)
  | Part_announce of { active : Net.Site.t; members : Net.Site.t list }
  | Merge_poll of { initiator : Net.Site.t }
  | Merge_announce of { members : Net.Site.t list; css_map : (int * Net.Site.t) list }
  | Status_check of { asker : Net.Site.t }
    (* protocol-synchronization probe of section 5.7 *)
  | Open_files_query of { fg : int }
    (* new CSS rebuilding its lock table after reconfiguration (section 5.6) *)
  | Pack_inventory of { fg : int }
    (* recovery: which inodes does your pack store, at which versions? *)
  | Pipe_write of { gf : Catalog.Gfile.t; data : string }
  | Pipe_read of { gf : Catalog.Gfile.t; max : int }

type resp =
  | R_ok
  | R_err of errno
  | R_open of {
      ss : Net.Site.t;
      info : inode_info;
      others : Net.Site.t list;
      nocache : bool; (* a writer is active: using sites must not buffer pages *)
      slot : int;     (* the SS's incore-inode slot: the US's read guess *)
      lease : bool;
        (* the CSS granted a revocable read lease on (gf, vv): the US may
           retain the whole grant across close and re-open with no
           messages until a [Lease_break] arrives. Packs into the same
           flag byte as [nocache], so the wire size is unchanged and the
           [open_lease = false] ablation is byte-identical. *)
      registered : bool;
        (* the serving state at [ss] already counts this open (the CSS
           polled it with [Storage_req], or registered it locally as
           CSS = SS). False only on the US-is-current shortcut, where the
           CSS names the US itself without a poll: the US must then create
           its own serving registration. Packs into the flag byte. *)
    }
  | R_storage of { accept : bool; info : inode_info option; slot : int }
  | R_page of { data : string; eof : bool }
  | R_pages of { pages : string list; eof : bool }
    (* consecutive pages from a [Read_pages]; may be fewer than asked when
       the file ends mid-window. [eof] marks that the last page returned
       contains end of file (or that [first] was past it). *)
  | R_committed of { vv : Vvec.t }
  | R_stripe of { pages : (int * string) list; size : int }
    (* a peer stripe SS's modified full pages (lpage, data) and its
       session's file size, surrendered to the committing primary *)
  | R_created of { ino : int }
  | R_stat of { info : inode_info option; stored_here : bool }
  | R_lookup of { gf : Catalog.Gfile.t; consumed : int; trail : lookup_step list }
    (* where the server-side walk stopped, how many components it
       consumed, and one trail step per consumed component *)
  | R_where of {
      sites : Net.Site.t list;     (* reachable sites holding the latest version *)
      all_sites : Net.Site.t list; (* every site holding any copy, even stale or unreachable *)
      vv : Vvec.t;
    }
  | R_token of { granted : bool; state : string }
  | R_pid of { pid : int }
  | R_pset of { pset : Net.Site.t list }
  | R_merge_info of { believed_up : Net.Site.t list; fgs : int list }
  | R_busy of { active : Net.Site.t }
  | R_status of { stage : int; site : Net.Site.t }
  | R_open_files of { files : (int * open_mode * Net.Site.t) list }
  | R_inventory of { files : (int * Vvec.t * bool) list }
    (* ino, version, deleted? for every inode the pack stores *)
  | R_data of { data : string }

(* ---- wire-size model ---- *)

let header = 24

let gfile_bytes = 8

let vv_bytes v = 8 * max 1 (List.length (Vvec.to_list v))

let site_list_bytes l = 4 * List.length l

let info_bytes i =
  40 + String.length i.i_owner + vv_bytes i.i_vv + site_list_bytes i.i_stripes

let env_bytes e =
  16 + String.length e.e_uid + gfile_bytes
  + List.fold_left (fun a s -> a + String.length s) 0 e.e_context
  + ((13 + gfile_bytes) * List.length e.e_fds)

let page_bytes = 1024

let token_bytes = function Tok_fd _ -> 8

let req_bytes = function
  | Open_req { us_vv; _ } ->
    header + gfile_bytes + 2
    + (match us_vv with Some v -> vv_bytes v | None -> 0)
  | Storage_req { vv; others; _ } ->
    header + gfile_bytes + vv_bytes vv + 5 + site_list_bytes others
  | Read_page _ -> header + gfile_bytes + 8
  | Read_pages { stride; _ } ->
    header + gfile_bytes + 12 + (if stride > 1 then 2 else 0)
  | Write_page { data; _ } -> header + gfile_bytes + 9 + String.length data
  | Write_pages { data; _ } -> header + gfile_bytes + 12 + String.length data
  | Truncate_req _ -> header + gfile_bytes + 4
  | Commit_req { force_vv; stripes; _ } ->
    header + gfile_bytes + 5
    + (match force_vv with Some v -> vv_bytes v | None -> 0)
    + site_list_bytes stripes
  | Stripe_collect _ -> header + gfile_bytes
  | Us_close _ -> header + gfile_bytes + 1
  | Ss_close _ -> header + gfile_bytes + 9
  | Commit_notify { vv; modified; replicas; _ } ->
    header + gfile_bytes + vv_bytes vv + 3 + (4 * List.length modified) + 4
    + site_list_bytes replicas
  | Reclaim_req _ -> header + gfile_bytes
  | Page_invalidate _ -> header + gfile_bytes + 4
  | Lease_break _ -> header + gfile_bytes
  | Create_req { owner; replicate_at; _ } ->
    header + 12 + String.length owner + site_list_bytes replicate_at
  | Link_count _ -> header + gfile_bytes + 4
  | Set_attr { owner; _ } ->
    header + gfile_bytes + 6
    + (match owner with Some o -> String.length o | None -> 0)
  | Stat_req _ | Where_stored _ -> header + gfile_bytes
  | Lookup_req { comps; _ } ->
    header + gfile_bytes
    + List.fold_left (fun a c -> a + 1 + String.length c) 0 comps
  | Token_req { key; _ } -> header + token_bytes key + 4
  | Token_state_req { key } -> header + token_bytes key
  | Fork_req { env; image_pages; _ } ->
    (* A fork ships the whole process image to the destination site. *)
    header + 16 + env_bytes env + (image_pages * page_bytes)
  | Exec_req { path; env; _ } -> header + 16 + String.length path + env_bytes env
  | Run_req { path; env; context_override; _ } ->
    header + 12 + String.length path + env_bytes env
    + (match context_override with
      | Some c -> List.fold_left (fun a s -> a + 1 + String.length s) 0 c
      | None -> 0)
  | Signal_req _ -> header + 8
  | Exit_notify _ -> header + 12
  | Part_poll { pset; _ } -> header + 4 + site_list_bytes pset
  | Part_announce { members; _ } -> header + 4 + site_list_bytes members
  | Merge_poll _ -> header + 4
  | Merge_announce { members; css_map } ->
    header + site_list_bytes members + (8 * List.length css_map)
  | Status_check _ -> header + 4
  | Open_files_query _ -> header + 4
  | Pack_inventory _ -> header + 4
  | Pipe_write { data; _ } -> header + gfile_bytes + String.length data
  | Pipe_read _ -> header + gfile_bytes + 4

let resp_bytes = function
  | R_ok -> header
  | R_err _ -> header + 4
  | R_open { info; others; _ } ->
    header + 5 + info_bytes info + site_list_bytes others
  | R_storage { info; _ } ->
    header + 1 + (match info with Some i -> info_bytes i | None -> 0)
  | R_page { data; _ } -> header + 1 + String.length data
  | R_pages { pages; _ } ->
    (* One header for the whole batch; each page pays only a small length
       frame plus its payload — the honest accounting that makes the bulk
       win fewer headers and RTTs, not free bytes. *)
    header + 1 + List.fold_left (fun a p -> a + 2 + String.length p) 0 pages
  | R_committed { vv } -> header + vv_bytes vv
  | R_stripe { pages; _ } ->
    header + 8 + List.fold_left (fun a (_, p) -> a + 6 + String.length p) 0 pages
  | R_created _ -> header + 4
  | R_stat { info; _ } ->
    header + 1 + (match info with Some i -> info_bytes i | None -> 0)
  | R_lookup { trail; _ } ->
    header + gfile_bytes + 4
    + List.fold_left (fun a s -> a + (2 * gfile_bytes) + vv_bytes s.l_vv + 1) 0 trail
  | R_where { sites; all_sites; vv } ->
    header + site_list_bytes sites + site_list_bytes all_sites + vv_bytes vv
  | R_token { state; _ } -> header + 1 + String.length state
  | R_pid _ -> header + 4
  | R_pset { pset } -> header + site_list_bytes pset
  | R_merge_info { believed_up; fgs } ->
    header + site_list_bytes believed_up + (4 * List.length fgs)
  | R_busy _ -> header + 4
  | R_status _ -> header + 8
  | R_open_files { files } -> header + (9 * List.length files)
  | R_inventory { files } ->
    header + List.fold_left (fun a (_, vv, _) -> a + 5 + vv_bytes vv) 0 files
  | R_data { data } -> header + String.length data

let req_tag = function
  | Open_req _ -> "open"
  | Storage_req _ -> "storage"
  | Read_page _ | Read_pages _ -> "read"
  | Write_page _ | Write_pages _ -> "write"
  | Truncate_req _ -> "truncate"
  | Commit_req _ -> "commit"
  | Stripe_collect _ -> "stripe.collect"
  | Us_close _ -> "close.us"
  | Ss_close _ -> "close.ss"
  | Commit_notify _ -> "notify"
  | Reclaim_req _ -> "reclaim"
  | Page_invalidate _ -> "page.invalidate"
  | Lease_break _ -> "lease.break"
  | Create_req _ -> "create"
  | Link_count _ -> "link"
  | Set_attr _ -> "setattr"
  | Stat_req _ -> "stat"
  | Where_stored _ -> "where"
  | Lookup_req _ -> "lookup"
  | Token_req _ -> "token"
  | Token_state_req _ -> "token.state"
  | Fork_req _ -> "fork"
  | Exec_req _ -> "exec"
  | Run_req _ -> "run"
  | Signal_req _ -> "signal"
  | Exit_notify _ -> "exit"
  | Part_poll _ -> "part.poll"
  | Part_announce _ -> "part.announce"
  | Merge_poll _ -> "merge.poll"
  | Merge_announce _ -> "merge.announce"
  | Status_check _ -> "status"
  | Open_files_query _ -> "lock.rebuild"
  | Pack_inventory _ -> "inventory"
  | Pipe_write _ -> "pipe.write"
  | Pipe_read _ -> "pipe.read"

(* Retry policy per message class. Idempotent requests (reads, queries,
   token traffic, re-sendable notifications) get the default retry policy;
   requests whose handler mutates state non-idempotently (opens count
   readers, commits bump version vectors, forks create processes) are never
   blindly retried; reconfiguration probes are single-shot because
   unreachability is the information being gathered (section 5.4). *)
let req_idempotent = function
  | Read_page _ | Read_pages _ | Stat_req _ | Where_stored _ | Lookup_req _
  | Open_files_query _ | Pack_inventory _ | Token_state_req _ | Token_req _
  | Page_invalidate _ | Lease_break _ | Reclaim_req _ | Commit_notify _ | Write_page _
  | Write_pages _ | Truncate_req _
  | Part_poll _ | Part_announce _ | Merge_poll _ | Merge_announce _
  | Status_check _ ->
    true
  | Open_req _ | Storage_req _ | Commit_req _ | Stripe_collect _ | Us_close _ | Ss_close _
  | Create_req _ | Link_count _ | Set_attr _ | Fork_req _ | Exec_req _
  | Run_req _ | Signal_req _ | Exit_notify _ | Pipe_write _ | Pipe_read _ ->
    false

let req_policy = function
  | Part_poll _ | Part_announce _ | Merge_poll _ | Merge_announce _
  | Status_check _ ->
    Net.Rpc.probe
  | req -> if req_idempotent req then Net.Rpc.default_policy else Net.Rpc.no_retry
