(* Unit tests of the protocol vocabulary: the wire-size model and tags.
   The size model drives latency charging and byte accounting, so it must
   be positive, monotone in payload size, and account for every field that
   scales. *)

module Gfile = Catalog.Gfile
module Vvec = Vv.Version_vector

let check = Alcotest.check

let gf = Gfile.make ~fg:0 ~ino:7

let vv_small = Vvec.bump Vvec.zero 1

let vv_big = List.fold_left Vvec.bump Vvec.zero [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let some_reqs =
  [
    Proto.Open_req { gf; mode = Proto.Mode_read; us_vv = None; shared = false };
    Proto.Storage_req
      { gf; vv = vv_small; us = 1; mode = Proto.Mode_read; others = [ 2; 3 ] };
    Proto.Read_page { gf; lpage = 0; guess = 0 };
    Proto.Write_page { gf; lpage = 0; whole = true; off = 0; data = String.make 1024 'x' };
    Proto.Truncate_req { gf; size = 0 };
    Proto.Commit_req { gf; us = 0; abort = false; delete = false; force_vv = None; stripes = [] };
    Proto.Us_close { gf; mode = Proto.Mode_read };
    Proto.Ss_close { gf; ss = 0; us = 1; mode = Proto.Mode_read };
    Proto.Commit_notify
      {
        gf;
        vv = vv_small;
        meta_only = false;
        modified = [ 0; 1 ];
        origin = 0;
        fresh = true;
        deleted = false;
        designate = false;
        replicas = [];
      };
    Proto.Reclaim_req { gf };
    Proto.Page_invalidate { gf; lpage = 3 };
    Proto.Create_req
      { fg = 0; ftype = Storage.Inode.Regular; owner = "u"; perms = 0o644; replicate_at = [] };
    Proto.Link_count { gf; delta = 1 };
    Proto.Set_attr { gf; perms = Some 0o600; owner = None };
    Proto.Stat_req { gf };
    Proto.Where_stored { gf };
    Proto.Token_req { key = Proto.Tok_fd (0, 1); for_site = 2 };
    Proto.Token_state_req { key = Proto.Tok_fd (0, 1) };
    Proto.Signal_req { pid = 1; signo = 9 };
    Proto.Exit_notify { pid = 1; status = 0; child_site = 2 };
    Proto.Part_poll { initiator = 0; pset = [ 0; 1 ] };
    Proto.Part_announce { active = 0; members = [ 0; 1 ] };
    Proto.Merge_poll { initiator = 0 };
    Proto.Merge_announce { members = [ 0; 1 ]; css_map = [ (0, 0) ] };
    Proto.Status_check { asker = 0 };
    Proto.Open_files_query { fg = 0 };
    Proto.Pack_inventory { fg = 0 };
    Proto.Pipe_write { gf; data = "abc" };
    Proto.Pipe_read { gf; max = 10 };
  ]

let test_sizes_positive () =
  List.iter
    (fun req ->
      let n = Proto.req_bytes req in
      if n <= 0 then Alcotest.failf "non-positive size for %s" (Proto.req_tag req))
    some_reqs

let test_tags_nonempty_and_distinctive () =
  let tags = List.map Proto.req_tag some_reqs in
  List.iter (fun t -> if t = "" then Alcotest.fail "empty tag") tags;
  check Alcotest.bool "plenty of distinct tags" true
    (List.length (List.sort_uniq compare tags) > 20)

let test_payload_monotone () =
  let size data =
    Proto.req_bytes (Proto.Write_page { gf; lpage = 0; whole = true; off = 0; data })
  in
  check Alcotest.bool "write grows with data" true (size (String.make 1024 'x') > size "x");
  let vv_size v =
    Proto.req_bytes
      (Proto.Storage_req { gf; vv = v; us = 1; mode = Proto.Mode_read; others = [] })
  in
  check Alcotest.bool "vv grows with components" true (vv_size vv_big > vv_size vv_small);
  let fork_size pages =
    Proto.req_bytes
      (Proto.Fork_req
         {
           child_pid = 1;
           env =
             { Proto.e_uid = "u"; e_cwd = gf; e_context = []; e_ncopies = 1; e_fds = [] };
           image_pages = pages;
           parent = (0, 0);
         })
  in
  (* Fork ships the image: size scales with pages. *)
  check Alcotest.bool "fork ships image" true
    (fork_size 64 - fork_size 1 >= 63 * 1024)

let test_resp_sizes () =
  let info =
    {
      Proto.i_ftype = Storage.Inode.Regular;
      i_size = 0;
      i_nlink = 1;
      i_owner = "someone";
      i_perms = 0o644;
      i_mtime = 0.0;
      i_vv = vv_small;
      i_deleted = false;
      i_stripes = [];
    }
  in
  List.iter
    (fun resp ->
      if Proto.resp_bytes resp <= 0 then Alcotest.fail "non-positive response size")
    [
      Proto.R_ok;
      Proto.R_err Proto.Enoent;
      Proto.R_open
        { ss = 0; info; others = []; nocache = false; slot = 1; lease = false;
          registered = true };
      Proto.R_storage { accept = true; info = Some info; slot = 1 };
      Proto.R_page { data = String.make 512 'd'; eof = true };
      Proto.R_committed { vv = vv_small };
      Proto.R_stat { info = Some info; stored_here = true };
      Proto.R_where { sites = [ 0 ]; all_sites = [ 0; 1 ]; vv = vv_small };
      Proto.R_token { granted = true; state = "17" };
      Proto.R_pset { pset = [ 0; 1; 2 ] };
      Proto.R_inventory { files = [ (2, vv_small, false) ] };
      Proto.R_data { data = "x" };
    ];
  check Alcotest.bool "page response dominated by data" true
    (Proto.resp_bytes (Proto.R_page { data = String.make 1024 'd'; eof = false })
     > 1024)

let test_errno_strings () =
  List.iter
    (fun e ->
      let s = Proto.errno_to_string e in
      if String.length s < 3 || s.[0] <> 'E' then
        Alcotest.failf "odd errno rendering %S" s)
    [
      Proto.Enoent; Proto.Enotdir; Proto.Eisdir; Proto.Eexist; Proto.Eaccess;
      Proto.Ebusy; Proto.Estale; Proto.Econflict; Proto.Enospc; Proto.Eio;
      Proto.Enet; Proto.Esrch; Proto.Edeadtoken; Proto.Einval;
    ]

let () =
  Alcotest.run "proto"
    [
      ( "wire-model",
        [
          Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
          Alcotest.test_case "tags" `Quick test_tags_nonempty_and_distinctive;
          Alcotest.test_case "payload monotone" `Quick test_payload_monotone;
          Alcotest.test_case "response sizes" `Quick test_resp_sizes;
          Alcotest.test_case "errno strings" `Quick test_errno_strings;
        ] );
    ]
