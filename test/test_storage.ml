(* Unit tests for the storage substrate: disk, inodes/packs with indirect
   page tables, LRU cache, and the shadow-page commit engine — including
   crash-injection atomicity. *)

module Page = Storage.Page
module Disk = Storage.Disk
module Inode = Storage.Inode
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Cache = Storage.Cache
module Vvec = Vv.Version_vector

let check = Alcotest.check

(* ---- pages ---- *)

let test_page_codec () =
  let p = Page.blank () in
  Page.set_u32 p 0 0;
  Page.set_u32 p 4 123456789;
  Page.set_u32 p 8 0xFFFFFFFF;
  check Alcotest.int "zero" 0 (Page.get_u32 p 0);
  check Alcotest.int "value" 123456789 (Page.get_u32 p 4);
  check Alcotest.int "max" 0xFFFFFFFF (Page.get_u32 p 8)

let test_page_of_string () =
  let p = Page.of_string "hello" in
  check Alcotest.string "prefix" "hello" (Page.sub p 0 5);
  check Alcotest.int "padded to size" Page.size (String.length (Page.to_string p));
  let long = String.make (Page.size + 100) 'x' in
  let p2 = Page.of_string long in
  check Alcotest.int "truncated" Page.size (String.length (Page.to_string p2))

(* ---- disk ---- *)

let test_disk_alloc_free () =
  let d = Disk.create ~pages:16 () in
  let a = Disk.alloc d in
  check Alcotest.bool "address nonzero" true (a > 0);
  check Alcotest.int "used" 1 (Disk.used d);
  Disk.free d a;
  check Alcotest.int "freed" 0 (Disk.used d);
  (match Disk.free d a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double free should raise");
  let b = Disk.alloc d in
  check Alcotest.int "address reused" a b

let test_disk_full () =
  let d = Disk.create ~pages:4 () in
  (* Page 0 reserved: capacity is 3. *)
  let _ = Disk.alloc d and _ = Disk.alloc d and _ = Disk.alloc d in
  match Disk.alloc d with
  | exception Disk.Disk_full -> ()
  | _ -> Alcotest.fail "expected Disk_full"

let test_disk_rw () =
  let d = Disk.create () in
  let a = Disk.alloc d in
  Disk.write d a (Page.of_string "data!");
  check Alcotest.string "read back" "data!" (Page.sub (Disk.read d a) 0 5);
  check Alcotest.bool "read counted" true (Disk.reads d >= 1);
  check Alcotest.bool "write counted" true (Disk.writes d >= 1)

(* ---- pack + inode page tables ---- *)

let make_pack () = Pack.create ~fg:0 ~pack_id:0 ~ino_lo:2 ~ino_hi:1000 ()

let install pack ~ino content =
  let inode = Inode.create ~ino ~ftype:Inode.Regular ~owner:"t" in
  Pack.install_inode pack inode;
  if String.length content > 0 then begin
    let s = Shadow.begin_modify pack ino in
    Shadow.set_contents s content;
    Shadow.commit s ~vv:(Vvec.bump Vvec.zero 0) ~mtime:1.0
  end;
  Pack.get_inode pack ino

let test_pack_alloc_ino_partitioned () =
  let a = Pack.create ~fg:0 ~pack_id:0 ~ino_lo:2 ~ino_hi:100 () in
  let b = Pack.create ~fg:0 ~pack_id:1 ~ino_lo:101 ~ino_hi:200 () in
  let ia = Pack.alloc_ino a and ib = Pack.alloc_ino b in
  check Alcotest.bool "disjoint ranges" true (ia >= 2 && ia <= 100 && ib >= 101)

let test_pack_small_file_roundtrip () =
  let pack = make_pack () in
  let inode = install pack ~ino:2 "hello storage" in
  check Alcotest.string "contents" "hello storage" (Pack.read_string pack inode);
  check Alcotest.int "size" 13 inode.Inode.size

let test_pack_large_file_indirect () =
  let pack = make_pack () in
  (* 20 pages: beyond the 8 direct slots, into the indirect page. *)
  let body = String.init (20 * Page.size) (fun i -> Char.chr (65 + (i mod 26))) in
  let inode = install pack ~ino:2 body in
  check Alcotest.bool "indirect allocated" true (inode.Inode.indirect <> 0);
  check Alcotest.string "large roundtrip" body (Pack.read_string pack inode);
  (* Shrink back below the direct threshold: indirect page released. *)
  let s = Shadow.begin_modify pack 2 in
  Shadow.set_contents s "tiny";
  Shadow.commit s ~vv:(Vvec.bump Vvec.zero 0) ~mtime:2.0;
  let inode = Pack.get_inode pack 2 in
  check Alcotest.int "no indirect" 0 inode.Inode.indirect;
  check Alcotest.string "shrunk" "tiny" (Pack.read_string pack inode)

let test_pack_remove_frees_pages () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 (String.make 5000 'z') in
  let used = Disk.used (Pack.disk pack) in
  check Alcotest.bool "pages in use" true (used > 0);
  Pack.remove_inode pack 2;
  check Alcotest.int "all pages freed" 0 (Disk.used (Pack.disk pack))

(* ---- shadow-page commit ---- *)

let test_shadow_commit_replaces () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "version one" in
  let s = Shadow.begin_modify pack 2 in
  Shadow.set_contents s "version two!";
  (* Before commit, the disk inode still shows the old version. *)
  check Alcotest.string "old visible before commit" "version one"
    (Pack.read_string pack (Pack.get_inode pack 2));
  Shadow.commit s ~vv:(Vvec.bump (Vvec.bump Vvec.zero 0) 0) ~mtime:2.0;
  check Alcotest.string "new after commit" "version two!"
    (Pack.read_string pack (Pack.get_inode pack 2))

let test_shadow_abort_restores () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "keep me" in
  let used_before = Disk.used (Pack.disk pack) in
  let s = Shadow.begin_modify pack 2 in
  Shadow.write_page s ~lpage:0 (Page.of_string "discard");
  Shadow.patch_page s ~lpage:1 ~off:0 "more";
  Shadow.abort s;
  check Alcotest.string "unchanged" "keep me"
    (Pack.read_string pack (Pack.get_inode pack 2));
  check Alcotest.int "no leaked pages" used_before (Disk.used (Pack.disk pack))

let test_shadow_partial_page_patch () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "abcdefghij" in
  let s = Shadow.begin_modify pack 2 in
  Shadow.patch_page s ~lpage:0 ~off:3 "XYZ";
  Shadow.commit s ~vv:(Vvec.bump Vvec.zero 0) ~mtime:2.0;
  check Alcotest.string "patched" "abcXYZghij"
    (Pack.read_string pack (Pack.get_inode pack 2))

let test_shadow_page_reused_in_place () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "start" in
  let s = Shadow.begin_modify pack 2 in
  Shadow.write_page s ~lpage:0 (Page.of_string "first");
  let used_after_first = Disk.used (Pack.disk pack) in
  (* Section 2.3.6: later writes to the same logical page reuse the shadow
     page in place. *)
  Shadow.write_page s ~lpage:0 (Page.of_string "second");
  Shadow.write_page s ~lpage:0 (Page.of_string "third");
  check Alcotest.int "no extra pages allocated" used_after_first
    (Disk.used (Pack.disk pack));
  Shadow.commit s ~vv:(Vvec.bump Vvec.zero 0) ~mtime:2.0;
  check Alcotest.string "last write wins" "third"
    (Pack.read_string pack (Pack.get_inode pack 2) |> fun s -> String.sub s 0 5)

let test_shadow_crash_before_switch () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "stable version" in
  let s = Shadow.begin_modify pack 2 in
  Shadow.set_contents s "doomed version that never commits";
  Shadow.crash_before_switch s;
  (* The old version is fully intact. *)
  check Alcotest.string "old version intact" "stable version"
    (Pack.read_string pack (Pack.get_inode pack 2));
  (* Orphaned shadow pages are reclaimed by scavenging. *)
  let freed = Pack.scavenge pack in
  check Alcotest.bool "orphans reclaimed" true (freed > 0);
  check Alcotest.string "still intact after scavenge" "stable version"
    (Pack.read_string pack (Pack.get_inode pack 2))

let test_shadow_delete_mark () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "to be deleted" in
  let s = Shadow.begin_modify pack 2 in
  Shadow.set_contents s "";
  Shadow.mark_deleted s ~time:9.0;
  Shadow.commit s ~vv:(Vvec.bump Vvec.zero 0) ~mtime:9.0;
  let inode = Pack.get_inode pack 2 in
  check Alcotest.bool "deleted" true inode.Inode.deleted;
  check Alcotest.int "empty" 0 inode.Inode.size

let test_shadow_modified_lpages () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 (String.make 4000 'a') in
  let s = Shadow.begin_modify pack 2 in
  Shadow.patch_page s ~lpage:2 ~off:0 "x";
  Shadow.patch_page s ~lpage:0 ~off:0 "y";
  check Alcotest.(list int) "modified pages sorted" [ 0; 2 ] (Shadow.modified_lpages s);
  Shadow.abort s

(* ---- cache ---- *)

let test_fsck_clean_pack () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 (String.make 5000 'f') in
  let _ = install pack ~ino:3 "small" in
  Alcotest.(check int) "clean" 0 (List.length (Pack.fsck pack))

let test_fsck_detects_orphans () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "x" in
  (* Crash mid-commit leaves orphans. *)
  let s = Shadow.begin_modify pack 2 in
  Shadow.set_contents s (String.make 3000 'o');
  Shadow.crash_before_switch s;
  (match Pack.fsck pack with
  | [ Pack.Orphan_pages n ] -> Alcotest.(check bool) "orphans found" true (n > 0)
  | other ->
    Alcotest.failf "expected orphans, got %d errors" (List.length other));
  ignore (Pack.scavenge pack);
  Alcotest.(check int) "clean after scavenge" 0 (List.length (Pack.fsck pack))

let test_fsck_detects_double_allocation () =
  let pack = make_pack () in
  let _ = install pack ~ino:2 "abc" in
  let i2 = Pack.get_inode pack 2 in
  (* Forge a second inode pointing at inode 2's page. *)
  let forged = Inode.create ~ino:9 ~ftype:Inode.Regular ~owner:"evil" in
  forged.Inode.direct.(0) <- i2.Inode.direct.(0);
  forged.Inode.size <- 3;
  Pack.install_inode pack forged;
  let errs = Pack.fsck pack in
  Alcotest.(check bool) "double allocation caught" true
    (List.exists (function Pack.Double_allocated _ -> true | _ -> false) errs)

let test_cache_hit_miss () =
  let c = Cache.create ~capacity:4 () in
  check Alcotest.bool "initial miss" true (Cache.find c "a" = None);
  Cache.insert c "a" (Page.of_string "A");
  (match Cache.find c "a" with
  | Some p -> check Alcotest.string "hit value" "A" (Page.sub p 0 1)
  | None -> Alcotest.fail "expected hit");
  check Alcotest.int "hits" 1 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.insert c "a" (Page.of_string "A");
  Cache.insert c "b" (Page.of_string "B");
  ignore (Cache.find c "a");
  (* "b" is now least recently used; inserting "c" evicts it. *)
  Cache.insert c "c" (Page.of_string "C");
  check Alcotest.bool "a kept" true (Cache.find c "a" <> None);
  check Alcotest.bool "b evicted" true (Cache.find c "b" = None);
  check Alcotest.bool "c kept" true (Cache.find c "c" <> None)

let test_cache_invalidate_if () =
  let c = Cache.create ~capacity:8 () in
  Cache.insert c ("f", 0) (Page.of_string "x");
  Cache.insert c ("f", 1) (Page.of_string "y");
  Cache.insert c ("g", 0) (Page.of_string "z");
  Cache.invalidate_if c ~notify:false (fun (name, _) -> name = "f");
  check Alcotest.int "only g left" 1 (Cache.length c);
  check Alcotest.bool "g survives" true (Cache.find c ("g", 0) <> None)

let test_cache_lru_order () =
  let c = Cache.create ~capacity:3 () in
  Cache.insert c "a" (Page.of_string "A");
  Cache.insert c "b" (Page.of_string "B");
  Cache.insert c "c" (Page.of_string "C");
  check Alcotest.(list string) "insertion order" [ "c"; "b"; "a" ] (Cache.keys_mru c);
  ignore (Cache.find c "a");
  check Alcotest.(list string) "hit moves to front" [ "a"; "c"; "b" ] (Cache.keys_mru c);
  Cache.insert c "b" (Page.of_string "B2");
  check Alcotest.(list string) "re-insert touches" [ "b"; "a"; "c" ] (Cache.keys_mru c);
  check Alcotest.int "no eviction on refresh" 3 (Cache.length c);
  Cache.invalidate c "a";
  check Alcotest.(list string) "invalidate unlinks" [ "b"; "c" ] (Cache.keys_mru c)

let test_cache_eviction_counters () =
  let evicted = ref [] in
  let c = Cache.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:2 () in
  Cache.insert c "a" (Page.of_string "A");
  Cache.insert c "b" (Page.of_string "B");
  Cache.insert c "c" (Page.of_string "C");
  (* "a" was the LRU tail and is the capacity victim. *)
  check Alcotest.(list string) "victim reported" [ "a" ] !evicted;
  check Alcotest.int "evictions counted" 1 (Cache.evictions c);
  Cache.invalidate c "b";
  check Alcotest.(list string) "invalidation is not an eviction" [ "a" ] !evicted;
  check Alcotest.int "evictions unchanged" 1 (Cache.evictions c);
  check Alcotest.bool "mem does not count" true (Cache.mem c "c");
  check Alcotest.bool "mem miss does not count" false (Cache.mem c "zz");
  check Alcotest.int "no hits from mem" 0 (Cache.hits c);
  check Alcotest.int "no misses from mem" 0 (Cache.misses c)

(* The scrub paths choose their on_evict policy explicitly: a hook that
   carries a liveness obligation (the lease cache's deferred closes)
   leaks it under a silent scrub, so ~notify:true must fire per dropped
   entry and ~notify:false must fire nothing — and neither may count as a
   capacity eviction. *)
let test_cache_notify_policy () =
  let evicted = ref [] in
  let c = Cache.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:8 () in
  List.iter (fun k -> Cache.insert c k (Page.of_string k)) [ "a"; "b"; "c" ];
  Cache.invalidate_if c ~notify:false (fun k -> k = "a");
  check Alcotest.int "silently dropped" 2 (Cache.length c);
  check Alcotest.(list string) "silent drop fires nothing" [] !evicted;
  Cache.invalidate_if c ~notify:true (fun k -> k = "b");
  check Alcotest.(list string) "notified drop fires on_evict" [ "b" ] !evicted;
  check Alcotest.int "not a capacity eviction" 0 (Cache.evictions c);
  Cache.insert c "d" (Page.of_string "D");
  Cache.clear c ~notify:true;
  (* Per entry, LRU first: "c" is older than "d". *)
  check Alcotest.(list string) "notified clear, LRU first" [ "d"; "c"; "b" ] !evicted;
  check Alcotest.int "cleared" 0 (Cache.length c);
  Cache.insert c "e" (Page.of_string "E");
  Cache.clear c ~notify:false;
  check Alcotest.(list string) "silent clear fires nothing" [ "d"; "c"; "b" ] !evicted;
  check Alcotest.int "evictions still zero" 0 (Cache.evictions c)

(* The list/table structure must stay consistent over a long mixed
   workload (and complete fast: every operation here is O(1)). *)
let test_cache_churn () =
  let c = Cache.create ~capacity:64 () in
  for i = 0 to 9_999 do
    let key = i mod 200 in
    (match Cache.find c key with
    | Some _ -> ()
    | None -> Cache.insert c key (Page.of_string (string_of_int key)));
    if i mod 17 = 0 then Cache.invalidate c ((i * 7) mod 200)
  done;
  check Alcotest.bool "bounded" true (Cache.length c <= 64);
  check Alcotest.int "list mirrors table" (Cache.length c)
    (List.length (Cache.keys_mru c));
  check Alcotest.int "accounting closes" 10_000 (Cache.hits c + Cache.misses c)

let () =
  Alcotest.run "storage"
    [
      ( "page",
        [
          Alcotest.test_case "u32 codec" `Quick test_page_codec;
          Alcotest.test_case "of_string" `Quick test_page_of_string;
        ] );
      ( "disk",
        [
          Alcotest.test_case "alloc/free" `Quick test_disk_alloc_free;
          Alcotest.test_case "full" `Quick test_disk_full;
          Alcotest.test_case "read/write" `Quick test_disk_rw;
        ] );
      ( "pack",
        [
          Alcotest.test_case "inode space partition" `Quick test_pack_alloc_ino_partitioned;
          Alcotest.test_case "small file" `Quick test_pack_small_file_roundtrip;
          Alcotest.test_case "indirect pages" `Quick test_pack_large_file_indirect;
          Alcotest.test_case "remove frees" `Quick test_pack_remove_frees_pages;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "commit replaces" `Quick test_shadow_commit_replaces;
          Alcotest.test_case "abort restores" `Quick test_shadow_abort_restores;
          Alcotest.test_case "partial patch" `Quick test_shadow_partial_page_patch;
          Alcotest.test_case "shadow reuse in place" `Quick test_shadow_page_reused_in_place;
          Alcotest.test_case "crash before switch" `Quick test_shadow_crash_before_switch;
          Alcotest.test_case "delete mark" `Quick test_shadow_delete_mark;
          Alcotest.test_case "modified pages" `Quick test_shadow_modified_lpages;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "clean pack" `Quick test_fsck_clean_pack;
          Alcotest.test_case "orphans" `Quick test_fsck_detects_orphans;
          Alcotest.test_case "double allocation" `Quick test_fsck_detects_double_allocation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidate_if" `Quick test_cache_invalidate_if;
          Alcotest.test_case "lru order" `Quick test_cache_lru_order;
          Alcotest.test_case "eviction counters" `Quick test_cache_eviction_counters;
          Alcotest.test_case "notify policy" `Quick test_cache_notify_policy;
          Alcotest.test_case "churn consistency" `Quick test_cache_churn;
        ] );
    ]
