(* File striping across storage sites (scale-out storage).

   A file whose latest version lives at several packs can be opened with a
   stripe map: logical page p is served by stripes.(p mod width). These
   tests pin the three load-bearing properties: stripe_width = 1 (and any
   world where striping cannot engage) is byte-identical to the classic
   protocol; striped reads and writes move the right bytes; and failures
   degrade a striped open back to the classic single-SS protocol instead
   of failing it. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Us = Locus_core.Us
module Stats = Sim.Stats

let check = Alcotest.check

let page = 1024

(* Distinct, page-aligned content: page p of [body tag pages] is a run of
   one letter, so a misrouted stripe read shows up as a content diff. *)
let body tag pages =
  String.init (pages * page) (fun i ->
      Char.chr (Char.code 'a' + ((i / page) + tag) mod 26))

let make_world ?(n_sites = 5) ?(width = 3) ~packs () =
  let base = World.default_config ~n_sites () in
  let config =
    {
      base with
      World.kernel_config =
        { base.World.kernel_config with K.stripe_width = width };
      filegroups = [ { World.fg = 0; pack_sites = packs; mount_path = None } ];
    }
  in
  let w = World.create ~config () in
  World.mount_filegroups w;
  w

(* Replicate the file's latest version at every pack site so the CSS sees
   several latest-copy holders (the precondition for a stripe grant). *)
let seed_file w ~from ~path ~contents =
  let k = World.kernel w from and p = World.proc w from in
  Kernel.set_ncopies p 3;
  ignore (Kernel.creat k p path);
  Kernel.write_file k p path contents;
  ignore (World.settle w)

(* ---- ablation: the stripe machinery is free when it cannot engage ---- *)

(* With a single pack there is never more than one latest-copy holder, so
   no stripe map is ever granted; a width-4 world must then produce
   exactly the same message count and byte count as a width-1 world.
   Together with the width-1 guards in the CSS/US (stripe paths are never
   entered at width 1), this pins "stripe_width = 1 reproduces the classic
   protocol exactly" — the tier-1 message-count pins all run at width 1. *)
let run_classic_workload width =
  let w = make_world ~n_sites:4 ~width ~packs:[ 0 ] () in
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  ignore (Kernel.creat k2 p2 "/data");
  Kernel.write_file k2 p2 "/data" (body 1 8);
  ignore (World.settle w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "workload content" (body 1 8)
    (Kernel.read_file k3 p3 "/data");
  Kernel.append_file k3 p3 "/data" "tail";
  ignore (World.settle w);
  let s = World.stats w in
  (Stats.get s "net.msg", Stats.get s "net.bytes")

let test_width_is_free_when_not_engaged () =
  let m1, b1 = run_classic_workload 1 in
  let m4, b4 = run_classic_workload 4 in
  check Alcotest.int "identical message count" m1 m4;
  check Alcotest.int "identical byte count" b1 b4;
  check Alcotest.bool "workload did use the network" true (m1 > 0)

(* ---- striped reads ---- *)

let test_striped_read () =
  let w = make_world ~packs:[ 0; 1; 2 ] () in
  let contents = body 3 24 in
  seed_file w ~from:3 ~path:"/big" ~contents;
  (* Site 4 stores no pack, so its open cannot be served locally and the
     CSS hands out a stripe map over the three latest-copy holders. *)
  let k4 = World.kernel w 4 and p4 = World.proc w 4 in
  let gf = Kernel.resolve k4 p4 "/big" in
  let o = Us.open_gf k4 gf Proto.Mode_read in
  check Alcotest.int "stripe map spans the latest holders" 3
    (List.length o.K.o_stripes);
  check Alcotest.bool "primary heads the map" true
    (K.Site.equal o.K.o_ss (List.hd o.K.o_stripes));
  let got = Us.read_all k4 o in
  Us.close k4 o;
  check Alcotest.string "striped read content" contents got;
  check Alcotest.bool "pages fetched via the stripe fan-out" true
    (Stats.get (World.stats w) "us.stripe.read" > 0)

(* ---- striped writes: scattered sessions, one commit ---- *)

let test_striped_write_commit () =
  let w = make_world ~packs:[ 0; 1; 2 ] () in
  seed_file w ~from:3 ~path:"/big" ~contents:(body 3 24);
  let s = World.stats w in
  let before = Stats.snapshot s in
  (* A fresh modify open from the packless site sees three latest holders,
     no readers and no writer: the session is striped, each page travelling
     to its owner, and the commit collects the peers' pages at the primary
     before the single version-vector bump. *)
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  let v2 = body 7 24 in
  Kernel.write_file k3 p3 "/big" v2;
  check Alcotest.bool "commit collected the peer stripes" true
    (Stats.delta_of s before "net.msg.stripe.collect" >= 2);
  ignore (World.settle w);
  (* Every pack converged on the folded image. *)
  List.iter
    (fun site ->
      let k = World.kernel w site and p = World.proc w site in
      check Alcotest.string
        (Printf.sprintf "content at site %d" site)
        v2
        (Kernel.read_file k p "/big"))
    [ 0; 1; 2; 4 ]

(* ---- failure of a stripe peer degrades the open, mid-read ---- *)

let test_peer_crash_degrades_read () =
  let w = make_world ~packs:[ 0; 1; 2 ] () in
  let contents = body 5 64 in
  seed_file w ~from:3 ~path:"/big" ~contents;
  let k4 = World.kernel w 4 and p4 = World.proc w 4 in
  let gf = Kernel.resolve k4 p4 "/big" in
  let o = Us.open_gf k4 gf Proto.Mode_read in
  check Alcotest.int "striped" 3 (List.length o.K.o_stripes);
  (* Crash a stripe peer that is not the primary, without running failure
     detection: the US discovers the death mid-read, drops the map and
     retries through the classic single-SS protocol. *)
  let victim =
    List.find (fun st -> not (K.Site.equal st o.K.o_ss)) o.K.o_stripes
  in
  World.crash_site w victim;
  let got = Us.read_all k4 o in
  Us.close k4 o;
  check Alcotest.string "read survives peer crash" contents got;
  check Alcotest.bool "open degraded to classic" true
    (o.K.o_stripes = []);
  check Alcotest.bool "degrade counted" true
    (Stats.get (World.stats w) "us.stripe.degrade" > 0)

(* ---- partition and merge with a striped file ---- *)

let test_partition_merge_striped () =
  let w = make_world ~packs:[ 0; 1; 2 ] () in
  let v1 = body 5 24 in
  seed_file w ~from:3 ~path:"/big" ~contents:v1;
  let k4 = World.kernel w 4 and p4 = World.proc w 4 in
  let gf = Kernel.resolve k4 p4 "/big" in
  let o = Us.open_gf k4 gf Proto.Mode_read in
  check Alcotest.int "striped before partition" 3 (List.length o.K.o_stripes);
  (* Stripe holder 2 leaves; the partition sweep degrades or reopens the
     striped open, and the read still answers v1. *)
  ignore (World.partition w [ [ 0; 1; 3; 4 ]; [ 2 ] ]);
  let got = Us.read_all k4 o in
  Us.close k4 o;
  check Alcotest.string "read in partition" v1 got;
  (* Update in the majority partition, then merge. *)
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  let v2 = body 9 24 in
  Kernel.write_file k0 p0 "/big" v2;
  ignore (World.settle w);
  ignore (World.heal_and_merge w);
  ignore (World.settle w);
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "merge converged at the isolated pack" v2
    (Kernel.read_file k2 p2 "/big");
  (* After the merge the holders are plural again: a fresh open from the
     packless site stripes once more. *)
  let s = World.stats w in
  let before = Stats.snapshot s in
  check Alcotest.string "fresh striped read after merge" v2
    (Kernel.read_file k4 p4 "/big");
  check Alcotest.bool "striping re-engaged" true
    (Stats.delta_of s before "us.stripe.read" > 0)

let () =
  Alcotest.run "stripe"
    [
      ( "ablation",
        [
          Alcotest.test_case "width flag free when not engaged" `Quick
            test_width_is_free_when_not_engaged;
        ] );
      ( "striped-io",
        [
          Alcotest.test_case "striped read" `Quick test_striped_read;
          Alcotest.test_case "striped write + commit" `Quick
            test_striped_write_commit;
        ] );
      ( "failure",
        [
          Alcotest.test_case "peer crash degrades read" `Quick
            test_peer_crash_degrades_read;
          Alcotest.test_case "partition + merge" `Quick
            test_partition_merge_striped;
        ] );
    ]
