(* Kernel-level tests: the open protocol and its optimizations, reads and
   writes through the three logical sites, commit/abort semantics, pathname
   searching with hidden directories, and the name-space operations. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module Pathname = Locus_core.Pathname
module K = Locus_core.Ktypes
module Stats = Sim.Stats
module Dir = Catalog.Dir
module Inode = Storage.Inode

let check = Alcotest.check

(* World with packs only at sites 0 and 1, so sites 2..4 are pure using
   sites — forcing genuinely remote opens. *)
let asym_world () =
  let base = World.default_config ~n_sites:5 () in
  let config =
    { base with
      World.filegroups = [ { World.fg = 0; pack_sites = [ 0; 1 ]; mount_path = None } ]
    }
  in
  World.create ~config ()

let full_world () = World.create ~config:(World.default_config ~n_sites:5 ()) ()

(* Like [asym_world], with the bulk-transfer layer disabled: for the tests
   that assert the exact shape of the one-page-per-RTT read protocol
   (per-page readahead counts, per-page guesses, injected single-page
   responses). Bulk behavior has its own suite in test_bulk.ml. *)
let asym_world_nobulk () =
  let base = World.default_config ~n_sites:5 () in
  let config =
    { base with
      World.filegroups = [ { World.fg = 0; pack_sites = [ 0; 1 ]; mount_path = None } ];
      World.kernel_config = { base.World.kernel_config with K.bulk_window = 1 }
    }
  in
  World.create ~config ()

let stats w = World.stats w

let msg_delta w snap = Stats.delta_of (stats w) snap "net.msg"

let gf_of k path =
  Pathname.resolve_from k ~cwd:(Catalog.Mount.root k.K.mount) ~context:[] path

(* ---- open protocol message counts (Figure 2) ---- *)

(* All roles collocated: an open costs no messages at all. *)
let test_open_all_local () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/f");
  Kernel.write_file k0 p0 "/f" "x";
  ignore (World.settle w);
  let snap = Stats.snapshot (stats w) in
  let gf = gf_of k0 "/f" in
  let o = Us.open_gf k0 gf Proto.Mode_read in
  check Alcotest.int "local open needs no messages" 0 (msg_delta w snap);
  Us.close k0 o

(* Fully remote: US=2, CSS=0, SS=1 — the general protocol is 4 messages
   (open request, storage request, storage response, open response). *)
let test_open_fully_remote_four_messages () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/f");
  Kernel.write_file k0 p0 "/f" "x";
  ignore (World.settle w);
  let k2 = World.kernel w 2 in
  let gf = gf_of k2 "/f" in
  (* Drop the CSS's own copy from the bookkeeping so it must poll site 1. *)
  let css = World.kernel w 0 in
  (match Locus_core.Css.find_file css 0 gf.Catalog.Gfile.ino with
  | Some f -> f.K.site_vv <- Net.Site.Map.remove 0 f.K.site_vv
  | None -> Alcotest.fail "css state missing");
  let snap = Stats.snapshot (stats w) in
  let o = Us.open_gf k2 gf Proto.Mode_read in
  check Alcotest.int "general open = 4 messages" 4 (msg_delta w snap);
  Us.close k2 o

(* US = SS optimization: the US stores the latest copy; two messages
   (request and response to the CSS), no storage poll. *)
let test_open_us_is_ss_two_messages () =
  let w = asym_world () in
  let k1 = World.kernel w 1 and p1 = World.proc w 1 in
  ignore (Kernel.creat k1 p1 "/g");
  Kernel.write_file k1 p1 "/g" "y";
  ignore (World.settle w);
  let gf = gf_of k1 "/g" in
  let snap = Stats.snapshot (stats w) in
  let o = Us.open_gf k1 gf Proto.Mode_read in
  check Alcotest.int "US-current open = 2 messages" 2 (msg_delta w snap);
  check Alcotest.bool "US serves itself" true (Net.Site.equal o.K.o_ss 1);
  Us.close k1 o

(* CSS = SS optimization: CSS stores the latest version and picks itself
   without message overhead — still 2 messages total from the US. *)
let test_open_css_is_ss () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/h");
  Kernel.write_file k0 p0 "/h" "z";
  ignore (World.settle w);
  let k2 = World.kernel w 2 in
  let gf = gf_of k2 "/h" in
  let snap = Stats.snapshot (stats w) in
  let o = Us.open_gf k2 gf Proto.Mode_read in
  check Alcotest.int "CSS-as-SS open = 2 messages" 2 (msg_delta w snap);
  check Alcotest.bool "CSS serves" true (Net.Site.equal o.K.o_ss 0);
  Us.close k2 o

(* ---- read protocol ---- *)

let test_remote_read_two_messages_per_page () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/big");
  Kernel.write_file k0 p0 "/big" (String.make (3 * Storage.Page.size) 'q');
  ignore (World.settle w);
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/big" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  let snap = Stats.snapshot (stats w) in
  let data, _eof = Us.read_page k3 o 1 in
  check Alcotest.int "page read = request + response" 2 (msg_delta w snap);
  check Alcotest.int "full page" Storage.Page.size (String.length data);
  Us.close k3 o;
  ignore (World.settle w)

let test_readahead_fills_cache () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/seq");
  Kernel.write_file k0 p0 "/seq" (String.make (4 * Storage.Page.size) 's');
  ignore (World.settle w);
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/seq" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  let _ = Us.read_page k3 o 0 in
  let _ = Us.read_page k3 o 1 in
  ignore (World.settle w);
  check Alcotest.bool "readahead happened" true
    (Stats.get (stats w) "us.readahead" > 0);
  (* Page 2 was prefetched: reading it costs no messages. *)
  let snap = Stats.snapshot (stats w) in
  let _ = Us.read_page k3 o 2 in
  check Alcotest.int "prefetched page is free" 0 (msg_delta w snap);
  Us.close k3 o;
  ignore (World.settle w)

let test_cache_keyed_by_version () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/c");
  Kernel.write_file k0 p0 "/c" "old contents";
  ignore (World.settle w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "first read" "old contents" (Kernel.read_file k3 p3 "/c");
  Kernel.write_file k0 p0 "/c" "new contents";
  ignore (World.settle w);
  check Alcotest.string "fresh read after update" "new contents"
    (Kernel.read_file k3 p3 "/c")

(* Regression: a cache hit must extend the readahead window too. With the
   old code only misses scheduled readahead, so a sequential scan settled
   into miss/hit/miss/hit — every other page paid the network round trip. *)
let test_readahead_on_cache_hit () =
  let w = asym_world_nobulk () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/seq6");
  Kernel.write_file k0 p0 "/seq6" (String.make (6 * Storage.Page.size) 's');
  ignore (World.settle w);
  let k3 = World.kernel w 3 in
  let o = Us.open_gf k3 (gf_of k3 "/seq6") Proto.Mode_read in
  let _ = Us.read_page k3 o 0 in
  ignore (World.settle w);
  (* Every subsequent page was prefetched before we asked for it: no demand
     read may cost a message, no matter how deep the scan goes. *)
  for lpage = 1 to 5 do
    let snap = Stats.snapshot (stats w) in
    let _ = Us.read_page k3 o lpage in
    check Alcotest.int (Printf.sprintf "page %d served from cache" lpage) 0
      (msg_delta w snap);
    ignore (World.settle w)
  done;
  (* Pages 1..5 were each readahead targets exactly once (page 5 is eof). *)
  check Alcotest.int "readahead fired on every sequential page" 5
    (Stats.get (stats w) "us.readahead");
  Us.close k3 o;
  ignore (World.settle w)

(* Version-keyed pages survive close and serve a re-open of the unchanged
   version; a new committed version both misses naturally and has its stale
   entries dropped by the Commit_notify prefix invalidation. *)
let test_cross_open_cache_retention () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/warm");
  let body = String.make (2 * Storage.Page.size) 'w' in
  Kernel.write_file k0 p0 "/warm" body;
  ignore (World.settle w);
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/warm" in
  let o1 = Us.open_gf k3 gf Proto.Mode_read in
  check Alcotest.string "first open reads through" body (Us.read_all k3 o1);
  Us.close k3 o1;
  ignore (World.settle w);
  check Alcotest.bool "pages retained across close" true
    (Storage.Cache.length k3.K.us_cache > 0);
  let o2 = Us.open_gf k3 gf Proto.Mode_read in
  let snap = Stats.snapshot (stats w) in
  check Alcotest.string "re-open served warm" body (Us.read_all k3 o2);
  check Alcotest.int "no page traffic on re-open" 0 (msg_delta w snap);
  Us.close k3 o2;
  ignore (World.settle w);
  (* A new committed version must not be masked by the warm pages. *)
  Kernel.write_file k0 p0 "/warm" "fresh";
  ignore (World.settle w);
  let p3 = World.proc w 3 in
  check Alcotest.string "new version read through" "fresh"
    (Kernel.read_file k3 p3 "/warm");
  (* The Commit_notify handler drops every entry of the file that is not
     at the announced version, from both cache tiers. *)
  let vv = (Us.stat_gf k0 gf).Proto.i_vv in
  Storage.Cache.insert k3.K.us_cache (gf, 0, K.vv_key vv) (Storage.Page.of_string "cur");
  Storage.Cache.insert k3.K.us_cache (gf, 1, "stale-vv") (Storage.Page.of_string "old");
  Storage.Cache.insert k3.K.ss_cache (gf, 2, "stale-vv") (Storage.Page.of_string "old");
  let notify =
    Proto.Commit_notify
      { gf; vv; meta_only = false; modified = []; origin = 0; fresh = false;
        deleted = false; designate = false; replicas = [] }
  in
  ignore (k3.K.dispatch 0 notify);
  check Alcotest.bool "current version kept" true
    (Storage.Cache.mem k3.K.us_cache (gf, 0, K.vv_key vv));
  check Alcotest.bool "stale US entry dropped" false
    (Storage.Cache.mem k3.K.us_cache (gf, 1, "stale-vv"));
  check Alcotest.bool "stale SS entry dropped" false
    (Storage.Cache.mem k3.K.ss_cache (gf, 2, "stale-vv"))

(* Regression: a short mid-file page (a lying or sparse SS) used to stop
   the read_bytes loop, silently returning short data. It must read as
   zeroes to the page boundary and continue into the next page. *)
let test_read_bytes_zero_fills_short_page () =
  let w = asym_world_nobulk () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let ps = Storage.Page.size in
  ignore (Kernel.creat k0 p0 "/sparse");
  Kernel.write_file k0 p0 "/sparse"
    (String.make ps 'A' ^ String.make ps 'B' ^ String.make ps 'C');
  ignore (World.settle w);
  (* Serve page 1 short and non-eof; everything else takes the normal path. *)
  Net.Netsim.set_handler (World.net w) 0 (fun ~src req ->
      match req with
      | Proto.Read_page { lpage = 1; _ } -> Proto.R_page { data = "XY"; eof = false }
      | _ -> k0.K.dispatch src req);
  let k3 = World.kernel w 3 in
  let o = Us.open_gf k3 (gf_of k3 "/sparse") Proto.Mode_read in
  let data = Us.read_bytes k3 o ~off:0 ~len:(3 * ps) in
  check Alcotest.int "full length returned" (3 * ps) (String.length data);
  check Alcotest.string "page 0 intact" (String.make ps 'A') (String.sub data 0 ps);
  check Alcotest.string "short page prefix" "XY" (String.sub data ps 2);
  check Alcotest.string "zero fill to page boundary"
    (String.make (ps - 2) '\000')
    (String.sub data (ps + 2) (ps - 2));
  check Alcotest.string "next page reached" (String.make ps 'C')
    (String.sub data (2 * ps) ps);
  Us.close k3 o;
  ignore (World.settle w)

(* ---- write / commit / abort ---- *)

let test_commit_visibility () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/t");
  Kernel.write_file k0 p0 "/t" "committed";
  ignore (World.settle w);
  let k1 = World.kernel w 1 in
  let gf = gf_of k1 "/t" in
  let o = Us.open_gf k1 gf Proto.Mode_modify in
  Us.set_contents k1 o "uncommitted!";
  Us.abort k1 o;
  Us.close k1 o;
  ignore (World.settle w);
  check Alcotest.string "abort undoes" "committed" (Kernel.read_file k0 p0 "/t")

let test_single_writer_policy () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/lock");
  Kernel.write_file k0 p0 "/lock" "v";
  ignore (World.settle w);
  let gf = gf_of k0 "/lock" in
  let o1 = Us.open_gf k0 gf Proto.Mode_modify in
  let k2 = World.kernel w 2 in
  (match Us.open_gf k2 (gf_of k2 "/lock") Proto.Mode_modify with
  | _ -> Alcotest.fail "second writer should be refused"
  | exception K.Error (Proto.Ebusy, _) -> ());
  let o2 = Us.open_gf k2 (gf_of k2 "/lock") Proto.Mode_read in
  Us.close k2 o2;
  Us.close k0 o1;
  ignore (World.settle w);
  let o3 = Us.open_gf k2 (gf_of k2 "/lock") Proto.Mode_modify in
  Us.close k2 o3;
  ignore (World.settle w)

let test_concurrent_read_during_write_sees_updates () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/live");
  Kernel.write_file k0 p0 "/live" "aaaa";
  ignore (World.settle w);
  let gf = gf_of k0 "/live" in
  let ow = Us.open_gf k0 gf Proto.Mode_modify in
  Us.write k0 ow ~off:0 "bbbb";
  (* A reader opening now is directed to the single SS and sees the
     uncommitted write (Unix shared-file semantics, section 3.2). *)
  let k2 = World.kernel w 2 in
  let orr = Us.open_gf k2 (gf_of k2 "/live") Proto.Mode_read in
  let data, _ = Us.read_page k2 orr 0 in
  check Alcotest.string "reader sees writer's data" "bbbb" (String.sub data 0 4);
  Us.close k2 orr;
  Us.commit k0 ow;
  Us.close k0 ow;
  ignore (World.settle w)

(* ---- pathname searching ---- *)

let test_nested_paths () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/a");
  ignore (Kernel.mkdir k0 p0 "/a/b");
  ignore (Kernel.mkdir k0 p0 "/a/b/c");
  ignore (Kernel.creat k0 p0 "/a/b/c/deep.txt");
  Kernel.write_file k0 p0 "/a/b/c/deep.txt" "treasure";
  ignore (World.settle w);
  let k4 = World.kernel w 4 and p4 = World.proc w 4 in
  check Alcotest.string "deep path from remote site" "treasure"
    (Kernel.read_file k4 p4 "/a/b/c/deep.txt");
  check Alcotest.string "dots" "treasure"
    (Kernel.read_file k4 p4 "/a/./b/c/../c/deep.txt");
  Kernel.chdir k4 p4 "/a/b";
  check Alcotest.string "relative" "treasure" (Kernel.read_file k4 p4 "c/deep.txt")

let test_enoent_and_enotdir () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/plain");
  Kernel.write_file k0 p0 "/plain" "x";
  ignore (World.settle w);
  (match Kernel.read_file k0 p0 "/missing" with
  | _ -> Alcotest.fail "expected ENOENT"
  | exception K.Error (Proto.Enoent, _) -> ());
  match Kernel.read_file k0 p0 "/plain/sub" with
  | _ -> Alcotest.fail "expected ENOTDIR"
  | exception K.Error (Proto.Enotdir, _) -> ()

(* ---- hidden directories (section 2.4.1) ---- *)

let setup_hidden w =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/bin");
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/bin/who");
  ignore (Kernel.creat k0 p0 "/bin/who/@vax");
  Kernel.write_file k0 p0 "/bin/who/@vax" "vax load module";
  ignore (Kernel.creat k0 p0 "/bin/who/@pdp11");
  Kernel.write_file k0 p0 "/bin/who/@pdp11" "pdp11 load module";
  ignore (World.settle w)

let hidden_world () =
  let base = World.default_config ~n_sites:4 () in
  let config =
    { base with World.machine_type = (fun s -> if s < 2 then "vax" else "pdp11") }
  in
  World.create ~config ()

let test_hidden_dir_context_selection () =
  let w = hidden_world () in
  setup_hidden w;
  let read_at site =
    Kernel.read_file (World.kernel w site) (World.proc w site) "/bin/who"
  in
  check Alcotest.string "vax site" "vax load module" (read_at 0);
  check Alcotest.string "pdp11 site" "pdp11 load module" (read_at 3)

let test_hidden_dir_escape () =
  let w = hidden_world () in
  setup_hidden w;
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  check Alcotest.string "escape to pdp11 from a vax site" "pdp11 load module"
    (Kernel.read_file k0 p0 "/bin/who/@pdp11");
  let entries = Kernel.readdir k0 p0 "/bin/who" in
  let names = List.map (fun (e : Dir.entry) -> e.Dir.name) entries in
  check Alcotest.(list string) "hidden entries visible via escape"
    [ "pdp11"; "vax" ] names

let test_hidden_dir_no_context_entry () =
  let w = hidden_world () in
  setup_hidden w;
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_context p0 [ "cray" ];
  match Kernel.read_file k0 p0 "/bin/who" with
  | _ -> Alcotest.fail "no entry for context should fail"
  | exception K.Error (Proto.Enoent, _) -> ()

(* ---- name-space operations ---- *)

let test_unlink () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/gone");
  Kernel.write_file k0 p0 "/gone" "bye";
  ignore (World.settle w);
  Kernel.unlink k0 p0 "/gone";
  ignore (World.settle w);
  (match Kernel.read_file k0 p0 "/gone" with
  | _ -> Alcotest.fail "unlinked file readable"
  | exception K.Error (Proto.Enoent, _) -> ());
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  match Kernel.read_file k3 p3 "/gone" with
  | _ -> Alcotest.fail "unlinked file readable remotely"
  | exception K.Error (Proto.Enoent, _) -> ()

let test_hard_link () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/orig");
  Kernel.write_file k0 p0 "/orig" "shared data";
  ignore (World.settle w);
  Kernel.link k0 p0 ~target:"/orig" ~path:"/alias";
  ignore (World.settle w);
  check Alcotest.string "alias reads" "shared data" (Kernel.read_file k0 p0 "/alias");
  let info = Kernel.stat k0 p0 "/alias" in
  check Alcotest.int "nlink" 2 info.Proto.i_nlink;
  Kernel.unlink k0 p0 "/orig";
  ignore (World.settle w);
  check Alcotest.string "alias survives" "shared data"
    (Kernel.read_file k0 p0 "/alias")

let test_rename () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/d1");
  ignore (Kernel.mkdir k0 p0 "/d2");
  ignore (Kernel.creat k0 p0 "/d1/file");
  Kernel.write_file k0 p0 "/d1/file" "moving";
  ignore (World.settle w);
  Kernel.rename k0 p0 ~from_path:"/d1/file" ~to_path:"/d2/renamed";
  ignore (World.settle w);
  check Alcotest.string "new name works" "moving" (Kernel.read_file k0 p0 "/d2/renamed");
  match Kernel.read_file k0 p0 "/d1/file" with
  | _ -> Alcotest.fail "old name should be gone"
  | exception K.Error (Proto.Enoent, _) -> ()

let test_readdir () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/list");
  ignore (Kernel.creat k0 p0 "/list/a");
  ignore (Kernel.creat k0 p0 "/list/b");
  ignore (World.settle w);
  let names =
    Kernel.readdir k0 p0 "/list" |> List.map (fun (e : Dir.entry) -> e.Dir.name)
  in
  check Alcotest.(list string) "entries" [ "."; ".."; "a"; "b" ] names

let test_create_eexist () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/dup");
  ignore (World.settle w);
  match Kernel.creat k0 p0 "/dup" with
  | _ -> Alcotest.fail "duplicate create should fail"
  | exception K.Error (Proto.Eexist, _) -> ()

(* ---- named pipes ---- *)

let test_named_pipe_across_sites () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkfifo k0 p0 "/fifo");
  ignore (World.settle w);
  Kernel.pipe_write k0 p0 "/fifo" "first ";
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  Kernel.pipe_write k3 p3 "/fifo" "second";
  check Alcotest.string "fifo order across sites" "first second"
    (Kernel.pipe_read k3 p3 "/fifo" ~max:100);
  check Alcotest.string "drained" "" (Kernel.pipe_read k0 p0 "/fifo" ~max:100)

(* ---- the reopen race of the close protocol (2.3.3 footnote) ---- *)

(* "The US could attempt to reopen the file before the CSS knew that the
   file was closed. Thus the responses were added." With the three-message
   close, an immediate reopen-for-modification always succeeds. *)
let test_close_reopen_race_free () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/racy");
  Kernel.write_file k0 p0 "/racy" "r";
  ignore (World.settle w);
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/racy" in
  for _ = 1 to 10 do
    (* Open for modification and close, then IMMEDIATELY reopen without
       letting any background events run: the close must have reached the
       CSS synchronously or this open bounces with EBUSY. *)
    let o = Us.open_gf k3 gf Proto.Mode_modify in
    Us.close k3 o
  done;
  (* And a different site can take the write lock right away too. *)
  let k4 = World.kernel w 4 in
  let o = Us.open_gf k4 (gf_of k4 "/racy") Proto.Mode_modify in
  Us.close k4 o;
  ignore (World.settle w)

(* A site that is not the CSS answers opens with ESTALE so the US can
   refresh its filegroup knowledge. *)
let test_stale_css_detected () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/s");
  ignore (World.settle w);
  let gf = gf_of k0 "/s" in
  let k3 = World.kernel w 3 in
  match
    k3.K.dispatch 0 (Proto.Open_req { gf; mode = Proto.Mode_read; us_vv = None; shared = false })
  with
  | Proto.R_err Proto.Estale -> ()
  | _ -> Alcotest.fail "non-CSS site should answer ESTALE"

(* ---- the incore-inode guess (2.3.3) ---- *)

let test_read_guess_hits () =
  let w = asym_world_nobulk () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/guessed");
  Kernel.write_file k0 p0 "/guessed" (String.make (4 * Storage.Page.size) 'g');
  ignore (World.settle w);
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/guessed" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  let snap = Stats.snapshot (stats w) in
  for lpage = 0 to 3 do
    ignore (Us.read_page k3 o lpage)
  done;
  (* Every remote read carried a valid guess: the SS located the incore
     inode without a lookup. *)
  check Alcotest.bool "guess hits" true
    (Stats.delta_of (stats w) snap "ss.guess.hit" >= 4);
  check Alcotest.int "no guess misses" 0 (Stats.delta_of (stats w) snap "ss.guess.miss");
  Us.close k3 o;
  ignore (World.settle w)

(* ---- mailbox convenience ---- *)

let test_mailbox_deliver_read () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/mail");
  ignore (Kernel.creat ~ftype:Inode.Mailbox k0 p0 "/mail/root");
  ignore (World.settle w);
  Kernel.mailbox_deliver k0 ~path:"/mail/root" ~from:"system" ~body:"welcome";
  Kernel.mailbox_deliver (World.kernel w 2) ~path:"/mail/root" ~from:"s2" ~body:"hi";
  ignore (World.settle w);
  let msgs = Kernel.mailbox_read k0 p0 "/mail/root" in
  check Alcotest.int "two messages" 2 (List.length msgs)

let () =
  Alcotest.run "core"
    [
      ( "open-protocol",
        [
          Alcotest.test_case "all roles local" `Quick test_open_all_local;
          Alcotest.test_case "fully remote = 4 msgs" `Quick
            test_open_fully_remote_four_messages;
          Alcotest.test_case "US-is-SS optimization" `Quick
            test_open_us_is_ss_two_messages;
          Alcotest.test_case "CSS-is-SS optimization" `Quick test_open_css_is_ss;
        ] );
      ( "read",
        [
          Alcotest.test_case "2 msgs per remote page" `Quick
            test_remote_read_two_messages_per_page;
          Alcotest.test_case "readahead" `Quick test_readahead_fills_cache;
          Alcotest.test_case "cache keyed by version" `Quick test_cache_keyed_by_version;
          Alcotest.test_case "readahead on cache hit" `Quick test_readahead_on_cache_hit;
          Alcotest.test_case "cross-open retention" `Quick test_cross_open_cache_retention;
          Alcotest.test_case "read_bytes zero fill" `Quick
            test_read_bytes_zero_fills_short_page;
        ] );
      ( "write-commit",
        [
          Alcotest.test_case "abort undoes" `Quick test_commit_visibility;
          Alcotest.test_case "single writer" `Quick test_single_writer_policy;
          Alcotest.test_case "reader sees live writes" `Quick
            test_concurrent_read_during_write_sees_updates;
        ] );
      ( "pathname",
        [
          Alcotest.test_case "nested paths" `Quick test_nested_paths;
          Alcotest.test_case "errors" `Quick test_enoent_and_enotdir;
          Alcotest.test_case "hidden dir context" `Quick test_hidden_dir_context_selection;
          Alcotest.test_case "hidden dir escape" `Quick test_hidden_dir_escape;
          Alcotest.test_case "hidden dir miss" `Quick test_hidden_dir_no_context_entry;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "hard link" `Quick test_hard_link;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "readdir" `Quick test_readdir;
          Alcotest.test_case "create EEXIST" `Quick test_create_eexist;
        ] );
      ( "close-protocol",
        [
          Alcotest.test_case "reopen race free" `Quick test_close_reopen_race_free;
          Alcotest.test_case "stale css" `Quick test_stale_css_detected;
        ] );
      ( "guess",
        [ Alcotest.test_case "read guess hits" `Quick test_read_guess_hits ] );
      ( "ipc-objects",
        [
          Alcotest.test_case "named pipe" `Quick test_named_pipe_across_sites;
          Alcotest.test_case "mailbox" `Quick test_mailbox_deliver_read;
        ] );
    ]
