(* Tests of the bulk page-transfer layer: windowed streaming reads,
   write-behind batching, and batched propagation pulls. The window=1
   configuration must reproduce the one-page-per-RTT protocol exactly;
   that ablation is checked here too. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module Pathname = Locus_core.Pathname
module Process = Locus_core.Process
module K = Locus_core.Ktypes
module Stats = Sim.Stats
module Engine = Sim.Engine
module Page = Storage.Page

let check = Alcotest.check

(* Packs only at sites 0 and 1, so sites 2..4 are pure using sites and
   every transfer in these tests really crosses the network. *)
let world ?(window = 8) () =
  let base = World.default_config ~n_sites:5 () in
  let config =
    { base with
      World.filegroups = [ { World.fg = 0; pack_sites = [ 0; 1 ]; mount_path = None } ];
      World.kernel_config = { base.World.kernel_config with K.bulk_window = window }
    }
  in
  World.create ~config ()

let gf_of k path =
  Pathname.resolve_from k ~cwd:(Catalog.Mount.root k.K.mount) ~context:[] path

(* Per-page distinctive bytes so a misplaced or misordered page shows up
   as a content mismatch, not just a length error. *)
let body_of_pages ?(tail = 0) pages =
  String.init ((pages * Page.size) + tail) (fun i ->
      Char.chr (Char.code 'a' + (i / Page.size mod 26)))

let mk_file w ~path ~body =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  ignore (Kernel.creat k0 p0 path);
  Kernel.write_file k0 p0 path body;
  ignore (World.settle w)

(* Sequential page-by-page read with the engine drained between pages,
   so scheduled window fetches land like overlapped streaming I/O. *)
let read_streamed w k o ~pages =
  let buf = Buffer.create (pages * Page.size) in
  for lpage = 0 to pages - 1 do
    let data, _ = Us.read_page k o lpage in
    Buffer.add_string buf data;
    ignore (Engine.run_until_idle (World.engine w))
  done;
  Buffer.contents buf

(* ---- batch boundaries ---- *)

(* A file that ends mid-window with a short last page: the batch must be
   trimmed at eof and the short page returned at its true length. *)
let test_batch_ends_mid_window () =
  let w = world ~window:8 () in
  let body = body_of_pages 5 ~tail:100 in
  mk_file w ~path:"/short" ~body;
  let k2 = World.kernel w 2 in
  let o = Us.open_gf k2 (gf_of k2 "/short") Proto.Mode_read in
  let got = read_streamed w k2 o ~pages:6 in
  check Alcotest.string "6-page body with 100-byte tail intact" body got;
  (* The last page reports eof and its short length. *)
  let data, eof = Us.read_page k2 o 5 in
  check Alcotest.int "short last page length" 100 (String.length data);
  check Alcotest.bool "eof on last page" true eof;
  (* Only the pages that exist were ever transferred in bulk. *)
  let bulk_pages = Stats.get (World.stats w) "us.bulk.read.pages" in
  check Alcotest.bool "no pages fetched past eof" true (bulk_pages <= 6);
  check Alcotest.bool "batched fetches used" true
    (Stats.get (World.stats w) "us.bulk.read" >= 1);
  Us.close k2 o

(* ---- window growth and reset on seek ---- *)

let test_window_resets_on_seek () =
  let w = world ~window:8 () in
  mk_file w ~path:"/big" ~body:(body_of_pages 32);
  let k2 = World.kernel w 2 in
  let o = Us.open_gf k2 (gf_of k2 "/big") Proto.Mode_read in
  for lpage = 0 to 5 do
    ignore (Us.read_page k2 o lpage);
    ignore (Engine.run_until_idle (World.engine w))
  done;
  check Alcotest.bool "sequential reads grew the window" true (o.K.o_window > 1);
  (* A seek: the streaming window collapses and the frontier follows. *)
  let data, _ = Us.read_page k2 o 20 in
  check Alcotest.int "window back to one after seek" 1 o.K.o_window;
  check Alcotest.bool "frontier moved to the seek point" true
    (o.K.o_ra_frontier >= 21);
  check Alcotest.string "seek target page correct"
    (String.make Page.size (Char.chr (Char.code 'a' + 20))) data;
  (* Resuming sequentially from the seek point grows the window again. *)
  ignore (Us.read_page k2 o 21);
  ignore (Us.read_page k2 o 22);
  check Alcotest.bool "window regrows after resumed sequential run" true
    (o.K.o_window > 1);
  Us.close k2 o

(* ---- ablation: window=1 is the old one-page protocol ---- *)

let test_window_one_is_unbatched () =
  let pages = 8 in
  let body = body_of_pages pages in
  let run window =
    let w = world ~window () in
    mk_file w ~path:"/abl" ~body;
    let k2 = World.kernel w 2 in
    let o = Us.open_gf k2 (gf_of k2 "/abl") Proto.Mode_read in
    let snap = Stats.snapshot (World.stats w) in
    let got = read_streamed w k2 o ~pages in
    let msgs = Stats.delta_of (World.stats w) snap "net.msg.read" in
    Us.close k2 o;
    (got, msgs, Stats.get (World.stats w) "us.bulk.read")
  in
  let got1, msgs1, bulk1 = run 1 in
  let got8, msgs8, bulk8 = run 8 in
  check Alcotest.string "window 1 reads the right bytes" body got1;
  check Alcotest.string "window 8 reads identical bytes" body got8;
  (* With window=1 the bulk RPC is never used: every fetch is a plain
     Read_page, exactly the pre-bulk protocol (2 messages per page,
     demand or readahead alike). *)
  check Alcotest.int "no bulk RPCs at window 1" 0 bulk1;
  check Alcotest.int "one-page protocol costs 2 msgs/page" (2 * pages) msgs1;
  check Alcotest.bool "window 8 uses bulk RPCs" true (bulk8 >= 1);
  check Alcotest.bool "window 8 needs fewer messages" true (msgs8 < msgs1)

(* ---- streaming read message savings ---- *)

let test_streaming_read_savings () =
  let pages = 32 in
  let body = body_of_pages pages in
  let run window =
    let w = world ~window () in
    mk_file w ~path:"/seq" ~body;
    let k2 = World.kernel w 2 in
    let o = Us.open_gf k2 (gf_of k2 "/seq") Proto.Mode_read in
    let snap = Stats.snapshot (World.stats w) in
    let got = read_streamed w k2 o ~pages in
    let msgs = Stats.delta_of (World.stats w) snap "net.msg.read" in
    Us.close k2 o;
    check Alcotest.string
      (Printf.sprintf "window %d contents" window)
      body got;
    msgs
  in
  let msgs1 = run 1 and msgs8 = run 8 in
  check Alcotest.bool
    (Printf.sprintf "sequential 32-page read: %d msgs at w1 vs %d at w8"
       msgs1 msgs8)
    true
    (msgs1 >= 4 * msgs8)

(* ---- write-behind flush points ---- *)

(* Small adjacent writes coalesce in the write-behind buffer (no traffic),
   and commit flushes them before the commit itself goes out. *)
let test_write_behind_flushes_before_commit () =
  let w = world ~window:8 () in
  mk_file w ~path:"/wb" ~body:"";
  let k2 = World.kernel w 2 in
  let o = Us.open_gf k2 (gf_of k2 "/wb") Proto.Mode_modify in
  let snap = Stats.snapshot (World.stats w) in
  Us.write k2 o ~off:0 "one ";
  Us.write k2 o ~off:4 "two ";
  Us.write k2 o ~off:8 "three";
  check Alcotest.int "adjacent writes buffered, no traffic yet" 0
    (Stats.delta_of (World.stats w) snap "net.msg.write");
  Us.commit k2 o;
  check Alcotest.bool "commit pushed the buffered run first" true
    (Stats.delta_of (World.stats w) snap "net.msg.write" >= 2);
  check Alcotest.bool "run went out as one bulk write" true
    (Stats.get (World.stats w) "us.bulk.write" >= 1);
  Us.close k2 o;
  ignore (World.settle w);
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  check Alcotest.string "committed bytes visible at the SS" "one two three"
    (Kernel.read_file k0 p0 "/wb")

(* Reading back your own uncommitted write forces the buffer out first:
   read-your-writes holds across the write-behind layer. *)
let test_write_behind_flushes_on_read_back () =
  let w = world ~window:8 () in
  mk_file w ~path:"/ryw" ~body:(String.make Page.size 'x');
  let k2 = World.kernel w 2 in
  let o = Us.open_gf k2 (gf_of k2 "/ryw") Proto.Mode_modify in
  Us.write k2 o ~off:0 "HELLO";
  let data, _ = Us.read_page k2 o 0 in
  check Alcotest.string "read sees the buffered write" "HELLO"
    (String.sub data 0 5);
  Us.abort k2 o;
  Us.close k2 o

(* A shared file descriptor hands its offset token to another site: the
   holder must flush buffered writes before yielding, or the other site's
   operations would run against stale bytes. *)
let test_write_behind_flushes_on_token_release () =
  let w = world ~window:8 () in
  mk_file w ~path:"/log" ~body:"";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  let fd = Kernel.open_path k2 p2 "/log" Proto.Mode_modify in
  Kernel.write_fd k2 p2 fd "one ";
  Kernel.set_advice p2 (Some 3);
  let pid, _ = Process.fork k2 p2 in
  let k3 = World.kernel w 3 in
  let child = Process.get_proc k3 pid in
  (* The child's write pulls the offset token from site 2, which must
     flush "one " on the way out so the child appends after it. *)
  Kernel.write_fd k3 child fd "two ";
  Kernel.write_fd k2 p2 fd "three";
  Kernel.commit_fd k2 p2 fd;
  Kernel.close_fd k2 p2 fd;
  Kernel.close_fd k3 child fd;
  ignore (World.settle w);
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  check Alcotest.string "writes land in token order across sites"
    "one two three"
    (Kernel.read_file k0 p0 "/log")

(* ---- batched propagation pulls ---- *)

(* A ten-page patch to a replicated file is pulled in window-sized runs:
   ceil(10/8) = 2 round trips, not 10. *)
let test_propagation_pulls_in_batches () =
  let w = world ~window:8 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/repl");
  Kernel.write_file k0 p0 "/repl" (body_of_pages 12);
  ignore (World.settle w);
  (* Patch ten consecutive pages in place. *)
  let patch = String.make (10 * Page.size) 'Z' in
  let o = Us.open_gf k0 (gf_of k0 "/repl") Proto.Mode_modify in
  Us.write k0 o ~off:0 patch;
  Us.commit k0 o;
  Us.close k0 o;
  let snap = Stats.snapshot (World.stats w) in
  ignore (World.settle w);
  let msgs = Stats.delta_of (World.stats w) snap "net.msg.read" in
  check Alcotest.int "ten pages pulled in two batched round trips" 4 msgs;
  check Alcotest.bool "propagation used bulk pulls" true
    (Stats.get (World.stats w) "prop.bulk" >= 1);
  let k1 = World.kernel w 1 and p1 = World.proc w 1 in
  let got = Kernel.read_file k1 p1 "/repl" in
  check Alcotest.string "replica matches after batched pull"
    (patch ^ String.sub (body_of_pages 12) (10 * Page.size) (2 * Page.size))
    got

(* Message loss during a batched pull: Read_pages is idempotent, so the
   transport retries it and the replica still converges byte-for-byte. *)
let test_propagation_survives_message_loss () =
  let w = world ~window:8 () in
  let body = body_of_pages 16 in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/lossy");
  Kernel.write_file k0 p0 "/lossy" "seed";
  ignore (World.settle w);
  Kernel.write_file k0 p0 "/lossy" body;
  (* Kill the next message from the puller to the SS — the first RPC of
     the background pull. Stat_req and Read_pages are idempotent, so the
     transport retries and the pull completes anyway. *)
  Net.Netsim.fail_next_message (World.net w) ~src:1 ~dst:0;
  ignore (World.settle w);
  let k1 = World.kernel w 1 and p1 = World.proc w 1 in
  check Alcotest.string "replica converged despite losses" body
    (Kernel.read_file k1 p1 "/lossy");
  check Alcotest.bool "retries happened" true
    (Stats.get (World.stats w) "rpc.retry" >= 1)

let () =
  Alcotest.run "bulk"
    [
      ( "bulk",
        [
          Alcotest.test_case "batch ends mid-window" `Quick test_batch_ends_mid_window;
          Alcotest.test_case "window resets on seek" `Quick test_window_resets_on_seek;
          Alcotest.test_case "window=1 is the unbatched protocol" `Quick
            test_window_one_is_unbatched;
          Alcotest.test_case "streaming read saves messages" `Quick
            test_streaming_read_savings;
          Alcotest.test_case "write-behind flushes before commit" `Quick
            test_write_behind_flushes_before_commit;
          Alcotest.test_case "write-behind flushes on read-back" `Quick
            test_write_behind_flushes_on_read_back;
          Alcotest.test_case "write-behind flushes on token release" `Quick
            test_write_behind_flushes_on_token_release;
          Alcotest.test_case "propagation pulls in batches" `Quick
            test_propagation_pulls_in_batches;
          Alcotest.test_case "propagation survives message loss" `Quick
            test_propagation_survives_message_loss;
        ] );
    ]
