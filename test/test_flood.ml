(* The flood traffic engine: deterministic under its seed, conserved op
   bookkeeping, ordered percentiles, and an actually-skewed popularity
   draw (the Zipf sampler's empirical rank-frequency curve). *)

module World = Locus.World
module Flood = Locus.Flood
module Zipf = Locus.Zipf
module Kernel = Locus_core.Kernel
module Rng = Sim.Rng
module Stats = Sim.Stats

let mk_world () = World.create ~config:(World.default_config ~n_sites:5 ()) ()

let spec =
  {
    Flood.default_spec with
    Flood.users = 300;
    files = 64;
    ops = 800;
    settle_every = 100;
  }

let run_once () =
  let w = mk_world ()
  in
  Flood.setup w spec;
  Flood.run w spec

let test_setup_readable () =
  let w = mk_world () in
  Flood.setup w spec;
  (* the whole working set is readable from a site that holds no pack *)
  let k = World.kernel w 4 and p = World.proc w 4 in
  for r = 0 to spec.Flood.files - 1 do
    let body = Kernel.read_file k p (Flood.file_path spec r) in
    Alcotest.(check int) "seeded body" 200 (String.length body)
  done

let test_deterministic () =
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "same world seed + spec seed, same report" true (a = b)

let test_accounting () =
  let r = run_once () in
  Alcotest.(check int) "every op lands in one class or errors"
    r.Flood.fr_ops
    (r.Flood.fr_reads + r.Flood.fr_edits + r.Flood.fr_dirops + r.Flood.fr_errors);
  Alcotest.(check bool) "reads dominate at default mix" true
    (r.Flood.fr_reads > r.Flood.fr_edits + r.Flood.fr_dirops);
  Alcotest.(check bool) "simulated time advanced" true (r.Flood.fr_sim_ms > 0.0);
  List.iter
    (fun ratio ->
      Alcotest.(check bool) "hit ratio in [0,1]" true
        (ratio >= 0.0 && ratio <= 1.0))
    [ r.Flood.fr_lease_hit; r.Flood.fr_cache_hit; r.Flood.fr_name_hit ]

let test_percentiles_ordered () =
  let r = run_once () in
  let ordered (s : Stats.hist_summary) =
    s.Stats.p50 <= s.Stats.p95 && s.Stats.p95 <= s.Stats.p99
    && s.Stats.p99 <= s.Stats.hmax
  in
  Alcotest.(check bool) "read latency percentiles ordered" true
    (ordered r.Flood.fr_read_lat);
  Alcotest.(check bool) "edit latency percentiles ordered" true
    (ordered r.Flood.fr_edit_lat);
  Alcotest.(check bool) "read count matches histogram population" true
    (r.Flood.fr_read_lat.Stats.n = r.Flood.fr_reads)

(* Empirical rank-frequency curve of the sampler, under a fixed seed so
   the check is deterministic: the head rank is the argmax, and the top
   quarter of ranks outdraws the bottom quarter decisively. *)
let test_zipf_rank_frequency () =
  let n = 16 in
  let z = Zipf.create ~n ~s:1.1 in
  let rng = Rng.create 7L in
  let counts = Array.make n 0 in
  for _ = 1 to 20_000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iteri
    (fun r c ->
      Alcotest.(check bool) "rank 0 is the mode" true (counts.(0) >= c);
      ignore r)
    counts;
  let sum lo hi = Array.fold_left ( + ) 0 (Array.sub counts lo (hi - lo)) in
  Alcotest.(check bool) "head quarter outdraws tail quarter" true
    (sum 0 (n / 4) > 4 * sum (n - (n / 4)) n)

let () =
  Alcotest.run "flood"
    [
      ( "flood",
        [
          Alcotest.test_case "setup readable everywhere" `Quick
            test_setup_readable;
          Alcotest.test_case "deterministic under seed" `Quick
            test_deterministic;
          Alcotest.test_case "op accounting conserved" `Quick test_accounting;
          Alcotest.test_case "percentiles ordered" `Quick
            test_percentiles_ordered;
          Alcotest.test_case "zipf rank-frequency skew" `Quick
            test_zipf_rank_frequency;
        ] );
    ]
