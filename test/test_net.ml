(* Unit tests for the network substrate: topology, message layer, virtual
   circuits, fault injection. *)

module Engine = Sim.Engine
module Topology = Net.Topology
module Latency = Net.Latency
module Netsim = Net.Netsim
module Site = Net.Site

let check = Alcotest.check

(* ---- topology ---- *)

let test_topo_initially_connected () =
  let t = Topology.create ~n:4 in
  check Alcotest.bool "fully connected" true
    (Topology.fully_connected t (Topology.sites t))

let test_topo_partition () =
  let t = Topology.create ~n:5 in
  Topology.partition t [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  check Alcotest.bool "0-1 linked" true (Topology.reachable t 0 1);
  check Alcotest.bool "0-2 cut" false (Topology.reachable t 0 2);
  check Alcotest.(list int) "component of 0" [ 0; 1 ] (Topology.connected_component t 0);
  check Alcotest.(list int) "component of 3" [ 2; 3; 4 ]
    (Topology.connected_component t 3)

let test_topo_site_down () =
  let t = Topology.create ~n:3 in
  Topology.set_site_up t 1 false;
  check Alcotest.bool "down site unreachable" false (Topology.reachable t 0 1);
  check Alcotest.bool "others fine" true (Topology.reachable t 0 2);
  check Alcotest.(list int) "component excludes down site" [ 0; 2 ]
    (Topology.connected_component t 0);
  check Alcotest.(list int) "down site has empty component" []
    (Topology.connected_component t 1)

let test_topo_heal () =
  let t = Topology.create ~n:4 in
  Topology.partition t [ [ 0 ]; [ 1; 2; 3 ] ];
  Topology.set_site_up t 2 false;
  Topology.heal t;
  check Alcotest.bool "healed" true (Topology.fully_connected t (Topology.sites t))

let test_topo_nontransitive () =
  (* A broken single link: 0-2 cut but both reach 1. *)
  let t = Topology.create ~n:3 in
  Topology.set_link t 0 2 false;
  check Alcotest.bool "0-1" true (Topology.reachable t 0 1);
  check Alcotest.bool "1-2" true (Topology.reachable t 1 2);
  check Alcotest.bool "0-2 direct cut" false (Topology.reachable t 0 2);
  (* The transitive component still contains all three. *)
  check Alcotest.(list int) "component" [ 0; 1; 2 ] (Topology.connected_component t 0)

let test_topo_version_bumps () =
  let t = Topology.create ~n:2 in
  let v0 = Topology.version t in
  Topology.set_link t 0 1 false;
  check Alcotest.bool "version bumped" true (Topology.version t > v0)

(* ---- message layer ---- *)

let make_net n =
  let e = Engine.create () in
  let topo = Topology.create ~n in
  let net = Netsim.create e topo Latency.default in
  (e, topo, net)

let echo_handler _net site = fun ~src:_ req -> Printf.sprintf "%d:%s" site req

let ok what = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: unexpected failure %a" what Netsim.pp_failure f

let test_call_roundtrip () =
  let e, _, net = make_net 2 in
  Netsim.set_handler net 0 (echo_handler net 0);
  Netsim.set_handler net 1 (echo_handler net 1);
  let resp =
    ok "roundtrip"
      (Netsim.call net ~src:0 ~dst:1 ~req_bytes:10 ~resp_bytes:String.length "ping")
  in
  check Alcotest.string "echoed" "1:ping" resp;
  check Alcotest.int "two messages" 2 (Netsim.messages_sent net);
  check Alcotest.bool "time advanced" true (Engine.now e > 0.0)

let test_local_call_free () =
  let _, _, net = make_net 2 in
  Netsim.set_handler net 0 (echo_handler net 0);
  let resp =
    ok "local" (Netsim.call net ~src:0 ~dst:0 ~req_bytes:10 ~resp_bytes:String.length "x")
  in
  check Alcotest.string "local result" "0:x" resp;
  check Alcotest.int "no messages for local call" 0 (Netsim.messages_sent net)

let test_unreachable_fails () =
  let _, topo, net = make_net 2 in
  Netsim.set_handler net 1 (echo_handler net 1);
  Topology.set_link topo 0 1 false;
  match Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "x" with
  | Ok _ -> Alcotest.fail "should be unreachable"
  | Error Netsim.Request_lost -> ()
  | Error Netsim.Reply_lost -> Alcotest.fail "handler never ran: must be request-lost"

let test_circuit_failure_observer () =
  let _, topo, net = make_net 2 in
  Netsim.set_handler net 1 (echo_handler net 1);
  let failures = ref [] in
  Netsim.on_circuit_failure net (fun obs peer -> failures := (obs, peer) :: !failures);
  ignore (Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "a");
  check Alcotest.int "circuit open" 1 (Netsim.circuits_open net);
  Topology.set_link topo 0 1 false;
  ignore (Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "b");
  check Alcotest.int "circuit closed" 0 (Netsim.circuits_open net);
  check
    Alcotest.(list (pair int int))
    "observer notified" [ (0, 1) ] !failures

let test_forced_failure () =
  let _, _, net = make_net 2 in
  Netsim.set_handler net 1 (echo_handler net 1);
  Netsim.fail_next_message net ~src:0 ~dst:1;
  (match Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "a" with
  | Ok _ -> Alcotest.fail "forced loss should fail"
  | Error Netsim.Request_lost -> ()
  | Error Netsim.Reply_lost -> Alcotest.fail "forced loss is on the request direction");
  (* Only the next message is lost. *)
  let resp =
    ok "after forced loss"
      (Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "b")
  in
  check Alcotest.string "subsequent message delivered" "1:b" resp

let test_lost_reply_distinguished () =
  let _, _, net = make_net 2 in
  let handled = ref 0 in
  Netsim.set_handler net 1 (fun ~src:_ req ->
      incr handled;
      req);
  (* Force the reply direction: the handler runs, the response is lost. *)
  Netsim.fail_next_message net ~src:1 ~dst:0;
  (match Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "x" with
  | Ok _ -> Alcotest.fail "lost reply should fail"
  | Error Netsim.Reply_lost -> ()
  | Error Netsim.Request_lost -> Alcotest.fail "request was delivered");
  check Alcotest.int "handler ran exactly once" 1 !handled

let test_send_error_counted () =
  let e, _, net = make_net 2 in
  Netsim.set_handler net 1 (fun ~src:_ req -> req);
  Netsim.set_error_classifier net (fun resp -> String.equal resp "ERR");
  Netsim.send net ~src:0 ~dst:1 ~bytes:4 "ERR";
  Netsim.send net ~src:0 ~dst:1 ~bytes:4 "fine";
  ignore (Engine.run_until_idle e);
  check Alcotest.int "one discarded error response" 1
    (Sim.Stats.get (Engine.stats e) "net.send.err")

let test_send_async () =
  let e, _, net = make_net 2 in
  let got = ref [] in
  Netsim.set_handler net 1 (fun ~src req ->
      got := (src, req) :: !got;
      "");
  Netsim.send net ~src:0 ~dst:1 ~bytes:8 "hello";
  check Alcotest.int "not yet delivered" 0 (List.length !got);
  ignore (Engine.run_until_idle e);
  check Alcotest.(list (pair int string)) "delivered" [ (0, "hello") ] !got

let test_send_dropped_when_cut () =
  let e, topo, net = make_net 2 in
  let got = ref 0 in
  Netsim.set_handler net 1 (fun ~src:_ _ ->
      incr got;
      "");
  Netsim.send net ~src:0 ~dst:1 ~bytes:8 "x";
  (* Cut the link before delivery: the datagram vanishes silently. *)
  Topology.set_link topo 0 1 false;
  ignore (Engine.run_until_idle e);
  check Alcotest.int "dropped" 0 !got

let test_drop_probability () =
  let e, _, net = make_net 2 in
  ignore e;
  Netsim.set_handler net 1 (echo_handler net 1);
  Netsim.set_drop_probability net 1.0;
  match Netsim.call net ~src:0 ~dst:1 ~req_bytes:1 ~resp_bytes:String.length "x" with
  | Ok _ -> Alcotest.fail "drop probability 1 should lose everything"
  | Error _ -> ()

let test_latency_model () =
  let lat = Latency.default in
  let small = Latency.msg_cost lat ~bytes:10 in
  let big = Latency.msg_cost lat ~bytes:2000 in
  check Alcotest.bool "bigger message costs more" true (big > small);
  check Alcotest.bool "base cost positive" true (small > 0.0)

let () =
  Alcotest.run "net"
    [
      ( "topology",
        [
          Alcotest.test_case "initially connected" `Quick test_topo_initially_connected;
          Alcotest.test_case "partition" `Quick test_topo_partition;
          Alcotest.test_case "site down" `Quick test_topo_site_down;
          Alcotest.test_case "heal" `Quick test_topo_heal;
          Alcotest.test_case "non-transitive break" `Quick test_topo_nontransitive;
          Alcotest.test_case "version" `Quick test_topo_version_bumps;
        ] );
      ( "messages",
        [
          Alcotest.test_case "call roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "local call free" `Quick test_local_call_free;
          Alcotest.test_case "unreachable" `Quick test_unreachable_fails;
          Alcotest.test_case "lost reply distinguished" `Quick test_lost_reply_distinguished;
          Alcotest.test_case "send error counted" `Quick test_send_error_counted;
          Alcotest.test_case "circuit failure observer" `Quick test_circuit_failure_observer;
          Alcotest.test_case "forced failure" `Quick test_forced_failure;
          Alcotest.test_case "async send" `Quick test_send_async;
          Alcotest.test_case "send dropped" `Quick test_send_dropped_when_cut;
          Alcotest.test_case "drop probability" `Quick test_drop_probability;
          Alcotest.test_case "latency model" `Quick test_latency_model;
        ] );
    ]
