(* The §2.3.4 pathname-resolution fast path: the per-site name cache and
   server-side partial-pathname lookup — coherence after cross-site
   directory changes, stop conditions of the server walk, message counts,
   and both ablations. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Pathname = Locus_core.Pathname
module Namecache = Locus_core.Namecache
module K = Locus_core.Ktypes
module Mount = Catalog.Mount
module Gfile = Catalog.Gfile
module Stats = Sim.Stats

let check = Alcotest.check

(* All sites store the root filegroup: commit notifications reach every
   cache. *)
let full_world ?kconfig () =
  let base = World.default_config ~n_sites:4 () in
  let kernel_config = Option.value kconfig ~default:base.World.kernel_config in
  World.create ~config:{ base with World.kernel_config } ()

(* Only site 0 stores anything: sites 1..2 resolve fully remotely and are
   never notified of commits — the cache must stay safe without that. *)
let asym_world ?kconfig ?(machine_type = fun _ -> "vax") () =
  let base = World.default_config ~n_sites:3 () in
  let kernel_config = Option.value kconfig ~default:base.World.kernel_config in
  World.create
    ~config:
      { base with
        World.filegroups = [ { World.fg = 0; pack_sites = [ 0 ]; mount_path = None } ];
        kernel_config;
        machine_type;
      }
    ()

let msgs w snap = Stats.delta_of (World.stats w) snap "net.msg"

(* ---- coherence ---- *)

(* A rename at one site must kill the cached link at every other site
   storing the directory: the commit notification carries the new version
   vector, and links recorded under the old one are dropped. *)
let test_rename_invalidates_remote_cache () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.mkdir k0 p0 "/d");
  ignore (Kernel.creat k0 p0 "/d/old");
  Kernel.write_file k0 p0 "/d/old" "payload";
  ignore (World.settle w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  (* Warm site 3's cache through a real resolution. *)
  check Alcotest.string "before rename" "payload" (Kernel.read_file k3 p3 "/d/old");
  Kernel.rename k0 p0 ~from_path:"/d/old" ~to_path:"/d/new";
  ignore (World.settle w);
  (match Kernel.read_file k3 p3 "/d/old" with
  | _ -> Alcotest.fail "stale cached link resolved a renamed-away name"
  | exception K.Error (Proto.Enoent, _) -> ());
  check Alcotest.string "new name resolves" "payload" (Kernel.read_file k3 p3 "/d/new")

let test_unlink_invalidates_remote_cache () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.mkdir k0 p0 "/d");
  ignore (Kernel.creat k0 p0 "/d/f");
  Kernel.write_file k0 p0 "/d/f" "x";
  ignore (World.settle w);
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "cached" "x" (Kernel.read_file k2 p2 "/d/f");
  Kernel.unlink k0 p0 "/d/f";
  ignore (World.settle w);
  match Kernel.read_file k2 p2 "/d/f" with
  | _ -> Alcotest.fail "unlinked file still resolved through the cache"
  | exception K.Error (Proto.Enoent, _) -> ()

(* A site that stores nothing gets no commit notification, so its cached
   link MAY go stale — but a stale link must never reach a deleted inode's
   data: the CSS open check is the backstop. *)
let test_stale_entry_never_serves_deleted_inode () =
  let w = asym_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/d");
  ignore (Kernel.creat k0 p0 "/d/doomed");
  Kernel.write_file k0 p0 "/d/doomed" "secret";
  ignore (World.settle w);
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "resolves while alive" "secret"
    (Kernel.read_file k2 p2 "/d/doomed");
  Kernel.unlink k0 p0 "/d/doomed";
  ignore (World.settle w);
  (* Site 2 still holds the (now stale) link; opening through it must
     fail, not serve the dead inode. *)
  match Kernel.read_file k2 p2 "/d/doomed" with
  | _ -> Alcotest.fail "deleted inode served through a stale cached link"
  | exception K.Error (Proto.Enoent, _) -> ()

(* The unlinking site itself drops its links immediately (its own commit
   notification never loops back). *)
let test_local_unlink_drops_link () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/d");
  ignore (Kernel.creat k0 p0 "/d/f");
  Kernel.write_file k0 p0 "/d/f" "x";
  ignore (World.settle w);
  check Alcotest.string "warm" "x" (Kernel.read_file k0 p0 "/d/f");
  Kernel.unlink k0 p0 "/d/f";
  match Kernel.read_file k0 p0 "/d/f" with
  | _ -> Alcotest.fail "expected ENOENT after local unlink"
  | exception K.Error (Proto.Enoent, _) -> ()

(* ---- the server-side walk's stop conditions ---- *)

let multifg_world () =
  let base = World.default_config ~n_sites:4 () in
  let config =
    { base with
      World.filegroups =
        [
          { World.fg = 0; pack_sites = [ 0; 1; 2; 3 ]; mount_path = None };
          { World.fg = 1; pack_sites = [ 2; 3 ]; mount_path = Some "/usr" };
        ]
    }
  in
  let w = World.create ~config () in
  World.mount_filegroups w;
  w

(* The server walk consumes the component naming a mount point but never
   crosses it: crossing through the replicated mount table is the using
   site's job, and the returned gfile is the uncrossed mount point. *)
let test_lookup_stops_at_mount_point () =
  let w = multifg_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/usr/sub");
  ignore (World.settle w);
  let root = Mount.root k0.K.mount in
  match Pathname.handle_lookup k0 root [ "usr"; "sub" ] with
  | Proto.R_lookup { gf; consumed; trail } ->
    check Alcotest.int "consumed only the mount-point component" 1 consumed;
    check Alcotest.int "one trail step" 1 (List.length trail);
    check Alcotest.int "stopped in the covering filegroup" 0 gf.Gfile.fg;
    check Alcotest.bool "on the mount point itself" true
      (Mount.mounted_at k0.K.mount gf = Some 1)
  | _ -> Alcotest.fail "expected R_lookup"

(* The walk consumes the component naming a hidden directory and stops on
   it: the '@' escape and context expansion are per-process, using-site
   business. *)
let test_lookup_stops_at_hidden_directory () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/bin");
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/bin/who");
  ignore (Kernel.creat k0 p0 "/bin/who/@vax");
  Kernel.write_file k0 p0 "/bin/who/@vax" "vax load module";
  ignore (World.settle w);
  let root = Mount.root k0.K.mount in
  match Pathname.handle_lookup k0 root [ "bin"; "who"; "@vax" ] with
  | Proto.R_lookup { gf; consumed; trail } ->
    check Alcotest.int "stopped on the hidden directory" 2 consumed;
    let last = List.nth trail (List.length trail - 1) in
    check Alcotest.bool "trail marks it hidden" true
      (last.Proto.l_ftype = Some Storage.Inode.Hidden_directory);
    check Alcotest.bool "returned the hidden directory" true
      (Gfile.equal gf last.Proto.l_child)
  | _ -> Alcotest.fail "expected R_lookup"

(* A dangling entry (live link, deleted inode — transiently possible under
   unsynchronized reads) must stop the walk unconsumed, so no trail step
   ever advertises a deleted inode to remote caches. *)
let test_lookup_never_returns_deleted_inode () =
  let w = full_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/d");
  ignore (Kernel.creat k0 p0 "/d/f");
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/d/f" in
  (* Delete the inode behind the directory's back. *)
  let pack = Hashtbl.find k0.K.packs 0 in
  (Storage.Pack.get_inode pack gf.Gfile.ino).Storage.Inode.deleted <- true;
  let root = Mount.root k0.K.mount in
  match Pathname.handle_lookup k0 root [ "d"; "f" ] with
  | Proto.R_lookup { consumed; trail; _ } ->
    check Alcotest.int "stopped before the dead inode" 1 consumed;
    List.iter
      (fun (s : Proto.lookup_step) ->
        check Alcotest.bool "no trail step names the dead inode" false
          (Gfile.equal s.Proto.l_child gf))
      trail
  | _ -> Alcotest.fail "expected R_lookup"

(* End-to-end: a packless site resolves through a hidden directory, both
   by context and by escape, with the fast path on. *)
let test_remote_resolution_through_hidden_dir () =
  let w = asym_world ~machine_type:(fun s -> if s = 2 then "pdp11" else "vax") () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/bin");
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/bin/who");
  ignore (Kernel.creat k0 p0 "/bin/who/@vax");
  Kernel.write_file k0 p0 "/bin/who/@vax" "vax load module";
  ignore (Kernel.creat k0 p0 "/bin/who/@pdp11");
  Kernel.write_file k0 p0 "/bin/who/@pdp11" "pdp11 load module";
  ignore (World.settle w);
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "context selects the pdp11 module" "pdp11 load module"
    (Kernel.read_file k2 p2 "/bin/who");
  check Alcotest.string "escape overrides the context" "vax load module"
    (Kernel.read_file k2 p2 "/bin/who/@vax");
  (* Warm repeats, exercising the cached links. *)
  check Alcotest.string "warm context" "pdp11 load module"
    (Kernel.read_file k2 p2 "/bin/who");
  check Alcotest.string "warm escape" "vax load module"
    (Kernel.read_file k2 p2 "/bin/who/@vax")

(* ---- message counts and ablations ---- *)

let deep_tree w depth =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let rec mk prefix i =
    if i > depth then begin
      ignore (Kernel.creat k0 p0 (prefix ^ "/leaf"));
      Kernel.write_file k0 p0 (prefix ^ "/leaf") "x"
    end
    else begin
      let dir = prefix ^ "/d" ^ string_of_int i in
      ignore (Kernel.mkdir k0 p0 dir);
      mk dir (i + 1)
    end
  in
  mk "" 1;
  ignore (World.settle w);
  let rec path acc i =
    if i > depth then acc ^ "/leaf" else path (acc ^ "/d" ^ string_of_int i) (i + 1)
  in
  path "" 1

let resolve_msgs w site path =
  let k = World.kernel w site and p = World.proc w site in
  let snap = Stats.snapshot (World.stats w) in
  ignore (Kernel.resolve k p path);
  msgs w snap

(* The headline numbers: one round trip cold at depth 6 (the E13 slow
   path needs 46 messages), nothing at all warm. *)
let test_remote_depth6_message_counts () =
  let w = asym_world () in
  let path = deep_tree w 6 in
  let cold = resolve_msgs w 2 path in
  let warm = resolve_msgs w 2 path in
  check Alcotest.bool "cold resolution within one round trip budget" true (cold <= 10);
  check Alcotest.int "warm resolution is free" 0 warm;
  check Alcotest.bool "cache actually holds the trail" true
    (Namecache.length (World.kernel w 2).K.name_cache >= 7)

let test_ablation_no_remote_lookup () =
  let kconfig = { K.default_config with K.remote_lookup = false } in
  let w = asym_world ~kconfig () in
  let path = deep_tree w 3 in
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "resolves without the server walk" "x"
    (Kernel.read_file k2 p2 path);
  let warm = resolve_msgs w 2 path in
  check Alcotest.int "cache alone still makes warm walks free" 0 warm;
  check Alcotest.int "no server-side walks ran" 0
    (Stats.get (World.stats w) "name.remote_walks")

let test_ablation_no_cache () =
  let kconfig = { K.default_config with K.name_cache_entries = 0 } in
  let w = asym_world ~kconfig () in
  let path = deep_tree w 3 in
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "resolves with the cache off" "x" (Kernel.read_file k2 p2 path);
  check Alcotest.int "nothing was cached" 0
    (Namecache.length k2.K.name_cache);
  (* Still one round trip per walk thanks to the server-side half. *)
  let again = resolve_msgs w 2 path in
  check Alcotest.bool "each walk pays one round trip" true (again >= 2 && again <= 10)

let test_ablation_neither () =
  let kconfig =
    { K.default_config with K.name_cache_entries = 0; remote_lookup = false }
  in
  let w = asym_world ~kconfig () in
  let path = deep_tree w 3 in
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  check Alcotest.string "slow path still correct" "x" (Kernel.read_file k2 p2 path)

(* ---- the generic LRU core ---- *)

module Slru = Storage.Lru.Make (struct
  type t = int

  let copy v = v
end)

let test_lru_filter_out () =
  let c = Slru.create ~capacity:8 () in
  List.iter (fun i -> Slru.insert c i (i * 10)) [ 1; 2; 3; 4; 5 ];
  let dropped = Slru.filter_out c ~notify:false (fun k v -> k mod 2 = 0 && v >= 20) in
  check Alcotest.int "dropped the matching entries" 2 dropped;
  check Alcotest.int "rest survive" 3 (Slru.length c);
  check Alcotest.bool "odd keys intact" true
    (Slru.find c 3 = Some 30 && Slru.find c 5 = Some 50 && Slru.find c 1 = Some 10);
  check Alcotest.bool "dropped keys gone" true
    (Slru.find c 2 = None && Slru.find c 4 = None)

let test_lru_eviction_order () =
  let evicted = ref [] in
  let c = Slru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:2 () in
  Slru.insert c 1 1;
  Slru.insert c 2 2;
  ignore (Slru.find c 1); (* 1 becomes MRU *)
  Slru.insert c 3 3;      (* 2 is LRU: out *)
  check Alcotest.(list int) "LRU evicted" [ 2 ] !evicted;
  check Alcotest.(list int) "recency order" [ 3; 1 ] (Slru.keys_mru c)

let () =
  Alcotest.run "namecache"
    [
      ( "coherence",
        [
          Alcotest.test_case "rename invalidates remote caches" `Quick
            test_rename_invalidates_remote_cache;
          Alcotest.test_case "unlink invalidates remote caches" `Quick
            test_unlink_invalidates_remote_cache;
          Alcotest.test_case "stale entry never serves a deleted inode" `Quick
            test_stale_entry_never_serves_deleted_inode;
          Alcotest.test_case "local unlink drops the link" `Quick
            test_local_unlink_drops_link;
        ] );
      ( "server walk",
        [
          Alcotest.test_case "stops at a mount point" `Quick
            test_lookup_stops_at_mount_point;
          Alcotest.test_case "stops at a hidden directory" `Quick
            test_lookup_stops_at_hidden_directory;
          Alcotest.test_case "never returns a deleted inode" `Quick
            test_lookup_never_returns_deleted_inode;
          Alcotest.test_case "remote resolution through a hidden directory" `Quick
            test_remote_resolution_through_hidden_dir;
        ] );
      ( "messages and ablations",
        [
          Alcotest.test_case "depth-6 cold/warm message counts" `Quick
            test_remote_depth6_message_counts;
          Alcotest.test_case "ablation: remote lookup off" `Quick
            test_ablation_no_remote_lookup;
          Alcotest.test_case "ablation: cache off" `Quick test_ablation_no_cache;
          Alcotest.test_case "ablation: both off" `Quick test_ablation_neither;
        ] );
      ( "lru core",
        [
          Alcotest.test_case "filter_out" `Quick test_lru_filter_out;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        ] );
    ]
