(* Unit tests for the RPC transport layer: typed errors, retry/backoff
   policies, simulated-time accounting, and the per-tag histograms. *)

module Engine = Sim.Engine
module Stats = Sim.Stats
module Trace = Sim.Trace
module Topology = Net.Topology
module Latency = Net.Latency
module Netsim = Net.Netsim
module Rpc = Net.Rpc

let check = Alcotest.check

let make_net n =
  let e = Engine.create () in
  let topo = Topology.create ~n in
  let net = Netsim.create e topo Latency.default in
  (e, topo, net)

(* Echo handler that counts invocations: retries must be visible to it. *)
let counting_echo calls = fun ~src:_ req -> incr calls; "re:" ^ req

let call ?policy net req =
  Rpc.call net ?policy ~tag:"test" ~src:0 ~dst:1 ~req_bytes:10
    ~resp_bytes:String.length req

let retry3 = { Rpc.default_policy with Rpc.backoff = [ 5.0; 20.0 ]; max_attempts = 3 }

let test_ok_roundtrip () =
  let e, _, net = make_net 2 in
  let calls = ref 0 in
  Netsim.set_handler net 1 (counting_echo calls);
  (match call net "ping" with
  | Ok resp -> check Alcotest.string "echoed" "re:ping" resp
  | Error e -> Alcotest.failf "unexpected %a" Rpc.pp_error e);
  let stats = Engine.stats e in
  check Alcotest.int "one call" 1 (Stats.get stats "rpc.call");
  check Alcotest.int "no retries" 0 (Stats.get stats "rpc.retry");
  check Alcotest.int "handler ran once" 1 !calls;
  check Alcotest.int "latency sample" 1 (Stats.hist_count stats "rpc.latency.test");
  check Alcotest.int "bytes sample" 1 (Stats.hist_count stats "rpc.bytes.test")

let test_retry_recovers_forced_loss () =
  let e, _, net = make_net 2 in
  let calls = ref 0 in
  Netsim.set_handler net 1 (counting_echo calls);
  Netsim.fail_next_message net ~src:0 ~dst:1;
  (match call ~policy:retry3 net "x" with
  | Ok resp -> check Alcotest.string "recovered" "re:x" resp
  | Error e -> Alcotest.failf "unexpected %a" Rpc.pp_error e);
  let stats = Engine.stats e in
  check Alcotest.int "one retry" 1 (Stats.get stats "rpc.retry");
  check Alcotest.int "recovered" 1 (Stats.get stats "rpc.recovered");
  check Alcotest.int "no failure" 0 (Stats.get stats "rpc.fail");
  check Alcotest.int "handler ran once" 1 !calls

let test_backoff_charges_simulated_time () =
  let e, topo, net = make_net 2 in
  Netsim.set_handler net 1 (counting_echo (ref 0));
  Topology.set_link topo 0 1 false;
  let t0 = Engine.now e in
  (match call ~policy:retry3 net "x" with
  | Ok _ -> Alcotest.fail "link is down"
  | Error (Rpc.Unreachable { attempts; _ }) ->
    check Alcotest.int "all attempts used" 3 attempts
  | Error e -> Alcotest.failf "wrong error %a" Rpc.pp_error e);
  (* A lost request charges no wire time, so the clock moved by exactly the
     two backoff delays. *)
  check (Alcotest.float 1e-9) "clock advanced by backoff only" 25.0 (Engine.now e -. t0);
  check Alcotest.int "failure counted" 1 (Stats.get (Engine.stats e) "rpc.fail");
  check Alcotest.int "unreachable counted" 1
    (Stats.get (Engine.stats e) "rpc.fail.unreachable")

let test_non_idempotent_not_retried () =
  let e, _, net = make_net 2 in
  let calls = ref 0 in
  Netsim.set_handler net 1 (counting_echo calls);
  Netsim.fail_next_message net ~src:0 ~dst:1;
  let policy = { retry3 with Rpc.idempotent = false } in
  (match call ~policy net "x" with
  | Ok _ -> Alcotest.fail "forced loss should fail"
  | Error (Rpc.Unreachable { attempts; _ }) ->
    check Alcotest.int "single attempt" 1 attempts
  | Error e -> Alcotest.failf "wrong error %a" Rpc.pp_error e);
  check Alcotest.int "handler never ran" 0 !calls;
  check Alcotest.int "no retries" 0 (Stats.get (Engine.stats e) "rpc.retry")

let test_lost_reply_distinguished () =
  let _, _, net = make_net 2 in
  let calls = ref 0 in
  Netsim.set_handler net 1 (counting_echo calls);
  (* Lose the reply direction: the handler runs, the caller must learn that
     remote state may have changed. *)
  Netsim.fail_next_message net ~src:1 ~dst:0;
  (match call ~policy:Rpc.no_retry net "x" with
  | Ok _ -> Alcotest.fail "lost reply should fail"
  | Error (Rpc.Lost_reply { attempts; _ }) -> check Alcotest.int "one attempt" 1 attempts
  | Error e -> Alcotest.failf "wrong error %a" Rpc.pp_error e);
  check Alcotest.int "handler ran" 1 !calls

let test_timeout_bounds_retries () =
  let e, topo, net = make_net 2 in
  Netsim.set_handler net 1 (counting_echo (ref 0));
  Topology.set_link topo 0 1 false;
  let policy =
    { Rpc.max_attempts = 100; backoff = [ 10.0 ]; idempotent = true; timeout = 35.0 }
  in
  (match call ~policy net "x" with
  | Ok _ -> Alcotest.fail "link is down"
  | Error (Rpc.Timeout { attempts; waited; _ }) ->
    (* 3 backoffs of 10 ms fit under 35 ms; the 4th would not. *)
    check Alcotest.int "attempts until timeout" 4 attempts;
    check (Alcotest.float 1e-9) "waited" 30.0 waited
  | Error e -> Alcotest.failf "wrong error %a" Rpc.pp_error e);
  check Alcotest.int "timeout counted" 1 (Stats.get (Engine.stats e) "rpc.fail.timeout")

let test_call_traced () =
  let e, _, net = make_net 2 in
  Netsim.set_handler net 1 (counting_echo (ref 0));
  (match call net "x" with Ok _ -> () | Error _ -> Alcotest.fail "reachable");
  match Trace.find_all (Engine.trace e) ~tag:"rpc" with
  | [ ev ] ->
    check Alcotest.bool "span names the tag and sites" true
      (String.length ev.Trace.detail > 0)
  | l -> Alcotest.failf "expected one rpc span, got %d" (List.length l)

(* ---- Stats histograms ---- *)

let test_histogram_percentiles_monotone () =
  let s = Stats.create () in
  for v = 100 downto 1 do
    Stats.hist_observe s "h" (float_of_int v)
  done;
  check Alcotest.int "count" 100 (Stats.hist_count s "h");
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.hist_percentile s "h" 50.0);
  check (Alcotest.float 1e-9) "p95" 95.0 (Stats.hist_percentile s "h" 95.0);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.hist_percentile s "h" 99.0);
  check (Alcotest.float 1e-9) "p0 is min" 1.0 (Stats.hist_percentile s "h" 0.0);
  check (Alcotest.float 1e-9) "p100 is max" 100.0 (Stats.hist_percentile s "h" 100.0);
  let summary = Stats.hist_summary s "h" in
  check (Alcotest.float 1e-9) "mean" 50.5 summary.Stats.mean;
  check (Alcotest.float 1e-9) "max" 100.0 summary.Stats.hmax

let test_histogram_empty () =
  let s = Stats.create () in
  check Alcotest.int "count" 0 (Stats.hist_count s "nothing");
  check (Alcotest.float 1e-9) "percentile of empty" 0.0
    (Stats.hist_percentile s "nothing" 99.0)

(* ---- Trace ring buffer ---- *)

let test_trace_count_survives_truncation () =
  let t = Trace.create ~capacity:10 () in
  for i = 1 to 100 do
    Trace.record t ~time:(float_of_int i) ~tag:"tick" (string_of_int i)
  done;
  check Alcotest.int "total count" 100 (Trace.count t);
  let retained = Trace.events t in
  check Alcotest.bool "retained window bounded" true (List.length retained <= 10);
  (* The retained window is the newest events, oldest first. *)
  match List.rev retained with
  | newest :: _ -> check Alcotest.string "newest kept" "100" newest.Trace.detail
  | [] -> Alcotest.fail "no events retained"

let () =
  Alcotest.run "rpc"
    [
      ( "transport",
        [
          Alcotest.test_case "ok roundtrip" `Quick test_ok_roundtrip;
          Alcotest.test_case "retry recovers forced loss" `Quick
            test_retry_recovers_forced_loss;
          Alcotest.test_case "backoff charges simulated time" `Quick
            test_backoff_charges_simulated_time;
          Alcotest.test_case "non-idempotent not retried" `Quick
            test_non_idempotent_not_retried;
          Alcotest.test_case "lost reply distinguished" `Quick
            test_lost_reply_distinguished;
          Alcotest.test_case "timeout bounds retries" `Quick test_timeout_bounds_retries;
          Alcotest.test_case "call traced" `Quick test_call_traced;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "percentiles monotone" `Quick
            test_histogram_percentiles_monotone;
          Alcotest.test_case "empty histogram" `Quick test_histogram_empty;
        ] );
      ( "trace",
        [
          Alcotest.test_case "count survives truncation" `Quick
            test_trace_count_survives_truncation;
        ] );
    ]
