(* Multiple logical filegroups glued by the mount table (section 2.1):
   cross-boundary pathname traversal, per-filegroup CSS, replication and
   recovery within each filegroup. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Topology = Net.Topology

let check = Alcotest.check

let make_world () =
  let base = World.default_config ~n_sites:4 () in
  let config =
    { base with
      World.filegroups =
        [
          { World.fg = 0; pack_sites = [ 0; 1; 2; 3 ]; mount_path = None };
          { World.fg = 1; pack_sites = [ 2; 3 ]; mount_path = Some "/usr" };
          { World.fg = 2; pack_sites = [ 1 ]; mount_path = Some "/scratch" };
        ]
    }
  in
  let w = World.create ~config () in
  World.mount_filegroups w;
  w

let test_cross_fg_paths () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/usr/readme");
  Kernel.write_file k0 p0 "/usr/readme" "fg1";
  ignore (Kernel.mkdir k0 p0 "/usr/sub");
  ignore (Kernel.creat k0 p0 "/usr/sub/deep");
  Kernel.write_file k0 p0 "/usr/sub/deep" "deep";
  ignore (Kernel.creat k0 p0 "/scratch/tmp");
  Kernel.write_file k0 p0 "/scratch/tmp" "fg2";
  ignore (World.settle w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "fg1 file" "fg1" (Kernel.read_file k3 p3 "/usr/readme");
  check Alcotest.string "fg1 nested" "deep" (Kernel.read_file k3 p3 "/usr/sub/deep");
  check Alcotest.string "fg2 file" "fg2" (Kernel.read_file k3 p3 "/scratch/tmp")

let test_gfile_filegroups () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/usr/x");
  ignore (Kernel.creat k0 p0 "/rootfile");
  ignore (World.settle w);
  let gx = Kernel.resolve k0 p0 "/usr/x" in
  let gr = Kernel.resolve k0 p0 "/rootfile" in
  check Alcotest.int "in fg 1" 1 gx.Catalog.Gfile.fg;
  check Alcotest.int "in fg 0" 0 gr.Catalog.Gfile.fg

let test_dotdot_crosses_mount () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkdir k0 p0 "/usr/sub");
  ignore (Kernel.creat k0 p0 "/scratch/target");
  Kernel.write_file k0 p0 "/scratch/target" "found";
  ignore (World.settle w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  Kernel.chdir k3 p3 "/usr/sub";
  check Alcotest.string "relative cross-fg path" "found"
    (Kernel.read_file k3 p3 "../../scratch/target");
  (* "/usr/.." is "/". *)
  check Alcotest.bool "mount root dotdot" true
    (Catalog.Gfile.equal
       (Kernel.resolve k3 p3 "/usr/..")
       (Catalog.Mount.root k3.K.mount))

let test_no_cross_fg_links () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/usr/orig");
  ignore (World.settle w);
  match Kernel.link k0 p0 ~target:"/usr/orig" ~path:"/alias" with
  | () -> Alcotest.fail "cross-filegroup hard link should fail"
  | exception K.Error (Proto.Einval, _) -> ()

let test_per_fg_css () =
  let w = make_world () in
  let k0 = World.kernel w 0 in
  check Alcotest.int "fg0 css" 0 (K.fg_info k0 0).K.css_site;
  check Alcotest.int "fg1 css = placed pack holder" 3 (K.fg_info k0 1).K.css_site;
  check Alcotest.int "fg2 css" 1 (K.fg_info k0 2).K.css_site

(* The placement function must spread CSS roles: filegroups sharing the
   same candidate set land on different sites, deterministically. *)
let test_css_placement_spreads () =
  let candidates = [ 4; 7; 9; 12 ] in
  let placed =
    List.init 16 (fun fg ->
        match K.place_css ~fg candidates with
        | Some s -> s
        | None -> Alcotest.fail "no placement")
  in
  List.iter
    (fun s -> check Alcotest.bool "placed on a candidate" true (List.mem s candidates))
    placed;
  let distinct = List.sort_uniq Int.compare placed in
  check Alcotest.bool "roles spread over several sites" true (List.length distinct >= 3);
  (* Deterministic: replicated state computed identically everywhere. *)
  List.iteri
    (fun fg s ->
      check Alcotest.(option int) "stable" (Some s) (K.place_css ~fg candidates))
    placed;
  (* Filegroup 0 keeps the classic seat (the lowest candidate), so existing
     single-filegroup worlds are unchanged. *)
  check Alcotest.(option int) "fg0 classic seat" (Some 4) (K.place_css ~fg:0 candidates)

let test_fg_availability_is_independent () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/scratch/only_on_1");
  Kernel.write_file k0 p0 "/scratch/only_on_1" "x";
  ignore (Kernel.creat k0 p0 "/usr/on_2_3");
  Kernel.write_file k0 p0 "/usr/on_2_3" "y";
  ignore (World.settle w);
  (* Crash site 1 (the only pack of fg 2): fg 2 is gone, fg 1 unaffected. *)
  World.crash_site w 1;
  ignore (World.detect_failures w ~initiator:0);
  (match Kernel.read_file k0 p0 "/scratch/only_on_1" with
  | _ -> Alcotest.fail "fg2 should be unavailable"
  | exception K.Error _ -> ());
  check Alcotest.string "fg1 still fine" "y" (Kernel.read_file k0 p0 "/usr/on_2_3")

let test_partition_and_merge_multifg () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/usr/doc");
  Kernel.write_file k0 p0 "/usr/doc" "v1";
  ignore (World.settle w);
  (* Partition so that both fg-1 packs (sites 2,3) are on one side. *)
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  Kernel.write_file k2 p2 "/usr/doc" "v2 from the pack side";
  ignore (World.settle w);
  let _, _recon = World.heal_and_merge w in
  check Alcotest.string "update visible across the mount" "v2 from the pack side"
    (Kernel.read_file k0 p0 "/usr/doc");
  ignore (Topology.fully_connected (World.topology w) (World.sites w))

(* ---- sharded mount points: one subtree spread across filegroups ---- *)

let make_sharded_world () =
  let base = World.default_config ~n_sites:4 () in
  let config =
    { base with
      World.filegroups =
        [
          { World.fg = 0; pack_sites = [ 0; 1; 2; 3 ]; mount_path = None };
          { World.fg = 1; pack_sites = [ 0; 1 ]; mount_path = None };
          { World.fg = 2; pack_sites = [ 2; 3 ]; mount_path = None };
          { World.fg = 3; pack_sites = [ 1; 2 ]; mount_path = None };
        ];
      shard_mounts = [ ("/shared", [ 1; 2; 3 ]) ]
    }
  in
  let w = World.create ~config () in
  World.mount_filegroups w;
  w

let test_shard_spread_and_distinct_css () =
  let w = make_sharded_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let names = List.init 24 (Printf.sprintf "f%d") in
  List.iter
    (fun n ->
      ignore (Kernel.creat k0 p0 ("/shared/" ^ n));
      Kernel.write_file k0 p0 ("/shared/" ^ n) ("body of " ^ n))
    names;
  ignore (World.settle w);
  (* Entries spread across the member filegroups... *)
  let fgs_used =
    List.map (fun n -> (Kernel.resolve k0 p0 ("/shared/" ^ n)).Catalog.Gfile.fg) names
    |> List.sort_uniq Int.compare
  in
  check Alcotest.bool "entries hash across shards" true (List.length fgs_used >= 2);
  List.iter
    (fun fg -> check Alcotest.bool "only member fgs" true (List.mem fg [ 1; 2; 3 ]))
    fgs_used;
  (* ...and the shard filegroups answer to more than one CSS, so the
     subtree is no longer synchronized by a single coordinator. *)
  let css_sites =
    List.map (fun fg -> (K.fg_info k0 fg).K.css_site) [ 1; 2; 3 ]
    |> List.sort_uniq Int.compare
  in
  check Alcotest.bool "distinct CSS sites" true (List.length css_sites >= 2);
  (* Content read back from another site, routed per component. *)
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  List.iter
    (fun n ->
      check Alcotest.string ("content " ^ n) ("body of " ^ n)
        (Kernel.read_file k3 p3 ("/shared/" ^ n)))
    names

let test_shard_readdir_union_and_unlink () =
  let w = make_sharded_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  let names = List.init 12 (Printf.sprintf "g%d") in
  List.iter (fun n -> ignore (Kernel.creat k0 p0 ("/shared/" ^ n))) names;
  ignore (World.settle w);
  let listed =
    List.map (fun (e : Catalog.Dir.entry) -> e.Catalog.Dir.name)
      (Kernel.readdir k0 p0 "/shared")
  in
  List.iter
    (fun n -> check Alcotest.bool ("listed " ^ n) true (List.mem n listed))
    names;
  (* Unlink routes to the owning shard. *)
  Kernel.unlink k0 p0 "/shared/g3";
  ignore (World.settle w);
  (match Kernel.read_file k0 p0 "/shared/g3" with
  | _ -> Alcotest.fail "unlinked entry still resolves"
  | exception K.Error (Proto.Enoent, _) -> ());
  let listed' =
    List.map (fun (e : Catalog.Dir.entry) -> e.Catalog.Dir.name)
      (Kernel.readdir k0 p0 "/shared")
  in
  check Alcotest.bool "unlinked gone from listing" false (List.mem "g3" listed');
  (* ".." out of the sharded subtree names the covering root. *)
  check Alcotest.bool "dotdot out of shard" true
    (Catalog.Gfile.equal
       (Kernel.resolve k0 p0 "/shared/..")
       (Catalog.Mount.root k0.K.mount))

let () =
  Alcotest.run "multifg"
    [
      ( "mounts",
        [
          Alcotest.test_case "cross-fg paths" `Quick test_cross_fg_paths;
          Alcotest.test_case "gfile filegroups" `Quick test_gfile_filegroups;
          Alcotest.test_case "dotdot crosses mount" `Quick test_dotdot_crosses_mount;
          Alcotest.test_case "no cross-fg links" `Quick test_no_cross_fg_links;
        ] );
      ( "per-fg-roles",
        [
          Alcotest.test_case "css per filegroup" `Quick test_per_fg_css;
          Alcotest.test_case "placement spreads" `Quick test_css_placement_spreads;
          Alcotest.test_case "independent availability" `Quick
            test_fg_availability_is_independent;
          Alcotest.test_case "partition+merge" `Quick test_partition_and_merge_multifg;
        ] );
      ( "sharded-mounts",
        [
          Alcotest.test_case "spread + distinct css" `Quick
            test_shard_spread_and_distinct_css;
          Alcotest.test_case "readdir union + unlink" `Quick
            test_shard_readdir_union_and_unlink;
        ] );
    ]
