(* Self-test of the fault-soak harness (lib/soak).

   Three claims are pinned:
   - clean seeds pass: a sweep of schedules covering every fault class
     quiesces with zero invariant violations (the full 50x2000 sweep runs
     via `make soak`; this is the alcotest-sized slice);
   - the harness is deterministic: the same (seed, ops) replays the
     identical run, which is what makes shrunken repros trustworthy;
   - the harness has teeth: re-introducing a fixed bug (error paths
     abandoning open handles, the pre-Us.release leak) makes at least one
     seed fail and shrink to a one-line replayable repro command — while
     the other reintroducible bug (the silent lease-table scrub) is
     absorbed by the section 5.6 merge rebuild and must pass, pinning the
     self-heal. *)

module Driver = Soak.Driver
module Shrink = Soak.Shrink
module Invariant = Soak.Invariant

let check = Alcotest.check

let pp_violations vs =
  String.concat "; " (List.map (Format.asprintf "%a" Invariant.pp_violation) vs)

let seeds = [ 1; 2; 3; 4; 5; 6 ]
let ops = 400

let test_clean_seeds () =
  List.iter
    (fun seed ->
      let oc = Driver.run ~seed ~ops () in
      if Driver.failed oc then
        Alcotest.failf "seed %d: %s" seed (pp_violations oc.Driver.oc_violations))
    seeds

let test_determinism () =
  let a = Driver.run ~seed:3 ~ops:300 () in
  let b = Driver.run ~seed:3 ~ops:300 () in
  check Alcotest.int "events replay" a.Driver.oc_events b.Driver.oc_events;
  check Alcotest.int "skips replay" a.Driver.oc_skipped b.Driver.oc_skipped;
  check
    Alcotest.(list (pair string int))
    "fault mix replays" a.Driver.oc_injected b.Driver.oc_injected;
  check Alcotest.int "errors replay" a.Driver.oc_report.Locus.Workload.errors
    b.Driver.oc_report.Locus.Workload.errors

(* Masking every fault out of a failing schedule must reproduce a clean
   run: the workload stream is independent of the fault stream, which is
   what lets the shrinker drop faults one at a time. *)
let test_drop_all_faults_is_clean () =
  List.iter
    (fun seed ->
      let total =
        Soak.Schedule.fault_count (Soak.Schedule.generate ~seed ~ops)
      in
      let drop = List.init total Fun.id in
      let oc = Driver.run ~drop ~seed ~ops () in
      check Alcotest.(list (pair string int)) "no faults injected" []
        oc.Driver.oc_injected;
      if Driver.failed oc then
        Alcotest.failf "faultless seed %d: %s" seed
          (pp_violations oc.Driver.oc_violations))
    [ 1; 2 ]

(* The silent lease-table scrub strands SS serving registrations and CSS
   reader/lease entries — state the quiesce merge now rebuilds from the
   members' actual opens (Css.rebuild + Ss.revalidate_serving, the §5.6
   rebuild). Every seed must therefore pass even with the bug live: this
   pins the self-heal, and a failure here means the merge-time rebuild
   regressed. *)
let test_silent_scrub_absorbed_by_merge () =
  List.iter
    (fun seed ->
      let oc = Driver.run ~bug:Driver.Bug_silent_scrub ~seed ~ops () in
      if Driver.failed oc then
        Alcotest.failf "seed %d not absorbed: %s" seed
          (pp_violations oc.Driver.oc_violations))
    seeds

let fails_with_bug sc =
  Driver.failed
    (Driver.run ~drop:sc.Shrink.sc_drop ~bug:Driver.Bug_abandoned_open
       ~seed:sc.Shrink.sc_seed ~ops:sc.Shrink.sc_ops ())

(* The acceptance demo: with the Us.release fix reverted (error paths
   abandoning opened handles again), the invariant checker must flag at
   least one seed, and the shrinker must reduce it to a replayable
   one-line repro. *)
let test_bug_reintroduced_caught_and_shrunk () =
  let failing =
    List.filter
      (fun seed ->
        fails_with_bug { Shrink.sc_seed = seed; sc_ops = ops; sc_drop = [] })
      seeds
  in
  check Alcotest.bool "some seed catches the reintroduced bug" true
    (failing <> []);
  let seed = List.hd failing in
  let small, replays =
    Shrink.shrink ~fails:fails_with_bug
      { Shrink.sc_seed = seed; sc_ops = ops; sc_drop = [] }
  in
  check Alcotest.bool "shrinking replayed the scenario" true (replays > 0);
  check Alcotest.bool "shrunk ops not above original" true
    (small.Shrink.sc_ops <= ops);
  check Alcotest.bool "shrunk scenario still fails" true (fails_with_bug small);
  let cmd = Shrink.repro_command small in
  let prefix = "dune exec bench/main.exe -- soak --seed " in
  check Alcotest.bool "repro is a one-line soak command" true
    (String.length cmd >= String.length prefix
    && String.equal (String.sub cmd 0 (String.length prefix)) prefix);
  Printf.printf "reintroduced-bug minimal repro: %s\n%!" cmd

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          Alcotest.test_case "clean seeds pass invariants" `Slow test_clean_seeds;
          Alcotest.test_case "same seed replays identically" `Quick
            test_determinism;
          Alcotest.test_case "masking all faults is clean" `Quick
            test_drop_all_faults_is_clean;
          Alcotest.test_case "silent scrub absorbed by merge rebuild" `Slow
            test_silent_scrub_absorbed_by_merge;
          Alcotest.test_case "reintroduced bug caught and shrunk" `Slow
            test_bug_reintroduced_caught_and_shrunk;
        ] );
    ]
