(* Edge cases across the kernel: offset I/O, pipes, rename corner cases,
   hidden directories as path intermediates, delayed inode reclamation,
   page-boundary reads, and nested mounts. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Page = Storage.Page
module Pack = Storage.Pack

let check = Alcotest.check

let make_world ?(n = 4) () = World.create ~config:(World.default_config ~n_sites:n ()) ()

(* ---- descriptor offset I/O ---- *)

let test_lseek_read_write () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/f");
  Kernel.write_file k0 p0 "/f" "0123456789";
  ignore (World.settle w);
  let fd = Kernel.open_path k0 p0 "/f" Proto.Mode_modify in
  Kernel.lseek k0 p0 fd 4;
  check Alcotest.string "read from offset" "456" (Kernel.read_fd k0 p0 fd ~len:3);
  Kernel.lseek k0 p0 fd 2;
  Kernel.write_fd k0 p0 fd "XY";
  Kernel.commit_fd k0 p0 fd;
  Kernel.close_fd k0 p0 fd;
  ignore (World.settle w);
  check Alcotest.string "patched at offset" "01XY456789" (Kernel.read_file k0 p0 "/f")

let test_read_past_eof () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/short");
  Kernel.write_file k0 p0 "/short" "abc";
  ignore (World.settle w);
  let fd = Kernel.open_path k0 p0 "/short" Proto.Mode_read in
  check Alcotest.string "short read" "abc" (Kernel.read_fd k0 p0 fd ~len:100);
  check Alcotest.string "at eof" "" (Kernel.read_fd k0 p0 fd ~len:10);
  Kernel.close_fd k0 p0 fd

let test_read_bytes_across_pages () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/big");
  let body = String.init (3 * Page.size) (fun i -> Char.chr (33 + (i mod 90))) in
  Kernel.write_file k0 p0 "/big" body;
  ignore (World.settle w);
  (* Read a range straddling two page boundaries, from a remote site. *)
  let k2 = World.kernel w 2 in
  let gf = Kernel.resolve k2 (World.proc w 2) "/big" in
  let o = Us.open_gf k2 gf Proto.Mode_read in
  let off = Page.size - 100 in
  let len = Page.size + 200 in
  check Alcotest.string "cross-page range" (String.sub body off len)
    (Us.read_bytes k2 o ~off ~len);
  Us.close k2 o

(* ---- pipes ---- *)

let test_pipe_partial_reads () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.mkfifo k0 p0 "/pipe");
  ignore (World.settle w);
  Kernel.pipe_write k0 p0 "/pipe" "hello world";
  check Alcotest.string "partial" "hello" (Kernel.pipe_read k0 p0 "/pipe" ~max:5);
  check Alcotest.string "rest" " world" (Kernel.pipe_read k0 p0 "/pipe" ~max:50);
  check Alcotest.string "empty" "" (Kernel.pipe_read k0 p0 "/pipe" ~max:50)

let test_pipe_on_regular_file_rejected () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/notapipe");
  ignore (World.settle w);
  match Kernel.pipe_write k0 p0 "/notapipe" "x" with
  | () -> Alcotest.fail "pipe write on a regular file should fail"
  | exception K.Error (Proto.Einval, _) -> ()

(* ---- rename corner cases ---- *)

let test_rename_same_directory () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/old_name");
  Kernel.write_file k0 p0 "/old_name" "data";
  ignore (World.settle w);
  Kernel.rename k0 p0 ~from_path:"/old_name" ~to_path:"/new_name";
  ignore (World.settle w);
  check Alcotest.string "renamed" "data" (Kernel.read_file k0 p0 "/new_name")

let test_rename_onto_existing_fails_and_restores () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/a");
  Kernel.write_file k0 p0 "/a" "A";
  ignore (Kernel.creat k0 p0 "/b");
  Kernel.write_file k0 p0 "/b" "B";
  ignore (World.settle w);
  (match Kernel.rename k0 p0 ~from_path:"/a" ~to_path:"/b" with
  | () -> Alcotest.fail "rename onto existing should fail"
  | exception K.Error (Proto.Eexist, _) -> ());
  ignore (World.settle w);
  (* The old name was put back. *)
  check Alcotest.string "source restored" "A" (Kernel.read_file k0 p0 "/a");
  check Alcotest.string "target untouched" "B" (Kernel.read_file k0 p0 "/b")

(* ---- hidden directory as a path intermediate ---- *)

let test_hidden_dir_with_subtrees () =
  let base = World.default_config ~n_sites:2 () in
  let w =
    World.create
      ~config:{ base with World.machine_type = (fun s -> if s = 0 then "vax" else "pdp11") }
      ()
  in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  (* /lib is hidden; each machine type has a whole subtree under it. *)
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/lib");
  ignore (Kernel.mkdir k0 p0 "/lib/@vax");
  ignore (Kernel.creat k0 p0 "/lib/@vax/libc");
  Kernel.write_file k0 p0 "/lib/@vax/libc" "vax libc";
  ignore (Kernel.mkdir k0 p0 "/lib/@pdp11");
  ignore (Kernel.creat k0 p0 "/lib/@pdp11/libc");
  Kernel.write_file k0 p0 "/lib/@pdp11/libc" "pdp11 libc";
  ignore (World.settle w);
  (* "/lib/libc" resolves through the context without consuming "libc". *)
  check Alcotest.string "vax site" "vax libc" (Kernel.read_file k0 p0 "/lib/libc");
  let k1 = World.kernel w 1 and p1 = World.proc w 1 in
  check Alcotest.string "pdp11 site" "pdp11 libc" (Kernel.read_file k1 p1 "/lib/libc");
  (* And the escape still reaches a specific machine's copy. *)
  check Alcotest.string "escaped" "pdp11 libc" (Kernel.read_file k0 p0 "/lib/@pdp11/libc")

(* ---- inode reclamation blocked by partition (2.3.7) ---- *)

let test_reclaim_waits_for_partitioned_site () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/doomed");
  Kernel.write_file k0 p0 "/doomed" "x";
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/doomed" in
  (* Partition site 3 away, then delete on the majority side. *)
  ignore (World.partition w [ [ 0; 1; 2 ]; [ 3 ] ]);
  Kernel.unlink k0 p0 "/doomed";
  ignore (World.settle w);
  (* Site 3 still holds its copy: the inode number must NOT be reclaimed
     there (it has not seen the delete). *)
  let pack3 = Hashtbl.find (World.kernel w 3).K.packs 0 in
  check Alcotest.bool "survivor copy intact during partition" true
    (Pack.stores pack3 gf.Catalog.Gfile.ino);
  (* After the merge, the delete propagates and the inode is reclaimed
     everywhere. *)
  ignore (World.heal_and_merge w);
  ignore (World.settle w);
  List.iter
    (fun s ->
      let pack = Hashtbl.find (World.kernel w s).K.packs 0 in
      check Alcotest.bool
        (Printf.sprintf "reclaimed at %d" s)
        false
        (Pack.stores pack gf.Catalog.Gfile.ino))
    [ 0; 1; 2; 3 ]

(* ---- nested mounts ---- *)

let test_nested_mount_points () =
  let base = World.default_config ~n_sites:3 () in
  let config =
    { base with
      World.filegroups =
        [
          { World.fg = 0; pack_sites = [ 0; 1; 2 ]; mount_path = None };
          { World.fg = 1; pack_sites = [ 1 ]; mount_path = Some "/a" };
          { World.fg = 2; pack_sites = [ 2 ]; mount_path = Some "/a/b" };
        ]
    }
  in
  let w = World.create ~config () in
  World.mount_filegroups w;
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/a/b/leaf");
  Kernel.write_file k0 p0 "/a/b/leaf" "two mounts deep";
  ignore (World.settle w);
  let gf = Kernel.resolve k0 p0 "/a/b/leaf" in
  check Alcotest.int "innermost filegroup" 2 gf.Catalog.Gfile.fg;
  check Alcotest.string "readable" "two mounts deep" (Kernel.read_file k0 p0 "/a/b/leaf");
  (* ".." climbs back through both boundaries. *)
  Kernel.chdir k0 p0 "/a/b";
  ignore (Kernel.creat k0 p0 "/marker");
  ignore (World.settle w);
  check Alcotest.bool "double dotdot reaches root" true
    (Catalog.Gfile.equal (Kernel.resolve k0 p0 "../..") (Catalog.Mount.root k0.K.mount))

(* ---- concurrent opens bookkeeping ---- *)

let test_many_opens_same_file () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  ignore (Kernel.creat k0 p0 "/popular");
  Kernel.write_file k0 p0 "/popular" "p";
  ignore (World.settle w);
  let fds = List.init 10 (fun _ -> Kernel.open_path k0 p0 "/popular" Proto.Mode_read) in
  List.iter (fun fd -> ignore (Kernel.read_fd k0 p0 fd ~len:1)) fds;
  List.iter (fun fd -> Kernel.close_fd k0 p0 fd) fds;
  ignore (World.settle w);
  (* All CSS reader counts drained — except the one cold open the retained
     read lease legitimately keeps registered (its close is deferred). *)
  let ino = (Kernel.resolve k0 p0 "/popular").Catalog.Gfile.ino in
  (match Locus_core.Css.find_file k0 0 ino with
  | Some f -> check Alcotest.int "one retained reader" 1 (K.Site.Map.cardinal f.K.readers)
  | None -> Alcotest.fail "css record missing");
  (* And a writer can open immediately: its open breaks the lease, whose
     deferred close drains the last reader registration. *)
  let fd = Kernel.open_path k0 p0 "/popular" Proto.Mode_modify in
  Kernel.close_fd k0 p0 fd;
  ignore (World.settle w);
  match Locus_core.Css.find_file k0 0 ino with
  | Some f -> check Alcotest.int "no leaked readers" 0 (K.Site.Map.cardinal f.K.readers)
  | None -> Alcotest.fail "css record missing"

let () =
  Alcotest.run "edge"
    [
      ( "fd-io",
        [
          Alcotest.test_case "lseek read/write" `Quick test_lseek_read_write;
          Alcotest.test_case "read past eof" `Quick test_read_past_eof;
          Alcotest.test_case "cross-page range" `Quick test_read_bytes_across_pages;
        ] );
      ( "pipes",
        [
          Alcotest.test_case "partial reads" `Quick test_pipe_partial_reads;
          Alcotest.test_case "regular file rejected" `Quick
            test_pipe_on_regular_file_rejected;
        ] );
      ( "rename",
        [
          Alcotest.test_case "same directory" `Quick test_rename_same_directory;
          Alcotest.test_case "onto existing restores" `Quick
            test_rename_onto_existing_fails_and_restores;
        ] );
      ( "hidden-subtrees",
        [ Alcotest.test_case "machine-specific subtrees" `Quick test_hidden_dir_with_subtrees ] );
      ( "reclaim",
        [ Alcotest.test_case "waits for partitioned site" `Quick
            test_reclaim_waits_for_partitioned_site ] );
      ( "mounts",
        [ Alcotest.test_case "nested mount points" `Quick test_nested_mount_points ] );
      ( "bookkeeping",
        [ Alcotest.test_case "many opens drained" `Quick test_many_opens_same_file ] );
    ]
