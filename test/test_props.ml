(* Property-based tests on system invariants (qcheck, run under alcotest).

   - directory codec: decode . encode = id for arbitrary directories
   - mailbox merge: a CRDT (commutative, associative, idempotent) that
     loses no message and honours deletions
   - shadow paging: arbitrary modification sequences are all-or-nothing
     under commit / abort / crash, and leak no disk pages
   - partition protocol: for arbitrary physical topologies the agreed
     membership is fully connected and unanimous
   - end-to-end: after random divergent updates and a merge, all copies of
     every file converge to identical version vectors and contents (or the
     file is explicitly marked in conflict). *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module K = Locus_core.Ktypes
module Dir = Catalog.Dir
module Mbox = Catalog.Mailbox
module Page = Storage.Page
module Pack = Storage.Pack
module Shadow = Storage.Shadow
module Disk = Storage.Disk
module Inode = Storage.Inode
module Vvec = Vv.Version_vector
module Topology = Net.Topology

(* ---- generators ---- *)

let gen_name =
  QCheck.Gen.(
    map
      (fun (c, n) -> Printf.sprintf "%c%d" c n)
      (pair (char_range 'a' 'f') (int_bound 20)))

let gen_dir =
  QCheck.Gen.(
    list_size (int_bound 15) (triple gen_name (int_range 2 50) bool)
    >|= fun entries ->
    let d = Dir.empty () in
    List.iteri
      (fun i (name, ino, dead) ->
        Dir.insert d ~name ~ino ~stamp:(float_of_int i) ~origin:(i mod 3);
        if dead then
          ignore (Dir.remove d ~name ~stamp:(float_of_int i +. 0.5) ~origin:(i mod 3)))
      entries;
    d)

let arb_dir = QCheck.make ~print:Dir.encode gen_dir

let gen_mbox_ops =
  QCheck.Gen.(list_size (int_bound 12) (pair (int_bound 30) bool))

let apply_mbox_ops site base ops =
  let m = Mbox.decode (Mbox.encode base) in
  List.iteri
    (fun i (n, del) ->
      let id = Printf.sprintf "%d.%d" site n in
      if del && Mbox.mem m id then ignore (Mbox.delete m ~id ~stamp:(float_of_int i))
      else if not del then
        Mbox.insert m ~id ~stamp:(float_of_int i) ~from:"prop" ~body:"b")
    ops;
  m

(* ---- directory codec ---- *)

let prop_dir_codec =
  QCheck.Test.make ~name:"dir codec roundtrip" ~count:200 arb_dir (fun d ->
      Dir.equal d (Dir.decode (Dir.encode d)))

(* ---- mailbox merge laws ---- *)

let arb_two_mboxes =
  QCheck.make
    QCheck.Gen.(
      pair gen_mbox_ops gen_mbox_ops
      >|= fun (ops_a, ops_b) ->
      let base = Mbox.empty () in
      Mbox.insert base ~id:"9.0" ~stamp:0.0 ~from:"base" ~body:"shared";
      (apply_mbox_ops 1 base ops_a, apply_mbox_ops 2 base ops_b))

let prop_mbox_merge_commutative =
  QCheck.Test.make ~name:"mailbox merge commutative" ~count:200 arb_two_mboxes
    (fun (a, b) -> Mbox.equal (Mbox.merge a b) (Mbox.merge b a))

let prop_mbox_merge_idempotent =
  QCheck.Test.make ~name:"mailbox merge idempotent" ~count:200 arb_two_mboxes
    (fun (a, b) ->
      let m = Mbox.merge a b in
      Mbox.equal (Mbox.merge m m) m)

let prop_mbox_merge_no_loss =
  QCheck.Test.make ~name:"mailbox merge loses nothing" ~count:200 arb_two_mboxes
    (fun (a, b) ->
      let m = Mbox.merge a b in
      List.for_all
        (fun (msg : Mbox.msg) ->
          (* Every live message survives unless the other copy deleted it. *)
          Mbox.mem m msg.Mbox.id
          || List.exists
               (fun (other : Mbox.msg) ->
                 other.Mbox.id = msg.Mbox.id && other.Mbox.deleted)
               (Mbox.all a @ Mbox.all b))
        (Mbox.live a @ Mbox.live b))

(* ---- shadow paging all-or-nothing ---- *)

type shadow_op =
  | Write_whole of int * char
  | Patch of int * int * string
  | Trunc of int

let gen_shadow_op =
  QCheck.Gen.(
    oneof
      [
        map2 (fun p c -> Write_whole (p, c)) (int_bound 11) (char_range 'a' 'z');
        map3 (fun p off c -> Patch (p, off, String.make 3 c))
          (int_bound 11)
          (int_bound (Page.size - 4))
          (char_range 'A' 'Z');
        map (fun n -> Trunc (n * 100)) (int_bound 50);
      ])

let arb_shadow_scenario =
  QCheck.make
    ~print:(fun (ops, fate) ->
      Printf.sprintf "%d ops, fate %d" (List.length ops) fate)
    QCheck.Gen.(pair (list_size (int_range 1 10) gen_shadow_op) (int_bound 2))

(* A pure model of the file body alongside the shadow session. *)
let apply_model body = function
  | Write_whole (p, c) ->
    let upto = (p + 1) * Page.size in
    let body = if String.length body < upto then body ^ String.make (upto - String.length body) '\000' else body in
    String.mapi (fun i ch -> if i >= p * Page.size && i < upto then c else ch) body
  | Patch (p, off, data) ->
    let pos = (p * Page.size) + off in
    let upto = pos + String.length data in
    let body = if String.length body < upto then body ^ String.make (upto - String.length body) '\000' else body in
    String.mapi
      (fun i ch -> if i >= pos && i < upto then data.[i - pos] else ch)
      body
  | Trunc n -> if n < String.length body then String.sub body 0 n else body

let apply_session session = function
  | Write_whole (p, c) -> Shadow.write_page session ~lpage:p (Page.of_string (String.make Page.size c))
  | Patch (p, off, data) -> Shadow.patch_page session ~lpage:p ~off data
  | Trunc n -> Shadow.truncate session n

let prop_shadow_all_or_nothing =
  QCheck.Test.make ~name:"shadow commit all-or-nothing" ~count:150
    arb_shadow_scenario (fun (ops, fate) ->
      let pack = Pack.create ~fg:0 ~pack_id:0 ~ino_lo:2 ~ino_hi:100 () in
      let inode = Inode.create ~ino:2 ~ftype:Inode.Regular ~owner:"p" in
      Pack.install_inode pack inode;
      let original = "the original contents survive aborts and crashes" in
      let s0 = Shadow.begin_modify pack 2 in
      Shadow.set_contents s0 original;
      Shadow.commit s0 ~vv:(Vvec.bump Vvec.zero 0) ~mtime:1.0;
      let used_before = Disk.used (Pack.disk pack) in
      let session = Shadow.begin_modify pack 2 in
      let model = List.fold_left apply_model original ops in
      List.iter (apply_session session) ops;
      let read_back () = Pack.read_string pack (Pack.get_inode pack 2) in
      match fate with
      | 0 ->
        Shadow.commit session ~vv:(Vvec.bump (Vvec.bump Vvec.zero 0) 0) ~mtime:2.0;
        String.equal (read_back ()) model
      | 1 ->
        Shadow.abort session;
        String.equal (read_back ()) original
        && Disk.used (Pack.disk pack) = used_before
      | _ ->
        Shadow.crash_before_switch session;
        let intact = String.equal (read_back ()) original in
        ignore (Pack.scavenge pack);
        intact
        && String.equal (read_back ()) original
        && Disk.used (Pack.disk pack) = used_before)

(* ---- partition protocol on arbitrary topologies ---- *)

let arb_link_failures =
  QCheck.make
    ~print:(fun l ->
      String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l))
    QCheck.Gen.(list_size (int_bound 10) (pair (int_bound 5) (int_bound 5)))

let prop_partition_fully_connected =
  QCheck.Test.make ~name:"partition protocol finds fully-connected set"
    ~count:60 arb_link_failures (fun failures ->
      let w = World.create ~config:(World.default_config ~n_sites:6 ()) () in
      let topo = World.topology w in
      List.iter (fun (a, b) -> if a <> b then Topology.set_link topo a b false) failures;
      let r = Recovery.Partition.run_active (World.kernel w 0) in
      let members = r.Recovery.Partition.members in
      List.mem 0 members
      && Topology.fully_connected topo members
      && List.for_all
           (fun m -> (World.kernel w m).K.site_table = members)
           members)

(* ---- end-to-end convergence after partition and merge ---- *)

let arb_scenario =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (fun (s, f, c) -> Printf.sprintf "s%d f%d %c" s f c) ops))
    QCheck.Gen.(
      list_size (int_range 1 8)
        (triple (int_bound 3) (int_bound 2) (char_range 'a' 'z')))

let files = [ "/f0"; "/f1"; "/f2" ]

let prop_convergence_after_merge =
  QCheck.Test.make ~name:"copies converge after merge" ~count:40 arb_scenario
    (fun ops ->
      let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
      let k0 = World.kernel w 0 and p0 = World.proc w 0 in
      Kernel.set_ncopies p0 4;
      List.iter (fun f -> ignore (Kernel.creat k0 p0 f)) files;
      ignore (World.settle w);
      ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
      List.iter
        (fun (site, file_idx, c) ->
          let k = World.kernel w site and p = World.proc w site in
          try Kernel.write_file k p (List.nth files file_idx) (String.make 20 c)
          with K.Error _ -> ())
        ops;
      ignore (World.settle w);
      ignore (World.heal_and_merge w);
      ignore (World.settle w);
      (* Every pack's copy of every file must agree on the version vector,
         and contents must agree unless the file is marked in conflict. *)
      List.for_all
        (fun file ->
          let gf =
            Locus_core.Pathname.resolve_from k0
              ~cwd:(Catalog.Mount.root k0.K.mount) ~context:[] file
          in
          let copies =
            List.filter_map
              (fun s ->
                let k = World.kernel w s in
                match Hashtbl.find_opt k.K.packs 0 with
                | Some pack -> (
                  match Pack.find_inode pack gf.Catalog.Gfile.ino with
                  | Some inode -> Some (inode.Inode.vv, Pack.read_string pack inode)
                  | None -> None)
                | None -> None)
              [ 0; 1; 2; 3 ]
          in
          let conflicted =
            match Locus_core.Css.find_file k0 0 gf.Catalog.Gfile.ino with
            | Some f -> f.K.css_conflict
            | None -> false
          in
          conflicted
          || match copies with
             | [] -> false
             | (vv0, body0) :: rest ->
               List.for_all
                 (fun (vv, body) -> Vvec.equal vv vv0 && String.equal body body0)
                 rest)
        files)

(* ---- model-based filesystem check ----

   Within one partition, the distributed filesystem must be observationally
   equivalent to a trivial map from names to contents, no matter which site
   issues each operation ("the latest version is the only one visible"). *)

type fs_op =
  | Op_write of int * int * char (* site, file index, fill byte *)
  | Op_append of int * int * char
  | Op_unlink of int * int
  | Op_read of int * int

let gen_fs_op =
  QCheck.Gen.(
    oneof
      [
        map3 (fun s f c -> Op_write (s, f, c)) (int_bound 3) (int_bound 4)
          (char_range 'a' 'z');
        map3 (fun s f c -> Op_append (s, f, c)) (int_bound 3) (int_bound 4)
          (char_range 'a' 'z');
        map2 (fun s f -> Op_unlink (s, f)) (int_bound 3) (int_bound 4);
        map2 (fun s f -> Op_read (s, f)) (int_bound 3) (int_bound 4);
      ])

let arb_fs_ops =
  QCheck.make
    ~print:(fun ops -> Printf.sprintf "%d ops" (List.length ops))
    QCheck.Gen.(list_size (int_range 1 25) gen_fs_op)

let prop_fs_matches_model =
  QCheck.Test.make ~name:"filesystem matches a map model" ~count:60 arb_fs_ops
    (fun ops ->
      let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
      let p0 = World.proc w 0 in
      Kernel.set_ncopies p0 2;
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let name f = Printf.sprintf "/m%d" f in
      let ok = ref true in
      List.iter
        (fun op ->
          let run site f g =
            let k = World.kernel w site and p = World.proc w site in
            g k p (name f)
          in
          (match op with
          | Op_write (site, f, c) ->
            run site f (fun k p path ->
                let body = String.make 12 c in
                (try
                   (match Hashtbl.find_opt model path with
                   | None -> ignore (Kernel.creat k p path)
                   | Some _ -> ());
                   Kernel.write_file k p path body;
                   Hashtbl.replace model path body
                 with K.Error _ -> ok := false))
          | Op_append (site, f, c) ->
            run site f (fun k p path ->
                match Hashtbl.find_opt model path with
                | Some old -> (
                  try
                    Kernel.append_file k p path (String.make 3 c);
                    Hashtbl.replace model path (old ^ String.make 3 c)
                  with K.Error _ -> ok := false)
                | None -> (
                  (* Appending to a missing file must fail identically. *)
                  match Kernel.append_file k p path "x" with
                  | () -> ok := false
                  | exception K.Error _ -> ()))
          | Op_unlink (site, f) ->
            run site f (fun k p path ->
                match Hashtbl.find_opt model path with
                | Some _ -> (
                  try
                    Kernel.unlink k p path;
                    Hashtbl.remove model path
                  with K.Error _ -> ok := false)
                | None -> (
                  match Kernel.unlink k p path with
                  | () -> ok := false
                  | exception K.Error _ -> ()))
          | Op_read (site, f) ->
            run site f (fun k p path ->
                match (Hashtbl.find_opt model path, Kernel.read_file k p path) with
                | Some expected, actual -> if not (String.equal expected actual) then ok := false
                | None, _ -> ok := false
                | exception K.Error (Proto.Enoent, _) ->
                  if Hashtbl.mem model path then ok := false
                | exception K.Error _ -> ok := false));
          ignore (World.settle w))
        ops;
      (* Final check: every model file readable with model contents from
         every site. *)
      Hashtbl.iter
        (fun path body ->
          List.iter
            (fun s ->
              match Kernel.read_file (World.kernel w s) (World.proc w s) path with
              | actual -> if not (String.equal actual body) then ok := false
              | exception K.Error _ -> ok := false)
            [ 0; 1; 2; 3 ])
        model;
      !ok)

(* ---- committed data survives crashes at random points ---- *)

let arb_crash_plan =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 6) (int_bound 9))

let prop_commits_survive_crashes =
  QCheck.Test.make ~name:"committed data survives crashes" ~count:40
    arb_crash_plan (fun plan ->
      let w = World.create ~config:(World.default_config ~n_sites:3 ()) () in
      let k0 = World.kernel w 0 and p0 = World.proc w 0 in
      Kernel.set_ncopies p0 2;
      ignore (Kernel.creat k0 p0 "/d");
      Kernel.write_file k0 p0 "/d" "committed-0";
      ignore (World.settle w);
      let committed = ref "committed-0" in
      let ok = ref true in
      List.iteri
        (fun i step ->
          (* Write a new version, then crash the victim site either before
             or after the commit, depending on the plan. *)
          let body = Printf.sprintf "committed-%d" (i + 1) in
          let victim = 1 + (step mod 2) in
          if step < 5 then begin
            (* Crash before any new commit: the old version must survive. *)
            World.crash_site w victim;
            World.restart_site w victim;
            ignore (World.heal_and_merge w)
          end
          else begin
            (try
               Kernel.write_file k0 p0 "/d" body;
               committed := body
             with K.Error _ -> ());
            ignore (World.settle w);
            World.crash_site w victim;
            World.restart_site w victim;
            ignore (World.heal_and_merge w)
          end;
          match Kernel.read_file k0 p0 "/d" with
          | actual -> if not (String.equal actual !committed) then ok := false
          | exception K.Error _ -> ok := false)
        plan;
      !ok)

(* ---- convergence despite message loss ---- *)

let prop_convergence_despite_message_loss =
  QCheck.Test.make ~name:"recovery compensates for lost notifications" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_bound 1000) (int_range 1 6)))
    (fun (seed, writes) ->
      let w = World.create ~config:(World.default_config ~n_sites:4 ()) () in
      let k0 = World.kernel w 0 and p0 = World.proc w 0 in
      Kernel.set_ncopies p0 4;
      ignore (Kernel.creat k0 p0 "/lossy");
      Kernel.write_file k0 p0 "/lossy" "v0";
      ignore (World.settle w);
      (* One-way notifications (commit notify, propagation) now get lost
         sometimes; synchronous calls that fail surface as ENET and are
         tolerated. *)
      Net.Netsim.set_drop_probability (World.net w) 0.3;
      ignore seed;
      let last_committed = ref "v0" in
      for i = 1 to writes do
        let body = Printf.sprintf "v%d" i in
        match Kernel.write_file k0 p0 "/lossy" body with
        | () -> last_committed := body
        | exception K.Error _ -> ()
      done;
      ignore (World.settle w);
      (* Heal: recovery reconciles whatever the lost messages broke. *)
      Net.Netsim.set_drop_probability (World.net w) 0.0;
      ignore (World.heal_and_merge w);
      ignore (World.settle w);
      List.for_all
        (fun s ->
          match Kernel.read_file (World.kernel w s) (World.proc w s) "/lossy" with
          | body -> String.equal body !last_committed
          | exception K.Error _ -> false)
        (World.sites w))

(* ---- the two structures the soak harness leans on hardest ---- *)

(* Eheap against an insertion-ordered list model: pop must always return
   the minimum-time element, earliest-pushed first among ties — the
   determinism guarantee the whole simulator rests on. Push/pop streams
   are arbitrary interleavings, long enough to grow the heap's backing
   array several times; times are drawn from a tiny range to force many
   ties. *)
let prop_eheap_matches_model =
  QCheck.Test.make ~count:200
    ~name:"eheap: model order — nondecreasing time, FIFO ties, survives grow"
    QCheck.(
      make Gen.(list_size (int_range 0 400) (pair (int_bound 8) (int_bound 3))))
    (fun ops ->
      let h = Sim.Eheap.create () in
      (* model: (time, serial) in push order; pop takes the first element
         holding the minimum time. *)
      let model = ref [] in
      let serial = ref 0 in
      let ok = ref true in
      let model_pop () =
        match !model with
        | [] -> None
        | (t0, s0) :: tl ->
          let tmin, smin =
            List.fold_left
              (fun (bt, bs) (t, s) -> if t < bt then (t, s) else (bt, bs))
              (t0, s0) tl
          in
          model := List.filter (fun (_, s) -> s <> smin) !model;
          Some (tmin, smin)
      in
      (* Alternate the two pop entry points: [pop] and the scheduler's
         allocation-free [pop_into]; both must agree with the model, and
         [top_time]/[peek_time] must agree with each other beforehand. *)
      let scratch = [| Float.nan |] in
      let pops = ref 0 in
      let pop_both () =
        (match Sim.Eheap.peek_time h with
        | Some t -> if Sim.Eheap.top_time h <> t then ok := false
        | None -> ());
        incr pops;
        let popped =
          if Sim.Eheap.is_empty h then None
          else if !pops land 1 = 0 then Sim.Eheap.pop h
          else begin
            let payload = Sim.Eheap.pop_into h ~time:scratch in
            Some (scratch.(0), payload)
          end
        in
        match (popped, model_pop ()) with
        | None, None -> ()
        | Some (t, s), Some (t', s') -> if t <> t' || s <> s' then ok := false
        | Some _, None | None, Some _ -> ok := false
      in
      List.iter
        (fun (time, kind) ->
          if kind = 0 then pop_both ()
          else begin
            incr serial;
            let t = float_of_int time in
            Sim.Eheap.push h ~time:t !serial;
            model := !model @ [ (t, !serial) ]
          end)
        ops;
      while not (Sim.Eheap.is_empty h) || !model <> [] do
        pop_both ()
      done;
      !ok && Sim.Eheap.size h = 0)

(* The scheduler's hold pattern: preload, then pop-one/push-one with the
   new event at popped-time + delta, as a running simulation keeps its
   queue. Popped times must be nondecreasing throughout and no event may
   be lost — the shape of the churn the flood workload sustains. *)
let prop_eheap_hold_pattern =
  QCheck.Test.make ~count:100
    ~name:"eheap: hold-pattern churn is order-preserving and lossless"
    QCheck.(
      make
        Gen.(
          pair (int_range 1 64)
            (list_size (int_range 1 300) (int_bound 5))))
    (fun (preload, deltas) ->
      let h = Sim.Eheap.create () in
      for i = 1 to preload do
        Sim.Eheap.push h ~time:(float_of_int (i mod 7)) i
      done;
      let scratch = [| Float.nan |] in
      let last = ref Float.neg_infinity in
      let ok = ref true in
      List.iter
        (fun d ->
          ignore (Sim.Eheap.pop_into h ~time:scratch);
          if scratch.(0) < !last then ok := false;
          last := scratch.(0);
          Sim.Eheap.push h ~time:(scratch.(0) +. float_of_int d) 0)
        deltas;
      !ok && Sim.Eheap.size h = preload)

(* ---- the flood generator's popularity sampler ---- *)

let prop_zipf_pmf =
  QCheck.Test.make ~count:200
    ~name:"zipf: pmf nonincreasing in rank, sums to 1, samples in range"
    QCheck.(make Gen.(pair (int_range 1 200) (float_bound_inclusive 3.0)))
    (fun (n, s) ->
      let z = Locus.Zipf.create ~n ~s in
      let sum = ref 0.0 in
      let mono = ref true in
      for r = 0 to n - 1 do
        sum := !sum +. Locus.Zipf.pmf z r;
        if r > 0 && Locus.Zipf.pmf z r > Locus.Zipf.pmf z (r - 1) +. 1e-12 then
          mono := false
      done;
      let rng = Sim.Rng.create 99L in
      let in_range = ref true in
      for _ = 1 to 50 do
        let r = Locus.Zipf.sample z rng in
        if r < 0 || r >= n then in_range := false
      done;
      !mono && Float.abs (!sum -. 1.0) < 1e-9 && !in_range)

let prop_zipf_deterministic =
  QCheck.Test.make ~count:100
    ~name:"zipf: sampled stream is a pure function of the rng seed"
    QCheck.(make Gen.(pair (int_range 1 100) (int_bound 1000)))
    (fun (n, seed) ->
      let z = Locus.Zipf.create ~n ~s:1.1 in
      let stream () =
        let rng = Sim.Rng.create (Int64.of_int seed) in
        List.init 100 (fun _ -> Locus.Zipf.sample z rng)
      in
      stream () = stream ())

module Ilru = Storage.Lru.Make (struct
  type t = int

  let copy x = x
end)

(* Lru against an MRU-ordered list model with explicit capacity: recency
   order, hit promotion, refresh-without-eviction, capacity victims (and
   their on_evict callbacks) must all match the model, and occupancy may
   never exceed capacity. *)
let prop_lru_matches_model =
  QCheck.Test.make ~count:200
    ~name:"lru: matches MRU-list model, capacity never exceeded"
    QCheck.(
      make
        Gen.(
          pair (int_range 1 8)
            (list_size (int_bound 200) (pair (int_bound 12) (int_bound 3)))))
    (fun (cap, ops) ->
      let evicted = ref [] in
      let c =
        Ilru.create ~on_evict:(fun k -> evicted := k :: !evicted) ~capacity:cap ()
      in
      let model = ref [] (* keys, MRU first *) in
      let model_evicted = ref [] in
      let ok = ref true in
      let drop_last l =
        match List.rev l with
        | [] -> ([], None)
        | last :: front -> (List.rev front, Some last)
      in
      List.iter
        (fun (key, op) ->
          (match op with
          | 0 | 1 ->
            Ilru.insert c key key;
            let m = key :: List.filter (fun k -> k <> key) !model in
            if List.length m > cap then begin
              let kept, victim = drop_last m in
              model := kept;
              Option.iter (fun v -> model_evicted := v :: !model_evicted) victim
            end
            else model := m
          | 2 -> (
            let mhit = List.mem key !model in
            match Ilru.find c key with
            | Some v ->
              if (not mhit) || v <> key then ok := false
              else model := key :: List.filter (fun k -> k <> key) !model
            | None -> if mhit then ok := false)
          | _ ->
            Ilru.invalidate c key;
            model := List.filter (fun k -> k <> key) !model);
          if Ilru.length c > cap then ok := false)
        ops;
      !ok && Ilru.keys_mru c = !model && !evicted = !model_evicted)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dir_codec;
      prop_mbox_merge_commutative;
      prop_mbox_merge_idempotent;
      prop_mbox_merge_no_loss;
      prop_shadow_all_or_nothing;
      prop_partition_fully_connected;
      prop_convergence_after_merge;
      prop_fs_matches_model;
      prop_commits_survive_crashes;
      prop_convergence_despite_message_loss;
      prop_eheap_matches_model;
      prop_eheap_hold_pattern;
      prop_zipf_pmf;
      prop_zipf_deterministic;
      prop_lru_matches_model;
    ]

let () = Alcotest.run "props" [ ("invariants", props) ]
