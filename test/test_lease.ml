(* Open leases: CSS-granted read leases with callback invalidation and
   deferred close. Warm re-opens cost zero messages; a writer open or a
   version advance breaks the lease by callback before the next read can
   observe stale data; eviction sends exactly one deferred close; no lease
   survives a partition event; both ablations reproduce the classic
   protocol's message counts exactly. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module Css = Locus_core.Css
module Openlease = Locus_core.Openlease
module Pathname = Locus_core.Pathname
module K = Locus_core.Ktypes
module Mount = Catalog.Mount
module Gfile = Catalog.Gfile
module Stats = Sim.Stats
module Vvec = Vv.Version_vector

let check = Alcotest.check

(* Packs at 0 and 1 (CSS at 0), five sites: every US/CSS/SS collocation of
   Figure 2 is constructible. *)
let make_world ?kconfig () =
  let base = World.default_config ~n_sites:5 () in
  let kernel_config = Option.value kconfig ~default:base.World.kernel_config in
  World.create
    ~config:
      {
        base with
        World.filegroups = [ { World.fg = 0; pack_sites = [ 0; 1 ]; mount_path = None } ];
        kernel_config;
      }
    ()

let gf_of k path =
  Pathname.resolve_from k ~cwd:(Mount.root k.K.mount) ~context:[] path

let mk_file w ~at ~path ~body =
  let k = World.kernel w at and p = World.proc w at in
  Kernel.set_ncopies p 1;
  ignore (Kernel.creat k p path);
  Kernel.write_file k p path body;
  ignore (World.settle w)

let msgs w snap = Stats.delta_of (World.stats w) snap "net.msg"

let held k gf = Openlease.find_entry k.K.open_leases gf <> None

(* ---- warm re-open ---- *)

(* All roles distinct (file at 1, CSS at 0, US at 3): the cold open costs
   the paper's four messages, and the re-open riding the retained grant
   costs none at all. *)
let test_warm_reopen_zero_messages () =
  let w = make_world () in
  mk_file w ~at:1 ~path:"/f" ~body:"x";
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/f" in
  let snap = Stats.snapshot (World.stats w) in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  check Alcotest.int "cold open msgs" 4 (msgs w snap);
  check Alcotest.string "cold data" "x" (Us.read_all k3 o);
  Us.close k3 o;
  ignore (World.settle w);
  check Alcotest.bool "grant retained across close" true (held k3 gf);
  let snap = Stats.snapshot (World.stats w) in
  let o2 = Us.open_gf k3 gf Proto.Mode_read in
  check Alcotest.int "warm reopen msgs" 0 (msgs w snap);
  check Alcotest.string "warm data" "x" (Us.read_all k3 o2);
  Us.close k3 o2;
  ignore (World.settle w);
  check Alcotest.int "lease hit counted" 1
    (Stats.get (World.stats w) "open.lease.hit")

(* ---- callback breaks ---- *)

(* A writer open revokes every read lease on the file; the holder's next
   open revalidates through the CSS and reads the committed data. *)
let test_break_on_writer_open () =
  let w = make_world () in
  mk_file w ~at:1 ~path:"/f" ~body:"old!";
  let k3 = World.kernel w 3 and k2 = World.kernel w 2 in
  let gf = gf_of k3 "/f" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  ignore (Us.read_all k3 o);
  Us.close k3 o;
  ignore (World.settle w);
  check Alcotest.bool "lease held" true (held k3 gf);
  let ow = Us.open_gf k2 gf Proto.Mode_modify in
  ignore (World.settle w);
  check Alcotest.bool "broken by writer open" false (held k3 gf);
  Us.set_contents k2 ow "new!";
  Us.commit k2 ow;
  Us.close k2 ow;
  ignore (World.settle w);
  let snap = Stats.snapshot (World.stats w) in
  let o2 = Us.open_gf k3 gf Proto.Mode_read in
  check Alcotest.bool "reopen revalidates (cold)" true (msgs w snap > 0);
  check Alcotest.string "never stale" "new!" (Us.read_all k3 o2);
  Us.close k3 o2;
  ignore (World.settle w)

(* The CSS can also learn of a version advance without a writer open
   flowing through it (reconciliation, a replayed notification): the
   commit-notify bookkeeping must break the leases too. *)
let test_break_on_commit_notify () =
  let w = make_world () in
  mk_file w ~at:1 ~path:"/f" ~body:"v1";
  let k0 = World.kernel w 0 and k3 = World.kernel w 3 in
  let gf = gf_of k3 "/f" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  Us.close k3 o;
  ignore (World.settle w);
  check Alcotest.bool "lease held" true (held k3 gf);
  let f = Css.get_file k0 0 gf.Gfile.ino in
  let vv' = Vvec.bump f.K.latest_vv 1 in
  Css.handle_commit_notify k0 gf ~origin:1 ~vv:vv' ~deleted:false;
  ignore (World.settle w);
  check Alcotest.bool "broken by version advance" false (held k3 gf)

(* ---- deferred close ---- *)

(* With a single-entry lease table, registering a second grant evicts the
   first, which sends its deferred close — exactly one [Us_close] RPC —
   and drains the reader registration at the CSS. *)
let test_eviction_sends_one_close () =
  let kconfig = { K.default_config with K.open_lease_entries = 1 } in
  let w = make_world ~kconfig () in
  mk_file w ~at:1 ~path:"/a" ~body:"a";
  mk_file w ~at:1 ~path:"/b" ~body:"b";
  let k3 = World.kernel w 3 and k0 = World.kernel w 0 in
  let gfa = gf_of k3 "/a" and gfb = gf_of k3 "/b" in
  let oa = Us.open_gf k3 gfa Proto.Mode_read in
  Us.close k3 oa;
  ignore (World.settle w);
  let stats = World.stats w in
  let snap = Stats.snapshot stats in
  let ob = Us.open_gf k3 gfb Proto.Mode_read in
  check Alcotest.int "one eviction" 1 (Stats.delta_of stats snap "open.lease.evict");
  check Alcotest.int "exactly one deferred Us_close" 2
    (Stats.delta_of stats snap "net.msg.close.us");
  ignore (World.settle w);
  (match Css.find_file k0 0 gfa.Gfile.ino with
  | Some f -> check Alcotest.int "reader registration drained" 0 (K.Site.Map.cardinal f.K.readers)
  | None -> Alcotest.fail "css record missing");
  check Alcotest.bool "evicted grant gone" false (held k3 gfa);
  check Alcotest.bool "new grant live" true (held k3 gfb);
  Us.close k3 ob;
  ignore (World.settle w)

(* ---- partition events ---- *)

(* No lease survives a partition or a merge: the grantor may be
   unreachable or no longer the CSS, so its break callbacks can no longer
   be trusted (the §5.6 lock-table scrub applied to leases). *)
let test_scrub_across_partition_and_merge () =
  let w = make_world () in
  mk_file w ~at:1 ~path:"/f" ~body:"x";
  let k3 = World.kernel w 3 in
  let gf = gf_of k3 "/f" in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  Us.close k3 o;
  ignore (World.settle w);
  check Alcotest.bool "lease held" true (held k3 gf);
  ignore (World.partition w [ [ 0; 1; 2 ]; [ 3; 4 ] ]);
  ignore (World.settle w);
  check Alcotest.bool "scrubbed by the partition protocol" false (held k3 gf);
  ignore (World.heal_and_merge w);
  ignore (World.settle w);
  check Alcotest.bool "nothing resurrected by the merge" false (held k3 gf);
  (* Service resumes through the normal protocol. *)
  let o2 = Us.open_gf k3 gf Proto.Mode_read in
  check Alcotest.string "readable after merge" "x" (Us.read_all k3 o2);
  Us.close k3 o2;
  ignore (World.settle w)

(* The scrub also runs on the partition that keeps both CSS and SS: a
   lease must never survive any membership change. *)
let test_scrub_even_in_surviving_partition () =
  let w = make_world () in
  mk_file w ~at:1 ~path:"/f" ~body:"x";
  let k2 = World.kernel w 2 in
  let gf = gf_of k2 "/f" in
  let o = Us.open_gf k2 gf Proto.Mode_read in
  Us.close k2 o;
  ignore (World.settle w);
  check Alcotest.bool "lease held" true (held k2 gf);
  (* Sites 0 (CSS), 1 (SS) and 2 (holder) stay together; 3, 4 leave. *)
  ignore (World.partition w [ [ 0; 1; 2 ]; [ 3; 4 ] ]);
  ignore (World.settle w);
  check Alcotest.bool "scrubbed anyway" false (held k2 gf);
  let o2 = Us.open_gf k2 gf Proto.Mode_read in
  check Alcotest.string "still readable" "x" (Us.read_all k2 o2);
  Us.close k2 o2;
  ignore (World.settle w)

(* ---- ablations ---- *)

(* With the layer off — either switch — both the first and the second
   open of every E1 collocation mode cost the paper's message counts:
   the protocol is exactly the pre-lease one. *)
let test_ablations_match_e1_counts () =
  (* (file_at, open_at, paper count) for the five E1 placements. *)
  let placements = [ (0, 0, 0); (1, 1, 2); (1, 0, 2); (0, 3, 2); (1, 3, 4) ] in
  let run kconfig (file_at, open_at, _) =
    let w = make_world ~kconfig () in
    mk_file w ~at:file_at ~path:"/f" ~body:"x";
    let k = World.kernel w open_at in
    let gf = gf_of k "/f" in
    let snap = Stats.snapshot (World.stats w) in
    let o = Us.open_gf k gf Proto.Mode_read in
    let cold = msgs w snap in
    Us.close k o;
    ignore (World.settle w);
    let snap = Stats.snapshot (World.stats w) in
    let o2 = Us.open_gf k gf Proto.Mode_read in
    let warm = msgs w snap in
    Us.close k o2;
    ignore (World.settle w);
    (cold, warm)
  in
  List.iter
    (fun ((_, _, paper) as p) ->
      let cold, warm = run { K.default_config with K.open_lease = false } p in
      check Alcotest.int "open_lease=false cold" paper cold;
      check Alcotest.int "open_lease=false warm" paper warm;
      let cold, warm = run { K.default_config with K.open_lease_entries = 0 } p in
      check Alcotest.int "open_lease_entries=0 cold" paper cold;
      check Alcotest.int "open_lease_entries=0 warm" paper warm)
    placements

let () =
  Alcotest.run "lease"
    [
      ( "warm reopen",
        [
          Alcotest.test_case "zero messages" `Quick test_warm_reopen_zero_messages;
        ] );
      ( "callback break",
        [
          Alcotest.test_case "writer open" `Quick test_break_on_writer_open;
          Alcotest.test_case "commit notify" `Quick test_break_on_commit_notify;
        ] );
      ( "deferred close",
        [
          Alcotest.test_case "eviction sends one close" `Quick
            test_eviction_sends_one_close;
        ] );
      ( "partition",
        [
          Alcotest.test_case "scrub across partition + merge" `Quick
            test_scrub_across_partition_and_merge;
          Alcotest.test_case "scrub in surviving partition" `Quick
            test_scrub_even_in_surviving_partition;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "matches E1 counts" `Quick test_ablations_match_e1_counts;
        ] );
    ]
