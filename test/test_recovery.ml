(* Reconfiguration and recovery tests (sections 4 and 5): the partition
   protocol's iterative intersection, the merge protocol and its adaptive
   timeout, CSS re-election and lock-table rebuild, the cleanup table, and
   the reconciliation rules for directories, mailboxes and untyped files. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Partition = Recovery.Partition
module Merge = Recovery.Merge
module Reconcile = Recovery.Reconcile
module Topology = Net.Topology
module Inode = Storage.Inode

let check = Alcotest.check

let make_world ?(n = 6) () = World.create ~config:(World.default_config ~n_sites:n ()) ()

(* ---- partition protocol (section 5.4) ---- *)

let test_partition_membership_agreement () =
  let w = make_world () in
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ];
  let r = Partition.run_active (World.kernel w 0) in
  check Alcotest.(list int) "members" [ 0; 1; 2 ] r.Partition.members;
  (* Consensus: every member's site table equals the agreed set. *)
  List.iter
    (fun s ->
      check Alcotest.(list int)
        (Printf.sprintf "site %d table" s)
        [ 0; 1; 2 ]
        (World.kernel w s).K.site_table)
    [ 0; 1; 2 ]

(* A single broken link must not split the net into three parts: the
   protocol finds maximum partitions. *)
let test_partition_maximal_on_single_link_failure () =
  let w = make_world ~n:4 () in
  Topology.set_link (World.topology w) 1 3 false;
  let r = Partition.run_active (World.kernel w 0) in
  (* 0 keeps either {0,1,2} or {0,2,3}: size 3, not 2. *)
  check Alcotest.int "maximum partition kept" 3 (List.length r.Partition.members);
  check Alcotest.bool "initiator included" true (List.mem 0 r.Partition.members)

let test_partition_single_site () =
  let w = make_world ~n:3 () in
  Topology.partition (World.topology w) [ [ 0 ]; [ 1; 2 ] ];
  let r = Partition.run_active (World.kernel w 0) in
  check Alcotest.(list int) "alone" [ 0 ] r.Partition.members

let test_partition_active_failover () =
  let w = make_world ~n:4 () in
  (* Site 1 believes site 0 is coordinating, but site 0 is dead. *)
  World.crash_site w 0;
  match Partition.check_active_and_takeover (World.kernel w 1) ~active:0 with
  | Some r ->
    check Alcotest.(list int) "takeover found survivors" [ 1; 2; 3 ] r.Partition.members
  | None -> Alcotest.fail "passive site should have taken over"

let test_partition_css_reelection () =
  let w = make_world ~n:4 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.creat k0 p0 "/r");
  Kernel.write_file k0 p0 "/r" "data";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0 ]; [ 1; 2; 3 ] ]);
  (* The right-hand partition must have re-elected site 1 as CSS for fg 0
     and rebuilt its tables: opens keep working. *)
  let k1 = World.kernel w 1 in
  check Alcotest.int "new CSS" 1 (Locus_core.Ktypes.fg_info k1 0).K.css_site;
  let p2 = World.proc w 2 and k2 = World.kernel w 2 in
  check Alcotest.string "reads still served" "data" (Kernel.read_file k2 p2 "/r");
  Kernel.write_file k2 p2 "/r" "updated in right partition";
  ignore (World.settle w);
  check Alcotest.string "updates still served" "updated in right partition"
    (Kernel.read_file k2 p2 "/r")

(* ---- merge protocol (section 5.5) ---- *)

let test_merge_rejoins_all () =
  let w = make_world () in
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ]);
  Topology.heal (World.topology w);
  let r = Merge.run_initiator (World.kernel w 0) ~all_sites:(World.sites w) in
  check Alcotest.(list int) "all sites merged" [ 0; 1; 2; 3; 4; 5 ] r.Merge.members;
  List.iter
    (fun s ->
      check Alcotest.(list int)
        (Printf.sprintf "site %d table" s)
        [ 0; 1; 2; 3; 4; 5 ]
        (World.kernel w s).K.site_table)
    (World.sites w)

let test_merge_adaptive_timeout_cheaper () =
  (* A small partition of a large network merges quickly under the
     two-level timeout: when every site believed up has answered, only the
     short timeout applies to the (down) rest. *)
  let run policy =
    let w = make_world ~n:6 () in
    ignore (World.partition w [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]);
    (* Sites 3..5 stay down: believed down by everyone in {0,1,2}. *)
    List.iter (fun s -> World.crash_site w s) [ 3; 4; 5 ];
    let r = Merge.run_initiator ~policy (World.kernel w 0) ~all_sites:(World.sites w) in
    r.Merge.wait_charged
  in
  let fixed = run (Merge.Fixed_timeout 150.0) in
  let adaptive = run (Merge.Adaptive_timeout { long = 150.0; short = 15.0 }) in
  check Alcotest.bool "adaptive waits much less" true (adaptive *. 2.0 < fixed);
  check (Alcotest.float 0.01) "adaptive = short timeout" 15.0 adaptive

let test_merge_expected_site_missing_uses_long_timeout () =
  let w = make_world ~n:4 () in
  (* Site 3 crashes without anyone noticing: still believed up. *)
  World.crash_site w 3;
  let r =
    Merge.run_initiator
      ~policy:(Merge.Adaptive_timeout { long = 150.0; short = 15.0 })
      (World.kernel w 0) ~all_sites:(World.sites w)
  in
  check (Alcotest.float 0.01) "long timeout charged" 150.0 r.Merge.wait_charged;
  check Alcotest.(list int) "survivors merged" [ 0; 1; 2 ] r.Merge.members

(* The gateway optimization of the 5.5 footnote: in a large network, only
   sites vouched for by a gateway are polled individually. *)
let test_merge_gateway_optimization () =
  let w = make_world ~n:12 () in
  (* Sites 6..11 form a remote subnet behind gateway 6; the whole remote
     subnet except the gateway is down. Everyone still believes only their
     own partition up. *)
  ignore (World.partition w [ [ 0; 1; 2; 3; 4; 5 ]; [ 6; 7; 8; 9; 10; 11 ] ]);
  List.iter (fun s -> World.crash_site w s) [ 7; 8; 9; 10; 11 ];
  ignore (World.detect_failures w ~initiator:6);
  Topology.heal (World.topology w);
  List.iter (fun s -> Topology.set_site_up (World.topology w) s false)
    [ 7; 8; 9; 10; 11 ];
  let r =
    Merge.run_initiator ~gateways:[ 6 ] (World.kernel w 0)
      ~all_sites:(World.sites w)
  in
  (* The five dead subnet members were never polled: no gateway vouched. *)
  check Alcotest.int "skipped unvouched sites" 5 r.Merge.skipped;
  check Alcotest.(list int) "gateway + local partition merged"
    [ 0; 1; 2; 3; 4; 5; 6 ] r.Merge.members;
  check (Alcotest.float 0.01) "no timeout charged" 0.0 r.Merge.wait_charged

let test_merge_busy_arbitration () =
  let w = make_world ~n:3 () in
  (* Site 0 is already coordinating a merge; a poll from a higher site is
     refused, and the higher site yields. *)
  Hashtbl.replace Merge.merging 0 ();
  (match Merge.run_initiator (World.kernel w 1) ~all_sites:(World.sites w) with
  | _ -> Alcotest.fail "higher-numbered initiator should yield"
  | exception Merge.Yield active -> check Alcotest.int "yields to lower site" 0 active);
  Hashtbl.remove Merge.merging 0

(* ---- cleanup procedure (section 5.6 table) ---- *)

let test_cleanup_reader_reopens_other_copy () =
  let w = make_world ~n:4 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 2;
  ignore (Kernel.creat k0 p0 "/multi");
  Kernel.write_file k0 p0 "/multi" "replicated";
  ignore (World.settle w);
  (* Open for read at site 3 served by some SS; crash that SS. *)
  let k3 = World.kernel w 3 in
  let gf =
    Locus_core.Pathname.resolve_from k3 ~cwd:(Catalog.Mount.root k3.K.mount)
      ~context:[] "/multi"
  in
  let o = Us.open_gf k3 gf Proto.Mode_read in
  let ss = o.K.o_ss in
  World.crash_site w ss;
  ignore (World.detect_failures w ~initiator:3);
  (* The system substituted another copy: the open still works. *)
  check Alcotest.bool "reopened elsewhere" false (Net.Site.equal o.K.o_ss ss);
  check Alcotest.bool "still open" false o.K.o_closed;
  let data, _ = Us.read_page k3 o 0 in
  check Alcotest.string "data intact" "replicated" (String.sub data 0 10);
  Us.close k3 o

let test_cleanup_writer_loses_update () =
  let w = make_world ~n:4 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  let k1 = World.kernel w 1 and p1 = World.proc w 1 in
  ignore (Kernel.creat k1 p1 "/only_at_1");
  Kernel.write_file k1 p1 "/only_at_1" "committed";
  ignore (World.settle w);
  ignore p0;
  let gf =
    Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/only_at_1"
  in
  let o = Us.open_gf k0 gf Proto.Mode_modify in
  Us.write k0 o ~off:0 "uncommitted";
  World.crash_site w 1;
  ignore (World.detect_failures w ~initiator:0);
  (* Update open on a lost SS: pages discarded, error in the descriptor. *)
  check Alcotest.bool "descriptor errored" true o.K.o_closed;
  check Alcotest.bool "cleanup counted" true
    (Sim.Stats.get (World.stats w) "cleanup.us.update_lost" >= 1);
  (* After restart, the committed version survives (shadow pages). *)
  World.restart_site w 1;
  ignore (World.heal_and_merge w);
  check Alcotest.string "previous commit intact" "committed"
    (Kernel.read_file k1 p1 "/only_at_1")

let test_cleanup_ss_aborts_orphan_session () =
  let w = make_world ~n:3 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 1;
  ignore (Kernel.creat k0 p0 "/victim");
  Kernel.write_file k0 p0 "/victim" "stable";
  ignore (World.settle w);
  (* Site 1 opens for modification, writes, then site 1 dies. *)
  let k1 = World.kernel w 1 in
  let gf =
    Locus_core.Pathname.resolve_from k1 ~cwd:(Catalog.Mount.root k1.K.mount)
      ~context:[] "/victim"
  in
  let o = Us.open_gf k1 gf Proto.Mode_modify in
  Us.write k1 o ~off:0 "doomed";
  (* Push the write-behind run out so the SS has an open shadow session to
     orphan when the site dies. *)
  Us.flush_writes k1 o;
  World.crash_site w 1;
  ignore (World.detect_failures w ~initiator:0);
  check Alcotest.bool "ss aborted the session" true
    (Sim.Stats.get (World.stats w) "cleanup.ss.aborted" >= 1);
  (* The committed version is what remains. *)
  check Alcotest.string "old version intact" "stable" (Kernel.read_file k0 p0 "/victim")

(* ---- reconciliation (section 4) ---- *)

let conflict_world () =
  let w = make_world ~n:4 () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 4;
  ignore (Kernel.mkdir k0 p0 "/mail");
  (w, k0, p0)

let total f recon = List.fold_left (fun acc (_, r) -> acc + f r) 0 recon

let test_stale_copy_propagates_on_merge () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.creat k0 p0 "/doc");
  Kernel.write_file k0 p0 "/doc" "v1";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  (* Update on the left only: the right side is merely stale. *)
  Kernel.write_file k0 p0 "/doc" "v2";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.int "no conflicts" 0 (total (fun r -> r.Reconcile.conflicts_marked) recon);
  check Alcotest.bool "propagations scheduled" true
    (total (fun r -> r.Reconcile.propagations) recon >= 1);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "right side caught up" "v2" (Kernel.read_file k3 p3 "/doc")

let test_mailbox_merge_on_partition () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.creat ~ftype:Inode.Mailbox k0 p0 "/mail/alice");
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  Kernel.mailbox_deliver k0 ~path:"/mail/alice" ~from:"bob" ~body:"left mail";
  Kernel.mailbox_deliver (World.kernel w 2) ~path:"/mail/alice" ~from:"carol"
    ~body:"right mail";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.bool "mailbox merged automatically" true
    (total (fun r -> r.Reconcile.mail_merges) recon >= 1);
  check Alcotest.int "no conflicts" 0 (total (fun r -> r.Reconcile.conflicts_marked) recon);
  let msgs = Kernel.mailbox_read k0 p0 "/mail/alice" in
  check Alcotest.int "both messages present" 2 (List.length msgs)

let test_delete_vs_update_saves_file () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.creat k0 p0 "/precious");
  Kernel.write_file k0 p0 "/precious" "original";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  (* Left deletes; right modifies. The file wants to be saved (4.4). *)
  Kernel.unlink k0 p0 "/precious";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  Kernel.write_file k2 p2 "/precious" "updated while deleted elsewhere";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.bool "save counted" true
    (total (fun r -> r.Reconcile.saved_from_delete + r.Reconcile.deletes_undone) recon
     >= 1);
  check Alcotest.string "modified data saved" "updated while deleted elsewhere"
    (Kernel.read_file k2 p2 "/precious")

let test_name_conflict_renames_both () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.creat ~ftype:Inode.Mailbox k0 p0 "/mail/root");
  ignore (Kernel.mkdir k0 p0 "/dir");
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  (* The same fresh name bound to different files in each partition. *)
  ignore (Kernel.creat k0 p0 "/dir/report");
  Kernel.write_file k0 p0 "/dir/report" "left report";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  ignore (Kernel.creat k2 p2 "/dir/report");
  Kernel.write_file k2 p2 "/dir/report" "right report";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.bool "name conflict detected" true
    (total (fun r -> r.Reconcile.name_conflicts) recon >= 1);
  let entries =
    Kernel.readdir k0 p0 "/dir"
    |> List.map (fun (e : Catalog.Dir.entry) -> e.Catalog.Dir.name)
    |> List.filter (fun n -> String.length n >= 6 && String.sub n 0 6 = "report")
  in
  check Alcotest.int "both versions kept under altered names" 2 (List.length entries);
  (* The owner was notified by mail. *)
  check Alcotest.bool "owner notified" true
    (List.length (Kernel.mailbox_read k0 p0 "/mail/root") >= 1)

let test_untyped_conflict_marked_and_resolvable () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.creat ~ftype:Inode.Mailbox k0 p0 "/mail/root");
  ignore (Kernel.creat k0 p0 "/binary");
  Kernel.write_file k0 p0 "/binary" "base";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  Kernel.write_file k0 p0 "/binary" "left";
  Kernel.write_file (World.kernel w 2) (World.proc w 2) "/binary" "right";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.int "conflict marked" 1
    (total (fun r -> r.Reconcile.conflicts_marked) recon);
  check Alcotest.bool "owner mailed" true
    (total (fun r -> r.Reconcile.mails_sent) recon >= 1);
  (* Access fails until resolved. *)
  (match Kernel.read_file k0 p0 "/binary" with
  | _ -> Alcotest.fail "conflicted file should refuse access"
  | exception K.Error (Proto.Econflict, _) -> ());
  (* Interactive resolution keeps one version. *)
  let gf =
    Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/binary"
  in
  check Alcotest.bool "resolution succeeds" true
    (Reconcile.resolve_manual (World.kernel w 0) gf ~winner:0);
  ignore (World.settle w);
  check Alcotest.string "winner readable" "left" (Kernel.read_file k0 p0 "/binary")

(* The one-call orchestration: partition protocols per group, then merge
   and recovery. *)
let test_full_reconfigure_entry () =
  let w = make_world () in
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 6;
  ignore (Kernel.creat k0 p0 "/o");
  Kernel.write_file k0 p0 "/o" "v1";
  ignore (World.settle w);
  Topology.partition (World.topology w) [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ];
  let report =
    Recovery.Reconfig.reconfigure (World.kernels w) ~initiators:[ 0; 3 ]
      ~merge_initiator:0
  in
  check Alcotest.int "two partition reports" 2
    (List.length report.Recovery.Reconfig.partition_reports);
  (* Sub-partitions formed... but the physical net is still split, so the
     merge only rejoins what is reachable. Heal and do it again. *)
  Topology.heal (World.topology w);
  let report2 =
    Recovery.Reconfig.reconfigure (World.kernels w) ~initiators:[ 0 ]
      ~merge_initiator:0
  in
  (match report2.Recovery.Reconfig.merge_report with
  | Some m -> check Alcotest.int "all merged" 6 (List.length m.Merge.members)
  | None -> Alcotest.fail "missing merge report");
  check Alcotest.string "file intact" "v1" (Kernel.read_file k0 p0 "/o")

(* Hidden directories reconcile by the same rules as ordinary ones: load
   modules installed for different machine types in different partitions
   both survive the merge. *)
let test_hidden_directory_merge () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.mkdir ~hidden:true k0 p0 "/cmd");
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  ignore (Kernel.creat k0 p0 "/cmd/@vax");
  Kernel.write_file k0 p0 "/cmd/@vax" "vax module";
  let k2 = World.kernel w 2 and p2 = World.proc w 2 in
  ignore (Kernel.creat k2 p2 "/cmd/@pdp11");
  Kernel.write_file k2 p2 "/cmd/@pdp11" "pdp11 module";
  ignore (World.settle w);
  let _, recon = World.heal_and_merge w in
  check Alcotest.int "no conflicts" 0 (total (fun r -> r.Reconcile.conflicts_marked) recon);
  check Alcotest.string "vax entry merged" "vax module"
    (Kernel.read_file k2 p2 "/cmd/@vax");
  check Alcotest.string "pdp11 entry merged" "pdp11 module"
    (Kernel.read_file k0 p0 "/cmd/@pdp11")

let test_demand_recovery_single_file () =
  let w, k0, p0 = conflict_world () in
  ignore (Kernel.creat k0 p0 "/hot");
  Kernel.write_file k0 p0 "/hot" "v1";
  ignore (World.settle w);
  ignore (World.partition w [ [ 0; 1 ]; [ 2; 3 ] ]);
  Kernel.write_file k0 p0 "/hot" "v2-left";
  ignore (World.settle w);
  (* Heal and merge membership, but reconcile just the one file on demand. *)
  Topology.heal (World.topology w);
  let r = Merge.run_initiator (World.kernel w 0) ~all_sites:(World.sites w) in
  check Alcotest.int "merged" 6 (List.length r.Merge.members + 2);
  let gf =
    Locus_core.Pathname.resolve_from k0 ~cwd:(Catalog.Mount.root k0.K.mount)
      ~context:[] "/hot"
  in
  let report = Reconcile.empty_report () in
  Reconcile.reconcile_file (World.kernel w 0) gf report;
  ignore (World.settle w);
  let k3 = World.kernel w 3 and p3 = World.proc w 3 in
  check Alcotest.string "demand-reconciled" "v2-left" (Kernel.read_file k3 p3 "/hot")

let () =
  Alcotest.run "recovery"
    [
      ( "partition-protocol",
        [
          Alcotest.test_case "membership agreement" `Quick
            test_partition_membership_agreement;
          Alcotest.test_case "maximal partitions" `Quick
            test_partition_maximal_on_single_link_failure;
          Alcotest.test_case "single site" `Quick test_partition_single_site;
          Alcotest.test_case "active failover" `Quick test_partition_active_failover;
          Alcotest.test_case "css re-election" `Quick test_partition_css_reelection;
        ] );
      ( "merge-protocol",
        [
          Alcotest.test_case "rejoins all" `Quick test_merge_rejoins_all;
          Alcotest.test_case "adaptive timeout" `Quick test_merge_adaptive_timeout_cheaper;
          Alcotest.test_case "long timeout for expected sites" `Quick
            test_merge_expected_site_missing_uses_long_timeout;
          Alcotest.test_case "busy arbitration" `Quick test_merge_busy_arbitration;
          Alcotest.test_case "gateway optimization" `Quick
            test_merge_gateway_optimization;
        ] );
      ( "cleanup",
        [
          Alcotest.test_case "reader reopens" `Quick test_cleanup_reader_reopens_other_copy;
          Alcotest.test_case "writer loses update" `Quick test_cleanup_writer_loses_update;
          Alcotest.test_case "ss aborts orphan" `Quick test_cleanup_ss_aborts_orphan_session;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "stale copy propagates" `Quick
            test_stale_copy_propagates_on_merge;
          Alcotest.test_case "mailbox merge" `Quick test_mailbox_merge_on_partition;
          Alcotest.test_case "delete vs update saves" `Quick
            test_delete_vs_update_saves_file;
          Alcotest.test_case "name conflict renames" `Quick test_name_conflict_renames_both;
          Alcotest.test_case "untyped conflict" `Quick
            test_untyped_conflict_marked_and_resolvable;
          Alcotest.test_case "demand recovery" `Quick test_demand_recovery_single_file;
          Alcotest.test_case "full reconfigure entry" `Quick test_full_reconfigure_entry;
          Alcotest.test_case "hidden directory merge" `Quick test_hidden_directory_merge;
        ] );
    ]
