(* Unit tests of the Current Synchronization Site logic (section 2.3.1):
   synchronization policy, storage-site selection, version bookkeeping,
   reclamation, and lock-table scrubbing. *)

module World = Locus.World
module Kernel = Locus_core.Kernel
module Css = Locus_core.Css
module Us = Locus_core.Us
module K = Locus_core.Ktypes
module Vvec = Vv.Version_vector
module Site = Net.Site

let check = Alcotest.check

let make_world ?(n = 4) () = World.create ~config:(World.default_config ~n_sites:n ()) ()

let setup_file ?(ncopies = 4) w path body =
  let k0 = World.kernel w 0 and p0 = World.proc w 0 in
  Kernel.set_ncopies p0 ncopies;
  ignore (Kernel.creat k0 p0 path);
  Kernel.write_file k0 p0 path body;
  ignore (World.settle w);
  Kernel.resolve k0 p0 path

let test_open_deleted_file_refused () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  f.K.css_deleted <- true;
  match Css.handle_open k0 ~src:1 gf Proto.Mode_read ~shared:false None with
  | Proto.R_err Proto.Enoent -> ()
  | _ -> Alcotest.fail "deleted file should refuse opens"

let test_conflicted_file_internal_only () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  Css.mark_conflict k0 gf;
  (match Css.handle_open k0 ~src:1 gf Proto.Mode_read ~shared:false None with
  | Proto.R_err Proto.Econflict -> ()
  | _ -> Alcotest.fail "conflicted file should refuse normal opens");
  (* Internal (pathname-search) opens still work: directories above a
     conflicted file must stay traversable. *)
  (match Css.handle_open k0 ~src:1 gf Proto.Mode_internal ~shared:false None with
  | Proto.R_open _ -> ()
  | _ -> Alcotest.fail "internal open should pass");
  Css.clear_conflict k0 gf

let test_writer_bookkeeping () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  (match Css.handle_open k0 ~src:2 gf Proto.Mode_modify ~shared:false None with
  | Proto.R_open _ -> ()
  | _ -> Alcotest.fail "first writer should open");
  check Alcotest.(option int) "writer recorded" (Some 2) f.K.writer;
  check Alcotest.bool "writer_ss set" true (f.K.writer_ss <> None);
  (* Close clears it. *)
  (match Css.handle_ss_close k0 gf ~us:2 ~mode:Proto.Mode_modify with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "close failed");
  check Alcotest.(option int) "writer cleared" None f.K.writer

let test_readers_counted_per_site () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  ignore (Css.handle_open k0 ~src:2 gf Proto.Mode_read ~shared:false None);
  ignore (Css.handle_open k0 ~src:2 gf Proto.Mode_read ~shared:false None);
  ignore (Css.handle_open k0 ~src:3 gf Proto.Mode_read ~shared:false None);
  check Alcotest.(option int) "site 2 count" (Some 2) (Site.Map.find_opt 2 f.K.readers);
  check Alcotest.(option int) "site 3 count" (Some 1) (Site.Map.find_opt 3 f.K.readers);
  ignore (Css.handle_ss_close k0 gf ~us:2 ~mode:Proto.Mode_read);
  check Alcotest.(option int) "decremented" (Some 1) (Site.Map.find_opt 2 f.K.readers)

let test_sites_with_latest_excludes_stale_and_unreachable () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  (* Forge: site 3 stale, site 2 unreachable. *)
  f.K.site_vv <- Site.Map.add 3 Vvec.zero f.K.site_vv;
  K.set_sites k0 [ 0; 1; 3 ];
  let latest = Css.sites_with_latest k0 f in
  check Alcotest.bool "stale excluded" false (List.mem 3 latest);
  check Alcotest.bool "unreachable excluded" false (List.mem 2 latest);
  check Alcotest.bool "current reachable included" true (List.mem 0 latest);
  K.set_sites k0 [ 0; 1; 2; 3 ]

let test_update_site_vv_monotone () =
  let w = make_world () in
  let gf = setup_file w "/f" "base" in
  let k0 = World.kernel w 0 in
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  let v_new = Vvec.get f.K.latest_vv 0 in
  (* A late, stale notification must not regress the per-site record. *)
  Css.handle_commit_notify k0 gf ~origin:0 ~vv:(Vvec.of_list [ (0, 1) ]) ~deleted:false;
  check Alcotest.int "record kept newest" v_new
    (Vvec.get (Site.Map.find 0 f.K.site_vv) 0)

let test_where_distinguishes_latest_from_all () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  f.K.site_vv <- Site.Map.add 3 Vvec.zero f.K.site_vv;
  match Css.handle_where k0 gf with
  | Proto.R_where { sites; all_sites; _ } ->
    check Alcotest.bool "stale not in latest" false (List.mem 3 sites);
    check Alcotest.bool "stale in all" true (List.mem 3 all_sites)
  | _ -> Alcotest.fail "expected where response"

let test_register_open_rebuild () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  Css.register_open k0 0 (gf.Catalog.Gfile.ino, Proto.Mode_modify, 3);
  Css.register_open k0 0 (gf.Catalog.Gfile.ino, Proto.Mode_read, 1);
  let f = Css.get_file k0 0 gf.Catalog.Gfile.ino in
  check Alcotest.(option int) "writer rebuilt" (Some 3) f.K.writer;
  check Alcotest.(option int) "reader rebuilt" (Some 1) (Site.Map.find_opt 1 f.K.readers);
  (* Scrub on departure. *)
  Css.drop_site k0 3;
  check Alcotest.(option int) "writer scrubbed" None f.K.writer

let test_shared_open_bypasses_single_writer () =
  let w = make_world () in
  let gf = setup_file w "/f" "x" in
  let k0 = World.kernel w 0 in
  ignore (Css.handle_open k0 ~src:1 gf Proto.Mode_modify ~shared:false None);
  (match Css.handle_open k0 ~src:2 gf Proto.Mode_modify ~shared:false None with
  | Proto.R_err Proto.Ebusy -> ()
  | _ -> Alcotest.fail "second writer should be busy");
  match Css.handle_open k0 ~src:2 gf Proto.Mode_modify ~shared:true None with
  | Proto.R_open { nocache = true; _ } -> ()
  | Proto.R_open _ -> Alcotest.fail "shared second writer must disable caching"
  | _ -> Alcotest.fail "shared open should be admitted"

let () =
  Alcotest.run "css"
    [
      ( "policy",
        [
          Alcotest.test_case "deleted refused" `Quick test_open_deleted_file_refused;
          Alcotest.test_case "conflict internal-only" `Quick
            test_conflicted_file_internal_only;
          Alcotest.test_case "writer bookkeeping" `Quick test_writer_bookkeeping;
          Alcotest.test_case "readers per site" `Quick test_readers_counted_per_site;
          Alcotest.test_case "shared open bypass" `Quick
            test_shared_open_bypasses_single_writer;
        ] );
      ( "versions",
        [
          Alcotest.test_case "latest excludes stale/unreachable" `Quick
            test_sites_with_latest_excludes_stale_and_unreachable;
          Alcotest.test_case "site_vv monotone" `Quick test_update_site_vv_monotone;
          Alcotest.test_case "where latest vs all" `Quick
            test_where_distinguishes_latest_from_all;
        ] );
      ( "rebuild",
        [ Alcotest.test_case "register_open + drop_site" `Quick test_register_open_rebuild ] );
    ]
